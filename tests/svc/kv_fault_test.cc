// kv_fault_test - fault injection on the rendezvous data path: wire/DMA
// corruption mid-transfer, PinAdmission rejection mid-transfer, and a lost
// RDMA leg must all fail the request cleanly - detected end-to-end, nothing
// committed, zero stranded pinned frames or governor charge - and every
// outcome is a deterministic function of the fault plan's seed.
#include <gtest/gtest.h>

#include <cstdint>

#include "svc_util.h"

namespace vialock::svc {
namespace {

using fault::FaultAction;
using fault::FaultRule;
using fault::FaultSite;

/// The armed-window NicDma event order for one request round trip is:
/// event 0 = the client gathers the request slot, event 1 = the server
/// gathers its payload (RDMA-write value or reply), event 2 = the reply.
/// (The RdmaRead deliver path copies remote frames directly and has no
/// gather, so PUT-side rendezvous corruption is exercised via GET.)
constexpr std::uint64_t kServerGatherEvent = 1;

TEST_F(KvBox, RendezvousGetCorruptionIsDetectedEndToEnd) {
  const std::uint32_t t =
      server->add_tenant({"t0", 256, pinmgr::QosTier::Guaranteed});
  std::uint32_t conn = 0;
  ASSERT_TRUE(ok(client->connect(*server, t, conn)));
  ASSERT_EQ(put_now(conn, 42, 4096).status, KvStatus::Ok);

  // Flip one byte while the server's NIC gathers the 4 KB RDMA write.
  arm({.site = FaultSite::NicDma,
       .action = FaultAction::Corrupt,
       .probability = 1.0,
       .after_events = kServerGatherEvent,
       .max_triggers = 1});
  const KvResult got = get_now(conn, 42);
  EXPECT_EQ(got.status, KvStatus::Ok);
  EXPECT_TRUE(got.rendezvous);
  // The damage arrives silently; the end-to-end checksum catches it.
  EXPECT_FALSE(got.data_ok);
  EXPECT_EQ(client->stats().data_corrupt, 1u);

  // The stored value itself is intact: a clean retry serves good bytes.
  disarm();
  const KvResult again = get_now(conn, 42);
  EXPECT_EQ(again.status, KvStatus::Ok);
  EXPECT_TRUE(again.data_ok);
}

TEST_F(KvBox, CorruptInlinePutIsRejectedNotCommitted) {
  const std::uint32_t t =
      server->add_tenant({"t0", 256, pinmgr::QosTier::Guaranteed});
  std::uint32_t conn = 0;
  ASSERT_TRUE(ok(client->connect(*server, t, conn)));

  // Corrupt the client's very next gather: the request slot, header plus
  // inline value. Where the flipped byte lands depends on the plan seed -
  // in the value region it must surface as KvStatus::Corrupt and gate the
  // commit; in the header it surfaces as a dropped bad_request. Sweep a
  // fixed seed list (each arm() restarts the event count) so both clean
  // outcomes are exercised deterministically. (The sweep width is tuned to
  // the wire frame size - the flip position is entropy % frame - and must
  // cover at least one magic-field hit; seed 29 lands there at the current
  // 328-byte request frame.)
  std::uint64_t corrupt_seen = 0;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    arm({.site = FaultSite::NicDma,
         .action = FaultAction::Corrupt,
         .probability = 1.0,
         .after_events = 0,
         .max_triggers = 1},
        seed);
    const std::uint64_t key = 1000 + seed;
    stage_put(conn, key, 240);
    const std::vector<KvResult> r = pump(conn);
    disarm();
    if (r.size() == 1 && r[0].status == KvStatus::Corrupt) {
      ++corrupt_seen;
      // The damaged value was never committed.
      EXPECT_EQ(get_now(conn, key).status, KvStatus::NotFound);
    } else if (client->inflight(conn) > 0) {
      // A header hit: the server dropped the unparseable request (or the
      // reply no longer correlates), leaving a hole in the pipeline. Tear
      // the connection down abruptly and reconnect - the reclamation path
      // the teardown tests pin in detail.
      ASSERT_TRUE(ok(client->abandon(conn)));
      server->drain();
      ASSERT_TRUE(ok(client->connect(*server, t, conn)));
    }
  }
  EXPECT_GT(corrupt_seen, 0u);
  EXPECT_EQ(server->stats().corrupt_payloads, corrupt_seen);
  EXPECT_GT(server->stats().bad_requests, 0u);

  // With the noise gone the same transfer commits and verifies.
  EXPECT_EQ(put_now(conn, 9, 240).status, KvStatus::Ok);
  EXPECT_TRUE(get_now(conn, 9).data_ok);
}

TEST_F(KvBox, PinAdmissionRejectionMidTransferStrandsNoCharge) {
  const std::uint32_t t =
      server->add_tenant({"t0", 256, pinmgr::QosTier::Guaranteed});
  std::uint32_t conn = 0;
  ASSERT_TRUE(ok(client->connect(*server, t, conn)));
  ASSERT_EQ(put_now(conn, 1, 64).status, KvStatus::Ok);  // inline warm-up
  const std::uint32_t charged_before = gov->total_charged();
  const std::uint32_t pinned_before = cluster->node(sn).kernel().pinned_frames();

  // The first large PUT needs an on-the-fly arena registration; the governor
  // rejects the admission mid-transfer.
  arm({.site = FaultSite::PinAdmission,
       .action = FaultAction::Fail,
       .probability = 1.0});
  const KvResult put = put_now(conn, 77, 4096);
  EXPECT_EQ(put.status, KvStatus::RendezvousFailed);
  EXPECT_EQ(server->stats().rendezvous_failed, 1u);
  // Clean failure: key absent, zero stranded charge, zero stranded pins.
  EXPECT_EQ(server->tenant_keys(t), 1u);
  EXPECT_EQ(gov->total_charged(), charged_before);
  EXPECT_EQ(cluster->node(sn).kernel().pinned_frames(), pinned_before);

  // Once admission recovers the same transfer goes through.
  disarm();
  const KvResult retry = put_now(conn, 77, 4096);
  EXPECT_EQ(retry.status, KvStatus::Ok);
  EXPECT_TRUE(retry.rendezvous);
  EXPECT_EQ(server->tenant_keys(t), 2u);

  // And the full teardown still audits clean.
  ASSERT_TRUE(ok(client->close(conn)));
  server->shutdown();
  EXPECT_EQ(gov->total_charged(), 0u);
  EXPECT_EQ(cluster->node(sn).kernel().pinned_frames(), 0u);
}

TEST_F(KvBox, LostRdmaLegBreaksTheConnButStrandsNothing) {
  const std::uint32_t t =
      server->add_tenant({"t0", 256, pinmgr::QosTier::Guaranteed});
  std::uint32_t conn = 0;
  ASSERT_TRUE(ok(client->connect(*server, t, conn)));

  // Wire events in the armed window: 0 = request, 1 = the server's RdmaRead
  // of the client window. A lost RdmaRead carries its response with it, and
  // these are reliable VIs: the failed leg breaks the server-side VI, the
  // reply bounces, and the server auto-abandons the connection - the full
  // mid-transfer reclamation path.
  arm({.site = FaultSite::Wire,
       .action = FaultAction::Drop,
       .probability = 1.0,
       .after_events = 1,
       .max_triggers = 1});
  stage_put(conn, 42, 4096);
  const std::vector<KvResult> r = pump(conn);
  EXPECT_TRUE(r.empty());  // the reply died with the broken VI
  EXPECT_EQ(server->stats().rendezvous_failed, 1u);
  EXPECT_EQ(server->stats().conns_abandoned, 1u);
  EXPECT_EQ(server->open_conns(), 0u);
  // Nothing was committed under the lost transfer.
  EXPECT_EQ(server->tenant_keys(t), 0u);

  // Client-side cleanup of the half-dead connection, then the tier audits
  // clean: zero stranded charge, zero stranded pins.
  disarm();
  ASSERT_TRUE(ok(client->abandon(conn)));
  EXPECT_EQ(client->stats().requests_lost, 1u);
  server->shutdown();
  EXPECT_EQ(gov->total_charged(), 0u);
  EXPECT_EQ(cluster->node(sn).kernel().pinned_frames(), 0u);
}

/// One noisy run: 12 inline PUTs under a 50% DMA-corruption rule. Returns
/// the aggregate outcome scalars the determinism check compares.
struct NoisyOutcome {
  std::uint64_t ok = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t responses = 0;
  bool operator==(const NoisyOutcome&) const = default;
};

NoisyOutcome run_noisy(std::uint64_t plan_seed) {
  KvRig rig;
  rig.build();
  const std::uint32_t t =
      rig.server->add_tenant({"t0", 256, pinmgr::QosTier::Guaranteed});
  std::uint32_t conn = 0;
  EXPECT_TRUE(ok(rig.client->connect(*rig.server, t, conn)));
  rig.arm({.site = FaultSite::NicDma,
           .action = FaultAction::Corrupt,
           .probability = 0.5},
          plan_seed);
  NoisyOutcome out;
  for (std::uint64_t k = 0; k < 12; ++k) {
    // A corrupted header never gets a reply, permanently occupying a window
    // slot - skip issuing once the window cannot take another request.
    if (!rig.client->can_issue(conn)) break;
    rig.stage_put(conn, k, 240);
    for (const KvResult& r : rig.pump(conn)) {
      if (r.status == KvStatus::Ok) ++out.ok;
      if (r.status == KvStatus::Corrupt) ++out.corrupt;
    }
  }
  out.bad_requests = rig.server->stats().bad_requests;
  out.responses = rig.client->stats().responses;
  return out;
}

TEST(KvFaultDeterminism, SameFaultSeedSameOutcome) {
  const NoisyOutcome a = run_noisy(11);
  const NoisyOutcome b = run_noisy(11);
  EXPECT_TRUE(a == b);
  // The noise actually bit (otherwise this test proves nothing).
  EXPECT_GT(a.corrupt + a.bad_requests, 0u);
  EXPECT_GT(a.ok, 0u);
}

}  // namespace
}  // namespace vialock::svc
