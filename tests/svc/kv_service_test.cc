// kv_service_test - functional contract of the zero-copy KV service tier:
// inline vs rendezvous data paths, pipelined batching, governed admission
// shedding, and the teardown-accounting regression (an abrupt mid-pipeline
// disconnect strands neither pinned frames nor governor charge).
#include <gtest/gtest.h>

#include <algorithm>

#include "obs/metrics.h"
#include "svc_util.h"

namespace vialock::svc {
namespace {

TEST_F(KvBox, InlineRoundTripServesPutAndGet) {
  const std::uint32_t t = server->add_tenant({"t0", 256,
                                              pinmgr::QosTier::Guaranteed});
  std::uint32_t conn = 0;
  ASSERT_TRUE(ok(client->connect(*server, t, conn)));

  const KvResult put = put_now(conn, 7, 64);
  EXPECT_EQ(put.op, KvOp::Put);
  EXPECT_EQ(put.status, KvStatus::Ok);
  EXPECT_FALSE(put.rendezvous);

  const KvResult got = get_now(conn, 7);
  EXPECT_EQ(got.status, KvStatus::Ok);
  EXPECT_TRUE(got.data_ok);
  EXPECT_EQ(got.value_len, 64u);
  EXPECT_FALSE(got.rendezvous);

  const KvResult miss = get_now(conn, 999);
  EXPECT_EQ(miss.status, KvStatus::NotFound);
  EXPECT_EQ(miss.value_len, 0u);

  const KvServerStats& ss = server->stats();
  EXPECT_EQ(ss.requests, 3u);
  EXPECT_EQ(ss.puts, 1u);
  EXPECT_EQ(ss.gets, 2u);
  EXPECT_EQ(ss.not_found, 1u);
  // Small values ride the eager slots: copied, never RDMA'd.
  EXPECT_EQ(ss.inline_bytes, 128u);
  EXPECT_GT(ss.eager_copies, 0u);
  EXPECT_EQ(ss.rendezvous_ops, 0u);
  EXPECT_EQ(server->tenant_keys(t), 1u);
  EXPECT_GT(client->stats().inline_bytes, 0u);
}

TEST_F(KvBox, RendezvousMovesLargeValuesWithZeroEagerCopies) {
  const std::uint32_t t = server->add_tenant({"t0", 256,
                                              pinmgr::QosTier::Guaranteed});
  std::uint32_t conn = 0;
  ASSERT_TRUE(ok(client->connect(*server, t, conn)));

  // 4 KB value, well past the 256-byte inline threshold.
  const KvResult put = put_now(conn, 42, 4096);
  EXPECT_EQ(put.status, KvStatus::Ok);
  EXPECT_TRUE(put.rendezvous);

  const KvResult got = get_now(conn, 42);
  EXPECT_EQ(got.status, KvStatus::Ok);
  EXPECT_TRUE(got.rendezvous);
  EXPECT_TRUE(got.data_ok);
  EXPECT_EQ(got.value_len, 4096u);

  // The zero-copy evidence: every value byte moved by RDMA, none through
  // the eager slots, no slot<->arena copies at all.
  const KvServerStats& ss = server->stats();
  EXPECT_EQ(ss.rendezvous_ops, 2u);
  EXPECT_EQ(ss.rendezvous_bytes, 8192u);
  EXPECT_EQ(ss.eager_copies, 0u);
  EXPECT_EQ(ss.inline_bytes, 0u);
  // The client counts both directions: the PUT it staged into its window
  // and the GET the server RDMA-wrote back into it.
  EXPECT_EQ(client->stats().rendezvous_bytes, 8192u);

  // Full teardown audits clean: zero pinned frames, zero governor charge.
  ASSERT_TRUE(ok(client->close(conn)));
  server->shutdown();
  EXPECT_EQ(gov->total_charged(), 0u);
  EXPECT_EQ(cluster->node(sn).kernel().pinned_frames(), 0u);
}

TEST_F(KvBox, PipelinedBurstUsesOneDoorbellAndBatchedReplies) {
  const std::uint32_t t = server->add_tenant({"t0", 256,
                                              pinmgr::QosTier::Guaranteed});
  std::uint32_t conn = 0;
  ASSERT_TRUE(ok(client->connect(*server, t, conn)));

  // Fill the whole window (4) without flushing; the window then pushes back.
  for (std::uint64_t k = 1; k <= 4; ++k) stage_put(conn, k, 32);
  EXPECT_FALSE(client->can_issue(conn));
  std::uint64_t req_id = 0;
  EXPECT_EQ(client->get(conn, 1, req_id), KStatus::Busy);

  const std::vector<KvResult> results = pump(conn);
  ASSERT_EQ(results.size(), 4u);
  for (const KvResult& r : results) EXPECT_EQ(r.status, KvStatus::Ok);

  // One flush = one doorbell for the burst; the server drained the burst in
  // batches and answered through batched per-VI reply doorbells.
  EXPECT_EQ(client->stats().doorbell_flushes, 1u);
  const KvServerStats& ss = server->stats();
  EXPECT_GE(ss.batched_completions, 4u);
  EXPECT_GE(ss.batched_replies, 4u);
  EXPECT_GE(ss.batches, 1u);
  EXPECT_EQ(client->inflight(conn), 0u);
}

TEST_F(KvBox, BestEffortConnectionShedUnderQuotaPressure) {
  // Slot rings need 2 pages; a 1-page BestEffort quota has no headroom, so
  // the admission probe sheds the connection before any registration work.
  const std::uint32_t starved =
      server->add_tenant({"starved", 1, pinmgr::QosTier::BestEffort});
  const std::uint32_t pinned_before = cluster->node(sn).kernel().pinned_frames();
  const std::uint32_t charged_before = gov->total_charged();

  std::uint32_t conn = 0;
  EXPECT_EQ(client->connect(*server, starved, conn), KStatus::Again);
  EXPECT_EQ(server->stats().conns_shed, 1u);
  EXPECT_EQ(server->stats().conns_accepted, 0u);
  EXPECT_EQ(server->open_conns(), 0u);
  // The shed left nothing behind on either side.
  EXPECT_EQ(client->open_conns(), 0u);
  EXPECT_EQ(cluster->node(sn).kernel().pinned_frames(), pinned_before);
  EXPECT_EQ(gov->total_charged(), charged_before);

  // A Guaranteed tenant with real quota still gets in.
  const std::uint32_t good =
      server->add_tenant({"good", 256, pinmgr::QosTier::Guaranteed});
  ASSERT_TRUE(ok(client->connect(*server, good, conn)));
  EXPECT_EQ(server->stats().conns_accepted, 1u);
}

TEST_F(KvBox, AbruptDisconnectReclaimsPinsAndGovernorCharge) {
  // The satellite regression: a client that vanishes mid-pipeline must not
  // strand pinned frames or governor charge on the server.
  const std::uint32_t t = server->add_tenant({"t0", 256,
                                              pinmgr::QosTier::Guaranteed});
  const std::uint32_t pinned_baseline =
      cluster->node(sn).kernel().pinned_frames();
  std::uint32_t conn = 0;
  ASSERT_TRUE(ok(client->connect(*server, t, conn)));
  EXPECT_EQ(put_now(conn, 5, 64).status, KvStatus::Ok);
  EXPECT_GT(gov->total_charged(), 0u);  // the slot rings are charged

  // Fill the pipeline, ring the doorbell... and vanish before the replies.
  for (int i = 0; i < 4; ++i) {
    std::uint64_t req_id = 0;
    ASSERT_TRUE(ok(client->get(conn, 5, req_id)));
  }
  (void)client->flush(conn);
  ASSERT_TRUE(ok(client->abandon(conn)));
  EXPECT_EQ(client->stats().requests_lost, 4u);

  // The server discovers the death when its replies bounce, and reclaims.
  while (server->service() != 0) {
  }
  server->drain();
  EXPECT_EQ(server->stats().conns_abandoned, 1u);
  EXPECT_EQ(server->open_conns(), 0u);
  EXPECT_EQ(gov->total_charged(), 0u);
  EXPECT_EQ(cluster->node(sn).kernel().pinned_frames(), pinned_baseline);

  // The abandonment is visible as a metric for the observability layer.
  const obs::Snapshot snap = cluster->node(sn).kernel().metrics().snapshot();
  const auto it = std::find_if(
      snap.begin(), snap.end(),
      [](const obs::Metric& m) { return m.name == "svc.conn_abandoned"; });
  ASSERT_NE(it, snap.end());
  EXPECT_EQ(it->value, 1u);

  // The tenant (and its data) survive the dead connection: reconnect works.
  ASSERT_TRUE(ok(client->connect(*server, t, conn)));
  const KvResult got = get_now(conn, 5);
  EXPECT_EQ(got.status, KvStatus::Ok);
  EXPECT_TRUE(got.data_ok);
}

TEST_F(KvBox, ConnectionChurnRecyclesEverything) {
  const std::uint32_t t = server->add_tenant({"t0", 256,
                                              pinmgr::QosTier::Guaranteed});
  const std::uint32_t pinned_baseline =
      cluster->node(sn).kernel().pinned_frames();
  for (std::uint64_t round = 0; round < 6; ++round) {
    std::uint32_t conn = 0;
    ASSERT_TRUE(ok(client->connect(*server, t, conn)));
    EXPECT_EQ(put_now(conn, round, 64).status, KvStatus::Ok);
    const std::uint32_t sc = client->server_conn(conn);
    ASSERT_TRUE(ok(client->close(conn)));
    ASSERT_TRUE(ok(server->close(sc)));
    EXPECT_EQ(gov->total_charged(), 0u);
    EXPECT_EQ(cluster->node(sn).kernel().pinned_frames(), pinned_baseline);
  }
  EXPECT_EQ(server->stats().conns_accepted, 6u);
  EXPECT_EQ(server->stats().conns_closed, 6u);
  EXPECT_EQ(server->tenant_keys(t), 6u);
}

}  // namespace
}  // namespace vialock::svc
