// svc_util.h - shared two-node KvServer/KvClient rig for the service tier
// tests: server on node 0 (governed), client on node 1. KvRig is a plain
// struct so fault tests can build several independent rigs in one test body
// (seed-determinism comparisons); KvBox wraps it as a gtest fixture.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../via/via_util.h"
#include "fault/fault.h"
#include "pinmgr/pin_governor.h"
#include "svc/kv_client.h"
#include "svc/kv_server.h"

namespace vialock::svc {

struct KvRig {
  static constexpr std::uint64_t kValueSeed = 0xDECAFBAD;

  void build(KvServerConfig scfg = {}, KvClientConfig ccfg = {},
             pinmgr::GovernorConfig gcfg = {}) {
    cluster = std::make_unique<via::Cluster>();
    sn = cluster->add_node(
        test::small_node(via::PolicyKind::Kiobuf, 2048, 1024));
    cn = cluster->add_node(
        test::small_node(via::PolicyKind::Kiobuf, 2048, 1024));
    gov = &cluster->node(sn).enable_governor(gcfg);
    server = std::make_unique<KvServer>(*cluster, sn, scfg);
    ASSERT_TRUE(ok(server->init()));
    client = std::make_unique<KvClient>(*cluster, cn, "cli", ccfg);
    ASSERT_TRUE(ok(client->open()));
  }

  /// Flush `conn`, run server service cycles and client harvests until both
  /// go quiet; returns the completed operations.
  std::vector<KvResult> pump(std::uint32_t conn) {
    std::vector<KvResult> out;
    (void)client->flush(conn);
    for (int spin = 0; spin < 64; ++spin) {
      std::uint32_t moved = 0;
      while (const std::uint32_t n = server->service()) moved += n;
      while (const std::uint32_t n = client->harvest(out)) moved += n;
      if (moved == 0) break;
    }
    return out;
  }

  /// Stage one PUT of `len` deterministic bytes under `key` (not flushed).
  void stage_put(std::uint32_t conn, std::uint64_t key, std::uint32_t len) {
    scratch.resize(len);
    KvClient::fill_value(scratch, key, kValueSeed);
    std::uint64_t req_id = 0;
    ASSERT_TRUE(ok(client->put(conn, key, scratch, req_id)));
  }

  /// One complete PUT round trip; returns the result.
  KvResult put_now(std::uint32_t conn, std::uint64_t key, std::uint32_t len) {
    stage_put(conn, key, len);
    const std::vector<KvResult> r = pump(conn);
    EXPECT_EQ(r.size(), 1u);
    return r.empty() ? KvResult{} : r[0];
  }

  /// One complete GET round trip; returns the result.
  KvResult get_now(std::uint32_t conn, std::uint64_t key) {
    std::uint64_t req_id = 0;
    EXPECT_TRUE(ok(client->get(conn, key, req_id)));
    const std::vector<KvResult> r = pump(conn);
    EXPECT_EQ(r.size(), 1u);
    return r.empty() ? KvResult{} : r[0];
  }

  /// Arm one fault rule cluster-wide (events before this call never count).
  void arm(fault::FaultRule rule, std::uint64_t seed = 7) {
    fault::FaultPlan plan;
    plan.seed = seed;
    plan.add(rule);
    faults = std::make_unique<fault::FaultEngine>(plan, cluster->clock());
    cluster->inject_faults(faults.get());
  }

  void disarm() { cluster->inject_faults(nullptr); }

  std::unique_ptr<via::Cluster> cluster;
  via::NodeId sn = 0, cn = 0;
  pinmgr::PinGovernor* gov = nullptr;
  std::unique_ptr<KvServer> server;
  std::unique_ptr<KvClient> client;
  std::unique_ptr<fault::FaultEngine> faults;
  std::vector<std::byte> scratch;
};

class KvBox : public ::testing::Test, public KvRig {
 protected:
  void SetUp() override { build(); }
};

}  // namespace vialock::svc
