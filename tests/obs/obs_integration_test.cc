// obs_integration_test.cc - whole-stack observability checks (ISSUE/PR4
// acceptance): every subsystem exports through the one registry, the /proc
// tree is readable through the one interface, and the --metrics / trace
// exports are byte-identical across identical runs.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "experiments/locktest.h"
#include "fault/fault.h"
#include "mp/collectives.h"
#include "msg/transport.h"
#include "obs/export.h"
#include "../via/via_util.h"

namespace vialock {
namespace {

/// First dot-segment of a metric name ("via.agent.register_total" -> "via").
std::string subsystem_of(const std::string& name) {
  return name.substr(0, name.find('.'));
}

/// A two-node cluster exercising all seven instrumented subsystems on the
/// sender node: governor admission (pinmgr), channel transfers (msg),
/// collectives over the matching layer (mp), the registration cache (core),
/// agent/NIC work (via), swap traffic (simkern), and an armed fault engine
/// (fault).
struct FullStackRig {
  FullStackRig()
      : n0(cluster.add_node(test::small_node(via::PolicyKind::Kiobuf,
                                             /*frames=*/2048,
                                             /*tpt_entries=*/2048))),
        n1(cluster.add_node(test::small_node(via::PolicyKind::Kiobuf,
                                             /*frames=*/2048,
                                             /*tpt_entries=*/2048))),
        engine(fault::FaultPlan{}, cluster.clock()),
        channel(cluster, n0, n1, config()) {
    cluster.node(n0).enable_governor();
    cluster.inject_faults(&engine);
    if (!ok(channel.init())) std::abort();
    comm = std::make_unique<mp::Comm>(
        cluster, std::vector<via::NodeId>{n0, n1}, mp_config());
    if (!ok(comm->init())) std::abort();
  }

  static msg::Channel::Config config() {
    msg::Channel::Config cfg;
    cfg.user_heap_bytes = 512 * 1024;
    return cfg;
  }

  static mp::Comm::Config mp_config() {
    mp::Comm::Config cfg;
    cfg.heap_bytes = 256 * 1024;  // the small_node RAM hosts channel + comm
    cfg.unexpected_slots = 8;
    return cfg;
  }

  void transfer_some() {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ok(channel.transfer(msg::Protocol::Rendezvous, 0, 0,
                                      48 * 1024)));
      ASSERT_TRUE(ok(channel.transfer(msg::Protocol::Eager, 0, 0, 512)));
    }
  }

  void collect_some() {
    // mp.coll.* counters + the op-latency histogram land on rank 0's (n0's)
    // registry, alongside the comm's "mp.comm" pull source.
    for (mp::Rank r = 0; r < 2; ++r) {
      const std::uint64_t v = 10 + r;
      ASSERT_TRUE(ok(comm->stage(r, 0, test::bytes_of(v))));
    }
    ASSERT_TRUE(ok(mp::barrier(*comm, /*scratch_offset=*/64)));
    ASSERT_TRUE(ok(mp::allreduce_sum(*comm, 0, 1, /*scratch_offset=*/128)));
  }

  simkern::Kernel& kern() { return cluster.node(n0).kernel(); }

  via::Cluster cluster;
  via::NodeId n0, n1;
  fault::FaultEngine engine;
  msg::Channel channel;
  std::unique_ptr<mp::Comm> comm;
};

TEST(ObsIntegration, SevenSubsystemsEachExportAtLeastThreeMetrics) {
  FullStackRig rig;
  rig.transfer_some();
  rig.collect_some();

  std::map<std::string, int> per_subsystem;
  for (const obs::Metric& m : rig.kern().metrics().snapshot()) {
    ++per_subsystem[subsystem_of(m.name)];
  }
  for (const char* subsystem :
       {"simkern", "via", "core", "pinmgr", "msg", "fault", "mp"}) {
    EXPECT_GE(per_subsystem[subsystem], 3) << subsystem;
  }
}

TEST(ObsIntegration, ProcTreeServesEveryMountedNode) {
  FullStackRig rig;
  rig.transfer_some();

  const obs::ProcRegistry& proc = rig.kern().procfs();
  for (const char* path : {"meminfo", "vmstat", "metrics", "via/agent",
                           "pinmgr"}) {
    const auto text = proc.read(path);
    ASSERT_TRUE(text.has_value()) << path;
    EXPECT_FALSE(text->empty()) << path;
  }
  // The channel's registration cache mounts a per-pid node.
  bool saw_regcache = false;
  for (const std::string& path : proc.ls()) {
    saw_regcache |= path.rfind("regcache/p", 0) == 0;
  }
  EXPECT_TRUE(saw_regcache);
  // /proc/metrics is the registry snapshot, same bytes as the exporter.
  EXPECT_EQ(proc.read("metrics").value_or(""),
            obs::to_proc_text(rig.kern().metrics().snapshot()));
}

/// `"key": "value"` string field of a one-event-per-line chrome trace line;
/// empty when absent.
std::string field(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\": \"";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return {};
  const auto start = pos + pat.size();
  return line.substr(start, line.find('"', start) - start);
}

TEST(ObsIntegration, FlowEventIdsResolveToEmittedSpans) {
  // Real two-host traffic (channel transfers + collectives), both hosts'
  // recorders merged: every flow event ("s"/"t"/"f") in the export must
  // reference a trace id that some emitted span actually carries - the
  // well-formedness contract a chrome-trace viewer relies on to draw the
  // cross-process arrows.
  FullStackRig rig;
  rig.cluster.node(rig.n0).kernel().spans().enable(true);
  rig.cluster.node(rig.n1).kernel().spans().enable(true);
  rig.transfer_some();
  rig.collect_some();

  const std::string trace =
      obs::chrome_trace({&rig.cluster.node(rig.n0).kernel().spans(),
                         &rig.cluster.node(rig.n1).kernel().spans()});
  std::set<std::string> span_traces;
  std::vector<std::pair<std::string, std::string>> flows;  // (ph, id)
  std::istringstream in(trace);
  std::string line;
  while (std::getline(in, line)) {
    const std::string ph = field(line, "ph");
    if (ph == "X") {
      const std::string t = field(line, "trace");
      if (!t.empty()) span_traces.insert(t);
    } else if (ph == "s" || ph == "t" || ph == "f") {
      flows.emplace_back(ph, field(line, "id"));
    }
  }
  ASSERT_FALSE(flows.empty())
      << "cross-host transfers must stitch at least one flow chain";
  bool saw_start = false, saw_finish = false;
  for (const auto& [ph, id] : flows) {
    EXPECT_TRUE(span_traces.count(id))
      << "flow \"" << ph << "\" references unknown trace " << id;
    saw_start |= ph == "s";
    saw_finish |= ph == "f";
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_finish);
}

/// One instrumented pressure locktest (what `bench_e1_locktest --metrics
/// --trace-export` runs), returning all three export documents.
struct Exports {
  std::string proc_text;
  std::string json;
  std::string trace;
};

Exports run_instrumented_locktest() {
  Clock clock;
  CostModel costs;
  via::Node node(test::small_node(via::PolicyKind::Kiobuf, /*frames=*/1024),
                 clock, costs);
  node.kernel().spans().enable(true);
  experiments::LocktestConfig cfg;
  cfg.region_pages = 64;
  cfg.pressure_factor = 1.5;
  const auto r = experiments::run_locktest(node, cfg);
  EXPECT_TRUE(ok(r.status));
  return {obs::to_proc_text(node.kernel().metrics().snapshot()),
          obs::to_json(node.kernel().metrics().snapshot()),
          obs::chrome_trace(node.kernel().spans())};
}

TEST(ObsIntegration, MetricAndTraceExportsAreByteIdenticalAcrossRuns) {
  const Exports a = run_instrumented_locktest();
  const Exports b = run_instrumented_locktest();
  EXPECT_EQ(a.proc_text, b.proc_text);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.trace, b.trace);
  // The run did real work: registration latency histogram and spans exist.
  EXPECT_NE(a.proc_text.find("via.agent.register_ns.count"),
            std::string::npos);
  EXPECT_NE(a.trace.find("via.register_mem"), std::string::npos);
}

}  // namespace
}  // namespace vialock
