// obs_integration_test.cc - whole-stack observability checks (ISSUE/PR4
// acceptance): every subsystem exports through the one registry, the /proc
// tree is readable through the one interface, and the --metrics / trace
// exports are byte-identical across identical runs.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "experiments/locktest.h"
#include "fault/fault.h"
#include "msg/transport.h"
#include "obs/export.h"
#include "../via/via_util.h"

namespace vialock {
namespace {

/// First dot-segment of a metric name ("via.agent.register_total" -> "via").
std::string subsystem_of(const std::string& name) {
  return name.substr(0, name.find('.'));
}

/// A two-node cluster exercising all six instrumented subsystems on the
/// sender node: governor admission (pinmgr), channel transfers (msg), the
/// registration cache (core), agent/NIC work (via), swap traffic (simkern),
/// and an armed fault engine (fault).
struct FullStackRig {
  FullStackRig()
      : n0(cluster.add_node(test::small_node())),
        n1(cluster.add_node(test::small_node())),
        engine(fault::FaultPlan{}, cluster.clock()),
        channel(cluster, n0, n1, config()) {
    cluster.node(n0).enable_governor();
    cluster.inject_faults(&engine);
    if (!ok(channel.init())) std::abort();
  }

  static msg::Channel::Config config() {
    msg::Channel::Config cfg;
    cfg.user_heap_bytes = 512 * 1024;
    return cfg;
  }

  void transfer_some() {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ok(channel.transfer(msg::Protocol::Rendezvous, 0, 0,
                                      48 * 1024)));
      ASSERT_TRUE(ok(channel.transfer(msg::Protocol::Eager, 0, 0, 512)));
    }
  }

  simkern::Kernel& kern() { return cluster.node(n0).kernel(); }

  via::Cluster cluster;
  via::NodeId n0, n1;
  fault::FaultEngine engine;
  msg::Channel channel;
};

TEST(ObsIntegration, SixSubsystemsEachExportAtLeastThreeMetrics) {
  FullStackRig rig;
  rig.transfer_some();

  std::map<std::string, int> per_subsystem;
  for (const obs::Metric& m : rig.kern().metrics().snapshot()) {
    ++per_subsystem[subsystem_of(m.name)];
  }
  for (const char* subsystem :
       {"simkern", "via", "core", "pinmgr", "msg", "fault"}) {
    EXPECT_GE(per_subsystem[subsystem], 3) << subsystem;
  }
}

TEST(ObsIntegration, ProcTreeServesEveryMountedNode) {
  FullStackRig rig;
  rig.transfer_some();

  const obs::ProcRegistry& proc = rig.kern().procfs();
  for (const char* path : {"meminfo", "vmstat", "metrics", "via/agent",
                           "pinmgr"}) {
    const auto text = proc.read(path);
    ASSERT_TRUE(text.has_value()) << path;
    EXPECT_FALSE(text->empty()) << path;
  }
  // The channel's registration cache mounts a per-pid node.
  bool saw_regcache = false;
  for (const std::string& path : proc.ls()) {
    saw_regcache |= path.rfind("regcache/p", 0) == 0;
  }
  EXPECT_TRUE(saw_regcache);
  // /proc/metrics is the registry snapshot, same bytes as the exporter.
  EXPECT_EQ(proc.read("metrics").value_or(""),
            obs::to_proc_text(rig.kern().metrics().snapshot()));
}

/// One instrumented pressure locktest (what `bench_e1_locktest --metrics
/// --trace-export` runs), returning all three export documents.
struct Exports {
  std::string proc_text;
  std::string json;
  std::string trace;
};

Exports run_instrumented_locktest() {
  Clock clock;
  CostModel costs;
  via::Node node(test::small_node(via::PolicyKind::Kiobuf, /*frames=*/1024),
                 clock, costs);
  node.kernel().spans().enable(true);
  experiments::LocktestConfig cfg;
  cfg.region_pages = 64;
  cfg.pressure_factor = 1.5;
  const auto r = experiments::run_locktest(node, cfg);
  EXPECT_TRUE(ok(r.status));
  return {obs::to_proc_text(node.kernel().metrics().snapshot()),
          obs::to_json(node.kernel().metrics().snapshot()),
          obs::chrome_trace(node.kernel().spans())};
}

TEST(ObsIntegration, MetricAndTraceExportsAreByteIdenticalAcrossRuns) {
  const Exports a = run_instrumented_locktest();
  const Exports b = run_instrumented_locktest();
  EXPECT_EQ(a.proc_text, b.proc_text);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.trace, b.trace);
  // The run did real work: registration latency histogram and spans exist.
  EXPECT_NE(a.proc_text.find("via.agent.register_ns.count"),
            std::string::npos);
  EXPECT_NE(a.trace.find("via.register_mem"), std::string::npos);
}

}  // namespace
}  // namespace vialock
