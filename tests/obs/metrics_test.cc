// metrics_test.cc - unit tests for the obs metric registry (ISSUE/PR4):
// histogram bucket boundaries, snapshot determinism, source owner semantics,
// exporter text stability.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "obs/export.h"

namespace vialock::obs {
namespace {

// --- histogram bucketing -----------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // bucket 0 = {0}, bucket 1 = {1}, bucket k = [2^(k-1), 2^k - 1].
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  for (std::size_t k = 1; k < 64; ++k) {
    const std::uint64_t pow = 1ULL << k;
    EXPECT_EQ(Histogram::bucket_of(pow), k + 1) << "2^" << k;
    EXPECT_EQ(Histogram::bucket_of(pow - 1), k) << "2^" << k << "-1";
    if (pow + 1 < 2 * pow) {
      EXPECT_EQ(Histogram::bucket_of(pow + 1), k + 1) << "2^" << k << "+1";
    }
  }
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            64u);
}

TEST(Histogram, UpperBoundsMatchBuckets) {
  EXPECT_EQ(Histogram::upper_bound(0), 0u);
  EXPECT_EQ(Histogram::upper_bound(1), 1u);
  EXPECT_EQ(Histogram::upper_bound(2), 3u);
  EXPECT_EQ(Histogram::upper_bound(10), 1023u);
  EXPECT_EQ(Histogram::upper_bound(64),
            std::numeric_limits<std::uint64_t>::max());
  // Every bucket's upper bound maps back into that bucket.
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::upper_bound(i)), i) << i;
  }
}

TEST(Histogram, CountSumMaxQuantiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);

  for (const std::uint64_t v : {0u, 1u, 2u, 3u, 100u, 1000u}) h.add(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 1106u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.bucket(0), 1u);  // {0}
  EXPECT_EQ(h.bucket(1), 1u);  // {1}
  EXPECT_EQ(h.bucket(2), 2u);  // {2, 3}
  // Rank 0.99*(6-1) = 4, the 5th smallest sample (100): its bucket's upper
  // bound is 127. The largest sample's bucket answers q = 1.0.
  EXPECT_EQ(h.quantile(0.99), 127u);
  EXPECT_EQ(h.quantile(1.0), 1023u);
}

TEST(Histogram, QuantilesAtBucketEdges) {
  // The log2 buckets make 0, 1, 2^k - 1, 2^k, and 2^k + 1 the interesting
  // inputs: a quantile answers with the upper bound of the bucket holding
  // the sample at rank round(q * (count - 1)).
  Histogram h;
  h.add(0);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.999), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);

  h.add(1);  // samples {0, 1}
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 1u);

  for (const std::uint64_t v : {7u, 8u, 9u}) h.add(v);  // 2^3 +/- 1
  // Samples {0, 1, 7, 8, 9}: 7 sits in bucket [4,7] (upper 7), 8 and 9 in
  // [8,15] (upper 15).
  EXPECT_EQ(h.quantile(0.5), 7u);
  EXPECT_EQ(h.quantile(1.0), 15u);

  h.add(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.quantile(1.0), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.quantile(0.999), 15u)
      << "rank floor(0.999 * 5) = 4, still below the max sample";
  EXPECT_EQ(h.quantile(0.0), 0u);
}

TEST(Histogram, P999SeparatesFromP99OnLongTails) {
  // 999 fast samples and two catastrophic outliers: p99 stays in the fast
  // band, p999 lands in the outliers' bucket - the tail the perf gate
  // watches. (Rank is floor(q * (count - 1)): with count = 1001 the 0.999
  // rank is 999, the first outlier.)
  Histogram h;
  for (int i = 0; i < 999; ++i) h.add(100);
  h.add(1'000'000);
  h.add(1'000'000);
  EXPECT_EQ(h.quantile(0.99), 127u);
  EXPECT_EQ(h.quantile(0.999), 1'048'575u);
}

TEST(Snapshot, CarriesP999) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("msg.ch.frame_ns");
  for (int i = 0; i < 999; ++i) h.add(10);
  h.add(100'000);
  h.add(100'000);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].p99, 15u);
  EXPECT_EQ(snap[0].p999, 131'071u);
}

TEST(Exporters, RenderP999InBothFormats) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("via.dma_ns");
  for (int i = 0; i < 999; ++i) h.add(10);
  h.add(100'000);
  h.add(100'000);
  const Snapshot snap = reg.snapshot();
  const std::string text = to_proc_text(snap);
  EXPECT_NE(text.find("via.dma_ns.p999 131071\n"), std::string::npos);
  EXPECT_NE(text.find("via.dma_ns.p99 15\n"), std::string::npos);
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"p999\": 131071"), std::string::npos);
}

TEST(Histogram, P95SitsBetweenP50AndP99) {
  // 94 fast samples, 5 medium, 1 slow out of 100: rank floor(q * 99) puts
  // p50 (rank 49) in the fast bucket, p95 (rank 94) on the first medium
  // sample, p99 (rank 98) on the last medium one, and only the true max
  // reaches the outlier's bucket.
  Histogram h;
  for (int i = 0; i < 94; ++i) h.add(100);
  for (int i = 0; i < 5; ++i) h.add(10'000);
  h.add(1'000'000);
  EXPECT_EQ(h.quantile(0.50), 127u);
  EXPECT_EQ(h.quantile(0.95), 16'383u);
  EXPECT_EQ(h.quantile(0.99), 16'383u);
  EXPECT_EQ(h.quantile(1.0), 1'048'575u);
}

TEST(Histogram, P95BucketEdges) {
  // 19 samples at the top edge of [8,15] and one at the bottom edge of
  // [16,31]: rank floor(0.95 * 19) = 18, the last sample of the low bucket,
  // so p95 reports that bucket's upper bound exactly.
  Histogram h;
  for (int i = 0; i < 19; ++i) h.add(15);
  h.add(16);
  EXPECT_EQ(h.quantile(0.95), 15u);
  // One more edge sample: rank floor(0.95 * 20) = 19 outranks the 19
  // low-bucket samples, so p95 crosses into [16,31].
  h.add(16);
  EXPECT_EQ(h.quantile(0.95), 31u);
}

TEST(Snapshot, CarriesP95AndExportersRenderIt) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("svc.kv.op_ns");
  for (int i = 0; i < 94; ++i) h.add(10);
  for (int i = 0; i < 5; ++i) h.add(1'000);
  h.add(100'000);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].p50, 15u);
  EXPECT_EQ(snap[0].p95, 1'023u);
  // Rank floor(0.999 * 99) = 98 is still the last medium sample; the single
  // outlier only shows up in max.
  EXPECT_EQ(snap[0].p999, 1'023u);
  EXPECT_EQ(snap[0].max, 100'000u);
  const std::string text = to_proc_text(snap);
  EXPECT_NE(text.find("svc.kv.op_ns.p50 15\n"), std::string::npos);
  EXPECT_NE(text.find("svc.kv.op_ns.p95 1023\n"), std::string::npos);
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"p95\": 1023"), std::string::npos);
}

TEST(Histogram, MaxTracksZeroOnlySamples) {
  Histogram h;
  h.add(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 0u);
  h.add(7);
  h.add(2);
  EXPECT_EQ(h.max(), 7u);
}

// --- registry instruments ----------------------------------------------------

TEST(MetricRegistry, GetOrCreateHandlesAreStable) {
  MetricRegistry reg;
  Counter& a = reg.counter("x.a");
  a.inc(3);
  // Creating more instruments must not move existing ones.
  for (int i = 0; i < 100; ++i) {
    (void)reg.counter("x.fill" + std::to_string(i));
  }
  Counter& a2 = reg.counter("x.a");
  EXPECT_EQ(&a, &a2);
  EXPECT_EQ(a2.value(), 3u);
}

TEST(MetricRegistry, SnapshotSortedByName) {
  MetricRegistry reg;
  reg.counter("z.last").inc();
  reg.gauge("a.first").set(1);
  reg.histogram("m.middle").add(5);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[1].name, "m.middle");
  EXPECT_EQ(snap[2].name, "z.last");
  EXPECT_EQ(snap[1].kind, MetricKind::Histogram);
  EXPECT_EQ(snap[1].count, 1u);
}

// --- pull sources and owner semantics ---------------------------------------

TEST(MetricRegistry, SourcePrefixesNames) {
  MetricRegistry reg;
  int owner = 0;
  reg.register_source("via.agent", &owner, [](MetricSink& s) {
    s.counter("hits", 5);
    s.gauge("live", 2);
  });
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "via.agent.hits");
  EXPECT_EQ(snap[0].value, 5u);
  EXPECT_EQ(snap[1].name, "via.agent.live");
  EXPECT_EQ(snap[1].kind, MetricKind::Gauge);
}

TEST(MetricRegistry, ReRegisterReplacesAndOldOwnerUnregisterIsNoop) {
  // The Node::enable_governor sequence: the replacement registers the name
  // BEFORE the original is destroyed; the original's dtor unregister must
  // not tear down the replacement's source.
  MetricRegistry reg;
  int old_owner = 0, new_owner = 0;
  reg.register_source("pinmgr", &old_owner,
                      [](MetricSink& s) { s.counter("v", 1); });
  reg.register_source("pinmgr", &new_owner,
                      [](MetricSink& s) { s.counter("v", 2); });
  reg.unregister_source("pinmgr", &old_owner);  // stale: must be a no-op
  ASSERT_EQ(reg.num_sources(), 1u);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].value, 2u) << "the replacement's source must survive";
  reg.unregister_source("pinmgr", &new_owner);
  EXPECT_EQ(reg.num_sources(), 0u);
}

TEST(MetricRegistry, SnapshotDeterminismAcrossIdenticalRuns) {
  // Two registries fed the same sequence must export byte-identical text -
  // the property the --metrics determinism gate builds on.
  const auto populate = [](MetricRegistry& reg, int& owner) {
    reg.counter("via.agent.register_total").inc(7);
    reg.gauge("simkern.mem.free_frames").set(1234);
    Histogram& h = reg.histogram("via.agent.register_ns");
    for (std::uint64_t v = 1; v < 100; v += 7) h.add(v * v);
    reg.register_source("msg.ch", &owner, [](MetricSink& s) {
      s.counter("bytes_moved", 65536);
      s.counter("retries", 3);
    });
  };
  MetricRegistry r1, r2;
  int o1 = 0, o2 = 0;
  populate(r1, o1);
  populate(r2, o2);
  EXPECT_EQ(to_proc_text(r1.snapshot()), to_proc_text(r2.snapshot()));
  EXPECT_EQ(to_json(r1.snapshot()), to_json(r2.snapshot()));
  // And a second snapshot of the same registry is identical to the first.
  EXPECT_EQ(to_proc_text(r1.snapshot()), to_proc_text(r1.snapshot()));
}

TEST(ProcText, HistogramRendersSummaryLines) {
  MetricRegistry reg;
  reg.histogram("via.agent.register_ns").add(1000);
  const std::string text = to_proc_text(reg.snapshot());
  EXPECT_NE(text.find("via.agent.register_ns.count 1\n"), std::string::npos);
  EXPECT_NE(text.find("via.agent.register_ns.sum 1000\n"), std::string::npos);
  EXPECT_NE(text.find("via.agent.register_ns.max 1000\n"), std::string::npos);
}

}  // namespace
}  // namespace vialock::obs
