// sampler_test.cc - unit tests for the continuous-telemetry sampler
// (DESIGN.md section 16): cluster merge semantics, the cached merge plan
// (relayouts only when a source's layout changes), the bounded sample ring,
// metric-reference resolution, SLO once-per-window firing, and the
// delta/rate derivation in the timeline export.
#include "obs/sampler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"

namespace vialock::obs {
namespace {

const Metric* find(const Sampler::Sample& s, std::string_view name) {
  for (const Metric& m : s.metrics)
    if (m.name == name) return &m;
  return nullptr;
}

// --- cluster merge -----------------------------------------------------------

TEST(Sampler, MergesRegistriesAndExtras) {
  MetricRegistry a;
  MetricRegistry b;
  a.counter("ops").inc(3);
  b.counter("ops").inc(4);
  a.gauge("depth").set(10);
  b.gauge("depth").set(2);
  a.histogram("lat_ns").add(100);
  a.histogram("lat_ns").add(1000);
  b.histogram("lat_ns").add(100000);

  Sampler smp;
  smp.add_registry(&a);
  smp.add_registry(&b);
  std::uint64_t side = 7;
  smp.add_extra("x", [&side](MetricSink& s) { s.gauge("side", side); });
  smp.sample(1'000'000);

  ASSERT_EQ(smp.samples().size(), 1u);
  const Sampler::Sample& s = smp.samples().front();
  EXPECT_EQ(s.when, 1'000'000);

  const Metric* ops = find(s, "ops");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->kind, MetricKind::Counter);
  EXPECT_EQ(ops->value, 7u);  // 3 + 4

  const Metric* depth = find(s, "depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->value, 12u);  // gauges sum across hosts

  const Metric* lat = find(s, "lat_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->kind, MetricKind::Histogram);
  EXPECT_EQ(lat->count, 3u);
  EXPECT_EQ(lat->sum, 101'100u);
  // Quantiles recomputed over the merged buckets with the same nearest-rank
  // walk as Histogram::quantile: target = floor(0.99 * (3 - 1)) = rank 1,
  // the 1000-sample's bucket - not host a's local tail, and max still sees
  // host b's outlier.
  EXPECT_EQ(lat->p99, Histogram::upper_bound(Histogram::bucket_of(1000)));
  EXPECT_EQ(lat->max, 100000u);

  const Metric* side_m = find(s, "x.side");
  ASSERT_NE(side_m, nullptr);
  EXPECT_EQ(side_m->value, 7u);

  // Samples are sorted by name (resolve() binary-searches them).
  for (std::size_t i = 1; i < s.metrics.size(); ++i)
    EXPECT_LT(s.metrics[i - 1].name, s.metrics[i].name);
}

TEST(Sampler, SteadyStateReusesMergePlan) {
  MetricRegistry reg;
  reg.counter("ops").inc(1);
  Sampler smp;
  smp.add_registry(&reg);

  smp.sample(1);
  smp.sample(2);
  smp.sample(3);
  EXPECT_EQ(smp.relayouts(), 1u);  // first tick plans, the rest fold

  // A layout change (new instrument, e.g. a channel registering mid-run)
  // forces exactly one re-plan; the new metric appears from that tick on.
  reg.counter("late").inc(9);
  smp.sample(4);
  smp.sample(5);
  EXPECT_EQ(smp.relayouts(), 2u);
  EXPECT_EQ(find(smp.samples()[2], "late"), nullptr);
  const Metric* late = find(smp.samples()[3], "late");
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->value, 9u);

  // Values keep moving through the cached plan without re-planning.
  reg.counter("ops").inc(5);
  smp.sample(6);
  EXPECT_EQ(smp.relayouts(), 2u);
  EXPECT_EQ(find(smp.samples().back(), "ops")->value, 6u);
}

TEST(Sampler, RingDropsOldestBeyondBound) {
  MetricRegistry reg;
  reg.counter("ops").inc(1);
  Sampler::Config cfg;
  cfg.max_samples = 4;
  Sampler smp(std::move(cfg));
  smp.add_registry(&reg);

  for (Nanos t = 1; t <= 6; ++t) smp.sample(t * 100);
  EXPECT_EQ(smp.ticks(), 6u);
  EXPECT_EQ(smp.dropped(), 2u);
  ASSERT_EQ(smp.samples().size(), 4u);
  EXPECT_EQ(smp.samples().front().when, 300);  // 100 and 200 were dropped
  EXPECT_EQ(smp.samples().back().when, 600);
}

// --- metric references -------------------------------------------------------

TEST(Sampler, ResolvesPlainNamesAndHistogramFields) {
  MetricRegistry reg;
  reg.counter("ops").inc(41);
  Histogram& h = reg.histogram("lat_ns");
  for (int i = 0; i < 100; ++i) h.add(64);
  h.add(100000);
  Sampler smp;
  smp.add_registry(&reg);
  smp.sample(1);
  const auto& m = smp.samples().front().metrics;

  std::uint64_t v = 0;
  EXPECT_TRUE(Sampler::resolve(m, "ops", v));
  EXPECT_EQ(v, 41u);
  EXPECT_TRUE(Sampler::resolve(m, "lat_ns", v));
  EXPECT_EQ(v, 101u);  // plain histogram name = count
  EXPECT_TRUE(Sampler::resolve(m, "lat_ns.count", v));
  EXPECT_EQ(v, 101u);
  EXPECT_TRUE(Sampler::resolve(m, "lat_ns.sum", v));
  EXPECT_EQ(v, 100u * 64u + 100000u);
  EXPECT_TRUE(Sampler::resolve(m, "lat_ns.p50", v));
  EXPECT_EQ(v, Histogram::upper_bound(Histogram::bucket_of(64)));
  EXPECT_TRUE(Sampler::resolve(m, "lat_ns.max", v));
  EXPECT_EQ(v, 100000u);
  EXPECT_FALSE(Sampler::resolve(m, "lat_ns.p42", v));
  EXPECT_FALSE(Sampler::resolve(m, "nope", v));
  EXPECT_FALSE(Sampler::resolve(m, "ops.p99", v));  // not a histogram
}

// --- SLO watchdogs -----------------------------------------------------------

TEST(Sampler, SloFiresOncePerWindowWhilePersistentlyViolated) {
  MetricRegistry reg;
  reg.gauge("pressure").set(10);
  Sampler smp;
  smp.add_registry(&reg);
  SloSpec rule;
  rule.metric = "pressure";
  rule.op = SloOp::Le;  // required <= 3: persistently violated
  rule.threshold = 3;
  rule.window = 3;
  smp.add_slo(rule);
  std::uint64_t hook_calls = 0;
  smp.set_slo_hook([&hook_calls](const SloSpec&, const SloFiring&) {
    ++hook_calls;
  });

  for (Nanos t = 1; t <= 7; ++t) smp.sample(t);
  // Ticks 0..6: fires at 0, sleeps 2, fires at 3, sleeps 2, fires at 6.
  ASSERT_EQ(smp.firings().size(), 3u);
  EXPECT_EQ(hook_calls, 3u);
  EXPECT_EQ(smp.firings()[0].tick, 0u);
  EXPECT_EQ(smp.firings()[1].tick, 3u);
  EXPECT_EQ(smp.firings()[2].tick, 6u);
  EXPECT_EQ(smp.firings()[0].observed, 10u);

  // Recovery rearms immediately after the cooldown: satisfied ticks never
  // fire, the next violated tick does.
  reg.gauge("pressure").set(0);
  smp.sample(8);
  smp.sample(9);
  smp.sample(10);
  ASSERT_EQ(smp.firings().size(), 3u);
  reg.gauge("pressure").set(10);
  smp.sample(11);
  ASSERT_EQ(smp.firings().size(), 4u);
}

TEST(Sampler, SloOnMissingMetricNeverFires) {
  MetricRegistry reg;
  reg.counter("ops").inc(1);
  Sampler smp;
  smp.add_registry(&reg);
  SloSpec rule;
  rule.metric = "does.not.exist";
  rule.op = SloOp::Le;
  rule.threshold = 0;
  smp.add_slo(rule);
  smp.sample(1);
  smp.sample(2);
  EXPECT_TRUE(smp.firings().empty());
}

// --- exports -----------------------------------------------------------------

TEST(Sampler, TimelineDerivesDeltaAndRate) {
  MetricRegistry reg;
  Counter& ops = reg.counter("ops");
  Sampler smp;
  smp.add_registry(&reg);

  ops.inc(10);
  smp.sample(1'000'000);
  ops.inc(4);
  smp.sample(2'000'000);
  ops.inc(1);
  smp.sample(3'000'000);

  const std::string json = smp.timeline_json("unit", 42);
  // Point = [t_ns, value, delta-vs-previous, rate-per-second].
  EXPECT_NE(json.find("[1000000, 10, 0, 0]"), std::string::npos) << json;
  EXPECT_NE(json.find("[2000000, 14, 4, 4000]"), std::string::npos) << json;
  EXPECT_NE(json.find("[3000000, 15, 1, 1000]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ticks\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"interval_ns\": 1000000"), std::string::npos);
}

TEST(Sampler, TimelineGaugeDeltasGoNegative) {
  MetricRegistry reg;
  Gauge& g = reg.gauge("depth");
  Sampler smp;
  smp.add_registry(&reg);
  g.set(8);
  smp.sample(1'000'000);
  g.set(3);
  smp.sample(2'000'000);
  const std::string json = smp.timeline_json("unit", 0);
  EXPECT_NE(json.find("[2000000, 3, -5, -5000]"), std::string::npos) << json;
}

TEST(Sampler, TimelineSplitsHistogramsIntoCountAndP99Series) {
  MetricRegistry reg;
  reg.histogram("lat_ns").add(100);
  Sampler smp;
  smp.add_registry(&reg);
  smp.sample(1'000'000);
  const std::string json = smp.timeline_json("unit", 0);
  EXPECT_NE(json.find("\"lat_ns.count\""), std::string::npos);
  EXPECT_NE(json.find("\"lat_ns.p99\""), std::string::npos);
}

TEST(Sampler, ChromeCounterOverlayRendersConfiguredMetrics) {
  MetricRegistry reg;
  reg.counter("ops").inc(5);
  Sampler::Config cfg;
  cfg.trace_metrics = {"ops", "not.there"};
  Sampler smp(std::move(cfg));
  smp.add_registry(&reg);
  smp.sample(2'000);

  const std::string ev = smp.chrome_counter_events();
  EXPECT_NE(ev.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(ev.find("\"name\": \"ops\""), std::string::npos);
  EXPECT_NE(ev.find("\"value\": 5"), std::string::npos);
  EXPECT_EQ(ev.find("not.there"), std::string::npos);
  // The shape the chrome_trace(recs, extra) overload splices verbatim.
  EXPECT_EQ(ev.substr(0, 4), "\n  {");
}

// --- shared histogram renderer ----------------------------------------------

TEST(HistogramFields, AllExportersRenderTheSameSevenFields) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("lat_ns");
  for (int i = 0; i < 50; ++i) h.add(128);
  h.add(4096);

  Sampler smp;
  smp.add_registry(&reg);
  smp.sample(1);
  const Metric* m = find(smp.samples().front(), "lat_ns");
  ASSERT_NE(m, nullptr);

  const auto fields = histogram_fields(*m);
  ASSERT_EQ(fields.size(), 7u);
  EXPECT_EQ(fields[0].first, "count");
  EXPECT_EQ(fields[0].second, 51u);
  EXPECT_EQ(fields[1].first, "sum");
  EXPECT_EQ(fields[6].first, "max");
  EXPECT_EQ(fields[6].second, 4096u);

  // The JSON exporter renders exactly those fields in that order.
  const std::string json = to_json(reg.snapshot());
  std::size_t at = json.find("\"lat_ns\"");
  ASSERT_NE(at, std::string::npos);
  for (const auto& [name, value] : fields) {
    const std::string frag =
        "\"" + std::string(name) + "\": " + std::to_string(value);
    at = json.find(frag, at);
    EXPECT_NE(at, std::string::npos) << frag << " missing/out of order";
  }
}

}  // namespace
}  // namespace vialock::obs
