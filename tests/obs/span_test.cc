// span_test.cc - sim-clock spans: nesting, unbalanced-close handling,
// capacity bounds, TraceRing mirroring, chrome-trace JSON well-formedness,
// and the ProcRegistry mount/owner semantics.
#include "obs/span.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "obs/export.h"
#include "obs/proc_registry.h"
#include "util/clock.h"
#include "util/trace.h"

namespace vialock::obs {
namespace {

// --- a minimal JSON well-formedness checker ---------------------------------
// Syntax only (objects, arrays, strings, numbers, literals); enough to prove
// the hand-rendered exports parse. Rejects trailing garbage.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (!expect('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return expect('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(JsonCheckerSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker(R"({"a": [1, 2.5, "x\"y", true, null]})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a": )").valid());
  EXPECT_FALSE(JsonChecker(R"({"a": 1} trailing)").valid());
  EXPECT_FALSE(JsonChecker(R"([1, 2,])").valid());
}

// --- spans -------------------------------------------------------------------

TEST(SpanRecorder, DisabledRecordsNothing) {
  Clock clock;
  SpanRecorder rec(clock);
  EXPECT_EQ(rec.begin("x"), kInvalidSpan);
  { const ScopedSpan s(rec, "scoped"); }
  EXPECT_TRUE(rec.spans().empty());
  EXPECT_EQ(rec.unbalanced_closes(), 0u) << "ending kInvalidSpan is free";
}

TEST(SpanRecorder, NestingDepthsAndDurations) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);

  const SpanId outer = rec.begin("outer");
  clock.advance(100);
  const SpanId inner = rec.begin("inner");
  clock.advance(40);
  rec.end(inner);
  clock.advance(10);
  rec.end(outer);

  ASSERT_EQ(rec.spans().size(), 2u);
  const auto& so = rec.spans()[0];
  const auto& si = rec.spans()[1];
  EXPECT_EQ(so.name, "outer");
  EXPECT_EQ(so.depth, 0u);
  EXPECT_EQ(so.start, 0u);
  EXPECT_EQ(so.dur, 150u);
  EXPECT_EQ(si.depth, 1u);
  EXPECT_EQ(si.start, 100u);
  EXPECT_EQ(si.dur, 40u);
  EXPECT_EQ(rec.open_spans(), 0u);
}

TEST(SpanRecorder, SeparateTracksNestIndependently) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);
  const SpanId a = rec.begin("a", /*tid=*/1);
  const SpanId b = rec.begin("b", /*tid=*/2);
  EXPECT_EQ(rec.spans()[0].depth, 0u);
  EXPECT_EQ(rec.spans()[1].depth, 0u) << "tracks have independent depth";
  rec.end(a);
  rec.end(b);
}

TEST(SpanRecorder, UnbalancedClosesAreCountedNoops) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);
  const SpanId a = rec.begin("a");
  rec.end(a);
  rec.end(a);           // double close
  rec.end(12345);       // unknown id
  rec.end(kInvalidSpan);  // free (the disabled-ScopedSpan path)
  EXPECT_EQ(rec.unbalanced_closes(), 2u);
  EXPECT_EQ(rec.open_spans(), 0u);
  ASSERT_EQ(rec.spans().size(), 1u);
  EXPECT_TRUE(rec.spans()[0].closed());
}

TEST(SpanRecorder, CapacityBoundsAndDropCounting) {
  Clock clock;
  SpanRecorder rec(clock, /*max_spans=*/2);
  rec.enable(true);
  const SpanId a = rec.begin("a");
  const SpanId b = rec.begin("b");
  const SpanId c = rec.begin("c");  // over capacity
  EXPECT_EQ(c, kInvalidSpan);
  EXPECT_EQ(rec.dropped(), 1u);
  EXPECT_EQ(rec.spans().size(), 2u);
  rec.end(a);
  rec.end(b);
  rec.end(c);  // dropped span: free no-op
  EXPECT_EQ(rec.unbalanced_closes(), 0u);
}

TEST(SpanRecorder, MirrorsToTraceRing) {
  Clock clock;
  TraceRing ring(8);
  ring.enable(true);
  SpanRecorder rec(clock);
  rec.enable(true);
  rec.mirror_to(&ring);
  const SpanId a = rec.begin("x");
  clock.advance(5);
  rec.end(a);
  const auto events = ring.tail();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].event, TraceEvent::SpanBegin);
  EXPECT_EQ(events[1].event, TraceEvent::SpanEnd);
}

TEST(ChromeTrace, WellFormedAndSkipsOpenSpans) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);
  const SpanId done = rec.begin("done \"quoted\\name\"");
  clock.advance(1234);
  rec.end(done);
  (void)rec.begin("still-open");

  const std::string json = chrome_trace(rec);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 0.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 1.234"), std::string::npos);
  EXPECT_EQ(json.find("still-open"), std::string::npos)
      << "open spans stay out of the export";
}

TEST(ChromeTrace, EmptyRecorderStillParses) {
  Clock clock;
  SpanRecorder rec(clock);
  EXPECT_TRUE(JsonChecker(chrome_trace(rec)).valid());
}

// --- causal trace contexts ---------------------------------------------------

TEST(TraceContext, NestedSpansShareTraceAndChainParents) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);
  const SpanId outer = rec.begin("outer");
  const SpanId inner = rec.begin("inner");
  rec.end(inner);
  rec.end(outer);

  const auto& so = rec.spans()[0];
  const auto& si = rec.spans()[1];
  EXPECT_NE(so.trace_id, 0u);
  EXPECT_NE(so.span_id, 0u);
  EXPECT_EQ(so.parent_id, 0u) << "no enclosing span: a trace root";
  EXPECT_EQ(si.trace_id, so.trace_id);
  EXPECT_EQ(si.parent_id, so.span_id);
  EXPECT_NE(si.span_id, so.span_id);
}

TEST(TraceContext, SiblingRootsGetDistinctTraces) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);
  const SpanId a = rec.begin("a");
  rec.end(a);
  const SpanId b = rec.begin("b");
  rec.end(b);
  EXPECT_NE(rec.spans()[0].trace_id, rec.spans()[1].trace_id);
}

TEST(TraceContext, IdsAreDeterministicPerSeed) {
  Clock clock;
  auto run = [&clock](std::uint64_t seed) {
    SpanRecorder rec(clock);
    rec.seed_ids(seed);
    rec.enable(true);
    const SpanId outer = rec.begin("outer");
    const SpanId inner = rec.begin("inner");
    rec.end(inner);
    rec.end(outer);
    return std::make_pair(rec.spans()[0].trace_id, rec.spans()[1].span_id);
  };
  EXPECT_EQ(run(7), run(7)) << "same seed, same id stream";
  EXPECT_NE(run(7), run(8)) << "disjoint seeds, disjoint streams";
}

TEST(TraceContext, AmbientContextAdoptsRemoteParent) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);
  // What a receiving host does with the (trace_id, span_id) pulled out of an
  // arrived message header.
  rec.push_context(TraceContext{0xAAAA, 0xBBBB, 0});
  const SpanId adopted = rec.begin("rx");
  rec.end(adopted);
  rec.pop_context();
  const SpanId fresh = rec.begin("later");
  rec.end(fresh);

  EXPECT_EQ(rec.spans()[0].trace_id, 0xAAAAu);
  EXPECT_EQ(rec.spans()[0].parent_id, 0xBBBBu);
  EXPECT_NE(rec.spans()[1].trace_id, 0xAAAAu)
      << "popped context no longer applies";
  EXPECT_EQ(rec.spans()[1].parent_id, 0u);
}

TEST(TraceContext, EnclosingSpanWinsOverAmbientContext) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);
  const SpanId outer = rec.begin("outer");
  rec.push_context(TraceContext{0xAAAA, 0xBBBB, 0});
  const SpanId inner = rec.begin("inner");
  rec.end(inner);
  rec.pop_context();
  rec.end(outer);
  EXPECT_EQ(rec.spans()[1].trace_id, rec.spans()[0].trace_id)
      << "lexical nesting outranks the ambient stack";
  EXPECT_EQ(rec.spans()[1].parent_id, rec.spans()[0].span_id);
}

TEST(TraceContext, ActiveContextResolvesStackThenAmbient) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);
  EXPECT_FALSE(rec.active_context().valid());
  rec.push_context(TraceContext{0xAAAA, 0xBBBB, 0});
  EXPECT_EQ(rec.active_context().trace_id, 0xAAAAu);
  EXPECT_EQ(rec.active_context().span_id, 0xBBBBu);
  const SpanId s = rec.begin("s");
  EXPECT_EQ(rec.active_context().span_id, rec.spans()[0].span_id)
      << "an open span is the innermost context";
  rec.end(s);
  rec.pop_context();
  EXPECT_FALSE(rec.active_context().valid());
}

TEST(TraceContext, RetransmitsAreChildrenOfTheFrameSpan) {
  // The reliable-transport pattern: one enclosing frame span stays open
  // across all attempts; each attempt (send, then retransmits) is a child.
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);
  {
    const ScopedSpan frame(rec, "msg.frame");
    { const ScopedSpan attempt(rec, "msg.send"); }
    { const ScopedSpan retry(rec, "msg.retransmit"); }
  }
  ASSERT_EQ(rec.spans().size(), 3u);
  const auto& frame = rec.spans()[0];
  EXPECT_EQ(rec.spans()[1].parent_id, frame.span_id);
  EXPECT_EQ(rec.spans()[2].parent_id, frame.span_id);
  EXPECT_EQ(rec.spans()[1].trace_id, frame.trace_id);
  EXPECT_EQ(rec.spans()[2].trace_id, frame.trace_id);
}

TEST(TraceContext, ScopedTraceContextIsFreeWhenDisabledOrInvalid) {
  Clock clock;
  SpanRecorder rec(clock);
  {
    const ScopedTraceContext off(rec, TraceContext{1, 2, 0});
    EXPECT_FALSE(rec.active_context().valid()) << "disabled: nothing pushed";
  }
  rec.enable(true);
  {
    const ScopedTraceContext invalid(rec, TraceContext{});
    EXPECT_FALSE(rec.active_context().valid()) << "invalid ctx: not pushed";
  }
  {
    const ScopedTraceContext on(rec, TraceContext{1, 2, 0});
    EXPECT_TRUE(rec.active_context().valid());
  }
  EXPECT_FALSE(rec.active_context().valid()) << "popped at scope exit";
}

// --- flow events in the merged chrome trace ----------------------------------

/// Renders `v` the way the exporter does ("0x" + lowercase hex).
std::string hex_id(std::uint64_t v) {
  std::string out = "0x";
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const auto nibble = static_cast<unsigned>((v >> shift) & 0xF);
    if (nibble == 0 && !started && shift != 0) continue;
    started = true;
    out += "0123456789abcdef"[nibble];
  }
  return out;
}

TEST(ChromeTrace, FlowEventsStitchTracesAcrossRecorders) {
  Clock clock;
  SpanRecorder host0(clock);
  SpanRecorder host1(clock);
  host0.seed_ids(1);
  host1.seed_ids(2);
  host0.enable(true);
  host1.enable(true);

  // Host 0 sends (one root span), host 1 adopts the in-band context.
  const SpanId send = host0.begin("send");
  clock.advance(10);
  host1.push_context(host0.active_context());
  const SpanId recv = host1.begin("recv");
  clock.advance(5);
  host1.end(recv);
  host1.pop_context();
  host0.end(send);

  const std::uint64_t trace_id = host0.spans()[0].trace_id;
  ASSERT_EQ(host1.spans()[0].trace_id, trace_id);

  const std::string json = chrome_trace({&host0, &host1});
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  const std::string id = "\"id\": \"" + hex_id(trace_id) + "\"";
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find(id), std::string::npos)
      << "flow events carry the trace id";
}

TEST(ChromeTrace, SingleRecorderTraceGetsNoFlowEvents) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);
  const SpanId a = rec.begin("a");
  const SpanId b = rec.begin("b");
  rec.end(b);
  rec.end(a);
  const std::string json = chrome_trace({&rec});
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_EQ(json.find("\"ph\": \"s\""), std::string::npos)
      << "a trace confined to one host needs no flow arrows";
}

// --- /proc registry ----------------------------------------------------------

TEST(ProcRegistry, MountReadLsUnmount) {
  ProcRegistry proc;
  int owner = 0;
  proc.mount("vmstat", &owner, [] { return std::string("pgfault 3\n"); });
  proc.mount("via/agent", &owner, [] { return std::string("registrations 1\n"); });
  EXPECT_EQ(proc.read("vmstat").value_or(""), "pgfault 3\n");
  EXPECT_FALSE(proc.read("nope").has_value());
  const auto paths = proc.ls();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "via/agent");
  EXPECT_EQ(paths[1], "vmstat");
  const std::string all = proc.read_all();
  EXPECT_NE(all.find("== /proc/via/agent =="), std::string::npos);
  proc.unmount("vmstat", &owner);
  EXPECT_EQ(proc.size(), 1u);
}

TEST(ProcRegistry, RemountReplacesAndStaleUnmountIsNoop) {
  ProcRegistry proc;
  int old_owner = 0, new_owner = 0;
  proc.mount("pinmgr", &old_owner, [] { return std::string("old"); });
  proc.mount("pinmgr", &new_owner, [] { return std::string("new"); });
  proc.unmount("pinmgr", &old_owner);  // stale owner: no-op
  EXPECT_EQ(proc.read("pinmgr").value_or(""), "new");
  proc.unmount("pinmgr", &new_owner);
  EXPECT_EQ(proc.size(), 0u);
}

TEST(ProcRegistry, RenderReflectsCurrentState) {
  ProcRegistry proc;
  int counter = 0;
  proc.mount("n", &counter,
             [&counter] { return std::to_string(++counter); });
  EXPECT_EQ(proc.read("n").value_or(""), "1");
  EXPECT_EQ(proc.read("n").value_or(""), "2") << "render runs at read time";
}

}  // namespace
}  // namespace vialock::obs
