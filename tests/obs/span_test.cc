// span_test.cc - sim-clock spans: nesting, unbalanced-close handling,
// capacity bounds, TraceRing mirroring, chrome-trace JSON well-formedness,
// and the ProcRegistry mount/owner semantics.
#include "obs/span.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "obs/export.h"
#include "obs/proc_registry.h"
#include "util/clock.h"
#include "util/trace.h"

namespace vialock::obs {
namespace {

// --- a minimal JSON well-formedness checker ---------------------------------
// Syntax only (objects, arrays, strings, numbers, literals); enough to prove
// the hand-rendered exports parse. Rejects trailing garbage.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (!expect('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return expect('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(JsonCheckerSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker(R"({"a": [1, 2.5, "x\"y", true, null]})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a": )").valid());
  EXPECT_FALSE(JsonChecker(R"({"a": 1} trailing)").valid());
  EXPECT_FALSE(JsonChecker(R"([1, 2,])").valid());
}

// --- spans -------------------------------------------------------------------

TEST(SpanRecorder, DisabledRecordsNothing) {
  Clock clock;
  SpanRecorder rec(clock);
  EXPECT_EQ(rec.begin("x"), kInvalidSpan);
  { const ScopedSpan s(rec, "scoped"); }
  EXPECT_TRUE(rec.spans().empty());
  EXPECT_EQ(rec.unbalanced_closes(), 0u) << "ending kInvalidSpan is free";
}

TEST(SpanRecorder, NestingDepthsAndDurations) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);

  const SpanId outer = rec.begin("outer");
  clock.advance(100);
  const SpanId inner = rec.begin("inner");
  clock.advance(40);
  rec.end(inner);
  clock.advance(10);
  rec.end(outer);

  ASSERT_EQ(rec.spans().size(), 2u);
  const auto& so = rec.spans()[0];
  const auto& si = rec.spans()[1];
  EXPECT_EQ(so.name, "outer");
  EXPECT_EQ(so.depth, 0u);
  EXPECT_EQ(so.start, 0u);
  EXPECT_EQ(so.dur, 150u);
  EXPECT_EQ(si.depth, 1u);
  EXPECT_EQ(si.start, 100u);
  EXPECT_EQ(si.dur, 40u);
  EXPECT_EQ(rec.open_spans(), 0u);
}

TEST(SpanRecorder, SeparateTracksNestIndependently) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);
  const SpanId a = rec.begin("a", /*tid=*/1);
  const SpanId b = rec.begin("b", /*tid=*/2);
  EXPECT_EQ(rec.spans()[0].depth, 0u);
  EXPECT_EQ(rec.spans()[1].depth, 0u) << "tracks have independent depth";
  rec.end(a);
  rec.end(b);
}

TEST(SpanRecorder, UnbalancedClosesAreCountedNoops) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);
  const SpanId a = rec.begin("a");
  rec.end(a);
  rec.end(a);           // double close
  rec.end(12345);       // unknown id
  rec.end(kInvalidSpan);  // free (the disabled-ScopedSpan path)
  EXPECT_EQ(rec.unbalanced_closes(), 2u);
  EXPECT_EQ(rec.open_spans(), 0u);
  ASSERT_EQ(rec.spans().size(), 1u);
  EXPECT_TRUE(rec.spans()[0].closed());
}

TEST(SpanRecorder, CapacityBoundsAndDropCounting) {
  Clock clock;
  SpanRecorder rec(clock, /*max_spans=*/2);
  rec.enable(true);
  const SpanId a = rec.begin("a");
  const SpanId b = rec.begin("b");
  const SpanId c = rec.begin("c");  // over capacity
  EXPECT_EQ(c, kInvalidSpan);
  EXPECT_EQ(rec.dropped(), 1u);
  EXPECT_EQ(rec.spans().size(), 2u);
  rec.end(a);
  rec.end(b);
  rec.end(c);  // dropped span: free no-op
  EXPECT_EQ(rec.unbalanced_closes(), 0u);
}

TEST(SpanRecorder, MirrorsToTraceRing) {
  Clock clock;
  TraceRing ring(8);
  ring.enable(true);
  SpanRecorder rec(clock);
  rec.enable(true);
  rec.mirror_to(&ring);
  const SpanId a = rec.begin("x");
  clock.advance(5);
  rec.end(a);
  const auto events = ring.tail();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].event, TraceEvent::SpanBegin);
  EXPECT_EQ(events[1].event, TraceEvent::SpanEnd);
}

TEST(ChromeTrace, WellFormedAndSkipsOpenSpans) {
  Clock clock;
  SpanRecorder rec(clock);
  rec.enable(true);
  const SpanId done = rec.begin("done \"quoted\\name\"");
  clock.advance(1234);
  rec.end(done);
  (void)rec.begin("still-open");

  const std::string json = chrome_trace(rec);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 0.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 1.234"), std::string::npos);
  EXPECT_EQ(json.find("still-open"), std::string::npos)
      << "open spans stay out of the export";
}

TEST(ChromeTrace, EmptyRecorderStillParses) {
  Clock clock;
  SpanRecorder rec(clock);
  EXPECT_TRUE(JsonChecker(chrome_trace(rec)).valid());
}

// --- /proc registry ----------------------------------------------------------

TEST(ProcRegistry, MountReadLsUnmount) {
  ProcRegistry proc;
  int owner = 0;
  proc.mount("vmstat", &owner, [] { return std::string("pgfault 3\n"); });
  proc.mount("via/agent", &owner, [] { return std::string("registrations 1\n"); });
  EXPECT_EQ(proc.read("vmstat").value_or(""), "pgfault 3\n");
  EXPECT_FALSE(proc.read("nope").has_value());
  const auto paths = proc.ls();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "via/agent");
  EXPECT_EQ(paths[1], "vmstat");
  const std::string all = proc.read_all();
  EXPECT_NE(all.find("== /proc/via/agent =="), std::string::npos);
  proc.unmount("vmstat", &owner);
  EXPECT_EQ(proc.size(), 1u);
}

TEST(ProcRegistry, RemountReplacesAndStaleUnmountIsNoop) {
  ProcRegistry proc;
  int old_owner = 0, new_owner = 0;
  proc.mount("pinmgr", &old_owner, [] { return std::string("old"); });
  proc.mount("pinmgr", &new_owner, [] { return std::string("new"); });
  proc.unmount("pinmgr", &old_owner);  // stale owner: no-op
  EXPECT_EQ(proc.read("pinmgr").value_or(""), "new");
  proc.unmount("pinmgr", &new_owner);
  EXPECT_EQ(proc.size(), 0u);
}

TEST(ProcRegistry, RenderReflectsCurrentState) {
  ProcRegistry proc;
  int counter = 0;
  proc.mount("n", &counter,
             [&counter] { return std::to_string(++counter); });
  EXPECT_EQ(proc.read("n").value_or(""), "1");
  EXPECT_EQ(proc.read("n").value_or(""), "2") << "render runs at read time";
}

}  // namespace
}  // namespace vialock::obs
