// flight_recorder_test.cc - postmortem dumps: JSON well-formedness, bounded
// views, sink/armed semantics, and the same-seed byte-identical replay
// guarantee (DESIGN.md section 11).
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/clock.h"
#include "util/trace.h"

namespace vialock::obs {
namespace {

/// One deterministic mini-incident: a few nested spans, ring events, and
/// metrics, then a dump. Everything derives from the virtual clock and the
/// fixed span-ID seed, so two runs produce the same bytes.
std::string run_incident(std::uint64_t seed) {
  Clock clock;
  TraceRing ring(16);
  ring.enable(true);
  SpanRecorder spans(clock);
  spans.seed_ids(seed);
  spans.enable(true);
  spans.mirror_to(&ring);
  MetricRegistry registry;

  registry.counter("via.doorbells").inc(3);
  registry.histogram("via.dma_ns").add(250);
  registry.histogram("via.dma_ns").add(1000);
  {
    const ScopedSpan outer(spans, "msg.frame");
    clock.advance(100);
    { const ScopedSpan inner(spans, "msg.send"); clock.advance(40); }
    { const ScopedSpan retry(spans, "msg.retransmit"); clock.advance(60); }
  }
  ring.record(clock.now(), TraceEvent::SendRetry, 7, 0x2000, 42);

  FlightRecorder flight(/*max_spans=*/8, /*max_trace=*/8);
  flight.set_seed(seed);
  return flight.dump("test_incident", spans, ring, registry.snapshot());
}

TEST(FlightRecorder, DumpIsSelfContainedAndNamesItsTrigger) {
  const std::string json = run_incident(97);
  EXPECT_NE(json.find("\"reason\": \"test_incident\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 97"), std::string::npos);
  EXPECT_NE(json.find("msg.retransmit"), std::string::npos);
  EXPECT_NE(json.find("via.dma_ns"), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
}

TEST(FlightRecorder, SameSeedDumpsAreByteIdentical) {
  EXPECT_EQ(run_incident(97), run_incident(97));
  EXPECT_NE(run_incident(97), run_incident(98))
      << "the seed is stamped in and feeds the span-id stream";
}

TEST(FlightRecorder, ViewIsBoundedToTheMostRecentSpans) {
  Clock clock;
  TraceRing ring(4);
  SpanRecorder spans(clock);
  spans.enable(true);
  MetricRegistry registry;
  for (int i = 0; i < 10; ++i) {
    const SpanId s = spans.begin("span" + std::to_string(i));
    clock.advance(1);
    spans.end(s);
  }
  FlightRecorder flight(/*max_spans=*/3, /*max_trace=*/4);
  const std::string json =
      flight.dump("bounded", spans, ring, registry.snapshot());
  EXPECT_EQ(json.find("\"span6\""), std::string::npos)
      << "older spans fall outside the bounded window";
  EXPECT_NE(json.find("\"span7\""), std::string::npos);
  EXPECT_NE(json.find("\"span9\""), std::string::npos);
}

TEST(FlightRecorder, SinkReceivesEveryDumpAndArmsTheRecorder) {
  Clock clock;
  TraceRing ring(4);
  SpanRecorder spans(clock);
  MetricRegistry registry;
  FlightRecorder flight;
  EXPECT_FALSE(flight.armed());

  std::vector<std::string> reasons;
  std::string delivered;
  flight.set_sink([&](std::string_view reason, const std::string& json) {
    reasons.emplace_back(reason);
    delivered = json;
  });
  EXPECT_TRUE(flight.armed());

  const std::string returned =
      flight.dump("first", spans, ring, registry.snapshot());
  (void)flight.dump("second", spans, ring, registry.snapshot());
  ASSERT_EQ(reasons.size(), 2u);
  EXPECT_EQ(reasons[0], "first");
  EXPECT_EQ(reasons[1], "second");
  EXPECT_EQ(flight.dumps(), 2u);
  EXPECT_NE(delivered.find("\"reason\": \"second\""), std::string::npos);
  EXPECT_NE(returned.find("\"reason\": \"first\""), std::string::npos);
}

}  // namespace
}  // namespace vialock::obs
