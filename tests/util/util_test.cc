// util_test.cc - the utility substrate: statistics, histograms, RNG
// determinism, table formatting, clock/cost composition, flag operations.
#include <gtest/gtest.h>

#include <sstream>

#include "util/clock.h"
#include "util/cost_model.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace vialock {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(Summary, MergeEqualsCombinedStream) {
  Summary a;
  Summary b;
  Summary all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 1.7 - 20;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmptySides) {
  Summary a;
  Summary empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  Summary c;
  c.merge(a);
  EXPECT_EQ(c.count(), 1u);
  EXPECT_DOUBLE_EQ(c.mean(), 3.0);
}

TEST(Log2Histogram, BucketsAndQuantiles) {
  Log2Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_LE(h.quantile(0.0), 1u);
  // The median of 1..1000 (~500) lands in the 256..511 bucket; the tail in
  // the 512..1023 bucket.
  EXPECT_EQ(h.quantile(0.5), 511u);
  EXPECT_EQ(h.quantile(1.0), 1023u);
}

TEST(Log2Histogram, ZeroGoesToBucketZero) {
  Log2Histogram h;
  h.add(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next(), b.next());
  Rng c(43);
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.below(17), 17u);
    const auto v = rng.between(5, 9);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 9u);
  }
}

TEST(Rng, UniformCoversUnitInterval) {
  Rng rng(3);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Table, FormatsAlignedAscii) {
  Table t({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos) << out;
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos) << out;
  EXPECT_NE(out.find("+-------+-------+"), std::string::npos) << out;
}

TEST(Table, HumanUnits) {
  EXPECT_EQ(Table::nanos(900), "900 ns");
  EXPECT_EQ(Table::nanos(25'000), "25.00 us");
  EXPECT_EQ(Table::nanos(13'000'000), "13.00 ms");
  EXPECT_EQ(Table::nanos(20'000'000'000ULL), "20.00 s");
  EXPECT_EQ(Table::bytes(512), "512 B");
  EXPECT_EQ(Table::bytes(64 * 1024), "64 KB");
  EXPECT_EQ(Table::bytes(3 * 1024 * 1024), "3 MB");
  EXPECT_EQ(Table::rate(1024 * 1024, 1'000'000'000ULL), "1.00 MB/s");
}

TEST(Clock, AdvancesMonotonically) {
  Clock c;
  EXPECT_EQ(c.now(), 0u);
  c.advance(5);
  c.advance(7);
  EXPECT_EQ(c.now(), 12u);
  VirtualStopwatch sw(c);
  c.advance(100);
  EXPECT_EQ(sw.elapsed(), 100u);
  c.reset();
  EXPECT_EQ(c.now(), 0u);
}

TEST(CostModel, CompositesAreLinear) {
  CostModel m;
  EXPECT_EQ(m.copy(100), 100 * m.mem_copy_per_byte);
  EXPECT_EQ(m.swap_io(4096), m.swap_seek + 4096 * m.swap_per_byte);
  EXPECT_EQ(m.dma(0), m.dma_startup);
  EXPECT_EQ(m.wire(10) - m.wire(0), 10 * m.wire_per_byte);
}

}  // namespace

// Flag-ops test enum: must live at namespace scope so the trait
// specialization can name it.
enum class TestFlag : std::uint8_t { None = 0, A = 1, B = 2, C = 4 };

}  // namespace vialock

template <>
inline constexpr bool vialock::enable_flag_ops<vialock::TestFlag> = true;

namespace vialock {
namespace {

TEST(Flags, BitOperationsCompose) {
  TestFlag f = TestFlag::A | TestFlag::C;
  EXPECT_TRUE(has(f, TestFlag::A));
  EXPECT_FALSE(has(f, TestFlag::B));
  f |= TestFlag::B;
  EXPECT_TRUE(has(f, TestFlag::B));
  f &= ~TestFlag::A;
  EXPECT_FALSE(has(f, TestFlag::A));
  EXPECT_TRUE(has(f, TestFlag::C));
}

}  // namespace
}  // namespace vialock
