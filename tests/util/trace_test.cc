// trace_test.cc - the event-trace ring and its kernel hooks.
#include "util/trace.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace vialock {
namespace {

using simkern::kPageSize;
using test::KernelBox;
using test::must_mmap;

TEST(TraceRing, RecordsInOrderAndWraps) {
  TraceRing ring(4);
  ring.enable(true);
  for (std::uint32_t i = 0; i < 6; ++i) {
    ring.record(i * 100, TraceEvent::MinorFault, i, 0, 0);
  }
  EXPECT_EQ(ring.size(), 4u);
  const auto tail = ring.tail();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().pid, 2u);  // events 0,1 overwritten
  EXPECT_EQ(tail.back().pid, 5u);
  EXPECT_EQ(ring.tail(2).size(), 2u);
  EXPECT_EQ(ring.tail(2).front().pid, 4u);
}

TEST(TraceRing, DisabledRecordsNothing) {
  TraceRing ring(8);
  ring.record(1, TraceEvent::SwapOut, 1, 2, 3);
  EXPECT_EQ(ring.size(), 0u);
}

TEST(TraceRing, EntryFormatsReadably) {
  TraceRing::Entry e{1234, TraceEvent::SwapOut, 7, 0xABC000, 42};
  const std::string s = e.to_string();
  EXPECT_NE(s.find("swap-out"), std::string::npos);
  EXPECT_NE(s.find("pid=7"), std::string::npos);
  EXPECT_NE(s.find("0xabc000"), std::string::npos);
  EXPECT_NE(s.find("pfn=42"), std::string::npos);
}

TEST(TraceKernel, FaultAndSwapEventsAppear) {
  KernelBox box;
  box.kern.trace().enable(true);
  const auto pid = box.kern.create_task("t");
  const auto a = must_mmap(box.kern, pid, 2);
  ASSERT_TRUE(ok(box.kern.touch(pid, a, true)));
  box.kern.task(pid).mm.pt.walk(a)->accessed = false;
  (void)box.kern.try_to_free_pages(1);
  ASSERT_TRUE(ok(box.kern.touch(pid, a, true)));  // major fault back in

  bool saw_minor = false;
  bool saw_swapout = false;
  bool saw_major = false;
  for (const auto& e : box.kern.trace().tail()) {
    saw_minor |= e.event == TraceEvent::MinorFault;
    saw_swapout |= e.event == TraceEvent::SwapOut;
    saw_major |= e.event == TraceEvent::MajorFault;
  }
  EXPECT_TRUE(saw_minor);
  EXPECT_TRUE(saw_swapout);
  EXPECT_TRUE(saw_major);
}

TEST(TraceKernel, PinEventsFollowKiobufLifecycle) {
  KernelBox box;
  box.kern.trace().enable(true);
  const auto pid = box.kern.create_task("t");
  const auto a = must_mmap(box.kern, pid, 2);
  simkern::Kiobuf kb = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, kb, a, 2 * kPageSize)));
  box.kern.unmap_kiobuf(kb);
  int pins = 0;
  int unpins = 0;
  for (const auto& e : box.kern.trace().tail()) {
    pins += e.event == TraceEvent::PagePinned;
    unpins += e.event == TraceEvent::PageUnpinned;
  }
  EXPECT_EQ(pins, 2);
  EXPECT_EQ(unpins, 2);
}

TEST(TraceKernel, TracingOffByDefaultAndCostFree) {
  KernelBox box;
  const auto pid = box.kern.create_task("t");
  const auto a = must_mmap(box.kern, pid, 4);
  for (int p = 0; p < 4; ++p)
    ASSERT_TRUE(ok(box.kern.touch(pid, a + p * kPageSize, true)));
  EXPECT_EQ(box.kern.trace().size(), 0u);
}

}  // namespace
}  // namespace vialock
