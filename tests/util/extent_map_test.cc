// extent_map_test.cc - the ordered free-extent index behind the TPT
// allocator and the VMA gap placement (DESIGN.md section 9).
//
// The load-bearing property is placement equivalence: first-fit over free
// extents in address order must pick exactly the slot the seed's bitmap scan
// picked, for every allocation in every interleaving. The randomized
// differential test drives both models with the same operation stream and
// compares every answer.
#include "util/extent_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace vialock {
namespace {

TEST(ExtentMap, StartsFullyFree) {
  ExtentMap<std::uint32_t> m(64);
  EXPECT_EQ(m.extent_count(), 1u);
  EXPECT_EQ(m.total_free(), 64u);
  EXPECT_EQ(m.largest_extent(), 64u);
  EXPECT_TRUE(m.is_free(0, 64));
  EXPECT_FALSE(m.is_free(0, 65));
}

TEST(ExtentMap, EmptyUniverseHasNothing) {
  ExtentMap<std::uint32_t> m(0);
  EXPECT_EQ(m.extent_count(), 0u);
  EXPECT_EQ(m.find_first_fit(1), std::nullopt);
}

TEST(ExtentMap, ReserveSplitsAndReleaseCoalesces) {
  ExtentMap<std::uint32_t> m(64);
  m.reserve(16, 8);  // [16, 24) taken: two holes remain
  EXPECT_EQ(m.extent_count(), 2u);
  EXPECT_EQ(m.total_free(), 56u);
  EXPECT_EQ(m.largest_extent(), 40u);
  EXPECT_TRUE(m.is_free(0, 16));
  EXPECT_FALSE(m.is_free(15, 2));
  EXPECT_TRUE(m.is_free(24, 40));

  m.release(16, 8);  // coalesces with both neighbours
  EXPECT_EQ(m.extent_count(), 1u);
  EXPECT_EQ(m.total_free(), 64u);
  EXPECT_EQ(m.largest_extent(), 64u);
}

TEST(ExtentMap, FirstFitPrefersLowestAddress) {
  ExtentMap<std::uint32_t> m(64);
  m.reserve(0, 4);
  m.reserve(8, 4);  // holes: [4,8) and [12,64)
  EXPECT_EQ(m.find_first_fit(4), 4u);   // fits the first hole exactly
  EXPECT_EQ(m.find_first_fit(5), 12u);  // skips the too-small hole
  EXPECT_EQ(m.find_first_fit(52), 12u);
  EXPECT_EQ(m.find_first_fit(53), std::nullopt);
}

TEST(ExtentMap, FirstFitFromStraddlesAndClamps) {
  ExtentMap<std::uint64_t> m(1000);
  m.reserve(100, 100);  // holes: [0,100) and [200,1000)
  // lo inside the low hole: candidate clamps up to lo.
  EXPECT_EQ(m.find_first_fit_from(10, 50), 10u);
  // lo inside the low hole but the remainder is too short: jump to the next.
  EXPECT_EQ(m.find_first_fit_from(60, 50), 200u);
  // lo inside the reserved range: first free address at or above lo.
  EXPECT_EQ(m.find_first_fit_from(150, 1), 200u);
  // lo past every hole large enough.
  EXPECT_EQ(m.find_first_fit_from(960, 50), std::nullopt);
  EXPECT_EQ(m.find_first_fit_from(950, 50), 950u);
}

TEST(ExtentMap, ReleaseMergesLeftOnly) {
  ExtentMap<std::uint32_t> m(64);
  m.reserve(8, 16);  // holes: [0,8) and [24,64)
  m.release(8, 4);   // adjacent to [0,8) on the left only
  EXPECT_EQ(m.extent_count(), 2u);
  EXPECT_TRUE(m.is_free(0, 12));
  EXPECT_FALSE(m.is_free(12, 1));
}

TEST(ExtentMap, ReleaseMergesRightOnly) {
  ExtentMap<std::uint32_t> m(64);
  m.reserve(8, 16);  // holes: [0,8) and [24,64)
  m.release(20, 4);  // adjacent to [24,64) on the right only
  EXPECT_EQ(m.extent_count(), 2u);
  EXPECT_TRUE(m.is_free(20, 44));
  EXPECT_FALSE(m.is_free(19, 1));
}

TEST(ExtentMap, ReleaseIsolatedHole) {
  ExtentMap<std::uint32_t> m(64);
  m.reserve(0, 64);
  m.release(30, 4);
  EXPECT_EQ(m.extent_count(), 1u);
  EXPECT_EQ(m.total_free(), 4u);
  EXPECT_TRUE(m.is_free(30, 4));
}

TEST(ExtentMap, ForEachFreeVisitsInAddressOrder) {
  ExtentMap<std::uint32_t> m(64);
  m.reserve(8, 8);
  m.reserve(32, 8);
  std::vector<std::uint32_t> starts;
  m.for_each_free([&](std::uint32_t s, std::uint32_t) { starts.push_back(s); });
  EXPECT_EQ(starts, (std::vector<std::uint32_t>{0, 16, 40}));
}

// The naive reference: a plain bitmap with the seed's linear first-fit scan.
class BitmapModel {
 public:
  explicit BitmapModel(std::uint32_t n) : used_(n, false) {}

  std::optional<std::uint32_t> find_first_fit(std::uint32_t len) const {
    if (len == 0 || len > used_.size()) return std::nullopt;
    std::uint32_t run = 0;
    for (std::uint32_t i = 0; i < used_.size(); ++i) {
      run = used_[i] ? 0 : run + 1;
      if (run == len) return i + 1 - len;
    }
    return std::nullopt;
  }

  void set(std::uint32_t start, std::uint32_t len, bool used) {
    for (std::uint32_t i = start; i < start + len; ++i) used_[i] = used;
  }

  std::uint32_t total_free() const {
    std::uint32_t n = 0;
    for (const bool u : used_) n += u ? 0 : 1;
    return n;
  }

 private:
  std::vector<bool> used_;
};

// Random alloc/free stream, every placement compared against the bitmap scan.
TEST(ExtentMap, DifferentialAgainstBitmapFirstFit) {
  constexpr std::uint32_t kUniverse = 512;
  ExtentMap<std::uint32_t> m(kUniverse);
  BitmapModel ref(kUniverse);
  Rng rng(0xe22dULL);

  struct Alloc {
    std::uint32_t start, len;
  };
  std::vector<Alloc> live;

  for (int step = 0; step < 4000; ++step) {
    const bool do_alloc = live.empty() || rng.below(100) < 60;
    if (do_alloc) {
      const std::uint32_t len = 1 + static_cast<std::uint32_t>(rng.below(24));
      const auto got = m.find_first_fit(len);
      const auto want = ref.find_first_fit(len);
      ASSERT_EQ(got, want) << "step " << step << " len " << len;
      if (got) {
        m.reserve(*got, len);
        ref.set(*got, len, true);
        live.push_back({*got, len});
      }
    } else {
      const std::size_t pick = rng.below(live.size());
      const Alloc a = live[pick];
      live[pick] = live.back();
      live.pop_back();
      m.release(a.start, a.len);
      ref.set(a.start, a.len, false);
    }
    ASSERT_EQ(m.total_free(), ref.total_free()) << "step " << step;
  }
}

}  // namespace
}  // namespace vialock
