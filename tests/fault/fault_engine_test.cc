// fault_engine_test.cc - trigger matching and determinism of the fault engine.

#include "fault/fault.h"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>

namespace vialock::fault {
namespace {

TEST(FaultEngine, SiteFilterOnlyMatchesItsSite) {
  Clock clock;
  FaultPlan plan;
  plan.add({.site = FaultSite::Wire, .action = FaultAction::Drop});
  FaultEngine eng(plan, clock);

  EXPECT_FALSE(eng.check(FaultSite::SwapRead).has_value());
  EXPECT_FALSE(eng.check(FaultSite::NicDoorbell).has_value());
  const auto d = eng.check(FaultSite::Wire);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->action, FaultAction::Drop);
  EXPECT_EQ(eng.stats().seen(FaultSite::SwapRead), 1u);
  EXPECT_EQ(eng.stats().injected(FaultSite::SwapRead), 0u);
  EXPECT_EQ(eng.stats().injected(FaultSite::Wire), 1u);
}

TEST(FaultEngine, AfterEventsSkipsTheFirstN) {
  Clock clock;
  FaultPlan plan;
  plan.add({.site = FaultSite::SwapWrite,
            .action = FaultAction::Fail,
            .after_events = 3});
  FaultEngine eng(plan, clock);

  for (int i = 0; i < 3; ++i)
    EXPECT_FALSE(eng.check(FaultSite::SwapWrite).has_value()) << i;
  EXPECT_TRUE(eng.check(FaultSite::SwapWrite).has_value());
}

TEST(FaultEngine, MaxTriggersBoundsTheRule) {
  Clock clock;
  FaultPlan plan;
  plan.add({.site = FaultSite::BuddyAlloc,
            .action = FaultAction::Fail,
            .max_triggers = 2});
  FaultEngine eng(plan, clock);

  EXPECT_TRUE(eng.check(FaultSite::BuddyAlloc).has_value());
  EXPECT_TRUE(eng.check(FaultSite::BuddyAlloc).has_value());
  EXPECT_FALSE(eng.check(FaultSite::BuddyAlloc).has_value());
  EXPECT_EQ(eng.stats().injected(FaultSite::BuddyAlloc), 2u);
  EXPECT_EQ(eng.stats().seen(FaultSite::BuddyAlloc), 3u);
}

TEST(FaultEngine, TimeWindowGatesOnTheSharedClock) {
  Clock clock;
  FaultPlan plan;
  plan.add({.site = FaultSite::NicDma,
            .action = FaultAction::Corrupt,
            .not_before = 1'000,
            .not_after = 2'000});
  FaultEngine eng(plan, clock);

  EXPECT_FALSE(eng.check(FaultSite::NicDma).has_value());  // t=0: too early
  clock.advance(1'500);
  EXPECT_TRUE(eng.check(FaultSite::NicDma).has_value());   // inside window
  clock.advance(1'000);
  EXPECT_FALSE(eng.check(FaultSite::NicDma).has_value());  // t=2500: too late
}

TEST(FaultEngine, FirstMatchingRuleWins) {
  Clock clock;
  FaultPlan plan;
  plan.add({.site = FaultSite::Wire, .action = FaultAction::Delay,
            .delay = 42});
  plan.add({.site = FaultSite::Wire, .action = FaultAction::Drop});
  FaultEngine eng(plan, clock);

  const auto d = eng.check(FaultSite::Wire);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->action, FaultAction::Delay);
  EXPECT_EQ(d->delay, 42u);
  EXPECT_EQ(d->rule_index, 0u);
}

TEST(FaultEngine, ZeroProbabilityNeverFires) {
  Clock clock;
  FaultPlan plan;
  plan.add({.site = FaultSite::Wire, .action = FaultAction::Drop,
            .probability = 0.0});
  FaultEngine eng(plan, clock);
  for (int i = 0; i < 1000; ++i)
    EXPECT_FALSE(eng.check(FaultSite::Wire).has_value());
}

TEST(FaultEngine, ProbabilityRoughlyMatchesRate) {
  Clock clock;
  FaultPlan plan;
  plan.seed = 7;
  plan.add({.site = FaultSite::Wire, .action = FaultAction::Drop,
            .probability = 0.25});
  FaultEngine eng(plan, clock);
  int fired = 0;
  for (int i = 0; i < 10'000; ++i)
    if (eng.check(FaultSite::Wire)) ++fired;
  EXPECT_GT(fired, 2'000);
  EXPECT_LT(fired, 3'000);
}

TEST(FaultEngine, SameSeedSameSchedule) {
  constexpr auto make_plan = [] {
    FaultPlan plan;
    plan.seed = 42;
    plan.add({.site = FaultSite::Wire, .action = FaultAction::Drop,
              .probability = 0.3});
    plan.add({.site = FaultSite::NicDma, .action = FaultAction::Corrupt,
              .probability = 0.1});
    return plan;
  };
  constexpr std::array sites{FaultSite::Wire, FaultSite::NicDma,
                             FaultSite::Wire, FaultSite::SwapRead};

  Clock c1, c2;
  FaultEngine a(make_plan(), c1);
  FaultEngine b(make_plan(), c2);
  for (int round = 0; round < 500; ++round) {
    for (const FaultSite s : sites) {
      const auto da = a.check(s);
      const auto db = b.check(s);
      ASSERT_EQ(da.has_value(), db.has_value());
      if (da) EXPECT_EQ(da->entropy, db->entropy);
      c1.advance(10);
      c2.advance(10);
    }
  }
  EXPECT_EQ(a.schedule_string(), b.schedule_string());
  EXPECT_FALSE(a.journal().empty());
}

TEST(FaultEngine, DifferentSeedDifferentSchedule) {
  constexpr auto make_plan = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.add({.site = FaultSite::Wire, .action = FaultAction::Drop,
              .probability = 0.5});
    return plan;
  };
  Clock c1, c2;
  FaultEngine a(make_plan(1), c1);
  FaultEngine b(make_plan(2), c2);
  for (int i = 0; i < 200; ++i) {
    (void)a.check(FaultSite::Wire);
    (void)b.check(FaultSite::Wire);
    c1.advance(10);
    c2.advance(10);
  }
  EXPECT_NE(a.schedule_string(), b.schedule_string());
}

TEST(FaultEngine, AddingARuleDoesNotPerturbOtherStreams) {
  // Rule streams derive from (seed, rule index), so appending a rule for an
  // unrelated site must leave the first rule's decisions untouched.
  FaultPlan base;
  base.seed = 99;
  base.add({.site = FaultSite::Wire, .action = FaultAction::Drop,
            .probability = 0.4});
  FaultPlan extended = base;
  extended.add({.site = FaultSite::SwapRead, .action = FaultAction::Fail,
                .probability = 0.4});

  Clock c1, c2;
  FaultEngine a(base, c1);
  FaultEngine b(extended, c2);
  for (int i = 0; i < 300; ++i) {
    const auto da = a.check(FaultSite::Wire);
    const auto db = b.check(FaultSite::Wire);
    ASSERT_EQ(da.has_value(), db.has_value()) << i;
  }
}

TEST(FaultEngine, JournalRecordsWhatFired) {
  Clock clock;
  FaultPlan plan;
  plan.add({.site = FaultSite::TptWrite, .action = FaultAction::Corrupt,
            .max_triggers = 1});
  FaultEngine eng(plan, clock);
  clock.advance(123);
  ASSERT_TRUE(eng.check(FaultSite::TptWrite).has_value());
  ASSERT_EQ(eng.journal().size(), 1u);
  const auto& e = eng.journal().front();
  EXPECT_EQ(e.when, 123u);
  EXPECT_EQ(e.site, FaultSite::TptWrite);
  EXPECT_EQ(e.action, FaultAction::Corrupt);
  EXPECT_EQ(e.event_index, 0u);
  EXPECT_EQ(e.rule_index, 0u);
  EXPECT_FALSE(e.to_string().empty());
}

TEST(Checksum, DetectsSingleBitFlips) {
  std::array<std::byte, 64> buf{};
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<std::byte>(i * 7);
  const std::uint32_t want = checksum32(buf);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] ^= std::byte{0x10};
    EXPECT_NE(checksum32(buf), want) << "flip at " << i;
    buf[i] ^= std::byte{0x10};
  }
  EXPECT_EQ(checksum32(buf), want);
}

}  // namespace
}  // namespace vialock::fault
