// property_test.cc - system-wide invariants under randomized workloads.
//
// A model checker in miniature: drive the whole stack (mmap/munmap, touch,
// fork/exit, register/deregister, reclaim) with random operations and verify
// after every batch that the kernel's global accounting is self-consistent.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/rng.h"
#include "via/via_util.h"

namespace vialock {
namespace {

using simkern::kPageShift;
using simkern::kPageSize;
using simkern::Pfn;
using simkern::Pid;
using simkern::VAddr;

/// Global consistency of the memory subsystem.
void check_invariants(simkern::Kernel& kern,
                      const std::vector<Pid>& pids) {
  auto& phys = kern.phys();

  // 1. Frame accounting: frames are either free (count 0) or in use; the
  //    buddy's free count matches the page map.
  std::uint32_t free_by_map = 0;
  for (Pfn pfn = 0; pfn < phys.num_frames(); ++pfn) {
    const auto& pg = phys.page(pfn);
    if (pg.free()) {
      ++free_by_map;
      ASSERT_EQ(pg.pin_count, 0u) << "pinned frame on the free list";
    }
  }
  ASSERT_EQ(free_by_map, kern.buddy().free_frames())
      << "page map and buddy disagree about free frames";

  // 2. Every present PTE references an allocated frame; count per-frame PTE
  //    references and swap-slot references.
  std::map<Pfn, std::uint32_t> pte_refs;
  std::map<simkern::SwapSlot, std::uint32_t> slot_refs;
  for (const Pid pid : pids) {
    if (!kern.task_exists(pid)) continue;
    auto& t = kern.task(pid);
    std::uint64_t rss = 0;
    t.mm.vmas.for_each([&](const simkern::Vma& vma) {
      t.mm.pt.for_each_in(vma.start, vma.end, [&](VAddr, simkern::Pte& pte) {
        if (pte.present) {
          ASSERT_TRUE(phys.valid(pte.pfn));
          ASSERT_GT(phys.page(pte.pfn).count, 0u)
              << "present PTE references a free frame";
          ++pte_refs[pte.pfn];
          ++rss;
        } else if (pte.swap != simkern::kInvalidSwapSlot) {
          ++slot_refs[pte.swap];
        }
      });
    });
    ASSERT_EQ(rss, t.mm.rss) << "rss accounting drifted for pid " << pid;
  }

  // 3. A frame's reference count is at least its PTE references (extra
  //    references come from registrations/kiobufs).
  for (const auto& [pfn, refs] : pte_refs) {
    ASSERT_GE(phys.page(pfn).count, refs);
  }

  // 4. Swap map: every slot referenced by a PTE is allocated with at least
  //    that many references.
  for (const auto& [slot, refs] : slot_refs) {
    ASSERT_GE(kern.swap().refcount(slot), refs)
        << "swap slot underaccounted";
  }
}

class SystemProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SystemProperty, RandomWorkloadKeepsKernelConsistent) {
  Clock clock;
  CostModel costs;
  via::NodeSpec spec = test::small_node(via::PolicyKind::Kiobuf,
                                        /*frames=*/384, /*tpt_entries=*/256);
  spec.kernel.swap_slots = 2048;
  via::Node node(spec, clock, costs);
  auto& kern = node.kernel();
  Rng rng(GetParam());

  struct Region {
    Pid pid;
    VAddr addr;
    std::uint64_t pages;
  };
  struct Reg {
    via::MemHandle mh;
  };
  std::vector<Pid> pids;
  std::vector<Region> regions;
  std::vector<Reg> registrations;
  std::map<Pid, via::ProtectionTag> tags;

  auto new_task = [&] {
    const Pid pid = kern.create_task("w" + std::to_string(pids.size()));
    pids.push_back(pid);
    tags[pid] = node.agent().create_ptag(pid);
  };
  new_task();

  for (int step = 0; step < 600; ++step) {
    const auto op = rng.below(100);
    if (op < 10 && pids.size() < 6) {
      new_task();
    } else if (op < 14 && pids.size() > 1) {
      // Exit a task (dropping its regions; registrations keep their pins -
      // harvest those first to keep the test's bookkeeping simple).
      const Pid victim = pids[rng.below(pids.size())];
      bool has_reg = false;
      for (const auto& r : registrations) {
        if (node.agent().lock_handle(r.mh.id) &&
            node.agent().lock_handle(r.mh.id)->pid == victim) {
          has_reg = true;
          break;
        }
      }
      if (!has_reg) {
        std::erase_if(regions, [&](const Region& r) { return r.pid == victim; });
        kern.exit_task(victim);
        std::erase(pids, victim);
      }
    } else if (op < 40) {
      // mmap a region on a random task.
      const Pid pid = pids[rng.below(pids.size())];
      const std::uint64_t pages = rng.between(1, 16);
      const auto addr = kern.sys_mmap_anon(
          pid, pages << kPageShift,
          simkern::VmFlag::Read | simkern::VmFlag::Write);
      if (addr) regions.push_back({pid, *addr, pages});
    } else if (op < 60 && !regions.empty()) {
      // Touch random pages of a random region.
      const Region& r = regions[rng.below(regions.size())];
      for (int i = 0; i < 4; ++i) {
        const VAddr v = r.addr + (rng.below(r.pages) << kPageShift);
        (void)kern.touch(r.pid, v, rng.chance(0.7));
      }
    } else if (op < 70 && !regions.empty()) {
      // munmap a region (registrations over it stay pinned - allowed).
      const auto idx = rng.below(regions.size());
      const Region r = regions[idx];
      regions[idx] = regions.back();
      regions.pop_back();
      (void)kern.sys_munmap(r.pid, r.addr, r.pages << kPageShift);
    } else if (op < 82 && !regions.empty()) {
      // Register a sub-range of a region.
      const Region& r = regions[rng.below(regions.size())];
      const std::uint64_t first = rng.below(r.pages);
      const std::uint64_t count = rng.between(1, r.pages - first);
      via::MemHandle mh;
      if (ok(node.agent().register_mem(r.pid, r.addr + (first << kPageShift),
                                       count << kPageShift, tags[r.pid], mh))) {
        registrations.push_back({mh});
      }
    } else if (op < 92 && !registrations.empty()) {
      // Deregister a random registration.
      const auto idx = rng.below(registrations.size());
      (void)node.agent().deregister_mem(registrations[idx].mh);
      registrations[idx] = registrations.back();
      registrations.pop_back();
    } else if (op < 94 && !regions.empty()) {
      // mprotect a sub-range.
      const Region& r = regions[rng.below(regions.size())];
      const std::uint64_t first = rng.below(r.pages);
      const std::uint64_t count = rng.between(1, r.pages - first);
      (void)kern.sys_mprotect(
          r.pid, r.addr + (first << kPageShift), count << kPageShift,
          rng.chance(0.5) ? simkern::VmFlag::Read
                          : simkern::VmFlag::Read | simkern::VmFlag::Write);
    } else if (op < 96 && !regions.empty()) {
      // madvise(MADV_DONTFORK) toggling.
      const Region& r = regions[rng.below(regions.size())];
      (void)kern.sys_madvise_dontfork(r.pid, r.addr, r.pages << kPageShift,
                                      rng.chance(0.5));
    } else {
      // Direct reclaim.
      (void)kern.try_to_free_pages(static_cast<std::uint32_t>(
          rng.between(1, 32)));
    }

    if (step % 50 == 49) {
      check_invariants(kern, pids);
      const auto issues = kern.self_check();
      ASSERT_TRUE(issues.empty()) << issues.front();
    }
  }

  // Teardown in order; everything must come back.
  for (const auto& r : registrations)
    (void)node.agent().deregister_mem(r.mh);
  for (const Pid pid : pids) kern.exit_task(pid);
  std::uint32_t free_frames = kern.buddy().free_frames();
  EXPECT_EQ(free_frames, kern.buddy().total_frames())
      << "frames leaked after full teardown";
  for (std::uint32_t slot = 0; slot < kern.swap().num_slots(); ++slot)
    ASSERT_EQ(kern.swap().refcount(slot), 0u) << "swap slot leaked";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemProperty,
                         ::testing::Values(11, 23, 47, 101, 997, 8191));

/// Registered pages never relocate, no matter what the workload does -
/// stated as a property over random interleavings.
class PinStability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PinStability, RegisteredPagesNeverMove) {
  Clock clock;
  CostModel costs;
  via::NodeSpec spec = test::small_node(via::PolicyKind::Kiobuf,
                                        /*frames=*/384, /*tpt_entries=*/128);
  spec.kernel.swap_slots = 4096;
  via::Node node(spec, clock, costs);
  auto& kern = node.kernel();
  Rng rng(GetParam());

  const Pid app = kern.create_task("app");
  const VAddr buf = test::must_mmap(kern, app, 16);
  const auto tag = node.agent().create_ptag(app);
  via::MemHandle mh;
  ASSERT_TRUE(ok(node.agent().register_mem(app, buf, 16 * kPageSize, tag, mh)));
  const auto pinned = node.agent().lock_handle(mh.id)->pfns;

  // Churn: a background task allocates/touches/exits repeatedly.
  for (int round = 0; round < 10; ++round) {
    const Pid churn = kern.create_task("churn");
    const std::uint64_t pages = rng.between(100, 400);
    const auto addr = kern.sys_mmap_anon(
        churn, pages << kPageShift,
        simkern::VmFlag::Read | simkern::VmFlag::Write);
    ASSERT_TRUE(addr.has_value());
    for (std::uint64_t p = 0; p < pages; ++p) {
      if (!ok(kern.touch(churn, *addr + (p << kPageShift), true))) break;
    }
    // The app also keeps touching its buffer.
    for (int i = 0; i < 8; ++i) {
      const VAddr v = buf + (rng.below(16) << kPageShift);
      ASSERT_TRUE(ok(kern.touch(app, v, true)));
    }
    for (std::uint32_t pg = 0; pg < 16; ++pg) {
      ASSERT_EQ(*kern.resolve(app, buf + pg * kPageSize), pinned[pg])
          << "round " << round << " page " << pg;
    }
    kern.exit_task(churn);
  }
  ASSERT_TRUE(ok(node.agent().deregister_mem(mh)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PinStability,
                         ::testing::Values(3, 17, 2718, 31337));

}  // namespace
}  // namespace vialock
