// test_util.h - shared fixtures and helpers for the vialock test suite.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "simkern/kernel.h"
#include "util/clock.h"

namespace vialock::test {

/// Small, fast kernel configuration for unit tests.
inline simkern::KernelConfig small_config(std::uint32_t frames = 512,
                                          std::uint32_t swap_slots = 2048) {
  simkern::KernelConfig cfg;
  cfg.frames = frames;
  cfg.reserved_low = 8;
  cfg.swap_slots = swap_slots;
  cfg.free_pages_min = 8;
  cfg.swap_cluster = 16;
  return cfg;
}

/// Kernel + clock bundle.
struct KernelBox {
  explicit KernelBox(simkern::KernelConfig cfg = small_config())
      : kern(cfg, clock) {}
  Clock clock;
  simkern::Kernel kern;
};

/// Write a 64-bit stamp at `addr`.
inline KStatus poke64(simkern::Kernel& k, simkern::Pid pid, simkern::VAddr addr,
                      std::uint64_t value) {
  return k.write_user(pid, addr, std::as_bytes(std::span{&value, 1}));
}

/// Read a 64-bit stamp at `addr` (0 on failure; use peek64_st for status).
inline std::uint64_t peek64(simkern::Kernel& k, simkern::Pid pid,
                            simkern::VAddr addr) {
  std::uint64_t v = 0;
  if (!ok(k.read_user(pid, addr, std::as_writable_bytes(std::span{&v, 1}))))
    return 0;
  return v;
}

/// Map an anonymous RW region of `pages` pages; aborts the test on failure.
inline simkern::VAddr must_mmap(simkern::Kernel& k, simkern::Pid pid,
                                std::uint64_t pages) {
  const auto addr = k.sys_mmap_anon(
      pid, pages << simkern::kPageShift,
      simkern::VmFlag::Read | simkern::VmFlag::Write);
  EXPECT_TRUE(addr.has_value());
  return addr.value_or(0);
}

/// Bytes of an arbitrary trivially-copyable value.
template <typename T>
std::span<const std::byte> bytes_of(const T& v) {
  return std::as_bytes(std::span{&v, 1});
}

}  // namespace vialock::test
