// sync_test - the sync facade's primitives (DESIGN.md section 15): the CNA
// queue mutex (arXiv 1810.05600) and the range lock (arXiv 2006.12144),
// plus their serial no-op mode, which is what every deterministic
// single-threaded run pays for them.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "sync/mutex.h"
#include "sync/policy.h"
#include "sync/range_lock.h"
#include "sync/relaxed.h"

namespace vialock::sync {
namespace {

// --- CNA mutex ---------------------------------------------------------------

TEST(SyncMutex, SerialModeIsNoOp) {
  Mutex mu;  // default-constructed = serial
  EXPECT_FALSE(mu.enabled());
  mu.lock();
  mu.lock();  // "recursion" costs nothing and needs no bookkeeping
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  mu.unlock();
  mu.unlock();
  TryGuard tg(mu);
  EXPECT_TRUE(tg.held());  // serial try_lock always succeeds
}

TEST(SyncMutex, ThreadedRecursionAndHandoff) {
  Mutex mu(SyncPolicy::threaded());
  EXPECT_TRUE(mu.enabled());
  mu.lock();
  mu.lock();                // recursive re-entry (governor/agent chains)
  EXPECT_TRUE(mu.try_lock());  // try_lock also recognises the owner
  mu.unlock();
  mu.unlock();
  mu.unlock();
  // Fully released: another thread can take and release it.
  std::atomic<bool> got{false};
  std::thread t([&] {
    Guard g(mu);
    got.store(true);
  });
  t.join();
  EXPECT_TRUE(got.load());
}

TEST(SyncMutex, TryLockFailsWhileContested) {
  Mutex mu(SyncPolicy::threaded());
  mu.lock();
  std::atomic<int> first{-1}, second{-1};
  std::thread t([&] {
    first.store(mu.try_lock() ? 1 : 0);
    while (second.load() == -1) std::this_thread::yield();
    TryGuard tg(mu);
    second.store(tg.held() ? 2 : 0);  // overwritten below; see main thread
  });
  while (first.load() == -1) std::this_thread::yield();
  EXPECT_EQ(first.load(), 0);  // held here => the attempt must fail
  mu.unlock();
  second.store(-2);  // signal: retry now that the lock is free
  t.join();
  EXPECT_EQ(second.load(), 2);  // free lock => TryGuard holds
}

TEST(SyncMutex, MutualExclusionAcrossNumaDomains) {
  // 4 workers on two simulated NUMA domains hammer one unprotected counter
  // under the CNA lock; an exact total proves mutual exclusion, and the
  // mixed domains drive the secondary-queue / fairness-flush paths.
  Mutex mu(SyncPolicy::threaded());
  constexpr int kThreads = 4;
  constexpr std::uint64_t kIters = 4000;
  std::uint64_t counter = 0;  // deliberately not atomic
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&mu, &counter, i] {
      set_thread_numa(i % 2);
      for (std::uint64_t n = 0; n < kIters; ++n) {
        Guard g(mu);
        if (n % 64 == 0) {  // sprinkle recursion under contention
          Guard inner(mu);
          ++counter;
        } else {
          ++counter;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SyncRelaxed, ConcurrentBumpsAreExact) {
  Relaxed total = 0;
  Relaxed peak = 0;
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back([&, i] {
      for (int n = 0; n < 1000; ++n) {
        ++total;
        total += 2;
        peak.fetch_max(static_cast<std::uint64_t>(i * 1000 + n));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(total.load(), 4u * 1000u * 3u);
  EXPECT_EQ(peak.load(), 3999u);
}

// --- range lock --------------------------------------------------------------

TEST(SyncRangeLock, SerialModeIsNoOp) {
  RangeLock rl;  // default = serial
  EXPECT_FALSE(rl.enabled());
  rl.lock(1, 0, 100, RangeMode::Exclusive);
  EXPECT_TRUE(rl.try_lock(1, 0, 100, RangeMode::Exclusive));  // no conflict
  rl.unlock(1, 0, 100);
  rl.unlock(1, 0, 100);
  EXPECT_EQ(rl.contended(), 0u);
}

TEST(SyncRangeLock, OverlapExclusionAndSharedCompat) {
  RangeLock rl(SyncPolicy::threaded());
  rl.lock(1, 0, 100, RangeMode::Exclusive);
  // Overlapping attempts fail in either mode against an exclusive holder...
  EXPECT_FALSE(rl.try_lock(1, 50, 150, RangeMode::Exclusive));
  EXPECT_FALSE(rl.try_lock(1, 99, 100, RangeMode::Shared));
  // ...but disjoint ranges and other spaces are free.
  EXPECT_TRUE(rl.try_lock(1, 100, 200, RangeMode::Exclusive));
  EXPECT_TRUE(rl.try_lock(2, 0, 100, RangeMode::Exclusive));
  rl.unlock(1, 100, 200);
  rl.unlock(2, 0, 100);
  rl.unlock(1, 0, 100);

  // Shared holders overlap freely; exclusive must wait for all of them.
  rl.lock(1, 0, 100, RangeMode::Shared);
  EXPECT_TRUE(rl.try_lock(1, 50, 150, RangeMode::Shared));
  EXPECT_FALSE(rl.try_lock(1, 60, 70, RangeMode::Exclusive));
  rl.unlock(1, 50, 150);
  rl.unlock(1, 0, 100);
  EXPECT_TRUE(rl.try_lock(1, 60, 70, RangeMode::Exclusive));
  rl.unlock(1, 60, 70);
}

TEST(SyncRangeLock, RangeGuardTryAndMove) {
  RangeLock rl(SyncPolicy::threaded());
  RangeGuard held(rl, 7, 0, 4096, RangeMode::Exclusive);
  EXPECT_TRUE(held.held());
  RangeGuard busy = RangeGuard::try_(rl, 7, 1024, 2048, RangeMode::Shared);
  EXPECT_FALSE(busy.held());  // overlaps the exclusive hold
  RangeGuard moved = std::move(held);
  EXPECT_TRUE(moved.held());
  moved.release();
  RangeGuard now_free = RangeGuard::try_(rl, 7, 1024, 2048, RangeMode::Shared);
  EXPECT_TRUE(now_free.held());
}

TEST(SyncRangeLock, DisjointRangesHeldConcurrently) {
  // Four threads acquire disjoint ranges and each refuses to release until
  // all four hold simultaneously - only possible if disjoint ranges really
  // do proceed in parallel (the paper's whole point).
  RangeLock rl(SyncPolicy::threaded());
  std::atomic<int> holding{0};
  std::vector<std::thread> workers;
  for (std::uint64_t i = 0; i < 4; ++i) {
    workers.emplace_back([&rl, &holding, i] {
      RangeGuard g(rl, 1, i * 100, (i + 1) * 100, RangeMode::Exclusive);
      holding.fetch_add(1);
      while (holding.load() < 4) std::this_thread::yield();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(holding.load(), 4);
  EXPECT_EQ(rl.acquired(), 4u);
}

TEST(SyncRangeLock, FifoTicketsPreventWriterStarvation) {
  // Holder: shared [0,100). T1 queues exclusive on it, then T2 arrives
  // wanting an overlapping shared range. Without FIFO tickets T2 would
  // sail past T1 (shared vs shared); with them T2 waits behind the older
  // exclusive waiter, so T1 must acquire first.
  RangeLock rl(SyncPolicy::threaded());
  rl.lock(1, 0, 100, RangeMode::Shared);
  std::atomic<int> seq{0};
  std::atomic<int> t1_turn{-1}, t2_turn{-1};
  std::thread t1([&] {
    rl.lock(1, 0, 100, RangeMode::Exclusive);
    t1_turn.store(seq.fetch_add(1));
    rl.unlock(1, 0, 100);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread t2([&] {
    rl.lock(1, 40, 60, RangeMode::Shared);
    t2_turn.store(seq.fetch_add(1));
    rl.unlock(1, 40, 60);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  rl.unlock(1, 0, 100);  // release the shared hold; T1 then T2 must run
  t1.join();
  t2.join();
  EXPECT_LT(t1_turn.load(), t2_turn.load());
  EXPECT_GE(rl.contended(), 1u);
}

}  // namespace
}  // namespace vialock::sync
