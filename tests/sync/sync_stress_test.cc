// sync_stress_test - sustained contention hammering of the CNA mutex and
// range lock (labelled `slow`; the tier1 suite runs the fast unit tests in
// sync_test.cc instead). Also the designated TSan workload: every inter-
// thread protocol the primitives implement gets exercised thousands of
// times here.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "sync/mutex.h"
#include "sync/policy.h"
#include "sync/range_lock.h"
#include "sync/relaxed.h"
#include "util/rng.h"

namespace vialock::sync {
namespace {

// Sized to the machine: contended yield-spinning on an oversubscribed CPU
// makes wall time superlinear in thread count, so core-starved CI boxes
// run fewer threads - the protocols exercised are the same.
inline int stress_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 4u, 8u));
}
constexpr std::uint64_t kOpsPerThread = 1000;
constexpr std::uint64_t kSlots = 64;
constexpr std::uint64_t kInitialBalance = 1000;

TEST(SyncStress, RangeLockedTransfersConserveTotal) {
  // A 64-slot ledger. Writers move value between two slots under exclusive
  // range locks (lower range first - a fixed order, so no deadlock).
  // Every 16th op a thread instead sums the whole ledger under a shared
  // full-range lock (which conflicts with every writer - kept rare, since
  // with FIFO tickets each one is a cluster-wide barrier). Every observed
  // sum must equal the initial total: a single torn transfer or a reader
  // slipping past a writer breaks it.
  const int threads = stress_threads();
  RangeLock rl(SyncPolicy::threaded());
  std::vector<std::uint64_t> ledger(kSlots, kInitialBalance);
  Mutex ops_mu(SyncPolicy::threaded());
  std::uint64_t ops_done = 0;  // plain u64, guarded by ops_mu
  std::atomic<std::uint64_t> bad_sums{0};
  std::atomic<std::uint64_t> acquisitions{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      set_thread_numa(t % 2);
      Rng rng(0x5eedu + static_cast<std::uint64_t>(t));
      for (std::uint64_t n = 0; n < kOpsPerThread; ++n) {
        if (n % 16 == 15) {
          RangeGuard g(rl, 1, 0, kSlots, RangeMode::Shared);
          acquisitions.fetch_add(1);
          const std::uint64_t sum =
              std::accumulate(ledger.begin(), ledger.end(), std::uint64_t{0});
          if (sum != kSlots * kInitialBalance) bad_sums.fetch_add(1);
        } else {
          std::uint64_t a = rng.next() % kSlots;
          std::uint64_t b = rng.next() % kSlots;
          if (a == b) b = (b + 1) % kSlots;
          const std::uint64_t lo = std::min(a, b), hi = std::max(a, b);
          RangeGuard glo(rl, 1, lo, lo + 1, RangeMode::Exclusive);
          RangeGuard ghi(rl, 1, hi, hi + 1, RangeMode::Exclusive);
          acquisitions.fetch_add(2);
          const std::uint64_t amount = rng.next() % 5;
          if (ledger[a] >= amount) {
            ledger[a] -= amount;
            ledger[b] += amount;
          }
        }
        Guard g(ops_mu);
        ++ops_done;
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(bad_sums.load(), 0u);
  EXPECT_EQ(ops_done,
            static_cast<std::uint64_t>(threads) * kOpsPerThread);
  EXPECT_EQ(std::accumulate(ledger.begin(), ledger.end(), std::uint64_t{0}),
            kSlots * kInitialBalance);
  EXPECT_EQ(rl.acquired(), acquisitions.load());
}

TEST(SyncStress, TryLockMixNeverLosesAnUpdate) {
  // Mixed lock()/try_lock() traffic on one CNA mutex from threads across
  // both simulated NUMA domains; try_lock failures retry with lock(). The
  // counter must come out exact and the lock must end fully released.
  const int threads = stress_threads();
  Mutex mu(SyncPolicy::threaded());
  std::uint64_t counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      set_thread_numa(t % 2);
      for (std::uint64_t n = 0; n < kOpsPerThread; ++n) {
        if (n % 3 == 0) {
          TryGuard g(mu);
          if (g.held()) {
            ++counter;
            continue;
          }
          Guard fallback(mu);
          ++counter;
        } else {
          Guard g(mu);
          ++counter;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) * kOpsPerThread);
  EXPECT_TRUE(mu.try_lock());  // nothing left queued
  mu.unlock();
}

}  // namespace
}  // namespace vialock::sync
