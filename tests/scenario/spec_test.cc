// spec_test - the scenario spec grammar: key=value parsing, comments, byte
// suffixes, fault-rule lines, overrides, and validation.
#include "scenario/spec.h"

#include <gtest/gtest.h>

namespace vialock::scenario {
namespace {

TEST(ScenarioSpec, ParsesFullSpec) {
  const auto result = parse_spec(R"(
# a comment line
name     = demo          # trailing comment
pattern  = skewed-kv
hosts    = 64
servers  = 8
seed     = 7
tenants_per_host = 2
ops_per_tenant   = 500
value_bytes = 4k
channel_heap_bytes = 1m
skew     = 1.1
reliable = on
governor = off
)");
  ASSERT_TRUE(result.ok()) << result.error;
  const ScenarioSpec& spec = result.spec;
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.pattern, Pattern::SkewedKv);
  EXPECT_EQ(spec.hosts, 64u);
  EXPECT_EQ(spec.servers, 8u);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.tenants_per_host, 2u);
  EXPECT_EQ(spec.ops_per_tenant, 500u);
  EXPECT_EQ(spec.value_bytes, 4096u);
  EXPECT_EQ(spec.channel_heap_bytes, 1024u * 1024u);
  EXPECT_DOUBLE_EQ(spec.skew, 1.1);
  EXPECT_TRUE(spec.reliable);
  EXPECT_FALSE(spec.governor);
}

TEST(ScenarioSpec, PatternNamesAndUnderscoreAlias) {
  ScenarioSpec spec;
  EXPECT_EQ(spec.apply("pattern", "rpc-fanout"), "");
  EXPECT_EQ(spec.pattern, Pattern::RpcFanout);
  EXPECT_EQ(spec.apply("pattern", "ps_allreduce"), "");
  EXPECT_EQ(spec.pattern, Pattern::PsAllreduce);
  EXPECT_NE(spec.apply("pattern", "nonsense"), "");
}

TEST(ScenarioSpec, FaultRuleLine) {
  const auto result = parse_spec(
      "name = chaos\n"
      "hosts = 4\n"
      "servers = 2\n"
      "fault = wire drop p=0.01 max=200 after=10\n"
      "fault = tpt-write fail p=0.5\n");
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.spec.fault_rules.size(), 2u);
  const fault::FaultRule& wire = result.spec.fault_rules[0];
  EXPECT_EQ(wire.site, fault::FaultSite::Wire);
  EXPECT_EQ(wire.action, fault::FaultAction::Drop);
  EXPECT_DOUBLE_EQ(wire.probability, 0.01);
  EXPECT_EQ(wire.max_triggers, 200u);
  EXPECT_EQ(wire.after_events, 10u);
  EXPECT_EQ(result.spec.fault_rules[1].site, fault::FaultSite::TptWrite);
  EXPECT_EQ(result.spec.fault_rules[1].action, fault::FaultAction::Fail);
}

TEST(ScenarioSpec, RejectsBadInput) {
  EXPECT_FALSE(parse_spec("hosts = banana\n").ok());
  EXPECT_FALSE(parse_spec("mystery_key = 1\n").ok());
  EXPECT_FALSE(parse_spec("no equals sign here\n").ok());
  EXPECT_FALSE(parse_spec("fault = nowhere drop\n").ok());
  // Parse errors name the offending line.
  const auto bad = parse_spec("hosts = 4\nservers = x\n");
  EXPECT_NE(bad.error.find("line 2"), std::string::npos) << bad.error;
}

TEST(ScenarioSpec, ValidateCatchesInconsistency) {
  ScenarioSpec spec;
  spec.pattern = Pattern::SkewedKv;
  spec.hosts = 4;
  spec.servers = 4;  // no client host left
  EXPECT_NE(spec.validate(), "");
  spec.servers = 2;
  EXPECT_EQ(spec.validate(), "");

  spec.pattern = Pattern::RpcFanout;
  spec.fanout = 3;  // > servers
  EXPECT_NE(spec.validate(), "");
  spec.fanout = 2;
  EXPECT_EQ(spec.validate(), "");

  spec.hosts = 1;
  EXPECT_NE(spec.validate(), "");
}

TEST(ScenarioSpec, OverridesAfterParse) {
  auto result = parse_spec("name = s\npattern = pipeline\nhosts = 4\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.spec.apply("hosts", "16"), "");
  EXPECT_EQ(result.spec.hosts, 16u);
  EXPECT_NE(result.spec.apply("hosts", "-3"), "");
}

TEST(ScenarioSpec, PlannedOpsScalesWithTopology) {
  ScenarioSpec spec;
  spec.pattern = Pattern::SkewedKv;
  spec.hosts = 10;
  spec.servers = 2;
  spec.tenants_per_host = 2;
  spec.ops_per_tenant = 100;
  // 8 client hosts x 2 tenants x 100 ops x 2 transfers.
  EXPECT_EQ(spec.planned_ops(), 3200u);
  spec.churn_regs_per_tenant = 10;
  EXPECT_EQ(spec.planned_ops(), 3200u + 10u * 20u);
}

TEST(ScenarioSpec, SummaryNamesTheSpec) {
  ScenarioSpec spec;
  spec.name = "demo";
  const std::string s = summary(spec);
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("skewed-kv"), std::string::npos);
}

}  // namespace
}  // namespace vialock::scenario
