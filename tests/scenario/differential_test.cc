// differential_test - the threaded execution mode's correctness oracle
// (DESIGN.md section 15): for every traffic pattern, a threaded run must
// reproduce the serial run's audit surface for the same spec + seed.
//
// The audit surface is the work done and its integrity - operation counts,
// registration balance, zero lost or corrupted payloads, a clean invariant
// audit. Time-shaped scalars (makespan, busy time, latency percentiles,
// per-server breakdown) are NOT compared: epochs interleave host timelines
// differently than the serial total order, so scenario time legitimately
// differs. Fault runs are compared on invariants only - which operation a
// fault rule's trigger counter lands on depends on event interleaving.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

#include "obs/sampler.h"
#include "scenario/engine.h"
#include "scenario/executor.h"
#include "scenario/spec.h"

namespace vialock::scenario {
namespace {

/// The scalars every execution mode must agree on (see file comment).
struct AuditSurface {
  std::uint64_t transfers_attempted = 0;
  std::uint64_t transfers_ok = 0;
  std::uint64_t transfers_failed = 0;
  std::uint64_t registrations_ok = 0;
  std::uint64_t registrations_failed = 0;
  std::uint64_t deregistrations = 0;
  std::uint64_t rpcs = 0;
  std::uint64_t kv_gets = 0;
  std::uint64_t kv_puts = 0;
  std::uint64_t records_delivered = 0;
  std::uint64_t allreduce_rounds = 0;
  std::uint64_t agent_registrations = 0;
  std::uint64_t agent_deregistrations = 0;
  bool invariants_ok = false;

  bool operator==(const AuditSurface&) const = default;
};

AuditSurface surface_of(const ScenarioReport& r) {
  return {r.counters.transfers_attempted.load(),
          r.counters.transfers_ok.load(),
          r.counters.transfers_failed.load(),
          r.counters.registrations_ok.load(),
          r.counters.registrations_failed.load(),
          r.counters.deregistrations.load(),
          r.counters.rpcs.load(),
          r.counters.kv_gets.load(),
          r.counters.kv_puts.load(),
          r.counters.records_delivered.load(),
          r.counters.allreduce_rounds.load(),
          r.agent_registrations,
          r.agent_deregistrations,
          r.invariants_ok};
}

std::string describe(const AuditSurface& s) {
  return "attempted=" + std::to_string(s.transfers_attempted) +
         " ok=" + std::to_string(s.transfers_ok) +
         " failed=" + std::to_string(s.transfers_failed) +
         " reg_ok=" + std::to_string(s.registrations_ok) +
         " reg_fail=" + std::to_string(s.registrations_failed) +
         " dereg=" + std::to_string(s.deregistrations) +
         " rpcs=" + std::to_string(s.rpcs) +
         " gets=" + std::to_string(s.kv_gets) +
         " puts=" + std::to_string(s.kv_puts) +
         " records=" + std::to_string(s.records_delivered) +
         " rounds=" + std::to_string(s.allreduce_rounds) +
         " agent_reg=" + std::to_string(s.agent_registrations) +
         " agent_dereg=" + std::to_string(s.agent_deregistrations) +
         " invariants=" + (s.invariants_ok ? "ok" : "VIOLATED");
}

ScenarioReport run_spec(const std::string& text, std::uint32_t threads) {
  ParseResult parsed = parse_spec(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  parsed.spec.threads = threads;
  ScenarioEngine engine(parsed.spec);
  EXPECT_TRUE(ok(engine.build()));
  EXPECT_TRUE(ok(engine.run()));
  return engine.report();
}

/// Serial run, then the same spec at 2/4/8 worker threads; every surface
/// must match the oracle's exactly.
void expect_threaded_matches_serial(const std::string& text) {
  const AuditSurface oracle = surface_of(run_spec(text, 1));
  EXPECT_TRUE(oracle.invariants_ok) << describe(oracle);
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    const AuditSurface got = surface_of(run_spec(text, threads));
    EXPECT_EQ(oracle, got) << "threads=" << threads << "\nserial:   "
                           << describe(oracle) << "\nthreaded: "
                           << describe(got);
  }
}

TEST(ScenarioDifferential, RpcFanoutThreadedMatchesSerial) {
  expect_threaded_matches_serial(
      "name = diff-rpc\npattern = rpc-fanout\nhosts = 10\nservers = 4\n"
      "fanout = 3\ntenants_per_host = 2\nops_per_tenant = 20\n"
      "churn_regs_per_tenant = 6\n");
}

TEST(ScenarioDifferential, SkewedKvThreadedMatchesSerial) {
  expect_threaded_matches_serial(
      "name = diff-kv\npattern = skewed-kv\nhosts = 10\nservers = 3\n"
      "tenants_per_host = 2\nops_per_tenant = 20\nskew = 1.1\n"
      "value_bytes = 2048\nput_fraction = 0.4\n");
}

TEST(ScenarioDifferential, KvServerThreadedMatchesSerial) {
  expect_threaded_matches_serial(
      "name = diff-kvsvc\npattern = kv-server\nhosts = 6\nservers = 2\n"
      "tenants_per_host = 2\nops_per_tenant = 16\nkeys = 128\nskew = 1.1\n"
      "value_bytes = 256\nlarge_value_bytes = 4096\nlarge_fraction = 0.25\n"
      "put_fraction = 0.5\nconnections_per_client = 2\n"
      "conn_churn_per_client = 1\n");
}

TEST(ScenarioDifferential, PsAllreduceThreadedMatchesSerial) {
  expect_threaded_matches_serial(
      "name = diff-ps\npattern = ps-allreduce\nhosts = 8\nrounds = 3\n"
      "shard_bytes = 2048\n");
}

TEST(ScenarioDifferential, CollectivesThreadedMatchesSerial) {
  expect_threaded_matches_serial(
      "name = diff-coll\npattern = collectives\nhosts = 8\nrounds = 2\n"
      "payload_bytes = 16384\nallreduce_count = 64\nalltoall_block = 2048\n");
}

TEST(ScenarioDifferential, FaultRunInvariantsHoldThreaded) {
  // Which op a probabilistic fault rule fires on depends on the global
  // event interleaving, so op counts legitimately differ threaded; the
  // *invariant audit* (nothing leaked, nothing silently corrupted, failure
  // accounting balanced) must hold in every mode.
  const std::string text =
      "name = diff-fault\npattern = skewed-kv\nhosts = 8\nservers = 2\n"
      "tenants_per_host = 2\nops_per_tenant = 20\nskew = 1.1\n"
      "churn_regs_per_tenant = 4\nfault = wire drop p=0.02 max=40\n"
      "fault = pin-admission fail p=0.02 max=20\n";
  const ScenarioReport serial = run_spec(text, 1);
  EXPECT_TRUE(serial.invariants_ok)
      << (serial.violations.empty() ? "" : serial.violations[0]);
  for (const std::uint32_t threads : {2u, 4u}) {
    const ScenarioReport threaded = run_spec(text, threads);
    EXPECT_TRUE(threaded.invariants_ok)
        << "threads=" << threads << " "
        << (threaded.violations.empty() ? "" : threaded.violations[0]);
  }
}

TEST(ScenarioDifferential, SamplerTickCountAgreesAcrossWorkerCounts) {
  // Threaded runs sample once per drained epoch, and the epoch structure is
  // a property of event causality (everything posted during an epoch lands
  // in the next), not of how many workers drained it - so the telemetry
  // tick count is part of the audit surface across worker counts. Serial
  // runs tick on the virtual-time interval instead, so serial is
  // deliberately NOT compared here.
  const std::string text =
      "name = diff-timeline\npattern = skewed-kv\nhosts = 8\nservers = 2\n"
      "tenants_per_host = 2\nops_per_tenant = 20\nskew = 1.1\n"
      "churn_regs_per_tenant = 4\nsample_interval = 200000\n";
  const auto ticks_at = [&text](std::uint32_t threads) {
    ParseResult parsed = parse_spec(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    parsed.spec.threads = threads;
    ScenarioEngine engine(parsed.spec);
    EXPECT_TRUE(ok(engine.build()));
    EXPECT_TRUE(ok(engine.run()));
    EXPECT_TRUE(engine.report().invariants_ok);
    const obs::Sampler* smp = engine.sampler();
    EXPECT_NE(smp, nullptr);
    return std::pair<std::uint64_t, std::uint64_t>{
        smp ? smp->ticks() : 0, smp ? smp->samples().size() : 0};
  };
  const auto oracle = ticks_at(2);
  EXPECT_GT(oracle.first, 0u);
  for (const std::uint32_t threads : {4u, 8u}) {
    const auto got = ticks_at(threads);
    EXPECT_EQ(got, oracle) << "threads=" << threads;
  }
}

TEST(ScenarioDifferential, ExecutorSpecMismatchIsRejected) {
  ParseResult parsed = parse_spec(
      "name = diff-mismatch\npattern = skewed-kv\nhosts = 4\nservers = 1\n"
      "tenants_per_host = 1\nops_per_tenant = 4\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ScenarioEngine engine(parsed.spec);  // threads = 1: serial no-op locks
  ASSERT_TRUE(ok(engine.build()));
  ThreadedExecutor exec(4);
  // Draining a serial-built cluster with real workers would race on no-op
  // locks; the engine refuses instead.
  EXPECT_EQ(engine.run(exec), KStatus::Inval);
}

}  // namespace
}  // namespace vialock::scenario
