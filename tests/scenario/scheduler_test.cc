// scheduler_test - the event-driven multi-host scheduler: deterministic
// dispatch order, per-host ready/busy accounting, makespan vs busy time.
#include "scenario/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace vialock::scenario {
namespace {

TEST(EventScheduler, DispatchesInTimeOrder) {
  EventScheduler sched(2);
  std::vector<int> order;
  sched.post(300, 0, [&] { order.push_back(3); });
  sched.post(100, 0, [&] { order.push_back(1); });
  sched.post(200, 1, [&] { order.push_back(2); });
  EXPECT_EQ(sched.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 300u);
  EXPECT_TRUE(sched.idle());
}

TEST(EventScheduler, TiesBreakInPostOrder) {
  EventScheduler sched(4);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i)
    sched.post(50, static_cast<HostId>(i % 4), [&order, i] {
      order.push_back(i);
    });
  sched.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventScheduler, EventsCanPostFollowUps) {
  EventScheduler sched(1);
  std::vector<Nanos> fired;
  std::function<void(Nanos)> chain = [&](Nanos when) {
    fired.push_back(when);
    if (when < 40)
      sched.post(when + 10, 0, [&chain, when] { chain(when + 10); });
  };
  sched.post(10, 0, [&chain] { chain(10); });
  EXPECT_EQ(sched.run(), 4u);
  EXPECT_EQ(fired, (std::vector<Nanos>{10, 20, 30, 40}));
}

TEST(EventScheduler, ChargeHostAdvancesReadyAndBusy) {
  EventScheduler sched(2);
  // First op on host 0: starts at 100, costs 50.
  EXPECT_EQ(sched.charge_host(0, 100, 50), 150u);
  EXPECT_EQ(sched.host_ready(0), 150u);
  // Second op wants to start at 120 but the host is busy until 150:
  // it is serialised after the first, completing at 150 + 30.
  EXPECT_EQ(sched.charge_host(0, 120, 30), 180u);
  // Host 1 is independent and still free.
  EXPECT_EQ(sched.host_ready(1), 0u);
  EXPECT_EQ(sched.stats().busy_ns, 80u);
}

TEST(EventScheduler, HoldHostDoesNotAccountBusyTime) {
  EventScheduler sched(1);
  sched.hold_host(0, 500);
  EXPECT_EQ(sched.host_ready(0), 500u);
  EXPECT_EQ(sched.stats().busy_ns, 0u);
  // hold never moves the ready time backwards.
  sched.hold_host(0, 200);
  EXPECT_EQ(sched.host_ready(0), 500u);
}

TEST(EventScheduler, StatsTrackDispatchAndPeak) {
  EventScheduler sched(1);
  for (int i = 0; i < 5; ++i) sched.post(i * 10, 0, [] {});
  EXPECT_EQ(sched.pending(), 5u);
  sched.run();
  EXPECT_EQ(sched.stats().dispatched, 5u);
  EXPECT_EQ(sched.stats().peak_pending, 5u);
}

}  // namespace
}  // namespace vialock::scenario
