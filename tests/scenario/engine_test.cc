// engine_test - small end-to-end runs of every traffic pattern: the engine
// must complete the planned work, verify payload markers, and pass its own
// invariant audit (nothing pinned after teardown, quotas balanced).
#include "scenario/engine.h"

#include <gtest/gtest.h>

#include "scenario/spec.h"

namespace vialock::scenario {
namespace {

ScenarioReport run_spec(const std::string& text) {
  const ParseResult parsed = parse_spec(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  ScenarioEngine engine(parsed.spec);
  EXPECT_TRUE(ok(engine.build()));
  EXPECT_TRUE(ok(engine.run()));
  return engine.report();
}

TEST(ScenarioEngine, RpcFanoutCompletesAndAudits) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = rpc-fanout\nhosts = 6\nservers = 2\nfanout = 2\n"
      "tenants_per_host = 1\nops_per_tenant = 8\n");
  // 4 client hosts x 8 ops x 2 targets x (request + response).
  EXPECT_EQ(r.counters.transfers_ok, 128u);
  EXPECT_EQ(r.counters.transfers_failed, 0u);
  EXPECT_EQ(r.counters.rpcs, 32u);
  EXPECT_GT(r.counters.verify_ok, 0u);
  EXPECT_EQ(r.counters.verify_failed, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, SkewedKvServesGetsAndPuts) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = skewed-kv\nhosts = 6\nservers = 2\n"
      "tenants_per_host = 2\nops_per_tenant = 16\nskew = 1.2\n"
      "value_bytes = 4096\n");
  EXPECT_EQ(r.counters.kv_gets + r.counters.kv_puts, 8u * 16u);
  EXPECT_EQ(r.counters.transfers_failed, 0u);
  EXPECT_EQ(r.counters.verify_failed, 0u);
  // 4 KB values travel rendezvous: registrations happened beyond churn.
  EXPECT_GT(r.agent_registrations, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, PipelineDeliversEveryRecord) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = pipeline\nhosts = 4\nops_per_tenant = 12\n");
  EXPECT_EQ(r.counters.records_delivered, 12u);
  // Each record crosses hosts-1 = 3 hops.
  EXPECT_EQ(r.counters.transfers_ok, 36u);
  EXPECT_EQ(r.counters.verify_failed, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, PsAllreduceFoldsEveryRound) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = ps-allreduce\nhosts = 4\nrounds = 3\n"
      "shard_bytes = 4096\n");
  EXPECT_EQ(r.counters.allreduce_rounds, 3u);
  EXPECT_EQ(r.counters.verify_failed, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, CollectivesReportsE12Scalars) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = collectives\nhosts = 4\nrounds = 1\n"
      "governor = off\nmesh_eager_channels = on\nhost_frames = 2048\n"
      "host_swap_slots = 16384\ntpt_entries = 8192\n");
  EXPECT_GT(r.barrier_ns, 0u);
  EXPECT_GT(r.broadcast_ns, 0u);
  EXPECT_EQ(r.bcast_msgs, 3u);  // binomial tree: N-1 messages
  EXPECT_GT(r.allreduce_ns, 0u);
  EXPECT_GT(r.alltoall_ns, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, KvServicePatternServesBothPathsAndSurvivesChurn) {
  // 4 client hosts x 4 connections x 16 ops, a quarter of them rendezvous
  // values, every churn cycle an abrupt abandonment mid-pipeline.
  const ParseResult parsed = parse_spec(
      "name = t\npattern = kv-server\nhosts = 6\nservers = 2\n"
      "tenants_per_host = 2\nops_per_tenant = 16\nkeys = 512\nskew = 1.1\n"
      "value_bytes = 256\nlarge_value_bytes = 4096\nlarge_fraction = 0.25\n"
      "put_fraction = 0.4\nconnections_per_client = 4\npipeline_window = 4\n"
      "conn_churn_per_client = 2\nchurn_abandon_fraction = 1.0\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ScenarioEngine engine(parsed.spec);
  ASSERT_TRUE(ok(engine.build()));
  ASSERT_TRUE(ok(engine.run()));
  const ScenarioReport& r = engine.report();
  EXPECT_EQ(r.counters.kv_gets + r.counters.kv_puts, 4u * 4u * 16u);
  EXPECT_EQ(r.counters.transfers_ok, 4u * 4u * 16u);
  EXPECT_EQ(r.counters.transfers_failed, 0u);
  EXPECT_EQ(r.counters.verify_failed, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);

  const KvServiceStats& s = engine.kv_service_stats();
  EXPECT_GE(s.conns_accepted, 16u);  // initial conns, plus churn reconnects
  EXPECT_EQ(s.conns_shed, 0u);
  // Every churn cycle was abrupt: the servers detected the vanished peers
  // and reclaimed, and the deliberately dropped requests are accounted as
  // client-side losses, not transfer failures.
  EXPECT_GT(s.conns_abandoned, 0u);
  EXPECT_GT(s.client_requests_lost, 0u);
  // Both data paths moved bytes; the large path skipped the eager copy.
  EXPECT_GT(s.inline_bytes, 0u);
  EXPECT_GT(s.rendezvous_ops, 0u);
  EXPECT_GT(s.rendezvous_bytes, 0u);
  // (rendezvous_failed may be nonzero: abrupt churn abandons connections
  // with staged GETs whose rendezvous write-back finds a broken VI - those
  // requests are deliberate losses, never counted as transfers.)
  // Completion batching was in effect on both sides.
  EXPECT_GT(s.batched_completions, 0u);
  EXPECT_GT(s.batched_replies, 0u);
  EXPECT_GT(s.client_doorbell_flushes, 0u);
  EXPECT_GE(s.peak_open_conns, 1u);
  // Latency tail came out of the histogram in order.
  EXPECT_GT(s.p50_ns, 0u);
  EXPECT_LE(s.p50_ns, s.p99_ns);
  EXPECT_LE(s.p99_ns, s.p999_ns);
}

TEST(ScenarioEngine, KvServiceShedsBestEffortUnderTinyQuota) {
  // One BestEffort server tenant, 12 connection attempts at 1 ring page
  // each against an 8-page quota (each client affords its 4 conns: ring +
  // value window = 2 pages per conn): 8 accepts, the rest shed at the
  // admission probe. The run still completes the work the surviving
  // connections can carry and audits clean.
  const ParseResult parsed = parse_spec(
      "name = t\npattern = kv-server\nhosts = 4\nservers = 1\n"
      "tenants_per_host = 1\nops_per_tenant = 4\nkeys = 16\n"
      "value_bytes = 256\nlarge_value_bytes = 256\nlarge_fraction = 0\n"
      "connections_per_client = 4\npipeline_window = 4\n"
      "tenant_quota_pages = 8\nguaranteed_fraction = 0\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ScenarioEngine engine(parsed.spec);
  ASSERT_TRUE(ok(engine.build()));
  ASSERT_TRUE(ok(engine.run()));
  const ScenarioReport& r = engine.report();
  const KvServiceStats& s = engine.kv_service_stats();
  EXPECT_EQ(s.conns_accepted, 8u);
  EXPECT_GT(s.conns_shed, 0u);
  EXPECT_GT(r.counters.transfers_ok, 0u);
  EXPECT_EQ(r.counters.transfers_failed, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, ChurnRegistersAndTearsDownClean) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = skewed-kv\nhosts = 4\nservers = 1\n"
      "tenants_per_host = 2\nops_per_tenant = 4\n"
      "churn_regs_per_tenant = 12\nchurn_hold = 3\n");
  EXPECT_EQ(r.counters.registrations_ok, 8u * 12u);
  EXPECT_GT(r.counters.deregistrations, 0u);
  // Teardown releases what the hold-queues still pin; the audit checks
  // pinned_frames() == 0 on every host.
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, GovernorQuotaRejectsOverCommit) {
  // One-page quota and large churn registrations: admissions must fail,
  // the engine must survive and still audit clean.
  const ScenarioReport r = run_spec(
      "name = t\npattern = skewed-kv\nhosts = 4\nservers = 1\n"
      "tenants_per_host = 1\nops_per_tenant = 2\nvalue_bytes = 256\n"
      "request_bytes = 128\nresponse_bytes = 128\n"
      "tenant_quota_pages = 24\nchurn_regs_per_tenant = 16\n"
      "churn_bytes = 64k\nchurn_hold = 4\n");
  EXPECT_GT(r.counters.registrations_failed, 0u);
  EXPECT_GT(r.governor_rejected, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, FaultPlanInjectsAndStaysInvariantClean) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = skewed-kv\nhosts = 6\nservers = 2\n"
      "tenants_per_host = 1\nops_per_tenant = 24\nreliable = on\n"
      "value_bytes = 2048\n"
      "fault = wire drop p=0.05 max=40\n");
  EXPECT_GT(r.faults_injected, 0u);
  // Reliable channels retry dropped frames; the audit tolerates failed
  // transfers only when faults were armed, and still demands clean teardown.
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, ReportJsonCarriesAcceptanceScalar) {
  const ParseResult parsed = parse_spec(
      "name = t\npattern = pipeline\nhosts = 3\nops_per_tenant = 4\n");
  ASSERT_TRUE(parsed.ok());
  ScenarioEngine engine(parsed.spec);
  ASSERT_TRUE(ok(engine.build()));
  ASSERT_TRUE(ok(engine.run()));
  const std::string json = report_json(parsed.spec, engine.report());
  EXPECT_NE(json.find("\"registrations_plus_transfers\""), std::string::npos);
  EXPECT_NE(json.find("\"invariants_ok\": true"), std::string::npos);
  EXPECT_NE(json.find("\"pattern\": \"pipeline\""), std::string::npos);
}

}  // namespace
}  // namespace vialock::scenario
