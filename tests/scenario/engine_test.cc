// engine_test - small end-to-end runs of every traffic pattern: the engine
// must complete the planned work, verify payload markers, and pass its own
// invariant audit (nothing pinned after teardown, quotas balanced).
#include "scenario/engine.h"

#include <gtest/gtest.h>

#include "scenario/spec.h"

namespace vialock::scenario {
namespace {

ScenarioReport run_spec(const std::string& text) {
  const ParseResult parsed = parse_spec(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  ScenarioEngine engine(parsed.spec);
  EXPECT_TRUE(ok(engine.build()));
  EXPECT_TRUE(ok(engine.run()));
  return engine.report();
}

TEST(ScenarioEngine, RpcFanoutCompletesAndAudits) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = rpc-fanout\nhosts = 6\nservers = 2\nfanout = 2\n"
      "tenants_per_host = 1\nops_per_tenant = 8\n");
  // 4 client hosts x 8 ops x 2 targets x (request + response).
  EXPECT_EQ(r.counters.transfers_ok, 128u);
  EXPECT_EQ(r.counters.transfers_failed, 0u);
  EXPECT_EQ(r.counters.rpcs, 32u);
  EXPECT_GT(r.counters.verify_ok, 0u);
  EXPECT_EQ(r.counters.verify_failed, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, SkewedKvServesGetsAndPuts) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = skewed-kv\nhosts = 6\nservers = 2\n"
      "tenants_per_host = 2\nops_per_tenant = 16\nskew = 1.2\n"
      "value_bytes = 4096\n");
  EXPECT_EQ(r.counters.kv_gets + r.counters.kv_puts, 8u * 16u);
  EXPECT_EQ(r.counters.transfers_failed, 0u);
  EXPECT_EQ(r.counters.verify_failed, 0u);
  // 4 KB values travel rendezvous: registrations happened beyond churn.
  EXPECT_GT(r.agent_registrations, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, PipelineDeliversEveryRecord) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = pipeline\nhosts = 4\nops_per_tenant = 12\n");
  EXPECT_EQ(r.counters.records_delivered, 12u);
  // Each record crosses hosts-1 = 3 hops.
  EXPECT_EQ(r.counters.transfers_ok, 36u);
  EXPECT_EQ(r.counters.verify_failed, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, PsAllreduceFoldsEveryRound) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = ps-allreduce\nhosts = 4\nrounds = 3\n"
      "shard_bytes = 4096\n");
  EXPECT_EQ(r.counters.allreduce_rounds, 3u);
  EXPECT_EQ(r.counters.verify_failed, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, CollectivesReportsE12Scalars) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = collectives\nhosts = 4\nrounds = 1\n"
      "governor = off\nmesh_eager_channels = on\nhost_frames = 2048\n"
      "host_swap_slots = 16384\ntpt_entries = 8192\n");
  EXPECT_GT(r.barrier_ns, 0u);
  EXPECT_GT(r.broadcast_ns, 0u);
  EXPECT_EQ(r.bcast_msgs, 3u);  // binomial tree: N-1 messages
  EXPECT_GT(r.allreduce_ns, 0u);
  EXPECT_GT(r.alltoall_ns, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, ChurnRegistersAndTearsDownClean) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = skewed-kv\nhosts = 4\nservers = 1\n"
      "tenants_per_host = 2\nops_per_tenant = 4\n"
      "churn_regs_per_tenant = 12\nchurn_hold = 3\n");
  EXPECT_EQ(r.counters.registrations_ok, 8u * 12u);
  EXPECT_GT(r.counters.deregistrations, 0u);
  // Teardown releases what the hold-queues still pin; the audit checks
  // pinned_frames() == 0 on every host.
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, GovernorQuotaRejectsOverCommit) {
  // One-page quota and large churn registrations: admissions must fail,
  // the engine must survive and still audit clean.
  const ScenarioReport r = run_spec(
      "name = t\npattern = skewed-kv\nhosts = 4\nservers = 1\n"
      "tenants_per_host = 1\nops_per_tenant = 2\nvalue_bytes = 256\n"
      "request_bytes = 128\nresponse_bytes = 128\n"
      "tenant_quota_pages = 24\nchurn_regs_per_tenant = 16\n"
      "churn_bytes = 64k\nchurn_hold = 4\n");
  EXPECT_GT(r.counters.registrations_failed, 0u);
  EXPECT_GT(r.governor_rejected, 0u);
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, FaultPlanInjectsAndStaysInvariantClean) {
  const ScenarioReport r = run_spec(
      "name = t\npattern = skewed-kv\nhosts = 6\nservers = 2\n"
      "tenants_per_host = 1\nops_per_tenant = 24\nreliable = on\n"
      "value_bytes = 2048\n"
      "fault = wire drop p=0.05 max=40\n");
  EXPECT_GT(r.faults_injected, 0u);
  // Reliable channels retry dropped frames; the audit tolerates failed
  // transfers only when faults were armed, and still demands clean teardown.
  EXPECT_TRUE(r.invariants_ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(ScenarioEngine, ReportJsonCarriesAcceptanceScalar) {
  const ParseResult parsed = parse_spec(
      "name = t\npattern = pipeline\nhosts = 3\nops_per_tenant = 4\n");
  ASSERT_TRUE(parsed.ok());
  ScenarioEngine engine(parsed.spec);
  ASSERT_TRUE(ok(engine.build()));
  ASSERT_TRUE(ok(engine.run()));
  const std::string json = report_json(parsed.spec, engine.report());
  EXPECT_NE(json.find("\"registrations_plus_transfers\""), std::string::npos);
  EXPECT_NE(json.find("\"invariants_ok\": true"), std::string::npos);
  EXPECT_NE(json.find("\"pattern\": \"pipeline\""), std::string::npos);
}

}  // namespace
}  // namespace vialock::scenario
