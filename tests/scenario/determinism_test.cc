// determinism_test - the scenario determinism contract (DESIGN.md section
// 12): same spec + seed => byte-identical canonical JSON report and chrome
// trace export; a different seed reorders events but still audits clean.
#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "scenario/engine.h"
#include "scenario/spec.h"
#include "via/node.h"

namespace vialock::scenario {
namespace {

constexpr const char* kSpecText =
    "name = det\npattern = skewed-kv\nhosts = 8\nservers = 2\n"
    "tenants_per_host = 2\nops_per_tenant = 24\nskew = 1.1\n"
    "value_bytes = 4096\nchurn_regs_per_tenant = 8\n";

struct RunOutput {
  std::string json;
  std::string trace;
  ScenarioReport report;
};

RunOutput run_traced(std::uint64_t seed) {
  ParseResult parsed = parse_spec(kSpecText);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  parsed.spec.seed = seed;
  ScenarioEngine engine(parsed.spec);
  EXPECT_TRUE(ok(engine.build()));
  for (std::size_t i = 0; i < engine.cluster().size(); ++i)
    engine.cluster()
        .node(static_cast<via::NodeId>(i))
        .kernel()
        .spans()
        .enable(true);
  EXPECT_TRUE(ok(engine.run()));
  std::vector<const obs::SpanRecorder*> recorders;
  for (std::size_t i = 0; i < engine.cluster().size(); ++i)
    recorders.push_back(
        &engine.cluster().node(static_cast<via::NodeId>(i)).kernel().spans());
  return {report_json(parsed.spec, engine.report()),
          obs::chrome_trace(recorders), engine.report()};
}

TEST(ScenarioDeterminism, SameSeedByteIdenticalReportAndTrace) {
  const RunOutput a = run_traced(42);
  const RunOutput b = run_traced(42);
  EXPECT_EQ(a.json, b.json);    // byte-identical canonical report
  EXPECT_EQ(a.trace, b.trace);  // byte-identical chrome trace export
  EXPECT_TRUE(a.report.invariants_ok);
}

TEST(ScenarioDeterminism, DifferentSeedDiffersButAuditsClean) {
  const RunOutput a = run_traced(42);
  const RunOutput c = run_traced(1234);
  // A different seed reshuffles arrival times, key choices and churn sizes:
  // the reports must differ...
  EXPECT_NE(a.json, c.json);
  // ...but every invariant still holds - same planned op counts, clean
  // teardown, no lost or corrupted payloads.
  EXPECT_TRUE(c.report.invariants_ok)
      << (c.report.violations.empty() ? "" : c.report.violations[0]);
  EXPECT_EQ(c.report.counters.transfers_failed, 0u);
  EXPECT_EQ(c.report.counters.verify_failed, 0u);
  EXPECT_EQ(a.report.counters.kv_gets + a.report.counters.kv_puts,
            c.report.counters.kv_gets + c.report.counters.kv_puts);
}

TEST(ScenarioDeterminism, WallClockNeverEntersTheReport) {
  // Two runs executed at different wall times must agree on every scalar -
  // guaranteed structurally (all times derive from the virtual clock), and
  // checked here against accidental std::chrono leaks.
  const RunOutput a = run_traced(7);
  const RunOutput b = run_traced(7);
  EXPECT_EQ(a.report.makespan_ns, b.report.makespan_ns);
  EXPECT_EQ(a.report.busy_ns, b.report.busy_ns);
  EXPECT_EQ(a.report.cpu_total_ns, b.report.cpu_total_ns);
  EXPECT_EQ(a.report.latency_p99_ns, b.report.latency_p99_ns);
}

}  // namespace
}  // namespace vialock::scenario
