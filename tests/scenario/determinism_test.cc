// determinism_test - the scenario determinism contract (DESIGN.md section
// 12): same spec + seed => byte-identical canonical JSON report and chrome
// trace export; a different seed reorders events but still audits clean.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "obs/export.h"
#include "scenario/engine.h"
#include "scenario/spec.h"
#include "via/node.h"

namespace vialock::scenario {
namespace {

constexpr const char* kSpecText =
    "name = det\npattern = skewed-kv\nhosts = 8\nservers = 2\n"
    "tenants_per_host = 2\nops_per_tenant = 24\nskew = 1.1\n"
    "value_bytes = 4096\nchurn_regs_per_tenant = 8\n";

struct RunOutput {
  std::string json;
  std::string trace;
  ScenarioReport report;
};

RunOutput run_traced(std::uint64_t seed) {
  ParseResult parsed = parse_spec(kSpecText);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  parsed.spec.seed = seed;
  ScenarioEngine engine(parsed.spec);
  EXPECT_TRUE(ok(engine.build()));
  for (std::size_t i = 0; i < engine.cluster().size(); ++i)
    engine.cluster()
        .node(static_cast<via::NodeId>(i))
        .kernel()
        .spans()
        .enable(true);
  EXPECT_TRUE(ok(engine.run()));
  std::vector<const obs::SpanRecorder*> recorders;
  for (std::size_t i = 0; i < engine.cluster().size(); ++i)
    recorders.push_back(
        &engine.cluster().node(static_cast<via::NodeId>(i)).kernel().spans());
  return {report_json(parsed.spec, engine.report()),
          obs::chrome_trace(recorders), engine.report()};
}

TEST(ScenarioDeterminism, SameSeedByteIdenticalReportAndTrace) {
  const RunOutput a = run_traced(42);
  const RunOutput b = run_traced(42);
  EXPECT_EQ(a.json, b.json);    // byte-identical canonical report
  EXPECT_EQ(a.trace, b.trace);  // byte-identical chrome trace export
  EXPECT_TRUE(a.report.invariants_ok);
}

TEST(ScenarioDeterminism, DifferentSeedDiffersButAuditsClean) {
  const RunOutput a = run_traced(42);
  const RunOutput c = run_traced(1234);
  // A different seed reshuffles arrival times, key choices and churn sizes:
  // the reports must differ...
  EXPECT_NE(a.json, c.json);
  // ...but every invariant still holds - same planned op counts, clean
  // teardown, no lost or corrupted payloads.
  EXPECT_TRUE(c.report.invariants_ok)
      << (c.report.violations.empty() ? "" : c.report.violations[0]);
  EXPECT_EQ(c.report.counters.transfers_failed, 0u);
  EXPECT_EQ(c.report.counters.verify_failed, 0u);
  EXPECT_EQ(a.report.counters.kv_gets + a.report.counters.kv_puts,
            c.report.counters.kv_gets + c.report.counters.kv_puts);
}

TEST(ScenarioDeterminism, KvServicePatternIsSeedDeterministic) {
  // The svc tier adds its own stats surface (kv_service_stats, outside the
  // frozen report_json) - it must be as seed-deterministic as the report,
  // including the abrupt-churn reclamation counters.
  constexpr const char* kKvSpec =
      "name = det-kv\npattern = kv-server\nhosts = 5\nservers = 1\n"
      "tenants_per_host = 2\nops_per_tenant = 12\nkeys = 64\nskew = 1.1\n"
      "value_bytes = 256\nlarge_value_bytes = 4096\nlarge_fraction = 0.3\n"
      "put_fraction = 0.5\nconnections_per_client = 3\n"
      "conn_churn_per_client = 2\n";
  const auto run = [&](std::uint64_t seed) {
    ParseResult parsed = parse_spec(kKvSpec);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    parsed.spec.seed = seed;
    ScenarioEngine engine(parsed.spec);
    EXPECT_TRUE(ok(engine.build()));
    EXPECT_TRUE(ok(engine.run()));
    return std::make_tuple(report_json(parsed.spec, engine.report()),
                           engine.kv_service_stats(), engine.report());
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(1234);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_TRUE(std::get<1>(a) == std::get<1>(b));
  EXPECT_NE(std::get<0>(a), std::get<0>(c));
  // Different seed, same planned work, still a clean audit.
  EXPECT_EQ(std::get<2>(a).counters.kv_gets + std::get<2>(a).counters.kv_puts,
            std::get<2>(c).counters.kv_gets + std::get<2>(c).counters.kv_puts);
  EXPECT_TRUE(std::get<2>(c).invariants_ok);
}

TEST(ScenarioDeterminism, WallClockNeverEntersTheReport) {
  // Two runs executed at different wall times must agree on every scalar -
  // guaranteed structurally (all times derive from the virtual clock), and
  // checked here against accidental std::chrono leaks.
  const RunOutput a = run_traced(7);
  const RunOutput b = run_traced(7);
  EXPECT_EQ(a.report.makespan_ns, b.report.makespan_ns);
  EXPECT_EQ(a.report.busy_ns, b.report.busy_ns);
  EXPECT_EQ(a.report.cpu_total_ns, b.report.cpu_total_ns);
  EXPECT_EQ(a.report.latency_p99_ns, b.report.latency_p99_ns);
}

}  // namespace
}  // namespace vialock::scenario
