// slo_test.cc - the online SLO watchdog path end to end (DESIGN.md
// section 16): `slo =` spec grammar (malformed lines rejected with
// line-numbered errors), the impossible-rule path (fires, captures a flight
// dump of the still-running cluster *before* the audit flips
// invariants_ok), once-per-window firing under a persistent violation, and
// that a satisfied rule never perturbs a clean run.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "obs/sampler.h"
#include "scenario/engine.h"
#include "scenario/spec.h"

namespace vialock::scenario {
namespace {

// A small skewed-kv cluster that pins frames from the first churn
// registration on, sampled densely enough for many watchdog ticks.
const char kBase[] =
    "name = slo-unit\npattern = skewed-kv\nhosts = 6\nservers = 2\n"
    "tenants_per_host = 2\nops_per_tenant = 20\nchurn_regs_per_tenant = 6\n"
    "sample_interval = 100000\n";

std::unique_ptr<ScenarioEngine> run_engine(const std::string& text) {
  ParseResult parsed = parse_spec(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  auto engine = std::make_unique<ScenarioEngine>(parsed.spec);
  EXPECT_TRUE(ok(engine->build()));
  EXPECT_TRUE(ok(engine->run()));
  return engine;
}

// --- grammar -----------------------------------------------------------------

TEST(SloSpec, ParsesRuleWithWindow) {
  ParseResult parsed = parse_spec(
      std::string(kBase) +
      "slo = simkern.mem.pinned_frames le 100 window=4\n"
      "slo = svc.kv.op_ns.p99 lt 50000\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.spec.slo_rules.size(), 2u);
  EXPECT_EQ(parsed.spec.slo_rules[0].metric, "simkern.mem.pinned_frames");
  EXPECT_EQ(parsed.spec.slo_rules[0].op, "le");
  EXPECT_EQ(parsed.spec.slo_rules[0].threshold, 100u);
  EXPECT_EQ(parsed.spec.slo_rules[0].window, 4u);
  EXPECT_EQ(parsed.spec.slo_rules[1].op, "lt");
  EXPECT_EQ(parsed.spec.slo_rules[1].window, 1u);  // default
}

TEST(SloSpec, MalformedRulesRejectedWithLineNumbers) {
  // kBase is 8 lines, so the slo line is line 9 in every case.
  const struct {
    const char* line;
    const char* expect;
  } cases[] = {
      {"slo = just_a_metric\n", "slo rule needs"},
      {"slo = m.x below 5\n", "unknown slo operator 'below'"},
      {"slo = m.x le banana\n", "bad slo threshold value 'banana'"},
      {"slo = m.x le 5 window\n", "malformed slo option 'window'"},
      {"slo = m.x le 5 burst=2\n", "unknown slo option 'burst'"},
      {"slo = m.x le 5 window=0\n", "slo window must be >= 1"},
  };
  for (const auto& c : cases) {
    ParseResult parsed = parse_spec(std::string(kBase) + c.line);
    ASSERT_FALSE(parsed.ok()) << c.line;
    EXPECT_NE(parsed.error.find("line 9:"), std::string::npos)
        << c.line << " -> " << parsed.error;
    EXPECT_NE(parsed.error.find(c.expect), std::string::npos)
        << c.line << " -> " << parsed.error;
  }
}

// --- watchdog end to end -----------------------------------------------------

TEST(SloWatchdog, ImpossibleRuleFiresDumpsThenFailsAudit) {
  // Pinned frames are required to stay at zero: violated from the first
  // tick that observes churn/KV pins.
  const auto engine = run_engine(
      std::string(kBase) +
      "slo = simkern.mem.pinned_frames le 0 window=8\n");
  const obs::Sampler* smp = engine->sampler();
  ASSERT_NE(smp, nullptr);
  ASSERT_FALSE(smp->firings().empty());
  EXPECT_GT(smp->firings()[0].observed, 0u);

  // The firing hook flight-dumped the live cluster: the dump exists, names
  // the rule, and was captured at run time (non-empty kernel state), not
  // synthesized after teardown.
  ASSERT_FALSE(engine->flight_dumps().empty());
  EXPECT_EQ(engine->flight_dumps()[0].first, "slo:simkern.mem.pinned_frames");
  EXPECT_NE(engine->flight_dumps()[0].second.find("\"metrics\""),
            std::string::npos);

  // ...and the audit flipped afterwards, with the violation recorded.
  EXPECT_FALSE(engine->report().invariants_ok);
  bool found = false;
  for (const std::string& v : engine->report().violations)
    if (v.find("slo violated: simkern.mem.pinned_frames le 0") !=
        std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

TEST(SloWatchdog, PersistentViolationFiresOncePerWindow) {
  const auto engine = run_engine(
      std::string(kBase) +
      "slo = simkern.mem.pinned_frames le 0 window=16\n");
  const obs::Sampler* smp = engine->sampler();
  ASSERT_NE(smp, nullptr);
  // Pins persist across most of the run: with dense sampling the rule is
  // violated on far more ticks than it fires on.
  ASSERT_GE(smp->firings().size(), 2u);
  EXPECT_LT(smp->firings().size(), smp->ticks());
  for (std::size_t i = 1; i < smp->firings().size(); ++i) {
    EXPECT_GE(smp->firings()[i].tick, smp->firings()[i - 1].tick + 16)
        << "rule re-fired inside its window";
  }
  // One flight dump per firing, all before the audit flipped.
  EXPECT_EQ(engine->flight_dumps().size(), smp->firings().size());
  EXPECT_FALSE(engine->report().invariants_ok);
}

TEST(SloWatchdog, SatisfiedRuleLeavesRunClean) {
  const auto engine = run_engine(
      std::string(kBase) + "slo = simkern.mem.pinned_frames ge 0\n");
  const obs::Sampler* smp = engine->sampler();
  ASSERT_NE(smp, nullptr);
  EXPECT_GT(smp->ticks(), 0u);
  EXPECT_TRUE(smp->firings().empty());
  EXPECT_TRUE(engine->flight_dumps().empty());
  EXPECT_TRUE(engine->report().invariants_ok)
      << (engine->report().violations.empty()
              ? ""
              : engine->report().violations[0]);
}

}  // namespace
}  // namespace vialock::scenario
