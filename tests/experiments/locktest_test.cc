// locktest_test.cc - the paper's headline experiment as a test matrix:
// refcount locking fails under pressure, all real locking survives, and the
// no-pressure control passes for everyone.
#include "experiments/locktest.h"

#include <gtest/gtest.h>

#include "../via/via_util.h"
#include "experiments/pressure.h"

namespace vialock::experiments {
namespace {

using via::PolicyKind;

via::NodeSpec locktest_node(PolicyKind policy) {
  via::NodeSpec spec;
  spec.kernel.frames = 1024;       // 4 MB
  spec.kernel.reserved_low = 8;
  spec.kernel.swap_slots = 4096;   // 16 MB swap
  spec.kernel.free_pages_min = 8;
  spec.kernel.swap_cluster = 16;
  spec.nic.tpt_entries = 256;
  spec.policy = policy;
  return spec;
}

LocktestResult run(PolicyKind policy, const LocktestConfig& cfg = {}) {
  Clock clock;
  CostModel costs;
  via::Node node(locktest_node(policy), clock, costs);
  return run_locktest(node, cfg);
}

TEST(Locktest, RefcountPolicyFailsUnderPressure) {
  const LocktestResult r = run(PolicyKind::Refcount);
  ASSERT_TRUE(ok(r.status));
  // "In most cases we observed ... all physical addresses had changed and
  // the first page still contained its original value."
  EXPECT_FALSE(r.consistent());
  EXPECT_GT(r.pages_relocated, 0u);
  EXPECT_FALSE(r.dma_write_visible);
  EXPECT_FALSE(r.nic_read_current);
  // "the system stability is not affected by this lapse": data is intact and
  // the stale frames were merely leaked, not corrupted.
  EXPECT_TRUE(r.data_intact);
  EXPECT_EQ(r.frames_detached, r.pages_relocated);
  EXPECT_GT(r.pages_swapped_out, 0u);
}

TEST(Locktest, RefcountPolicyPassesWithoutPressure) {
  LocktestConfig cfg;
  cfg.run_pressure = false;
  const LocktestResult r = run(PolicyKind::Refcount, cfg);
  ASSERT_TRUE(ok(r.status));
  EXPECT_TRUE(r.consistent()) << "without swapping nothing relocates";
}

class ReliableLocktest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(ReliableLocktest, SurvivesPressure) {
  const LocktestResult r = run(GetParam());
  ASSERT_TRUE(ok(r.status));
  EXPECT_TRUE(r.consistent()) << "policy must hold TPT and MMU consistent";
  EXPECT_EQ(r.pages_relocated, 0u);
  EXPECT_TRUE(r.dma_write_visible);
  EXPECT_TRUE(r.data_intact);
  EXPECT_GT(r.pages_swapped_out, 0u)
      << "pressure must actually have caused swapping elsewhere";
}

INSTANTIATE_TEST_SUITE_P(Policies, ReliableLocktest,
                         ::testing::Values(PolicyKind::PageFlag,
                                           PolicyKind::Mlock,
                                           PolicyKind::MlockTracked,
                                           PolicyKind::Kiobuf),
                         [](const auto& info) {
                           switch (info.param) {
                             case PolicyKind::PageFlag: return "pageflag";
                             case PolicyKind::Mlock: return "mlock";
                             case PolicyKind::MlockTracked: return "mlocktrack";
                             case PolicyKind::Kiobuf: return "kiobuf";
                             default: return "other";
                           }
                         });

class LocktestSizeSweep
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LocktestSizeSweep, KiobufConsistentAcrossRegionSizes) {
  LocktestConfig cfg;
  cfg.region_pages = GetParam();
  const LocktestResult r = run(PolicyKind::Kiobuf, cfg);
  ASSERT_TRUE(ok(r.status));
  EXPECT_TRUE(r.consistent());
}

TEST_P(LocktestSizeSweep, RefcountRelocatesAcrossRegionSizes) {
  LocktestConfig cfg;
  cfg.region_pages = GetParam();
  const LocktestResult r = run(PolicyKind::Refcount, cfg);
  ASSERT_TRUE(ok(r.status));
  EXPECT_GT(r.pages_relocated, 0u);
}

INSTANTIATE_TEST_SUITE_P(Pages, LocktestSizeSweep,
                         ::testing::Values(1u, 8u, 64u, 200u));

TEST(Pressure, AllocatorForcesSwappingAndReportsCounts) {
  Clock clock;
  simkern::Kernel kern(test::small_config(256, 2048), clock);
  const auto victim = kern.create_task("victim");
  const auto a = test::must_mmap(kern, victim, 32);
  for (int p = 0; p < 32; ++p)
    ASSERT_TRUE(ok(kern.touch(victim, a + p * simkern::kPageSize, true)));
  const PressureResult pr = apply_memory_pressure(kern, 1.5);
  EXPECT_TRUE(ok(pr.status));
  EXPECT_GE(pr.pages_touched,
            static_cast<std::uint64_t>(256 * 1.5) - 1);
  EXPECT_GT(pr.swap_outs, 0u);
  // The victim's cold pages were among those evicted.
  EXPECT_LT(kern.task(victim).mm.rss, 32u);
  kern.exit_task(pr.allocator_pid);
}

TEST(Pressure, FactorScalesSwapActivity) {
  auto swap_outs_at = [](double factor) {
    Clock clock;
    simkern::Kernel kern(test::small_config(256, 4096), clock);
    const PressureResult pr = apply_memory_pressure(kern, factor);
    EXPECT_TRUE(ok(pr.status));
    return pr.swap_outs;
  };
  const auto low = swap_outs_at(0.5);   // fits in RAM: no swapping
  const auto high = swap_outs_at(2.0);  // double RAM: heavy swapping
  EXPECT_EQ(low, 0u);
  EXPECT_GT(high, 256u);
}

}  // namespace
}  // namespace vialock::experiments
