// integration_test.cc - whole-system scenarios: end-to-end transfers under
// real memory pressure, per locking policy; fork interactions; multi-process
// isolation with reclaim in the loop.
#include <gtest/gtest.h>

#include <vector>

#include "experiments/pressure.h"
#include "msg/transport.h"
#include "util/rng.h"
#include "via/via_util.h"

namespace vialock {
namespace {

using simkern::kPageSize;
using test::must_mmap;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xFF);
  return out;
}

/// Build a channel on nodes running `policy`, pre-register heaps, stage a
/// payload, apply memory pressure on BOTH nodes, re-stage a fresh payload,
/// transfer over the (old) registrations and compare.
/// Returns true iff the received data matches what the sender staged.
bool transfer_correct_under_pressure(via::PolicyKind policy) {
  via::Cluster cluster;
  via::NodeSpec spec;
  spec.kernel.frames = 2048;
  spec.kernel.swap_slots = 8192;
  spec.nic.tpt_entries = 2048;
  spec.policy = policy;
  const auto n0 = cluster.add_node(spec);
  const auto n1 = cluster.add_node(spec);
  msg::Channel::Config cfg;
  cfg.user_heap_bytes = 512 * 1024;  // 128 pages, pre-registered
  cfg.preregister_heaps = true;
  msg::Channel channel(cluster, n0, n1, cfg);
  EXPECT_TRUE(ok(channel.init()));

  constexpr std::uint32_t kLen = 256 * 1024;
  const auto warmup = pattern(kLen, 1);
  EXPECT_TRUE(ok(channel.stage(0, warmup)));

  // Memory pressure on both hosts: with a broken policy the registered
  // heaps are swapped out and relocate on the next touch.
  const auto pr0 =
      experiments::apply_memory_pressure(cluster.node(n0).kernel(), 1.5);
  const auto pr1 =
      experiments::apply_memory_pressure(cluster.node(n1).kernel(), 1.5);
  EXPECT_TRUE(ok(pr0.status));
  EXPECT_TRUE(ok(pr1.status));

  // Fresh payload: the stage() faults the (possibly relocated) pages in.
  const auto payload = pattern(kLen, 2);
  EXPECT_TRUE(ok(channel.stage(0, payload)));

  // Pure RDMA over the registrations made at init time.
  if (!ok(channel.transfer(msg::Protocol::Preregistered, 0, 0, kLen)))
    return false;
  std::vector<std::byte> out(kLen);
  EXPECT_TRUE(ok(channel.fetch(0, out)));
  return out == payload;
}

TEST(Integration, KiobufTransfersStayCorrectUnderPressure) {
  EXPECT_TRUE(transfer_correct_under_pressure(via::PolicyKind::Kiobuf));
}

TEST(Integration, MlockTransfersStayCorrectUnderPressure) {
  EXPECT_TRUE(transfer_correct_under_pressure(via::PolicyKind::Mlock));
}

TEST(Integration, RefcountTransfersSilentlyCorruptUnderPressure) {
  // The end-to-end consequence of the locktest result: the NIC moves bytes
  // from/into stale frames - the transfer "succeeds" but carries wrong data.
  EXPECT_FALSE(transfer_correct_under_pressure(via::PolicyKind::Refcount));
}

TEST(Integration, ForkAfterRegistrationPinsTheParentCopy) {
  // The classic fork-vs-pinned-pages interaction (the reason real RDMA
  // stacks grew MADV_DONTFORK): registration pins the frame; fork marks the
  // PTEs COW; the *first writer* gets a new frame. If the parent writes
  // after fork, the NIC - still targeting the pinned original - sees the
  // child's copy, not the parent's.
  Clock clock;
  CostModel costs;
  via::Node n(test::small_node(via::PolicyKind::Kiobuf), clock, costs);
  via::Node* node = &n;
  auto& kern = node->kernel();
  const auto parent = kern.create_task("parent");
  const auto a = must_mmap(kern, parent, 1);
  ASSERT_TRUE(ok(test::poke64(kern, parent, a, 100)));
  const auto tag = node->agent().create_ptag(parent);
  via::MemHandle mh;
  ASSERT_TRUE(
      ok(node->agent().register_mem(parent, a, kPageSize, tag, mh)));
  const auto pinned = node->agent().lock_handle(mh.id)->pfns[0];

  const auto child = kern.fork_task(parent);
  ASSERT_TRUE(ok(test::poke64(kern, parent, a, 200)));  // parent COW-breaks
  EXPECT_NE(*kern.resolve(parent, a), pinned)
      << "parent moved off the pinned frame";
  EXPECT_EQ(*kern.resolve(child, a), pinned)
      << "child inherited the pinned original";
  // The NIC still reads the pinned frame: it sees the pre-fork value.
  std::uint64_t nic_view = 0;
  ASSERT_TRUE(ok(node->nic().dma_read_local(
      mh, a, std::as_writable_bytes(std::span{&nic_view, 1}))));
  EXPECT_EQ(nic_view, 100u);
  ASSERT_TRUE(ok(node->agent().deregister_mem(mh)));
  kern.exit_task(child);
}

TEST(Integration, ManyProcessesRegisterAndCommunicateUnderReclaim) {
  // Four processes on one node, each with its own tag and registration,
  // while an allocator churns memory; all registrations stay consistent.
  Clock clock;
  CostModel costs;
  via::NodeSpec spec = test::small_node(via::PolicyKind::Kiobuf,
                                        /*frames=*/1024,
                                        /*tpt_entries=*/512);
  spec.kernel.swap_slots = 8192;
  via::Node node(spec, clock, costs);
  auto& kern = node.kernel();

  struct Proc {
    simkern::Pid pid;
    simkern::VAddr buf;
    via::MemHandle mh;
    std::vector<simkern::Pfn> pfns;
  };
  std::vector<Proc> procs;
  for (int i = 0; i < 4; ++i) {
    Proc p;
    p.pid = kern.create_task("worker" + std::to_string(i));
    p.buf = must_mmap(kern, p.pid, 8);
    const auto tag = node.agent().create_ptag(p.pid);
    ASSERT_TRUE(ok(
        node.agent().register_mem(p.pid, p.buf, 8 * kPageSize, tag, p.mh)));
    p.pfns = node.agent().lock_handle(p.mh.id)->pfns;
    procs.push_back(std::move(p));
  }

  const auto pr = experiments::apply_memory_pressure(kern, 1.5);
  ASSERT_TRUE(ok(pr.status));
  EXPECT_GT(kern.stats().pages_swapped_out, 0u);

  for (const auto& p : procs) {
    for (int pg = 0; pg < 8; ++pg) {
      EXPECT_EQ(*kern.resolve(p.pid, p.buf + pg * kPageSize), p.pfns[pg]);
    }
    ASSERT_TRUE(ok(node.agent().deregister_mem(p.mh)));
  }
  kern.exit_task(pr.allocator_pid);
}

TEST(Integration, DeregisteredMemoryBecomesEvictableAgain) {
  Clock clock;
  CostModel costs;
  via::Node node(test::small_node(), clock, costs);
  auto& kern = node.kernel();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 8);
  const auto tag = node.agent().create_ptag(pid);
  via::MemHandle mh;
  ASSERT_TRUE(ok(node.agent().register_mem(pid, a, 8 * kPageSize, tag, mh)));
  // Pinned: reclaim cannot take these.
  for (int p = 0; p < 8; ++p)
    kern.task(pid).mm.pt.walk(a + p * kPageSize)->accessed = false;
  EXPECT_EQ(kern.try_to_free_pages(8), 0u);
  ASSERT_TRUE(ok(node.agent().deregister_mem(mh)));
  // Unpinned: reclaim takes them now.
  for (int p = 0; p < 8; ++p)
    kern.task(pid).mm.pt.walk(a + p * kPageSize)->accessed = false;
  EXPECT_GE(kern.try_to_free_pages(8), 8u);
}

TEST(Integration, MunmapOfRegisteredRegionLeavesPinnedFramesAlive) {
  // A process munmaps (or exits) while the NIC still holds a registration:
  // the kiobuf references keep the frames allocated until deregistration -
  // no use-after-free for the DMA engine.
  Clock clock;
  CostModel costs;
  via::Node node(test::small_node(), clock, costs);
  auto& kern = node.kernel();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 4);
  const auto tag = node.agent().create_ptag(pid);
  via::MemHandle mh;
  ASSERT_TRUE(ok(node.agent().register_mem(pid, a, 4 * kPageSize, tag, mh)));
  const auto pfns = node.agent().lock_handle(mh.id)->pfns;
  ASSERT_TRUE(ok(kern.sys_munmap(pid, a, 4 * kPageSize)));
  for (const auto pfn : pfns) {
    EXPECT_FALSE(kern.phys().page(pfn).free())
        << "registered frame freed while the NIC can still DMA to it";
    EXPECT_TRUE(kern.phys().page(pfn).pinned());
  }
  // The NIC can still write (into orphaned but owned frames).
  const std::uint64_t v = 42;
  EXPECT_TRUE(ok(
      node.nic().dma_write_local(mh, a, std::as_bytes(std::span{&v, 1}))));
  ASSERT_TRUE(ok(node.agent().deregister_mem(mh)));
  for (const auto pfn : pfns) EXPECT_TRUE(kern.phys().page(pfn).free());
}

}  // namespace
}  // namespace vialock
