// collectives_test.cc - MPI-style collectives over the matching layer,
// including mixed shm/fabric topologies.
#include "mp/collectives.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "../via/via_util.h"

namespace vialock::mp {
namespace {

struct CollBox {
  /// `layout[i]` gives the node index (0..) rank i lives on.
  explicit CollBox(std::vector<int> layout) {
    int max_node = 0;
    for (const int n : layout) max_node = std::max(max_node, n);
    std::vector<via::NodeId> node_ids;
    for (int n = 0; n <= max_node; ++n) {
      node_ids.push_back(cluster.add_node(test::small_node(
          via::PolicyKind::Kiobuf, /*frames=*/2048, /*tpt_entries=*/2048)));
    }
    std::vector<via::NodeId> rank_nodes;
    for (const int n : layout) rank_nodes.push_back(node_ids[n]);
    comm = std::make_unique<Comm>(cluster, rank_nodes);
    EXPECT_TRUE(ok(comm->init()));
  }
  via::Cluster cluster;
  std::unique_ptr<Comm> comm;
};

TEST(Collectives, UserTagsMayNotBeNegative) {
  CollBox box({0, 1});
  EXPECT_EQ(box.comm->isend(0, 1, -5, 0, 8), kInvalidReq);
  EXPECT_EQ(box.comm->irecv(1, 0, -5, 0, 8), kInvalidReq);
  EXPECT_NE(box.comm->irecv(1, 0, kAnyTag, 0, 8), kInvalidReq);
}

TEST(Collectives, BroadcastAcrossFourRanks) {
  CollBox box({0, 0, 1, 1});  // mixed shm + fabric
  const std::uint64_t v = 0xB0CA57;
  ASSERT_TRUE(ok(box.comm->stage(2, 0, test::bytes_of(v))));
  ASSERT_TRUE(ok(broadcast(*box.comm, /*root=*/2, 0, 8)));
  for (Rank r = 0; r < 4; ++r) {
    std::uint64_t got = 0;
    ASSERT_TRUE(ok(box.comm->fetch(
        r, 0, std::as_writable_bytes(std::span{&got, 1}))));
    EXPECT_EQ(got, v) << "rank " << r;
  }
}

TEST(Collectives, ReduceSumToArbitraryRoot) {
  CollBox box({0, 1, 0});
  constexpr std::uint32_t kCount = 8;
  std::array<std::uint64_t, kCount> expect{};
  for (Rank r = 0; r < 3; ++r) {
    std::array<std::uint64_t, kCount> vals;
    for (std::uint32_t i = 0; i < kCount; ++i) {
      vals[i] = (r + 1) * 10 + i;
      expect[i] += vals[i];
    }
    ASSERT_TRUE(ok(box.comm->stage(r, 0, std::as_bytes(std::span{vals}))));
  }
  ASSERT_TRUE(ok(reduce_sum(*box.comm, /*root=*/1, 0, kCount, 4096)));
  std::array<std::uint64_t, kCount> got{};
  ASSERT_TRUE(
      ok(box.comm->fetch(1, 0, std::as_writable_bytes(std::span{got}))));
  EXPECT_EQ(got, expect);
}

TEST(Collectives, AllreduceAgreesEverywhere) {
  CollBox box({0, 0, 1, 1, 1});  // five ranks, non-power-of-two
  std::uint64_t expect = 0;
  for (Rank r = 0; r < 5; ++r) {
    const std::uint64_t v = 1ULL << r;
    expect += v;
    ASSERT_TRUE(ok(box.comm->stage(r, 0, test::bytes_of(v))));
  }
  ASSERT_TRUE(ok(allreduce_sum(*box.comm, 0, 1, 4096)));
  for (Rank r = 0; r < 5; ++r) {
    std::uint64_t got = 0;
    ASSERT_TRUE(ok(box.comm->fetch(
        r, 0, std::as_writable_bytes(std::span{&got, 1}))));
    EXPECT_EQ(got, expect) << "rank " << r;
  }
}

TEST(Collectives, GatherAssemblesBlocksAtRoot) {
  CollBox box({0, 1, 1});
  constexpr std::uint32_t kBlock = 2048;
  for (Rank r = 0; r < 3; ++r) {
    const std::uint64_t marker = 0x6A77E2 + r;
    ASSERT_TRUE(ok(box.comm->stage(r, 0, test::bytes_of(marker))));
  }
  ASSERT_TRUE(ok(gather(*box.comm, /*root=*/0, 0, kBlock)));
  for (Rank r = 1; r < 3; ++r) {
    std::uint64_t got = 0;
    ASSERT_TRUE(ok(box.comm->fetch(
        0, static_cast<std::uint64_t>(r) * kBlock,
        std::as_writable_bytes(std::span{&got, 1}))));
    EXPECT_EQ(got, 0x6A77E2u + r) << "block " << r;
  }
}

TEST(Collectives, BarrierCompletesOnMixedTopology) {
  CollBox box({0, 0, 1});
  const Nanos before = box.cluster.clock().now();
  ASSERT_TRUE(ok(barrier(*box.comm)));
  EXPECT_GT(box.cluster.clock().now(), before);
}

TEST(Collectives, InternalTagsDontDisturbUserTraffic) {
  CollBox box({0, 1});
  // A user message parked unexpected must survive a barrier + broadcast.
  const std::uint64_t v = 0x11EE;
  ASSERT_TRUE(ok(box.comm->stage(0, 256, test::bytes_of(v))));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, 33, 256, 8)));
  ASSERT_TRUE(ok(barrier(*box.comm, /*scratch=*/1024)));
  ASSERT_TRUE(ok(broadcast(*box.comm, 0, 2048, 64)));
  MpStatus st;
  ASSERT_TRUE(ok(box.comm->recv(1, 0, 33, 512, 64, &st)));
  std::uint64_t got = 0;
  ASSERT_TRUE(ok(box.comm->fetch(
      1, 512, std::as_writable_bytes(std::span{&got, 1}))));
  EXPECT_EQ(got, 0x11EEu);
  // And an ANY_TAG receive posted during user traffic must not have been
  // stolen by collective-internal messages (they use negative tags which
  // only internal receives can match).
}

TEST(Collectives, RepeatedCollectivesAreStable) {
  CollBox box({0, 1, 0, 1});
  for (int round = 0; round < 5; ++round) {
    for (Rank r = 0; r < 4; ++r) {
      const std::uint64_t v = round * 100 + r;
      ASSERT_TRUE(ok(box.comm->stage(r, 0, test::bytes_of(v))));
    }
    ASSERT_TRUE(ok(allreduce_sum(*box.comm, 0, 1, 4096)));
    std::uint64_t got = 0;
    ASSERT_TRUE(ok(box.comm->fetch(
        3, 0, std::as_writable_bytes(std::span{&got, 1}))));
    EXPECT_EQ(got, static_cast<std::uint64_t>(4 * round * 100 + 0 + 1 + 2 + 3));
    ASSERT_TRUE(ok(barrier(*box.comm, 8192)));
  }
}

}  // namespace
}  // namespace vialock::mp
