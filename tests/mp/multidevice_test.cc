// multidevice_test.cc - the multidevice routing: same-node ranks communicate
// over shared memory, cross-node ranks over the VIA fabric, behind one
// matching API (the collection's first paper in miniature).
#include <gtest/gtest.h>

#include <vector>

#include "../via/via_util.h"
#include "mp/comm.h"
#include "util/rng.h"

namespace vialock::mp {
namespace {

/// Two nodes, two ranks each: ranks 0,1 on node A; ranks 2,3 on node B.
struct HybridBox {
  explicit HybridBox(Comm::Config cfg = Comm::Config{}) {
    const auto a = cluster.add_node(test::small_node(
        via::PolicyKind::Kiobuf, /*frames=*/2048, /*tpt_entries=*/2048));
    const auto b = cluster.add_node(test::small_node(
        via::PolicyKind::Kiobuf, /*frames=*/2048, /*tpt_entries=*/2048));
    comm = std::make_unique<Comm>(
        cluster, std::vector<via::NodeId>{a, a, b, b}, cfg);
    EXPECT_TRUE(ok(comm->init()));
  }
  via::Cluster cluster;
  std::unique_ptr<Comm> comm;
};

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xFF);
  return out;
}

TEST(Multidevice, ConnectiontableRoutesByNode) {
  HybridBox box;
  EXPECT_TRUE(box.comm->uses_shm(0, 1));   // same node
  EXPECT_TRUE(box.comm->uses_shm(2, 3));
  EXPECT_FALSE(box.comm->uses_shm(0, 2));  // cross node
  EXPECT_FALSE(box.comm->uses_shm(1, 3));
}

TEST(Multidevice, LocalEagerGoesThroughSharedMemory) {
  HybridBox box;
  const auto payload = pattern(512, 1);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  const auto nic_sends_before =
      box.cluster.node(0).nic().stats().sends_posted;
  const ReqId r = box.comm->irecv(1, 0, 1, 0, 4096);
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, 1, 0, 512)));
  ASSERT_TRUE(box.comm->wait(r));
  std::vector<std::byte> out(512);
  ASSERT_TRUE(ok(box.comm->fetch(1, 0, out)));
  EXPECT_EQ(payload, out);
  EXPECT_EQ(box.cluster.node(0).nic().stats().sends_posted, nic_sends_before)
      << "local traffic must not touch the NIC";
  EXPECT_GE(box.comm->stats().local_msgs, 1u);
}

TEST(Multidevice, LocalLargeMessagePipelinesThroughShm) {
  HybridBox box;
  const auto payload = pattern(300 * 1024, 2);  // 5 bounce chunks
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  const ReqId r = box.comm->irecv(1, 0, 2, 0, 512 * 1024);
  const ReqId s = box.comm->isend(0, 1, 2, 0, 300 * 1024);
  ASSERT_TRUE(box.comm->wait(r));
  ASSERT_TRUE(box.comm->wait(s));
  std::vector<std::byte> out(payload.size());
  ASSERT_TRUE(ok(box.comm->fetch(1, 0, out)));
  EXPECT_EQ(payload, out);
  EXPECT_EQ(box.comm->stats().local_pulls, 1u);
  EXPECT_EQ(box.comm->stats().rdma_pulls, 0u) << "no NIC involved";
}

TEST(Multidevice, CrossNodeStillUsesTheFabric) {
  HybridBox box;
  const auto payload = pattern(64 * 1024, 3);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  const ReqId r = box.comm->irecv(2, 0, 3, 0, 128 * 1024);
  const ReqId s = box.comm->isend(0, 2, 3, 0, 64 * 1024);
  ASSERT_TRUE(box.comm->wait(r));
  ASSERT_TRUE(box.comm->wait(s));
  std::vector<std::byte> out(payload.size());
  ASSERT_TRUE(ok(box.comm->fetch(2, 0, out)));
  EXPECT_EQ(payload, out);
  EXPECT_EQ(box.comm->stats().rdma_pulls, 1u);
}

TEST(Multidevice, AnySourceSpansBothDevices) {
  // One local and one remote sender; a wildcard receive takes both, in
  // arrival order - the exact scenario the multidevice paper's AnyQueue
  // machinery exists for.
  HybridBox box;
  const std::uint64_t from_local = 0x10CA1;
  const std::uint64_t from_remote = 0x2E307E;
  ASSERT_TRUE(ok(box.comm->stage(0, 0, test::bytes_of(from_local))));
  ASSERT_TRUE(ok(box.comm->stage(2, 0, test::bytes_of(from_remote))));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, 9, 0, 8)));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(2, 1, 9, 0, 8)));
  MpStatus st1, st2;
  ASSERT_TRUE(ok(box.comm->recv(1, kAnySource, 9, 0, 64, &st1)));
  std::uint64_t g1 = 0;
  ASSERT_TRUE(
      ok(box.comm->fetch(1, 0, std::as_writable_bytes(std::span{&g1, 1}))));
  ASSERT_TRUE(ok(box.comm->recv(1, kAnySource, 9, 0, 64, &st2)));
  std::uint64_t g2 = 0;
  ASSERT_TRUE(
      ok(box.comm->fetch(1, 0, std::as_writable_bytes(std::span{&g2, 1}))));
  // Both arrived; sources distinct; values match their senders.
  EXPECT_NE(st1.source, st2.source);
  EXPECT_EQ(g1, st1.source == 0 ? from_local : from_remote);
  EXPECT_EQ(g2, st2.source == 0 ? from_local : from_remote);
}

TEST(Multidevice, LocalIsFasterThanCrossNode) {
  HybridBox box;
  const auto payload = pattern(2048, 4);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  Clock& clock = box.cluster.clock();

  const ReqId rl = box.comm->irecv(1, 0, 5, 0, 4096);
  const Nanos t0 = clock.now();
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, 5, 0, 2048)));
  ASSERT_TRUE(box.comm->wait(rl));
  const Nanos local = clock.now() - t0;

  const ReqId rr = box.comm->irecv(2, 0, 5, 0, 4096);
  const Nanos t1 = clock.now();
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 2, 5, 0, 2048)));
  ASSERT_TRUE(box.comm->wait(rr));
  const Nanos remote = clock.now() - t1;

  EXPECT_LT(local, remote) << "shm path must beat the NIC path intra-node";
}

TEST(Multidevice, DisablingShmFallsBackToNicLoopback) {
  Comm::Config cfg;
  cfg.shm_for_local = false;
  HybridBox box(cfg);
  EXPECT_FALSE(box.comm->uses_shm(0, 1));
  const auto payload = pattern(256, 5);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  const ReqId r = box.comm->irecv(1, 0, 7, 0, 4096);
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, 7, 0, 256)));
  ASSERT_TRUE(box.comm->wait(r));
  std::vector<std::byte> out(256);
  ASSERT_TRUE(ok(box.comm->fetch(1, 0, out)));
  EXPECT_EQ(payload, out);
  EXPECT_GT(box.cluster.node(0).nic().stats().sends_posted, 0u);
}

TEST(Multidevice, MixedTrafficStressStaysIntact) {
  HybridBox box;
  Rng rng(777);
  for (int i = 0; i < 40; ++i) {
    const Rank from = static_cast<Rank>(rng.below(4));
    Rank to;
    do {
      to = static_cast<Rank>(rng.below(4));
    } while (to == from);
    const auto payload = pattern(64 + rng.below(12000), 2000 + i);
    ASSERT_TRUE(ok(box.comm->stage(from, 0, payload)));
    const ReqId r = box.comm->irecv(to, static_cast<std::int32_t>(from), i,
                                    16384, 64 * 1024);
    const ReqId s = box.comm->isend(
        from, to, i, 0, static_cast<std::uint32_t>(payload.size()));
    MpStatus st;
    ASSERT_TRUE(box.comm->wait(r, &st)) << "message " << i;
    ASSERT_TRUE(box.comm->wait(s)) << "message " << i;
    ASSERT_EQ(st.len, payload.size());
    std::vector<std::byte> out(payload.size());
    ASSERT_TRUE(ok(box.comm->fetch(to, 16384, out)));
    ASSERT_EQ(out, payload) << "message " << i;
  }
  EXPECT_GT(box.comm->stats().local_msgs, 0u);
  EXPECT_GT(box.comm->stats().rdma_pulls + box.comm->stats().local_pulls, 0u);
}

}  // namespace
}  // namespace vialock::mp
