// indirect_test.cc - system messages and indirect communication (the
// multidevice paper, section 3.4): when two ranks have no direct link, the
// message travels via intermediate nodes wrapped in system messages with
// reserved tags; the sender completes when the end-to-end acknowledgement
// chain returns.
#include <gtest/gtest.h>

#include <vector>

#include "../via/via_util.h"
#include "mp/comm.h"
#include "util/rng.h"

namespace vialock::mp {
namespace {

struct IndirectBox {
  /// `ranks` nodes (one rank each); `blocked` pairs get no direct link.
  IndirectBox(std::uint32_t ranks,
              std::vector<std::pair<Rank, Rank>> blocked) {
    std::vector<via::NodeId> nodes;
    for (std::uint32_t i = 0; i < ranks; ++i) {
      nodes.push_back(cluster.add_node(test::small_node(
          via::PolicyKind::Kiobuf, /*frames=*/2048, /*tpt_entries=*/2048)));
    }
    Comm::Config cfg;
    cfg.no_direct_link = std::move(blocked);
    comm = std::make_unique<Comm>(cluster, nodes, cfg);
    EXPECT_TRUE(ok(comm->init()));
  }
  via::Cluster cluster;
  std::unique_ptr<Comm> comm;
};

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xFF);
  return out;
}

TEST(Indirect, RoutingTableFindsTheIntermediate) {
  IndirectBox box(3, {{0, 2}});
  EXPECT_FALSE(box.comm->has_direct_link(0, 2));
  EXPECT_TRUE(box.comm->has_direct_link(0, 1));
  EXPECT_EQ(box.comm->route_next(0, 2), 1u);
  EXPECT_EQ(box.comm->route_next(2, 0), 1u);
  EXPECT_EQ(box.comm->route_next(0, 1), 1u);  // direct
}

TEST(Indirect, MessageTravelsViaIntermediateNode) {
  IndirectBox box(3, {{0, 2}});
  const auto payload = pattern(1024, 1);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  const ReqId r = box.comm->irecv(2, 0, 7, 0, 4096);
  const ReqId s = box.comm->isend(0, 2, 7, 0, 1024);
  MpStatus st;
  ASSERT_TRUE(box.comm->wait(r, &st));
  ASSERT_TRUE(box.comm->wait(s)) << "ACK chain must complete the sender";
  EXPECT_EQ(st.source, 0u);
  EXPECT_EQ(st.tag, 7);
  std::vector<std::byte> out(1024);
  ASSERT_TRUE(ok(box.comm->fetch(2, 0, out)));
  EXPECT_EQ(payload, out);
  EXPECT_EQ(box.comm->stats().indirect_sends, 1u);
  EXPECT_GE(box.comm->stats().indirect_forwards, 0u);
}

TEST(Indirect, SenderStaysPendingUntilAck) {
  // The paper: the sender waits on the semaphore until the acknowledgement
  // arrives. Here: the request must be complete only after the full chain
  // (which our synchronous progress resolves within the same call).
  IndirectBox box(3, {{0, 2}});
  const std::uint64_t v = 0xACED;
  ASSERT_TRUE(ok(box.comm->stage(0, 0, test::bytes_of(v))));
  const ReqId s = box.comm->isend(0, 2, 1, 0, 8);
  // Arrived unexpected at rank 2; the delivery there triggered the ACK, so
  // the sender is already complete even before the receive is posted.
  ASSERT_TRUE(box.comm->test(s));
  MpStatus st;
  ASSERT_TRUE(ok(box.comm->recv(2, 0, 1, 0, 64, &st)));
  EXPECT_EQ(st.source, 0u);
}

TEST(Indirect, TwoHopChain) {
  // Linear topology 0 - 1 - 2 - 3: a message 0 -> 3 crosses two
  // intermediates.
  IndirectBox box(4, {{0, 2}, {0, 3}, {1, 3}});
  EXPECT_EQ(box.comm->route_next(0, 3), 1u);
  const auto payload = pattern(512, 2);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  const ReqId r = box.comm->irecv(3, 0, 9, 0, 4096);
  const ReqId s = box.comm->isend(0, 3, 9, 0, 512);
  ASSERT_TRUE(box.comm->wait(r));
  ASSERT_TRUE(box.comm->wait(s));
  std::vector<std::byte> out(512);
  ASSERT_TRUE(ok(box.comm->fetch(3, 0, out)));
  EXPECT_EQ(payload, out);
  EXPECT_GE(box.comm->stats().indirect_forwards, 2u)
      << "payload forwarded by 1 and 2";
}

TEST(Indirect, UnreachableDestinationFailsCleanly) {
  // Rank 2 fully isolated.
  IndirectBox box(3, {{0, 2}, {1, 2}});
  EXPECT_EQ(box.comm->route_next(0, 2), Comm::kNoRoute);
  const std::uint64_t v = 1;
  ASSERT_TRUE(ok(box.comm->stage(0, 0, test::bytes_of(v))));
  const ReqId s = box.comm->isend(0, 2, 1, 0, 8);
  EXPECT_FALSE(box.comm->wait(s)) << "send to unreachable rank must fail";
}

TEST(Indirect, OversizedIndirectMessageIsRejected) {
  IndirectBox box(3, {{0, 2}});
  const ReqId s = box.comm->isend(0, 2, 1, 0, 64 * 1024);
  EXPECT_FALSE(box.comm->wait(s))
      << "indirect messages are bounded by the slot size (the paper flags "
         "the cost of buffering large messages on intermediates)";
}

TEST(Indirect, MatchingSemanticsSurviveRouting) {
  // Tag selectivity and ANY_SOURCE across a routed link.
  IndirectBox box(3, {{0, 2}});
  const std::uint64_t va = 0xA;
  const std::uint64_t vb = 0xB;
  ASSERT_TRUE(ok(box.comm->stage(0, 0, test::bytes_of(va))));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 2, 10, 0, 8)));
  ASSERT_TRUE(ok(box.comm->stage(1, 0, test::bytes_of(vb))));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(1, 2, 20, 0, 8)));
  // Receive tag 20 first (direct link), then tag 10 (routed).
  MpStatus st;
  ASSERT_TRUE(ok(box.comm->recv(2, kAnySource, 20, 0, 64, &st)));
  EXPECT_EQ(st.source, 1u);
  ASSERT_TRUE(ok(box.comm->recv(2, kAnySource, 10, 0, 64, &st)));
  EXPECT_EQ(st.source, 0u) << "routed message keeps its original source";
}

TEST(Indirect, IntermediateLoadShowsInStats) {
  IndirectBox box(3, {{0, 2}});
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t v = i;
    ASSERT_TRUE(ok(box.comm->stage(0, 0, test::bytes_of(v))));
    const ReqId r = box.comm->irecv(2, 0, i, 0, 64);
    ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 2, i, 0, 8)));
    ASSERT_TRUE(box.comm->wait(r));
  }
  EXPECT_EQ(box.comm->stats().indirect_sends, 5u);
  // Each message is forwarded once (rank 1) and each ACK once (rank 1).
  EXPECT_EQ(box.comm->stats().indirect_forwards, 10u);
}

TEST(Indirect, MixedDirectAndRoutedTrafficIsIntact) {
  IndirectBox box(4, {{0, 3}});
  Rng rng(55);
  for (int i = 0; i < 20; ++i) {
    const Rank from = static_cast<Rank>(rng.below(4));
    Rank to;
    do {
      to = static_cast<Rank>(rng.below(4));
    } while (to == from);
    const auto payload = pattern(32 + rng.below(1024), 500 + i);
    ASSERT_TRUE(ok(box.comm->stage(from, 0, payload)));
    const ReqId r = box.comm->irecv(to, static_cast<std::int32_t>(from), i,
                                    8192, 8192);
    const ReqId s = box.comm->isend(
        from, to, i, 0, static_cast<std::uint32_t>(payload.size()));
    ASSERT_TRUE(box.comm->wait(r)) << i;
    ASSERT_TRUE(box.comm->wait(s)) << i;
    std::vector<std::byte> out(payload.size());
    ASSERT_TRUE(ok(box.comm->fetch(to, 8192, out)));
    ASSERT_EQ(out, payload) << i;
  }
}

}  // namespace
}  // namespace vialock::mp
