// comm_test.cc - the MPI-flavoured layer: tag/source matching, unexpected
// queues, ANY_SOURCE, nonblocking requests, rendezvous pull, ordering.
#include "mp/comm.h"

#include <gtest/gtest.h>

#include <vector>

#include "../via/via_util.h"
#include "util/rng.h"

namespace vialock::mp {
namespace {

struct CommBox {
  explicit CommBox(std::uint32_t ranks = 3, Comm::Config cfg = Comm::Config{}) {
    std::vector<via::NodeId> nodes;
    for (std::uint32_t i = 0; i < ranks; ++i) {
      nodes.push_back(cluster.add_node(test::small_node(
          via::PolicyKind::Kiobuf, /*frames=*/2048, /*tpt_entries=*/2048)));
    }
    comm = std::make_unique<Comm>(cluster, nodes, cfg);
    EXPECT_TRUE(ok(comm->init()));
  }
  via::Cluster cluster;
  std::unique_ptr<Comm> comm;
};

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xFF);
  return out;
}

TEST(Comm, EagerSendRecvRoundTrip) {
  CommBox box;
  const auto payload = pattern(512, 1);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  const ReqId r = box.comm->irecv(1, 0, /*tag=*/5, 0, 4096);
  const ReqId s = box.comm->isend(0, 1, /*tag=*/5, 0, 512);
  MpStatus st;
  ASSERT_TRUE(box.comm->wait(s));
  ASSERT_TRUE(box.comm->wait(r, &st));
  EXPECT_EQ(st.source, 0u);
  EXPECT_EQ(st.tag, 5);
  EXPECT_EQ(st.len, 512u);
  std::vector<std::byte> out(512);
  ASSERT_TRUE(ok(box.comm->fetch(1, 0, out)));
  EXPECT_EQ(payload, out);
  EXPECT_EQ(box.comm->stats().eager_sends, 1u);
}

TEST(Comm, RendezvousSendRecvRoundTrip) {
  CommBox box;
  const auto payload = pattern(128 * 1024, 2);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  const ReqId r = box.comm->irecv(2, 0, 9, 0, 256 * 1024);
  const ReqId s = box.comm->isend(0, 2, 9, 0, 128 * 1024);
  MpStatus st;
  ASSERT_TRUE(box.comm->wait(r, &st));
  ASSERT_TRUE(box.comm->wait(s)) << "FIN must have completed the sender";
  EXPECT_EQ(st.len, 128u * 1024);
  std::vector<std::byte> out(payload.size());
  ASSERT_TRUE(ok(box.comm->fetch(2, 0, out)));
  EXPECT_EQ(payload, out);
  EXPECT_EQ(box.comm->stats().rendezvous_sends, 1u);
  EXPECT_EQ(box.comm->stats().rdma_pulls, 1u);
}

TEST(Comm, UnexpectedEagerMessageIsBufferedAndMatchedLater) {
  CommBox box;
  const auto payload = pattern(256, 3);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  const ReqId s = box.comm->isend(0, 1, 7, 0, 256);  // no receive posted
  ASSERT_TRUE(box.comm->wait(s));
  EXPECT_EQ(box.comm->stats().unexpected_msgs, 1u);
  // The late receive finds it in the unexpected queue.
  MpStatus st;
  ASSERT_TRUE(ok(box.comm->recv(1, 0, 7, 0, 1024, &st)));
  EXPECT_EQ(st.len, 256u);
  std::vector<std::byte> out(256);
  ASSERT_TRUE(ok(box.comm->fetch(1, 0, out)));
  EXPECT_EQ(payload, out);
}

TEST(Comm, UnexpectedRendezvousCarriesNoPayloadUntilMatched) {
  CommBox box;
  const auto payload = pattern(64 * 1024, 4);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  const ReqId s = box.comm->isend(0, 1, 1, 0, 64 * 1024);
  EXPECT_FALSE(box.comm->test(s)) << "rendezvous send pending without recv";
  EXPECT_EQ(box.comm->stats().rdma_pulls, 0u) << "no data moved yet";
  MpStatus st;
  ASSERT_TRUE(ok(box.comm->recv(1, 0, 1, 0, 64 * 1024, &st)));
  EXPECT_EQ(box.comm->stats().rdma_pulls, 1u);
  ASSERT_TRUE(box.comm->wait(s));
  std::vector<std::byte> out(payload.size());
  ASSERT_TRUE(ok(box.comm->fetch(1, 0, out)));
  EXPECT_EQ(payload, out);
}

TEST(Comm, TagsAreMatchedExactly) {
  CommBox box;
  const auto a = pattern(64, 5);
  const auto b = pattern(64, 6);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, a)));
  ASSERT_TRUE(ok(box.comm->stage(0, 4096, b)));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, /*tag=*/10, 0, 64)));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, /*tag=*/20, 4096, 64)));
  // Receive tag 20 FIRST although it arrived second.
  MpStatus st;
  ASSERT_TRUE(ok(box.comm->recv(1, 0, 20, 0, 1024, &st)));
  std::vector<std::byte> out(64);
  ASSERT_TRUE(ok(box.comm->fetch(1, 0, out)));
  EXPECT_EQ(out, b);
  ASSERT_TRUE(ok(box.comm->recv(1, 0, 10, 0, 1024, &st)));
  ASSERT_TRUE(ok(box.comm->fetch(1, 0, out)));
  EXPECT_EQ(out, a);
}

TEST(Comm, SameTagMessagesArriveInOrder) {
  // MPI non-overtaking rule for identical (source, tag).
  CommBox box;
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t v = 100 + i;
    ASSERT_TRUE(ok(box.comm->stage(0, i * 64, test::bytes_of(v))));
    ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, 3, i * 64, 8)));
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ok(box.comm->recv(1, 0, 3, 0, 64)));
    std::uint64_t got = 0;
    ASSERT_TRUE(ok(box.comm->fetch(
        1, 0, std::as_writable_bytes(std::span{&got, 1}))));
    EXPECT_EQ(got, 100u + i) << "message " << i << " overtaken";
  }
}

TEST(Comm, AnySourceReceivesFromWhoeverSent) {
  CommBox box(4);
  const std::uint64_t v = 0xFACE;
  ASSERT_TRUE(ok(box.comm->stage(2, 0, test::bytes_of(v))));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(2, 0, 5, 0, 8)));
  MpStatus st;
  ASSERT_TRUE(ok(box.comm->recv(0, kAnySource, 5, 0, 64, &st)));
  EXPECT_EQ(st.source, 2u);
  std::uint64_t got = 0;
  ASSERT_TRUE(
      ok(box.comm->fetch(0, 0, std::as_writable_bytes(std::span{&got, 1}))));
  EXPECT_EQ(got, 0xFACEu);
}

TEST(Comm, AnyTagMatchesFirstArrival) {
  CommBox box;
  const std::uint64_t v = 77;
  ASSERT_TRUE(ok(box.comm->stage(0, 0, test::bytes_of(v))));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, 42, 0, 8)));
  MpStatus st;
  ASSERT_TRUE(ok(box.comm->recv(1, 0, kAnyTag, 0, 64, &st)));
  EXPECT_EQ(st.tag, 42);
}

TEST(Comm, PostedAnySourceMatchesLaterArrival) {
  CommBox box(3);
  const ReqId r = box.comm->irecv(0, kAnySource, kAnyTag, 0, 64);
  EXPECT_FALSE(box.comm->test(r));
  const std::uint64_t v = 31337;
  ASSERT_TRUE(ok(box.comm->stage(1, 0, test::bytes_of(v))));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(1, 0, 8, 0, 8)));
  MpStatus st;
  ASSERT_TRUE(box.comm->wait(r, &st));
  EXPECT_EQ(st.source, 1u);
  EXPECT_EQ(st.tag, 8);
}

TEST(Comm, IprobeSeesUnexpectedWithoutConsuming) {
  CommBox box;
  const std::uint64_t v = 1;
  ASSERT_TRUE(ok(box.comm->stage(0, 0, test::bytes_of(v))));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, 6, 0, 8)));
  MpStatus st;
  EXPECT_TRUE(box.comm->iprobe(1, 0, 6, &st));
  EXPECT_EQ(st.len, 8u);
  EXPECT_TRUE(box.comm->iprobe(1, kAnySource, kAnyTag));
  EXPECT_FALSE(box.comm->iprobe(1, 2, kAnyTag));
  EXPECT_FALSE(box.comm->iprobe(1, 0, 99));
  // Still receivable afterwards.
  ASSERT_TRUE(ok(box.comm->recv(1, 0, 6, 0, 64)));
  EXPECT_FALSE(box.comm->iprobe(1, 0, 6));
}

TEST(Comm, TruncationFailsTheReceive) {
  CommBox box;
  const auto payload = pattern(512, 7);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, 2, 0, 512)));
  EXPECT_EQ(box.comm->recv(1, 0, 2, 0, /*max_len=*/128), KStatus::Again)
      << "truncated receive must not report success";
}

TEST(Comm, PostedQueueMatchesInPostOrder) {
  CommBox box;
  // Two receives, both match (source 0, tag 1); first-posted gets the
  // first message.
  const ReqId r1 = box.comm->irecv(1, 0, 1, /*offset=*/0, 64);
  const ReqId r2 = box.comm->irecv(1, 0, 1, /*offset=*/4096, 64);
  const std::uint64_t a = 0xA;
  const std::uint64_t b = 0xB;
  ASSERT_TRUE(ok(box.comm->stage(0, 0, test::bytes_of(a))));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, 1, 0, 8)));
  ASSERT_TRUE(ok(box.comm->stage(0, 0, test::bytes_of(b))));
  ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, 1, 0, 8)));
  ASSERT_TRUE(box.comm->wait(r1));
  ASSERT_TRUE(box.comm->wait(r2));
  std::uint64_t g1 = 0;
  std::uint64_t g2 = 0;
  ASSERT_TRUE(
      ok(box.comm->fetch(1, 0, std::as_writable_bytes(std::span{&g1, 1}))));
  ASSERT_TRUE(ok(
      box.comm->fetch(1, 4096, std::as_writable_bytes(std::span{&g2, 1}))));
  EXPECT_EQ(g1, 0xAu);
  EXPECT_EQ(g2, 0xBu);
}

TEST(Comm, RendezvousReusesRegistrationCache) {
  CommBox box;
  const auto payload = pattern(64 * 1024, 8);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  for (int i = 0; i < 6; ++i) {
    const ReqId r = box.comm->irecv(1, 0, 4, 0, 64 * 1024);
    const ReqId s = box.comm->isend(0, 1, 4, 0, 64 * 1024);
    ASSERT_TRUE(box.comm->wait(r));
    ASSERT_TRUE(box.comm->wait(s));
  }
  EXPECT_EQ(box.comm->stats().rdma_pulls, 6u);
  // Virtual-time check of amortisation: warm iterations must be cheaper
  // than the cold one (registration is off the path).
}

TEST(Comm, IprobeReportsRendezvousLengthWithoutMovingData) {
  // A parked rendezvous REQ carries only a descriptor; iprobe must still
  // report the full message length (MPI_Probe semantics) without pulling.
  CommBox box;
  const auto payload = pattern(96 * 1024, 21);
  ASSERT_TRUE(ok(box.comm->stage(0, 0, payload)));
  const ReqId s = box.comm->isend(0, 1, 3, 0, 96 * 1024);
  MpStatus st;
  ASSERT_TRUE(box.comm->iprobe(1, 0, 3, &st));
  EXPECT_EQ(st.len, 96u * 1024);
  EXPECT_EQ(box.comm->stats().rdma_pulls, 0u) << "probe must not pull";
  ASSERT_TRUE(ok(box.comm->recv(1, 0, 3, 0, 128 * 1024)));
  ASSERT_TRUE(box.comm->wait(s));
  EXPECT_EQ(box.comm->stats().rdma_pulls, 1u);
}

TEST(Comm, ArenaSlotsAreRecycled) {
  // More unexpected messages than arena slots, consumed in waves: the arena
  // must recycle rather than overflow.
  Comm::Config cfg;
  cfg.unexpected_slots = 4;
  CommBox box(2, cfg);
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t v = wave * 10 + i;
      ASSERT_TRUE(ok(box.comm->stage(0, 0, test::bytes_of(v))));
      ASSERT_TRUE(box.comm->wait(box.comm->isend(0, 1, i, 0, 8)));
    }
    for (int i = 0; i < 4; ++i) {
      MpStatus st;
      ASSERT_TRUE(ok(box.comm->recv(1, 0, i, 0, 64, &st))) << wave << "/" << i;
      std::uint64_t got = 0;
      ASSERT_TRUE(ok(box.comm->fetch(
          1, 0, std::as_writable_bytes(std::span{&got, 1}))));
      ASSERT_EQ(got, static_cast<std::uint64_t>(wave * 10 + i));
    }
  }
}

TEST(Comm, ManyRandomMessagesAllDeliverIntact) {
  CommBox box(3);
  Rng rng(99);
  struct Msg {
    Rank from, to;
    std::int32_t tag;
    std::vector<std::byte> data;
  };
  std::vector<Msg> msgs;
  for (int i = 0; i < 30; ++i) {
    Msg m;
    m.from = static_cast<Rank>(rng.below(3));
    do {
      m.to = static_cast<Rank>(rng.below(3));
    } while (m.to == m.from);
    m.tag = static_cast<std::int32_t>(rng.below(4));
    m.data = pattern(64 + rng.below(2048), 1000 + i);
    msgs.push_back(std::move(m));
  }
  // Send everything first (all land unexpected), then receive in a shuffled
  // order by (source, tag) FIFO.
  for (const auto& m : msgs) {
    ASSERT_TRUE(ok(box.comm->stage(m.from, 0, m.data)));
    ASSERT_TRUE(box.comm->wait(box.comm->isend(
        m.from, m.to, m.tag, 0, static_cast<std::uint32_t>(m.data.size()))));
  }
  // Receive: for each message in order, the earliest unreceived message with
  // the same (from, to, tag) is what FIFO gives us; our emission order IS
  // that order, so receiving in emission order must reproduce the data.
  for (const auto& m : msgs) {
    MpStatus st;
    ASSERT_TRUE(ok(box.comm->recv(m.to, static_cast<std::int32_t>(m.from),
                                  m.tag, 8192, 64 * 1024, &st)));
    ASSERT_EQ(st.len, m.data.size());
    std::vector<std::byte> out(m.data.size());
    ASSERT_TRUE(ok(box.comm->fetch(m.to, 8192, out)));
    ASSERT_EQ(out, m.data);
  }
}

}  // namespace
}  // namespace vialock::mp
