// pagetable_test.cc - two-level page table mechanics.
#include "simkern/pagetable.h"

#include <gtest/gtest.h>

#include <vector>

namespace vialock::simkern {
namespace {

constexpr VAddr P = kPageSize;

TEST(PageTable, WalkWithoutTablesReturnsNull) {
  PageTable pt;
  EXPECT_EQ(pt.walk(0), nullptr);
  EXPECT_EQ(pt.walk(0x1234000), nullptr);
  EXPECT_EQ(pt.second_level_tables(), 0u);
}

TEST(PageTable, EnsureAllocatesSecondLevelOnce) {
  PageTable pt;
  std::uint32_t levels = 0;
  Pte& a = pt.ensure(5 * P, &levels);
  EXPECT_EQ(levels, 1u);
  a.present = true;
  a.pfn = 42;
  Pte& b = pt.ensure(6 * P, &levels);  // same second-level table
  EXPECT_EQ(levels, 0u);
  b.present = true;
  b.pfn = 43;
  EXPECT_EQ(pt.second_level_tables(), 1u);
  EXPECT_EQ(pt.walk(5 * P)->pfn, 42u);
  EXPECT_EQ(pt.walk(6 * P)->pfn, 43u);
}

TEST(PageTable, DistantAddressesUseDistinctTables) {
  PageTable pt;
  (void)pt.ensure(0);
  (void)pt.ensure(0x40000000);  // different PGD slot (1 GB apart)
  EXPECT_EQ(pt.second_level_tables(), 2u);
}

TEST(PageTable, ForEachInVisitsOnlyNonNone) {
  PageTable pt;
  for (VAddr v = 0; v < 16 * P; v += 2 * P) {
    Pte& pte = pt.ensure(v);
    pte.present = true;
    pte.pfn = static_cast<Pfn>(v / P);
  }
  std::vector<VAddr> seen;
  pt.for_each_in(0, 16 * P, [&](VAddr v, Pte&) { seen.push_back(v); });
  ASSERT_EQ(seen.size(), 8u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i * 2 * P);
}

TEST(PageTable, ForEachVisitsSwappedEntries) {
  PageTable pt;
  Pte& pte = pt.ensure(3 * P);
  pte.present = false;
  pte.swap = 7;
  int count = 0;
  pt.for_each_in(0, 8 * P, [&](VAddr, Pte& p) {
    ++count;
    EXPECT_EQ(p.swap, 7u);
  });
  EXPECT_EQ(count, 1);
}

TEST(PageTable, ClearRangeDropsAndReportsEntries) {
  PageTable pt;
  for (VAddr v = 0; v < 8 * P; v += P) {
    Pte& pte = pt.ensure(v);
    pte.present = true;
    pte.pfn = static_cast<Pfn>(v / P);
  }
  std::vector<Pfn> dropped;
  pt.clear_range(2 * P, 5 * P,
                 [&](VAddr, Pte& pte) { dropped.push_back(pte.pfn); });
  EXPECT_EQ(dropped, (std::vector<Pfn>{2, 3, 4}));
  EXPECT_FALSE(pt.walk(3 * P)->present);
  EXPECT_TRUE(pt.walk(1 * P)->present);
  EXPECT_TRUE(pt.walk(5 * P)->present);
}

TEST(PageTable, PteNoneSemantics) {
  Pte pte;
  EXPECT_TRUE(pte.none());
  pte.swap = 3;
  EXPECT_FALSE(pte.none());
  pte.swap = kInvalidSwapSlot;
  pte.present = true;
  EXPECT_FALSE(pte.none());
}

}  // namespace
}  // namespace vialock::simkern
