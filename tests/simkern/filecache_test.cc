// filecache_test.cc - simulated files and the page cache: read/write paths,
// caching, write-back, and reclaim through shrink_mmap.
#include <gtest/gtest.h>

#include <vector>

#include "../test_util.h"

namespace vialock::simkern {
namespace {

using test::KernelBox;
using test::must_mmap;

std::vector<std::byte> seq_bytes(std::size_t n, int bias = 0) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 13 + 7 + bias) & 0xFF);
  return v;
}

struct FileBox : KernelBox {
  FileBox() : KernelBox() {
    pid = kern.create_task("app");
    buf = must_mmap(kern, pid, 16);
    file = kern.create_file(16 * kPageSize);
  }
  Pid pid;
  VAddr buf;
  FileId file;
};

TEST(FileCache, WriteThenReadRoundTrips) {
  FileBox box;
  const auto data = seq_bytes(3 * kPageSize + 123);
  ASSERT_TRUE(ok(box.kern.write_user(box.pid, box.buf, data)));
  ASSERT_TRUE(ok(box.kern.file_write(box.pid, box.file, 100, box.buf,
                                     data.size())));
  std::vector<std::byte> out(data.size());
  const VAddr buf2 = box.buf + 8 * kPageSize;
  ASSERT_TRUE(ok(box.kern.file_read(box.pid, box.file, 100, buf2,
                                    data.size())));
  ASSERT_TRUE(ok(box.kern.read_user(box.pid, buf2, out)));
  EXPECT_EQ(data, out);
}

TEST(FileCache, RepeatedReadsHitTheCache) {
  FileBox box;
  ASSERT_TRUE(ok(box.kern.file_read(box.pid, box.file, 0, box.buf, kPageSize)));
  const auto misses = box.kern.stats().pagecache_misses;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        ok(box.kern.file_read(box.pid, box.file, 0, box.buf, kPageSize)));
  }
  EXPECT_EQ(box.kern.stats().pagecache_misses, misses);
  EXPECT_GE(box.kern.stats().pagecache_hits, 5u);
  EXPECT_EQ(box.kern.page_cache_pages(), 1u);
}

TEST(FileCache, CacheHitIsFasterThanMiss) {
  FileBox box;
  const Nanos t0 = box.clock.now();
  ASSERT_TRUE(ok(box.kern.file_read(box.pid, box.file, 0, box.buf, 64)));
  const Nanos miss_time = box.clock.now() - t0;
  const Nanos t1 = box.clock.now();
  ASSERT_TRUE(ok(box.kern.file_read(box.pid, box.file, 0, box.buf, 64)));
  const Nanos hit_time = box.clock.now() - t1;
  EXPECT_LT(hit_time * 10, miss_time) << "hit must skip the disk entirely";
}

TEST(FileCache, BoundsAreChecked) {
  FileBox box;
  EXPECT_EQ(box.kern.file_read(box.pid, box.file, 16 * kPageSize - 10, box.buf,
                               100),
            KStatus::Inval);
  EXPECT_EQ(box.kern.file_read(box.pid, 999, 0, box.buf, 10), KStatus::NoEnt);
}

TEST(FileCache, ShrinkMmapReclaimsOldCachePages) {
  FileBox box;
  // Populate 8 cache pages.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ok(box.kern.file_read(box.pid, box.file, i * kPageSize,
                                      box.buf, kPageSize)));
  }
  EXPECT_EQ(box.kern.page_cache_pages(), 8u);
  // Two full ageing+reclaim sweeps: first clears PG_referenced, second frees.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (int i = 0; i < 8; ++i) (void)box.kern.try_to_free_pages(0);
  }
  EXPECT_EQ(box.kern.page_cache_pages(), 0u);
  EXPECT_GE(box.kern.stats().pagecache_reclaimed, 8u);
}

TEST(FileCache, DirtyPagesAreWrittenBackOnReclaim) {
  FileBox box;
  const auto data = seq_bytes(kPageSize, /*bias=*/42);
  ASSERT_TRUE(ok(box.kern.write_user(box.pid, box.buf, data)));
  ASSERT_TRUE(
      ok(box.kern.file_write(box.pid, box.file, 2 * kPageSize, box.buf,
                             kPageSize)));
  // Evict the dirty cache page.
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (int i = 0; i < 8; ++i) (void)box.kern.try_to_free_pages(0);
  }
  EXPECT_EQ(box.kern.page_cache_pages(), 0u);
  EXPECT_GE(box.kern.stats().pagecache_writebacks, 1u);
  // Re-read from disk: the data must have survived.
  const VAddr buf2 = box.buf + 8 * kPageSize;
  ASSERT_TRUE(ok(box.kern.file_read(box.pid, box.file, 2 * kPageSize, buf2,
                                    kPageSize)));
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(ok(box.kern.read_user(box.pid, buf2, out)));
  EXPECT_EQ(data, out);
}

TEST(FileCache, SyncFileFlushesDirtyPages) {
  FileBox box;
  const auto data = seq_bytes(kPageSize, 7);
  ASSERT_TRUE(ok(box.kern.write_user(box.pid, box.buf, data)));
  ASSERT_TRUE(ok(box.kern.file_write(box.pid, box.file, 0, box.buf, kPageSize)));
  box.kern.sync_file(box.file);
  EXPECT_GE(box.kern.stats().pagecache_writebacks, 1u);
}

TEST(FileCache, MemoryPressureShrinksTheCacheBeforeSwapping) {
  // The reclaim ordering of section 2.2: the page cache is shrunk first;
  // swapping only starts when that is not enough.
  auto cfg = test::small_config(/*frames=*/256, /*swap_slots=*/2048);
  KernelBox box(cfg);
  const Pid pid = box.kern.create_task("app");
  const VAddr buf = must_mmap(box.kern, pid, 4);
  const FileId file = box.kern.create_file(128 * kPageSize);
  // Fill a good chunk of RAM with cache pages.
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(
        ok(box.kern.file_read(pid, file, i * kPageSize, buf, kPageSize)));
  }
  const auto cached_before = box.kern.page_cache_pages();
  EXPECT_GE(cached_before, 100u);
  // Anonymous memory demand: reclaim should feed on the cache, not swap.
  const VAddr big = must_mmap(box.kern, pid, 120);
  for (int p = 0; p < 120; ++p)
    ASSERT_TRUE(ok(box.kern.touch(pid, big + p * kPageSize, true)));
  EXPECT_LT(box.kern.page_cache_pages(), cached_before);
  EXPECT_EQ(box.kern.stats().pages_swapped_out, 0u)
      << "cache should satisfy the demand before any swapping";
}

}  // namespace
}  // namespace vialock::simkern
