// buddy_test.cc - unit and property tests for the buddy page-frame allocator.
#include "simkern/buddy.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "simkern/page.h"
#include "util/rng.h"

namespace vialock::simkern {
namespace {

TEST(Buddy, ReservedLowFramesAreMarkedAndUnavailable) {
  PhysicalMemory mem(256);
  BuddyAllocator buddy(mem, 16);
  EXPECT_EQ(buddy.total_frames(), 240u);
  EXPECT_EQ(buddy.free_frames(), 240u);
  for (Pfn pfn = 0; pfn < 16; ++pfn) {
    EXPECT_TRUE(mem.page(pfn).reserved());
    EXPECT_EQ(mem.page(pfn).count, 1u);
  }
}

TEST(Buddy, AllocSetsCountAndFreeClears) {
  PhysicalMemory mem(128);
  BuddyAllocator buddy(mem, 0);
  const Pfn pfn = buddy.alloc(0);
  ASSERT_NE(pfn, kInvalidPfn);
  EXPECT_EQ(mem.page(pfn).count, 1u);
  EXPECT_EQ(buddy.free_frames(), 127u);
  mem.page(pfn).count = 0;
  buddy.free(pfn, 0);
  EXPECT_EQ(buddy.free_frames(), 128u);
}

TEST(Buddy, AllocatesDistinctFrames) {
  PhysicalMemory mem(128);
  BuddyAllocator buddy(mem, 0);
  std::set<Pfn> seen;
  for (int i = 0; i < 128; ++i) {
    const Pfn pfn = buddy.alloc(0);
    ASSERT_NE(pfn, kInvalidPfn);
    EXPECT_TRUE(seen.insert(pfn).second) << "duplicate frame " << pfn;
  }
  EXPECT_EQ(buddy.free_frames(), 0u);
  EXPECT_EQ(buddy.alloc(0), kInvalidPfn);
}

TEST(Buddy, HigherOrderAllocationIsAlignedAndContiguous) {
  PhysicalMemory mem(256);
  BuddyAllocator buddy(mem, 0);
  const Pfn pfn = buddy.alloc(4);  // 16 frames
  ASSERT_NE(pfn, kInvalidPfn);
  EXPECT_EQ(pfn % 16, 0u);
  for (Pfn f = pfn; f < pfn + 16; ++f) EXPECT_EQ(mem.page(f).count, 1u);
  EXPECT_EQ(buddy.free_frames(), 240u);
}

TEST(Buddy, CoalescingRestoresMaxOrderBlocks) {
  PhysicalMemory mem(1024);
  BuddyAllocator buddy(mem, 0);
  const std::uint32_t max_before = buddy.free_blocks(BuddyAllocator::kMaxOrder);
  std::vector<Pfn> frames;
  for (int i = 0; i < 1024; ++i) frames.push_back(buddy.alloc(0));
  EXPECT_EQ(buddy.free_frames(), 0u);
  for (const Pfn pfn : frames) {
    mem.page(pfn).count = 0;
    buddy.free(pfn, 0);
  }
  EXPECT_EQ(buddy.free_frames(), 1024u);
  EXPECT_EQ(buddy.free_blocks(BuddyAllocator::kMaxOrder), max_before);
}

TEST(Buddy, ExhaustionReturnsInvalidWithoutCorruption) {
  PhysicalMemory mem(64);
  BuddyAllocator buddy(mem, 0);
  std::vector<Pfn> frames;
  for (;;) {
    const Pfn pfn = buddy.alloc(0);
    if (pfn == kInvalidPfn) break;
    frames.push_back(pfn);
  }
  EXPECT_EQ(frames.size(), 64u);
  // Free half, allocate order-1 blocks again.
  for (std::size_t i = 0; i < frames.size(); i += 2) {
    mem.page(frames[i]).count = 0;
    buddy.free(frames[i], 0);
  }
  EXPECT_EQ(buddy.free_frames(), 32u);
}

/// Property: random alloc/free sequences keep free-frame accounting exact and
/// never hand out an in-use frame.
class BuddyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuddyPropertyTest, RandomAllocFreeKeepsInvariants) {
  PhysicalMemory mem(512);
  BuddyAllocator buddy(mem, 4);
  Rng rng(GetParam());
  struct Block {
    Pfn pfn;
    std::uint32_t order;
  };
  std::vector<Block> live;
  std::uint32_t live_frames = 0;

  for (int step = 0; step < 4000; ++step) {
    if (live.empty() || rng.chance(0.55)) {
      const auto order = static_cast<std::uint32_t>(rng.below(4));
      const Pfn pfn = buddy.alloc(order);
      if (pfn == kInvalidPfn) continue;
      for (Pfn f = pfn; f < pfn + (1U << order); ++f) {
        ASSERT_EQ(mem.page(f).count, 1u) << "frame handed out twice";
      }
      live.push_back({pfn, order});
      live_frames += 1U << order;
    } else {
      const std::size_t i = rng.below(live.size());
      const Block b = live[i];
      live[i] = live.back();
      live.pop_back();
      for (Pfn f = b.pfn; f < b.pfn + (1U << b.order); ++f)
        mem.page(f).count = 0;
      buddy.free(b.pfn, b.order);
      live_frames -= 1U << b.order;
    }
    ASSERT_EQ(buddy.free_frames() + live_frames, buddy.total_frames());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace vialock::simkern
