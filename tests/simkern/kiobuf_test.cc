// kiobuf_test.cc - map_user_kiobuf / unmap_kiobuf: the proposed mechanism's
// kernel half. Nesting, rollback, COW interaction, kiovec I/O locking.
#include <gtest/gtest.h>

#include "../test_util.h"

namespace vialock::simkern {
namespace {

using test::KernelBox;
using test::must_mmap;
using test::peek64;
using test::poke64;

TEST(Kiobuf, MapPinsAndRecordsFrames) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  Kiobuf kb = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, kb, a, 4 * kPageSize)));
  EXPECT_TRUE(kb.mapped);
  ASSERT_EQ(kb.num_pages(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(kb.pfns[i], *box.kern.resolve(pid, a + i * kPageSize));
    EXPECT_EQ(box.kern.phys().page(kb.pfns[i]).pin_count, 1u);
    EXPECT_GE(box.kern.phys().page(kb.pfns[i]).count, 2u);  // PTE + kiobuf
  }
  box.kern.unmap_kiobuf(kb);
  EXPECT_FALSE(kb.mapped);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto pfn = *box.kern.resolve(pid, a + i * kPageSize);
    EXPECT_EQ(box.kern.phys().page(pfn).pin_count, 0u);
    EXPECT_EQ(box.kern.phys().page(pfn).count, 1u);
  }
}

TEST(Kiobuf, UnalignedRangeCoversAllTouchedPages) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  Kiobuf kb = box.kern.alloc_kiovec();
  // 2 bytes short of 3 pages, starting 100 bytes in: spans 3 pages.
  ASSERT_TRUE(ok(
      box.kern.map_user_kiobuf(pid, kb, a + 100, 3 * kPageSize - 102)));
  EXPECT_EQ(kb.num_pages(), 3u);
  EXPECT_EQ(kb.offset, 100u);
  box.kern.unmap_kiobuf(kb);
}

TEST(Kiobuf, NestedMapsStackPins) {
  // Each map carries its own pin: N maps -> pin_count N; unmapping one
  // leaves the others protecting the page. This is the property that makes
  // multiple registration work (unlike mlock).
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  Kiobuf k1 = box.kern.alloc_kiovec();
  Kiobuf k2 = box.kern.alloc_kiovec();
  Kiobuf k3 = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, k1, a, 2 * kPageSize)));
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, k2, a, 2 * kPageSize)));
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, k3, a, kPageSize)));
  EXPECT_EQ(box.kern.phys().page(k1.pfns[0]).pin_count, 3u);
  EXPECT_EQ(box.kern.phys().page(k1.pfns[1]).pin_count, 2u);
  box.kern.unmap_kiobuf(k2);
  EXPECT_EQ(box.kern.phys().page(k1.pfns[0]).pin_count, 2u);
  EXPECT_TRUE(box.kern.phys().page(k1.pfns[0]).pinned());
  box.kern.unmap_kiobuf(k1);
  box.kern.unmap_kiobuf(k3);
  EXPECT_EQ(box.kern.phys().page(k1.pfns[0]).pin_count, 0u);
}

TEST(Kiobuf, MapFaultsPagesIn) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  EXPECT_FALSE(box.kern.resolve(pid, a).has_value());
  Kiobuf kb = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, kb, a, 4 * kPageSize)));
  EXPECT_EQ(box.kern.stats().minor_faults, 4u);
  box.kern.unmap_kiobuf(kb);
}

TEST(Kiobuf, MapBreaksCowBeforePinning) {
  // A COW-shared page must be resolved to a private copy before the NIC
  // learns its address, or the parent would see the child's DMA traffic.
  KernelBox box;
  const Pid parent = box.kern.create_task("p");
  const VAddr a = must_mmap(box.kern, parent, 1);
  ASSERT_TRUE(ok(poke64(box.kern, parent, a, 777)));
  const Pid child = box.kern.fork_task(parent);
  const Pfn shared = *box.kern.resolve(parent, a);
  Kiobuf kb = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(child, kb, a, kPageSize)));
  EXPECT_NE(kb.pfns[0], shared) << "pinned page must be the private copy";
  EXPECT_EQ(*box.kern.resolve(parent, a), shared);
  EXPECT_EQ(peek64(box.kern, child, a), 777u);
  box.kern.unmap_kiobuf(kb);
}

TEST(Kiobuf, MapOverUnmappedRangeFailsAndRollsBack) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  Kiobuf kb = box.kern.alloc_kiovec();
  // Range extends one page past the VMA: must fail, and the first two pages
  // must not stay pinned.
  EXPECT_EQ(box.kern.map_user_kiobuf(pid, kb, a, 3 * kPageSize),
            KStatus::Fault);
  EXPECT_FALSE(kb.mapped);
  ASSERT_TRUE(ok(box.kern.touch(pid, a, true)));
  EXPECT_EQ(box.kern.phys().page(*box.kern.resolve(pid, a)).pin_count, 0u);
  EXPECT_EQ(box.kern.phys().page(*box.kern.resolve(pid, a)).count, 1u);
}

TEST(Kiobuf, ZeroLengthIsInvalid) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  Kiobuf kb = box.kern.alloc_kiovec();
  EXPECT_EQ(box.kern.map_user_kiobuf(pid, kb, 0x1000, 0), KStatus::Inval);
}

TEST(Kiobuf, LockKiovecSetsAndClearsPgLocked) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  Kiobuf kb = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, kb, a, 2 * kPageSize)));
  ASSERT_TRUE(ok(box.kern.lock_kiovec(kb)));
  for (const Pfn pfn : kb.pfns)
    EXPECT_TRUE(box.kern.phys().page(pfn).locked());
  box.kern.unlock_kiovec(kb);
  for (const Pfn pfn : kb.pfns)
    EXPECT_FALSE(box.kern.phys().page(pfn).locked());
  box.kern.unmap_kiobuf(kb);
}

TEST(Kiobuf, LockKiovecRefusesPagesUnderKernelIo) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  Kiobuf kb = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, kb, a, 2 * kPageSize)));
  ASSERT_TRUE(ok(box.kern.start_kernel_io(kb.pfns[1])));
  EXPECT_EQ(box.kern.lock_kiovec(kb), KStatus::Busy);
  // All-or-nothing: page 0 must not have been left locked.
  EXPECT_FALSE(box.kern.phys().page(kb.pfns[0]).locked());
  box.kern.end_kernel_io(kb.pfns[1]);
  EXPECT_TRUE(ok(box.kern.lock_kiovec(kb)));
  box.kern.unmap_kiobuf(kb);  // also unlocks
  EXPECT_FALSE(box.kern.phys().page(kb.pfns[0]).locked());
}

TEST(Kiobuf, UnmapIsIdempotent) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 1);
  Kiobuf kb = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, kb, a, kPageSize)));
  box.kern.unmap_kiobuf(kb);
  box.kern.unmap_kiobuf(kb);  // no-op, no underflow
  ASSERT_TRUE(ok(box.kern.touch(pid, a, true)));
  EXPECT_EQ(box.kern.phys().page(*box.kern.resolve(pid, a)).count, 1u);
}

TEST(Kiobuf, StatsCountMapsAndPins) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 3);
  Kiobuf kb = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, kb, a, 3 * kPageSize)));
  EXPECT_EQ(box.kern.stats().kiobuf_maps, 1u);
  EXPECT_EQ(box.kern.stats().kiobuf_pages_pinned, 3u);
  box.kern.unmap_kiobuf(kb);
}

}  // namespace
}  // namespace vialock::simkern
