// madvise_test.cc - MADV_DONTFORK semantics and its interaction with pinned
// registrations (the fix for the fork-vs-pinned-pages problem).
#include <gtest/gtest.h>

#include "../test_util.h"

namespace vialock::simkern {
namespace {

using test::KernelBox;
using test::must_mmap;
using test::peek64;
using test::poke64;

TEST(MadviseDontFork, ChildDoesNotInheritMarkedVma) {
  KernelBox box;
  const Pid parent = box.kern.create_task("p");
  const VAddr a = must_mmap(box.kern, parent, 2);
  const VAddr b = must_mmap(box.kern, parent, 2);
  ASSERT_TRUE(ok(poke64(box.kern, parent, a, 1)));
  ASSERT_TRUE(ok(poke64(box.kern, parent, b, 2)));
  ASSERT_TRUE(ok(box.kern.sys_madvise_dontfork(parent, a, 2 * kPageSize, true)));
  const Pid child = box.kern.fork_task(parent);
  EXPECT_EQ(box.kern.touch(child, a, false), KStatus::Fault)
      << "DONTFORK region must be absent in the child";
  EXPECT_EQ(peek64(box.kern, child, b), 2u) << "other regions inherited";
}

TEST(MadviseDontFork, DoForkReenablesInheritance) {
  KernelBox box;
  const Pid parent = box.kern.create_task("p");
  const VAddr a = must_mmap(box.kern, parent, 2);
  ASSERT_TRUE(ok(poke64(box.kern, parent, a, 7)));
  ASSERT_TRUE(ok(box.kern.sys_madvise_dontfork(parent, a, 2 * kPageSize, true)));
  ASSERT_TRUE(
      ok(box.kern.sys_madvise_dontfork(parent, a, 2 * kPageSize, false)));
  const Pid child = box.kern.fork_task(parent);
  EXPECT_EQ(peek64(box.kern, child, a), 7u);
}

TEST(MadviseDontFork, PartialRangeSplitsVma) {
  KernelBox box;
  const Pid parent = box.kern.create_task("p");
  const VAddr a = must_mmap(box.kern, parent, 4);
  for (int p = 0; p < 4; ++p)
    ASSERT_TRUE(ok(poke64(box.kern, parent, a + p * kPageSize, 10 + p)));
  ASSERT_TRUE(ok(box.kern.sys_madvise_dontfork(parent, a + kPageSize,
                                               2 * kPageSize, true)));
  const Pid child = box.kern.fork_task(parent);
  EXPECT_EQ(peek64(box.kern, child, a), 10u);
  EXPECT_EQ(box.kern.touch(child, a + kPageSize, false), KStatus::Fault);
  EXPECT_EQ(box.kern.touch(child, a + 2 * kPageSize, false), KStatus::Fault);
  EXPECT_EQ(peek64(box.kern, child, a + 3 * kPageSize), 13u);
}

TEST(MadviseDontFork, OverUnmappedRangeFails) {
  KernelBox box;
  const Pid pid = box.kern.create_task("p");
  EXPECT_EQ(box.kern.sys_madvise_dontfork(pid, 0x5000000, kPageSize, true),
            KStatus::NoMem);
}

TEST(MadviseDontFork, FixesTheForkVsPinnedDmaProblem) {
  // Without DONTFORK, a parent write after fork COW-breaks away from the
  // pinned frame (Integration.ForkAfterRegistrationPinsTheParentCopy). With
  // DONTFORK the frame is never shared, so the parent stays on it.
  KernelBox box;
  const Pid parent = box.kern.create_task("p");
  const VAddr a = must_mmap(box.kern, parent, 1);
  ASSERT_TRUE(ok(poke64(box.kern, parent, a, 100)));
  // Pin as a registration would.
  Kiobuf kb = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(parent, kb, a, kPageSize)));
  const Pfn pinned = kb.pfns[0];
  ASSERT_TRUE(ok(box.kern.sys_madvise_dontfork(parent, a, kPageSize, true)));

  const Pid child = box.kern.fork_task(parent);
  ASSERT_TRUE(ok(poke64(box.kern, parent, a, 200)));
  EXPECT_EQ(*box.kern.resolve(parent, a), pinned)
      << "no COW break: the parent still owns the pinned frame";
  box.kern.exit_task(child);
  box.kern.unmap_kiobuf(kb);
}

}  // namespace
}  // namespace vialock::simkern
