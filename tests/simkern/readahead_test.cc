// readahead_test.cc - swap read-ahead (page_cluster) semantics.
#include <gtest/gtest.h>

#include "../test_util.h"

namespace vialock::simkern {
namespace {

using test::KernelBox;
using test::must_mmap;
using test::peek64;
using test::poke64;

KernelConfig ra_config(std::uint32_t readahead) {
  auto cfg = test::small_config();
  cfg.swap_readahead = readahead;
  return cfg;
}

/// Fill, evict, and return the region address.
VAddr swapped_region(KernelBox& box, Pid pid, int pages) {
  const VAddr a = must_mmap(box.kern, pid, pages);
  for (int p = 0; p < pages; ++p)
    EXPECT_TRUE(ok(poke64(box.kern, pid, a + p * kPageSize, 0xAB00 + p)));
  for (int p = 0; p < pages; ++p)
    box.kern.task(pid).mm.pt.walk(a + p * kPageSize)->accessed = false;
  EXPECT_GE(box.kern.try_to_free_pages(pages), static_cast<std::uint32_t>(pages));
  return a;
}

TEST(Readahead, DisabledByDefault) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = swapped_region(box, pid, 8);
  EXPECT_EQ(peek64(box.kern, pid, a), 0xAB00u);
  EXPECT_EQ(box.kern.stats().readahead_pages, 0u);
  EXPECT_EQ(box.kern.stats().major_faults, 1u);
}

TEST(Readahead, PullsAdjacentSwappedPages) {
  KernelBox box(ra_config(4));
  const Pid pid = box.kern.create_task("t");
  const VAddr a = swapped_region(box, pid, 8);
  EXPECT_EQ(peek64(box.kern, pid, a), 0xAB00u);
  EXPECT_EQ(box.kern.stats().readahead_pages, 4u);
  // Pages 1..4 are present now; touching them faults no more.
  const auto majors = box.kern.stats().major_faults;
  EXPECT_EQ(peek64(box.kern, pid, a + kPageSize), 0xAB01u);
  EXPECT_EQ(peek64(box.kern, pid, a + 4 * kPageSize), 0xAB04u);
  EXPECT_EQ(box.kern.stats().major_faults, majors);
  // Page 5 was beyond the window: real fault.
  EXPECT_EQ(peek64(box.kern, pid, a + 5 * kPageSize), 0xAB05u);
  EXPECT_EQ(box.kern.stats().major_faults, majors + 1);
}

TEST(Readahead, StopsAtVmaBoundary) {
  KernelBox box(ra_config(16));
  const Pid pid = box.kern.create_task("t");
  const VAddr a = swapped_region(box, pid, 4);  // only 4 pages in the VMA
  EXPECT_EQ(peek64(box.kern, pid, a), 0xAB00u);
  EXPECT_EQ(box.kern.stats().readahead_pages, 3u);
}

TEST(Readahead, StopsAtNonSwappedPage) {
  KernelBox box(ra_config(8));
  const Pid pid = box.kern.create_task("t");
  const VAddr a = swapped_region(box, pid, 8);
  // Pin page 3 resident (mlock) to create a present-page boundary, then
  // re-evict the rest of the read-ahead window.
  ASSERT_TRUE(ok(box.kern.do_mlock(pid, a + 3 * kPageSize, kPageSize, true)));
  for (int p = 4; p < 8; ++p) {
    auto* pte = box.kern.task(pid).mm.pt.walk(a + p * kPageSize);
    if (pte && pte->present) pte->accessed = false;
  }
  (void)box.kern.try_to_free_pages(8);
  ASSERT_TRUE(box.kern.resolve(pid, a + 3 * kPageSize).has_value());
  const auto ra_before = box.kern.stats().readahead_pages;
  EXPECT_EQ(peek64(box.kern, pid, a), 0xAB00u);
  EXPECT_EQ(box.kern.stats().readahead_pages, ra_before + 2)
      << "read-ahead covers pages 1-2 and stops at present page 3";
}

TEST(Readahead, SpeculativePagesRemainEvictable) {
  KernelBox box(ra_config(4));
  const Pid pid = box.kern.create_task("t");
  const VAddr a = swapped_region(box, pid, 8);
  EXPECT_EQ(peek64(box.kern, pid, a), 0xAB00u);
  // Speculative pages carry accessed=false: the next reclaim may take them
  // immediately (no round of grace).
  const auto rss_before = box.kern.task(pid).mm.rss;
  (void)box.kern.try_to_free_pages(4);
  EXPECT_LT(box.kern.task(pid).mm.rss, rss_before);
}

TEST(Readahead, SequentialRecoveryIsCheaperWithReadahead) {
  auto recovery_time = [](std::uint32_t ra) {
    KernelBox box(ra_config(ra));
    const Pid pid = box.kern.create_task("t");
    const VAddr a = swapped_region(box, pid, 32);
    const Nanos t0 = box.clock.now();
    for (int p = 0; p < 32; ++p)
      EXPECT_EQ(peek64(box.kern, pid, a + p * kPageSize),
                0xAB00u + static_cast<std::uint64_t>(p));
    return box.clock.now() - t0;
  };
  const Nanos without = recovery_time(0);
  const Nanos with = recovery_time(8);
  EXPECT_LT(with * 3, without)
      << "read-ahead amortises the seek across the cluster";
}

TEST(Readahead, WriteAfterReadaheadRegainsWriteAccess) {
  KernelBox box(ra_config(4));
  const Pid pid = box.kern.create_task("t");
  const VAddr a = swapped_region(box, pid, 4);
  EXPECT_EQ(peek64(box.kern, pid, a), 0xAB00u);
  // Page 1 came in read-only (speculative); a write must still succeed.
  ASSERT_TRUE(ok(poke64(box.kern, pid, a + kPageSize, 0x9999)));
  EXPECT_EQ(peek64(box.kern, pid, a + kPageSize), 0x9999u);
}

}  // namespace
}  // namespace vialock::simkern
