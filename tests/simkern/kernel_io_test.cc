// kernel_io_test.cc - kernel I/O page locking and the hazard detectors used
// by experiment E7 (the Giganet flag-clobbering analysis).
#include <gtest/gtest.h>

#include "../test_util.h"

namespace vialock::simkern {
namespace {

using test::KernelBox;
using test::must_mmap;

TEST(KernelIo, StartSetsLockedEndClears) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 1);
  ASSERT_TRUE(ok(box.kern.touch(pid, a, true)));
  const Pfn pfn = *box.kern.resolve(pid, a);
  ASSERT_TRUE(ok(box.kern.start_kernel_io(pfn)));
  EXPECT_TRUE(box.kern.phys().page(pfn).locked());
  box.kern.end_kernel_io(pfn);
  EXPECT_FALSE(box.kern.phys().page(pfn).locked());
  EXPECT_EQ(box.kern.stats().io_lock_clobbered, 0u);
}

TEST(KernelIo, DoubleStartIsBusy) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 1);
  ASSERT_TRUE(ok(box.kern.touch(pid, a, true)));
  const Pfn pfn = *box.kern.resolve(pid, a);
  ASSERT_TRUE(ok(box.kern.start_kernel_io(pfn)));
  EXPECT_EQ(box.kern.start_kernel_io(pfn), KStatus::Busy);
  box.kern.end_kernel_io(pfn);
}

TEST(KernelIo, ClobberedFlagIsDetected) {
  // Model of the Giganet deregistration bug: a driver clears PG_locked while
  // kernel I/O is in flight.
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 1);
  ASSERT_TRUE(ok(box.kern.touch(pid, a, true)));
  const Pfn pfn = *box.kern.resolve(pid, a);
  ASSERT_TRUE(ok(box.kern.start_kernel_io(pfn)));
  box.kern.phys().page(pfn).flags &= ~PageFlag::Locked;  // the rogue driver
  box.kern.end_kernel_io(pfn);
  EXPECT_EQ(box.kern.stats().io_lock_clobbered, 1u);
}

TEST(KernelIo, PageStolenDuringIoIsDetected) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 1);
  ASSERT_TRUE(ok(box.kern.touch(pid, a, true)));
  const Pfn pfn = *box.kern.resolve(pid, a);
  ASSERT_TRUE(ok(box.kern.start_kernel_io(pfn)));
  // Rogue driver strips the lock; reclaim then evicts the frame mid-I/O.
  box.kern.phys().page(pfn).flags &= ~PageFlag::Locked;
  box.kern.task(pid).mm.pt.walk(a)->accessed = false;
  ASSERT_GE(box.kern.try_to_free_pages(1), 1u);
  box.kern.end_kernel_io(pfn);
  EXPECT_EQ(box.kern.stats().io_page_stolen, 1u);
  EXPECT_EQ(box.kern.stats().io_lock_clobbered, 1u);
}

TEST(KernelIo, EndWithoutStartIsIgnored) {
  KernelBox box;
  box.kern.end_kernel_io(42);
  EXPECT_EQ(box.kern.stats().io_lock_clobbered, 0u);
}

}  // namespace
}  // namespace vialock::simkern
