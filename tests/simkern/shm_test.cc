// shm_test.cc - System-V-style shared memory: cross-process visibility,
// lazy allocation, reference management, reclaim exemption.
#include <gtest/gtest.h>

#include "../test_util.h"

namespace vialock::simkern {
namespace {

using test::KernelBox;
using test::peek64;
using test::poke64;

TEST(Shm, TwoProcessesSeeEachOthersWrites) {
  KernelBox box;
  const Pid a = box.kern.create_task("a");
  const Pid b = box.kern.create_task("b");
  const ShmId seg = box.kern.shm_create(4 * kPageSize);
  ASSERT_NE(seg, kInvalidShm);
  const auto va = box.kern.shm_attach(a, seg);
  const auto vb = box.kern.shm_attach(b, seg);
  ASSERT_TRUE(va && vb);
  ASSERT_TRUE(ok(poke64(box.kern, a, *va + 100, 0x5EED)));
  EXPECT_EQ(peek64(box.kern, b, *vb + 100), 0x5EEDu);
  ASSERT_TRUE(ok(poke64(box.kern, b, *vb + kPageSize, 0xF00D)));
  EXPECT_EQ(peek64(box.kern, a, *va + kPageSize), 0xF00Du);
  // Same physical frame behind both mappings.
  EXPECT_EQ(*box.kern.resolve(a, *va), *box.kern.resolve(b, *vb));
}

TEST(Shm, FramesAllocateLazilyPerPage) {
  KernelBox box;
  const Pid a = box.kern.create_task("a");
  const ShmId seg = box.kern.shm_create(8 * kPageSize);
  const std::uint32_t free_before = box.kern.free_frames();
  const auto va = box.kern.shm_attach(a, seg);
  ASSERT_TRUE(va.has_value());
  EXPECT_EQ(box.kern.free_frames(), free_before) << "attach allocates nothing";
  ASSERT_TRUE(ok(box.kern.touch(a, *va, true)));
  EXPECT_EQ(box.kern.free_frames(), free_before - 1);
}

TEST(Shm, DetachKeepsDataForOtherAttachers) {
  KernelBox box;
  const Pid a = box.kern.create_task("a");
  const Pid b = box.kern.create_task("b");
  const ShmId seg = box.kern.shm_create(kPageSize);
  const auto va = box.kern.shm_attach(a, seg);
  const auto vb = box.kern.shm_attach(b, seg);
  ASSERT_TRUE(va && vb);
  ASSERT_TRUE(ok(poke64(box.kern, a, *va, 42)));
  ASSERT_TRUE(ok(box.kern.sys_munmap(a, *va, kPageSize)));  // a detaches
  EXPECT_EQ(peek64(box.kern, b, *vb), 42u);
}

TEST(Shm, DestroyReleasesFramesOnceUnmapped) {
  KernelBox box;
  const std::uint32_t free_at_start = box.kern.free_frames();
  const Pid a = box.kern.create_task("a");
  const ShmId seg = box.kern.shm_create(4 * kPageSize);
  const auto va = box.kern.shm_attach(a, seg);
  ASSERT_TRUE(va.has_value());
  for (int p = 0; p < 4; ++p)
    ASSERT_TRUE(ok(box.kern.touch(a, *va + p * kPageSize, true)));
  ASSERT_TRUE(ok(box.kern.sys_munmap(a, *va, 4 * kPageSize)));
  ASSERT_TRUE(ok(box.kern.shm_destroy(seg)));
  EXPECT_EQ(box.kern.free_frames(), free_at_start);
  EXPECT_EQ(box.kern.shm_destroy(seg), KStatus::NoEnt) << "double destroy";
  EXPECT_FALSE(box.kern.shm_attach(a, seg).has_value()) << "attach after rm";
}

TEST(Shm, SharedPagesExemptFromSwapping) {
  KernelBox box;
  const Pid a = box.kern.create_task("a");
  const ShmId seg = box.kern.shm_create(4 * kPageSize);
  const auto va = box.kern.shm_attach(a, seg);
  ASSERT_TRUE(va.has_value());
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(ok(box.kern.touch(a, *va + p * kPageSize, true)));
    box.kern.task(a).mm.pt.walk(*va + p * kPageSize)->accessed = false;
  }
  EXPECT_EQ(box.kern.try_to_free_pages(4), 0u);
  EXPECT_EQ(box.kern.task(a).mm.rss, 4u);
}

TEST(Shm, ForkChildSharesWithoutCow) {
  KernelBox box;
  const Pid a = box.kern.create_task("a");
  const ShmId seg = box.kern.shm_create(kPageSize);
  const auto va = box.kern.shm_attach(a, seg);
  ASSERT_TRUE(va.has_value());
  ASSERT_TRUE(ok(poke64(box.kern, a, *va, 7)));
  const Pid child = box.kern.fork_task(a);
  ASSERT_TRUE(ok(poke64(box.kern, child, *va, 8)));  // shared: no COW break
  EXPECT_EQ(peek64(box.kern, a, *va), 8u) << "parent sees the child's write";
  EXPECT_EQ(*box.kern.resolve(a, *va), *box.kern.resolve(child, *va));
}

TEST(Shm, RegistrationOfSharedMemoryPinsTheSharedFrames) {
  // The local "subdevice" case: communication buffers in shm, registered
  // with the NIC - pins must land on the shared frames themselves.
  KernelBox box;
  const Pid a = box.kern.create_task("a");
  const Pid b = box.kern.create_task("b");
  const ShmId seg = box.kern.shm_create(2 * kPageSize);
  const auto va = box.kern.shm_attach(a, seg);
  const auto vb = box.kern.shm_attach(b, seg);
  ASSERT_TRUE(va && vb);
  Kiobuf kb = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(a, kb, *va, 2 * kPageSize)));
  ASSERT_TRUE(ok(box.kern.touch(b, *vb, true)));
  EXPECT_EQ(kb.pfns[0], *box.kern.resolve(b, *vb));
  EXPECT_TRUE(box.kern.phys().page(kb.pfns[0]).pinned());
  box.kern.unmap_kiobuf(kb);
}

TEST(Shm, SplitVmaKeepsSegmentIndexing) {
  // mprotect a middle page of an shm attachment: the VMA splits into three
  // pieces; faults through the tail pieces must still hit the right segment
  // pages (regression test for shm_pgoff bookkeeping).
  KernelBox box;
  const Pid a = box.kern.create_task("a");
  const Pid b = box.kern.create_task("b");
  const ShmId seg = box.kern.shm_create(4 * kPageSize);
  const auto va = box.kern.shm_attach(a, seg);
  const auto vb = box.kern.shm_attach(b, seg);
  ASSERT_TRUE(va && vb);
  // Split a's attachment: page 1 becomes read-only.
  ASSERT_TRUE(ok(box.kern.sys_mprotect(a, *va + kPageSize, kPageSize,
                                       VmFlag::Read)));
  ASSERT_EQ(box.kern.task(a).mm.vmas.count(), 3u);
  // b writes page 3 first (allocating the segment frame), a reads it through
  // the split tail piece: the contents must line up.
  ASSERT_TRUE(ok(poke64(box.kern, b, *vb + 3 * kPageSize, 0x1DE3)));
  EXPECT_EQ(peek64(box.kern, a, *va + 3 * kPageSize), 0x1DE3u);
  // The read-only middle page still aliases segment page 1.
  ASSERT_TRUE(ok(poke64(box.kern, b, *vb + kPageSize, 0x51D)));
  EXPECT_EQ(peek64(box.kern, a, *va + kPageSize), 0x51Du);
}

TEST(Shm, PartialMunmapKeepsTailIndexing) {
  KernelBox box;
  const Pid a = box.kern.create_task("a");
  const Pid b = box.kern.create_task("b");
  const ShmId seg = box.kern.shm_create(4 * kPageSize);
  const auto va = box.kern.shm_attach(a, seg);
  const auto vb = box.kern.shm_attach(b, seg);
  ASSERT_TRUE(va && vb);
  // a unmaps its first two pages; the remaining piece starts at page 2.
  ASSERT_TRUE(ok(box.kern.sys_munmap(a, *va, 2 * kPageSize)));
  ASSERT_TRUE(ok(poke64(box.kern, b, *vb + 2 * kPageSize, 0x7A11)));
  EXPECT_EQ(peek64(box.kern, a, *va + 2 * kPageSize), 0x7A11u);
}

TEST(Shm, InvalidArguments) {
  KernelBox box;
  const Pid a = box.kern.create_task("a");
  EXPECT_EQ(box.kern.shm_create(0), kInvalidShm);
  EXPECT_FALSE(box.kern.shm_attach(a, 999).has_value());
  EXPECT_EQ(box.kern.shm_destroy(999), KStatus::NoEnt);
}

}  // namespace
}  // namespace vialock::simkern
