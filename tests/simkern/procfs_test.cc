// procfs_test.cc - /proc-style reporting plus waiting-mode completion cost.
#include "simkern/procfs.h"

#include <gtest/gtest.h>

#include "../via/via_util.h"
#include "core/proc_export.h"

namespace vialock::simkern {
namespace {

using test::KernelBox;
using test::must_mmap;

TEST(Procfs, MeminfoReflectsState) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  Kiobuf kb = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, kb, a, 2 * kPageSize)));
  const std::string info = meminfo(box.kern);
  EXPECT_NE(info.find("MemTotal: 2048 kB"), std::string::npos) << info;
  EXPECT_NE(info.find("Pinned: 8 kB"), std::string::npos) << info;
  box.kern.unmap_kiobuf(kb);
}

TEST(Procfs, VmstatCountsEvents) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 3);
  for (int p = 0; p < 3; ++p)
    ASSERT_TRUE(ok(box.kern.touch(pid, a + p * kPageSize, true)));
  const std::string stat = vmstat(box.kern);
  EXPECT_NE(stat.find("pgfault_minor 3"), std::string::npos) << stat;
  EXPECT_NE(stat.find("pswpout 0"), std::string::npos);
  EXPECT_NE(stat.find("pressure_callbacks 0"), std::string::npos) << stat;
  EXPECT_NE(stat.find("pressure_pages_released 0"), std::string::npos);
}

TEST(Procfs, AgentAndRegcacheStatusExportCounters) {
  via::AgentStats as;
  as.registrations = 3;
  as.admission_rejects = 2;
  as.lazy_deregs = 1;
  const std::string a = core::agent_status(as);
  EXPECT_NE(a.find("registrations 3\n"), std::string::npos) << a;
  EXPECT_NE(a.find("admission_rejects 2\n"), std::string::npos);
  EXPECT_NE(a.find("lazy_deregs 1\n"), std::string::npos);

  core::RegCacheStats cs;
  cs.hits = 7;
  cs.reclaim_evictions = 4;
  const std::string c = core::regcache_status(cs);
  EXPECT_NE(c.find("hits 7\n"), std::string::npos) << c;
  EXPECT_NE(c.find("reclaim_evictions 4\n"), std::string::npos);
}

TEST(Procfs, TaskStatusShowsFootprint) {
  KernelBox box;
  const Pid pid = box.kern.create_task("worker", Capability::IpcLock);
  const VAddr a = must_mmap(box.kern, pid, 8);
  ASSERT_TRUE(ok(box.kern.sys_mlock(pid, a, 2 * kPageSize)));
  const std::string st = task_status(box.kern, pid);
  EXPECT_NE(st.find("Name: worker"), std::string::npos) << st;
  EXPECT_NE(st.find("VmSize: 32 kB"), std::string::npos) << st;
  EXPECT_NE(st.find("VmRSS: 8 kB"), std::string::npos) << st;
  EXPECT_NE(st.find("VmLck: 8 kB"), std::string::npos) << st;
  EXPECT_NE(st.find("CapIpcLock: yes"), std::string::npos);
  EXPECT_NE(task_status(box.kern, 999).find("no such task"),
            std::string::npos);
}

class WaitModeTest : public test::TwoNodeFixture {};

TEST_F(WaitModeTest, WaitingCompletionChargesInterrupt) {
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 64)));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 64)));
  // Polling harvest of the send...
  const Nanos t0 = cluster->clock().now();
  ASSERT_TRUE(v0->send_done(vi0).has_value());
  const Nanos poll_cost = cluster->clock().now() - t0;
  // ...waiting harvest of the receive.
  const Nanos t1 = cluster->clock().now();
  ASSERT_TRUE(v1->recv_wait(vi1).has_value());
  const Nanos wait_cost = cluster->clock().now() - t1;
  EXPECT_GE(wait_cost, poll_cost + cluster->costs().interrupt_wakeup);
}

TEST_F(WaitModeTest, EmptyWaitChargesNoInterrupt) {
  const Nanos t0 = cluster->clock().now();
  EXPECT_FALSE(v0->send_wait(vi0).has_value());
  EXPECT_LT(cluster->clock().now() - t0, cluster->costs().interrupt_wakeup);
}

}  // namespace
}  // namespace vialock::simkern
