// vmscan_test.cc - page reclaim semantics: exactly the behaviours the paper's
// failure analysis depends on.
#include <gtest/gtest.h>

#include "../test_util.h"

namespace vialock::simkern {
namespace {

using test::KernelBox;
using test::must_mmap;
using test::peek64;
using test::poke64;

/// Make every present page of `pid` in [a, a+pages) cold (clear accessed).
void cool_range(simkern::Kernel& k, Pid pid, VAddr a, int pages) {
  for (int p = 0; p < pages; ++p) {
    Pte* pte = k.task(pid).mm.pt.walk(a + p * kPageSize);
    if (pte && pte->present) pte->accessed = false;
  }
}

/// Scripted PressureHandler: claims to release a fixed page count per call.
struct FakeHandler final : PressureHandler {
  std::uint32_t yield = 0;
  std::uint32_t calls = 0;
  std::uint32_t last_target = 0;
  std::uint32_t on_memory_pressure(std::uint32_t target_pages) override {
    ++calls;
    last_target = target_pages;
    return yield;
  }
};

TEST(Vmscan, PressureHandlerRunsBeforeSwapOut) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 8);
  for (int p = 0; p < 8; ++p)
    ASSERT_TRUE(ok(poke64(box.kern, pid, a + p * kPageSize, 1)));
  cool_range(box.kern, pid, a, 8);
  FakeHandler h;
  h.yield = 3;
  box.kern.add_pressure_handler(&h);
  (void)box.kern.try_to_free_pages(4);
  EXPECT_EQ(h.calls, 1u);
  EXPECT_EQ(h.last_target, 4u) << "page-cache scan freed nothing first";
  EXPECT_EQ(box.kern.stats().pressure_callbacks, 1u);
  EXPECT_EQ(box.kern.stats().pressure_pages_released, 3u);
  box.kern.remove_pressure_handler(&h);
  (void)box.kern.try_to_free_pages(4);
  EXPECT_EQ(h.calls, 1u) << "removed handler is not consulted";
}

TEST(Vmscan, PressureHandlerNotInvokedWhenTargetAlreadyMet) {
  // With a page-cache population large enough, shrink_mmap alone meets the
  // target and the handler must not run.
  KernelBox box;
  FakeHandler h;
  box.kern.add_pressure_handler(&h);
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  ASSERT_TRUE(ok(poke64(box.kern, pid, a, 7)));
  (void)box.kern.try_to_free_pages(0);
  EXPECT_EQ(h.calls, 0u);
  box.kern.remove_pressure_handler(&h);
}

TEST(Vmscan, SwapOutUnmapsColdPagesAndDataSurvives) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 8);
  for (int p = 0; p < 8; ++p)
    ASSERT_TRUE(ok(poke64(box.kern, pid, a + p * kPageSize, 100 + p)));
  cool_range(box.kern, pid, a, 8);
  EXPECT_GE(box.kern.try_to_free_pages(8), 8u);
  EXPECT_EQ(box.kern.task(pid).mm.rss, 0u);
  EXPECT_EQ(box.kern.stats().pages_swapped_out, 8u);
  // Major faults bring the data back intact.
  for (int p = 0; p < 8; ++p)
    EXPECT_EQ(peek64(box.kern, pid, a + p * kPageSize),
              static_cast<std::uint64_t>(100 + p));
  EXPECT_EQ(box.kern.stats().major_faults, 8u);
}

TEST(Vmscan, AccessedPagesGetOneRoundOfGrace) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  for (int p = 0; p < 4; ++p)
    ASSERT_TRUE(ok(box.kern.touch(pid, a + p * kPageSize, true)));
  // All pages hot: first reclaim pass only ages them.
  EXPECT_EQ(box.kern.try_to_free_pages(4), 0u);
  EXPECT_EQ(box.kern.stats().swap_skip_referenced, 4u);
  EXPECT_EQ(box.kern.task(pid).mm.rss, 4u);
  // Second pass evicts.
  EXPECT_GE(box.kern.try_to_free_pages(4), 4u);
  EXPECT_EQ(box.kern.task(pid).mm.rss, 0u);
}

TEST(Vmscan, SwapInAllocatesADifferentFrame) {
  // The core of the paper's section 3.1: the swapped-in page "cannot be one
  // of the pages formerly mapped ... since the kernel still regards them
  // used" - here even an unpinned page lands in a new frame because the old
  // one returned to the buddy and reclaim-order changed the free lists.
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 1);
  ASSERT_TRUE(ok(poke64(box.kern, pid, a, 5)));
  const auto pfn_before = box.kern.resolve(pid, a);
  ASSERT_TRUE(pfn_before.has_value());
  // Hold an extra reference, as a broken driver would.
  box.kern.get_page(*pfn_before);
  cool_range(box.kern, pid, a, 1);
  (void)box.kern.try_to_free_pages(1);
  ASSERT_FALSE(box.kern.resolve(pid, a).has_value());  // unmapped
  // The old frame is still in use (count 1 held by "the driver").
  EXPECT_FALSE(box.kern.phys().page(*pfn_before).free());
  EXPECT_EQ(peek64(box.kern, pid, a), 5u);  // fault back in
  const auto pfn_after = box.kern.resolve(pid, a);
  ASSERT_TRUE(pfn_after.has_value());
  EXPECT_NE(*pfn_after, *pfn_before) << "swap-in must use a fresh frame";
  box.kern.put_page(*pfn_before);
}

TEST(Vmscan, ElevatedRefcountDoesNotPreventSwapOut) {
  // The experiment result of section 3.1 in miniature.
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  for (int p = 0; p < 4; ++p)
    ASSERT_TRUE(ok(box.kern.touch(pid, a + p * kPageSize, true)));
  for (int p = 0; p < 4; ++p)
    box.kern.get_page(*box.kern.resolve(pid, a + p * kPageSize));
  cool_range(box.kern, pid, a, 4);
  (void)box.kern.try_to_free_pages(4);
  EXPECT_EQ(box.kern.task(pid).mm.rss, 0u) << "refcount must not protect";
  EXPECT_EQ(box.kern.stats().pages_swapped_out, 4u);
}

TEST(Vmscan, VmLockedVmaIsSkippedEntirely) {
  KernelBox box;
  (void)box.kern.create_task("idle");  // rotor needs somewhere else to look
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  ASSERT_TRUE(ok(box.kern.do_mlock(pid, a, 4 * kPageSize, true)));
  cool_range(box.kern, pid, a, 4);
  EXPECT_EQ(box.kern.try_to_free_pages(4), 0u);
  EXPECT_EQ(box.kern.task(pid).mm.rss, 4u);
  EXPECT_GE(box.kern.stats().swap_skip_vma_locked, 4u);
}

TEST(Vmscan, PgLockedPageIsSkipped) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  for (int p = 0; p < 2; ++p)
    ASSERT_TRUE(ok(box.kern.touch(pid, a + p * kPageSize, true)));
  box.kern.phys().page(*box.kern.resolve(pid, a)).flags |= PageFlag::Locked;
  cool_range(box.kern, pid, a, 2);
  EXPECT_EQ(box.kern.try_to_free_pages(2), 1u);  // only the unlocked page
  EXPECT_EQ(box.kern.task(pid).mm.rss, 1u);
  EXPECT_GE(box.kern.stats().swap_skip_page_locked, 1u);
  EXPECT_TRUE(box.kern.resolve(pid, a).has_value());
  EXPECT_FALSE(box.kern.resolve(pid, a + kPageSize).has_value());
}

TEST(Vmscan, PinnedPageIsSkipped) {
  // The proposed mechanism's contract: pin_count > 0 exempts from reclaim.
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  for (int p = 0; p < 2; ++p)
    ASSERT_TRUE(ok(box.kern.touch(pid, a + p * kPageSize, true)));
  ++box.kern.phys().page(*box.kern.resolve(pid, a)).pin_count;
  cool_range(box.kern, pid, a, 2);
  EXPECT_EQ(box.kern.try_to_free_pages(2), 1u);
  EXPECT_TRUE(box.kern.resolve(pid, a).has_value());
  EXPECT_GE(box.kern.stats().swap_skip_pinned, 1u);
  --box.kern.phys().page(*box.kern.resolve(pid, a)).pin_count;
}

TEST(Vmscan, AllocationTriggersReclaimAtWatermark) {
  auto cfg = test::small_config(/*frames=*/128, /*swap_slots=*/512);
  KernelBox box(cfg);
  const Pid pid = box.kern.create_task("t");
  // Touch more pages than there are frames: reclaim must kick in and swap.
  const VAddr a = must_mmap(box.kern, pid, 200);
  for (int p = 0; p < 200; ++p)
    ASSERT_TRUE(ok(box.kern.touch(pid, a + p * kPageSize, true)));
  EXPECT_GT(box.kern.stats().pages_swapped_out, 0u);
  EXPECT_GT(box.kern.stats().reclaim_runs, 0u);
  EXPECT_EQ(box.kern.stats().oom_failures, 0u);
}

TEST(Vmscan, SwapFullStopsEviction) {
  auto cfg = test::small_config(/*frames=*/128, /*swap_slots=*/16);
  KernelBox box(cfg);
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 300);
  KStatus last = KStatus::Ok;
  int touched = 0;
  for (int p = 0; p < 300; ++p) {
    last = box.kern.touch(pid, a + p * kPageSize, true);
    if (!ok(last)) break;
    ++touched;
  }
  // Eventually allocation fails: frames exhausted, swap full.
  EXPECT_EQ(last, KStatus::NoMem);
  EXPECT_GT(box.kern.stats().oom_failures, 0u);
  EXPECT_LE(box.kern.swap().used_slots(), 16u);
  EXPECT_GT(touched, 100);  // but a good chunk fit before that
}

TEST(Vmscan, ShrinkMmapAgesReferencedPages) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  ASSERT_TRUE(ok(box.kern.touch(pid, a, true)));
  const Pfn pfn = *box.kern.resolve(pid, a);
  EXPECT_TRUE(has(box.kern.phys().page(pfn).flags, PageFlag::Referenced));
  // Enough reclaim passes to sweep the whole page map.
  for (int i = 0; i < 8; ++i) (void)box.kern.try_to_free_pages(0);
  EXPECT_FALSE(has(box.kern.phys().page(pfn).flags, PageFlag::Referenced));
  EXPECT_GT(box.kern.stats().clock_scanned, 0u);
}

TEST(Vmscan, ReclaimRotorVisitsAllTasks) {
  KernelBox box;
  const Pid p1 = box.kern.create_task("a");
  const Pid p2 = box.kern.create_task("b");
  const VAddr a1 = must_mmap(box.kern, p1, 4);
  const VAddr a2 = must_mmap(box.kern, p2, 4);
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(ok(box.kern.touch(p1, a1 + p * kPageSize, true)));
    ASSERT_TRUE(ok(box.kern.touch(p2, a2 + p * kPageSize, true)));
  }
  cool_range(box.kern, p1, a1, 4);
  cool_range(box.kern, p2, a2, 4);
  EXPECT_GE(box.kern.try_to_free_pages(8), 8u);
  EXPECT_EQ(box.kern.task(p1).mm.rss, 0u);
  EXPECT_EQ(box.kern.task(p2).mm.rss, 0u);
}

}  // namespace
}  // namespace vialock::simkern
