// swap_test.cc - swap map slot lifecycle and data round trips.
#include "simkern/swap.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "util/cost_model.h"

namespace vialock::simkern {
namespace {

struct SwapBox {
  Clock clock;
  CostModel costs;
  SwapDevice dev{64, clock, costs};
};

TEST(SwapDevice, AllocatesDistinctSlotsUntilFull) {
  SwapBox box;
  std::array<bool, 64> seen{};
  for (int i = 0; i < 64; ++i) {
    const SwapSlot s = box.dev.alloc();
    ASSERT_NE(s, kInvalidSwapSlot);
    ASSERT_FALSE(seen[s]);
    seen[s] = true;
  }
  EXPECT_EQ(box.dev.alloc(), kInvalidSwapSlot);
  EXPECT_EQ(box.dev.used_slots(), 64u);
}

TEST(SwapDevice, FreeMakesSlotReusable) {
  SwapBox box;
  const SwapSlot s = box.dev.alloc();
  box.dev.free(s);
  EXPECT_EQ(box.dev.used_slots(), 0u);
  // next-fit cursor means we may get a different slot, but capacity returns
  for (int i = 0; i < 64; ++i) ASSERT_NE(box.dev.alloc(), kInvalidSwapSlot);
}

TEST(SwapDevice, NextFitCursorSemanticsPreserved) {
  // The free-slot scan became an ordered set walk (DESIGN.md section 9); the
  // placements must stay exactly the seed's next-fit: scan from the hint,
  // wrap at the end, never restart from zero while slots remain ahead.
  SwapBox box;
  std::array<SwapSlot, 6> s{};
  for (auto& slot : s) slot = box.dev.alloc();
  EXPECT_EQ(s[5], 5u) << "fresh device hands out slots in order";
  box.dev.free(s[1]);
  box.dev.free(s[3]);
  // Hint sits at 6: the next alloc takes 6, not the freed 1 or 3.
  EXPECT_EQ(box.dev.alloc(), 6u);
  // Exhaust the tail; then the cursor wraps to the lowest freed slot.
  for (SwapSlot want = 7; want < 64; ++want)
    ASSERT_EQ(box.dev.alloc(), want);
  EXPECT_EQ(box.dev.alloc(), 1u) << "wrap-around lands on the first hole";
  EXPECT_EQ(box.dev.alloc(), 3u);
  EXPECT_EQ(box.dev.alloc(), kInvalidSwapSlot);
}

TEST(SwapDevice, DupRequiresMultipleFrees) {
  SwapBox box;
  const SwapSlot s = box.dev.alloc();
  box.dev.dup(s);
  EXPECT_EQ(box.dev.refcount(s), 2u);
  box.dev.free(s);
  EXPECT_EQ(box.dev.used_slots(), 1u);
  box.dev.free(s);
  EXPECT_EQ(box.dev.used_slots(), 0u);
}

TEST(SwapDevice, DataRoundTrips) {
  SwapBox box;
  const SwapSlot s = box.dev.alloc();
  std::array<std::byte, kPageSize> out_page{};
  std::array<std::byte, kPageSize> in_page{};
  for (std::size_t i = 0; i < kPageSize; ++i)
    out_page[i] = static_cast<std::byte>(i * 7 + 3);
  EXPECT_TRUE(ok(box.dev.write(s, out_page)));
  EXPECT_TRUE(ok(box.dev.read(s, in_page)));
  EXPECT_EQ(std::memcmp(out_page.data(), in_page.data(), kPageSize), 0);
}

TEST(SwapDevice, IoChargesVirtualDiskTime) {
  SwapBox box;
  const SwapSlot s = box.dev.alloc();
  std::array<std::byte, kPageSize> page{};
  const Nanos before = box.clock.now();
  EXPECT_TRUE(ok(box.dev.write(s, page)));
  const Nanos after = box.clock.now();
  EXPECT_GE(after - before, box.costs.swap_seek);
  EXPECT_EQ(box.dev.total_writes(), 1u);
}

TEST(SwapDevice, SlotsAreIndependent) {
  SwapBox box;
  const SwapSlot a = box.dev.alloc();
  const SwapSlot b = box.dev.alloc();
  std::array<std::byte, kPageSize> pa{};
  std::array<std::byte, kPageSize> pb{};
  pa.fill(std::byte{0xAA});
  pb.fill(std::byte{0xBB});
  EXPECT_TRUE(ok(box.dev.write(a, pa)));
  EXPECT_TRUE(ok(box.dev.write(b, pb)));
  std::array<std::byte, kPageSize> check{};
  EXPECT_TRUE(ok(box.dev.read(a, check)));
  EXPECT_EQ(check[0], std::byte{0xAA});
  EXPECT_TRUE(ok(box.dev.read(b, check)));
  EXPECT_EQ(check[0], std::byte{0xBB});
}

}  // namespace
}  // namespace vialock::simkern
