// mprotect_test.cc - protection changes, device mappings and the kernel
// self-check audit.
#include <gtest/gtest.h>

#include <cstring>

#include "../test_util.h"

namespace vialock::simkern {
namespace {

using test::KernelBox;
using test::must_mmap;
using test::peek64;
using test::poke64;

TEST(Mprotect, DroppingWriteMakesStoresFault) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  ASSERT_TRUE(ok(poke64(box.kern, pid, a, 1)));
  ASSERT_TRUE(ok(box.kern.sys_mprotect(pid, a, 2 * kPageSize, VmFlag::Read)));
  EXPECT_EQ(box.kern.touch(pid, a, /*write=*/true), KStatus::Fault);
  EXPECT_EQ(peek64(box.kern, pid, a), 1u);  // reads still fine
}

TEST(Mprotect, RestoringWriteReenablesStores) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 1);
  ASSERT_TRUE(ok(poke64(box.kern, pid, a, 1)));
  ASSERT_TRUE(ok(box.kern.sys_mprotect(pid, a, kPageSize, VmFlag::Read)));
  ASSERT_TRUE(ok(box.kern.sys_mprotect(pid, a, kPageSize,
                                       VmFlag::Read | VmFlag::Write)));
  EXPECT_TRUE(ok(poke64(box.kern, pid, a, 2)));
  EXPECT_EQ(peek64(box.kern, pid, a), 2u);
}

TEST(Mprotect, PartialRangeOnlyAffectsCoveredPages) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  ASSERT_TRUE(
      ok(box.kern.sys_mprotect(pid, a + kPageSize, kPageSize, VmFlag::Read)));
  EXPECT_TRUE(ok(box.kern.touch(pid, a, true)));
  EXPECT_EQ(box.kern.touch(pid, a + kPageSize, true), KStatus::Fault);
  EXPECT_TRUE(ok(box.kern.touch(pid, a + 2 * kPageSize, true)));
}

TEST(Mprotect, UncoveredRangeIsNoMem) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  EXPECT_EQ(box.kern.sys_mprotect(pid, 0x7000000, kPageSize, VmFlag::Read),
            KStatus::NoMem);
}

TEST(DeviceMap, ReservedFrameMapsAndIsIoProtected) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const auto va = box.kern.map_device_page(
      pid, /*dev_pfn=*/2, VmFlag::Read | VmFlag::Write);
  ASSERT_TRUE(va.has_value());
  EXPECT_EQ(*box.kern.resolve(pid, *va), 2u);
  const auto* vma = box.kern.task(pid).mm.vmas.find(*va);
  EXPECT_TRUE(has(vma->flags, VmFlag::Io));
  // VM_IO mappings are never swapped.
  box.kern.task(pid).mm.pt.walk(*va)->accessed = false;
  (void)box.kern.try_to_free_pages(4);
  EXPECT_TRUE(box.kern.resolve(pid, *va).has_value());
}

TEST(DeviceMap, NonReservedFrameRejected) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 1);
  ASSERT_TRUE(ok(box.kern.touch(pid, a, true)));
  const Pfn normal = *box.kern.resolve(pid, a);
  EXPECT_FALSE(box.kern.map_device_page(pid, normal, VmFlag::Read).has_value());
}

TEST(DeviceMap, WritesReachTheDeviceFrame) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const auto va = box.kern.map_device_page(
      pid, 3, VmFlag::Read | VmFlag::Write);
  ASSERT_TRUE(va.has_value());
  ASSERT_TRUE(ok(poke64(box.kern, pid, *va, 0xD00BE11)));
  // The "device" (here: direct frame inspection) sees the register write.
  std::uint64_t reg = 0;
  std::memcpy(&reg, box.kern.phys().frame(3).data(), 8);
  EXPECT_EQ(reg, 0xD00BE11u);
}

TEST(SelfCheck, CleanKernelReportsNoIssues) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 8);
  for (int p = 0; p < 8; ++p)
    ASSERT_TRUE(ok(box.kern.touch(pid, a + p * kPageSize, true)));
  (void)box.kern.try_to_free_pages(4);
  EXPECT_TRUE(box.kern.self_check().empty());
}

TEST(SelfCheck, DetectsInjectedRssDrift) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  ASSERT_TRUE(ok(box.kern.touch(pid, a, true)));
  ++box.kern.task(pid).mm.rss;  // sabotage
  const auto issues = box.kern.self_check();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("rss drift"), std::string::npos);
  --box.kern.task(pid).mm.rss;
}

TEST(SelfCheck, DetectsPinAccountingDrift) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 1);
  ASSERT_TRUE(ok(box.kern.touch(pid, a, true)));
  ++box.kern.phys().page(*box.kern.resolve(pid, a)).pin_count;  // sabotage
  const auto issues = box.kern.self_check();
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("pin accounting"), std::string::npos);
  --box.kern.phys().page(*box.kern.resolve(pid, a)).pin_count;
}

}  // namespace
}  // namespace vialock::simkern
