// vma_test.cc - VMA set: find/insert/remove, the split/merge machinery that
// do_mlock depends on, and random-operation property checks.
#include "simkern/vma.h"

#include <gtest/gtest.h>

#include "simkern/types.h"
#include "util/rng.h"

namespace vialock::simkern {
namespace {

constexpr VAddr P = kPageSize;

TEST(VmaSet, InsertAndFind) {
  VmaSet set;
  ASSERT_TRUE(set.insert(4 * P, 8 * P, VmFlag::Read));
  EXPECT_EQ(set.find(3 * P), nullptr);
  ASSERT_NE(set.find(4 * P), nullptr);
  ASSERT_NE(set.find(8 * P - 1), nullptr);
  EXPECT_EQ(set.find(8 * P), nullptr);
  EXPECT_EQ(set.find(4 * P)->flags, VmFlag::Read);
}

TEST(VmaSet, OverlappingInsertRejected) {
  VmaSet set;
  ASSERT_TRUE(set.insert(4 * P, 8 * P, VmFlag::Read));
  EXPECT_FALSE(set.insert(7 * P, 9 * P, VmFlag::Read));
  EXPECT_FALSE(set.insert(2 * P, 5 * P, VmFlag::Read));
  EXPECT_FALSE(set.insert(5 * P, 6 * P, VmFlag::Read));
  EXPECT_FALSE(set.insert(2 * P, 12 * P, VmFlag::Read));
  EXPECT_TRUE(set.insert(8 * P, 9 * P, VmFlag::Read));   // abutting is fine
  EXPECT_TRUE(set.insert(2 * P, 4 * P, VmFlag::Read));
}

TEST(VmaSet, CoveredDetectsGaps) {
  VmaSet set;
  ASSERT_TRUE(set.insert(2 * P, 4 * P, VmFlag::Read));
  ASSERT_TRUE(set.insert(4 * P, 6 * P, VmFlag::Write));
  ASSERT_TRUE(set.insert(8 * P, 10 * P, VmFlag::Read));
  EXPECT_TRUE(set.covered(2 * P, 6 * P));
  EXPECT_TRUE(set.covered(3 * P, 5 * P));
  EXPECT_FALSE(set.covered(2 * P, 9 * P));  // hole at [6P, 8P)
  EXPECT_FALSE(set.covered(1 * P, 3 * P));
}

TEST(VmaSet, SetFlagsSplitsAtRangeEdges) {
  VmaSet set;
  ASSERT_TRUE(set.insert(0, 10 * P, VmFlag::Read | VmFlag::Write));
  std::uint32_t ops = 0;
  ASSERT_TRUE(set.set_flags_range(3 * P, 7 * P, VmFlag::Locked, VmFlag::None,
                                  &ops));
  EXPECT_GT(ops, 0u);
  EXPECT_EQ(set.count(), 3u);  // [0,3) [3,7) [7,10)
  EXPECT_FALSE(has(set.find(0 * P)->flags, VmFlag::Locked));
  EXPECT_TRUE(has(set.find(3 * P)->flags, VmFlag::Locked));
  EXPECT_TRUE(has(set.find(6 * P)->flags, VmFlag::Locked));
  EXPECT_FALSE(has(set.find(7 * P)->flags, VmFlag::Locked));
}

TEST(VmaSet, ClearFlagsMergesBackTogether) {
  VmaSet set;
  ASSERT_TRUE(set.insert(0, 10 * P, VmFlag::Read));
  ASSERT_TRUE(set.set_flags_range(3 * P, 7 * P, VmFlag::Locked, VmFlag::None));
  ASSERT_EQ(set.count(), 3u);
  ASSERT_TRUE(set.set_flags_range(3 * P, 7 * P, VmFlag::None, VmFlag::Locked));
  EXPECT_EQ(set.count(), 1u);  // identical flags merge again
  EXPECT_EQ(set.find(5 * P)->start, 0u);
  EXPECT_EQ(set.find(5 * P)->end, 10 * P);
}

TEST(VmaSet, SetFlagsOverUncoveredRangeFails) {
  VmaSet set;
  ASSERT_TRUE(set.insert(0, 4 * P, VmFlag::Read));
  ASSERT_TRUE(set.insert(6 * P, 8 * P, VmFlag::Read));
  EXPECT_FALSE(set.set_flags_range(2 * P, 7 * P, VmFlag::Locked, VmFlag::None));
  // Nothing should have been half-applied to the second VMA.
  EXPECT_FALSE(has(set.find(6 * P)->flags, VmFlag::Locked));
}

TEST(VmaSet, SetFlagsSpanningMultipleVmas) {
  VmaSet set;
  ASSERT_TRUE(set.insert(0, 2 * P, VmFlag::Read));
  ASSERT_TRUE(set.insert(2 * P, 5 * P, VmFlag::Read));
  ASSERT_TRUE(set.insert(5 * P, 9 * P, VmFlag::Read));
  ASSERT_TRUE(set.set_flags_range(1 * P, 8 * P, VmFlag::Locked, VmFlag::None));
  for (VAddr a = 1 * P; a < 8 * P; a += P)
    EXPECT_TRUE(has(set.find(a)->flags, VmFlag::Locked)) << a / P;
  EXPECT_FALSE(has(set.find(0)->flags, VmFlag::Locked));
  EXPECT_FALSE(has(set.find(8 * P)->flags, VmFlag::Locked));
}

TEST(VmaSet, RemoveRangeSplitsEdges) {
  VmaSet set;
  ASSERT_TRUE(set.insert(0, 10 * P, VmFlag::Read));
  set.remove_range(3 * P, 7 * P);
  EXPECT_NE(set.find(2 * P), nullptr);
  EXPECT_EQ(set.find(3 * P), nullptr);
  EXPECT_EQ(set.find(6 * P), nullptr);
  EXPECT_NE(set.find(7 * P), nullptr);
  EXPECT_EQ(set.count(), 2u);
}

TEST(VmaSet, FindFreeRangeSkipsExisting) {
  VmaSet set;
  ASSERT_TRUE(set.insert(4 * P, 8 * P, VmFlag::Read));
  const auto r = set.find_free_range(6 * P, 0, 64 * P);
  ASSERT_TRUE(r.has_value());
  // [0, 4P) is only 4 pages; the first fit is after the existing VMA.
  EXPECT_EQ(*r, 8 * P);
  ASSERT_TRUE(set.insert(*r, *r + 6 * P, VmFlag::Read));
  const auto r2 = set.find_free_range(4 * P, 0, 64 * P);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, 0u);  // the low gap fits 4 pages
}

TEST(VmaSet, FindFreeRangeHonoursUpperBound) {
  VmaSet set;
  ASSERT_TRUE(set.insert(0, 8 * P, VmFlag::Read));
  EXPECT_FALSE(set.find_free_range(4 * P, 0, 10 * P).has_value());
  EXPECT_TRUE(set.find_free_range(2 * P, 0, 10 * P).has_value());
}

TEST(VmaSet, GapIndexFollowsInsertRemove) {
  // find_free_range runs over the gap index (an ExtentMap over the whole
  // address universe); inserts carve gaps, removals restore and coalesce.
  VmaSet set;
  EXPECT_EQ(set.gap_count(), 1u);  // the whole universe
  ASSERT_TRUE(set.insert(4 * P, 8 * P, VmFlag::Read));
  ASSERT_TRUE(set.insert(12 * P, 16 * P, VmFlag::Read));
  EXPECT_EQ(set.gap_count(), 3u);  // below, between, above

  // Unmapping the first VMA merges its range back into the low gap.
  set.remove_range(4 * P, 8 * P);
  EXPECT_EQ(set.gap_count(), 2u);
  const auto r = set.find_free_range(6 * P, 0, 64 * P);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 0u) << "the reopened low gap holds 12 pages";

  // Partial unmap of the middle: the freed slice becomes its own gap.
  set.remove_range(13 * P, 15 * P);
  EXPECT_EQ(set.gap_count(), 3u);
  const auto mid = set.find_free_range(2 * P, 12 * P, 64 * P);
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(*mid, 13 * P);
}

TEST(VmaSet, FindFreeRangeLowerBoundInsideGap) {
  // lo landing inside a gap must clamp the candidate up to lo, exactly like
  // the seed's per-page walk from lo did.
  VmaSet set;
  ASSERT_TRUE(set.insert(8 * P, 10 * P, VmFlag::Read));
  const auto r = set.find_free_range(2 * P, 3 * P, 64 * P);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 3 * P);
  // A request too big for the remainder below the VMA skips past it.
  const auto r2 = set.find_free_range(6 * P, 3 * P, 64 * P);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, 10 * P);
}

/// Property: lock/unlock of random sub-ranges of one big VMA always leaves
/// exactly the locked ranges flagged, and VMA pieces always tile the region.
class VmaLockProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmaLockProperty, RandomLockUnlockTilesExactly) {
  constexpr VAddr kPages = 64;
  VmaSet set;
  ASSERT_TRUE(set.insert(0, kPages * P, VmFlag::Read));
  std::array<int, kPages> locked{};  // model: lock state per page
  Rng rng(GetParam());

  for (int step = 0; step < 500; ++step) {
    const VAddr a = rng.below(kPages);
    const VAddr b = rng.between(a + 1, kPages);
    const bool lock = rng.chance(0.5);
    ASSERT_TRUE(set.set_flags_range(a * P, b * P,
                                    lock ? VmFlag::Locked : VmFlag::None,
                                    lock ? VmFlag::None : VmFlag::Locked));
    for (VAddr pg = a; pg < b; ++pg) locked[pg] = lock ? 1 : 0;

    // Check per-page flag state against the model.
    for (VAddr pg = 0; pg < kPages; ++pg) {
      const Vma* vma = set.find(pg * P);
      ASSERT_NE(vma, nullptr);
      ASSERT_EQ(has(vma->flags, VmFlag::Locked), locked[pg] == 1)
          << "page " << pg << " step " << step;
    }
    // Check tiling: VMAs are sorted, non-overlapping, gap-free over region.
    VAddr expect = 0;
    for (const Vma* vma : set.in_order()) {
      ASSERT_EQ(vma->start, expect);
      ASSERT_GT(vma->end, vma->start);
      expect = vma->end;
    }
    ASSERT_EQ(expect, kPages * P);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmaLockProperty,
                         ::testing::Values(7, 99, 2024, 31415, 65537));

}  // namespace
}  // namespace vialock::simkern
