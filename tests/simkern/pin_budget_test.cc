// pin_budget_test.cc - the kernel's bound on kiobuf-pinned memory: pinned
// pages are invisible to reclaim, so map_user_kiobuf enforces a budget -
// plus the PinGovernor's view of that budget as its default host ceiling.
#include <gtest/gtest.h>

#include <array>

#include "../test_util.h"
#include "pinmgr/pin_governor.h"

namespace vialock::simkern {
namespace {

using test::KernelBox;
using test::must_mmap;

KernelConfig budget_config(std::uint32_t frames, std::uint32_t budget) {
  auto cfg = test::small_config(frames);
  cfg.max_pinned_frames = budget;
  return cfg;
}

TEST(PinBudget, DefaultsToThreeQuartersOfRam) {
  KernelBox box(test::small_config(400));
  EXPECT_EQ(box.kern.pin_budget(), 300u);
}

TEST(PinBudget, MapBeyondBudgetIsRejected) {
  KernelBox box(budget_config(512, 8));
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 16);
  Kiobuf ok_buf = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, ok_buf, a, 8 * kPageSize)));
  EXPECT_EQ(box.kern.pinned_frames(), 8u);
  Kiobuf over = box.kern.alloc_kiovec();
  EXPECT_EQ(box.kern.map_user_kiobuf(pid, over, a + 8 * kPageSize, kPageSize),
            KStatus::Again);
  EXPECT_EQ(box.kern.stats().kiobuf_pin_rejections, 1u);
  box.kern.unmap_kiobuf(ok_buf);
  EXPECT_EQ(box.kern.pinned_frames(), 0u);
  // Budget freed: the map succeeds now.
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, over, a + 8 * kPageSize,
                                          kPageSize)));
  box.kern.unmap_kiobuf(over);
}

TEST(PinBudget, NestedPinsOnSameFrameCountOnce) {
  KernelBox box(budget_config(512, 8));
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 8);
  Kiobuf k1 = box.kern.alloc_kiovec();
  Kiobuf k2 = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, k1, a, 8 * kPageSize)));
  // Same frames again: frame-deduplicated accounting... but the conservative
  // pre-check assumes worst case, so this is (correctly) rejected at budget.
  EXPECT_EQ(box.kern.map_user_kiobuf(pid, k2, a, 8 * kPageSize),
            KStatus::Again);
  box.kern.unmap_kiobuf(k1);
  box.kern.unmap_kiobuf(k2);
}

TEST(PinBudget, NestedPinsDontInflateTheCounter) {
  KernelBox box(budget_config(512, 64));
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  Kiobuf k1 = box.kern.alloc_kiovec();
  Kiobuf k2 = box.kern.alloc_kiovec();
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, k1, a, 4 * kPageSize)));
  ASSERT_TRUE(ok(box.kern.map_user_kiobuf(pid, k2, a, 4 * kPageSize)));
  EXPECT_EQ(box.kern.pinned_frames(), 4u) << "same frames pinned twice";
  box.kern.unmap_kiobuf(k1);
  EXPECT_EQ(box.kern.pinned_frames(), 4u) << "still pinned by k2";
  box.kern.unmap_kiobuf(k2);
  EXPECT_EQ(box.kern.pinned_frames(), 0u);
}

TEST(PinBudget, GovernorDefaultCeilingIsTheKernelPinBudget) {
  KernelBox box(budget_config(512, 8));
  pinmgr::PinGovernor gov(box.kern, {});
  EXPECT_EQ(gov.ceiling(), 8u);
  const Pid pid = box.kern.create_task("t");
  const std::array<Pfn, 8> frames = {100, 101, 102, 103, 104, 105, 106, 107};
  ASSERT_TRUE(ok(gov.charge(pid, frames)));
  const std::array<Pfn, 1> over = {200};
  EXPECT_EQ(gov.charge(pid, over), KStatus::Again)
      << "host ceiling follows the kernel's pin budget";
  EXPECT_EQ(gov.total_charged(), 8u);
  gov.uncharge(pid, frames);
  EXPECT_EQ(gov.total_charged(), 0u);
}

TEST(PinBudget, TenantsSharingFramesAreChargedOnceGlobally) {
  KernelBox box(budget_config(512, 8));
  pinmgr::PinGovernor gov(box.kern, {});
  const Pid p1 = box.kern.create_task("a");
  const Pid p2 = box.kern.create_task("b");
  const std::array<Pfn, 4> frames = {50, 51, 52, 53};
  ASSERT_TRUE(ok(gov.charge(p1, frames)));
  // A second tenant pinning the same (e.g. shared-segment) frames: each
  // tenant is accountable for its pins, but the host counts distinct frames.
  ASSERT_TRUE(ok(gov.charge(p2, frames)));
  EXPECT_EQ(gov.tenant_charged(p1), 4u);
  EXPECT_EQ(gov.tenant_charged(p2), 4u);
  EXPECT_EQ(gov.total_charged(), 4u) << "distinct frames, not sum of tenants";
  gov.uncharge(p1, frames);
  EXPECT_EQ(gov.total_charged(), 4u) << "still held by tenant b";
  gov.uncharge(p2, frames);
  EXPECT_EQ(gov.total_charged(), 0u);
}

TEST(PinBudget, RejectionLeavesNothingPinned) {
  KernelBox box(budget_config(512, 8));
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 16);
  Kiobuf kb = box.kern.alloc_kiovec();
  EXPECT_EQ(box.kern.map_user_kiobuf(pid, kb, a, 16 * kPageSize),
            KStatus::Again);
  EXPECT_EQ(box.kern.pinned_frames(), 0u);
  EXPECT_FALSE(kb.mapped);
}

}  // namespace
}  // namespace vialock::simkern
