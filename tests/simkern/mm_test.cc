// mm_test.cc - demand paging, fault accounting, COW fork, user access paths.
#include <gtest/gtest.h>

#include <vector>

#include "../test_util.h"

namespace vialock::simkern {
namespace {

using test::KernelBox;
using test::must_mmap;
using test::peek64;
using test::poke64;

TEST(Mm, MmapReturnsPageAlignedDisjointRegions) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  const VAddr b = must_mmap(box.kern, pid, 4);
  EXPECT_EQ(a & kPageMask, 0u);
  EXPECT_EQ(b & kPageMask, 0u);
  EXPECT_TRUE(b >= a + 4 * kPageSize || a >= b + 4 * kPageSize);
}

TEST(Mm, DemandZeroMinorFaultOnFirstTouch) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  EXPECT_EQ(box.kern.stats().minor_faults, 0u);
  EXPECT_EQ(peek64(box.kern, pid, a), 0u);  // fresh page reads zero
  EXPECT_EQ(box.kern.stats().minor_faults, 1u);
  EXPECT_EQ(peek64(box.kern, pid, a), 0u);  // second touch: no fault
  EXPECT_EQ(box.kern.stats().minor_faults, 1u);
  EXPECT_EQ(box.kern.task(pid).mm.rss, 1u);
}

TEST(Mm, WriteReadRoundTrip) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  ASSERT_TRUE(ok(poke64(box.kern, pid, a + 100, 0xDEADBEEFCAFEF00DULL)));
  EXPECT_EQ(peek64(box.kern, pid, a + 100), 0xDEADBEEFCAFEF00DULL);
}

TEST(Mm, CrossPageAccessSpansFrames) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  std::vector<std::byte> data(256);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i);
  const VAddr at = a + kPageSize - 128;  // straddles the page boundary
  ASSERT_TRUE(ok(box.kern.write_user(pid, at, data)));
  std::vector<std::byte> check(256);
  ASSERT_TRUE(ok(box.kern.read_user(pid, at, check)));
  EXPECT_EQ(data, check);
  EXPECT_EQ(box.kern.task(pid).mm.rss, 2u);
}

TEST(Mm, AccessOutsideVmaIsFault) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 1);
  EXPECT_EQ(box.kern.touch(pid, a + 2 * kPageSize, false), KStatus::Fault);
  EXPECT_EQ(box.kern.stats().segv, 1u);
}

TEST(Mm, WriteToReadOnlyVmaIsFault) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const auto a = box.kern.sys_mmap_anon(pid, kPageSize, VmFlag::Read);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(box.kern.touch(pid, *a, /*write=*/true), KStatus::Fault);
  EXPECT_TRUE(ok(box.kern.touch(pid, *a, /*write=*/false)));
}

TEST(Mm, MunmapReleasesFrames) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 8);
  for (int p = 0; p < 8; ++p)
    ASSERT_TRUE(ok(box.kern.touch(pid, a + p * kPageSize, true)));
  const std::uint32_t free_before = box.kern.free_frames();
  ASSERT_TRUE(ok(box.kern.sys_munmap(pid, a, 8 * kPageSize)));
  EXPECT_EQ(box.kern.free_frames(), free_before + 8);
  EXPECT_EQ(box.kern.task(pid).mm.rss, 0u);
  EXPECT_EQ(box.kern.touch(pid, a, false), KStatus::Fault);
}

TEST(Mm, ExitTaskReleasesEverything) {
  KernelBox box;
  const std::uint32_t free_at_start = box.kern.free_frames();
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 16);
  for (int p = 0; p < 16; ++p)
    ASSERT_TRUE(ok(box.kern.touch(pid, a + p * kPageSize, true)));
  box.kern.exit_task(pid);
  EXPECT_EQ(box.kern.free_frames(), free_at_start);
  EXPECT_FALSE(box.kern.task_exists(pid));
}

TEST(Mm, CopyUserMovesBytesAndFaultsBothSides) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  ASSERT_TRUE(ok(poke64(box.kern, pid, a, 0x1122334455667788ULL)));
  ASSERT_TRUE(ok(box.kern.copy_user(pid, a + 2 * kPageSize + 17, a, 8)));
  EXPECT_EQ(peek64(box.kern, pid, a + 2 * kPageSize + 17),
            0x1122334455667788ULL);
}

TEST(Mm, CopyUserOverlappingForwardIsMemmoveSafe) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  std::vector<std::byte> data(64);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i);
  ASSERT_TRUE(ok(box.kern.write_user(pid, a, data)));
  // Shift right by 8 within the same page: overlapping ranges.
  ASSERT_TRUE(ok(box.kern.copy_user(pid, a + 8, a, 64)));
  std::vector<std::byte> out(64);
  ASSERT_TRUE(ok(box.kern.read_user(pid, a + 8, out)));
  EXPECT_EQ(out, data);
}

// --- fork / COW -------------------------------------------------------------

TEST(MmFork, ChildSeesParentDataWithoutCopy) {
  KernelBox box;
  const Pid parent = box.kern.create_task("p");
  const VAddr a = must_mmap(box.kern, parent, 2);
  ASSERT_TRUE(ok(poke64(box.kern, parent, a, 0xABCDULL)));
  const std::uint64_t faults_before = box.kern.stats().minor_faults;
  const Pid child = box.kern.fork_task(parent);
  EXPECT_EQ(peek64(box.kern, child, a), 0xABCDULL);
  EXPECT_EQ(box.kern.stats().minor_faults, faults_before);  // shared, no fault
  // Same physical frame while read-shared.
  EXPECT_EQ(box.kern.resolve(parent, a), box.kern.resolve(child, a));
}

TEST(MmFork, WriteBreaksCowAndIsolates) {
  KernelBox box;
  const Pid parent = box.kern.create_task("p");
  const VAddr a = must_mmap(box.kern, parent, 1);
  ASSERT_TRUE(ok(poke64(box.kern, parent, a, 1111)));
  const Pid child = box.kern.fork_task(parent);
  ASSERT_TRUE(ok(poke64(box.kern, child, a, 2222)));
  EXPECT_GE(box.kern.stats().cow_breaks, 1u);
  EXPECT_EQ(peek64(box.kern, parent, a), 1111u);
  EXPECT_EQ(peek64(box.kern, child, a), 2222u);
  EXPECT_NE(box.kern.resolve(parent, a), box.kern.resolve(child, a));
}

TEST(MmFork, SoleOwnerCowReusesFrame) {
  KernelBox box;
  const Pid parent = box.kern.create_task("p");
  const VAddr a = must_mmap(box.kern, parent, 1);
  ASSERT_TRUE(ok(poke64(box.kern, parent, a, 7)));
  const auto frame_before = box.kern.resolve(parent, a);
  const Pid child = box.kern.fork_task(parent);
  box.kern.exit_task(child);  // parent is sole owner again, PTE still COW
  ASSERT_TRUE(ok(poke64(box.kern, parent, a, 8)));
  EXPECT_EQ(box.kern.resolve(parent, a), frame_before);  // reused in place
  EXPECT_EQ(peek64(box.kern, parent, a), 8u);
}

TEST(MmFork, ForkedSwappedPageDuplicatesSlot) {
  KernelBox box;
  const Pid parent = box.kern.create_task("p");
  const VAddr a = must_mmap(box.kern, parent, 1);
  ASSERT_TRUE(ok(poke64(box.kern, parent, a, 42)));
  // Force the page out by direct reclaim.
  box.kern.task(parent).mm.pt.walk(a)->accessed = false;
  ASSERT_GE(box.kern.try_to_free_pages(1), 1u);
  ASSERT_FALSE(box.kern.resolve(parent, a).has_value());
  const std::uint32_t used_before = box.kern.swap().used_slots();
  const Pid child = box.kern.fork_task(parent);
  EXPECT_EQ(box.kern.swap().used_slots(), used_before);  // same slot, +1 ref
  EXPECT_EQ(peek64(box.kern, child, a), 42u);
  EXPECT_EQ(peek64(box.kern, parent, a), 42u);
}

TEST(Mm, StatsCountSyscalls) {
  KernelBox box;
  const Pid pid = box.kern.create_task("t");
  const std::uint64_t before = box.kern.stats().syscalls;
  (void)must_mmap(box.kern, pid, 1);
  EXPECT_EQ(box.kern.stats().syscalls, before + 1);
}

}  // namespace
}  // namespace vialock::simkern
