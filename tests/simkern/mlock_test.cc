// mlock_test.cc - the mlock family: privilege checks, the two work-arounds,
// rlimit accounting, and the non-nesting behaviour of section 3.2.
#include <gtest/gtest.h>

#include "../test_util.h"

namespace vialock::simkern {
namespace {

using test::KernelBox;
using test::must_mmap;

TEST(Mlock, RequiresCapIpcLock) {
  KernelBox box;
  const Pid pid = box.kern.create_task("user");
  const VAddr a = must_mmap(box.kern, pid, 2);
  EXPECT_EQ(box.kern.sys_mlock(pid, a, kPageSize), KStatus::Perm);
  box.kern.cap_raise(pid, Capability::IpcLock);
  EXPECT_TRUE(ok(box.kern.sys_mlock(pid, a, kPageSize)));
}

TEST(Mlock, UserDmaPatchSkipsCapCheck) {
  auto cfg = test::small_config();
  cfg.userdma_patch = true;
  KernelBox box(cfg);
  const Pid pid = box.kern.create_task("user");
  const VAddr a = must_mmap(box.kern, pid, 2);
  EXPECT_TRUE(ok(box.kern.sys_mlock(pid, a, kPageSize)));
}

TEST(Mlock, CapRaiseLowerTrickWorksAndRevokes) {
  KernelBox box;
  const Pid pid = box.kern.create_task("user");
  const VAddr a = must_mmap(box.kern, pid, 4);
  // The driver trick: grant, lock, reclaim.
  box.kern.cap_raise(pid, Capability::IpcLock);
  EXPECT_TRUE(ok(box.kern.sys_mlock(pid, a, 2 * kPageSize)));
  box.kern.cap_lower(pid, Capability::IpcLock);
  // The task is unprivileged again.
  EXPECT_EQ(box.kern.sys_mlock(pid, a + 2 * kPageSize, kPageSize),
            KStatus::Perm);
}

TEST(Mlock, DoMlockIsDriverCallableWithoutPrivilege) {
  KernelBox box;
  const Pid pid = box.kern.create_task("user");
  const VAddr a = must_mmap(box.kern, pid, 2);
  EXPECT_TRUE(ok(box.kern.do_mlock(pid, a, kPageSize, true)));
}

TEST(Mlock, RlimitMemlockEnforced) {
  KernelBox box;
  const Pid pid = box.kern.create_task("user", Capability::IpcLock);
  box.kern.task(pid).rlimit_memlock = 4 * kPageSize;
  const VAddr a = must_mmap(box.kern, pid, 8);
  EXPECT_TRUE(ok(box.kern.sys_mlock(pid, a, 4 * kPageSize)));
  EXPECT_EQ(box.kern.sys_mlock(pid, a + 4 * kPageSize, kPageSize),
            KStatus::NoMem);
  ASSERT_TRUE(ok(box.kern.sys_munlock(pid, a, 4 * kPageSize)));
  EXPECT_TRUE(ok(box.kern.sys_mlock(pid, a + 4 * kPageSize, kPageSize)));
}

TEST(Mlock, MakesPagesPresent) {
  KernelBox box;
  const Pid pid = box.kern.create_task("user", Capability::IpcLock);
  const VAddr a = must_mmap(box.kern, pid, 4);
  EXPECT_FALSE(box.kern.resolve(pid, a).has_value());
  ASSERT_TRUE(ok(box.kern.sys_mlock(pid, a, 4 * kPageSize)));
  for (int p = 0; p < 4; ++p)
    EXPECT_TRUE(box.kern.resolve(pid, a + p * kPageSize).has_value());
  EXPECT_EQ(box.kern.task(pid).mm.locked_pages, 4u);
}

TEST(Mlock, OverUnmappedRangeIsNoMem) {
  KernelBox box;
  const Pid pid = box.kern.create_task("user", Capability::IpcLock);
  const VAddr a = must_mmap(box.kern, pid, 2);
  EXPECT_EQ(box.kern.sys_mlock(pid, a, 8 * kPageSize), KStatus::NoMem);
}

TEST(Mlock, UnalignedRangeIsPageRounded) {
  KernelBox box;
  const Pid pid = box.kern.create_task("user", Capability::IpcLock);
  const VAddr a = must_mmap(box.kern, pid, 4);
  ASSERT_TRUE(ok(box.kern.sys_mlock(pid, a + 100, kPageSize)));  // spans 2 pages
  EXPECT_TRUE(has(box.kern.task(pid).mm.vmas.find(a)->flags, VmFlag::Locked));
  EXPECT_TRUE(
      has(box.kern.task(pid).mm.vmas.find(a + kPageSize)->flags, VmFlag::Locked));
  EXPECT_FALSE(
      has(box.kern.task(pid).mm.vmas.find(a + 2 * kPageSize)->flags,
          VmFlag::Locked));
}

TEST(Mlock, DoesNotNest) {
  // "mlock calls do not nest, i.e. a single unlock operation annuls multiple
  // lock operations on the same address."
  KernelBox box;
  const Pid pid = box.kern.create_task("user", Capability::IpcLock);
  const VAddr a = must_mmap(box.kern, pid, 2);
  ASSERT_TRUE(ok(box.kern.sys_mlock(pid, a, kPageSize)));
  ASSERT_TRUE(ok(box.kern.sys_mlock(pid, a, kPageSize)));  // second lock
  ASSERT_TRUE(ok(box.kern.sys_munlock(pid, a, kPageSize)));  // ONE unlock
  EXPECT_FALSE(has(box.kern.task(pid).mm.vmas.find(a)->flags, VmFlag::Locked))
      << "VM_LOCKED must be gone after a single munlock";
}

TEST(Mlock, PartialUnlockSplitsLockedRegion) {
  KernelBox box;
  const Pid pid = box.kern.create_task("user", Capability::IpcLock);
  const VAddr a = must_mmap(box.kern, pid, 8);
  ASSERT_TRUE(ok(box.kern.sys_mlock(pid, a, 8 * kPageSize)));
  ASSERT_TRUE(ok(box.kern.sys_munlock(pid, a + 2 * kPageSize, 4 * kPageSize)));
  EXPECT_TRUE(has(box.kern.task(pid).mm.vmas.find(a)->flags, VmFlag::Locked));
  EXPECT_FALSE(
      has(box.kern.task(pid).mm.vmas.find(a + 3 * kPageSize)->flags,
          VmFlag::Locked));
  EXPECT_TRUE(
      has(box.kern.task(pid).mm.vmas.find(a + 6 * kPageSize)->flags,
          VmFlag::Locked));
}

TEST(Mlock, SyscallCountersTrack) {
  KernelBox box;
  const Pid pid = box.kern.create_task("user", Capability::IpcLock);
  const VAddr a = must_mmap(box.kern, pid, 1);
  ASSERT_TRUE(ok(box.kern.sys_mlock(pid, a, kPageSize)));
  ASSERT_TRUE(ok(box.kern.sys_munlock(pid, a, kPageSize)));
  EXPECT_EQ(box.kern.stats().mlock_calls, 1u);
  EXPECT_EQ(box.kern.stats().munlock_calls, 1u);
}

}  // namespace
}  // namespace vialock::simkern
