// via_util.h - shared two-node cluster fixture for the VIA-layer tests.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "../test_util.h"
#include "via/node.h"
#include "via/vipl.h"

namespace vialock::test {

inline via::NodeSpec small_node(via::PolicyKind policy = via::PolicyKind::Kiobuf,
                                std::uint32_t frames = 512,
                                std::uint32_t tpt_entries = 256) {
  via::NodeSpec spec;
  spec.kernel = small_config(frames);
  spec.nic.tpt_entries = tpt_entries;
  // Unit tests assert per-page TPT geometry (entry i <-> page i, used() ==
  // pages); pin the classic order-0 layout. Superpage-specific tests build
  // their own NodeSpec with a nonzero order.
  spec.nic.max_superpage_order = 0;
  spec.policy = policy;
  return spec;
}

/// Two nodes, one process each, a connected VI pair and a registered 16-page
/// buffer per side.
class TwoNodeFixture : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kBufPages = 16;

  void build(via::PolicyKind policy = via::PolicyKind::Kiobuf) {
    cluster = std::make_unique<via::Cluster>();
    n0 = cluster->add_node(small_node(policy));
    n1 = cluster->add_node(small_node(policy));
    p0 = cluster->node(n0).kernel().create_task("proc0");
    p1 = cluster->node(n1).kernel().create_task("proc1");
    v0 = std::make_unique<via::Vipl>(cluster->node(n0).agent(), p0);
    v1 = std::make_unique<via::Vipl>(cluster->node(n1).agent(), p1);
    ASSERT_TRUE(ok(v0->open()));
    ASSERT_TRUE(ok(v1->open()));
    buf0 = must_mmap(cluster->node(n0).kernel(), p0, kBufPages);
    buf1 = must_mmap(cluster->node(n1).kernel(), p1, kBufPages);
    ASSERT_TRUE(ok(v0->register_mem(buf0, kBufPages * simkern::kPageSize, mh0)));
    ASSERT_TRUE(ok(v1->register_mem(buf1, kBufPages * simkern::kPageSize, mh1)));
    ASSERT_TRUE(ok(v0->create_vi(vi0)));
    ASSERT_TRUE(ok(v1->create_vi(vi1)));
    ASSERT_NE(vi0, via::kInvalidVi);
    ASSERT_NE(vi1, via::kInvalidVi);
    ASSERT_TRUE(ok(cluster->fabric().connect(n0, vi0, n1, vi1)));
  }

  void SetUp() override { build(); }

  simkern::Kernel& kern0() { return cluster->node(n0).kernel(); }
  simkern::Kernel& kern1() { return cluster->node(n1).kernel(); }

  std::unique_ptr<via::Cluster> cluster;
  via::NodeId n0 = 0, n1 = 0;
  simkern::Pid p0 = 0, p1 = 0;
  std::unique_ptr<via::Vipl> v0, v1;
  simkern::VAddr buf0 = 0, buf1 = 0;
  via::MemHandle mh0, mh1;
  via::ViId vi0 = via::kInvalidVi, vi1 = via::kInvalidVi;
};

}  // namespace vialock::test
