// nic_test.cc - NIC work-queue processing: send/receive matching, RDMA,
// protection enforcement, connection-break semantics.
#include "via/nic.h"

#include <gtest/gtest.h>

#include "via_util.h"

namespace vialock::via {
namespace {

using simkern::kPageSize;
using test::peek64;
using test::poke64;
using test::TwoNodeFixture;

class NicTest : public TwoNodeFixture {};

TEST_F(NicTest, SendRecvMovesDataBetweenProcesses) {
  ASSERT_TRUE(ok(poke64(kern0(), p0, buf0, 0xFEEDFACE12345678ULL)));
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 64, /*cookie=*/9)));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 64, /*cookie=*/5)));

  const auto sc = v0->send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::Done);
  EXPECT_EQ(sc->cookie, 5u);
  EXPECT_EQ(sc->transferred, 64u);

  const auto rc = v1->recv_done(vi1);
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(rc->status, DescStatus::Done);
  EXPECT_EQ(rc->cookie, 9u);
  EXPECT_EQ(rc->transferred, 64u);

  EXPECT_EQ(peek64(kern1(), p1, buf1), 0xFEEDFACE12345678ULL);
}

TEST_F(NicTest, SendWithoutRecvDescriptorBreaksReliableConnection) {
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 64)));
  const auto sc = v0->send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::ErrNoRecvDesc);
  EXPECT_EQ(cluster->node(n1).nic().vi(vi1).state, ViState::Error);
  EXPECT_EQ(cluster->node(n1).nic().stats().no_recv_desc, 1u);
  // Subsequent sends fail with disconnect.
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 64)));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 64)));
  const auto sc2 = v0->send_done(vi0);
  ASSERT_TRUE(sc2.has_value());
  EXPECT_EQ(sc2->status, DescStatus::ErrDisconnected);
}

TEST_F(NicTest, OversizedMessageIsLengthError) {
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 32)));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 64)));
  const auto sc = v0->send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::ErrLength);
  const auto rc = v1->recv_done(vi1);
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(rc->status, DescStatus::ErrLength);
}

TEST_F(NicTest, SendOutsideRegisteredRangeIsProtectionError) {
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 64)));
  // Address past the registered region.
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0 + kBufPages * kPageSize, 64)));
  const auto sc = v0->send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::ErrProtection);
  EXPECT_GE(cluster->node(n0).nic().stats().protection_errors, 1u);
}

TEST_F(NicTest, ForeignHandleIsRejectedByTagCheck) {
  // A second process on node 0 registers its own buffer; using process 0's
  // VI with that handle must fail the protection-tag comparison.
  const auto pid2 = kern0().create_task("intruder");
  via::Vipl v2(cluster->node(n0).agent(), pid2);
  ASSERT_TRUE(ok(v2.open()));
  const auto buf2 = test::must_mmap(kern0(), pid2, 4);
  MemHandle mh2;
  ASSERT_TRUE(ok(v2.register_mem(buf2, 4 * kPageSize, mh2)));

  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 64)));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh2, buf2, 64)));  // wrong tag for vi0
  const auto sc = v0->send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::ErrProtection);
}

TEST_F(NicTest, RdmaWritePlacesDataWithoutRecvDescriptor) {
  ASSERT_TRUE(ok(poke64(kern0(), p0, buf0 + 8, 0xBEEF)));
  ASSERT_TRUE(ok(v0->rdma_write(vi0, mh0, buf0 + 8, 8, mh1, buf1 + 256)));
  const auto sc = v0->send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::Done);
  EXPECT_EQ(peek64(kern1(), p1, buf1 + 256), 0xBEEFu);
  EXPECT_FALSE(v1->recv_done(vi1).has_value());  // one-sided
}

TEST_F(NicTest, RdmaWriteWithImmediateConsumesRecvDescriptor) {
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 64, /*cookie=*/3)));
  ASSERT_TRUE(ok(v0->rdma_write(vi0, mh0, buf0, 16, mh1, buf1 + 512,
                                /*cookie=*/0, /*immediate=*/4242)));
  ASSERT_TRUE(v0->send_done(vi0).has_value());
  const auto rc = v1->recv_done(vi1);
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(rc->status, DescStatus::Done);
  EXPECT_EQ(rc->cookie, 3u);
  EXPECT_TRUE(rc->has_immediate);
  EXPECT_EQ(rc->immediate, 4242u);
}

TEST_F(NicTest, RdmaReadFetchesRemoteData) {
  ASSERT_TRUE(ok(poke64(kern1(), p1, buf1 + 1024, 0xCAFED00DULL)));
  ASSERT_TRUE(ok(v0->rdma_read(vi0, mh0, buf0 + 2048, 8, mh1, buf1 + 1024)));
  const auto sc = v0->send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::Done);
  EXPECT_EQ(peek64(kern0(), p0, buf0 + 2048), 0xCAFED00DULL);
}

TEST_F(NicTest, RdmaToForeignRemoteHandleIsProtectionError) {
  // Remote handle belonging to another process on node 1.
  const auto pid2 = kern1().create_task("other");
  via::Vipl v2(cluster->node(n1).agent(), pid2);
  ASSERT_TRUE(ok(v2.open()));
  const auto buf2 = test::must_mmap(kern1(), pid2, 4);
  MemHandle mh2;
  ASSERT_TRUE(ok(v2.register_mem(buf2, 4 * kPageSize, mh2)));

  ASSERT_TRUE(ok(v0->rdma_write(vi0, mh0, buf0, 16, mh2, buf2)));
  const auto sc = v0->send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::ErrProtection)
      << "segment 4 of figure 3: A must not reach memory C did not export";
}

TEST_F(NicTest, RdmaWriteDisabledAttributeIsEnforced) {
  // Register a region on node 1 with RDMA write disabled; incoming RDMA
  // writes must bounce even with the right tag.
  const auto extra = test::must_mmap(kern1(), p1, 4);
  MemHandle ro;
  ASSERT_TRUE(ok(v1->register_mem(extra, 4 * kPageSize, ro,
                                  KernelAgent::RegisterOptions::rdma_read_only())));
  ASSERT_TRUE(ok(v0->rdma_write(vi0, mh0, buf0, 16, ro, extra)));
  const auto sc = v0->send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::ErrProtection);
  // RDMA read of the same region is still allowed.
  // (Connection broke above - rebuild a fresh fixture state.)
  build();
}

TEST_F(NicTest, MultiPageTransferSpansFrames) {
  // 3 pages + unaligned start: gather/scatter must walk multiple TPT entries.
  std::vector<std::byte> pattern(3 * kPageSize);
  for (std::size_t i = 0; i < pattern.size(); ++i)
    pattern[i] = static_cast<std::byte>((i * 31 + 7) & 0xFF);
  ASSERT_TRUE(ok(kern0().write_user(p0, buf0 + 128, pattern)));
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1 + 64,
                               static_cast<std::uint32_t>(pattern.size()))));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0 + 128,
                               static_cast<std::uint32_t>(pattern.size()))));
  ASSERT_TRUE(v0->send_done(vi0)->done_ok());
  ASSERT_TRUE(v1->recv_done(vi1)->done_ok());
  std::vector<std::byte> out(pattern.size());
  ASSERT_TRUE(ok(kern1().read_user(p1, buf1 + 64, out)));
  EXPECT_EQ(pattern, out);
}

TEST_F(NicTest, TransfersChargeVirtualTime) {
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 4096)));
  const Nanos before = cluster->clock().now();
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 4096)));
  const Nanos elapsed = cluster->clock().now() - before;
  // At minimum: doorbell + two DMA engine startups + the cut-through
  // streaming path.
  const auto& c = cluster->costs();
  EXPECT_GE(elapsed, c.doorbell + 2 * c.dma_startup + c.wire_latency +
                         4096 * c.dma_path_per_byte);
}

TEST_F(NicTest, StatsCountTraffic) {
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 128)));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 128)));
  (void)v0->send_done(vi0);
  (void)v1->recv_done(vi1);
  EXPECT_EQ(cluster->node(n0).nic().stats().sends_ok, 1u);
  EXPECT_EQ(cluster->node(n0).nic().stats().bytes_tx, 128u);
  EXPECT_EQ(cluster->node(n1).nic().stats().recvs_ok, 1u);
  EXPECT_EQ(cluster->node(n1).nic().stats().bytes_rx, 128u);
}

}  // namespace
}  // namespace vialock::via
