// tpt_superpage_test.cc - variable-order superpage TPT entries: the greedy
// frame-run decomposition, mixed-order translation (fast path and binary
// search agreeing), and registration-level geometry - a large registration of
// contiguous frames occupies O(log N) entries instead of N, while order 0
// reproduces the classic one-entry-per-page layout bit for bit.
#include "via/superpage.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "via/kernel_agent.h"
#include "via/tpt.h"
#include "via_util.h"

namespace vialock::via {
namespace {

using simkern::kPageSize;
using simkern::Pfn;
using test::must_mmap;

std::vector<SuperpageRun> runs_of(std::vector<Pfn> pfns,
                                  std::uint8_t max_order) {
  return decompose_superpages(pfns, max_order);
}

TEST(SuperpageDecompose, ContiguousPowerOfTwoIsOneRun) {
  const auto runs = runs_of({100, 101, 102, 103}, /*max_order=*/9);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].page_start, 0u);
  EXPECT_EQ(runs[0].order, 2u);
  EXPECT_EQ(runs[0].pages(), 4u);
}

TEST(SuperpageDecompose, NonPowerOfTwoRunIsCutLargestFirst) {
  // 7 contiguous frames -> 4 + 2 + 1.
  const auto runs = runs_of({10, 11, 12, 13, 14, 15, 16}, 9);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].page_start, 0u);
  EXPECT_EQ(runs[0].order, 2u);
  EXPECT_EQ(runs[1].page_start, 4u);
  EXPECT_EQ(runs[1].order, 1u);
  EXPECT_EQ(runs[2].page_start, 6u);
  EXPECT_EQ(runs[2].order, 0u);
}

TEST(SuperpageDecompose, BrokenRunsSplitAtTheDiscontinuity) {
  // {10,11,12}, {50}, {60,61}: runs never span a pfn gap.
  const auto runs = runs_of({10, 11, 12, 50, 60, 61}, 9);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].page_start, 0u);
  EXPECT_EQ(runs[0].order, 1u);
  EXPECT_EQ(runs[1].page_start, 2u);
  EXPECT_EQ(runs[1].order, 0u);
  EXPECT_EQ(runs[2].page_start, 3u);
  EXPECT_EQ(runs[2].order, 0u);
  EXPECT_EQ(runs[3].page_start, 4u);
  EXPECT_EQ(runs[3].order, 1u);
}

TEST(SuperpageDecompose, MaxOrderCapsEveryRun) {
  const auto runs = runs_of({20, 21, 22, 23, 24, 25, 26, 27,
                             28, 29, 30, 31, 32, 33, 34, 35},
                            /*max_order=*/2);
  ASSERT_EQ(runs.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(runs[i].page_start, i * 4);
    EXPECT_EQ(runs[i].order, 2u);
  }
}

TEST(SuperpageDecompose, OrderZeroReproducesPerPageLayout) {
  const auto runs = runs_of({7, 8, 9, 10}, /*max_order=*/0);
  ASSERT_EQ(runs.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(runs[i].page_start, i);
    EXPECT_EQ(runs[i].order, 0u);
  }
}

TEST(SuperpageDecompose, DescendingFramesNeverMerge) {
  // Descending pfns are not an ascending run: every page is its own entry.
  const auto runs = runs_of({40, 39, 38, 37}, 9);
  ASSERT_EQ(runs.size(), 4u);
  for (const SuperpageRun& r : runs) EXPECT_EQ(r.order, 0u);
}

TEST(SuperpageDecompose, EmptyInputIsEmpty) {
  EXPECT_TRUE(runs_of({}, 9).empty());
}

// --- mixed-order translation on a raw table --------------------------------

TptEntry entry(std::uint32_t page_start, std::uint8_t order, Pfn pfn,
               ProtectionTag tag, bool w = true, bool r = true) {
  TptEntry e;
  e.valid = true;
  e.pfn = pfn;
  e.tag = tag;
  e.rdma_write_enable = w;
  e.rdma_read_enable = r;
  e.page_start = page_start;
  e.order = order;
  return e;
}

TEST(SuperpageTranslate, MixedOrderLayoutResolvesEveryPage) {
  Tpt tpt(16);
  const TptIndex base = tpt.alloc(3);
  ASSERT_NE(base, kInvalidTptIndex);
  // Pages 0-3 back onto 100..103, page 4 onto 300, pages 5-6 onto 400..401.
  tpt.set(base + 0, entry(0, 2, 100, 7));
  tpt.set(base + 1, entry(4, 0, 300, 7));
  tpt.set(base + 2, entry(5, 1, 400, 7));

  const auto at = [&](std::uint64_t page) {
    return tpt.translate(base, 3, page * kPageSize + 123, 7, false, false);
  };
  for (std::uint64_t p = 0; p < 4; ++p) {
    const auto tr = at(p);
    ASSERT_TRUE(tr.has_value()) << "page " << p;
    EXPECT_EQ(tr->pfn, 100 + p);
    EXPECT_EQ(tr->page_offset, 123u);
  }
  ASSERT_TRUE(at(4).has_value());
  EXPECT_EQ(at(4)->pfn, 300u);
  ASSERT_TRUE(at(5).has_value());
  EXPECT_EQ(at(5)->pfn, 400u);
  ASSERT_TRUE(at(6).has_value());
  EXPECT_EQ(at(6)->pfn, 401u);
  // One page past the last run: rejected, not wrapped into a neighbour.
  EXPECT_FALSE(at(7).has_value());
}

TEST(SuperpageTranslate, ChecksApplyToTheCoveringRun) {
  Tpt tpt(16);
  const TptIndex base = tpt.alloc(2);
  ASSERT_NE(base, kInvalidTptIndex);
  tpt.set(base + 0, entry(0, 1, 100, 7, /*w=*/false, /*r=*/true));
  tpt.set(base + 1, entry(2, 0, 500, 7, /*w=*/true, /*r=*/false));

  // Tag mismatch fails anywhere inside a superpage run.
  EXPECT_FALSE(tpt.translate(base, 2, kPageSize, /*tag=*/8, false, false));
  // RDMA attribute checks hit the run covering the page, not its neighbour.
  EXPECT_FALSE(tpt.translate(base, 2, 0, 7, /*rdma_write=*/true, false));
  EXPECT_TRUE(tpt.translate(base, 2, 2 * kPageSize, 7, true, false));
  EXPECT_FALSE(tpt.translate(base, 2, 2 * kPageSize, 7, false, /*read=*/true));
  EXPECT_TRUE(tpt.translate(base, 2, kPageSize, 7, false, true));
}

TEST(SuperpageTranslate, InvalidatedRunRejectsItsWholeSpan) {
  Tpt tpt(8);
  const TptIndex base = tpt.alloc(1);
  ASSERT_NE(base, kInvalidTptIndex);
  tpt.set(base, entry(0, 2, 100, 7));
  TptEntry dead = tpt.get(base);
  dead.valid = false;
  tpt.set(base, dead);
  for (std::uint64_t p = 0; p < 4; ++p)
    EXPECT_FALSE(tpt.translate(base, 1, p * kPageSize, 7, false, false));
}

TEST(SuperpageTranslate, HoleBeforeFirstRunIsRejected) {
  // A registration always starts at page 0, but the table API must not
  // invent a mapping when the first run starts later.
  Tpt tpt(8);
  const TptIndex base = tpt.alloc(1);
  ASSERT_NE(base, kInvalidTptIndex);
  tpt.set(base, entry(2, 1, 100, 7));
  EXPECT_FALSE(tpt.translate(base, 1, 0, 7, false, false));
  EXPECT_FALSE(tpt.translate(base, 1, kPageSize, 7, false, false));
  ASSERT_TRUE(tpt.translate(base, 1, 2 * kPageSize, 7, false, false));
  EXPECT_EQ(tpt.translate(base, 1, 3 * kPageSize, 7, false, false)->pfn, 101u);
}

TEST(SuperpageTranslate, DenseOrderZeroFastPathMatchesSearch) {
  // The order-0 dense layout (entry i covers page i) is the probe fast
  // path; a deliberately shuffled-but-sorted mixed layout forces the
  // binary search. Both must agree with the analytic mapping.
  Tpt dense(16);
  const TptIndex db = dense.alloc(8);
  for (std::uint32_t i = 0; i < 8; ++i)
    dense.set(db + i, entry(i, 0, 200 + i, 3));
  Tpt mixed(16);
  const TptIndex mb = mixed.alloc(2);
  mixed.set(mb + 0, entry(0, 2, 200, 3));
  mixed.set(mb + 1, entry(4, 2, 204, 3));
  for (std::uint64_t p = 0; p < 8; ++p) {
    const auto a = dense.translate(db, 8, p * kPageSize, 3, false, false);
    const auto b = mixed.translate(mb, 2, p * kPageSize, 3, false, false);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->pfn, b->pfn) << "page " << p;
  }
}

TEST(SuperpageTranslate, OutOfRangeArgumentsRejected) {
  Tpt tpt(8);
  const TptIndex base = tpt.alloc(2);
  tpt.set(base + 0, entry(0, 0, 10, 1));
  tpt.set(base + 1, entry(1, 0, 11, 1));
  EXPECT_FALSE(tpt.translate(base, 0, 0, 1, false, false));
  EXPECT_FALSE(tpt.translate(/*base=*/100, 2, 0, 1, false, false));
  EXPECT_FALSE(tpt.translate(base, /*count=*/100, 0, 1, false, false));
}

// --- registration-level geometry -------------------------------------------

struct SuperpageBox {
  explicit SuperpageBox(std::uint8_t max_order = 9)
      : node(
            [max_order] {
              via::NodeSpec spec = test::small_node();
              spec.nic.max_superpage_order = max_order;
              return spec;
            }(),
            clock, costs) {}
  Clock clock;
  CostModel costs;
  Node node;
};

TEST(SuperpageRegistration, LargeRegistrationUsesFewEntries) {
  SuperpageBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  constexpr std::uint32_t kPages = 64;
  const auto a = must_mmap(kern, pid, kPages);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, kPages * kPageSize, tag, mh)));
  EXPECT_EQ(mh.pages, kPages);

  // The entry count must equal the greedy decomposition of the actual frame
  // list - and on a fresh kernel the buddy allocator hands out contiguous
  // ascending runs, so the representation shrinks by at least 4x.
  std::vector<Pfn> pfns;
  for (std::uint32_t i = 0; i < kPages; ++i)
    pfns.push_back(*kern.resolve(pid, a + std::uint64_t{i} * kPageSize));
  const auto runs = decompose_superpages(pfns, 9);
  EXPECT_EQ(mh.tpt_count, runs.size());
  EXPECT_EQ(box.node.nic().tpt().used(), mh.tpt_count);
  EXPECT_LE(mh.tpt_count * 4, kPages) << "superpages must win >= 4x here";
  EXPECT_EQ(agent.stats().tpt_entries_programmed, mh.tpt_count);

  // Translation through the compressed table matches the MMU page for page.
  for (std::uint32_t i = 0; i < kPages; ++i) {
    const auto tr = box.node.nic().tpt().translate(
        mh.tpt_base, mh.tpt_count, std::uint64_t{i} * kPageSize + 7, tag,
        false, false);
    ASSERT_TRUE(tr.has_value()) << "page " << i;
    EXPECT_EQ(tr->pfn, pfns[i]);
    EXPECT_EQ(tr->page_offset, 7u);
  }

  ASSERT_TRUE(ok(agent.deregister_mem(mh)));
  EXPECT_EQ(box.node.nic().tpt().used(), 0u);
  EXPECT_EQ(kern.pinned_frames(), 0u);
  EXPECT_TRUE(kern.self_check().empty());
}

TEST(SuperpageRegistration, OrderZeroNodeKeepsPerPageLayout) {
  SuperpageBox box(/*max_order=*/0);
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 16);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 16 * kPageSize, tag, mh)));
  EXPECT_EQ(mh.tpt_count, 16u);
  EXPECT_EQ(box.node.nic().tpt().used(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    const TptEntry& e = box.node.nic().tpt().get(mh.tpt_base + i);
    EXPECT_EQ(e.page_start, i);
    EXPECT_EQ(e.order, 0u);
  }
  ASSERT_TRUE(ok(agent.deregister_mem(mh)));
}

TEST(SuperpageRegistration, DataPathDeliversThroughSuperpages) {
  // End-to-end send/recv between two superpage-enabled nodes: gather,
  // wire, scatter and the completion path all translate through
  // higher-order entries.
  via::Cluster cluster;
  const auto spec = [] {
    via::NodeSpec s = test::small_node();
    s.nic.max_superpage_order = 9;
    return s;
  }();
  const auto n0 = cluster.add_node(spec);
  const auto n1 = cluster.add_node(spec);
  auto& k0 = cluster.node(n0).kernel();
  auto& k1 = cluster.node(n1).kernel();
  const auto p0 = k0.create_task("a");
  const auto p1 = k1.create_task("b");
  Vipl v0(cluster.node(n0).agent(), p0);
  Vipl v1(cluster.node(n1).agent(), p1);
  ASSERT_TRUE(ok(v0.open()));
  ASSERT_TRUE(ok(v1.open()));
  const auto b0 = must_mmap(k0, p0, 16);
  const auto b1 = must_mmap(k1, p1, 16);
  MemHandle m0, m1;
  ASSERT_TRUE(ok(v0.register_mem(b0, 16 * kPageSize, m0)));
  ASSERT_TRUE(ok(v1.register_mem(b1, 16 * kPageSize, m1)));
  ASSERT_LT(m0.tpt_count, 16u) << "test requires a real superpage layout";
  ViId vi0 = kInvalidVi, vi1 = kInvalidVi;
  ASSERT_TRUE(ok(v0.create_vi(vi0)));
  ASSERT_TRUE(ok(v1.create_vi(vi1)));
  ASSERT_TRUE(ok(cluster.fabric().connect(n0, vi0, n1, vi1)));

  // A payload spanning several pages, crossing superpage-run internals.
  ASSERT_TRUE(ok(test::poke64(k0, p0, b0 + 5 * kPageSize, 0xABCD1234FEED5678ULL)));
  ASSERT_TRUE(ok(v1.post_recv(vi1, m1, b1, 8 * kPageSize, 1)));
  ASSERT_TRUE(ok(v0.post_send(vi0, m0, b0, 8 * kPageSize, 2)));
  const auto sc = v0.send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::Done);
  const auto rc = v1.recv_done(vi1);
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(rc->status, DescStatus::Done);
  EXPECT_EQ(test::peek64(k1, p1, b1 + 5 * kPageSize), 0xABCD1234FEED5678ULL);
}

}  // namespace
}  // namespace vialock::via
