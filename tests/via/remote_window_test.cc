// remote_window_test.cc - SCI-style PIO windows: import/export semantics,
// protection, cost asymmetry, and the stale-frame hazard under a broken
// locking policy.
#include "via/remote_window.h"

#include <gtest/gtest.h>

#include "via_util.h"

namespace vialock::via {
namespace {

using simkern::kPageSize;
using test::peek64;
using test::poke64;
using test::TwoNodeFixture;

class RemoteWindowTest : public TwoNodeFixture {};

TEST_F(RemoteWindowTest, StoreLandsInExportersMemory) {
  auto window = RemoteWindow::import(cluster->fabric(), n0, n1, mh1);
  ASSERT_TRUE(window.has_value());
  const std::uint64_t v = 0x5C1;
  ASSERT_TRUE(ok(window->store(128, test::bytes_of(v))));
  EXPECT_EQ(peek64(kern1(), p1, buf1 + 128), 0x5C1u);
}

TEST_F(RemoteWindowTest, LoadSeesExportersWrites) {
  auto window = RemoteWindow::import(cluster->fabric(), n0, n1, mh1);
  ASSERT_TRUE(window.has_value());
  ASSERT_TRUE(ok(poke64(kern1(), p1, buf1 + kPageSize, 0xEE)));
  std::uint64_t got = 0;
  ASSERT_TRUE(ok(window->load(kPageSize,
                              std::as_writable_bytes(std::span{&got, 1}))));
  EXPECT_EQ(got, 0xEEu);
}

TEST_F(RemoteWindowTest, CrossPageStoreSpansFrames) {
  auto window = RemoteWindow::import(cluster->fabric(), n0, n1, mh1);
  ASSERT_TRUE(window.has_value());
  std::vector<std::byte> data(3 * kPageSize);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>((i * 7) & 0xFF);
  ASSERT_TRUE(ok(window->store(100, data)));
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(ok(kern1().read_user(p1, buf1 + 100, out)));
  EXPECT_EQ(data, out);
}

TEST_F(RemoteWindowTest, BoundsAndStaleHandleChecked) {
  auto window = RemoteWindow::import(cluster->fabric(), n0, n1, mh1);
  ASSERT_TRUE(window.has_value());
  const std::uint64_t v = 1;
  EXPECT_EQ(window->store(kBufPages * kPageSize - 4, test::bytes_of(v)),
            KStatus::Inval);
  // Deregistration invalidates the window's translations: clean fault, no
  // wild PIO.
  ASSERT_TRUE(ok(v1->deregister_mem(mh1)));
  EXPECT_EQ(window->store(0, test::bytes_of(v)), KStatus::Fault);
  mh1 = MemHandle{};
}

TEST_F(RemoteWindowTest, ImportOfDeadHandleFails) {
  ASSERT_TRUE(ok(v1->deregister_mem(mh1)));
  EXPECT_FALSE(RemoteWindow::import(cluster->fabric(), n0, n1, mh1)
                   .has_value());
  mh1 = MemHandle{};
}

TEST_F(RemoteWindowTest, PioStoreIsCheaperThanDescriptorSend) {
  // The family's headline: "for very short transmission sizes a programmed
  // IO over distributed shared memory won't be reached by far" by DMA.
  auto window = RemoteWindow::import(cluster->fabric(), n0, n1, mh1);
  ASSERT_TRUE(window.has_value());
  const std::uint64_t v = 7;

  const Nanos t0 = cluster->clock().now();
  ASSERT_TRUE(ok(window->store(0, test::bytes_of(v))));
  const Nanos pio = cluster->clock().now() - t0;

  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1 + 64, 8)));
  const Nanos t1 = cluster->clock().now();
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 8)));
  ASSERT_TRUE(v0->send_done(vi0)->done_ok());
  const Nanos dma = cluster->clock().now() - t1;

  EXPECT_LT(pio * 3, dma) << "8-byte PIO store must crush the descriptor path";
}

TEST_F(RemoteWindowTest, RemoteReadIsTheExpensiveDirection) {
  auto window = RemoteWindow::import(cluster->fabric(), n0, n1, mh1);
  ASSERT_TRUE(window.has_value());
  const std::uint64_t v = 7;
  std::uint64_t got = 0;
  const Nanos t0 = cluster->clock().now();
  ASSERT_TRUE(ok(window->store(0, test::bytes_of(v))));
  const Nanos wr = cluster->clock().now() - t0;
  const Nanos t1 = cluster->clock().now();
  ASSERT_TRUE(ok(window->load(0, std::as_writable_bytes(std::span{&got, 1}))));
  const Nanos rd = cluster->clock().now() - t1;
  EXPECT_GT(rd, 5 * wr) << "\"a remote read is an expensive operation\"";
}

TEST_F(RemoteWindowTest, StaleFramesUnderBrokenLockingAlsoBreakPio) {
  // Rebuild the fixture on the refcount policy: PIO inherits the DMA
  // engine's hazard because both translate through the same TPT.
  build(PolicyKind::Refcount);
  auto window = RemoteWindow::import(cluster->fabric(), n0, n1, mh1);
  ASSERT_TRUE(window.has_value());
  // Evict + refault the exporter's buffer.
  for (std::uint64_t p = 0; p < kBufPages; ++p) {
    auto* pte = kern1().task(p1).mm.pt.walk(buf1 + p * kPageSize);
    if (pte && pte->present) pte->accessed = false;
  }
  (void)kern1().try_to_free_pages(static_cast<std::uint32_t>(kBufPages));
  ASSERT_TRUE(ok(kern1().touch(p1, buf1, true)));
  // The PIO store "succeeds" into the stale frame; the exporter never sees it.
  const std::uint64_t v = 0xDEAD;
  ASSERT_TRUE(ok(window->store(0, test::bytes_of(v))));
  EXPECT_NE(peek64(kern1(), p1, buf1), 0xDEADu)
      << "stale TPT: PIO written to a frame the process no longer maps";
}

}  // namespace
}  // namespace vialock::via
