// lock_policy_test.cc - per-policy semantics: what each strategy pins, what
// it reports, and how it fails - parameterized where behaviour is shared.
#include "via/lock_policy.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "via/policy_factory.h"

namespace vialock::via {
namespace {

using simkern::kPageSize;
using simkern::PageFlag;
using simkern::Pid;
using simkern::VAddr;
using simkern::VmFlag;
using test::KernelBox;
using test::must_mmap;

// --- shared contract over all policies ---------------------------------------

class AllPoliciesTest : public ::testing::TestWithParam<PolicyKind> {
 protected:
  KernelBox box;
};

TEST_P(AllPoliciesTest, LockFaultsInAndReportsCorrectPfns) {
  auto policy = make_policy(GetParam(), box.kern);
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  LockHandle h;
  ASSERT_TRUE(ok(policy->lock(pid, a, 4 * kPageSize, h)));
  ASSERT_EQ(h.pfns.size(), 4u);
  for (int p = 0; p < 4; ++p)
    EXPECT_EQ(h.pfns[p], *box.kern.resolve(pid, a + p * kPageSize));
  policy->unlock(h);
}

TEST_P(AllPoliciesTest, UnlockRestoresCleanPageState) {
  auto policy = make_policy(GetParam(), box.kern);
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  LockHandle h;
  ASSERT_TRUE(ok(policy->lock(pid, a, 4 * kPageSize, h)));
  policy->unlock(h);
  for (int p = 0; p < 4; ++p) {
    const auto pfn = box.kern.resolve(pid, a + p * kPageSize);
    ASSERT_TRUE(pfn.has_value());
    const auto& pg = box.kern.phys().page(*pfn);
    EXPECT_EQ(pg.count, 1u) << "policy " << to_string(GetParam());
    EXPECT_EQ(pg.pin_count, 0u);
    EXPECT_FALSE(pg.locked());
    EXPECT_FALSE(pg.reserved());
  }
  const auto* vma = box.kern.task(pid).mm.vmas.find(a);
  EXPECT_FALSE(has(vma->flags, VmFlag::Locked));
}

TEST_P(AllPoliciesTest, LockOverUnmappedRangeFails) {
  auto policy = make_policy(GetParam(), box.kern);
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  LockHandle h;
  const KStatus st = policy->lock(pid, a, 4 * kPageSize, h);
  EXPECT_FALSE(ok(st));
  EXPECT_FALSE(h.active);
}

TEST_P(AllPoliciesTest, UnalignedRangeSpansCorrectPageCount) {
  auto policy = make_policy(GetParam(), box.kern);
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  LockHandle h;
  ASSERT_TRUE(ok(policy->lock(pid, a + kPageSize / 2, kPageSize, h)));
  EXPECT_EQ(h.pfns.size(), 2u);  // straddles a boundary
  policy->unlock(h);
}

INSTANTIATE_TEST_SUITE_P(Policies, AllPoliciesTest,
                         ::testing::ValuesIn(kAllPolicies),
                         [](const auto& info) {
                           switch (info.param) {
                             case PolicyKind::Refcount: return "refcount";
                             case PolicyKind::PageFlag: return "pageflag";
                             case PolicyKind::Mlock: return "mlock";
                             case PolicyKind::MlockTracked: return "mlocktrack";
                             case PolicyKind::Kiobuf: return "kiobuf";
                           }
                           return "unknown";
                         });

// --- reliability under reclaim, per policy -------------------------------------

/// Evict everything evictable and report whether the locked range moved.
bool survives_reclaim(KernelBox& box, Pid pid, VAddr a, int pages,
                      const std::vector<simkern::Pfn>& before) {
  for (int p = 0; p < pages; ++p) {
    auto* pte = box.kern.task(pid).mm.pt.walk(a + p * kPageSize);
    if (pte && pte->present) pte->accessed = false;
  }
  (void)box.kern.try_to_free_pages(static_cast<std::uint32_t>(pages));
  for (int p = 0; p < pages; ++p) {
    const auto pfn = box.kern.resolve(pid, a + p * kPageSize);
    if (!pfn || *pfn != before[p]) return false;
  }
  return true;
}

TEST(LockPolicyReliability, RefcountDoesNotSurviveReclaim) {
  KernelBox box;
  RefcountLockPolicy policy(box.kern);
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  LockHandle h;
  ASSERT_TRUE(ok(policy.lock(pid, a, 4 * kPageSize, h)));
  EXPECT_FALSE(survives_reclaim(box, pid, a, 4, h.pfns));
  EXPECT_FALSE(policy.reliable());
  policy.unlock(h);
}

class ReliablePoliciesTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(ReliablePoliciesTest, SurvivesReclaim) {
  KernelBox box;
  auto policy = make_policy(GetParam(), box.kern);
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  LockHandle h;
  ASSERT_TRUE(ok(policy->lock(pid, a, 4 * kPageSize, h)));
  EXPECT_TRUE(survives_reclaim(box, pid, a, 4, h.pfns));
  EXPECT_TRUE(policy->reliable());
  policy->unlock(h);
}

INSTANTIATE_TEST_SUITE_P(Policies, ReliablePoliciesTest,
                         ::testing::Values(PolicyKind::PageFlag,
                                           PolicyKind::Mlock,
                                           PolicyKind::MlockTracked,
                                           PolicyKind::Kiobuf));

// --- nesting: the multiple-registration property --------------------------------

/// Lock the same range twice, unlock once; is the range still protected?
bool nested_lock_survives(KernelBox& box, LockPolicy& policy) {
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  LockHandle h1;
  LockHandle h2;
  EXPECT_TRUE(ok(policy.lock(pid, a, 2 * kPageSize, h1)));
  EXPECT_TRUE(ok(policy.lock(pid, a, 2 * kPageSize, h2)));
  const std::vector<simkern::Pfn> before = h1.pfns;
  policy.unlock(h1);  // first deregistration
  const bool survived = survives_reclaim(box, pid, a, 2, before);
  policy.unlock(h2);
  return survived;
}

TEST(LockPolicyNesting, KiobufNests) {
  KernelBox box;
  KiobufLockPolicy policy(box.kern);
  EXPECT_TRUE(nested_lock_survives(box, policy));
  EXPECT_TRUE(policy.supports_nesting());
}

TEST(LockPolicyNesting, MlockTrackedNestsForExactRanges) {
  KernelBox box;
  MlockLockPolicy policy(box.kern, {.userdma_patch = false,
                                    .track_ranges = true});
  EXPECT_TRUE(nested_lock_survives(box, policy));
}

TEST(LockPolicyNesting, NaiveMlockDoesNotNest) {
  // "a single unlock operation annuls multiple lock operations".
  KernelBox box;
  MlockLockPolicy policy(box.kern);
  EXPECT_FALSE(nested_lock_survives(box, policy));
  EXPECT_FALSE(policy.supports_nesting());
}

TEST(LockPolicyNesting, PageFlagDoesNotNest) {
  // First deregistration strips PG_locked from the other registration.
  KernelBox box;
  PageFlagLockPolicy policy(box.kern);
  EXPECT_FALSE(nested_lock_survives(box, policy));
}

TEST(LockPolicyNesting, TrackedMlockFailsOnOverlappingRanges) {
  // Driver-side per-range refcounting only handles *exact* range matches:
  // overlapping registrations still break each other (the residual weakness
  // of the mlock work-around).
  KernelBox box;
  MlockLockPolicy policy(box.kern, {.userdma_patch = false,
                                    .track_ranges = true});
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  LockHandle h1;
  LockHandle h2;
  ASSERT_TRUE(ok(policy.lock(pid, a, 3 * kPageSize, h1)));              // [0,3)
  ASSERT_TRUE(ok(policy.lock(pid, a + kPageSize, 3 * kPageSize, h2)));  // [1,4)
  const std::vector<simkern::Pfn> h2_before = h2.pfns;
  policy.unlock(h1);  // munlocks [0,3), stripping pages 1-2 of h2's range
  EXPECT_FALSE(survives_reclaim(box, pid, a + kPageSize, 3, h2_before));
  policy.unlock(h2);
}

TEST(LockPolicyNesting, KiobufHandlesOverlappingRanges) {
  KernelBox box;
  KiobufLockPolicy policy(box.kern);
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 4);
  LockHandle h1;
  LockHandle h2;
  ASSERT_TRUE(ok(policy.lock(pid, a, 3 * kPageSize, h1)));
  ASSERT_TRUE(ok(policy.lock(pid, a + kPageSize, 3 * kPageSize, h2)));
  const std::vector<simkern::Pfn> h2_before = h2.pfns;
  policy.unlock(h1);
  EXPECT_TRUE(survives_reclaim(box, pid, a + kPageSize, 3, h2_before));
  policy.unlock(h2);
}

// --- policy-specific behaviour ---------------------------------------------------

TEST(LockPolicyPageFlag, SetsAndStripsFlagsUnconditionally) {
  KernelBox box;
  PageFlagLockPolicy policy(box.kern);
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 1);
  ASSERT_TRUE(ok(box.kern.touch(pid, a, true)));
  const auto pfn = *box.kern.resolve(pid, a);
  // Kernel I/O already holds PG_locked.
  ASSERT_TRUE(ok(box.kern.start_kernel_io(pfn)));
  LockHandle h;
  ASSERT_TRUE(ok(policy.lock(pid, a, kPageSize, h)));
  EXPECT_EQ(box.kern.stats().io_flag_collisions, 1u);
  policy.unlock(h);  // strips PG_locked although the I/O still runs
  box.kern.end_kernel_io(pfn);
  EXPECT_EQ(box.kern.stats().io_lock_clobbered, 1u);
}

TEST(LockPolicyMlock, CapabilityTrickLeavesTaskUnprivileged) {
  KernelBox box;
  MlockLockPolicy policy(box.kern);
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  LockHandle h;
  ASSERT_TRUE(ok(policy.lock(pid, a, kPageSize, h)));
  EXPECT_FALSE(box.kern.task(pid).capable(simkern::Capability::IpcLock));
  // And the task itself still cannot mlock.
  EXPECT_EQ(box.kern.sys_mlock(pid, a + kPageSize, kPageSize), KStatus::Perm);
  policy.unlock(h);
}

TEST(LockPolicyMlock, UserDmaPatchVariantUsesDoMlock) {
  KernelBox box;
  MlockLockPolicy policy(box.kern, {.userdma_patch = true,
                                    .track_ranges = false});
  const Pid pid = box.kern.create_task("t");
  const VAddr a = must_mmap(box.kern, pid, 2);
  LockHandle h;
  ASSERT_TRUE(ok(policy.lock(pid, a, 2 * kPageSize, h)));
  EXPECT_TRUE(
      has(box.kern.task(pid).mm.vmas.find(a)->flags, VmFlag::Locked));
  // do_mlock path performs no mlock *syscall*.
  EXPECT_EQ(box.kern.stats().mlock_calls, 0u);
  policy.unlock(h);
}

TEST(LockPolicyKiobuf, DoesNotWalkPageTablesItself) {
  KernelBox box;
  KiobufLockPolicy policy(box.kern);
  EXPECT_FALSE(policy.walks_page_tables());
  RefcountLockPolicy rc(box.kern);
  MlockLockPolicy ml(box.kern);
  PageFlagLockPolicy pf(box.kern);
  EXPECT_TRUE(rc.walks_page_tables());
  EXPECT_TRUE(ml.walks_page_tables());
  EXPECT_TRUE(pf.walks_page_tables());
}

}  // namespace
}  // namespace vialock::via
