// unetmm_test.cc - the U-Net/MM comparison system: TLB-consistent, unpinned
// registration with fault-and-repair on the NIC data path.
#include "via/unetmm.h"

#include <gtest/gtest.h>

#include "via_util.h"

namespace vialock::via {
namespace {

using simkern::kPageSize;
using simkern::Pid;
using simkern::VAddr;
using test::must_mmap;
using test::peek64;
using test::poke64;

struct UnetBox {
  UnetBox()
      : node(test::small_node(PolicyKind::Kiobuf), clock, costs),
        agent(node.kernel(), node.nic()),
        pid(node.kernel().create_task("app")),
        tag(agent.create_ptag(pid)) {}
  Clock clock;
  CostModel costs;
  Node node;
  UnetMmAgent agent;
  Pid pid;
  ProtectionTag tag;
};

TEST(UnetMm, RegisterDoesNotPin) {
  UnetBox box;
  const VAddr a = must_mmap(box.node.kernel(), box.pid, 4);
  MemHandle mh;
  ASSERT_TRUE(ok(box.agent.register_mem(box.pid, a, 4 * kPageSize, box.tag, mh)));
  EXPECT_EQ(box.node.kernel().pinned_frames(), 0u);
  const auto pfn = *box.node.kernel().resolve(box.pid, a);
  EXPECT_EQ(box.node.kernel().phys().page(pfn).count, 1u) << "no extra refs";
  ASSERT_TRUE(ok(box.agent.deregister_mem(mh)));
}

TEST(UnetMm, SwapOutInvalidatesTlbEntry) {
  UnetBox box;
  auto& kern = box.node.kernel();
  const VAddr a = must_mmap(kern, box.pid, 2);
  MemHandle mh;
  ASSERT_TRUE(ok(box.agent.register_mem(box.pid, a, 2 * kPageSize, box.tag, mh)));
  EXPECT_TRUE(box.node.nic().tpt().get(mh.tpt_base).valid);
  kern.task(box.pid).mm.pt.walk(a)->accessed = false;
  kern.task(box.pid).mm.pt.walk(a + kPageSize)->accessed = false;
  (void)kern.try_to_free_pages(2);
  EXPECT_FALSE(box.node.nic().tpt().get(mh.tpt_base).valid)
      << "kernel swap-out must shoot the NIC TLB entry down";
  EXPECT_GE(box.agent.stats().invalidations, 2u);
  ASSERT_TRUE(ok(box.agent.deregister_mem(mh)));
}

TEST(UnetMm, DmaFaultsAndRepairsAfterSwapOut) {
  UnetBox box;
  auto& kern = box.node.kernel();
  const VAddr a = must_mmap(kern, box.pid, 2);
  ASSERT_TRUE(ok(poke64(kern, box.pid, a, 0xAAAA)));
  MemHandle mh;
  ASSERT_TRUE(ok(box.agent.register_mem(box.pid, a, 2 * kPageSize, box.tag, mh)));
  // Evict the whole region.
  kern.task(box.pid).mm.pt.walk(a)->accessed = false;
  kern.task(box.pid).mm.pt.walk(a + kPageSize)->accessed = false;
  (void)kern.try_to_free_pages(2);
  // NIC write faults, repairs (page-in), retries - and the process sees it.
  const std::uint64_t v = 0xBBBB;
  ASSERT_TRUE(ok(box.agent.dma_write(mh, a + 8, test::bytes_of(v))));
  EXPECT_EQ(box.agent.stats().nic_faults, 1u);
  EXPECT_GE(box.agent.stats().repair_pageins, 1u);
  EXPECT_EQ(peek64(kern, box.pid, a), 0xAAAAu) << "original data paged back";
  EXPECT_EQ(peek64(kern, box.pid, a + 8), 0xBBBBu) << "DMA write visible";
  ASSERT_TRUE(ok(box.agent.deregister_mem(mh)));
}

TEST(UnetMm, StaysConsistentUnderRepeatedPressure) {
  UnetBox box;
  auto& kern = box.node.kernel();
  const VAddr a = must_mmap(kern, box.pid, 4);
  MemHandle mh;
  ASSERT_TRUE(ok(box.agent.register_mem(box.pid, a, 4 * kPageSize, box.tag, mh)));
  for (int round = 0; round < 5; ++round) {
    // Evict...
    for (int p = 0; p < 4; ++p) {
      auto* pte = kern.task(box.pid).mm.pt.walk(a + p * kPageSize);
      if (pte && pte->present) pte->accessed = false;
    }
    (void)kern.try_to_free_pages(4);
    // ...then DMA-write a round stamp and verify through the process.
    const std::uint64_t v = 0xC000 + round;
    ASSERT_TRUE(ok(box.agent.dma_write(mh, a + 16, test::bytes_of(v))));
    EXPECT_EQ(peek64(kern, box.pid, a + 16), v) << "round " << round;
  }
  EXPECT_GE(box.agent.stats().nic_faults, 5u);
  ASSERT_TRUE(ok(box.agent.deregister_mem(mh)));
}

TEST(UnetMm, CowBreakRetargetsToTheWritersNewFrame) {
  // Contrast with the pinning semantics (Integration test
  // ForkAfterRegistrationPinsTheParentCopy): under TLB consistency the
  // registration follows the *registering process's* page table, so after
  // the parent COW-breaks, the NIC sees the parent's new frame.
  UnetBox box;
  auto& kern = box.node.kernel();
  const VAddr a = must_mmap(kern, box.pid, 1);
  ASSERT_TRUE(ok(poke64(kern, box.pid, a, 100)));
  MemHandle mh;
  ASSERT_TRUE(ok(box.agent.register_mem(box.pid, a, kPageSize, box.tag, mh)));
  const auto child = kern.fork_task(box.pid);
  ASSERT_TRUE(ok(poke64(kern, box.pid, a, 200)));  // parent COW-breaks
  std::uint64_t nic_view = 0;
  ASSERT_TRUE(ok(box.agent.dma_read(
      mh, a, std::as_writable_bytes(std::span{&nic_view, 1}))));
  EXPECT_EQ(nic_view, 200u) << "NIC follows the parent after repair";
  ASSERT_TRUE(ok(box.agent.deregister_mem(mh)));
  kern.exit_task(child);
}

TEST(UnetMm, MunmapInvalidatesAndDmaFailsCleanly) {
  UnetBox box;
  auto& kern = box.node.kernel();
  const VAddr a = must_mmap(kern, box.pid, 2);
  MemHandle mh;
  ASSERT_TRUE(ok(box.agent.register_mem(box.pid, a, 2 * kPageSize, box.tag, mh)));
  ASSERT_TRUE(ok(kern.sys_munmap(box.pid, a, 2 * kPageSize)));
  const std::uint64_t v = 1;
  // The repair path cannot make an unmapped page present: clean failure, no
  // wild DMA (compare: pinning keeps the frames alive instead).
  EXPECT_FALSE(ok(box.agent.dma_write(mh, a, test::bytes_of(v))));
  ASSERT_TRUE(ok(box.agent.deregister_mem(mh)));
}

TEST(UnetMm, RepairCostAppearsOnTheDataPath) {
  UnetBox box;
  auto& kern = box.node.kernel();
  const VAddr a = must_mmap(kern, box.pid, 1);
  MemHandle mh;
  ASSERT_TRUE(ok(box.agent.register_mem(box.pid, a, kPageSize, box.tag, mh)));
  const std::uint64_t v = 7;
  // Valid entry: fast.
  ASSERT_TRUE(ok(box.agent.dma_write(mh, a, test::bytes_of(v))));
  const Nanos t0 = box.clock.now();
  ASSERT_TRUE(ok(box.agent.dma_write(mh, a, test::bytes_of(v))));
  const Nanos fast = box.clock.now() - t0;
  // Invalidate by eviction: slow path pays interrupt + page-in.
  kern.task(box.pid).mm.pt.walk(a)->accessed = false;
  (void)kern.try_to_free_pages(1);
  const Nanos t1 = box.clock.now();
  ASSERT_TRUE(ok(box.agent.dma_write(mh, a, test::bytes_of(v))));
  const Nanos slow = box.clock.now() - t1;
  EXPECT_GT(slow, fast + box.costs.nic_page_fault);
  ASSERT_TRUE(ok(box.agent.deregister_mem(mh)));
}

}  // namespace
}  // namespace vialock::via
