// kernel_agent_test.cc - registration ioctls: TPT programming, handle
// lifecycle, TPT exhaustion, the refresh escape hatch.
#include "via/kernel_agent.h"

#include <gtest/gtest.h>

#include "via_util.h"

namespace vialock::via {
namespace {

using simkern::kPageSize;
using test::must_mmap;
using test::small_node;

struct AgentBox {
  explicit AgentBox(PolicyKind policy = PolicyKind::Kiobuf,
                    std::uint32_t tpt_entries = 64)
      : node(test::small_node(policy, 512, tpt_entries), clock, costs) {}
  Clock clock;
  CostModel costs;
  Node node;
};

TEST(KernelAgent, RegisterProgramsTptEntries) {
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 4);
  const ProtectionTag tag = agent.create_ptag(pid);
  ASSERT_NE(tag, kInvalidTag);
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 4 * kPageSize, tag, mh)));
  EXPECT_TRUE(mh.valid());
  EXPECT_EQ(mh.pages, 4u);
  EXPECT_EQ(mh.tag, tag);
  EXPECT_EQ(box.node.nic().tpt().used(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const TptEntry& e = box.node.nic().tpt().get(mh.tpt_base + i);
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.tag, tag);
    EXPECT_EQ(e.pfn, *kern.resolve(pid, a + i * kPageSize));
  }
  EXPECT_EQ(box.node.nic().stats().tpt_writes, 4u);
  EXPECT_EQ(agent.stats().registrations, 1u);
}

TEST(KernelAgent, DeregisterReleasesTptAndUnpins) {
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 4);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 4 * kPageSize, tag, mh)));
  ASSERT_TRUE(ok(agent.deregister_mem(mh)));
  EXPECT_EQ(box.node.nic().tpt().used(), 0u);
  EXPECT_EQ(kern.phys().page(*kern.resolve(pid, a)).pin_count, 0u);
  EXPECT_EQ(agent.live_registrations(), 0u);
  EXPECT_EQ(agent.deregister_mem(mh), KStatus::NoEnt) << "double dereg";
}

TEST(KernelAgent, TptExhaustionIsNoSpcAndUndoesLock) {
  AgentBox box(PolicyKind::Kiobuf, /*tpt_entries=*/8);
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 16);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  EXPECT_EQ(agent.register_mem(pid, a, 16 * kPageSize, tag, mh),
            KStatus::NoSpc);
  EXPECT_EQ(agent.stats().tpt_full, 1u);
  // Lock must have been rolled back.
  ASSERT_TRUE(ok(kern.touch(pid, a, true)));
  EXPECT_EQ(kern.phys().page(*kern.resolve(pid, a)).pin_count, 0u);
}

TEST(KernelAgent, MultipleRegistrationsOfSameRangeCoexist) {
  // "the VIA specification explicitly allows memory regions to be registered
  // several times" - with the kiobuf policy each registration is
  // independent.
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 2);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle m1;
  MemHandle m2;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 2 * kPageSize, tag, m1)));
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 2 * kPageSize, tag, m2)));
  EXPECT_NE(m1.id, m2.id);
  EXPECT_NE(m1.tpt_base, m2.tpt_base);
  EXPECT_EQ(kern.phys().page(*kern.resolve(pid, a)).pin_count, 2u);
  ASSERT_TRUE(ok(agent.deregister_mem(m1)));
  EXPECT_EQ(kern.phys().page(*kern.resolve(pid, a)).pin_count, 1u);
  ASSERT_TRUE(ok(agent.deregister_mem(m2)));
}

TEST(KernelAgent, RegistrationWithDifferentTagsIsPossible) {
  // E.g. one process, two protection tags over the same buffer (the case the
  // paper gives for why caching alone cannot eliminate re-registration).
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 2);
  const ProtectionTag t1 = agent.create_ptag(pid);
  const ProtectionTag t2 = agent.create_ptag(pid);
  ASSERT_NE(t1, t2);
  MemHandle m1;
  MemHandle m2;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 2 * kPageSize, t1, m1)));
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 2 * kPageSize, t2, m2)));
  EXPECT_EQ(box.node.nic().tpt().get(m1.tpt_base).tag, t1);
  EXPECT_EQ(box.node.nic().tpt().get(m2.tpt_base).tag, t2);
  ASSERT_TRUE(ok(agent.deregister_mem(m1)));
  ASSERT_TRUE(ok(agent.deregister_mem(m2)));
}

TEST(KernelAgent, InvalidArgumentsRejected) {
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 2);
  MemHandle mh;
  EXPECT_EQ(agent.register_mem(pid, a, kPageSize, kInvalidTag, mh),
            KStatus::Inval);
  const ProtectionTag tag = agent.create_ptag(pid);
  EXPECT_EQ(agent.register_mem(pid, a, 0, tag, mh), KStatus::Inval);
  EXPECT_EQ(agent.create_ptag(9999), kInvalidTag);
}

TEST(KernelAgent, RefreshTptRepairsStaleEntriesAfterRelocation) {
  // With the broken refcount policy, refresh_tpt() is the (expensive) repair
  // a U-Net/MM-style TLB-consistency scheme would perform.
  AgentBox box(PolicyKind::Refcount);
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 4);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 4 * kPageSize, tag, mh)));
  // Evict and fault back: TPT now stale.
  for (int p = 0; p < 4; ++p)
    kern.task(pid).mm.pt.walk(a + p * kPageSize)->accessed = false;
  (void)kern.try_to_free_pages(4);
  for (int p = 0; p < 4; ++p)
    ASSERT_TRUE(ok(kern.touch(pid, a + p * kPageSize, true)));
  EXPECT_NE(box.node.nic().tpt().get(mh.tpt_base).pfn,
            *kern.resolve(pid, a));
  ASSERT_TRUE(ok(agent.refresh_tpt(mh)));
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(box.node.nic().tpt().get(mh.tpt_base + i).pfn,
              *kern.resolve(pid, a + i * kPageSize));
  }
  ASSERT_TRUE(ok(agent.deregister_mem(mh)));
}

TEST(KernelAgent, RegistrationChargesSyscallAndPciTime) {
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 8);
  const ProtectionTag tag = agent.create_ptag(pid);
  const Nanos before = box.clock.now();
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 8 * kPageSize, tag, mh)));
  const Nanos elapsed = box.clock.now() - before;
  EXPECT_GE(elapsed, box.costs.syscall + 8 * box.costs.pci_reg_write);
  ASSERT_TRUE(ok(agent.deregister_mem(mh)));
}

}  // namespace
}  // namespace vialock::via
