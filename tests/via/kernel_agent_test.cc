// kernel_agent_test.cc - registration ioctls: TPT programming, handle
// lifecycle, TPT exhaustion, the refresh escape hatch.
#include "via/kernel_agent.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/fault.h"
#include "via_util.h"

namespace vialock::via {
namespace {

using simkern::kPageSize;
using test::must_mmap;
using test::small_node;

struct AgentBox {
  explicit AgentBox(PolicyKind policy = PolicyKind::Kiobuf,
                    std::uint32_t tpt_entries = 64)
      : node(test::small_node(policy, 512, tpt_entries), clock, costs) {}
  Clock clock;
  CostModel costs;
  Node node;
};

TEST(KernelAgent, RegisterProgramsTptEntries) {
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 4);
  const ProtectionTag tag = agent.create_ptag(pid);
  ASSERT_NE(tag, kInvalidTag);
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 4 * kPageSize, tag, mh)));
  EXPECT_TRUE(mh.valid());
  EXPECT_EQ(mh.pages, 4u);
  EXPECT_EQ(mh.tag, tag);
  EXPECT_EQ(box.node.nic().tpt().used(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const TptEntry& e = box.node.nic().tpt().get(mh.tpt_base + i);
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.tag, tag);
    EXPECT_EQ(e.pfn, *kern.resolve(pid, a + i * kPageSize));
  }
  EXPECT_EQ(box.node.nic().stats().tpt_writes, 4u);
  EXPECT_EQ(agent.stats().registrations, 1u);
}

TEST(KernelAgent, DeregisterReleasesTptAndUnpins) {
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 4);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 4 * kPageSize, tag, mh)));
  ASSERT_TRUE(ok(agent.deregister_mem(mh)));
  EXPECT_EQ(box.node.nic().tpt().used(), 0u);
  EXPECT_EQ(kern.phys().page(*kern.resolve(pid, a)).pin_count, 0u);
  EXPECT_EQ(agent.live_registrations(), 0u);
  EXPECT_EQ(agent.deregister_mem(mh), KStatus::NoEnt) << "double dereg";
}

TEST(KernelAgent, TptExhaustionIsNoSpcAndUndoesLock) {
  AgentBox box(PolicyKind::Kiobuf, /*tpt_entries=*/8);
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 16);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  EXPECT_EQ(agent.register_mem(pid, a, 16 * kPageSize, tag, mh),
            KStatus::NoSpc);
  EXPECT_EQ(agent.stats().tpt_full, 1u);
  // Lock must have been rolled back.
  ASSERT_TRUE(ok(kern.touch(pid, a, true)));
  EXPECT_EQ(kern.phys().page(*kern.resolve(pid, a)).pin_count, 0u);
}

TEST(KernelAgent, MultipleRegistrationsOfSameRangeCoexist) {
  // "the VIA specification explicitly allows memory regions to be registered
  // several times" - with the kiobuf policy each registration is
  // independent.
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 2);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle m1;
  MemHandle m2;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 2 * kPageSize, tag, m1)));
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 2 * kPageSize, tag, m2)));
  EXPECT_NE(m1.id, m2.id);
  EXPECT_NE(m1.tpt_base, m2.tpt_base);
  EXPECT_EQ(kern.phys().page(*kern.resolve(pid, a)).pin_count, 2u);
  ASSERT_TRUE(ok(agent.deregister_mem(m1)));
  EXPECT_EQ(kern.phys().page(*kern.resolve(pid, a)).pin_count, 1u);
  ASSERT_TRUE(ok(agent.deregister_mem(m2)));
}

TEST(KernelAgent, RegistrationWithDifferentTagsIsPossible) {
  // E.g. one process, two protection tags over the same buffer (the case the
  // paper gives for why caching alone cannot eliminate re-registration).
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 2);
  const ProtectionTag t1 = agent.create_ptag(pid);
  const ProtectionTag t2 = agent.create_ptag(pid);
  ASSERT_NE(t1, t2);
  MemHandle m1;
  MemHandle m2;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 2 * kPageSize, t1, m1)));
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 2 * kPageSize, t2, m2)));
  EXPECT_EQ(box.node.nic().tpt().get(m1.tpt_base).tag, t1);
  EXPECT_EQ(box.node.nic().tpt().get(m2.tpt_base).tag, t2);
  ASSERT_TRUE(ok(agent.deregister_mem(m1)));
  ASSERT_TRUE(ok(agent.deregister_mem(m2)));
}

TEST(KernelAgent, InvalidArgumentsRejected) {
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 2);
  MemHandle mh;
  EXPECT_EQ(agent.register_mem(pid, a, kPageSize, kInvalidTag, mh),
            KStatus::Inval);
  const ProtectionTag tag = agent.create_ptag(pid);
  EXPECT_EQ(agent.register_mem(pid, a, 0, tag, mh), KStatus::Inval);
  EXPECT_EQ(agent.create_ptag(9999), kInvalidTag);
}

TEST(KernelAgent, RefreshTptRepairsStaleEntriesAfterRelocation) {
  // With the broken refcount policy, refresh_tpt() is the (expensive) repair
  // a U-Net/MM-style TLB-consistency scheme would perform.
  AgentBox box(PolicyKind::Refcount);
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 4);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 4 * kPageSize, tag, mh)));
  // Evict and fault back: TPT now stale.
  for (int p = 0; p < 4; ++p)
    kern.task(pid).mm.pt.walk(a + p * kPageSize)->accessed = false;
  (void)kern.try_to_free_pages(4);
  for (int p = 0; p < 4; ++p)
    ASSERT_TRUE(ok(kern.touch(pid, a + p * kPageSize, true)));
  EXPECT_NE(box.node.nic().tpt().get(mh.tpt_base).pfn,
            *kern.resolve(pid, a));
  ASSERT_TRUE(ok(agent.refresh_tpt(mh)));
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(box.node.nic().tpt().get(mh.tpt_base + i).pfn,
              *kern.resolve(pid, a + i * kPageSize));
  }
  ASSERT_TRUE(ok(agent.deregister_mem(mh)));
}

TEST(KernelAgent, RefreshLockFailureTearsDownRegistration) {
  // Seed bug: a failed re-lock during refresh_tpt returned with the dead
  // registration still live - empty LockHandle, leaked TPT slots, stale pfns
  // in the NIC. The failure contract now tears the registration down.
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 4);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 4 * kPageSize, tag, mh)));

  // Arm a kiobuf-map failure for the *next* map: event 0 was the initial
  // registration's, event 1 is the refresh's re-lock.
  fault::FaultPlan plan;
  plan.add({.site = fault::FaultSite::KiobufMap,
            .action = fault::FaultAction::Fail,
            .max_triggers = 1});
  fault::FaultEngine engine(plan, box.clock);
  box.node.set_fault_engine(&engine);

  EXPECT_EQ(agent.refresh_tpt(mh), KStatus::Again);
  EXPECT_EQ(agent.stats().refresh_failures, 1u);
  EXPECT_EQ(agent.live_registrations(), 0u) << "dead entry must not linger";
  EXPECT_EQ(box.node.nic().tpt().used(), 0u) << "TPT slots must not leak";
  // The original pin was dropped and the re-pin never happened.
  EXPECT_EQ(kern.phys().page(*kern.resolve(pid, a)).pin_count, 0u);
  EXPECT_EQ(agent.deregister_mem(mh), KStatus::NoEnt) << "handle is dead";
  EXPECT_TRUE(kern.self_check().empty());
}

// Delegates to a real kiobuf policy but can drop one pfn from the next lock
// result - the only way to reach refresh_tpt's page-count-mismatch arm from
// outside (a policy/MMU disagreement the agent must treat as fatal).
class PfnDroppingPolicy final : public LockPolicy {
 public:
  explicit PfnDroppingPolicy(simkern::Kernel& kern)
      : LockPolicy(kern), inner_(kern) {}
  [[nodiscard]] std::string_view name() const override { return "pfn-drop"; }
  [[nodiscard]] KStatus lock(simkern::Pid pid, simkern::VAddr addr,
                             std::uint64_t len, LockHandle& out) override {
    const KStatus st = inner_.lock(pid, addr, len, out);
    if (ok(st) && drop_next_ && !out.pfns.empty()) {
      drop_next_ = false;
      out.pfns.pop_back();
    }
    return st;
  }
  void unlock(LockHandle& h) override { inner_.unlock(h); }
  [[nodiscard]] bool reliable() const override { return true; }
  [[nodiscard]] bool supports_nesting() const override { return true; }
  [[nodiscard]] bool walks_page_tables() const override { return false; }

  void arm() { drop_next_ = true; }

 private:
  KiobufLockPolicy inner_;
  bool drop_next_ = false;
};

TEST(KernelAgent, RefreshPageCountMismatchTearsDown) {
  // Seed bug: the mismatch arm returned Fault while keeping the fresh
  // (uncharged) pin and the stale TPT programming.
  Clock clock;
  CostModel costs;
  simkern::Kernel kern(test::small_config(), clock, costs);
  Nic nic(kern, clock, costs);
  PfnDroppingPolicy policy(kern);
  KernelAgent agent(kern, nic, policy);

  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 4);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 4 * kPageSize, tag, mh)));

  policy.arm();  // the refresh re-lock comes back one pfn short
  EXPECT_EQ(agent.refresh_tpt(mh), KStatus::Fault);
  EXPECT_EQ(agent.stats().refresh_failures, 1u);
  EXPECT_EQ(agent.live_registrations(), 0u);
  EXPECT_EQ(nic.tpt().used(), 0u);
  EXPECT_EQ(kern.phys().page(*kern.resolve(pid, a)).pin_count, 0u)
      << "the fresh pin must have been unlocked, not kept";
  EXPECT_TRUE(kern.self_check().empty());
}

TEST(KernelAgent, RefreshGovernorRejectTearsDown) {
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  auto& gov = box.node.enable_governor({});
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 4);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 4 * kPageSize, tag, mh)));
  EXPECT_EQ(gov.tenant_charged(pid), 4u);

  // Event 0 was the registration's charge; fail the refresh's re-admission.
  fault::FaultPlan plan;
  plan.add({.site = fault::FaultSite::PinAdmission,
            .action = fault::FaultAction::Fail,
            .max_triggers = 1});
  fault::FaultEngine engine(plan, box.clock);
  box.node.set_fault_engine(&engine);
  // after_events defaults to 0, but registration already consumed event 0
  // before the engine was armed, so the next charge is the one that fails.

  EXPECT_EQ(agent.refresh_tpt(mh), KStatus::Again);
  EXPECT_EQ(agent.stats().refresh_failures, 1u);
  EXPECT_EQ(agent.live_registrations(), 0u);
  EXPECT_EQ(box.node.nic().tpt().used(), 0u);
  EXPECT_EQ(gov.tenant_charged(pid), 0u) << "nothing charged, nothing pinned";
  EXPECT_EQ(kern.phys().page(*kern.resolve(pid, a)).pin_count, 0u);
  EXPECT_TRUE(kern.self_check().empty());
}

TEST(KernelAgent, TptAllocFaultRollsBackPinAndCharge) {
  // S2 regression: Tpt::alloc failing partway through a registration (here
  // via the injectable TptAlloc site) must roll back *everything* claimed
  // before it - the governor charge and the pin - not just skip the TPT
  // programming. The seed's rollback missed the governor charge, stranding
  // quota on a registration that never existed.
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  auto& gov = box.node.enable_governor({});

  fault::FaultPlan plan;
  plan.add({.site = fault::FaultSite::TptAlloc,
            .action = fault::FaultAction::Fail,
            .max_triggers = 1});
  fault::FaultEngine engine(plan, box.clock);
  box.node.set_fault_engine(&engine);

  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 4);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  EXPECT_EQ(agent.register_mem(pid, a, 4 * kPageSize, tag, mh),
            KStatus::NoSpc);
  EXPECT_FALSE(mh.valid());
  EXPECT_EQ(agent.stats().tpt_full, 1u);
  EXPECT_EQ(agent.live_registrations(), 0u);
  EXPECT_EQ(box.node.nic().tpt().used(), 0u);
  EXPECT_EQ(kern.pinned_frames(), 0u) << "pin must be rolled back";
  EXPECT_EQ(gov.total_charged(), 0u) << "charge must be rolled back";
  EXPECT_TRUE(kern.self_check().empty());

  // The fault was one-shot; the same registration now succeeds and charges.
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 4 * kPageSize, tag, mh)));
  EXPECT_EQ(gov.tenant_charged(pid), 4u);
  ASSERT_TRUE(ok(agent.deregister_mem(mh)));
  EXPECT_EQ(gov.total_charged(), 0u);
}

// Delegates to a real kiobuf policy but can reverse the pfn order of the
// next lock result: to the decomposer a reversed run is 2^k order-0 runs, so
// a refresh re-pin through this policy deterministically forces the
// superpage-split arm without fighting the swapper for a mid-run relocation.
class PfnPermutingPolicy final : public LockPolicy {
 public:
  explicit PfnPermutingPolicy(simkern::Kernel& kern)
      : LockPolicy(kern), inner_(kern) {}
  [[nodiscard]] std::string_view name() const override { return "pfn-permute"; }
  [[nodiscard]] KStatus lock(simkern::Pid pid, simkern::VAddr addr,
                             std::uint64_t len, LockHandle& out) override {
    const KStatus st = inner_.lock(pid, addr, len, out);
    if (ok(st) && reverse_next_) {
      reverse_next_ = false;
      std::reverse(out.pfns.begin(), out.pfns.end());
    }
    return st;
  }
  void unlock(LockHandle& h) override { inner_.unlock(h); }
  [[nodiscard]] bool reliable() const override { return true; }
  [[nodiscard]] bool supports_nesting() const override { return true; }
  [[nodiscard]] bool walks_page_tables() const override { return false; }

  void arm() { reverse_next_ = true; }

 private:
  KiobufLockPolicy inner_;
  bool reverse_next_ = false;
};

TEST(KernelAgent, RefreshSplitsSuperpageWhenFramesRelocate) {
  // Relocation inside a superpage run changes the decomposition: refresh
  // must claim a fresh TPT range for the split layout, program it from the
  // new frame list, and release the old range.
  Clock clock;
  CostModel costs;
  simkern::Kernel kern(test::small_config(), clock, costs);
  Nic nic(kern, clock, costs);  // default NicConfig: superpages enabled
  PfnPermutingPolicy policy(kern);
  KernelAgent agent(kern, nic, policy);

  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 4);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 4 * kPageSize, tag, mh)));
  ASSERT_LT(mh.tpt_count, 4u) << "fresh-kernel frames must form a superpage";
  std::vector<simkern::Pfn> orig;
  for (std::uint32_t i = 0; i < 4; ++i)
    orig.push_back(*kern.resolve(pid, a + i * kPageSize));

  policy.arm();  // the refresh re-pin reports the frames in reverse order
  ASSERT_TRUE(ok(agent.refresh_tpt(mh)));
  EXPECT_EQ(agent.stats().refresh_splits, 1u);
  EXPECT_EQ(mh.tpt_count, 4u) << "a descending frame list never merges";
  EXPECT_EQ(nic.tpt().used(), 4u) << "old range released, only the new held";
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto tr = nic.tpt().translate(mh.tpt_base, mh.tpt_count,
                                        i * kPageSize, tag, false, false);
    ASSERT_TRUE(tr.has_value());
    EXPECT_EQ(tr->pfn, orig[3 - i]) << "page " << i;
  }
  ASSERT_TRUE(ok(agent.deregister_mem(mh)));
  EXPECT_EQ(nic.tpt().used(), 0u);
  EXPECT_EQ(kern.pinned_frames(), 0u);
  EXPECT_TRUE(kern.self_check().empty());
}

TEST(KernelAgent, RefreshSplitTptAllocFailureRollsBackEverything) {
  // S2 regression, the deepest arm: the refresh already dropped the old pin,
  // re-pinned, re-charged the governor, and *then* the split's table claim
  // fails. Everything acquired in the refresh - the new pin and the new
  // charge - must unwind on top of the usual teardown, or pinned_frames()
  // and quota accounting leak on a dead registration.
  Clock clock;
  CostModel costs;
  simkern::Kernel kern(test::small_config(), clock, costs);
  Nic nic(kern, clock, costs);
  PfnPermutingPolicy policy(kern);
  KernelAgent agent(kern, nic, policy);
  pinmgr::PinGovernor gov(kern, {});
  agent.set_governor(&gov);

  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 4);
  const ProtectionTag tag = agent.create_ptag(pid);
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 4 * kPageSize, tag, mh)));
  ASSERT_LT(mh.tpt_count, 4u) << "test requires a superpage to split";
  EXPECT_EQ(gov.tenant_charged(pid), 4u);

  // Armed after registration, so the refresh split's claim is event 0.
  fault::FaultPlan plan;
  plan.add({.site = fault::FaultSite::TptAlloc,
            .action = fault::FaultAction::Fail,
            .max_triggers = 1});
  fault::FaultEngine engine(plan, clock);
  agent.set_fault_engine(&engine);

  policy.arm();  // reversed pfns force the split arm on refresh
  EXPECT_EQ(agent.refresh_tpt(mh), KStatus::NoSpc);
  EXPECT_EQ(agent.stats().refresh_splits, 1u);
  EXPECT_EQ(agent.stats().refresh_failures, 1u);
  EXPECT_EQ(agent.stats().tpt_full, 1u);
  EXPECT_EQ(agent.live_registrations(), 0u);
  EXPECT_EQ(nic.tpt().used(), 0u) << "old range must not leak on teardown";
  EXPECT_EQ(kern.pinned_frames(), 0u) << "the refresh's re-pin must unwind";
  EXPECT_EQ(gov.total_charged(), 0u) << "the refresh's re-charge must unwind";
  EXPECT_EQ(agent.deregister_mem(mh), KStatus::NoEnt) << "handle is dead";
  EXPECT_TRUE(kern.self_check().empty());
}

TEST(KernelAgent, RegistrationChargesSyscallAndPciTime) {
  AgentBox box;
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto pid = kern.create_task("t");
  const auto a = must_mmap(kern, pid, 8);
  const ProtectionTag tag = agent.create_ptag(pid);
  const Nanos before = box.clock.now();
  MemHandle mh;
  ASSERT_TRUE(ok(agent.register_mem(pid, a, 8 * kPageSize, tag, mh)));
  const Nanos elapsed = box.clock.now() - before;
  EXPECT_GE(elapsed, box.costs.syscall + 8 * box.costs.pci_reg_write);
  ASSERT_TRUE(ok(agent.deregister_mem(mh)));
}

}  // namespace
}  // namespace vialock::via
