// fabric_test.cc - fabric-level connection management: the VIA client/server
// model (VipConnectWait / VipConnectRequest / VipDisconnect) plus connect()
// edge cases.
#include "via/fabric.h"

#include <gtest/gtest.h>

#include "via_util.h"

namespace vialock::via {
namespace {

using simkern::kPageSize;
using test::must_mmap;

/// Like TwoNodeFixture but without a pre-made connection.
class FabricTest : public test::TwoNodeFixture {
 protected:
  void SetUp() override {
    // Build the fixture, then tear its connection down so tests start from
    // unconnected VIs.
    test::TwoNodeFixture::SetUp();
    ASSERT_TRUE(ok(cluster->fabric().disconnect(n0, vi0)));
    cluster->node(n1).nic().vi(vi1).state = ViState::Idle;
    cluster->node(n1).nic().vi(vi1).peer_node = kInvalidNode;
    cluster->node(n1).nic().vi(vi1).peer_vi = kInvalidVi;
  }
};

TEST_F(FabricTest, ClientServerConnectEstablishesPair) {
  Fabric& fabric = cluster->fabric();
  ASSERT_TRUE(ok(fabric.listen(n1, /*discriminator=*/0xCAFE, vi1)));
  ASSERT_TRUE(ok(fabric.connect_request(n0, vi0, n1, 0xCAFE)));
  EXPECT_TRUE(cluster->node(n0).nic().vi(vi0).connected());
  EXPECT_TRUE(cluster->node(n1).nic().vi(vi1).connected());
  EXPECT_EQ(cluster->node(n0).nic().vi(vi0).peer_vi, vi1);
}

TEST_F(FabricTest, ConnectRequestWithoutListenerIsAgain) {
  EXPECT_EQ(cluster->fabric().connect_request(n0, vi0, n1, 0xBEEF),
            KStatus::Again);
  EXPECT_FALSE(cluster->node(n0).nic().vi(vi0).connected());
}

TEST_F(FabricTest, DiscriminatorMustMatch) {
  Fabric& fabric = cluster->fabric();
  ASSERT_TRUE(ok(fabric.listen(n1, 0xCAFE, vi1)));
  EXPECT_EQ(fabric.connect_request(n0, vi0, n1, 0xF00D), KStatus::Again);
  EXPECT_TRUE(ok(fabric.connect_request(n0, vi0, n1, 0xCAFE)));
}

TEST_F(FabricTest, ListenerIsConsumedByOneClient) {
  Fabric& fabric = cluster->fabric();
  ASSERT_TRUE(ok(fabric.listen(n1, 0xCAFE, vi1)));
  ASSERT_TRUE(ok(fabric.connect_request(n0, vi0, n1, 0xCAFE)));
  ViId vi0b = kInvalidVi;
  ASSERT_TRUE(ok(v0->create_vi(vi0b)));
  EXPECT_EQ(fabric.connect_request(n0, vi0b, n1, 0xCAFE), KStatus::Again);
}

TEST_F(FabricTest, DoubleListenOnSameDiscriminatorIsBusy) {
  Fabric& fabric = cluster->fabric();
  ASSERT_TRUE(ok(fabric.listen(n1, 0xCAFE, vi1)));
  ViId vi1b = kInvalidVi;
  ASSERT_TRUE(ok(v1->create_vi(vi1b)));
  EXPECT_EQ(fabric.listen(n1, 0xCAFE, vi1b), KStatus::Busy);
  // A different discriminator on the same node is fine.
  EXPECT_TRUE(ok(fabric.listen(n1, 0xCAFF, vi1b)));
}

TEST_F(FabricTest, ConnectedViCannotListen) {
  Fabric& fabric = cluster->fabric();
  ASSERT_TRUE(ok(fabric.connect(n0, vi0, n1, vi1)));
  EXPECT_EQ(fabric.listen(n1, 0xCAFE, vi1), KStatus::Busy);
}

TEST_F(FabricTest, DisconnectFreesLocalSideAndBreaksPeer) {
  Fabric& fabric = cluster->fabric();
  ASSERT_TRUE(ok(fabric.connect(n0, vi0, n1, vi1)));
  ASSERT_TRUE(ok(fabric.disconnect(n0, vi0)));
  EXPECT_EQ(cluster->node(n0).nic().vi(vi0).state, ViState::Idle);
  EXPECT_EQ(cluster->node(n1).nic().vi(vi1).state, ViState::Error);
  // The freed VI can connect again.
  ViId vi1b = kInvalidVi;
  ASSERT_TRUE(ok(v1->create_vi(vi1b)));
  EXPECT_TRUE(ok(fabric.connect(n0, vi0, n1, vi1b)));
}

TEST_F(FabricTest, SendAfterPeerDisconnectFails) {
  Fabric& fabric = cluster->fabric();
  ASSERT_TRUE(ok(fabric.connect(n0, vi0, n1, vi1)));
  ASSERT_TRUE(ok(fabric.disconnect(n1, vi1)));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 64)));
  const auto sc = v0->send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::ErrDisconnected);
}

TEST_F(FabricTest, DisconnectOfUnconnectedViIsProtocolError) {
  EXPECT_EQ(cluster->fabric().disconnect(n0, vi0), KStatus::Proto);
}

TEST_F(FabricTest, ConnectRejectsBusyEndpoints) {
  Fabric& fabric = cluster->fabric();
  ASSERT_TRUE(ok(fabric.connect(n0, vi0, n1, vi1)));
  ViId vi0b = kInvalidVi;
  ASSERT_TRUE(ok(v0->create_vi(vi0b)));
  EXPECT_EQ(fabric.connect(n0, vi0b, n1, vi1), KStatus::Busy);
}

TEST_F(FabricTest, EndToEndAfterClientServerConnect) {
  Fabric& fabric = cluster->fabric();
  ASSERT_TRUE(ok(fabric.listen(n1, 42, vi1)));
  ASSERT_TRUE(ok(fabric.connect_request(n0, vi0, n1, 42)));
  ASSERT_TRUE(ok(test::poke64(kern0(), p0, buf0, 0x5151)));
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 64)));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 64)));
  ASSERT_TRUE(v0->send_done(vi0)->done_ok());
  ASSERT_TRUE(v1->recv_done(vi1)->done_ok());
  EXPECT_EQ(test::peek64(kern1(), p1, buf1), 0x5151u);
}

}  // namespace
}  // namespace vialock::via
