// vipl_misuse_test.cc - doorbell mappings, API misuse, unreliable delivery
// mode, and other VIPL edge cases.
#include <gtest/gtest.h>

#include "via_util.h"

namespace vialock::via {
namespace {

using simkern::kPageSize;
using test::must_mmap;
using test::TwoNodeFixture;

class ViplEdgeTest : public TwoNodeFixture {};

TEST_F(ViplEdgeTest, DoorbellMapsPerViAndIsIo) {
  auto& agent = cluster->node(n0).agent();
  const auto db = agent.map_doorbell(p0, vi0);
  ASSERT_TRUE(db.has_value());
  const auto* vma = kern0().task(p0).mm.vmas.find(*db);
  ASSERT_NE(vma, nullptr);
  EXPECT_TRUE(has(vma->flags, simkern::VmFlag::Io));
  // A second process gets its own mapping of the same register page.
  const auto pid2 = kern0().create_task("second");
  const ViId vi2 = cluster->node(n0).nic().create_vi(77);
  const auto db2 = agent.map_doorbell(pid2, vi2);
  ASSERT_TRUE(db2.has_value());
  EXPECT_EQ(*kern0().resolve(pid2, *db2), 1 + vi2);
  EXPECT_NE(*kern0().resolve(p0, *db), *kern0().resolve(pid2, *db2))
      << "distinct VIs get distinct doorbell frames";
}

TEST_F(ViplEdgeTest, DoorbellForBogusViFails) {
  auto& agent = cluster->node(n0).agent();
  EXPECT_FALSE(agent.map_doorbell(p0, 9999).has_value());
}

TEST_F(ViplEdgeTest, RegisterBeforeOpenIsProtocolError) {
  const auto pid2 = kern0().create_task("late");
  Vipl v(cluster->node(n0).agent(), pid2);
  MemHandle mh;
  EXPECT_EQ(v.register_mem(0x1000, kPageSize, mh), KStatus::Proto);
  ViId vi = 123;
  EXPECT_EQ(v.create_vi(vi), KStatus::Proto);
  EXPECT_EQ(vi, kInvalidVi) << "a failed create_vi must not leave a stale id";
}

TEST_F(ViplEdgeTest, PostToBogusViIsInval) {
  EXPECT_EQ(v0->post_send(12345, mh0, buf0, 16), KStatus::Inval);
  EXPECT_EQ(v0->post_recv(12345, mh0, buf0, 16), KStatus::Inval);
}

TEST_F(ViplEdgeTest, SendOnUnconnectedViCompletesWithError) {
  ViId lone = kInvalidVi;
  ASSERT_TRUE(ok(v0->create_vi(lone)));
  ASSERT_TRUE(ok(v0->post_send(lone, mh0, buf0, 16)));
  const auto sc = v0->send_done(lone);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::ErrDisconnected);
}

TEST_F(ViplEdgeTest, UnreliableModeSurvivesDroppedSends) {
  // reliable=false: a send without a posted receive is dropped without
  // breaking the connection; later traffic still flows.
  ViId u0 = kInvalidVi;
  ViId u1 = kInvalidVi;
  ASSERT_TRUE(ok(v0->create_vi(u0, ViAttributes::unreliable())));
  ASSERT_TRUE(ok(v1->create_vi(u1, ViAttributes::unreliable())));
  ASSERT_TRUE(ok(cluster->fabric().connect(n0, u0, n1, u1)));
  ASSERT_TRUE(ok(v0->post_send(u0, mh0, buf0, 16)));
  EXPECT_EQ(v0->send_done(u0)->status, DescStatus::ErrNoRecvDesc);
  EXPECT_TRUE(cluster->node(n1).nic().vi(u1).connected())
      << "unreliable mode: connection survives";
  ASSERT_TRUE(ok(v1->post_recv(u1, mh1, buf1, 64)));
  ASSERT_TRUE(ok(v0->post_send(u0, mh0, buf0, 16)));
  EXPECT_TRUE(v0->send_done(u0)->done_ok());
  EXPECT_TRUE(v1->recv_done(u1)->done_ok());
}

TEST_F(ViplEdgeTest, CreateViWithInvalidTagFails) {
  EXPECT_EQ(cluster->node(n0).nic().create_vi(kInvalidTag), kInvalidVi);
}

TEST_F(ViplEdgeTest, DeregisterWithLiveTrafficStillInFlightIsClean) {
  // Deregister the receive buffer, then attempt a send into it: the TPT
  // entries are gone, so the NIC rejects the delivery - no wild DMA.
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 64)));
  ASSERT_TRUE(ok(v1->deregister_mem(mh1)));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 64)));
  const auto sc = v0->send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::ErrProtection);
  mh1 = MemHandle{};  // fixture teardown shouldn't double-free
}

TEST_F(ViplEdgeTest, ZeroLengthSendDelivers) {
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 64)));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 0)));
  const auto sc = v0->send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->status, DescStatus::Done);
  const auto rc = v1->recv_done(vi1);
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(rc->transferred, 0u);
}

}  // namespace
}  // namespace vialock::via
