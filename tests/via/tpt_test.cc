// tpt_test.cc - Translation and Protection Table: allocation, translation,
// tag and RDMA-attribute enforcement.
#include "via/tpt.h"

#include <gtest/gtest.h>

#include "simkern/types.h"

namespace vialock::via {
namespace {

using simkern::kPageSize;

// An order-0 entry covering registration-relative page `page_start` (entries
// within a region must carry ascending page_start for translate()).
TptEntry entry(std::uint32_t page_start, simkern::Pfn pfn, ProtectionTag tag,
               bool w = true, bool r = true) {
  return TptEntry{.valid = true,
                  .pfn = pfn,
                  .tag = tag,
                  .rdma_write_enable = w,
                  .rdma_read_enable = r,
                  .page_start = page_start};
}

TEST(Tpt, AllocContiguousFirstFit) {
  Tpt tpt(16);
  const TptIndex a = tpt.alloc(4);
  const TptIndex b = tpt.alloc(4);
  ASSERT_NE(a, kInvalidTptIndex);
  ASSERT_NE(b, kInvalidTptIndex);
  EXPECT_NE(a, b);
  EXPECT_EQ(tpt.used(), 8u);
  EXPECT_EQ(tpt.free_entries(), 8u);
}

TEST(Tpt, FullTableReturnsInvalid) {
  Tpt tpt(8);
  EXPECT_NE(tpt.alloc(8), kInvalidTptIndex);
  EXPECT_EQ(tpt.alloc(1), kInvalidTptIndex);
}

TEST(Tpt, ReleaseEnablesReuseAndCoalescing) {
  Tpt tpt(8);
  const TptIndex a = tpt.alloc(3);
  const TptIndex b = tpt.alloc(3);
  tpt.release(a, 3);
  tpt.release(b, 3);
  EXPECT_EQ(tpt.used(), 0u);
  EXPECT_NE(tpt.alloc(8), kInvalidTptIndex);  // full span usable again
}

TEST(Tpt, FragmentationPreventsLargeAlloc) {
  Tpt tpt(8);
  const TptIndex a = tpt.alloc(2);  // [0,2)
  const TptIndex b = tpt.alloc(2);  // [2,4)
  const TptIndex c = tpt.alloc(2);  // [4,6)
  (void)a;
  (void)c;
  tpt.release(b, 2);
  EXPECT_EQ(tpt.alloc(4), kInvalidTptIndex);  // only holes of 2 remain
  EXPECT_NE(tpt.alloc(2), kInvalidTptIndex);
}

TEST(Tpt, ExtentIndexTracksFragmentation) {
  // The free list is an ordered extent map (DESIGN.md section 9): the hole
  // count and the largest run are O(extents) introspection, exported so
  // procfs and experiments can watch fragmentation directly.
  Tpt tpt(16);
  EXPECT_EQ(tpt.free_extent_count(), 1u);
  EXPECT_EQ(tpt.largest_free_run(), 16u);
  const TptIndex a = tpt.alloc(4);  // [0,4)
  const TptIndex b = tpt.alloc(4);  // [4,8)
  const TptIndex c = tpt.alloc(4);  // [8,12)
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 4u);
  EXPECT_EQ(c, 8u);
  EXPECT_EQ(tpt.free_extent_count(), 1u);  // only the tail [12,16)
  EXPECT_EQ(tpt.largest_free_run(), 4u);
  tpt.release(b, 4);  // two holes now: [4,8) and [12,16)
  EXPECT_EQ(tpt.free_extent_count(), 2u);
  EXPECT_EQ(tpt.largest_free_run(), 4u);
  tpt.release(c, 4);  // [4,16) coalesces into one hole
  EXPECT_EQ(tpt.free_extent_count(), 1u);
  EXPECT_EQ(tpt.largest_free_run(), 12u);
  EXPECT_EQ(tpt.alloc(4), 4u) << "first-fit lands in the lowest hole";
}

TEST(Tpt, TranslateComputesPfnAndOffset) {
  Tpt tpt(8);
  const TptIndex base = tpt.alloc(2);
  tpt.set(base, entry(0, 100, 7));
  tpt.set(base + 1, entry(1, 200, 7));
  const auto t0 = tpt.translate(base, 2, 10, 7, false, false);
  ASSERT_TRUE(t0.has_value());
  EXPECT_EQ(t0->pfn, 100u);
  EXPECT_EQ(t0->page_offset, 10u);
  const auto t1 = tpt.translate(base, 2, kPageSize + 20, 7, false, false);
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->pfn, 200u);
  EXPECT_EQ(t1->page_offset, 20u);
}

TEST(Tpt, TranslateRejectsOutOfRange) {
  Tpt tpt(8);
  const TptIndex base = tpt.alloc(2);
  tpt.set(base, entry(0, 100, 7));
  tpt.set(base + 1, entry(1, 200, 7));
  EXPECT_FALSE(tpt.translate(base, 2, 2 * kPageSize, 7, false, false));
}

TEST(Tpt, TranslateRejectsWrongTag) {
  Tpt tpt(8);
  const TptIndex base = tpt.alloc(1);
  tpt.set(base, entry(0, 100, 7));
  EXPECT_FALSE(tpt.translate(base, 1, 0, 8, false, false));
  EXPECT_TRUE(tpt.translate(base, 1, 0, 7, false, false));
}

TEST(Tpt, TranslateRejectsInvalidEntry) {
  Tpt tpt(8);
  const TptIndex base = tpt.alloc(1);
  EXPECT_FALSE(tpt.translate(base, 1, 0, 7, false, false));
}

TEST(Tpt, RdmaEnableBitsEnforced) {
  Tpt tpt(8);
  const TptIndex base = tpt.alloc(2);
  tpt.set(base, entry(0, 100, 7, /*w=*/false, /*r=*/true));
  tpt.set(base + 1, entry(1, 101, 7, /*w=*/true, /*r=*/false));
  EXPECT_FALSE(tpt.translate(base, 2, 0, 7, /*w=*/true, false));
  EXPECT_TRUE(tpt.translate(base, 2, 0, 7, false, /*r=*/true));
  EXPECT_TRUE(tpt.translate(base, 2, kPageSize, 7, /*w=*/true, false));
  EXPECT_FALSE(tpt.translate(base, 2, kPageSize, 7, false, /*r=*/true));
}

TEST(Tpt, ReleaseInvalidatesEntries) {
  Tpt tpt(8);
  const TptIndex base = tpt.alloc(1);
  tpt.set(base, entry(0, 100, 7));
  tpt.release(base, 1);
  const TptIndex again = tpt.alloc(1);
  ASSERT_EQ(again, base);  // first-fit reuses the slot
  EXPECT_FALSE(tpt.translate(again, 1, 0, 7, false, false))
      << "stale entry must not survive release";
}

}  // namespace
}  // namespace vialock::via
