// nic_batch_test.cc - burst submission through a single doorbell ring.
//
// The S1 regression: a doorbell drop injected mid-burst must cost exactly the
// descriptor whose fetch it covered. The seed checked the fault once for the
// whole post_send_batch and dropped every descriptor behind it, so one
// injected drop silently lost the healthy remainder of the burst - these
// tests fail on that code for every drop position (head, middle, tail).
// Also pins post_recv_batch: one doorbell arms the whole recv chain and the
// slots drain in posted order.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault.h"
#include "via_util.h"

namespace vialock::via {
namespace {

class NicBatchTest : public test::TwoNodeFixture {
 protected:
  /// Arm one rule cluster-wide; each arm() replaces the engine, restarting
  /// the per-site event counts.
  void arm(const fault::FaultRule& rule, std::uint64_t seed = 1) {
    fault::FaultPlan plan;
    plan.seed = seed;
    plan.add(rule);
    engine.emplace(std::move(plan), cluster->clock());
    cluster->inject_faults(&*engine);
  }

  /// Post a 3-descriptor send burst (cookies 1,2,3) with the doorbell-drop
  /// rule armed to eat descriptor `victim`, and assert only that descriptor
  /// is lost: the other two complete on both sides.
  void run_drop_at(std::uint64_t victim) {
    // Receive slots first - single post_recv has no fault hook, so the
    // armed NicDoorbell window starts exactly at the send burst.
    for (std::uint64_t i = 1; i <= 3; ++i)
      ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1 + (i - 1) * 64, 64, i)));

    arm({.site = fault::FaultSite::NicDoorbell,
         .action = fault::FaultAction::Drop,
         .probability = 1.0,
         .after_events = victim,
         .max_triggers = 1});
    const std::vector<Vipl::SendPost> burst = {
        {mh0, buf0 + 0 * 64, 64, 1},
        {mh0, buf0 + 1 * 64, 64, 2},
        {mh0, buf0 + 2 * 64, 64, 3},
    };
    ASSERT_TRUE(ok(v0->post_send_batch(vi0, burst)));

    const NicStats& s = cluster->node(n0).nic().stats();
    EXPECT_EQ(s.doorbells_dropped, 1u);
    EXPECT_EQ(s.doorbell_batches, 1u);
    EXPECT_EQ(s.sends_posted, 3u);  // posted counts the ring, not survival

    // Exactly the two survivors complete, in order, on the sender...
    const std::uint64_t victim_cookie = victim + 1;
    std::vector<std::uint64_t> sent;
    while (const auto d = v0->send_done(vi0)) {
      EXPECT_EQ(d->status, DescStatus::Done);
      sent.push_back(d->cookie);
    }
    ASSERT_EQ(sent.size(), 2u) << "drop at burst position " << victim;
    for (const std::uint64_t c : sent) EXPECT_NE(c, victim_cookie);

    // ...and on the receiver, which never sees the vanished descriptor.
    std::uint64_t received = 0;
    while (const auto d = v1->recv_done(vi1)) {
      EXPECT_EQ(d->status, DescStatus::Done);
      ++received;
    }
    EXPECT_EQ(received, 2u);
    cluster->inject_faults(nullptr);
  }

  std::optional<fault::FaultEngine> engine;
};

TEST_F(NicBatchTest, MidBurstDropLosesOnlyTheHeadDescriptor) { run_drop_at(0); }
TEST_F(NicBatchTest, MidBurstDropLosesOnlyTheMiddleDescriptor) { run_drop_at(1); }
TEST_F(NicBatchTest, MidBurstDropLosesOnlyTheTailDescriptor) { run_drop_at(2); }

TEST_F(NicBatchTest, RecvBatchArmsRingBehindOneDoorbell) {
  const NicStats& s1 = cluster->node(n1).nic().stats();
  const std::uint64_t doorbells_before = s1.doorbells;
  const std::uint64_t batches_before = s1.doorbell_batches;

  const std::vector<Vipl::RecvPost> ring = {
      {mh1, buf1 + 0 * 64, 64, 10},
      {mh1, buf1 + 1 * 64, 64, 11},
      {mh1, buf1 + 2 * 64, 64, 12},
  };
  ASSERT_TRUE(ok(v1->post_recv_batch(vi1, ring)));
  EXPECT_EQ(s1.doorbells, doorbells_before + 1);
  EXPECT_EQ(s1.doorbell_batches, batches_before + 1);
  EXPECT_EQ(s1.recvs_posted, 3u);

  // The batched slots drain in posted order as singles sends arrive.
  for (std::uint64_t i = 0; i < 3; ++i)
    ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0 + i * 64, 64, i)));
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto d = v1->recv_done(vi1);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->status, DescStatus::Done);
    EXPECT_EQ(d->cookie, 10 + i);
  }
  EXPECT_FALSE(v1->recv_done(vi1).has_value());
}

TEST_F(NicBatchTest, EmptyBatchesAreFreeNoops) {
  const NicStats& s = cluster->node(n0).nic().stats();
  ASSERT_TRUE(ok(v0->post_send_batch(vi0, {})));
  ASSERT_TRUE(ok(v0->post_recv_batch(vi0, {})));
  EXPECT_EQ(s.doorbells, 0u);
  EXPECT_EQ(s.doorbell_batches, 0u);
}

}  // namespace
}  // namespace vialock::via
