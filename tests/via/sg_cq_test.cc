// sg_cq_test.cc - scatter/gather descriptors and completion queues.
#include <gtest/gtest.h>

#include <vector>

#include "via_util.h"

namespace vialock::via {
namespace {

using simkern::kPageSize;
using test::peek64;
using test::poke64;
using test::TwoNodeFixture;

class SgCqTest : public TwoNodeFixture {};

TEST_F(SgCqTest, GatherSendFromThreeSegments) {
  // Three disjoint pieces of the sender buffer, delivered contiguously.
  ASSERT_TRUE(ok(poke64(kern0(), p0, buf0 + 0 * kPageSize, 0xAAAA)));
  ASSERT_TRUE(ok(poke64(kern0(), p0, buf0 + 4 * kPageSize, 0xBBBB)));
  ASSERT_TRUE(ok(poke64(kern0(), p0, buf0 + 8 * kPageSize, 0xCCCC)));
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 64)));
  ASSERT_TRUE(ok(v0->post_send_sg(
      vi0, {DataSegment{mh0, buf0 + 0 * kPageSize, 8},
            DataSegment{mh0, buf0 + 4 * kPageSize, 8},
            DataSegment{mh0, buf0 + 8 * kPageSize, 8}})));
  const auto sc = v0->send_done(vi0);
  ASSERT_TRUE(sc.has_value());
  ASSERT_EQ(sc->status, DescStatus::Done);
  EXPECT_EQ(sc->transferred, 24u);
  ASSERT_TRUE(v1->recv_done(vi1)->done_ok());
  EXPECT_EQ(peek64(kern1(), p1, buf1 + 0), 0xAAAAu);
  EXPECT_EQ(peek64(kern1(), p1, buf1 + 8), 0xBBBBu);
  EXPECT_EQ(peek64(kern1(), p1, buf1 + 16), 0xCCCCu);
}

TEST_F(SgCqTest, ScatterRecvAcrossSegments) {
  ASSERT_TRUE(ok(poke64(kern0(), p0, buf0 + 0, 0x1111)));
  ASSERT_TRUE(ok(poke64(kern0(), p0, buf0 + 8, 0x2222)));
  ASSERT_TRUE(ok(v1->post_recv_sg(
      vi1, {DataSegment{mh1, buf1 + 2 * kPageSize, 8},
            DataSegment{mh1, buf1 + 6 * kPageSize, 8}})));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 16)));
  ASSERT_TRUE(v0->send_done(vi0)->done_ok());
  ASSERT_TRUE(v1->recv_done(vi1)->done_ok());
  EXPECT_EQ(peek64(kern1(), p1, buf1 + 2 * kPageSize), 0x1111u);
  EXPECT_EQ(peek64(kern1(), p1, buf1 + 6 * kPageSize), 0x2222u);
}

TEST_F(SgCqTest, RecvLengthIsSumOfSegments) {
  // 40 bytes into 3 x 16-byte segments: fits (48 total).
  std::vector<std::byte> data(40);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i + 1);
  ASSERT_TRUE(ok(kern0().write_user(p0, buf0, data)));
  ASSERT_TRUE(ok(v1->post_recv_sg(vi1, {DataSegment{mh1, buf1, 16},
                                        DataSegment{mh1, buf1 + 100, 16},
                                        DataSegment{mh1, buf1 + 200, 16}})));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 40)));
  ASSERT_TRUE(v0->send_done(vi0)->done_ok());
  const auto rc = v1->recv_done(vi1);
  ASSERT_TRUE(rc->done_ok());
  EXPECT_EQ(rc->transferred, 40u);
  // Last segment only partially filled (8 of 16 bytes).
  std::vector<std::byte> out(8);
  ASSERT_TRUE(ok(kern1().read_user(p1, buf1 + 200, out)));
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(out[i], data[32 + i]) << "byte " << i;
}

TEST_F(SgCqTest, OverflowAcrossSegmentsIsLengthError) {
  ASSERT_TRUE(ok(v1->post_recv_sg(vi1, {DataSegment{mh1, buf1, 16},
                                        DataSegment{mh1, buf1 + 64, 16}})));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 64)));  // 64 > 32
  EXPECT_EQ(v0->send_done(vi0)->status, DescStatus::ErrLength);
}

TEST_F(SgCqTest, TooManySegmentsRejected) {
  std::vector<DataSegment> segs(Descriptor::kMaxSegments + 1,
                                DataSegment{mh0, buf0, 8});
  EXPECT_EQ(v0->post_send_sg(vi0, segs), KStatus::Inval);
}

TEST_F(SgCqTest, SegmentProtectionCheckedIndividually) {
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 64)));
  // Second segment points outside the registered range.
  ASSERT_TRUE(ok(v0->post_send_sg(
      vi0, {DataSegment{mh0, buf0, 8},
            DataSegment{mh0, buf0 + kBufPages * kPageSize, 8}})));
  EXPECT_EQ(v0->send_done(vi0)->status, DescStatus::ErrProtection);
}

TEST_F(SgCqTest, CompletionQueueCollectsAcrossVis) {
  // Two VI pairs share one CQ on the receiver side.
  ViId vi0b = kInvalidVi;
  ViId vi1b = kInvalidVi;
  ASSERT_TRUE(ok(v0->create_vi(vi0b)));
  ASSERT_TRUE(ok(v1->create_vi(vi1b)));
  ASSERT_TRUE(ok(cluster->fabric().connect(n0, vi0b, n1, vi1b)));

  const CqId cq = v1->create_cq();
  ASSERT_TRUE(ok(v1->attach_recv_cq(vi1, cq)));
  ASSERT_TRUE(ok(v1->attach_recv_cq(vi1b, cq)));

  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 64, /*cookie=*/1)));
  ASSERT_TRUE(ok(v1->post_recv(vi1b, mh1, buf1 + 128, 64, /*cookie=*/2)));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 32)));
  ASSERT_TRUE(ok(v0->post_send(vi0b, mh0, buf0, 32)));

  const auto e1 = v1->cq_done(cq);
  const auto e2 = v1->cq_done(cq);
  ASSERT_TRUE(e1.has_value());
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e1->vi, vi1);
  EXPECT_EQ(e1->desc.cookie, 1u);
  EXPECT_EQ(e2->vi, vi1b);
  EXPECT_EQ(e2->desc.cookie, 2u);
  EXPECT_FALSE(e1->is_send);
  // Per-VI queues stay empty when a CQ is attached.
  EXPECT_FALSE(v1->recv_done(vi1).has_value());
  EXPECT_FALSE(v1->cq_done(cq).has_value());
}

TEST_F(SgCqTest, SendCompletionsRouteToSendCq) {
  const CqId cq = v0->create_cq();
  ASSERT_TRUE(ok(v0->attach_send_cq(vi0, cq)));
  ASSERT_TRUE(ok(v1->post_recv(vi1, mh1, buf1, 64)));
  ASSERT_TRUE(ok(v0->post_send(vi0, mh0, buf0, 16, /*cookie=*/77)));
  EXPECT_FALSE(v0->send_done(vi0).has_value());
  const auto e = v0->cq_done(cq);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->is_send);
  EXPECT_EQ(e->desc.cookie, 77u);
  EXPECT_TRUE(e->desc.done_ok());
}

TEST_F(SgCqTest, CqMisuseIsRejected) {
  EXPECT_EQ(v1->attach_recv_cq(vi1, /*cq=*/999), KStatus::Inval);
  EXPECT_EQ(v1->attach_send_cq(9999, 0), KStatus::Inval);
  EXPECT_FALSE(v1->cq_done(/*cq=*/999).has_value());
  const CqId cq = v1->create_cq();
  EXPECT_FALSE(v1->cq_done(cq).has_value()) << "fresh CQ is empty";
}

TEST_F(SgCqTest, RdmaReadIntoScatterSegments) {
  ASSERT_TRUE(ok(poke64(kern1(), p1, buf1, 0x9999)));
  ASSERT_TRUE(ok(poke64(kern1(), p1, buf1 + 8, 0x8888)));
  Descriptor d;
  d.op = DescOp::RdmaRead;
  d.local = DataSegment{mh0, buf0 + kPageSize, 8};
  d.extra = {DataSegment{mh0, buf0 + 3 * kPageSize, 8}};
  d.remote = RemoteSegment{mh1, buf1};
  ASSERT_TRUE(ok(cluster->node(n0).nic().post_send(vi0, std::move(d))));
  ASSERT_TRUE(v0->send_done(vi0)->done_ok());
  EXPECT_EQ(peek64(kern0(), p0, buf0 + kPageSize), 0x9999u);
  EXPECT_EQ(peek64(kern0(), p0, buf0 + 3 * kPageSize), 0x8888u);
}

}  // namespace
}  // namespace vialock::via
