// superpage_differential_test.cc - S4: superpages are a pure representation
// change. The same E5/E8-style workloads run on an order-0 cluster (classic
// one-entry-per-page TPT) and an order-9 cluster must produce bit-identical
// transfer outcomes - every fetched payload, every protocol counter, every
// wire byte count - while the TPT programming itself (entries written) is
// allowed, and expected, to shrink. Divergence in any outcome scalar means
// translate() or the registration path leaks the representation into
// behaviour.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../via/via_util.h"
#include "msg/transport.h"
#include "util/rng.h"

namespace vialock::msg {
namespace {

using simkern::kPageSize;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xFF);
  return out;
}

/// Everything a run may not change when only the TPT representation does.
struct Outcome {
  std::vector<std::byte> fetched;  ///< all received payloads, concatenated
  std::uint64_t eager_msgs = 0;
  std::uint64_t rendezvous_msgs = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t control_msgs = 0;
  std::uint64_t nic_bytes_tx[2] = {0, 0};
  std::uint64_t nic_sends_posted[2] = {0, 0};
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  bool operator==(const Outcome&) const = default;
};

/// Representation-dependent scalars, reported for the inequality checks.
struct Representation {
  std::uint64_t tpt_writes[2] = {0, 0};
  std::uint64_t tpt_used[2] = {0, 0};
};

void run_workloads(std::uint8_t max_order, Outcome& out, Representation& rep) {
  via::Cluster cluster;
  auto spec = test::small_node(via::PolicyKind::Kiobuf, /*frames=*/2048,
                               /*tpt_entries=*/2048);
  spec.nic.max_superpage_order = max_order;
  const auto a = cluster.add_node(spec);
  const auto b = cluster.add_node(spec);
  Channel::Config cfg;
  cfg.user_heap_bytes = 1ULL << 20;
  cfg.preregister_heaps = true;
  Channel channel(cluster, a, b, cfg);
  ASSERT_TRUE(ok(channel.init()));

  // E8-like: fixed-buffer eager pingpong - the cached fast path.
  for (std::uint32_t i = 0; i < 16; ++i) {
    const auto payload = pattern(1024 + i * 13, 1000 + i);
    ASSERT_TRUE(ok(channel.stage(0, payload)));
    ASSERT_TRUE(ok(channel.transfer(
        Protocol::Eager, 0, 0, static_cast<std::uint32_t>(payload.size()))));
    std::vector<std::byte> got(payload.size());
    ASSERT_TRUE(ok(channel.fetch(0, got)));
    ASSERT_EQ(got, payload) << "eager iteration " << i;
    out.fetched.insert(out.fetched.end(), got.begin(), got.end());
  }

  // E5-like: rendezvous with shifting offsets - every transfer lands on a
  // different multi-page range, churning dynamic registration.
  for (std::uint32_t i = 0; i < 8; ++i) {
    const std::uint32_t len = 32 * 1024 + i * 512;
    const std::uint64_t src = (i * 37) * kPageSize / 4;
    const std::uint64_t dst = (i * 53) * kPageSize / 4;
    const auto payload = pattern(len, 2000 + i);
    ASSERT_TRUE(ok(channel.stage(src, payload)));
    ASSERT_TRUE(ok(channel.transfer(Protocol::Rendezvous, src, dst, len)));
    std::vector<std::byte> got(len);
    ASSERT_TRUE(ok(channel.fetch(dst, got)));
    ASSERT_EQ(got, payload) << "rendezvous iteration " << i;
    out.fetched.insert(out.fetched.end(), got.begin(), got.end());
  }

  const ChannelStats& cs = channel.stats();
  out.eager_msgs = cs.eager_msgs;
  out.rendezvous_msgs = cs.rendezvous_msgs;
  out.bytes_moved = cs.bytes_moved;
  out.control_msgs = cs.control_msgs;
  out.cache_hits = channel.sender_cache_stats().hits +
                   channel.receiver_cache_stats().hits;
  out.cache_misses = channel.sender_cache_stats().misses +
                     channel.receiver_cache_stats().misses;
  const via::NodeId ids[2] = {a, b};
  for (int n = 0; n < 2; ++n) {
    const via::NicStats& ns = cluster.node(ids[n]).nic().stats();
    out.nic_bytes_tx[n] = ns.bytes_tx;
    out.nic_sends_posted[n] = ns.sends_posted;
    rep.tpt_writes[n] = ns.tpt_writes;
    rep.tpt_used[n] = cluster.node(ids[n]).nic().tpt().used();
    EXPECT_TRUE(cluster.node(ids[n]).kernel().self_check().empty());
  }
}

TEST(SuperpageDifferential, OutcomesAreBitIdenticalAcrossOrders) {
  Outcome order0, order9;
  Representation rep0, rep9;
  run_workloads(0, order0, rep0);
  run_workloads(9, order9, rep9);

  // The workload genuinely exercised both protocols and the dynamic path.
  EXPECT_EQ(order0.eager_msgs, 16u);
  EXPECT_EQ(order0.rendezvous_msgs, 8u);
  EXPECT_GT(order0.cache_misses, 0u);
  EXPECT_FALSE(order0.fetched.empty());

  // The tentpole invariant: nothing observable changed.
  EXPECT_TRUE(order0 == order9)
      << "superpages must be invisible to transfer outcomes";

  // ...while the representation did: the order-9 run programmed strictly
  // fewer TPT entries (the 256-page preregistered heaps alone collapse from
  // hundreds of entries to a handful).
  for (int n = 0; n < 2; ++n) {
    EXPECT_LT(rep9.tpt_writes[n], rep0.tpt_writes[n]) << "node " << n;
    EXPECT_LT(rep9.tpt_used[n], rep0.tpt_used[n]) << "node " << n;
  }
}

TEST(SuperpageDifferential, SameSeedSameOrderIsByteIdentical) {
  // Within one configuration the run is exactly reproducible - the
  // determinism contract the benchmarks' double-run cmp gate relies on.
  Outcome x, y;
  Representation rx, ry;
  run_workloads(9, x, rx);
  run_workloads(9, y, ry);
  EXPECT_TRUE(x == y);
  EXPECT_EQ(rx.tpt_writes[0], ry.tpt_writes[0]);
  EXPECT_EQ(rx.tpt_writes[1], ry.tpt_writes[1]);
}

}  // namespace
}  // namespace vialock::msg
