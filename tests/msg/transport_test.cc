// transport_test.cc - eager / rendezvous / preregistered protocols: data
// integrity, protocol mechanics, cache amortisation.
#include "msg/transport.h"

#include <gtest/gtest.h>

#include <vector>

#include "../via/via_util.h"
#include "util/rng.h"

namespace vialock::msg {
namespace {

using simkern::kPageSize;

struct ChannelBox {
  explicit ChannelBox(Channel::Config cfg = default_config())
      : a(cluster.add_node(test::small_node(via::PolicyKind::Kiobuf,
                                            /*frames=*/2048,
                                            /*tpt_entries=*/2048))),
        b(cluster.add_node(test::small_node(via::PolicyKind::Kiobuf,
                                            /*frames=*/2048,
                                            /*tpt_entries=*/2048))),
        channel(cluster, a, b, cfg) {
    EXPECT_TRUE(ok(channel.init()));
  }

  static Channel::Config default_config() {
    Channel::Config cfg;
    cfg.user_heap_bytes = 1ULL << 20;  // 1 MB heaps keep the test light
    cfg.preregister_heaps = true;
    return cfg;
  }

  via::Cluster cluster;
  via::NodeId a;
  via::NodeId b;
  Channel channel;
};

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xFF);
  return out;
}

class TransportProtocolTest
    : public ::testing::TestWithParam<std::tuple<Protocol, std::uint32_t>> {};

TEST_P(TransportProtocolTest, RoundTripPreservesData) {
  const auto [proto, len] = GetParam();
  ChannelBox box;
  const auto payload = pattern(len, 42 + len);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  ASSERT_TRUE(ok(box.channel.transfer(proto, 0, 128, len)));
  std::vector<std::byte> out(len);
  ASSERT_TRUE(ok(box.channel.fetch(128, out)));
  EXPECT_EQ(payload, out);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TransportProtocolTest,
    ::testing::Combine(::testing::Values(Protocol::Eager, Protocol::Rendezvous,
                                         Protocol::Preregistered,
                                         Protocol::PioRendezvous),
                       ::testing::Values(1u, 64u, 1024u, 4096u, 8192u)),
    [](const auto& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) +
                         "_" + std::to_string(std::get<1>(info.param)) + "B";
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Transport, PioRendezvousCachesTheImport) {
  ChannelBox box;
  const auto payload = pattern(32 * 1024, 11);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        ok(box.channel.transfer(Protocol::PioRendezvous, 0, 0, 32 * 1024)));
  }
  std::vector<std::byte> out(payload.size());
  ASSERT_TRUE(ok(box.channel.fetch(0, out)));
  EXPECT_EQ(payload, out);
  EXPECT_EQ(box.channel.stats().pio_msgs, 5u);
  EXPECT_EQ(box.channel.stats().window_imports, 1u)
      << "the imported window must be reused across transfers";
  EXPECT_EQ(box.channel.sender_cache_stats().registrations, 0u)
      << "figure 5's point: NO sender-side registration";
}

TEST(Transport, PioRendezvousNeedsNoSenderRegistration) {
  // Large message crossing many pages, sender heap never registered.
  ChannelBox box;
  const auto payload = pattern(300 * 1024, 12);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  ASSERT_TRUE(
      ok(box.channel.transfer(Protocol::PioRendezvous, 0, 0, 300 * 1024)));
  std::vector<std::byte> out(payload.size());
  ASSERT_TRUE(ok(box.channel.fetch(0, out)));
  EXPECT_EQ(payload, out);
}

TEST(Transport, EagerRejectsOversizedMessages) {
  ChannelBox box;
  EXPECT_EQ(box.channel.transfer(Protocol::Eager, 0, 0, 64 * 1024),
            KStatus::Inval);
}

TEST(Transport, LargeRendezvousSpansManyPages) {
  ChannelBox box;
  constexpr std::uint32_t kLen = 256 * 1024;
  const auto payload = pattern(kLen, 7);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Rendezvous, 0, 0, kLen)));
  std::vector<std::byte> out(kLen);
  ASSERT_TRUE(ok(box.channel.fetch(0, out)));
  EXPECT_EQ(payload, out);
}

TEST(Transport, BackToBackMessagesKeepOrderAndContent) {
  ChannelBox box;
  for (std::uint32_t i = 0; i < 20; ++i) {
    const auto payload = pattern(512 + i * 37, i);
    ASSERT_TRUE(ok(box.channel.stage(0, payload)));
    ASSERT_TRUE(ok(box.channel.transfer_auto(
        0, 0, static_cast<std::uint32_t>(payload.size()))));
    std::vector<std::byte> out(payload.size());
    ASSERT_TRUE(ok(box.channel.fetch(0, out)));
    ASSERT_EQ(payload, out) << "message " << i;
  }
}

TEST(Transport, AutoSwitchesProtocolAtThreshold) {
  ChannelBox box;
  const auto small = pattern(100, 1);
  ASSERT_TRUE(ok(box.channel.stage(0, small)));
  ASSERT_TRUE(ok(box.channel.transfer_auto(0, 0, 100)));
  EXPECT_EQ(box.channel.stats().eager_msgs, 1u);
  EXPECT_EQ(box.channel.stats().rendezvous_msgs, 0u);
  const auto big = pattern(16 * 1024, 2);
  ASSERT_TRUE(ok(box.channel.stage(0, big)));
  ASSERT_TRUE(ok(box.channel.transfer_auto(0, 0, 16 * 1024)));
  EXPECT_EQ(box.channel.stats().rendezvous_msgs, 1u);
}

TEST(Transport, RendezvousReusesCachedRegistrations) {
  ChannelBox box;
  const auto payload = pattern(32 * 1024, 3);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ok(box.channel.transfer(Protocol::Rendezvous, 0, 0,
                                        32 * 1024)));
  }
  // Same buffers every time: 1 miss, 9 hits per side.
  EXPECT_EQ(box.channel.sender_cache_stats().misses, 1u);
  EXPECT_EQ(box.channel.sender_cache_stats().hits, 9u);
  EXPECT_EQ(box.channel.receiver_cache_stats().misses, 1u);
  EXPECT_EQ(box.channel.receiver_cache_stats().hits, 9u);
}

TEST(Transport, RendezvousRotatingBuffersMissesWithoutReuse) {
  ChannelBox box;
  const auto payload = pattern(16 * 1024, 4);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t off = static_cast<std::uint64_t>(i) * 64 * 1024;
    ASSERT_TRUE(ok(box.channel.stage(off, payload)));
    ASSERT_TRUE(
        ok(box.channel.transfer(Protocol::Rendezvous, off, off, 16 * 1024)));
  }
  EXPECT_EQ(box.channel.sender_cache_stats().misses, 8u);
  EXPECT_EQ(box.channel.sender_cache_stats().hits, 0u);
}

TEST(Transport, PreregisteredIsFasterThanColdRendezvous) {
  ChannelBox box;
  constexpr std::uint32_t kLen = 64 * 1024;
  const auto payload = pattern(kLen, 5);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));

  Clock& clock = box.cluster.clock();
  const Nanos t0 = clock.now();
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Rendezvous, 0, 0, kLen)));
  const Nanos rndz_cold = clock.now() - t0;

  const Nanos t1 = clock.now();
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Preregistered, 0, 0, kLen)));
  const Nanos prereg = clock.now() - t1;

  EXPECT_LT(prereg, rndz_cold)
      << "registration cost must show up on the cold rendezvous path";
}

TEST(Transport, WarmRendezvousApproachesPreregistered) {
  ChannelBox box;
  constexpr std::uint32_t kLen = 64 * 1024;
  const auto payload = pattern(kLen, 6);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Rendezvous, 0, 0, kLen)));

  Clock& clock = box.cluster.clock();
  const Nanos t0 = clock.now();
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Rendezvous, 0, 0, kLen)));
  const Nanos rndz_warm = clock.now() - t0;

  const Nanos t1 = clock.now();
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Preregistered, 0, 0, kLen)));
  const Nanos prereg = clock.now() - t1;

  // Warm rendezvous pays only the two control messages extra; it must be
  // within 2x of the pure-RDMA path at this size.
  EXPECT_LT(rndz_warm, prereg * 2);
}

/// Property: any interleaving of protocols, sizes and offsets preserves
/// every payload bit-exactly.
class TransportFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransportFuzz, RandomProtocolMixKeepsDataIntact) {
  ChannelBox box;
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const int pick = static_cast<int>(rng.below(4));
    const Protocol proto = pick == 0   ? Protocol::Eager
                           : pick == 1 ? Protocol::Rendezvous
                           : pick == 2 ? Protocol::Preregistered
                                       : Protocol::PioRendezvous;
    const std::uint32_t max_len =
        proto == Protocol::Eager ? 8000u : 100'000u;
    const auto len = static_cast<std::uint32_t>(rng.between(1, max_len));
    const std::uint64_t src_off = rng.below(8) * 4096;
    const std::uint64_t dst_off = rng.below(8) * 4096;
    const auto payload = pattern(len, 9000 + i);
    ASSERT_TRUE(ok(box.channel.stage(src_off, payload))) << i;
    ASSERT_TRUE(ok(box.channel.transfer(proto, src_off, dst_off, len)))
        << i << " proto " << to_string(proto) << " len " << len;
    std::vector<std::byte> out(len);
    ASSERT_TRUE(ok(box.channel.fetch(dst_off, out))) << i;
    ASSERT_EQ(out, payload) << i << " proto " << to_string(proto);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportFuzz,
                         ::testing::Values(5, 77, 901, 424242));

TEST(Transport, EagerBeatsRendezvousForTinyMessages) {
  ChannelBox box;
  const auto payload = pattern(64, 8);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  Clock& clock = box.cluster.clock();

  // Warm both paths first.
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Eager, 0, 0, 64)));
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Rendezvous, 0, 0, 64)));

  const Nanos t0 = clock.now();
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Eager, 0, 0, 64)));
  const Nanos eager = clock.now() - t0;
  const Nanos t1 = clock.now();
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Rendezvous, 0, 0, 64)));
  const Nanos rndz = clock.now() - t1;
  EXPECT_LT(eager, rndz) << "64 B: copy beats control-message round trip";
}

// ---------------------------------------------------------------------------
// Reliable-delivery mode under injected faults
// ---------------------------------------------------------------------------

/// A channel in reliable mode plus a fault engine armed on the whole
/// cluster. Faults are armed *after* init() so channel setup (registration,
/// connect) never consumes fault events - every test sees event 0 as its
/// first transfer's first wire crossing.
struct ReliableBox {
  explicit ReliableBox(const fault::FaultPlan& plan,
                       Channel::Config cfg = reliable_config())
      : engine(plan, cluster.clock()),
        a(cluster.add_node(test::small_node(via::PolicyKind::Kiobuf,
                                            /*frames=*/2048,
                                            /*tpt_entries=*/2048))),
        b(cluster.add_node(test::small_node(via::PolicyKind::Kiobuf,
                                            /*frames=*/2048,
                                            /*tpt_entries=*/2048))),
        channel(cluster, a, b, cfg) {
    EXPECT_TRUE(ok(channel.init()));
    cluster.inject_faults(&engine);
  }

  static Channel::Config reliable_config() {
    Channel::Config cfg = ChannelBox::default_config();
    cfg.reliability.enabled = true;
    cfg.reliability.max_retries = 6;
    return cfg;
  }

  via::Cluster cluster;
  fault::FaultEngine engine;
  via::NodeId a;
  via::NodeId b;
  Channel channel;
};

TEST(ReliableTransport, WireDropIsRetriedToSuccess) {
  fault::FaultPlan plan;
  plan.add({.site = fault::FaultSite::Wire,
            .action = fault::FaultAction::Drop,
            .max_triggers = 2});
  ReliableBox box(plan);
  const auto payload = pattern(512, 3);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Eager, 0, 64, 512)));
  std::vector<std::byte> out(512);
  ASSERT_TRUE(ok(box.channel.fetch(64, out)));
  EXPECT_EQ(payload, out);
  EXPECT_EQ(box.channel.stats().retries, 2u);
  EXPECT_GE(box.channel.stats().send_timeouts, 2u);
  EXPECT_EQ(box.channel.stats().eager_msgs, 1u);
}

TEST(ReliableTransport, ExhaustedRetriesReturnTimedOut) {
  fault::FaultPlan plan;
  plan.add({.site = fault::FaultSite::Wire,
            .action = fault::FaultAction::Drop});  // every packet, forever
  ReliableBox box(plan);
  const auto payload = pattern(256, 4);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  EXPECT_EQ(box.channel.transfer(Protocol::Eager, 0, 0, 256),
            KStatus::TimedOut);
  EXPECT_EQ(box.channel.stats().retries,
            box.channel.config().reliability.max_retries);
  EXPECT_EQ(box.channel.stats().eager_msgs, 0u);
}

TEST(ReliableTransport, ReplayedFrameIsDeduplicated) {
  // Event 0 (the data frame) passes; event 1 (its ack) is dropped. The
  // sender must retransmit, and the receiver must re-ack without delivering
  // the payload twice.
  fault::FaultPlan plan;
  plan.add({.site = fault::FaultSite::Wire,
            .action = fault::FaultAction::Drop,
            .after_events = 1,
            .max_triggers = 1});
  ReliableBox box(plan);
  const auto payload = pattern(128, 5);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Eager, 0, 0, 128)));
  std::vector<std::byte> out(128);
  ASSERT_TRUE(ok(box.channel.fetch(0, out)));
  EXPECT_EQ(payload, out);
  EXPECT_EQ(box.channel.stats().dup_frames_dropped, 1u);
  EXPECT_EQ(box.channel.stats().retries, 1u);
}

TEST(ReliableTransport, DmaCorruptionIsCaughtByChecksum) {
  fault::FaultPlan plan;
  plan.add({.site = fault::FaultSite::NicDma,
            .action = fault::FaultAction::Corrupt,
            .max_triggers = 1});
  ReliableBox box(plan);
  const auto payload = pattern(1024, 6);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Eager, 0, 0, 1024)));
  std::vector<std::byte> out(1024);
  ASSERT_TRUE(ok(box.channel.fetch(0, out)));
  EXPECT_EQ(payload, out) << "the corrupted copy must never be delivered";
  EXPECT_GE(box.channel.stats().corruptions_detected, 1u);
  EXPECT_GE(box.channel.stats().retries, 1u);
}

TEST(ReliableTransport, DoorbellDropIsCaughtByTimeout) {
  fault::FaultPlan plan;
  plan.add({.site = fault::FaultSite::NicDoorbell,
            .action = fault::FaultAction::Drop,
            .max_triggers = 1});
  ReliableBox box(plan);
  const auto payload = pattern(64, 7);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Eager, 0, 0, 64)));
  std::vector<std::byte> out(64);
  ASSERT_TRUE(ok(box.channel.fetch(0, out)));
  EXPECT_EQ(payload, out);
  EXPECT_GE(box.channel.stats().send_timeouts, 1u);
  EXPECT_GE(box.channel.stats().retries, 1u);
}

TEST(ReliableTransport, ConnectionResetIsRepaired) {
  fault::FaultPlan plan;
  plan.add({.site = fault::FaultSite::Connection,
            .action = fault::FaultAction::Fail,
            .max_triggers = 1});
  ReliableBox box(plan);
  const auto payload = pattern(256, 8);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Eager, 0, 0, 256)));
  std::vector<std::byte> out(256);
  ASSERT_TRUE(ok(box.channel.fetch(0, out)));
  EXPECT_EQ(payload, out);
  EXPECT_GE(box.channel.stats().conn_repairs, 1u);
}

TEST(ReliableTransport, RendezvousSurvivesMixedFaults) {
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.add({.site = fault::FaultSite::Wire,
            .action = fault::FaultAction::Drop,
            .probability = 0.2,
            .max_triggers = 8});
  plan.add({.site = fault::FaultSite::NicDma,
            .action = fault::FaultAction::Corrupt,
            .probability = 0.2,
            .max_triggers = 4});
  ReliableBox box(plan);
  const auto payload = pattern(32 * 1024, 9);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  ASSERT_TRUE(ok(box.channel.transfer(Protocol::Rendezvous, 0, 4096,
                                      32 * 1024)));
  std::vector<std::byte> out(32 * 1024);
  ASSERT_TRUE(ok(box.channel.fetch(4096, out)));
  EXPECT_EQ(payload, out);
}

TEST(ReliableTransport, UnreliableChannelBreaksWhereReliableSucceeds) {
  // The control: the same single wire drop that reliable mode absorbs makes
  // a plain channel fail its transfer outright.
  fault::FaultPlan plan;
  plan.add({.site = fault::FaultSite::Wire,
            .action = fault::FaultAction::Drop,
            .max_triggers = 1});
  Channel::Config cfg = ChannelBox::default_config();  // reliability off
  ReliableBox box(plan, cfg);
  const auto payload = pattern(128, 10);
  ASSERT_TRUE(ok(box.channel.stage(0, payload)));
  EXPECT_FALSE(ok(box.channel.transfer(Protocol::Eager, 0, 0, 128)));
}

TEST(ReliableTransport, SameSeedRunsAreIdentical) {
  const auto run = [] {
    fault::FaultPlan plan;
    plan.seed = 77;
    plan.add({.site = fault::FaultSite::Wire,
              .action = fault::FaultAction::Drop,
              .probability = 0.3});
    plan.add({.site = fault::FaultSite::NicDma,
              .action = fault::FaultAction::Corrupt,
              .probability = 0.1});
    ReliableBox box(plan);
    const auto payload = pattern(2048, 12);
    EXPECT_TRUE(ok(box.channel.stage(0, payload)));
    for (int i = 0; i < 8; ++i)
      (void)box.channel.transfer(Protocol::Eager, 0, 0, 2048);
    return std::make_tuple(box.engine.schedule_string(),
                           box.channel.stats().retries,
                           box.channel.stats().corruptions_detected,
                           box.cluster.clock().now());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace vialock::msg
