// mesh_test.cc - N-rank collectives over the VIA substrate.
#include "msg/mesh.h"

#include <gtest/gtest.h>

#include <vector>

#include "../via/via_util.h"
#include "util/rng.h"

namespace vialock::msg {
namespace {

using simkern::kPageSize;

struct MeshBox {
  explicit MeshBox(std::uint32_t ranks = 4) {
    std::vector<via::NodeId> nodes;
    for (std::uint32_t i = 0; i < ranks; ++i) {
      nodes.push_back(cluster.add_node(test::small_node(
          via::PolicyKind::Kiobuf, /*frames=*/2048, /*tpt_entries=*/2048)));
    }
    Mesh::Config cfg;
    cfg.channel.user_heap_bytes = 256 * 1024;
    cfg.rank_heap_bytes = 1ULL << 20;
    mesh = std::make_unique<Mesh>(cluster, nodes, cfg);
    EXPECT_TRUE(ok(mesh->init()));
  }
  via::Cluster cluster;
  std::unique_ptr<Mesh> mesh;
};

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xFF);
  return out;
}

TEST(Mesh, PointToPointMovesRankData) {
  MeshBox box(3);
  const auto payload = pattern(10'000, 1);
  ASSERT_TRUE(ok(box.mesh->stage_rank(0, 64, payload)));
  ASSERT_TRUE(ok(box.mesh->send(0, 2, 64,
                                static_cast<std::uint32_t>(payload.size()))));
  std::vector<std::byte> out(payload.size());
  ASSERT_TRUE(ok(box.mesh->fetch_rank(2, 64, out)));
  EXPECT_EQ(payload, out);
  EXPECT_EQ(box.mesh->stats().p2p_msgs, 1u);
}

TEST(Mesh, BroadcastReachesEveryRank) {
  MeshBox box(4);
  const auto payload = pattern(20'000, 2);
  ASSERT_TRUE(ok(box.mesh->stage_rank(1, 0, payload)));
  ASSERT_TRUE(ok(box.mesh->broadcast(
      /*root=*/1, 0, static_cast<std::uint32_t>(payload.size()))));
  for (Mesh::Rank r = 0; r < 4; ++r) {
    std::vector<std::byte> out(payload.size());
    ASSERT_TRUE(ok(box.mesh->fetch_rank(r, 0, out)));
    EXPECT_EQ(payload, out) << "rank " << r;
  }
}

TEST(Mesh, BroadcastFromEveryRootWorks) {
  MeshBox box(3);
  for (Mesh::Rank root = 0; root < 3; ++root) {
    const auto payload = pattern(512, 100 + root);
    ASSERT_TRUE(ok(box.mesh->stage_rank(root, 0, payload)));
    ASSERT_TRUE(ok(box.mesh->broadcast(root, 0, 512)));
    for (Mesh::Rank r = 0; r < 3; ++r) {
      std::vector<std::byte> out(512);
      ASSERT_TRUE(ok(box.mesh->fetch_rank(r, 0, out)));
      EXPECT_EQ(payload, out) << "root " << root << " rank " << r;
    }
  }
}

TEST(Mesh, BinomialBroadcastUsesLogRounds) {
  // 4 ranks: binomial tree = 3 messages (1 + 2), not N-1 rounds of N.
  MeshBox box(4);
  const auto payload = pattern(256, 3);
  ASSERT_TRUE(ok(box.mesh->stage_rank(0, 0, payload)));
  const auto msgs_before = box.mesh->stats().p2p_msgs;
  ASSERT_TRUE(ok(box.mesh->broadcast(0, 0, 256)));
  EXPECT_EQ(box.mesh->stats().p2p_msgs - msgs_before, 3u);
}

TEST(Mesh, AllreduceSumsAcrossRanks) {
  MeshBox box(4);
  constexpr std::uint32_t kCount = 16;
  std::array<std::uint64_t, kCount> expect{};
  for (Mesh::Rank r = 0; r < 4; ++r) {
    std::array<std::uint64_t, kCount> vals;
    for (std::uint32_t i = 0; i < kCount; ++i) {
      vals[i] = (r + 1) * 1000 + i;
      expect[i] += vals[i];
    }
    ASSERT_TRUE(ok(box.mesh->stage_rank(r, 0, std::as_bytes(std::span{vals}))));
  }
  ASSERT_TRUE(ok(box.mesh->allreduce_sum(0, kCount)));
  for (Mesh::Rank r = 0; r < 4; ++r) {
    std::array<std::uint64_t, kCount> got{};
    ASSERT_TRUE(ok(box.mesh->fetch_rank(
        r, 0, std::as_writable_bytes(std::span{got}))));
    EXPECT_EQ(got, expect) << "rank " << r;
  }
}

TEST(Mesh, AllreduceWithNonPowerOfTwoRanks) {
  MeshBox box(3);
  std::uint64_t expect = 0;
  for (Mesh::Rank r = 0; r < 3; ++r) {
    const std::uint64_t v = 7 + r * 11;
    expect += v;
    ASSERT_TRUE(ok(box.mesh->stage_rank(r, 0, test::bytes_of(v))));
  }
  ASSERT_TRUE(ok(box.mesh->allreduce_sum(0, 1)));
  for (Mesh::Rank r = 0; r < 3; ++r) {
    std::uint64_t got = 0;
    ASSERT_TRUE(ok(box.mesh->fetch_rank(
        r, 0, std::as_writable_bytes(std::span{&got, 1}))));
    EXPECT_EQ(got, expect) << "rank " << r;
  }
}

TEST(Mesh, AlltoallTransposesBlocks) {
  MeshBox box(3);
  constexpr std::uint32_t kBlock = 4096;
  // Block j of rank i carries the marker (i, j).
  for (Mesh::Rank i = 0; i < 3; ++i) {
    for (Mesh::Rank j = 0; j < 3; ++j) {
      const std::uint64_t marker = 0xB0000000ULL + i * 100 + j;
      ASSERT_TRUE(ok(box.mesh->stage_rank(
          i, static_cast<std::uint64_t>(j) * kBlock, test::bytes_of(marker))));
    }
  }
  ASSERT_TRUE(ok(box.mesh->alltoall(0, kBlock)));
  for (Mesh::Rank j = 0; j < 3; ++j) {
    for (Mesh::Rank i = 0; i < 3; ++i) {
      std::uint64_t got = 0;
      ASSERT_TRUE(ok(box.mesh->fetch_rank(
          j, static_cast<std::uint64_t>(i) * kBlock,
          std::as_writable_bytes(std::span{&got, 1}))));
      EXPECT_EQ(got, 0xB0000000ULL + i * 100 + j)
          << "rank " << j << " block " << i;
    }
  }
}

TEST(Mesh, AlltoallWithTwoRanks) {
  MeshBox box(2);
  for (Mesh::Rank i = 0; i < 2; ++i) {
    for (Mesh::Rank j = 0; j < 2; ++j) {
      const std::uint64_t marker = 0xAA00 + i * 16 + j;
      ASSERT_TRUE(ok(box.mesh->stage_rank(
          i, static_cast<std::uint64_t>(j) * 4096, test::bytes_of(marker))));
    }
  }
  ASSERT_TRUE(ok(box.mesh->alltoall(0, 4096)));
  for (Mesh::Rank j = 0; j < 2; ++j) {
    for (Mesh::Rank i = 0; i < 2; ++i) {
      std::uint64_t got = 0;
      ASSERT_TRUE(ok(box.mesh->fetch_rank(
          j, static_cast<std::uint64_t>(i) * 4096,
          std::as_writable_bytes(std::span{&got, 1}))));
      EXPECT_EQ(got, 0xAA00u + i * 16 + j);
    }
  }
}

TEST(Mesh, LargeBroadcastUsesRendezvousPath) {
  MeshBox box(3);
  const auto payload = pattern(100'000, 77);  // > eager threshold
  ASSERT_TRUE(ok(box.mesh->stage_rank(0, 0, payload)));
  ASSERT_TRUE(ok(box.mesh->broadcast(0, 0, 100'000)));
  for (Mesh::Rank r = 1; r < 3; ++r) {
    std::vector<std::byte> out(payload.size());
    ASSERT_TRUE(ok(box.mesh->fetch_rank(r, 0, out)));
    EXPECT_EQ(payload, out) << "rank " << r;
  }
}

TEST(Mesh, BarrierCompletesAndChargesTime) {
  MeshBox box(4);
  const Nanos before = box.cluster.clock().now();
  ASSERT_TRUE(ok(box.mesh->barrier()));
  EXPECT_GT(box.cluster.clock().now(), before);
  EXPECT_EQ(box.mesh->stats().barriers, 1u);
}

TEST(Mesh, TwoRankMeshIsMinimal) {
  MeshBox box(2);
  const auto payload = pattern(100, 9);
  ASSERT_TRUE(ok(box.mesh->stage_rank(0, 0, payload)));
  ASSERT_TRUE(ok(box.mesh->broadcast(0, 0, 100)));
  std::vector<std::byte> out(100);
  ASSERT_TRUE(ok(box.mesh->fetch_rank(1, 0, out)));
  EXPECT_EQ(payload, out);
}

}  // namespace
}  // namespace vialock::msg
