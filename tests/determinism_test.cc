// determinism_test.cc - the whole simulation is a pure function of its
// inputs: identical scenarios produce bit-identical virtual times, stats and
// experiment outcomes. This is what makes the benches reproducible anywhere.
#include <gtest/gtest.h>

#include "experiments/locktest.h"
#include "msg/transport.h"
#include "via/via_util.h"

namespace vialock {
namespace {

struct LocktestFingerprint {
  std::uint32_t relocated;
  std::uint64_t swapped;
  Nanos final_time;
  std::uint64_t syscalls;

  bool operator==(const LocktestFingerprint&) const = default;
};

LocktestFingerprint run_locktest_once(via::PolicyKind policy) {
  Clock clock;
  CostModel costs;
  via::Node node(test::small_node(policy, /*frames=*/1024), clock, costs);
  node.kernel().mutable_stats() = simkern::KernelStats{};
  const auto r = experiments::run_locktest(node, {});
  return {r.pages_relocated, r.pages_swapped_out, clock.now(),
          node.kernel().stats().syscalls};
}

TEST(Determinism, LocktestIsBitReproducible) {
  for (const via::PolicyKind policy :
       {via::PolicyKind::Refcount, via::PolicyKind::Kiobuf}) {
    const auto a = run_locktest_once(policy);
    const auto b = run_locktest_once(policy);
    EXPECT_EQ(a, b) << "policy " << to_string(policy);
    EXPECT_GT(a.final_time, 0u);
  }
}

Nanos run_transfer_scenario() {
  via::Cluster cluster;
  const auto n0 = cluster.add_node(test::small_node());
  const auto n1 = cluster.add_node(test::small_node());
  msg::Channel::Config cfg;
  cfg.user_heap_bytes = 512 * 1024;
  cfg.preregister_heaps = true;
  msg::Channel ch(cluster, n0, n1, cfg);
  EXPECT_TRUE(ok(ch.init()));
  std::vector<std::byte> data(48 * 1024, std::byte{0x42});
  EXPECT_TRUE(ok(ch.stage(0, data)));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ok(ch.transfer_auto(0, 0, 48 * 1024)));
    EXPECT_TRUE(ok(ch.transfer(msg::Protocol::Eager, 0, 0, 512)));
  }
  return cluster.clock().now();
}

TEST(Determinism, TransferScenarioIsBitReproducible) {
  const Nanos a = run_transfer_scenario();
  const Nanos b = run_transfer_scenario();
  EXPECT_EQ(a, b);
}

TEST(Determinism, CostModelChangesMoveTheClockPredictably) {
  // Doubling the path streaming cost must increase a transfer's time by
  // exactly the payload's share - the cost model composes linearly.
  auto run = [](Nanos path_per_byte) {
    CostModel costs;
    costs.dma_path_per_byte = path_per_byte;
    via::Cluster cluster(costs);
    const auto n0 = cluster.add_node(test::small_node());
    const auto n1 = cluster.add_node(test::small_node());
    msg::Channel ch(cluster, n0, n1, msg::Channel::Config{});
    EXPECT_TRUE(ok(ch.init()));
    const Nanos before = cluster.clock().now();
    EXPECT_TRUE(ok(ch.transfer(msg::Protocol::Eager, 0, 0, 4096)));
    return cluster.clock().now() - before;
  };
  const Nanos base = run(11);
  const Nanos doubled = run(22);
  EXPECT_EQ(doubled - base, 11u * 4096u);
}

}  // namespace
}  // namespace vialock
