// reg_cache_test.cc - registration caching: hits, idle retention, eviction
// policies and behaviour under TPT exhaustion.
#include "core/reg_cache.h"

#include <gtest/gtest.h>

#include "../via/via_util.h"

namespace vialock::core {
namespace {

using simkern::kPageSize;
using test::must_mmap;

struct CacheBox {
  explicit CacheBox(std::uint32_t tpt_entries = 64,
                    RegistrationCache::Config cfg = {})
      : node(test::small_node(via::PolicyKind::Kiobuf, 512, tpt_entries),
             clock, costs),
        pid(node.kernel().create_task("app")),
        vipl(node.agent(), pid) {
    EXPECT_TRUE(ok(vipl.open()));
    cache = std::make_unique<RegistrationCache>(vipl, cfg);
  }
  Clock clock;
  CostModel costs;
  via::Node node;
  simkern::Pid pid;
  via::Vipl vipl;
  std::unique_ptr<RegistrationCache> cache;
};

TEST(RegCache, MissRegistersHitReuses) {
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle h1;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h1)));
  EXPECT_EQ(box.cache->stats().misses, 1u);
  box.cache->release(h1);
  via::MemHandle h2;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h2)));
  EXPECT_EQ(box.cache->stats().hits, 1u);
  EXPECT_EQ(h2.id, h1.id) << "same registration reused";
  EXPECT_EQ(box.cache->stats().registrations, 1u);
  box.cache->release(h2);
}

TEST(RegCache, SubRangeOfCachedRegionHits) {
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle big;
  ASSERT_TRUE(ok(box.cache->acquire(a, 8 * kPageSize, big)));
  via::MemHandle sub;
  ASSERT_TRUE(ok(box.cache->acquire(a + kPageSize, 2 * kPageSize, sub)));
  EXPECT_EQ(box.cache->stats().hits, 1u);
  EXPECT_EQ(sub.id, big.id);
  box.cache->release(big);
  box.cache->release(sub);
  EXPECT_EQ(box.cache->idle_cached(), 1u);
}

TEST(RegCache, DisjointRangesRegisterSeparately) {
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 16);
  via::MemHandle h1;
  via::MemHandle h2;
  ASSERT_TRUE(ok(box.cache->acquire(a, 2 * kPageSize, h1)));
  ASSERT_TRUE(ok(box.cache->acquire(a + 8 * kPageSize, 2 * kPageSize, h2)));
  EXPECT_EQ(box.cache->stats().registrations, 2u);
  box.cache->release(h1);
  box.cache->release(h2);
}

TEST(RegCache, PolicyNoneDeregistersImmediately) {
  RegistrationCache::Config cfg;
  cfg.policy = EvictionPolicy::None;
  CacheBox box(64, cfg);
  const auto a = must_mmap(box.node.kernel(), box.pid, 4);
  via::MemHandle h;
  ASSERT_TRUE(ok(box.cache->acquire(a, 2 * kPageSize, h)));
  box.cache->release(h);
  EXPECT_EQ(box.cache->idle_cached(), 0u);
  EXPECT_EQ(box.cache->stats().deregistrations, 1u);
  EXPECT_EQ(box.node.nic().tpt().used(), 0u);
  // Next acquire is a miss again.
  ASSERT_TRUE(ok(box.cache->acquire(a, 2 * kPageSize, h)));
  EXPECT_EQ(box.cache->stats().misses, 2u);
  box.cache->release(h);
}

TEST(RegCache, TptPressureEvictsIdleEntries) {
  CacheBox box(/*tpt_entries=*/16);
  const auto a = must_mmap(box.node.kernel(), box.pid, 32);
  // Fill the TPT with idle cached registrations (4 x 4 pages = 16 entries).
  for (int i = 0; i < 4; ++i) {
    via::MemHandle h;
    ASSERT_TRUE(
        ok(box.cache->acquire(a + i * 4 * kPageSize, 4 * kPageSize, h)));
    box.cache->release(h);
  }
  EXPECT_EQ(box.node.nic().tpt().free_entries(), 0u);
  // A new range must evict to make room.
  via::MemHandle h;
  ASSERT_TRUE(ok(box.cache->acquire(a + 16 * kPageSize, 4 * kPageSize, h)));
  EXPECT_GE(box.cache->stats().evictions, 1u);
  box.cache->release(h);
}

TEST(RegCache, LiveEntriesAreNeverEvicted) {
  CacheBox box(/*tpt_entries=*/8);
  const auto a = must_mmap(box.node.kernel(), box.pid, 32);
  via::MemHandle live;
  ASSERT_TRUE(ok(box.cache->acquire(a, 8 * kPageSize, live)));  // fills TPT
  via::MemHandle h;
  EXPECT_EQ(box.cache->acquire(a + 16 * kPageSize, 4 * kPageSize, h),
            KStatus::NoSpc)
      << "nothing evictable: the only entry is live";
  box.cache->release(live);
}

TEST(RegCache, LruEvictsLeastRecentlyUsed) {
  CacheBox box(/*tpt_entries=*/8);
  const auto a = must_mmap(box.node.kernel(), box.pid, 32);
  via::MemHandle h1;
  via::MemHandle h2;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h1)));
  ASSERT_TRUE(ok(box.cache->acquire(a + 8 * kPageSize, 4 * kPageSize, h2)));
  box.cache->release(h1);
  box.cache->release(h2);
  // Touch h1's range so h2 becomes LRU.
  via::MemHandle tmp;
  ASSERT_TRUE(ok(box.cache->acquire(a, kPageSize, tmp)));
  box.cache->release(tmp);
  // New range forces one eviction: h2's range must go, h1's must survive.
  via::MemHandle h3;
  ASSERT_TRUE(ok(box.cache->acquire(a + 16 * kPageSize, 4 * kPageSize, h3)));
  via::MemHandle again;
  ASSERT_TRUE(ok(box.cache->acquire(a, kPageSize, again)));
  EXPECT_EQ(again.id, h1.id) << "recently-used entry survived LRU eviction";
  box.cache->release(h3);
  box.cache->release(again);
}

TEST(RegCache, FifoEvictsOldest) {
  RegistrationCache::Config cfg;
  cfg.policy = EvictionPolicy::Fifo;
  CacheBox box(/*tpt_entries=*/8, cfg);
  const auto a = must_mmap(box.node.kernel(), box.pid, 32);
  via::MemHandle h1;
  via::MemHandle h2;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h1)));
  box.cache->release(h1);
  ASSERT_TRUE(ok(box.cache->acquire(a + 8 * kPageSize, 4 * kPageSize, h2)));
  box.cache->release(h2);
  // Re-touching h1 does NOT save it under FIFO.
  via::MemHandle tmp;
  ASSERT_TRUE(ok(box.cache->acquire(a, kPageSize, tmp)));
  box.cache->release(tmp);
  via::MemHandle h3;
  ASSERT_TRUE(ok(box.cache->acquire(a + 16 * kPageSize, 4 * kPageSize, h3)));
  via::MemHandle probe;
  ASSERT_TRUE(ok(box.cache->acquire(a + 8 * kPageSize, kPageSize, probe)));
  EXPECT_EQ(probe.id, h2.id) << "second-registered entry should have survived";
  box.cache->release(h3);
  box.cache->release(probe);
}

TEST(RegCache, FlushDropsIdleKeepsLive) {
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 16);
  via::MemHandle live;
  via::MemHandle idle;
  ASSERT_TRUE(ok(box.cache->acquire(a, 2 * kPageSize, live)));
  ASSERT_TRUE(ok(box.cache->acquire(a + 8 * kPageSize, 2 * kPageSize, idle)));
  box.cache->release(idle);
  box.cache->flush();
  EXPECT_EQ(box.cache->live(), 1u);
  EXPECT_EQ(box.cache->idle_cached(), 0u);
  box.cache->release(live);
}

TEST(RegCache, MaxIdleCapEnforced) {
  RegistrationCache::Config cfg;
  cfg.max_idle = 2;
  CacheBox box(/*tpt_entries=*/64, cfg);
  const auto a = must_mmap(box.node.kernel(), box.pid, 32);
  for (int i = 0; i < 5; ++i) {
    via::MemHandle h;
    ASSERT_TRUE(ok(box.cache->acquire(a + i * 4 * kPageSize, kPageSize, h)));
    box.cache->release(h);
  }
  EXPECT_LE(box.cache->idle_cached(), 2u);
}

TEST(RegCache, RefcountedAcquireReleaseBalance) {
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle h1;
  via::MemHandle h2;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h1)));
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h2)));  // hit, refs=2
  box.cache->release(h1);
  // Still live: not evictable, not idle.
  EXPECT_EQ(box.cache->idle_cached(), 0u);
  box.cache->release(h2);
  EXPECT_EQ(box.cache->idle_cached(), 1u);
}

}  // namespace
}  // namespace vialock::core
