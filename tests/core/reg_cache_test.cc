// reg_cache_test.cc - registration caching: hits, idle retention, eviction
// policies and behaviour under TPT exhaustion.
#include "core/reg_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "../via/via_util.h"
#include "util/rng.h"

namespace vialock::core {
namespace {

using simkern::kPageSize;
using test::must_mmap;

struct CacheBox {
  explicit CacheBox(std::uint32_t tpt_entries = 64,
                    RegistrationCache::Config cfg = {})
      : node(test::small_node(via::PolicyKind::Kiobuf, 512, tpt_entries),
             clock, costs),
        pid(node.kernel().create_task("app")),
        vipl(node.agent(), pid) {
    EXPECT_TRUE(ok(vipl.open()));
    cache = std::make_unique<RegistrationCache>(vipl, cfg);
  }
  Clock clock;
  CostModel costs;
  via::Node node;
  simkern::Pid pid;
  via::Vipl vipl;
  std::unique_ptr<RegistrationCache> cache;
};

TEST(RegCache, MissRegistersHitReuses) {
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle h1;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h1)));
  EXPECT_EQ(box.cache->stats().misses, 1u);
  box.cache->release(h1);
  via::MemHandle h2;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h2)));
  EXPECT_EQ(box.cache->stats().hits, 1u);
  EXPECT_EQ(h2.id, h1.id) << "same registration reused";
  EXPECT_EQ(box.cache->stats().registrations, 1u);
  box.cache->release(h2);
}

TEST(RegCache, SubRangeOfCachedRegionHits) {
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle big;
  ASSERT_TRUE(ok(box.cache->acquire(a, 8 * kPageSize, big)));
  via::MemHandle sub;
  ASSERT_TRUE(ok(box.cache->acquire(a + kPageSize, 2 * kPageSize, sub)));
  EXPECT_EQ(box.cache->stats().hits, 1u);
  EXPECT_EQ(sub.id, big.id);
  box.cache->release(big);
  box.cache->release(sub);
  EXPECT_EQ(box.cache->idle_cached(), 1u);
}

TEST(RegCache, DisjointRangesRegisterSeparately) {
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 16);
  via::MemHandle h1;
  via::MemHandle h2;
  ASSERT_TRUE(ok(box.cache->acquire(a, 2 * kPageSize, h1)));
  ASSERT_TRUE(ok(box.cache->acquire(a + 8 * kPageSize, 2 * kPageSize, h2)));
  EXPECT_EQ(box.cache->stats().registrations, 2u);
  box.cache->release(h1);
  box.cache->release(h2);
}

TEST(RegCache, PolicyNoneDeregistersImmediately) {
  RegistrationCache::Config cfg;
  cfg.policy = EvictionPolicy::None;
  CacheBox box(64, cfg);
  const auto a = must_mmap(box.node.kernel(), box.pid, 4);
  via::MemHandle h;
  ASSERT_TRUE(ok(box.cache->acquire(a, 2 * kPageSize, h)));
  box.cache->release(h);
  EXPECT_EQ(box.cache->idle_cached(), 0u);
  EXPECT_EQ(box.cache->stats().deregistrations, 1u);
  EXPECT_EQ(box.node.nic().tpt().used(), 0u);
  // Next acquire is a miss again.
  ASSERT_TRUE(ok(box.cache->acquire(a, 2 * kPageSize, h)));
  EXPECT_EQ(box.cache->stats().misses, 2u);
  box.cache->release(h);
}

TEST(RegCache, TptPressureEvictsIdleEntries) {
  CacheBox box(/*tpt_entries=*/16);
  const auto a = must_mmap(box.node.kernel(), box.pid, 32);
  // Fill the TPT with idle cached registrations (4 x 4 pages = 16 entries).
  for (int i = 0; i < 4; ++i) {
    via::MemHandle h;
    ASSERT_TRUE(
        ok(box.cache->acquire(a + i * 4 * kPageSize, 4 * kPageSize, h)));
    box.cache->release(h);
  }
  EXPECT_EQ(box.node.nic().tpt().free_entries(), 0u);
  // A new range must evict to make room.
  via::MemHandle h;
  ASSERT_TRUE(ok(box.cache->acquire(a + 16 * kPageSize, 4 * kPageSize, h)));
  EXPECT_GE(box.cache->stats().evictions, 1u);
  box.cache->release(h);
}

TEST(RegCache, LiveEntriesAreNeverEvicted) {
  CacheBox box(/*tpt_entries=*/8);
  const auto a = must_mmap(box.node.kernel(), box.pid, 32);
  via::MemHandle live;
  ASSERT_TRUE(ok(box.cache->acquire(a, 8 * kPageSize, live)));  // fills TPT
  via::MemHandle h;
  EXPECT_EQ(box.cache->acquire(a + 16 * kPageSize, 4 * kPageSize, h),
            KStatus::NoSpc)
      << "nothing evictable: the only entry is live";
  box.cache->release(live);
}

TEST(RegCache, LruEvictsLeastRecentlyUsed) {
  CacheBox box(/*tpt_entries=*/8);
  const auto a = must_mmap(box.node.kernel(), box.pid, 32);
  via::MemHandle h1;
  via::MemHandle h2;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h1)));
  ASSERT_TRUE(ok(box.cache->acquire(a + 8 * kPageSize, 4 * kPageSize, h2)));
  box.cache->release(h1);
  box.cache->release(h2);
  // Touch h1's range so h2 becomes LRU.
  via::MemHandle tmp;
  ASSERT_TRUE(ok(box.cache->acquire(a, kPageSize, tmp)));
  box.cache->release(tmp);
  // New range forces one eviction: h2's range must go, h1's must survive.
  via::MemHandle h3;
  ASSERT_TRUE(ok(box.cache->acquire(a + 16 * kPageSize, 4 * kPageSize, h3)));
  via::MemHandle again;
  ASSERT_TRUE(ok(box.cache->acquire(a, kPageSize, again)));
  EXPECT_EQ(again.id, h1.id) << "recently-used entry survived LRU eviction";
  box.cache->release(h3);
  box.cache->release(again);
}

TEST(RegCache, FifoEvictsOldest) {
  RegistrationCache::Config cfg;
  cfg.policy = EvictionPolicy::Fifo;
  CacheBox box(/*tpt_entries=*/8, cfg);
  const auto a = must_mmap(box.node.kernel(), box.pid, 32);
  via::MemHandle h1;
  via::MemHandle h2;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h1)));
  box.cache->release(h1);
  ASSERT_TRUE(ok(box.cache->acquire(a + 8 * kPageSize, 4 * kPageSize, h2)));
  box.cache->release(h2);
  // Re-touching h1 does NOT save it under FIFO.
  via::MemHandle tmp;
  ASSERT_TRUE(ok(box.cache->acquire(a, kPageSize, tmp)));
  box.cache->release(tmp);
  via::MemHandle h3;
  ASSERT_TRUE(ok(box.cache->acquire(a + 16 * kPageSize, 4 * kPageSize, h3)));
  via::MemHandle probe;
  ASSERT_TRUE(ok(box.cache->acquire(a + 8 * kPageSize, kPageSize, probe)));
  EXPECT_EQ(probe.id, h2.id) << "second-registered entry should have survived";
  box.cache->release(h3);
  box.cache->release(probe);
}

TEST(RegCache, FlushDropsIdleKeepsLive) {
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 16);
  via::MemHandle live;
  via::MemHandle idle;
  ASSERT_TRUE(ok(box.cache->acquire(a, 2 * kPageSize, live)));
  ASSERT_TRUE(ok(box.cache->acquire(a + 8 * kPageSize, 2 * kPageSize, idle)));
  box.cache->release(idle);
  box.cache->flush();
  EXPECT_EQ(box.cache->live(), 1u);
  EXPECT_EQ(box.cache->idle_cached(), 0u);
  box.cache->release(live);
}

TEST(RegCache, MaxIdleCapEnforced) {
  RegistrationCache::Config cfg;
  cfg.max_idle = 2;
  CacheBox box(/*tpt_entries=*/64, cfg);
  const auto a = must_mmap(box.node.kernel(), box.pid, 32);
  for (int i = 0; i < 5; ++i) {
    via::MemHandle h;
    ASSERT_TRUE(ok(box.cache->acquire(a + i * 4 * kPageSize, kPageSize, h)));
    box.cache->release(h);
  }
  EXPECT_LE(box.cache->idle_cached(), 2u);
}

TEST(RegCache, ReleaseUnknownHandleIsCountedNoOp) {
  // The seed guarded release() with assert only: an NDEBUG build dereferenced
  // entries_.end() on an unknown handle. Now a counted, safe no-op in every
  // build type (the Release-mode CI job runs this with the asserts gone).
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle h;
  ASSERT_TRUE(ok(box.cache->acquire(a, 2 * kPageSize, h)));
  via::MemHandle bogus = h;
  bogus.id = 9999;
  box.cache->release(bogus);
  EXPECT_EQ(box.cache->stats().bad_releases, 1u);
  EXPECT_EQ(box.cache->live(), 1u);
  EXPECT_EQ(box.cache->idle_cached(), 0u) << "the live entry must be intact";
  box.cache->release(h);
  EXPECT_EQ(box.cache->idle_cached(), 1u);
  EXPECT_EQ(box.cache->stats().bad_releases, 1u);
}

TEST(RegCache, DoubleReleaseDoesNotUnderflowRefcount) {
  // Seed: the second release of an already-idle entry underflowed refs to
  // ~4 billion under NDEBUG, making the entry unevictable forever.
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle h;
  ASSERT_TRUE(ok(box.cache->acquire(a, 2 * kPageSize, h)));
  box.cache->release(h);
  box.cache->release(h);  // caller bug: handle already returned
  EXPECT_EQ(box.cache->stats().bad_releases, 1u);
  EXPECT_EQ(box.cache->idle_cached(), 1u);
  // The entry is still a well-formed idle entry: it hits and re-idles.
  via::MemHandle again;
  ASSERT_TRUE(ok(box.cache->acquire(a, 2 * kPageSize, again)));
  EXPECT_EQ(again.id, h.id);
  EXPECT_EQ(box.cache->idle_cached(), 0u);
  box.cache->release(again);
  EXPECT_EQ(box.cache->idle_cached(), 1u);
}

TEST(RegCache, ReleaseAfterEvictionIsCountedNoOp) {
  RegistrationCache::Config cfg;
  cfg.max_idle = 0;  // every released entry is evicted immediately
  CacheBox box(/*tpt_entries=*/64, cfg);
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle h;
  ASSERT_TRUE(ok(box.cache->acquire(a, 2 * kPageSize, h)));
  box.cache->release(h);
  EXPECT_EQ(box.cache->live(), 0u);
  box.cache->release(h);  // stale handle: its entry was evicted above
  EXPECT_EQ(box.cache->stats().bad_releases, 1u);
}

// Reference model replaying the seed's linear-scan cache semantics: covering
// lookup as an id-ordered scan over every entry, LRU eviction as a min over
// all idle entries. The indexed cache must make bit-identical decisions -
// same handle ids, same hit/miss/eviction stats - on a random stream.
class LinearCacheModel {
 public:
  explicit LinearCacheModel(std::size_t max_idle) : max_idle_(max_idle) {}

  // Returns the handle id the real cache must hand out.
  std::uint64_t acquire(simkern::VAddr addr, std::uint64_t len) {
    ++tick_;
    for (auto& [id, e] : entries_) {  // id order, exactly the seed's scan
      if (addr >= e.vaddr && addr + len <= e.vaddr + e.len) {
        ++hits;
        ++e.refs;
        e.last_use = tick_;
        return id;
      }
    }
    ++misses;
    const std::uint64_t id = next_id_++;
    entries_[id] = {addr, len, 1, tick_};
    return id;
  }

  void release(std::uint64_t id) {
    ++tick_;
    auto& e = entries_.at(id);
    e.last_use = tick_;
    if (--e.refs == 0) enforce_idle_cap();
  }

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

 private:
  struct Entry {
    simkern::VAddr vaddr = 0;
    std::uint64_t len = 0;
    std::uint32_t refs = 0;
    std::uint64_t last_use = 0;
  };

  void enforce_idle_cap() {
    for (;;) {
      std::uint64_t victim = 0;
      std::uint64_t best_use = 0;
      std::size_t idle = 0;
      for (const auto& [id, e] : entries_) {
        if (e.refs != 0) continue;
        ++idle;
        if (victim == 0 || e.last_use < best_use) {
          victim = id;
          best_use = e.last_use;
        }
      }
      if (idle <= max_idle_) return;
      entries_.erase(victim);
      ++evictions;
    }
  }

  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t next_id_ = 1;  // KernelAgent hands out ids from 1
  std::uint64_t tick_ = 0;
  std::size_t max_idle_;
};

TEST(RegCache, IndexedLookupMatchesLinearScanOnRandomStream) {
  RegistrationCache::Config cfg;
  cfg.max_idle = 6;  // small cap so evictions churn the index constantly
  CacheBox box(/*tpt_entries=*/2048, cfg);
  LinearCacheModel model(cfg.max_idle);
  const auto base = must_mmap(box.node.kernel(), box.pid, 64);
  Rng rng(0x1d5eedULL);

  struct Live {
    via::MemHandle handle;
    std::uint64_t model_id;
  };
  std::vector<Live> live;

  for (int step = 0; step < 3000; ++step) {
    // Cap outstanding handles so the kernel pin budget is never hit: the
    // model replays idle-cap evictions only, not pressure evictions.
    const bool do_acquire =
        live.empty() || (live.size() < 48 && rng.below(100) < 55);
    if (do_acquire) {
      const std::uint64_t page = rng.below(60);
      const std::uint64_t pages = 1 + rng.below(4);
      const auto addr = base + page * kPageSize;
      const auto len = pages * kPageSize;
      via::MemHandle h;
      ASSERT_TRUE(ok(box.cache->acquire(addr, len, h))) << "step " << step;
      const std::uint64_t want = model.acquire(addr, len);
      ASSERT_EQ(h.id, want) << "index diverged from linear scan at " << step;
      live.push_back({h, want});
    } else {
      const std::size_t pick = rng.below(live.size());
      const Live l = live[pick];
      live[pick] = live.back();
      live.pop_back();
      box.cache->release(l.handle);
      model.release(l.model_id);
    }
    ASSERT_EQ(box.cache->stats().hits, model.hits) << "step " << step;
    ASSERT_EQ(box.cache->stats().misses, model.misses) << "step " << step;
    ASSERT_EQ(box.cache->stats().evictions, model.evictions)
        << "step " << step;
  }
  EXPECT_EQ(box.cache->stats().bad_releases, 0u);
  EXPECT_GT(model.hits, 0u);
  EXPECT_GT(model.evictions, 0u);
}

TEST(RegCache, LookasideServesExactRepeatAcquires) {
  // The per-VI lookaside: an exact (addr, len) repeat resolves in one slot
  // probe. Releases move entries in and out of the idle index but do not
  // restructure the row array, so the generation holds across them.
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle h1;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h1)));
  EXPECT_EQ(box.cache->stats().lookaside_misses, 1u);
  EXPECT_EQ(box.cache->stats().lookaside_hits, 0u);
  box.cache->release(h1);

  via::MemHandle h2;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h2)));
  EXPECT_EQ(box.cache->stats().lookaside_hits, 1u);
  EXPECT_EQ(box.cache->stats().hits, 1u);
  EXPECT_EQ(h2.id, h1.id);
  via::MemHandle h3;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h3)));
  EXPECT_EQ(box.cache->stats().lookaside_hits, 2u);
  EXPECT_EQ(box.cache->stats().registrations, 1u) << "all served from cache";
  box.cache->release(h2);
  box.cache->release(h3);
  // Every acquire went through exactly one lookaside probe.
  EXPECT_EQ(box.cache->stats().lookaside_hits +
                box.cache->stats().lookaside_misses,
            3u);
}

TEST(RegCache, LookasideNeverServesAStaleRowAfterEviction) {
  // S3 regression: the lookaside slot survives the eviction of the entry it
  // points at - only the generation tells it the row index is garbage. A
  // lookaside that kept serving the slot would hand out the *deregistered*
  // handle, whose TPT range is released (or already reused by a different
  // registration): silent wrong-memory DMA. The generation mismatch must
  // force the slow path and a fresh registration.
  RegistrationCache::Config cfg;
  cfg.max_idle = 0;  // every release evicts - and bumps the generation
  CacheBox box(/*tpt_entries=*/64, cfg);
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle h1;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h1)));
  const std::uint64_t invalidations_at_fill =
      box.cache->stats().lookaside_invalidations;
  box.cache->release(h1);  // evicted + deregistered
  EXPECT_EQ(box.cache->live(), 0u);
  EXPECT_GT(box.cache->stats().lookaside_invalidations, invalidations_at_fill)
      << "the eviction must retire the filled slot";

  via::MemHandle h2;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h2)));
  EXPECT_EQ(box.cache->stats().lookaside_hits, 0u)
      << "a generation-mismatched slot must never hit";
  EXPECT_EQ(box.cache->stats().registrations, 2u);
  EXPECT_NE(h2.id, h1.id) << "fresh registration, not the dead handle";
  EXPECT_TRUE(h2.valid());
  box.cache->release(h2);
}

TEST(RegCache, LookasideInvalidatedByInsertOfAnotherRange) {
  // Inserting a different range shifts rows_, so the generation retires the
  // older fill even though its entry is alive; the repeat acquire must fall
  // through to the index - and still find the right entry (same id).
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 16);
  via::MemHandle h1;
  ASSERT_TRUE(ok(box.cache->acquire(a + 8 * kPageSize, 2 * kPageSize, h1)));
  via::MemHandle other;
  ASSERT_TRUE(ok(box.cache->acquire(a, 2 * kPageSize, other)));  // rows_ shifts

  via::MemHandle h2;
  ASSERT_TRUE(ok(box.cache->acquire(a + 8 * kPageSize, 2 * kPageSize, h2)));
  EXPECT_EQ(h2.id, h1.id) << "the index hit must find the live entry";
  EXPECT_EQ(box.cache->stats().hits, 1u);
  EXPECT_EQ(box.cache->stats().lookaside_hits, 0u)
      << "all three acquires predate a valid same-generation fill";

  // The index hit refilled the slot under the current generation: the next
  // repeat is a pure lookaside hit.
  via::MemHandle h3;
  ASSERT_TRUE(ok(box.cache->acquire(a + 8 * kPageSize, 2 * kPageSize, h3)));
  EXPECT_EQ(box.cache->stats().lookaside_hits, 1u);
  EXPECT_EQ(h3.id, h1.id);
  box.cache->release(h1);
  box.cache->release(h2);
  box.cache->release(h3);
  box.cache->release(other);
}

TEST(RegCache, LookasideStatsBalanceOnRandomStream) {
  // On an arbitrary workload every acquire is exactly one lookaside probe,
  // and a lookaside hit is always also a cache hit (never a registration).
  CacheBox box(/*tpt_entries=*/2048);
  const auto base = must_mmap(box.node.kernel(), box.pid, 64);
  Rng rng(0x100ca51deULL);
  std::vector<via::MemHandle> live;
  std::uint64_t acquires = 0;
  for (int step = 0; step < 500; ++step) {
    if (live.empty() || (live.size() < 32 && rng.below(100) < 60)) {
      const auto addr = base + rng.below(56) * kPageSize;
      const auto len = (1 + rng.below(4)) * kPageSize;
      via::MemHandle h;
      ASSERT_TRUE(ok(box.cache->acquire(addr, len, h)));
      ++acquires;
      live.push_back(h);
    } else {
      const std::size_t pick = rng.below(live.size());
      box.cache->release(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  const RegCacheStats& s = box.cache->stats();
  EXPECT_EQ(s.lookaside_hits + s.lookaside_misses, acquires);
  EXPECT_LE(s.lookaside_hits, s.hits) << "a lookaside hit is a cache hit";
  EXPECT_GT(s.lookaside_hits, 0u) << "the stream must exercise the fast path";
  for (const auto& h : live) box.cache->release(h);
}

TEST(RegCache, RefcountedAcquireReleaseBalance) {
  CacheBox box;
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle h1;
  via::MemHandle h2;
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h1)));
  ASSERT_TRUE(ok(box.cache->acquire(a, 4 * kPageSize, h2)));  // hit, refs=2
  box.cache->release(h1);
  // Still live: not evictable, not idle.
  EXPECT_EQ(box.cache->idle_cached(), 0u);
  box.cache->release(h2);
  EXPECT_EQ(box.cache->idle_cached(), 1u);
}

}  // namespace
}  // namespace vialock::core
