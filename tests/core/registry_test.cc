// registry_test.cc - ReliableLocker / PinnedRegion: the standalone packaging
// of the proposed mechanism.
#include "core/registry.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace vialock::core {
namespace {

using simkern::kPageSize;
using test::KernelBox;
using test::must_mmap;

TEST(ReliableLocker, LockPinsAndDestructorUnpins) {
  KernelBox box;
  ReliableLocker locker(box.kern);
  const auto pid = box.kern.create_task("t");
  const auto a = must_mmap(box.kern, pid, 4);
  {
    PinnedRegion region;
    ASSERT_TRUE(ok(locker.lock(pid, a, 4 * kPageSize, region)));
    ASSERT_TRUE(region.valid());
    EXPECT_EQ(region.pfns().size(), 4u);
    EXPECT_EQ(locker.live_pins(), 1u);
    EXPECT_TRUE(box.kern.phys().page(region.pfns()[0]).pinned());
  }
  EXPECT_EQ(locker.live_pins(), 0u);
  EXPECT_FALSE(box.kern.phys().page(*box.kern.resolve(pid, a)).pinned());
}

TEST(ReliableLocker, PinnedPagesSurviveReclaim) {
  KernelBox box;
  ReliableLocker locker(box.kern);
  const auto pid = box.kern.create_task("t");
  const auto a = must_mmap(box.kern, pid, 4);
  PinnedRegion region;
  ASSERT_TRUE(ok(locker.lock(pid, a, 4 * kPageSize, region)));
  const auto before = region.pfns();
  for (int p = 0; p < 4; ++p)
    box.kern.task(pid).mm.pt.walk(a + p * kPageSize)->accessed = false;
  (void)box.kern.try_to_free_pages(4);
  for (int p = 0; p < 4; ++p)
    EXPECT_EQ(*box.kern.resolve(pid, a + p * kPageSize), before[p]);
}

TEST(PinnedRegion, MoveTransfersOwnership) {
  KernelBox box;
  ReliableLocker locker(box.kern);
  const auto pid = box.kern.create_task("t");
  const auto a = must_mmap(box.kern, pid, 2);
  PinnedRegion r1;
  ASSERT_TRUE(ok(locker.lock(pid, a, 2 * kPageSize, r1)));
  PinnedRegion r2 = std::move(r1);
  EXPECT_FALSE(r1.valid());  // NOLINT(bugprone-use-after-move) - testing it
  EXPECT_TRUE(r2.valid());
  EXPECT_EQ(locker.live_pins(), 1u);
  r2.reset();
  EXPECT_EQ(locker.live_pins(), 0u);
  r2.reset();  // idempotent
}

TEST(PinnedRegion, MoveAssignReleasesPreviousPin) {
  KernelBox box;
  ReliableLocker locker(box.kern);
  const auto pid = box.kern.create_task("t");
  const auto a = must_mmap(box.kern, pid, 4);
  PinnedRegion r1;
  PinnedRegion r2;
  ASSERT_TRUE(ok(locker.lock(pid, a, kPageSize, r1)));
  ASSERT_TRUE(ok(locker.lock(pid, a + kPageSize, kPageSize, r2)));
  EXPECT_EQ(locker.live_pins(), 2u);
  r1 = std::move(r2);
  EXPECT_EQ(locker.live_pins(), 1u);
  EXPECT_EQ(r1.addr(), a + kPageSize);
}

TEST(ReliableLocker, OverlappingPinsNest) {
  KernelBox box;
  ReliableLocker locker(box.kern);
  const auto pid = box.kern.create_task("t");
  const auto a = must_mmap(box.kern, pid, 4);
  PinnedRegion r1;
  PinnedRegion r2;
  ASSERT_TRUE(ok(locker.lock(pid, a, 3 * kPageSize, r1)));
  ASSERT_TRUE(ok(locker.lock(pid, a + kPageSize, 3 * kPageSize, r2)));
  EXPECT_EQ(box.kern.phys().page(*box.kern.resolve(pid, a + kPageSize)).pin_count,
            2u);
  r1.reset();
  EXPECT_EQ(box.kern.phys().page(*box.kern.resolve(pid, a + kPageSize)).pin_count,
            1u);
  EXPECT_TRUE(box.kern.phys().page(*box.kern.resolve(pid, a + 3 * kPageSize))
                  .pinned());
}

TEST(ReliableLocker, LockFailureLeavesRegionInvalid) {
  KernelBox box;
  ReliableLocker locker(box.kern);
  const auto pid = box.kern.create_task("t");
  PinnedRegion region;
  EXPECT_EQ(locker.lock(pid, 0x10000000, kPageSize, region), KStatus::Fault);
  EXPECT_FALSE(region.valid());
  EXPECT_EQ(locker.live_pins(), 0u);
}

}  // namespace
}  // namespace vialock::core
