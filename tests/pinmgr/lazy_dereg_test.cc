// lazy_dereg_test.cc - the governor's deferred-deregistration queue: pins
// outlive the dereg call until a drain, batches amortise the ioctl cost,
// TPT exhaustion and memory pressure both force a drain, and the
// registration cache volunteers idle entries for cooperative reclaim.
#include <gtest/gtest.h>

#include <memory>

#include "../via/via_util.h"
#include "core/reg_cache.h"
#include "pinmgr/pin_governor.h"

namespace vialock::pinmgr {
namespace {

using simkern::kPageSize;
using test::must_mmap;

struct LazyBox {
  explicit LazyBox(std::uint32_t lazy_batch, std::uint32_t tpt_entries = 256)
      : node(test::small_node(via::PolicyKind::Kiobuf, 512, tpt_entries),
             clock, costs),
        gov(node.enable_governor({.lazy_batch = lazy_batch})),
        pid(node.kernel().create_task("app")),
        tag(node.agent().create_ptag(pid)) {}

  KStatus reg(simkern::VAddr addr, std::uint64_t pages, via::MemHandle& out) {
    return node.agent().register_mem(pid, addr, pages * kPageSize, tag, out);
  }

  Clock clock;
  CostModel costs;
  via::Node node;
  PinGovernor& gov;
  simkern::Pid pid;
  via::ProtectionTag tag;
};

TEST(LazyDereg, DeregIsDeferredUntilFlush) {
  LazyBox box(/*lazy_batch=*/8);
  auto& kern = box.node.kernel();
  const auto a = must_mmap(kern, box.pid, 4);
  via::MemHandle mh;
  ASSERT_TRUE(ok(box.reg(a, 4, mh)));
  const auto pfn = *kern.resolve(box.pid, a);

  ASSERT_TRUE(ok(box.node.agent().deregister_mem(mh)));
  EXPECT_EQ(box.node.agent().stats().lazy_deregs, 1u);
  EXPECT_EQ(box.gov.lazy_queue_depth(), 1u);
  // The deregistration is only queued: TPT slots, pin, and accounting all
  // persist until the batch is submitted.
  EXPECT_EQ(box.node.nic().tpt().used(), 4u);
  EXPECT_GT(kern.phys().page(pfn).pin_count, 0u);
  EXPECT_EQ(box.gov.tenant_charged(box.pid), 4u);

  EXPECT_EQ(box.gov.flush(), 1u);
  EXPECT_EQ(box.gov.lazy_queue_depth(), 0u);
  EXPECT_EQ(box.node.nic().tpt().used(), 0u);
  EXPECT_EQ(kern.phys().page(pfn).pin_count, 0u);
  EXPECT_EQ(box.gov.tenant_charged(box.pid), 0u);
  EXPECT_TRUE(kern.self_check().empty());
}

TEST(LazyDereg, AutoDrainsAtBatchBoundary) {
  LazyBox box(/*lazy_batch=*/2);
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle m1, m2;
  ASSERT_TRUE(ok(box.reg(a, 4, m1)));
  ASSERT_TRUE(ok(box.reg(a + 4 * kPageSize, 4, m2)));
  ASSERT_TRUE(ok(box.node.agent().deregister_mem(m1)));
  EXPECT_EQ(box.gov.lazy_queue_depth(), 1u);
  ASSERT_TRUE(ok(box.node.agent().deregister_mem(m2)));
  EXPECT_EQ(box.gov.lazy_queue_depth(), 0u) << "batch boundary drains";
  EXPECT_EQ(box.gov.stats().lazy_drains, 1u);
  EXPECT_EQ(box.gov.stats().lazy_drained_entries, 2u);
  EXPECT_EQ(box.gov.total_charged(), 0u);
}

TEST(LazyDereg, BatchedDrainPaysOneSyscallForManyDeregs) {
  constexpr int kRegions = 8;
  // Eager: every dereg is its own ioctl.
  LazyBox eager(/*lazy_batch=*/0);
  {
    const auto a = must_mmap(eager.node.kernel(), eager.pid, 4 * kRegions);
    std::vector<via::MemHandle> hs(kRegions);
    for (int i = 0; i < kRegions; ++i)
      ASSERT_TRUE(
          ok(eager.reg(a + static_cast<std::uint64_t>(i) * 4 * kPageSize, 4,
                       hs[i])));
    const auto s0 = eager.node.kernel().stats().syscalls;
    for (auto& h : hs) ASSERT_TRUE(ok(eager.node.agent().deregister_mem(h)));
    EXPECT_EQ(eager.node.kernel().stats().syscalls - s0,
              static_cast<std::uint64_t>(kRegions));
  }
  // Lazy: the deregs queue at user level and one batched entry submits all.
  LazyBox lazy(/*lazy_batch=*/kRegions);
  {
    const auto a = must_mmap(lazy.node.kernel(), lazy.pid, 4 * kRegions);
    std::vector<via::MemHandle> hs(kRegions);
    for (int i = 0; i < kRegions; ++i)
      ASSERT_TRUE(
          ok(lazy.reg(a + static_cast<std::uint64_t>(i) * 4 * kPageSize, 4,
                      hs[i])));
    const auto s0 = lazy.node.kernel().stats().syscalls;
    for (auto& h : hs) ASSERT_TRUE(ok(lazy.node.agent().deregister_mem(h)));
    EXPECT_EQ(lazy.node.kernel().stats().syscalls - s0, 1u)
        << "one ioctl per batch, not per dereg";
    EXPECT_EQ(lazy.gov.total_charged(), 0u);
  }
}

TEST(LazyDereg, TptExhaustionFlushesQueueAndRetries) {
  LazyBox box(/*lazy_batch=*/64, /*tpt_entries=*/16);
  const auto a = must_mmap(box.node.kernel(), box.pid, 32);
  via::MemHandle m1, m2;
  ASSERT_TRUE(ok(box.reg(a, 8, m1)));
  ASSERT_TRUE(ok(box.reg(a + 8 * kPageSize, 8, m2)));
  EXPECT_EQ(box.node.nic().tpt().used(), 16u) << "TPT full";
  ASSERT_TRUE(ok(box.node.agent().deregister_mem(m1)));
  ASSERT_TRUE(ok(box.node.agent().deregister_mem(m2)));
  EXPECT_EQ(box.node.nic().tpt().used(), 16u) << "slots parked in the queue";

  // The new registration finds no TPT space, flushes the deferred queue,
  // and retries - invisibly to the caller.
  via::MemHandle m3;
  ASSERT_TRUE(ok(box.reg(a + 16 * kPageSize, 16, m3)));
  EXPECT_EQ(box.node.nic().tpt().used(), 16u);
  EXPECT_GE(box.gov.stats().flushes, 1u);
  EXPECT_EQ(box.node.agent().stats().tpt_full, 0u)
      << "exhaustion resolved internally";
}

TEST(LazyDereg, MemoryPressureDrainsTheQueue) {
  LazyBox box(/*lazy_batch=*/64);
  auto& kern = box.node.kernel();
  const auto a = must_mmap(kern, box.pid, 8);
  via::MemHandle mh;
  ASSERT_TRUE(ok(box.reg(a, 8, mh)));
  ASSERT_TRUE(ok(box.node.agent().deregister_mem(mh)));
  ASSERT_EQ(box.gov.lazy_queue_depth(), 1u);

  // vmscan falls short on the page-cache scan and consults the governor
  // before swapping: the deferred deregistrations release their pins.
  (void)kern.try_to_free_pages(4);
  EXPECT_GE(kern.stats().pressure_callbacks, 1u);
  EXPECT_GE(kern.stats().pressure_pages_released, 8u);
  EXPECT_EQ(box.gov.lazy_queue_depth(), 0u);
  EXPECT_EQ(box.gov.total_charged(), 0u);
  EXPECT_TRUE(kern.self_check().empty());
}

TEST(LazyDereg, RegistrationCacheVolunteersIdleEntries) {
  LazyBox box(/*lazy_batch=*/0);
  auto& kern = box.node.kernel();
  via::Vipl vipl(box.node.agent(), box.pid);
  ASSERT_TRUE(ok(vipl.open()));
  core::RegistrationCache::Config ccfg;
  ccfg.governor = &box.gov;
  auto cache = std::make_unique<core::RegistrationCache>(vipl, ccfg);

  const auto a = must_mmap(kern, box.pid, 16);
  for (int i = 0; i < 4; ++i) {
    via::MemHandle mh;
    ASSERT_TRUE(ok(cache->acquire(a + static_cast<std::uint64_t>(i) * 4 *
                                          kPageSize,
                                  4 * kPageSize, mh)));
    cache->release(mh);  // idle but cached: still pinned
  }
  EXPECT_EQ(box.gov.total_charged(), 16u);

  // A pressure pass evicts just enough cold idle entries, coldest first.
  EXPECT_EQ(box.gov.on_memory_pressure(8), 8u);
  EXPECT_EQ(cache->stats().reclaim_evictions, 2u);
  EXPECT_EQ(box.gov.total_charged(), 8u);
  EXPECT_EQ(cache->live(), 2u);
  cache.reset();
  EXPECT_EQ(box.gov.total_charged(), 0u);
}

}  // namespace
}  // namespace vialock::pinmgr
