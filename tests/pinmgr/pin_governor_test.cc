// pin_governor_test.cc - the pin governor's admission control: per-tenant
// quotas, frame-deduplicated accounting, QoS tiers, tenant teardown, fault
// injection at the admission/reclaim sites, and same-seed determinism.
#include "pinmgr/pin_governor.h"

#include <gtest/gtest.h>

#include "../via/via_util.h"
#include "fault/fault.h"
#include "pinmgr/pin_procfs.h"

namespace vialock::pinmgr {
namespace {

using simkern::kPageSize;
using test::must_mmap;

struct GovBox {
  explicit GovBox(GovernorConfig cfg = {}, std::uint32_t frames = 512,
                  std::uint32_t tpt_entries = 256)
      : node(test::small_node(via::PolicyKind::Kiobuf, frames, tpt_entries),
             clock, costs),
        gov(node.enable_governor(cfg)),
        pid(node.kernel().create_task("app")),
        tag(node.agent().create_ptag(pid)) {}

  KStatus reg(simkern::VAddr addr, std::uint64_t pages, via::MemHandle& out) {
    return node.agent().register_mem(pid, addr, pages * kPageSize, tag, out);
  }

  Clock clock;
  CostModel costs;
  via::Node node;
  PinGovernor& gov;
  simkern::Pid pid;
  via::ProtectionTag tag;
};

TEST(PinGovernor, QuotaExceededReturnsNoMemAndRollsBack) {
  GovBox box;
  box.gov.set_tenant(box.pid, /*quota_pages=*/4, QosTier::BestEffort);
  const auto a = must_mmap(box.node.kernel(), box.pid, 16);
  via::MemHandle ok_mh;
  ASSERT_TRUE(ok(box.reg(a, 4, ok_mh)));
  EXPECT_EQ(box.gov.tenant_charged(box.pid), 4u);

  via::MemHandle over;
  EXPECT_EQ(box.reg(a + 4 * kPageSize, 4, over), KStatus::NoMem);
  EXPECT_EQ(box.node.agent().stats().admission_rejects, 1u);
  EXPECT_EQ(box.gov.tenant_charged(box.pid), 4u) << "rejection charges nothing";
  EXPECT_EQ(box.node.nic().tpt().used(), 4u) << "no TPT slots leaked";
  // The failed registration's pages must be unpinned again.
  const auto pfn = box.node.kernel().resolve(box.pid, a + 4 * kPageSize);
  ASSERT_TRUE(pfn.has_value());
  EXPECT_EQ(box.node.kernel().phys().page(*pfn).pin_count, 0u);
  EXPECT_EQ(box.gov.stats().rejected_quota, 1u);

  // Releasing the first registration frees quota; the retry succeeds.
  ASSERT_TRUE(ok(box.node.agent().deregister_mem(ok_mh)));
  ASSERT_TRUE(ok(box.reg(a + 4 * kPageSize, 4, over)));
  EXPECT_EQ(box.gov.tenant_charged(box.pid), 4u);
}

TEST(PinGovernor, OverlappingRegistrationsChargedOnce) {
  GovBox box;
  box.gov.set_tenant(box.pid, /*quota_pages=*/8, QosTier::BestEffort);
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle m1, m2;
  ASSERT_TRUE(ok(box.reg(a, 8, m1)));
  // The identical range again: within quota because the frames dedup.
  ASSERT_TRUE(ok(box.reg(a, 8, m2)));
  EXPECT_EQ(box.gov.tenant_charged(box.pid), 8u)
      << "the paper's double-count bug, done right";
  EXPECT_EQ(box.gov.stats().dedup_hits, 8u);
  EXPECT_EQ(box.gov.total_charged(), 8u);

  // Dropping one registration must not strip the other's charge.
  ASSERT_TRUE(ok(box.node.agent().deregister_mem(m1)));
  EXPECT_EQ(box.gov.tenant_charged(box.pid), 8u) << "still pinned via m2";
  ASSERT_TRUE(ok(box.node.agent().deregister_mem(m2)));
  EXPECT_EQ(box.gov.tenant_charged(box.pid), 0u);
  EXPECT_EQ(box.gov.total_charged(), 0u);
}

TEST(PinGovernor, PartialOverlapChargesOnlyFreshFrames) {
  GovBox box;
  box.gov.set_tenant(box.pid, /*quota_pages=*/12, QosTier::BestEffort);
  const auto a = must_mmap(box.node.kernel(), box.pid, 16);
  via::MemHandle m1, m2;
  ASSERT_TRUE(ok(box.reg(a, 8, m1)));
  // [4, 12) overlaps [0, 8) in 4 pages: only 4 fresh frames are charged.
  ASSERT_TRUE(ok(box.reg(a + 4 * kPageSize, 8, m2)));
  EXPECT_EQ(box.gov.tenant_charged(box.pid), 12u);
  EXPECT_EQ(box.gov.stats().dedup_hits, 4u);
}

TEST(PinGovernor, BestEffortStopsAtReserveGuaranteedDoesNot) {
  GovernorConfig cfg;
  cfg.host_ceiling = 16;
  cfg.guaranteed_reserve = 8;
  GovBox box(cfg);
  auto& kern = box.node.kernel();
  const auto be_pid = box.pid;
  const auto g_pid = kern.create_task("guaranteed");
  const auto g_tag = box.node.agent().create_ptag(g_pid);
  box.gov.set_tenant(be_pid, /*quota_pages=*/64, QosTier::BestEffort);
  box.gov.set_tenant(g_pid, /*quota_pages=*/64, QosTier::Guaranteed);

  const auto be_buf = must_mmap(kern, be_pid, 16);
  const auto g_buf = must_mmap(kern, g_pid, 16);

  // Best effort may use ceiling - reserve = 8 pages; the 9th page fails
  // cleanly with Again instead of eating into the guaranteed reserve.
  via::MemHandle be1, be2;
  ASSERT_TRUE(ok(box.reg(be_buf, 8, be1)));
  EXPECT_EQ(box.reg(be_buf + 8 * kPageSize, 1, be2), KStatus::Again);
  EXPECT_EQ(box.gov.stats().rejected_ceiling, 1u);

  // The guaranteed tenant still gets its reserved 8 pages.
  via::MemHandle g1;
  ASSERT_TRUE(ok(box.node.agent().register_mem(g_pid, g_buf, 8 * kPageSize,
                                               g_tag, g1)));
  EXPECT_EQ(box.gov.total_charged(), 16u);
}

TEST(PinGovernor, ReleaseTenantLeaksNothing) {
  GovernorConfig cfg;
  cfg.lazy_batch = 64;  // keep deregs queued so teardown must flush
  GovBox box(cfg);
  auto& kern = box.node.kernel();
  auto& agent = box.node.agent();
  const auto a = must_mmap(kern, box.pid, 24);
  via::MemHandle m1, m2, m3;
  ASSERT_TRUE(ok(box.reg(a, 8, m1)));
  ASSERT_TRUE(ok(box.reg(a + 8 * kPageSize, 8, m2)));
  ASSERT_TRUE(ok(box.reg(a + 16 * kPageSize, 8, m3)));
  ASSERT_TRUE(ok(agent.deregister_mem(m1)));  // parked in the lazy queue
  EXPECT_EQ(box.gov.lazy_queue_depth(), 1u);

  agent.release_tenant(box.pid);
  EXPECT_FALSE(box.gov.tenant_known(box.pid));
  EXPECT_EQ(box.gov.total_charged(), 0u);
  EXPECT_EQ(box.gov.lazy_queue_depth(), 0u);
  EXPECT_EQ(agent.live_registrations(), 0u);
  EXPECT_EQ(box.node.nic().tpt().used(), 0u);
  EXPECT_EQ(box.gov.stats().tenants_removed, 1u);
  EXPECT_TRUE(kern.self_check().empty());
}

TEST(PinGovernor, RemoveTenantWithLiveChargesUnchargesGlobally) {
  // Seed bug: remove_tenant() guarded "no live charges" with assert only; an
  // NDEBUG build erased the tenant record and leaked its frames in
  // global_pins_ / total_charged_ forever, silently shrinking the host
  // ceiling. The forced path must uncharge the survivors first.
  GovernorConfig cfg;
  cfg.host_ceiling = 16;
  GovBox box(cfg);
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle mh;
  ASSERT_TRUE(ok(box.reg(a, 8, mh)));
  ASSERT_EQ(box.gov.total_charged(), 8u);

  // Tenant ripped out with its registration still live (a crashed process
  // whose driver teardown never ran release_tenant).
  box.gov.remove_tenant(box.pid);
  EXPECT_FALSE(box.gov.tenant_known(box.pid));
  EXPECT_EQ(box.gov.stats().tenants_removed, 1u);
  EXPECT_EQ(box.gov.stats().forced_tenant_removals, 1u);
  EXPECT_EQ(box.gov.stats().forced_frames_uncharged, 8u);
  EXPECT_EQ(box.gov.total_charged(), 0u)
      << "the ceiling must not shrink by the leaked frames";

  // The full ceiling is available to the next tenant.
  const auto p2 = box.node.kernel().create_task("next");
  const auto t2 = box.node.agent().create_ptag(p2);
  const auto b = must_mmap(box.node.kernel(), p2, 16);
  via::MemHandle m2;
  ASSERT_TRUE(ok(box.node.agent().register_mem(p2, b, 16 * kPageSize, t2, m2)));
  EXPECT_EQ(box.gov.total_charged(), 16u);
}

TEST(PinGovernor, RemoveTenantSharedFramesKeepOtherTenantsCharges) {
  // A frame charged by two tenants survives the forced removal of one: only
  // the removed tenant's multiplicity is subtracted from the global count.
  GovBox box;
  auto& kern = box.node.kernel();
  const auto p2 = kern.create_task("peer");
  const auto t2 = box.node.agent().create_ptag(p2);
  const auto shm = kern.shm_create(4 * kPageSize);
  ASSERT_NE(shm, simkern::kInvalidShm);
  const auto a1 = kern.shm_attach(box.pid, shm);
  const auto a2 = kern.shm_attach(p2, shm);
  ASSERT_TRUE(a1 && a2);

  via::MemHandle m1, m2;
  ASSERT_TRUE(ok(box.reg(*a1, 4, m1)));
  ASSERT_TRUE(ok(
      box.node.agent().register_mem(p2, *a2, 4 * kPageSize, t2, m2)));
  ASSERT_EQ(box.gov.total_charged(), 4u) << "same frames, charged once";

  box.gov.remove_tenant(box.pid);
  EXPECT_EQ(box.gov.stats().forced_tenant_removals, 1u);
  EXPECT_EQ(box.gov.total_charged(), 4u)
      << "the peer's charge on the shared frames must survive";
  EXPECT_EQ(box.gov.tenant_charged(p2), 4u);
}

TEST(PinGovernor, TenantsSnapshotIsOrderedByPid) {
  GovBox box;
  auto& kern = box.node.kernel();
  const auto p2 = kern.create_task("b");
  const auto p3 = kern.create_task("c");
  box.gov.set_tenant(p3, 32, QosTier::Guaranteed);
  box.gov.set_tenant(box.pid, 16, QosTier::BestEffort);
  box.gov.set_tenant(p2, 8, QosTier::BestEffort);
  const auto snap = box.gov.tenants();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_LT(snap[0].pid, snap[1].pid);
  EXPECT_LT(snap[1].pid, snap[2].pid);
  EXPECT_EQ(snap[2].tier, QosTier::Guaranteed);
}

TEST(PinGovernor, InjectedAdmissionRaceRejectsWithAgain) {
  GovBox box;
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.add({.site = fault::FaultSite::PinAdmission,
            .action = fault::FaultAction::Fail,
            .max_triggers = 1});
  fault::FaultEngine engine(plan, box.clock);
  box.node.set_fault_engine(&engine);

  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle mh;
  EXPECT_EQ(box.reg(a, 4, mh), KStatus::Again);
  EXPECT_EQ(box.gov.stats().rejected_injected, 1u);
  EXPECT_EQ(box.gov.tenant_charged(box.pid), 0u);
  // The rule is exhausted: the retry goes through.
  ASSERT_TRUE(ok(box.reg(a, 4, mh)));
  EXPECT_EQ(engine.stats().injected(fault::FaultSite::PinAdmission), 1u);
}

TEST(PinGovernor, InjectedReclaimFailureReleasesNothing) {
  GovernorConfig cfg;
  cfg.lazy_batch = 64;
  GovBox box(cfg);
  fault::FaultPlan plan;
  plan.add({.site = fault::FaultSite::PinReclaim,
            .action = fault::FaultAction::Drop,
            .max_triggers = 1});
  fault::FaultEngine engine(plan, box.clock);
  box.node.set_fault_engine(&engine);

  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle mh;
  ASSERT_TRUE(ok(box.reg(a, 8, mh)));
  ASSERT_TRUE(ok(box.node.agent().deregister_mem(mh)));
  ASSERT_EQ(box.gov.lazy_queue_depth(), 1u);

  EXPECT_EQ(box.gov.on_memory_pressure(8), 0u) << "injected shrinker failure";
  EXPECT_EQ(box.gov.stats().reclaim_failures, 1u);
  EXPECT_EQ(box.gov.lazy_queue_depth(), 1u) << "queue untouched";
  // Next pass (rule exhausted) completes the deferred work.
  EXPECT_EQ(box.gov.on_memory_pressure(8), 8u);
  EXPECT_EQ(box.gov.lazy_queue_depth(), 0u);
}

TEST(PinGovernor, PinstatReportsAccounting) {
  GovBox box;
  box.gov.set_tenant(box.pid, 16, QosTier::Guaranteed);
  const auto a = must_mmap(box.node.kernel(), box.pid, 8);
  via::MemHandle mh;
  ASSERT_TRUE(ok(box.reg(a, 8, mh)));
  const std::string s = pinstat(box.gov);
  EXPECT_NE(s.find("charged_pages 8\n"), std::string::npos) << s;
  EXPECT_NE(s.find("admitted 1\n"), std::string::npos) << s;
  EXPECT_NE(s.find("tenants 1\n"), std::string::npos) << s;
  EXPECT_NE(s.find("tier=guaranteed"), std::string::npos) << s;
}

// Two identical runs of a governed workload (registrations, rejections, lazy
// deregs, a pressure pass) must agree byte-for-byte in virtual time and in
// every exported counter.
std::pair<Nanos, std::string> governed_run() {
  GovernorConfig cfg;
  cfg.lazy_batch = 4;
  cfg.default_quota = 32;
  GovBox box(cfg);
  auto& agent = box.node.agent();
  const auto a = must_mmap(box.node.kernel(), box.pid, 64);
  std::vector<via::MemHandle> live;
  for (int i = 0; i < 12; ++i) {
    via::MemHandle mh;
    if (ok(box.reg(a + static_cast<std::uint64_t>(i) * 4 * kPageSize, 4, mh)))
      live.push_back(mh);
  }
  for (std::size_t i = 0; i + 1 < live.size(); i += 2)
    (void)agent.deregister_mem(live[i]);
  (void)box.gov.on_memory_pressure(16);
  agent.release_tenant(box.pid);
  return {box.clock.now(), pinstat(box.gov)};
}

TEST(PinGovernor, SameWorkloadIsBitIdentical) {
  const auto [t1, s1] = governed_run();
  const auto [t2, s2] = governed_run();
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace vialock::pinmgr
