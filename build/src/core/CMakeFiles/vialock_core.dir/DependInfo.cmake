
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/reg_cache.cc" "src/core/CMakeFiles/vialock_core.dir/reg_cache.cc.o" "gcc" "src/core/CMakeFiles/vialock_core.dir/reg_cache.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/core/CMakeFiles/vialock_core.dir/registry.cc.o" "gcc" "src/core/CMakeFiles/vialock_core.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/via/CMakeFiles/vialock_via.dir/DependInfo.cmake"
  "/root/repo/build/src/simkern/CMakeFiles/vialock_simkern.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
