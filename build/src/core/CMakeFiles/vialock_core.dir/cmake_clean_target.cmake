file(REMOVE_RECURSE
  "libvialock_core.a"
)
