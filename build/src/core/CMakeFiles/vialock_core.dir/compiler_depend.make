# Empty compiler generated dependencies file for vialock_core.
# This may be replaced when dependencies are built.
