file(REMOVE_RECURSE
  "CMakeFiles/vialock_core.dir/reg_cache.cc.o"
  "CMakeFiles/vialock_core.dir/reg_cache.cc.o.d"
  "CMakeFiles/vialock_core.dir/registry.cc.o"
  "CMakeFiles/vialock_core.dir/registry.cc.o.d"
  "libvialock_core.a"
  "libvialock_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vialock_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
