
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simkern/buddy.cc" "src/simkern/CMakeFiles/vialock_simkern.dir/buddy.cc.o" "gcc" "src/simkern/CMakeFiles/vialock_simkern.dir/buddy.cc.o.d"
  "/root/repo/src/simkern/filecache.cc" "src/simkern/CMakeFiles/vialock_simkern.dir/filecache.cc.o" "gcc" "src/simkern/CMakeFiles/vialock_simkern.dir/filecache.cc.o.d"
  "/root/repo/src/simkern/kernel.cc" "src/simkern/CMakeFiles/vialock_simkern.dir/kernel.cc.o" "gcc" "src/simkern/CMakeFiles/vialock_simkern.dir/kernel.cc.o.d"
  "/root/repo/src/simkern/kiobuf.cc" "src/simkern/CMakeFiles/vialock_simkern.dir/kiobuf.cc.o" "gcc" "src/simkern/CMakeFiles/vialock_simkern.dir/kiobuf.cc.o.d"
  "/root/repo/src/simkern/mlock.cc" "src/simkern/CMakeFiles/vialock_simkern.dir/mlock.cc.o" "gcc" "src/simkern/CMakeFiles/vialock_simkern.dir/mlock.cc.o.d"
  "/root/repo/src/simkern/mm.cc" "src/simkern/CMakeFiles/vialock_simkern.dir/mm.cc.o" "gcc" "src/simkern/CMakeFiles/vialock_simkern.dir/mm.cc.o.d"
  "/root/repo/src/simkern/pagetable.cc" "src/simkern/CMakeFiles/vialock_simkern.dir/pagetable.cc.o" "gcc" "src/simkern/CMakeFiles/vialock_simkern.dir/pagetable.cc.o.d"
  "/root/repo/src/simkern/procfs.cc" "src/simkern/CMakeFiles/vialock_simkern.dir/procfs.cc.o" "gcc" "src/simkern/CMakeFiles/vialock_simkern.dir/procfs.cc.o.d"
  "/root/repo/src/simkern/swap.cc" "src/simkern/CMakeFiles/vialock_simkern.dir/swap.cc.o" "gcc" "src/simkern/CMakeFiles/vialock_simkern.dir/swap.cc.o.d"
  "/root/repo/src/simkern/vma.cc" "src/simkern/CMakeFiles/vialock_simkern.dir/vma.cc.o" "gcc" "src/simkern/CMakeFiles/vialock_simkern.dir/vma.cc.o.d"
  "/root/repo/src/simkern/vmscan.cc" "src/simkern/CMakeFiles/vialock_simkern.dir/vmscan.cc.o" "gcc" "src/simkern/CMakeFiles/vialock_simkern.dir/vmscan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
