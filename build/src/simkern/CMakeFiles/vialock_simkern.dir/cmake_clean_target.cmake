file(REMOVE_RECURSE
  "libvialock_simkern.a"
)
