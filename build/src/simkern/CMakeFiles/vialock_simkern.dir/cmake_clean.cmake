file(REMOVE_RECURSE
  "CMakeFiles/vialock_simkern.dir/buddy.cc.o"
  "CMakeFiles/vialock_simkern.dir/buddy.cc.o.d"
  "CMakeFiles/vialock_simkern.dir/filecache.cc.o"
  "CMakeFiles/vialock_simkern.dir/filecache.cc.o.d"
  "CMakeFiles/vialock_simkern.dir/kernel.cc.o"
  "CMakeFiles/vialock_simkern.dir/kernel.cc.o.d"
  "CMakeFiles/vialock_simkern.dir/kiobuf.cc.o"
  "CMakeFiles/vialock_simkern.dir/kiobuf.cc.o.d"
  "CMakeFiles/vialock_simkern.dir/mlock.cc.o"
  "CMakeFiles/vialock_simkern.dir/mlock.cc.o.d"
  "CMakeFiles/vialock_simkern.dir/mm.cc.o"
  "CMakeFiles/vialock_simkern.dir/mm.cc.o.d"
  "CMakeFiles/vialock_simkern.dir/pagetable.cc.o"
  "CMakeFiles/vialock_simkern.dir/pagetable.cc.o.d"
  "CMakeFiles/vialock_simkern.dir/procfs.cc.o"
  "CMakeFiles/vialock_simkern.dir/procfs.cc.o.d"
  "CMakeFiles/vialock_simkern.dir/swap.cc.o"
  "CMakeFiles/vialock_simkern.dir/swap.cc.o.d"
  "CMakeFiles/vialock_simkern.dir/vma.cc.o"
  "CMakeFiles/vialock_simkern.dir/vma.cc.o.d"
  "CMakeFiles/vialock_simkern.dir/vmscan.cc.o"
  "CMakeFiles/vialock_simkern.dir/vmscan.cc.o.d"
  "libvialock_simkern.a"
  "libvialock_simkern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vialock_simkern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
