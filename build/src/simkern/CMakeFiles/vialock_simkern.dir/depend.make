# Empty dependencies file for vialock_simkern.
# This may be replaced when dependencies are built.
