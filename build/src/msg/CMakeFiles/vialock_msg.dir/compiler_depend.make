# Empty compiler generated dependencies file for vialock_msg.
# This may be replaced when dependencies are built.
