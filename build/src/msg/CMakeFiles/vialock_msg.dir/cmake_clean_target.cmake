file(REMOVE_RECURSE
  "libvialock_msg.a"
)
