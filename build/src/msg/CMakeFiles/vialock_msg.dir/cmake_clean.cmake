file(REMOVE_RECURSE
  "CMakeFiles/vialock_msg.dir/mesh.cc.o"
  "CMakeFiles/vialock_msg.dir/mesh.cc.o.d"
  "CMakeFiles/vialock_msg.dir/transport.cc.o"
  "CMakeFiles/vialock_msg.dir/transport.cc.o.d"
  "libvialock_msg.a"
  "libvialock_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vialock_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
