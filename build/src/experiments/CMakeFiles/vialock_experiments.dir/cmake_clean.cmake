file(REMOVE_RECURSE
  "CMakeFiles/vialock_experiments.dir/locktest.cc.o"
  "CMakeFiles/vialock_experiments.dir/locktest.cc.o.d"
  "CMakeFiles/vialock_experiments.dir/pressure.cc.o"
  "CMakeFiles/vialock_experiments.dir/pressure.cc.o.d"
  "libvialock_experiments.a"
  "libvialock_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vialock_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
