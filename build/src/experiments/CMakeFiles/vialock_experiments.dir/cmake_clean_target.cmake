file(REMOVE_RECURSE
  "libvialock_experiments.a"
)
