# Empty dependencies file for vialock_experiments.
# This may be replaced when dependencies are built.
