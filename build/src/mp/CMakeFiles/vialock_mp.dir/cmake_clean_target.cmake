file(REMOVE_RECURSE
  "libvialock_mp.a"
)
