file(REMOVE_RECURSE
  "CMakeFiles/vialock_mp.dir/collectives.cc.o"
  "CMakeFiles/vialock_mp.dir/collectives.cc.o.d"
  "CMakeFiles/vialock_mp.dir/comm.cc.o"
  "CMakeFiles/vialock_mp.dir/comm.cc.o.d"
  "libvialock_mp.a"
  "libvialock_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vialock_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
