# Empty dependencies file for vialock_mp.
# This may be replaced when dependencies are built.
