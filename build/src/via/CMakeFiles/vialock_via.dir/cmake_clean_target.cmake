file(REMOVE_RECURSE
  "libvialock_via.a"
)
