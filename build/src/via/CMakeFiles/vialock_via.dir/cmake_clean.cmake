file(REMOVE_RECURSE
  "CMakeFiles/vialock_via.dir/fabric.cc.o"
  "CMakeFiles/vialock_via.dir/fabric.cc.o.d"
  "CMakeFiles/vialock_via.dir/kernel_agent.cc.o"
  "CMakeFiles/vialock_via.dir/kernel_agent.cc.o.d"
  "CMakeFiles/vialock_via.dir/lock_policy.cc.o"
  "CMakeFiles/vialock_via.dir/lock_policy.cc.o.d"
  "CMakeFiles/vialock_via.dir/nic.cc.o"
  "CMakeFiles/vialock_via.dir/nic.cc.o.d"
  "CMakeFiles/vialock_via.dir/remote_window.cc.o"
  "CMakeFiles/vialock_via.dir/remote_window.cc.o.d"
  "CMakeFiles/vialock_via.dir/tpt.cc.o"
  "CMakeFiles/vialock_via.dir/tpt.cc.o.d"
  "CMakeFiles/vialock_via.dir/unetmm.cc.o"
  "CMakeFiles/vialock_via.dir/unetmm.cc.o.d"
  "CMakeFiles/vialock_via.dir/vipl.cc.o"
  "CMakeFiles/vialock_via.dir/vipl.cc.o.d"
  "libvialock_via.a"
  "libvialock_via.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vialock_via.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
