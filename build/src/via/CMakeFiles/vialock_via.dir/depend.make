# Empty dependencies file for vialock_via.
# This may be replaced when dependencies are built.
