
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/via/fabric.cc" "src/via/CMakeFiles/vialock_via.dir/fabric.cc.o" "gcc" "src/via/CMakeFiles/vialock_via.dir/fabric.cc.o.d"
  "/root/repo/src/via/kernel_agent.cc" "src/via/CMakeFiles/vialock_via.dir/kernel_agent.cc.o" "gcc" "src/via/CMakeFiles/vialock_via.dir/kernel_agent.cc.o.d"
  "/root/repo/src/via/lock_policy.cc" "src/via/CMakeFiles/vialock_via.dir/lock_policy.cc.o" "gcc" "src/via/CMakeFiles/vialock_via.dir/lock_policy.cc.o.d"
  "/root/repo/src/via/nic.cc" "src/via/CMakeFiles/vialock_via.dir/nic.cc.o" "gcc" "src/via/CMakeFiles/vialock_via.dir/nic.cc.o.d"
  "/root/repo/src/via/remote_window.cc" "src/via/CMakeFiles/vialock_via.dir/remote_window.cc.o" "gcc" "src/via/CMakeFiles/vialock_via.dir/remote_window.cc.o.d"
  "/root/repo/src/via/tpt.cc" "src/via/CMakeFiles/vialock_via.dir/tpt.cc.o" "gcc" "src/via/CMakeFiles/vialock_via.dir/tpt.cc.o.d"
  "/root/repo/src/via/unetmm.cc" "src/via/CMakeFiles/vialock_via.dir/unetmm.cc.o" "gcc" "src/via/CMakeFiles/vialock_via.dir/unetmm.cc.o.d"
  "/root/repo/src/via/vipl.cc" "src/via/CMakeFiles/vialock_via.dir/vipl.cc.o" "gcc" "src/via/CMakeFiles/vialock_via.dir/vipl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkern/CMakeFiles/vialock_simkern.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
