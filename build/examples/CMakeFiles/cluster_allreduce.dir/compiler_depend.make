# Empty compiler generated dependencies file for cluster_allreduce.
# This may be replaced when dependencies are built.
