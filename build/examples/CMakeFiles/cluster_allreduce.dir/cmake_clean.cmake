file(REMOVE_RECURSE
  "CMakeFiles/cluster_allreduce.dir/cluster_allreduce.cpp.o"
  "CMakeFiles/cluster_allreduce.dir/cluster_allreduce.cpp.o.d"
  "cluster_allreduce"
  "cluster_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
