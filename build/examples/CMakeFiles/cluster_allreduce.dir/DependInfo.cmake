
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cluster_allreduce.cpp" "examples/CMakeFiles/cluster_allreduce.dir/cluster_allreduce.cpp.o" "gcc" "examples/CMakeFiles/cluster_allreduce.dir/cluster_allreduce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/vialock_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/vialock_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/vialock_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vialock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/via/CMakeFiles/vialock_via.dir/DependInfo.cmake"
  "/root/repo/build/src/simkern/CMakeFiles/vialock_simkern.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
