# Empty dependencies file for trace_postmortem.
# This may be replaced when dependencies are built.
