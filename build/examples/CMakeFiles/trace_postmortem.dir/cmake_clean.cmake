file(REMOVE_RECURSE
  "CMakeFiles/trace_postmortem.dir/trace_postmortem.cpp.o"
  "CMakeFiles/trace_postmortem.dir/trace_postmortem.cpp.o.d"
  "trace_postmortem"
  "trace_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
