# Empty compiler generated dependencies file for zero_copy_pipeline.
# This may be replaced when dependencies are built.
