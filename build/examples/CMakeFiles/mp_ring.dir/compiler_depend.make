# Empty compiler generated dependencies file for mp_ring.
# This may be replaced when dependencies are built.
