file(REMOVE_RECURSE
  "CMakeFiles/mp_ring.dir/mp_ring.cpp.o"
  "CMakeFiles/mp_ring.dir/mp_ring.cpp.o.d"
  "mp_ring"
  "mp_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
