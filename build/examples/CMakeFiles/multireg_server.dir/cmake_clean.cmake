file(REMOVE_RECURSE
  "CMakeFiles/multireg_server.dir/multireg_server.cpp.o"
  "CMakeFiles/multireg_server.dir/multireg_server.cpp.o.d"
  "multireg_server"
  "multireg_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multireg_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
