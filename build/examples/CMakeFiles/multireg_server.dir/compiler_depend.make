# Empty compiler generated dependencies file for multireg_server.
# This may be replaced when dependencies are built.
