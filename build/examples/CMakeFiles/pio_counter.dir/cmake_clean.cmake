file(REMOVE_RECURSE
  "CMakeFiles/pio_counter.dir/pio_counter.cpp.o"
  "CMakeFiles/pio_counter.dir/pio_counter.cpp.o.d"
  "pio_counter"
  "pio_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
