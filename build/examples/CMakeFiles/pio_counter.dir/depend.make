# Empty dependencies file for pio_counter.
# This may be replaced when dependencies are built.
