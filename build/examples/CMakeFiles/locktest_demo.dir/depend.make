# Empty dependencies file for locktest_demo.
# This may be replaced when dependencies are built.
