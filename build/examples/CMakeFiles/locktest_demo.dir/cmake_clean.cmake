file(REMOVE_RECURSE
  "CMakeFiles/locktest_demo.dir/locktest_demo.cpp.o"
  "CMakeFiles/locktest_demo.dir/locktest_demo.cpp.o.d"
  "locktest_demo"
  "locktest_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locktest_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
