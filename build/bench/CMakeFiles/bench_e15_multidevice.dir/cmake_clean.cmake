file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_multidevice.dir/bench_e15_multidevice.cc.o"
  "CMakeFiles/bench_e15_multidevice.dir/bench_e15_multidevice.cc.o.d"
  "bench_e15_multidevice"
  "bench_e15_multidevice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_multidevice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
