# Empty dependencies file for bench_e15_multidevice.
# This may be replaced when dependencies are built.
