# Empty compiler generated dependencies file for bench_e19_pio_vs_dma.
# This may be replaced when dependencies are built.
