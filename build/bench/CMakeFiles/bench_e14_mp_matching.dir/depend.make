# Empty dependencies file for bench_e14_mp_matching.
# This may be replaced when dependencies are built.
