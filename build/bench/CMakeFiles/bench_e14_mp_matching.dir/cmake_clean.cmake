file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_mp_matching.dir/bench_e14_mp_matching.cc.o"
  "CMakeFiles/bench_e14_mp_matching.dir/bench_e14_mp_matching.cc.o.d"
  "bench_e14_mp_matching"
  "bench_e14_mp_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_mp_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
