file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_ablation_cache.dir/bench_e9_ablation_cache.cc.o"
  "CMakeFiles/bench_e9_ablation_cache.dir/bench_e9_ablation_cache.cc.o.d"
  "bench_e9_ablation_cache"
  "bench_e9_ablation_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_ablation_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
