# Empty dependencies file for bench_e8_pingpong.
# This may be replaced when dependencies are built.
