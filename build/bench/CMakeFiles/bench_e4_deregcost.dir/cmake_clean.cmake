file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_deregcost.dir/bench_e4_deregcost.cc.o"
  "CMakeFiles/bench_e4_deregcost.dir/bench_e4_deregcost.cc.o.d"
  "bench_e4_deregcost"
  "bench_e4_deregcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_deregcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
