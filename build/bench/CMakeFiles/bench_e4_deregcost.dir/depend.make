# Empty dependencies file for bench_e4_deregcost.
# This may be replaced when dependencies are built.
