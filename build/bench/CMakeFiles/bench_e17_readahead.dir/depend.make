# Empty dependencies file for bench_e17_readahead.
# This may be replaced when dependencies are built.
