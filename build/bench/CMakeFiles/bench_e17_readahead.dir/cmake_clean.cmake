file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_readahead.dir/bench_e17_readahead.cc.o"
  "CMakeFiles/bench_e17_readahead.dir/bench_e17_readahead.cc.o.d"
  "bench_e17_readahead"
  "bench_e17_readahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_readahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
