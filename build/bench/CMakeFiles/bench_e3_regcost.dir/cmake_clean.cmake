file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_regcost.dir/bench_e3_regcost.cc.o"
  "CMakeFiles/bench_e3_regcost.dir/bench_e3_regcost.cc.o.d"
  "bench_e3_regcost"
  "bench_e3_regcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_regcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
