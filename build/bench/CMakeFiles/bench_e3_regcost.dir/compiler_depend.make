# Empty compiler generated dependencies file for bench_e3_regcost.
# This may be replaced when dependencies are built.
