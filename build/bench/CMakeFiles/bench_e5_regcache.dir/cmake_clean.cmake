file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_regcache.dir/bench_e5_regcache.cc.o"
  "CMakeFiles/bench_e5_regcache.dir/bench_e5_regcache.cc.o.d"
  "bench_e5_regcache"
  "bench_e5_regcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_regcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
