file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_flaghazard.dir/bench_e7_flaghazard.cc.o"
  "CMakeFiles/bench_e7_flaghazard.dir/bench_e7_flaghazard.cc.o.d"
  "bench_e7_flaghazard"
  "bench_e7_flaghazard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_flaghazard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
