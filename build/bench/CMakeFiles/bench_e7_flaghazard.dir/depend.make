# Empty dependencies file for bench_e7_flaghazard.
# This may be replaced when dependencies are built.
