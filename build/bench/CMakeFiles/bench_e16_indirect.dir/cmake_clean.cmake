file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_indirect.dir/bench_e16_indirect.cc.o"
  "CMakeFiles/bench_e16_indirect.dir/bench_e16_indirect.cc.o.d"
  "bench_e16_indirect"
  "bench_e16_indirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_indirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
