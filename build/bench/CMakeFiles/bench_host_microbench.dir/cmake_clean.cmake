file(REMOVE_RECURSE
  "CMakeFiles/bench_host_microbench.dir/bench_host_microbench.cc.o"
  "CMakeFiles/bench_host_microbench.dir/bench_host_microbench.cc.o.d"
  "bench_host_microbench"
  "bench_host_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
