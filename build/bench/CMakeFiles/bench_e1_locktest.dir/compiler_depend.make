# Empty compiler generated dependencies file for bench_e1_locktest.
# This may be replaced when dependencies are built.
