file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_locktest.dir/bench_e1_locktest.cc.o"
  "CMakeFiles/bench_e1_locktest.dir/bench_e1_locktest.cc.o.d"
  "bench_e1_locktest"
  "bench_e1_locktest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_locktest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
