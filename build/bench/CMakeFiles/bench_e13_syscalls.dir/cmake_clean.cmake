file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_syscalls.dir/bench_e13_syscalls.cc.o"
  "CMakeFiles/bench_e13_syscalls.dir/bench_e13_syscalls.cc.o.d"
  "bench_e13_syscalls"
  "bench_e13_syscalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
