# Empty compiler generated dependencies file for bench_e13_syscalls.
# This may be replaced when dependencies are built.
