file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_pressure.dir/bench_e6_pressure.cc.o"
  "CMakeFiles/bench_e6_pressure.dir/bench_e6_pressure.cc.o.d"
  "bench_e6_pressure"
  "bench_e6_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
