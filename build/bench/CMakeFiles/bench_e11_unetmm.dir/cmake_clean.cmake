file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_unetmm.dir/bench_e11_unetmm.cc.o"
  "CMakeFiles/bench_e11_unetmm.dir/bench_e11_unetmm.cc.o.d"
  "bench_e11_unetmm"
  "bench_e11_unetmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_unetmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
