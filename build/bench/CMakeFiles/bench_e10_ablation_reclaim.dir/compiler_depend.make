# Empty compiler generated dependencies file for bench_e10_ablation_reclaim.
# This may be replaced when dependencies are built.
