file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_ablation_reclaim.dir/bench_e10_ablation_reclaim.cc.o"
  "CMakeFiles/bench_e10_ablation_reclaim.dir/bench_e10_ablation_reclaim.cc.o.d"
  "bench_e10_ablation_reclaim"
  "bench_e10_ablation_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_ablation_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
