file(REMOVE_RECURSE
  "CMakeFiles/bench_e18_completion_modes.dir/bench_e18_completion_modes.cc.o"
  "CMakeFiles/bench_e18_completion_modes.dir/bench_e18_completion_modes.cc.o.d"
  "bench_e18_completion_modes"
  "bench_e18_completion_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e18_completion_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
