# Empty compiler generated dependencies file for bench_e18_completion_modes.
# This may be replaced when dependencies are built.
