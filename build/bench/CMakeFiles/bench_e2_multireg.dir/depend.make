# Empty dependencies file for bench_e2_multireg.
# This may be replaced when dependencies are built.
