file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_multireg.dir/bench_e2_multireg.cc.o"
  "CMakeFiles/bench_e2_multireg.dir/bench_e2_multireg.cc.o.d"
  "bench_e2_multireg"
  "bench_e2_multireg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_multireg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
