# Empty compiler generated dependencies file for msg_tests.
# This may be replaced when dependencies are built.
