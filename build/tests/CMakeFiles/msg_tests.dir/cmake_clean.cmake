file(REMOVE_RECURSE
  "CMakeFiles/msg_tests.dir/msg/mesh_test.cc.o"
  "CMakeFiles/msg_tests.dir/msg/mesh_test.cc.o.d"
  "CMakeFiles/msg_tests.dir/msg/transport_test.cc.o"
  "CMakeFiles/msg_tests.dir/msg/transport_test.cc.o.d"
  "msg_tests"
  "msg_tests.pdb"
  "msg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
