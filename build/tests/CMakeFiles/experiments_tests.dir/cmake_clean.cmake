file(REMOVE_RECURSE
  "CMakeFiles/experiments_tests.dir/experiments/locktest_test.cc.o"
  "CMakeFiles/experiments_tests.dir/experiments/locktest_test.cc.o.d"
  "experiments_tests"
  "experiments_tests.pdb"
  "experiments_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
