file(REMOVE_RECURSE
  "CMakeFiles/system_tests.dir/determinism_test.cc.o"
  "CMakeFiles/system_tests.dir/determinism_test.cc.o.d"
  "CMakeFiles/system_tests.dir/integration_test.cc.o"
  "CMakeFiles/system_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/system_tests.dir/property_test.cc.o"
  "CMakeFiles/system_tests.dir/property_test.cc.o.d"
  "system_tests"
  "system_tests.pdb"
  "system_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
