# Empty dependencies file for simkern_tests.
# This may be replaced when dependencies are built.
