
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simkern/buddy_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/buddy_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/buddy_test.cc.o.d"
  "/root/repo/tests/simkern/filecache_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/filecache_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/filecache_test.cc.o.d"
  "/root/repo/tests/simkern/kernel_io_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/kernel_io_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/kernel_io_test.cc.o.d"
  "/root/repo/tests/simkern/kiobuf_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/kiobuf_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/kiobuf_test.cc.o.d"
  "/root/repo/tests/simkern/madvise_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/madvise_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/madvise_test.cc.o.d"
  "/root/repo/tests/simkern/mlock_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/mlock_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/mlock_test.cc.o.d"
  "/root/repo/tests/simkern/mm_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/mm_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/mm_test.cc.o.d"
  "/root/repo/tests/simkern/mprotect_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/mprotect_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/mprotect_test.cc.o.d"
  "/root/repo/tests/simkern/pagetable_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/pagetable_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/pagetable_test.cc.o.d"
  "/root/repo/tests/simkern/pin_budget_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/pin_budget_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/pin_budget_test.cc.o.d"
  "/root/repo/tests/simkern/procfs_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/procfs_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/procfs_test.cc.o.d"
  "/root/repo/tests/simkern/readahead_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/readahead_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/readahead_test.cc.o.d"
  "/root/repo/tests/simkern/shm_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/shm_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/shm_test.cc.o.d"
  "/root/repo/tests/simkern/swap_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/swap_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/swap_test.cc.o.d"
  "/root/repo/tests/simkern/vma_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/vma_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/vma_test.cc.o.d"
  "/root/repo/tests/simkern/vmscan_test.cc" "tests/CMakeFiles/simkern_tests.dir/simkern/vmscan_test.cc.o" "gcc" "tests/CMakeFiles/simkern_tests.dir/simkern/vmscan_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/vialock_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/vialock_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/vialock_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vialock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/via/CMakeFiles/vialock_via.dir/DependInfo.cmake"
  "/root/repo/build/src/simkern/CMakeFiles/vialock_simkern.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
