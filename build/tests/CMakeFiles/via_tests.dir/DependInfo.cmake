
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/via/fabric_test.cc" "tests/CMakeFiles/via_tests.dir/via/fabric_test.cc.o" "gcc" "tests/CMakeFiles/via_tests.dir/via/fabric_test.cc.o.d"
  "/root/repo/tests/via/kernel_agent_test.cc" "tests/CMakeFiles/via_tests.dir/via/kernel_agent_test.cc.o" "gcc" "tests/CMakeFiles/via_tests.dir/via/kernel_agent_test.cc.o.d"
  "/root/repo/tests/via/lock_policy_test.cc" "tests/CMakeFiles/via_tests.dir/via/lock_policy_test.cc.o" "gcc" "tests/CMakeFiles/via_tests.dir/via/lock_policy_test.cc.o.d"
  "/root/repo/tests/via/nic_test.cc" "tests/CMakeFiles/via_tests.dir/via/nic_test.cc.o" "gcc" "tests/CMakeFiles/via_tests.dir/via/nic_test.cc.o.d"
  "/root/repo/tests/via/remote_window_test.cc" "tests/CMakeFiles/via_tests.dir/via/remote_window_test.cc.o" "gcc" "tests/CMakeFiles/via_tests.dir/via/remote_window_test.cc.o.d"
  "/root/repo/tests/via/sg_cq_test.cc" "tests/CMakeFiles/via_tests.dir/via/sg_cq_test.cc.o" "gcc" "tests/CMakeFiles/via_tests.dir/via/sg_cq_test.cc.o.d"
  "/root/repo/tests/via/tpt_test.cc" "tests/CMakeFiles/via_tests.dir/via/tpt_test.cc.o" "gcc" "tests/CMakeFiles/via_tests.dir/via/tpt_test.cc.o.d"
  "/root/repo/tests/via/unetmm_test.cc" "tests/CMakeFiles/via_tests.dir/via/unetmm_test.cc.o" "gcc" "tests/CMakeFiles/via_tests.dir/via/unetmm_test.cc.o.d"
  "/root/repo/tests/via/vipl_misuse_test.cc" "tests/CMakeFiles/via_tests.dir/via/vipl_misuse_test.cc.o" "gcc" "tests/CMakeFiles/via_tests.dir/via/vipl_misuse_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/vialock_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/vialock_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/vialock_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vialock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/via/CMakeFiles/vialock_via.dir/DependInfo.cmake"
  "/root/repo/build/src/simkern/CMakeFiles/vialock_simkern.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
