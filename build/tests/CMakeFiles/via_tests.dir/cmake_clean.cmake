file(REMOVE_RECURSE
  "CMakeFiles/via_tests.dir/via/fabric_test.cc.o"
  "CMakeFiles/via_tests.dir/via/fabric_test.cc.o.d"
  "CMakeFiles/via_tests.dir/via/kernel_agent_test.cc.o"
  "CMakeFiles/via_tests.dir/via/kernel_agent_test.cc.o.d"
  "CMakeFiles/via_tests.dir/via/lock_policy_test.cc.o"
  "CMakeFiles/via_tests.dir/via/lock_policy_test.cc.o.d"
  "CMakeFiles/via_tests.dir/via/nic_test.cc.o"
  "CMakeFiles/via_tests.dir/via/nic_test.cc.o.d"
  "CMakeFiles/via_tests.dir/via/remote_window_test.cc.o"
  "CMakeFiles/via_tests.dir/via/remote_window_test.cc.o.d"
  "CMakeFiles/via_tests.dir/via/sg_cq_test.cc.o"
  "CMakeFiles/via_tests.dir/via/sg_cq_test.cc.o.d"
  "CMakeFiles/via_tests.dir/via/tpt_test.cc.o"
  "CMakeFiles/via_tests.dir/via/tpt_test.cc.o.d"
  "CMakeFiles/via_tests.dir/via/unetmm_test.cc.o"
  "CMakeFiles/via_tests.dir/via/unetmm_test.cc.o.d"
  "CMakeFiles/via_tests.dir/via/vipl_misuse_test.cc.o"
  "CMakeFiles/via_tests.dir/via/vipl_misuse_test.cc.o.d"
  "via_tests"
  "via_tests.pdb"
  "via_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
