# Empty compiler generated dependencies file for via_tests.
# This may be replaced when dependencies are built.
