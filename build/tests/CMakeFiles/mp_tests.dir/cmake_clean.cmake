file(REMOVE_RECURSE
  "CMakeFiles/mp_tests.dir/mp/collectives_test.cc.o"
  "CMakeFiles/mp_tests.dir/mp/collectives_test.cc.o.d"
  "CMakeFiles/mp_tests.dir/mp/comm_test.cc.o"
  "CMakeFiles/mp_tests.dir/mp/comm_test.cc.o.d"
  "CMakeFiles/mp_tests.dir/mp/indirect_test.cc.o"
  "CMakeFiles/mp_tests.dir/mp/indirect_test.cc.o.d"
  "CMakeFiles/mp_tests.dir/mp/multidevice_test.cc.o"
  "CMakeFiles/mp_tests.dir/mp/multidevice_test.cc.o.d"
  "mp_tests"
  "mp_tests.pdb"
  "mp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
