// chaos_locktest.cpp - the paper's locktest, escalated: memory pressure AND
// injected faults at the same time, end to end through the message layer.
//
// Two acts, same fault plan, same seed, same traffic:
//
//   act 1  refcount policy (Berkeley/M-VIA lineage), raw delivery: the
//          swapper relocates the receiver's registered buffer while the
//          cached registration keeps DMA-ing through stale TPT entries, and
//          injected wire drops / DMA bit-flips go completely unnoticed -
//          transfers fail or deliver silently corrupted data.
//   act 2  kiobuf policy (the paper's proposal) + the reliable transport:
//          pinned pages cannot move, every frame is checksummed and acked,
//          drops are retransmitted - every transfer completes and verifies.
//
// Both acts run the same fault plan from the same seed, so the only knobs
// that change are the locking policy and the delivery mode; a replay of
// act 1 at the end proves the schedule and outcome reproduce exactly.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "experiments/pressure.h"
#include "fault/fault.h"
#include "msg/transport.h"
#include "simkern/procfs.h"
#include "util/rng.h"

using namespace vialock;

namespace {

constexpr std::uint64_t kSeed = 97;
constexpr int kRounds = 10;
constexpr std::uint32_t kLen = 64 * 1024;

fault::FaultPlan chaos_plan() {
  fault::FaultPlan plan;
  plan.seed = kSeed;
  plan.add({.site = fault::FaultSite::Wire,
            .action = fault::FaultAction::Drop,
            .probability = 0.05});
  plan.add({.site = fault::FaultSite::NicDma,
            .action = fault::FaultAction::Corrupt,
            .probability = 0.03});
  plan.add({.site = fault::FaultSite::SwapRead,
            .action = fault::FaultAction::Delay,
            .probability = 0.10,
            .delay = 500'000});
  return plan;
}

std::vector<std::byte> pattern(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(kLen);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xFF);
  return out;
}

via::NodeSpec node_spec(via::PolicyKind policy) {
  via::NodeSpec spec;
  spec.kernel.frames = 4096;  // 16 MB node
  spec.kernel.swap_slots = 16384;
  spec.nic.tpt_entries = 8192;
  spec.policy = policy;
  return spec;
}

struct ActResult {
  int clean = 0;
  int corrupt = 0;
  int failed = 0;
  msg::ChannelStats stats;
  std::string schedule;
};

ActResult run_act(const char* label, via::PolicyKind policy, bool reliable) {
  via::Cluster cluster;
  fault::FaultEngine engine(chaos_plan(), cluster.clock());
  const auto n0 = cluster.add_node(node_spec(policy));
  const auto n1 = cluster.add_node(node_spec(policy));

  msg::Channel::Config cfg;
  cfg.user_heap_bytes = 2ULL << 20;
  cfg.reliability.enabled = reliable;
  msg::Channel ch(cluster, n0, n1, cfg);
  if (!ok(ch.init())) std::abort();
  cluster.inject_faults(&engine);  // armed after setup: registration and
                                   // connect never consume fault events

  // Arm the flight recorders: span recording on (it feeds the postmortem
  // view), the plan's seed stamped in, and a sink that writes the
  // self-contained FLIGHT_<label>.json the moment a terminal fault or an
  // invariant trip calls flight_dump(). Same seed -> byte-identical dump.
  const std::string flight_path = std::string("FLIGHT_") + label + ".json";
  for (const auto id : {n0, n1}) {
    simkern::Kernel& kern = cluster.node(id).kernel();
    kern.spans().enable(true);
    kern.flight().set_seed(kSeed);
    kern.flight().set_sink(
        [flight_path](std::string_view reason, const std::string& json) {
          std::ofstream out(flight_path);
          out << json;
          std::printf("  [flight] %s: wrote %s (%zu bytes)\n",
                      std::string(reason).c_str(), flight_path.c_str(),
                      json.size());
        });
  }

  ActResult res;
  std::vector<std::byte> out(kLen);
  for (int round = 0; round < kRounds; ++round) {
    // Rendezvous keeps the receiver's buffer registration cached across
    // rounds - precisely the window the locktest attacks.
    const auto payload = pattern(kSeed + round);
    if (!ok(ch.stage(0, payload))) std::abort();
    if (!ok(ch.transfer(msg::Protocol::Rendezvous, 0, 0, kLen))) {
      ++res.failed;
      // Terminal fault: the transfer gave up. Snapshot the sender's recent
      // spans, trace ring, and metrics for postmortem analysis.
      cluster.node(n0).kernel().flight_dump("transfer_failed");
      continue;
    }
    if (!ok(ch.fetch(0, out))) std::abort();
    if (out == payload) {
      ++res.clean;
    } else {
      ++res.corrupt;
      // Invariant trip: delivery "succeeded" but the data is wrong - the
      // silent-corruption case the paper's locking mechanism exists to
      // prevent. The receiver's flight dump shows what DMA'd where.
      cluster.node(n1).kernel().flight_dump("data_corrupted");
    }
    if (round == 2) {
      // Mid-run memory pressure on the receiver: an unrelated allocator
      // forces the swapper to look for victim pages.
      const auto pr = experiments::apply_memory_pressure(
          cluster.node(n1).kernel(), 1.2);
      std::printf("  [round %d] pressure: allocator dirtied %llu pages, "
                  "%llu swapped out\n",
                  round, static_cast<unsigned long long>(pr.pages_touched),
                  static_cast<unsigned long long>(
                      cluster.node(n1).kernel().stats().pages_swapped_out));
    }
  }
  res.stats = ch.stats();
  res.schedule = engine.schedule_string();

  // The kernel's /proc/vmstat now carries the cumulative fault counters.
  const std::string vm = simkern::vmstat(cluster.node(n1).kernel());
  for (const char* key : {"fault_injected_"}) {
    std::size_t pos = 0;
    while ((pos = vm.find(key, pos)) != std::string::npos) {
      const std::size_t end = vm.find('\n', pos);
      const std::string line = vm.substr(pos, end - pos);
      if (line.back() != '0' || line[line.size() - 2] != ' ')
        std::printf("  [vmstat] %s\n", line.c_str());
      pos = end;
    }
  }
  return res;
}

void print_result(const char* label, const ActResult& r) {
  std::printf("%s: %d clean, %d CORRUPTED, %d failed "
              "(retries %llu, crc catches %llu, dedups %llu)\n",
              label, r.clean, r.corrupt, r.failed,
              static_cast<unsigned long long>(r.stats.retries),
              static_cast<unsigned long long>(r.stats.corruptions_detected),
              static_cast<unsigned long long>(r.stats.dup_frames_dropped));
}

}  // namespace

int main() {
  std::printf("chaos locktest: %d x %u KB rendezvous transfers under memory "
              "pressure + injected faults (seed %llu)\n\n",
              kRounds, kLen / 1024, static_cast<unsigned long long>(kSeed));

  std::printf("act 1: refcount policy, raw delivery\n");
  const ActResult bad =
      run_act("refcount_raw", via::PolicyKind::Refcount, /*reliable=*/false);
  print_result("act 1", bad);

  std::printf("\nact 2: kiobuf policy, reliable delivery\n");
  const ActResult good =
      run_act("kiobuf_reliable", via::PolicyKind::Kiobuf, /*reliable=*/true);
  print_result("act 2", good);

  // Replay act 1: the same seed must reproduce the identical fault schedule
  // and the identical outcome. (The two *acts* realise different schedules
  // even with one seed - different policies take different code paths - but
  // any single configuration replays exactly.)
  std::printf("\nreplaying act 1 with the same seed...\n");
  const ActResult replay = run_act("refcount_replay", via::PolicyKind::Refcount,
                                   /*reliable=*/false);
  const bool replayed = replay.schedule == bad.schedule &&
                        replay.clean == bad.clean &&
                        replay.corrupt == bad.corrupt &&
                        replay.failed == bad.failed;
  std::printf("replay byte-identical (schedule + outcome): %s\n",
              replayed ? "yes" : "NO");
  const bool contrast = replayed && (bad.corrupt + bad.failed) > 0 &&
                        good.clean == kRounds && good.corrupt == 0 &&
                        good.failed == 0;
  std::printf("verdict: %s\n",
              contrast
                  ? "refcount corrupts/loses data; kiobuf + reliable "
                    "transport completes every transfer intact"
                  : "UNEXPECTED - contrast not demonstrated");
  return contrast ? 0 : 1;
}
