// mp_ring.cpp - token ring over the MPI-flavoured layer: nonblocking
// receives, tag matching, and an ANY_SOURCE collector, exercising the
// posted/unexpected matching machinery end to end.
//
//   ./build/examples/mp_ring
#include <cstdio>
#include <span>
#include <vector>

#include "mp/comm.h"

using namespace vialock;

int main() {
  constexpr mp::Rank kRanks = 4;
  constexpr int kLaps = 5;
  constexpr std::int32_t kTokenTag = 1;
  constexpr std::int32_t kReportTag = 2;

  via::Cluster cluster;
  std::vector<via::NodeId> nodes;
  for (mp::Rank r = 0; r < kRanks; ++r) {
    via::NodeSpec spec;
    spec.policy = via::PolicyKind::Kiobuf;
    nodes.push_back(cluster.add_node(spec));
  }
  mp::Comm comm(cluster, nodes);
  if (!ok(comm.init())) {
    std::puts("comm init failed");
    return 1;
  }

  // Pass an incrementing token around the ring kLaps times.
  std::uint64_t token = 0;
  if (!ok(comm.stage(0, 0, std::as_bytes(std::span{&token, 1})))) return 1;
  for (int lap = 0; lap < kLaps; ++lap) {
    for (mp::Rank r = 0; r < kRanks; ++r) {
      const mp::Rank next = (r + 1) % kRanks;
      // Receiver posts first (expected path), sender fires.
      const mp::ReqId rx = comm.irecv(next, static_cast<std::int32_t>(r),
                                      kTokenTag, 0, 64);
      if (!comm.wait(comm.isend(r, next, kTokenTag, 0, 8))) return 1;
      mp::MpStatus st;
      if (!comm.wait(rx, &st)) return 1;
      // Increment and restage at the receiver.
      std::uint64_t v = 0;
      if (!ok(comm.fetch(next, 0, std::as_writable_bytes(std::span{&v, 1}))))
        return 1;
      ++v;
      if (!ok(comm.stage(next, 0, std::as_bytes(std::span{&v, 1})))) return 1;
    }
  }
  std::uint64_t final_token = 0;
  if (!ok(comm.fetch(0, 0, std::as_writable_bytes(std::span{&final_token, 1}))))
    return 1;

  // Every rank reports its final token to rank 0, which collects with
  // ANY_SOURCE (messages arrive unexpected, in arbitrary rank order).
  for (mp::Rank r = 1; r < kRanks; ++r) {
    const std::uint64_t mine = 0xE0000 + r;
    if (!ok(comm.stage(r, 128, std::as_bytes(std::span{&mine, 1})))) return 1;
    if (!comm.wait(comm.isend(r, 0, kReportTag, 128, 8))) return 1;
  }
  int reports = 0;
  while (comm.iprobe(0, mp::kAnySource, kReportTag)) {
    mp::MpStatus st;
    if (!ok(comm.recv(0, mp::kAnySource, kReportTag, 256, 64, &st))) return 1;
    std::uint64_t v = 0;
    if (!ok(comm.fetch(0, 256, std::as_writable_bytes(std::span{&v, 1}))))
      return 1;
    std::printf("rank 0 collected report 0x%llx from rank %u\n",
                static_cast<unsigned long long>(v), st.source);
    ++reports;
  }

  const auto& st = comm.stats();
  std::printf("\nmp_ring OK: token value %llu after %d laps x %u hops "
              "(expected %d)\n",
              static_cast<unsigned long long>(final_token), kLaps, kRanks,
              kLaps * kRanks);
  std::printf("  reports collected : %d\n", reports);
  std::printf("  eager sends       : %llu (expected-path %llu, unexpected %llu)\n",
              static_cast<unsigned long long>(st.eager_sends),
              static_cast<unsigned long long>(st.expected_msgs),
              static_cast<unsigned long long>(st.unexpected_msgs));
  return final_token == kLaps * kRanks && reports == kRanks - 1 ? 0 : 1;
}
