// locktest_demo.cpp - the paper's section 3.1 experiment, narrated step by
// step for one policy chosen on the command line.
//
//   ./build/examples/locktest_demo            # kiobuf (the proposal)
//   ./build/examples/locktest_demo refcount   # watch Berkeley/M-VIA fail
//   ./build/examples/locktest_demo pageflag|mlock|mlocktrack
#include <cstdio>
#include <cstring>
#include <span>
#include <string>

#include "experiments/pressure.h"
#include "via/node.h"

using namespace vialock;

namespace {

via::PolicyKind parse_policy(int argc, char** argv) {
  const std::string arg = argc > 1 ? argv[1] : "kiobuf";
  if (arg == "refcount") return via::PolicyKind::Refcount;
  if (arg == "pageflag") return via::PolicyKind::PageFlag;
  if (arg == "mlock") return via::PolicyKind::Mlock;
  if (arg == "mlocktrack") return via::PolicyKind::MlockTracked;
  return via::PolicyKind::Kiobuf;
}

}  // namespace

int main(int argc, char** argv) {
  const via::PolicyKind policy = parse_policy(argc, argv);
  std::printf("locktest with locking policy: %s\n\n",
              std::string(to_string(policy)).c_str());

  Clock clock;
  CostModel costs;
  via::NodeSpec spec;
  spec.kernel.frames = 2048;  // 8 MB node
  spec.kernel.swap_slots = 8192;
  spec.policy = policy;
  via::Node node(spec, clock, costs);
  simkern::Kernel& kern = node.kernel();

  // Step 1: allocate and fill.
  const simkern::Pid pid = kern.create_task("locktest");
  constexpr std::uint32_t kPages = 16;
  const auto addr = *kern.sys_mmap_anon(
      pid, kPages * simkern::kPageSize,
      simkern::VmFlag::Read | simkern::VmFlag::Write);
  for (std::uint32_t p = 0; p < kPages; ++p) {
    const std::uint64_t stamp = 0x1111000000000000ULL + p;
    (void)kern.write_user(pid, addr + p * simkern::kPageSize,
                          std::as_bytes(std::span{&stamp, 1}));
  }
  std::printf("step 1: allocated and filled %u pages at 0x%llx\n", kPages,
              static_cast<unsigned long long>(addr));

  // Step 2: register - the NIC's TPT now stores the physical addresses.
  const via::ProtectionTag tag = node.agent().create_ptag(pid);
  via::MemHandle mh;
  if (!ok(node.agent().register_mem(pid, addr, kPages * simkern::kPageSize,
                                    tag, mh))) {
    std::puts("registration failed");
    return 1;
  }
  const auto reg_pfns = node.agent().lock_handle(mh.id)->pfns;
  std::printf("step 2: registered; first page lives in frame %u\n",
              reg_pfns[0]);

  // Step 3: the allocator process forces swapping.
  const auto pr = experiments::apply_memory_pressure(kern, 1.5);
  std::printf("step 3: allocator dirtied %llu pages; kernel swapped out %llu\n",
              static_cast<unsigned long long>(pr.pages_touched),
              static_cast<unsigned long long>(kern.stats().pages_swapped_out));

  // Step 4: write again to each page.
  for (std::uint32_t p = 0; p < kPages; ++p) {
    const std::uint64_t stamp = 0x2222000000000000ULL + p;
    (void)kern.write_user(pid, addr + p * simkern::kPageSize + 8,
                          std::as_bytes(std::span{&stamp, 1}));
  }
  std::puts("step 4: locktest wrote to every page again");

  // Step 5: the NIC DMA-writes through the registration-time address.
  const std::uint64_t magic = 0xD1AD1AD1AD1AD1ADULL;
  (void)node.nic().dma_write_local(mh, addr + 16,
                                   std::as_bytes(std::span{&magic, 1}));
  std::puts("step 5: NIC DMA wrote a magic value into \"the first page\"");

  // Step 6: compare physical addresses.
  std::uint32_t relocated = 0;
  for (std::uint32_t p = 0; p < kPages; ++p) {
    const auto now = kern.resolve(pid, addr + p * simkern::kPageSize);
    if (!now || *now != reg_pfns[p]) ++relocated;
  }
  std::printf("step 6: %u of %u pages changed their physical address\n",
              relocated, kPages);

  // Step 8: does the process see the DMA write?
  std::uint64_t seen = 0;
  (void)kern.read_user(pid, addr + 16,
                       std::as_writable_bytes(std::span{&seen, 1}));
  std::printf("step 8: process reads 0x%016llx at the DMA offset -> %s\n",
              static_cast<unsigned long long>(seen),
              seen == magic ? "the NIC write IS visible"
                            : "the NIC wrote to a STALE frame");

  // Step 7: deregister.
  (void)node.agent().deregister_mem(mh);
  std::printf("\nverdict: %s\n",
              (relocated == 0 && seen == magic)
                  ? "registration stayed consistent - reliable locking"
                  : "TPT went stale - this policy does not lock memory");
  return 0;
}
