// trace_postmortem.cpp - use the kernel's event-trace ring to watch the
// refcount-locking failure unfold: the exact swap-out that detaches the
// registered frame, and the major fault that re-homes the page elsewhere.
//
//   ./build/examples/trace_postmortem
#include <cstdio>
#include <span>

#include "experiments/pressure.h"
#include "via/node.h"

using namespace vialock;

int main() {
  Clock clock;
  CostModel costs;
  via::NodeSpec spec;
  spec.kernel.frames = 1024;
  spec.kernel.swap_slots = 4096;
  spec.policy = via::PolicyKind::Refcount;  // the broken driver
  via::Node node(spec, clock, costs);
  simkern::Kernel& kern = node.kernel();

  const simkern::Pid pid = kern.create_task("victim");
  const auto addr = *kern.sys_mmap_anon(
      pid, 4 * simkern::kPageSize,
      simkern::VmFlag::Read | simkern::VmFlag::Write);
  const std::uint64_t v = 1;
  (void)kern.write_user(pid, addr, std::as_bytes(std::span{&v, 1}));

  const auto tag = node.agent().create_ptag(pid);
  via::MemHandle mh;
  if (!ok(node.agent().register_mem(pid, addr, 4 * simkern::kPageSize, tag,
                                    mh))) {
    return 1;
  }
  const auto registered_frame = node.agent().lock_handle(mh.id)->pfns[0];
  std::printf("registered page 0 -> frame %u (refcount policy: no pin!)\n\n",
              registered_frame);

  // Arm the flight recorder, apply pressure, touch the page back in.
  kern.trace().enable(true);
  const auto pr = experiments::apply_memory_pressure(kern, 1.3);
  (void)kern.touch(pid, addr, /*write=*/true);
  kern.trace().enable(false);

  // Post-mortem: find the events that concern our page.
  std::printf("flight recorder (events touching pid %u at 0x%llx):\n", pid,
              static_cast<unsigned long long>(addr));
  int shown = 0;
  for (const auto& e : kern.trace().tail()) {
    if (e.pid != pid || e.addr != addr) continue;
    std::printf("  %s\n", e.to_string().c_str());
    ++shown;
  }
  std::printf("(%d events; %llu recorded in total during %llu swap-outs)\n\n",
              shown, static_cast<unsigned long long>(kern.trace().size()),
              static_cast<unsigned long long>(kern.stats().pages_swapped_out));

  const auto now = kern.resolve(pid, addr);
  std::printf("verdict: NIC still targets frame %u; the process now lives in "
              "frame %u -> %s\n",
              registered_frame, now ? *now : 0,
              (now && *now == registered_frame) ? "consistent"
                                                : "STALE TPT (the paper's bug)");
  (void)node.agent().deregister_mem(mh);
  kern.exit_task(pr.allocator_pid);
  return 0;
}
