// cluster_allreduce.cpp - a four-node iterative-solver skeleton: the kind of
// FEM/CFD message-passing workload the SFB 393 collection exists to serve.
// Each rank updates a local vector, the cluster allreduces the residual, and
// a broadcast ships updated coefficients - all over reliably locked VIA
// memory.
//
//   ./build/examples/cluster_allreduce
#include <cstdio>
#include <span>
#include <vector>

#include "msg/mesh.h"
#include "util/rng.h"

using namespace vialock;

int main() {
  constexpr msg::Mesh::Rank kRanks = 4;
  constexpr std::uint32_t kLocal = 64;  // u64s per rank

  via::Cluster cluster;
  std::vector<via::NodeId> nodes;
  for (msg::Mesh::Rank r = 0; r < kRanks; ++r) {
    via::NodeSpec spec;
    spec.policy = via::PolicyKind::Kiobuf;
    nodes.push_back(cluster.add_node(spec));
  }
  msg::Mesh::Config cfg;
  cfg.channel.user_heap_bytes = 256 * 1024;
  msg::Mesh mesh(cluster, nodes, cfg);
  if (!ok(mesh.init())) {
    std::puts("mesh init failed");
    return 1;
  }

  Rng rng(11);
  std::vector<std::uint64_t> local(kLocal);

  for (int iter = 0; iter < 10; ++iter) {
    // Each rank computes a local contribution...
    for (msg::Mesh::Rank r = 0; r < kRanks; ++r) {
      for (auto& v : local) v = rng.below(1000);
      if (!ok(mesh.stage_rank(r, 0, std::as_bytes(std::span{local})))) return 1;
    }
    // ...the residual vector is allreduced...
    if (!ok(mesh.allreduce_sum(0, kLocal))) return 1;
    // ...rank 0 "decides" and broadcasts an 8 KB coefficient update...
    if (!ok(mesh.broadcast(0, 64 * 1024, 8 * 1024))) return 1;
    // ...and everyone synchronises before the next iteration.
    if (!ok(mesh.barrier())) return 1;
  }

  // Sanity: all ranks hold the same reduced vector.
  std::vector<std::uint64_t> v0(kLocal);
  std::vector<std::uint64_t> vr(kLocal);
  if (!ok(mesh.fetch_rank(0, 0, std::as_writable_bytes(std::span{v0}))))
    return 1;
  for (msg::Mesh::Rank r = 1; r < kRanks; ++r) {
    if (!ok(mesh.fetch_rank(r, 0, std::as_writable_bytes(std::span{vr}))))
      return 1;
    if (vr != v0) {
      std::printf("rank %u diverged!\n", r);
      return 1;
    }
  }

  const auto& st = mesh.stats();
  std::printf("cluster_allreduce OK: 10 iterations on %u ranks\n", kRanks);
  std::printf("  p2p messages : %llu\n",
              static_cast<unsigned long long>(st.p2p_msgs));
  std::printf("  allreduces   : %llu, broadcasts: %llu, barriers: %llu\n",
              static_cast<unsigned long long>(st.allreduces),
              static_cast<unsigned long long>(st.broadcasts),
              static_cast<unsigned long long>(st.barriers));
  std::printf("  virtual time : %.2f ms\n",
              static_cast<double>(cluster.clock().now()) / 1e6);
  return 0;
}
