// pio_counter.cpp - the SCI shared-memory idiom: a producer increments a
// sequence counter and publishes records into a consumer's exported buffer
// with plain remote stores - no descriptors, no doorbells, no kernel. The
// "simple memory reference" communication style the combined VIA/SCI papers
// pair with descriptor DMA.
//
//   ./build/examples/pio_counter
#include <cstdio>
#include <span>

#include "via/node.h"
#include "via/remote_window.h"
#include "via/vipl.h"

using namespace vialock;

int main() {
  via::Cluster cluster;
  via::NodeSpec spec;
  spec.policy = via::PolicyKind::Kiobuf;
  const via::NodeId producer_node = cluster.add_node(spec);
  const via::NodeId consumer_node = cluster.add_node(spec);

  // The consumer exports (registers) a record buffer...
  simkern::Kernel& ck = cluster.node(consumer_node).kernel();
  const simkern::Pid consumer = ck.create_task("consumer");
  via::Vipl consumer_lib(cluster.node(consumer_node).agent(), consumer);
  if (!ok(consumer_lib.open())) return 1;
  const auto buf = *ck.sys_mmap_anon(
      consumer, 16 * simkern::kPageSize,
      simkern::VmFlag::Read | simkern::VmFlag::Write);
  via::MemHandle exported;
  if (!ok(consumer_lib.register_mem(buf, 16 * simkern::kPageSize, exported)))
    return 1;

  // ...and the producer imports it as a PIO window.
  auto window = via::RemoteWindow::import(cluster.fabric(), producer_node,
                                          consumer_node, exported);
  if (!window) return 1;

  // Publish 100 records: payload first, sequence counter last (the classic
  // SCI ordering: the posted stores arrive in order, so a consumer polling
  // the counter sees complete records).
  struct Record {
    std::uint64_t seq;
    std::uint64_t value;
  };
  const Nanos t0 = cluster.clock().now();
  for (std::uint64_t i = 1; i <= 100; ++i) {
    const std::uint64_t value = i * i;
    const std::uint64_t slot = 64 + (i % 16) * sizeof(Record);
    if (!ok(window->store(slot + 8, std::as_bytes(std::span{&value, 1}))))
      return 1;
    if (!ok(window->store(slot, std::as_bytes(std::span{&i, 1})))) return 1;
    if (!ok(window->store(0, std::as_bytes(std::span{&i, 1})))) return 1;
  }
  const Nanos elapsed = cluster.clock().now() - t0;

  // The consumer reads everything with plain loads of its own memory.
  std::uint64_t head = 0;
  if (!ok(ck.read_user(consumer, buf,
                       std::as_writable_bytes(std::span{&head, 1}))))
    return 1;
  std::uint64_t last_value = 0;
  const std::uint64_t slot = 64 + (head % 16) * sizeof(Record);
  if (!ok(ck.read_user(consumer, buf + slot + 8,
                       std::as_writable_bytes(std::span{&last_value, 1}))))
    return 1;

  std::printf("pio_counter: head=%llu, last record value=%llu (expect %llu)\n",
              static_cast<unsigned long long>(head),
              static_cast<unsigned long long>(last_value),
              static_cast<unsigned long long>(head * head));
  std::printf("300 remote stores in %.2f us virtual time (%.0f ns/store) -\n"
              "no descriptor, no doorbell, no syscall on the data path.\n",
              static_cast<double>(elapsed) / 1e3,
              static_cast<double>(elapsed) / 300.0);
  if (!ok(consumer_lib.deregister_mem(exported))) return 1;
  return head == 100 && last_value == 100 * 100 ? 0 : 1;
}
