// zero_copy_pipeline.cpp - a realistic messaging workload over the Channel
// API: an MPI-style halo-exchange-ish pipeline that sends a mix of small
// control messages and large data blocks, letting the protocol switch and
// the registration cache do their jobs - the scenario the paper's
// introduction motivates ("the buffers must be registered on the fly").
//
//   ./build/examples/zero_copy_pipeline
#include <cstdio>
#include <vector>

#include "msg/transport.h"
#include "util/rng.h"

using namespace vialock;

int main() {
  via::Cluster cluster;
  via::NodeSpec spec;
  spec.kernel.frames = 4096;
  spec.nic.tpt_entries = 4096;
  spec.policy = via::PolicyKind::Kiobuf;
  const auto n0 = cluster.add_node(spec);
  const auto n1 = cluster.add_node(spec);

  msg::Channel::Config cfg;
  cfg.user_heap_bytes = 4ULL << 20;
  cfg.eager_threshold = 4 * 1024;  // the paper family's protocol switch point
  msg::Channel channel(cluster, n0, n1, cfg);
  if (!ok(channel.init())) {
    std::puts("channel init failed");
    return 1;
  }

  // Simulated iterative solver: per iteration one 256 B "residual" control
  // message plus two 128 KB boundary blocks, reusing the same halo buffers.
  constexpr int kIterations = 25;
  constexpr std::uint32_t kHalo = 128 * 1024;
  Rng rng(7);
  std::vector<std::byte> halo(kHalo);
  std::vector<std::byte> out(kHalo);

  std::uint64_t checked = 0;
  for (int it = 0; it < kIterations; ++it) {
    for (auto& b : halo) b = static_cast<std::byte>(rng.next() & 0xFF);

    // Control message (eager path).
    const std::uint64_t residual = rng.next();
    if (!ok(channel.stage(0, std::as_bytes(std::span{&residual, 1})))) return 1;
    if (!ok(channel.transfer_auto(0, 0, sizeof residual))) return 1;

    // Two halo blocks (rendezvous zero-copy path), alternating buffers.
    for (int half = 0; half < 2; ++half) {
      const std::uint64_t off = 64 * 1024 + half * kHalo;
      if (!ok(channel.stage(off, halo))) return 1;
      if (!ok(channel.transfer_auto(off, off, kHalo))) return 1;
      if (!ok(channel.fetch(off, out))) return 1;
      if (out != halo) {
        std::printf("iteration %d: data mismatch!\n", it);
        return 1;
      }
      ++checked;
    }
  }

  const auto& st = channel.stats();
  const auto& sc = channel.sender_cache_stats();
  std::printf("pipeline OK: %d iterations, %llu blocks verified\n",
              kIterations, static_cast<unsigned long long>(checked));
  std::printf("  eager msgs        : %llu\n",
              static_cast<unsigned long long>(st.eager_msgs));
  std::printf("  rendezvous msgs   : %llu\n",
              static_cast<unsigned long long>(st.rendezvous_msgs));
  std::printf("  bytes moved       : %llu\n",
              static_cast<unsigned long long>(st.bytes_moved));
  std::printf("  sender reg cache  : %llu hits / %llu misses "
              "(registrations amortised away)\n",
              static_cast<unsigned long long>(sc.hits),
              static_cast<unsigned long long>(sc.misses));
  std::printf("  virtual time      : %.2f ms\n",
              static_cast<double>(cluster.clock().now()) / 1e6);
  return 0;
}
