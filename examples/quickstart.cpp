// quickstart.cpp - smallest complete use of the vialock library:
// bring up a two-node cluster, register memory reliably (kiobuf mechanism),
// and move a message with VIA send/receive.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <span>

#include "via/node.h"
#include "via/vipl.h"

using namespace vialock;

int main() {
  // A cluster of two nodes; every node runs the simulated Linux kernel, a
  // VIA NIC and a kernel agent using the paper's kiobuf locking mechanism.
  via::Cluster cluster;
  via::NodeSpec spec;
  spec.policy = via::PolicyKind::Kiobuf;
  const via::NodeId n0 = cluster.add_node(spec);
  const via::NodeId n1 = cluster.add_node(spec);

  // One process per node.
  simkern::Kernel& k0 = cluster.node(n0).kernel();
  simkern::Kernel& k1 = cluster.node(n1).kernel();
  const simkern::Pid p0 = k0.create_task("sender");
  const simkern::Pid p1 = k1.create_task("receiver");

  // Each process opens the VI provider library (creates its protection tag).
  via::Vipl sender(cluster.node(n0).agent(), p0);
  via::Vipl receiver(cluster.node(n1).agent(), p1);
  if (!ok(sender.open()) || !ok(receiver.open())) return 1;

  // Allocate and register a 4-page communication buffer on each side. The
  // registration pins the pages (map_user_kiobuf) and programs the NIC TPT.
  const auto prot = simkern::VmFlag::Read | simkern::VmFlag::Write;
  const simkern::VAddr b0 = *k0.sys_mmap_anon(p0, 4 * simkern::kPageSize, prot);
  const simkern::VAddr b1 = *k1.sys_mmap_anon(p1, 4 * simkern::kPageSize, prot);
  via::MemHandle mh0, mh1;
  if (!ok(sender.register_mem(b0, 4 * simkern::kPageSize, mh0))) return 1;
  if (!ok(receiver.register_mem(b1, 4 * simkern::kPageSize, mh1))) return 1;

  // Create and connect a VI pair (reliable delivery, the default attributes).
  via::ViId vi0 = via::kInvalidVi;
  via::ViId vi1 = via::kInvalidVi;
  if (!ok(sender.create_vi(vi0)) || !ok(receiver.create_vi(vi1))) return 1;
  if (!ok(cluster.fabric().connect(n0, vi0, n1, vi1))) return 1;

  // The receiver pre-posts a descriptor (VIA requires this), the sender
  // writes a message into its registered buffer and posts the send.
  const char msg[] = "hello from a reliably locked buffer";
  if (!ok(k0.write_user(p0, b0, std::as_bytes(std::span{msg})))) return 1;
  if (!ok(receiver.post_recv(vi1, mh1, b1, sizeof msg))) return 1;
  if (!ok(sender.post_send(vi0, mh0, b0, sizeof msg))) return 1;

  // Poll completions and read the message out of the receiver's memory.
  const auto sc = sender.send_done(vi0);
  const auto rc = receiver.recv_done(vi1);
  if (!sc || !sc->done_ok() || !rc || !rc->done_ok()) return 1;

  char out[sizeof msg] = {};
  if (!ok(k1.read_user(p1, b1, std::as_writable_bytes(std::span{out})))) return 1;

  std::printf("received: \"%s\" (%u bytes, %.2f us virtual time)\n", out,
              rc->transferred,
              static_cast<double>(cluster.clock().now()) / 1000.0);
  std::printf("sender NIC: %llu bytes tx; receiver pinned pages survive any "
              "memory pressure.\n",
              static_cast<unsigned long long>(
                  cluster.node(n0).nic().stats().bytes_tx));

  // RAII-free teardown (explicit in this C-style example).
  if (!ok(sender.deregister_mem(mh0)) || !ok(receiver.deregister_mem(mh1)))
    return 1;
  std::puts("quickstart OK");
  return 0;
}
