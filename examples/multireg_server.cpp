// multireg_server.cpp - multiple registration in anger: a storage-server-like
// process registers overlapping windows of one big buffer cache with two
// protection tags (a "frontend" VI and a "backup" VI), deregisters them in
// an order that would break mlock- or flag-based drivers, and proves every
// window is still DMA-consistent under memory pressure.
//
//   ./build/examples/multireg_server
#include <cstdio>
#include <span>
#include <vector>

#include "experiments/pressure.h"
#include "via/node.h"

using namespace vialock;

namespace {

bool window_consistent(via::Node& node, simkern::Pid pid,
                       const via::MemHandle& mh, simkern::VAddr addr) {
  // DMA-write a stamp through the TPT, then check the process sees it.
  const std::uint64_t stamp = 0xABCD0000 + mh.id;
  if (!ok(node.nic().dma_write_local(mh, addr,
                                     std::as_bytes(std::span{&stamp, 1}))))
    return false;
  std::uint64_t seen = 0;
  if (!ok(node.kernel().read_user(pid, addr,
                                  std::as_writable_bytes(std::span{&seen, 1}))))
    return false;
  return seen == stamp;
}

}  // namespace

int main() {
  Clock clock;
  CostModel costs;
  via::NodeSpec spec;
  spec.kernel.frames = 2048;
  spec.kernel.swap_slots = 8192;
  spec.policy = via::PolicyKind::Kiobuf;  // swap for Mlock and watch it fail
  via::Node node(spec, clock, costs);
  simkern::Kernel& kern = node.kernel();

  const simkern::Pid pid = kern.create_task("storage-server");
  constexpr std::uint64_t kCachePages = 64;
  const auto cache = *kern.sys_mmap_anon(
      pid, kCachePages * simkern::kPageSize,
      simkern::VmFlag::Read | simkern::VmFlag::Write);

  // Two tags: frontend traffic and backup traffic.
  const auto frontend_tag = node.agent().create_ptag(pid);
  const auto backup_tag = node.agent().create_ptag(pid);

  // Overlapping windows: frontend registers [0, 48) pages; backup registers
  // [16, 64) pages; plus a second frontend registration of the hot subrange
  // [16, 32) - three registrations covering page 20, say.
  struct Window {
    const char* name;
    via::ProtectionTag tag;
    std::uint64_t first_page, pages;
    via::MemHandle mh;
  };
  std::vector<Window> windows = {
      {"frontend [0,48)", frontend_tag, 0, 48, {}},
      {"backup   [16,64)", backup_tag, 16, 48, {}},
      {"hot      [16,32)", frontend_tag, 16, 16, {}},
  };
  for (auto& w : windows) {
    const auto addr = cache + w.first_page * simkern::kPageSize;
    if (!ok(node.agent().register_mem(pid, addr,
                                      w.pages * simkern::kPageSize, w.tag,
                                      w.mh))) {
      std::printf("register %s failed\n", w.name);
      return 1;
    }
    std::printf("registered %s -> handle %llu (TPT base %u)\n", w.name,
                static_cast<unsigned long long>(w.mh.id), w.mh.tpt_base);
  }

  // Deregister the big frontend window first - the order that unlocks too
  // much under mlock/pageflag policies.
  if (!ok(node.agent().deregister_mem(windows[0].mh))) return 1;
  std::puts("\nderegistered frontend [0,48) - hot and backup windows remain");

  // Heavy memory pressure.
  const auto pr = experiments::apply_memory_pressure(kern, 1.5);
  std::printf("allocator dirtied %llu pages; %llu pages swapped out\n",
              static_cast<unsigned long long>(pr.pages_touched),
              static_cast<unsigned long long>(
                  kern.stats().pages_swapped_out));

  // Both remaining windows must still be DMA-consistent.
  bool all_ok = true;
  for (std::size_t i = 1; i < windows.size(); ++i) {
    const auto& w = windows[i];
    const auto addr = cache + w.first_page * simkern::kPageSize;
    const bool okw = window_consistent(node, pid, w.mh, addr);
    std::printf("window %s: %s\n", w.name,
                okw ? "DMA consistent" : "STALE - corruption!");
    all_ok &= okw;
    (void)node.agent().deregister_mem(w.mh);
  }
  std::printf("\n%s\n", all_ok
                            ? "multireg_server OK: overlapping registrations "
                              "released independently"
                            : "FAILED: a deregistration broke a live window");
  return all_ok ? 0 : 1;
}
