// scenario_runner - run a declarative cluster scenario from a spec file.
//
//   scenario_runner --list                 # enumerate bundled specs
//   scenario_runner skewed-kv              # run a bundled spec by name
//   scenario_runner path/to/my.spec        # or any spec file by path
//   scenario_runner skewed-kv hosts=32 seed=7   # with key=value overrides
//
// Flags:
//   --json          write SCENARIO_<name>.json (the canonical report_json)
//   --trace-export  write TRACE_SCENARIO_<name>.json (merged chrome trace)
//   --timeline      sample continuously and write TIMELINE_<name>.json
//                   (with --trace-export: counter overlays in the trace too)
//   --watch         print the sampled timeline as a table after the run
//                   (memory pressure per tick, SLO firings marked)
//   --quiet         suppress the report tables (exit code still meaningful)
//
// Exit code 0 when the run completed with all invariants intact, 1 otherwise.
// Bundled specs live under examples/scenarios/ (SCENARIO_SPEC_DIR at build
// time); see DESIGN.md section 12 for the spec grammar.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/sampler.h"
#include "scenario/engine.h"
#include "scenario/spec.h"
#include "util/table.h"

#ifndef SCENARIO_SPEC_DIR
#define SCENARIO_SPEC_DIR "examples/scenarios"
#endif

namespace {

namespace fs = std::filesystem;
using namespace vialock;            // NOLINT
using namespace vialock::scenario;  // NOLINT

int list_specs() {
  const fs::path dir(SCENARIO_SPEC_DIR);
  if (!fs::is_directory(dir)) {
    std::cerr << "spec directory " << dir << " not found\n";
    return 1;
  }
  std::vector<fs::path> specs;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".spec") specs.push_back(entry.path());
  std::sort(specs.begin(), specs.end());
  std::cout << "bundled scenarios (" << dir.string() << "):\n";
  for (const auto& path : specs) {
    const ParseResult parsed = load_spec_file(path.string());
    if (!parsed.ok()) {
      std::cout << "  " << path.stem().string() << "  [parse error: "
                << parsed.error << "]\n";
      continue;
    }
    std::cout << "  " << summary(parsed.spec) << "\n";
  }
  return specs.empty() ? 1 : 0;
}

/// A bundled name like "skewed-kv" resolves to SCENARIO_SPEC_DIR/<name>.spec;
/// anything that exists on disk is taken verbatim.
std::string resolve_spec(const std::string& arg) {
  if (fs::exists(arg)) return arg;
  const fs::path bundled = fs::path(SCENARIO_SPEC_DIR) / (arg + ".spec");
  if (fs::exists(bundled)) return bundled.string();
  return arg;  // let load_spec_file report the miss
}

void print_report(const ScenarioSpec& spec, const ScenarioReport& r) {
  std::cout << "\n=== scenario " << spec.name << " ("
            << to_string(spec.pattern) << ", " << spec.hosts << " hosts, seed "
            << spec.seed << ") ===\n";
  Table t({"metric", "value"});
  t.row({"events dispatched", Table::num(r.events_dispatched)});
  t.row({"makespan", Table::nanos(r.makespan_ns)});
  t.row({"host busy time", Table::nanos(r.busy_ns)});
  t.row({"transfers ok/failed", Table::num(r.counters.transfers_ok) + " / " +
                                    Table::num(r.counters.transfers_failed)});
  t.row({"bytes moved", Table::bytes(r.counters.bytes_moved)});
  t.row({"registrations (agent)", Table::num(r.agent_registrations)});
  t.row({"deregistrations (agent)", Table::num(r.agent_deregistrations)});
  t.row({"admission rejects", Table::num(r.admission_rejects)});
  t.row({"regs + transfers", Table::num(r.registrations_plus_transfers())});
  t.row({"op latency p50/p99", Table::nanos(r.latency_p50_ns) + " / " +
                                   Table::nanos(r.latency_p99_ns)});
  if (r.faults_injected) t.row({"faults injected", Table::num(r.faults_injected)});
  t.row({"invariants", r.invariants_ok ? "OK" : "VIOLATED"});
  t.print();
  std::cout << "\n--- breakdown ---\n";
  r.breakdown.print();
  for (const auto& v : r.violations)
    std::cout << "violation: " << v << "\n";
}

/// --watch: the sampled timeline as a table, at most ~24 evenly-strided
/// rows so a megatick run stays readable. Shows the memory-pressure gauges
/// (the dynamics the paper's reclaim story cares about) and marks the ticks
/// where an SLO watchdog fired.
void print_watch(const obs::Sampler& sampler) {
  const auto& samples = sampler.samples();
  std::cout << "\n--- timeline (" << sampler.ticks() << " ticks, interval "
            << Table::nanos(sampler.interval()) << ", " << samples.size()
            << " retained) ---\n";
  if (samples.empty()) return;
  Table t({"t", "pinned", "free", "page_cache", "slo"});
  const std::size_t stride = std::max<std::size_t>(1, samples.size() / 24);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i % stride != 0 && i + 1 != samples.size()) continue;
    const auto& s = samples[i];
    std::uint64_t pinned = 0, free_frames = 0, cache = 0;
    (void)obs::Sampler::resolve(s.metrics, "simkern.mem.pinned_frames", pinned);
    (void)obs::Sampler::resolve(s.metrics, "simkern.mem.free_frames", free_frames);
    (void)obs::Sampler::resolve(s.metrics, "simkern.mem.page_cache_pages", cache);
    std::string slo;
    for (const auto& f : sampler.firings())
      if (f.when == s.when)
        slo += (slo.empty() ? "" : " ") +
               sampler.rules()[f.rule].metric + "!";
    t.row({Table::nanos(s.when), Table::num(pinned), Table::num(free_frames),
           Table::num(cache), slo.empty() ? "-" : slo});
  }
  t.print();
  for (const auto& f : sampler.firings())
    std::cout << "slo fired: " << sampler.rules()[f.rule].metric << " at "
              << Table::nanos(f.when) << " (observed " << f.observed << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false, trace = false, quiet = false;
  bool timeline = false, watch = false;
  std::string spec_arg;
  std::vector<std::pair<std::string, std::string>> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a == "--list") return list_specs();
    if (a == "--json") { json = true; continue; }
    if (a == "--trace-export") { trace = true; continue; }
    if (a == "--timeline") { timeline = true; continue; }
    if (a == "--watch") { watch = true; continue; }
    if (a == "--quiet") { quiet = true; continue; }
    const auto eq = a.find('=');
    if (eq != std::string::npos && a.rfind("--", 0) != 0) {
      overrides.emplace_back(a.substr(0, eq), a.substr(eq + 1));
      continue;
    }
    if (spec_arg.empty()) { spec_arg = a; continue; }
    std::cerr << "unexpected argument: " << a << "\n";
    return 2;
  }
  if (spec_arg.empty()) {
    std::cerr << "usage: scenario_runner (--list | <spec> [key=value...] "
                 "[--json] [--trace-export] [--timeline] [--watch] "
                 "[--quiet])\n";
    return 2;
  }

  ParseResult parsed = load_spec_file(resolve_spec(spec_arg));
  if (!parsed.ok()) {
    std::cerr << "spec error: " << parsed.error << "\n";
    return 2;
  }
  for (const auto& [key, value] : overrides) {
    const std::string err = parsed.spec.apply(key, value);
    if (!err.empty()) {
      std::cerr << "override " << key << "=" << value << ": " << err << "\n";
      return 2;
    }
  }

  const std::string invalid = parsed.spec.validate();
  if (!invalid.empty()) {
    std::cerr << "spec invalid: " << invalid << "\n";
    return 2;
  }

  ScenarioEngine engine(parsed.spec);
  if (!ok(engine.build())) {
    std::cerr << "scenario build failed\n";
    return 1;
  }
  if (trace) {
    for (std::size_t i = 0; i < engine.cluster().size(); ++i)
      engine.cluster()
          .node(static_cast<vialock::via::NodeId>(i))
          .kernel()
          .spans()
          .enable(true);
  }
  if (timeline || watch) {
    engine.enable_timeline();
    if (trace)
      // Memory-pressure counter overlays next to the spans (chrome trace
      // renders ph "C" events as stacked area charts).
      engine.set_trace_metrics({"simkern.mem.pinned_frames", "simkern.mem.free_frames"});
  }
  if (!ok(engine.run())) {
    std::cerr << "scenario run failed\n";
    return 1;
  }
  const ScenarioReport& report = engine.report();
  if (!quiet) print_report(engine.spec(), report);
  if (json) {
    const std::string path = "SCENARIO_" + engine.spec().name + ".json";
    std::ofstream out(path);
    out << report_json(engine.spec(), report);
    std::cout << "wrote " << path << "\n";
  }
  if (watch && engine.sampler() != nullptr) print_watch(*engine.sampler());
  if (timeline && engine.sampler() != nullptr) {
    const std::string path = "TIMELINE_" + engine.spec().name + ".json";
    std::ofstream out(path);
    out << engine.sampler()->timeline_json(engine.spec().name,
                                           engine.spec().seed);
    std::cout << "wrote " << path << "\n";
  }
  for (std::size_t i = 0; i < engine.flight_dumps().size(); ++i) {
    const auto& [reason, doc] = engine.flight_dumps()[i];
    const std::string path = "FLIGHT_" + engine.spec().name + "_" +
                             std::to_string(i) + ".json";
    std::ofstream out(path);
    out << doc;
    std::cout << "wrote " << path << " (" << reason << ")\n";
  }
  if (trace) {
    std::vector<const obs::SpanRecorder*> recorders;
    for (std::size_t i = 0; i < engine.cluster().size(); ++i)
      recorders.push_back(&engine.cluster()
                               .node(static_cast<vialock::via::NodeId>(i))
                               .kernel()
                               .spans());
    const std::string path = "TRACE_SCENARIO_" + engine.spec().name + ".json";
    std::ofstream out(path);
    const std::string overlay = engine.sampler() != nullptr
                                    ? engine.sampler()->chrome_counter_events()
                                    : std::string();
    out << obs::chrome_trace(recorders, overlay);
    std::cout << "wrote " << path << "\n";
  }
  return report.invariants_ok ? 0 : 1;
}
