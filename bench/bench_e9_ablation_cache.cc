// bench_e9_ablation_cache - Experiment E9 (ablation): registration-cache
// eviction policy under TPT pressure.
//
// DESIGN.md calls out the eviction choice (LRU, matching the paper family's
// "keep registered as long as possible"). Workload: 64 distinct 64 KB
// buffers, 80% of transfers hitting a hot set of 8, on a TPT that only holds
// ~30 cached buffer registrations - eviction is forced, and the policy
// decides who survives.
#include <iostream>

#include "bench_util.h"
#include "msg/transport.h"
#include "util/rng.h"
#include "util/table.h"

namespace vialock {
namespace {

using core::EvictionPolicy;
using msg::Channel;
using msg::Protocol;

struct Outcome {
  core::RegCacheStats sender;
  Nanos mean = 0;
};

Outcome run(EvictionPolicy policy) {
  via::Cluster cluster;
  via::NodeSpec spec = bench::eval_node(via::PolicyKind::Kiobuf);
  spec.nic.tpt_entries = 512;  // ~30 cached 16-page buffers after overheads
  // Pin the classic one-entry-per-page layout: this ablation varies the
  // eviction policy under TPT-entry pressure, and superpage compaction
  // (DESIGN.md section 14) would absorb the pressure entirely (a 16-page
  // buffer collapses to one entry, the TPT never fills, LRU == FIFO).
  spec.nic.max_superpage_order = 0;
  const auto n0 = cluster.add_node(spec);
  const auto n1 = cluster.add_node(spec);
  Channel::Config cfg;
  cfg.user_heap_bytes = 8ULL << 20;
  cfg.cache_policy = policy;
  Channel channel(cluster, n0, n1, cfg);
  if (!ok(channel.init())) std::abort();

  constexpr std::uint32_t kLen = 64 * 1024;
  constexpr int kBuffers = 64;
  constexpr int kHot = 8;
  constexpr int kTransfers = 300;
  Rng rng(2001);
  Nanos total = 0;
  for (int i = 0; i < kTransfers; ++i) {
    const std::uint64_t buf =
        rng.chance(0.8) ? rng.below(kHot) : rng.below(kBuffers);
    const std::uint64_t off = buf * kLen;
    const Nanos t0 = cluster.clock().now();
    if (!ok(channel.transfer(Protocol::Rendezvous, off, off, kLen)))
      std::abort();
    total += cluster.clock().now() - t0;
  }
  return Outcome{channel.sender_cache_stats(), total / kTransfers};
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout << "E9 (ablation): registration-cache eviction policy\n"
            << "(300 x 64 KB rendezvous transfers, 64 buffers, 80/20 hot set\n"
            << "of 8, TPT holds ~30 cached buffers)\n\n";
  Table table({"eviction policy", "hits", "misses", "evictions",
               "hit rate", "mean transfer"});
  for (const EvictionPolicy p :
       {EvictionPolicy::None, EvictionPolicy::Fifo, EvictionPolicy::Lru}) {
    const Outcome o = run(p);
    const double rate =
        static_cast<double>(o.sender.hits) /
        static_cast<double>(o.sender.hits + o.sender.misses) * 100.0;
    table.row({std::string(to_string(p)), Table::num(o.sender.hits),
               Table::num(o.sender.misses), Table::num(o.sender.evictions),
               Table::fp(rate, 1) + "%", Table::nanos(o.mean)});
  }
  table.print();
  bench::JsonReport report("E9", "registration-cache eviction ablation");
  report.add_table("eviction_policies", table);
  report.write_if(flags);
  std::cout << "\nShape: LRU keeps the hot set registered and wins; FIFO\n"
               "evicts hot buffers on schedule; no caching pays the full\n"
               "registration cost every transfer.\n";
  return report.compare_if(flags);
}
