// bench_e4_deregcost - Experiment E4: deregistration cost vs. region size.
//
// "Because the amount of memory for registration is limited it is important
// to deregister memory not required any longer" (companion paper) - so the
// cost of the release path matters for registration-cache eviction. All
// policies are linear in pages; mlock variants additionally pay the VMA
// split/merge and syscall overheads.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "util/table.h"
#include "via/node.h"

namespace vialock {
namespace {

using simkern::kPageShift;
using simkern::kPageSize;

Nanos measure_dereg(via::PolicyKind policy, std::uint64_t bytes) {
  Clock clock;
  CostModel costs;
  via::Node node(bench::eval_node(policy), clock, costs);
  auto& kern = node.kernel();
  auto& agent = node.agent();
  const auto pid = kern.create_task("app");
  const auto addr = *kern.sys_mmap_anon(
      pid, bytes, simkern::VmFlag::Read | simkern::VmFlag::Write);
  for (std::uint64_t off = 0; off < bytes; off += kPageSize)
    (void)kern.touch(pid, addr + off, /*write=*/true);
  const auto tag = agent.create_ptag(pid);
  via::MemHandle mh;
  (void)agent.register_mem(pid, addr, bytes, tag, mh);
  const Nanos t0 = clock.now();
  (void)agent.deregister_mem(mh);
  return clock.now() - t0;
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout << "E4: VipDeregisterMem cost vs. region size (virtual time)\n\n";
  Table table({"size", "pages", "refcount", "pageflag", "mlock", "mlock+track",
               "kiobuf"});
  for (const std::uint64_t size :
       {std::uint64_t{4096}, std::uint64_t{16 * 1024}, std::uint64_t{64 * 1024},
        std::uint64_t{256 * 1024}, std::uint64_t{1024 * 1024},
        std::uint64_t{4 * 1024 * 1024}}) {
    std::vector<std::string> row{Table::bytes(size),
                                 Table::num(size >> kPageShift)};
    for (const via::PolicyKind policy : via::kAllPolicies) {
      row.push_back(Table::nanos(measure_dereg(policy, size)));
    }
    table.row(std::move(row));
  }
  table.print();
  bench::JsonReport report("E4", "VipDeregisterMem cost vs region size");
  report.add_table("dereg_cost", table);
  report.write_if(flags);
  std::cout << "\nShape: linear in pages; the release path is cheap relative\n"
               "to registration (no faulting), so caching registrations and\n"
               "evicting lazily is the right trade (see E5/E9).\n";
  return report.compare_if(flags);
}
