// bench_e16_indirect - Experiment E16 (extension): the cost of indirect
// communication.
//
// The multidevice paper closes its section 3.4 with a warning: the mechanism
// "is very elaborate... besides increased effort on source and destination
// nodes it also creates load on the intermediate node - necessity and sense
// should be checked before using indirect communication". This bench does
// that check: latency of a direct link vs. one and two intermediate hops,
// plus the forwarding load the intermediates absorb.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "mp/comm.h"
#include "util/table.h"

namespace vialock {
namespace {

struct Topo {
  const char* name;
  std::uint32_t ranks;
  std::vector<std::pair<mp::Rank, mp::Rank>> blocked;
  mp::Rank dest;
};

Nanos measure(const Topo& topo, std::uint32_t len, std::uint64_t* forwards) {
  via::Cluster cluster;
  std::vector<via::NodeId> nodes;
  for (std::uint32_t i = 0; i < topo.ranks; ++i)
    nodes.push_back(cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf)));
  mp::Comm::Config cfg;
  cfg.no_direct_link = topo.blocked;
  mp::Comm comm(cluster, nodes, cfg);
  if (!ok(comm.init())) std::abort();
  std::vector<std::byte> data(len, std::byte{0x21});
  if (!ok(comm.stage(0, 0, data))) std::abort();

  // Warm-up round, then median of 5.
  std::vector<Nanos> times;
  for (int i = 0; i < 6; ++i) {
    const auto r = comm.irecv(topo.dest, 0, 10 + i, 0, 64 * 1024);
    const Nanos t0 = cluster.clock().now();
    const auto s = comm.isend(0, topo.dest, 10 + i, 0, len);
    if (!comm.wait(r) || !comm.wait(s)) std::abort();
    if (i > 0) times.push_back(cluster.clock().now() - t0);
  }
  std::sort(times.begin(), times.end());
  if (forwards) *forwards = comm.stats().indirect_forwards;
  return times[times.size() / 2];
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout
      << "E16 (extension): indirect communication cost (multidevice paper,\n"
      << "section 3.4 - \"necessity and sense should be checked\")\n\n";
  const std::vector<Topo> topologies = {
      {"direct 0->1", 2, {}, 1},
      {"1 hop  0->(1)->2", 3, {{0, 2}}, 2},
      {"2 hops 0->(1)->(2)->3", 4, {{0, 2}, {0, 3}, {1, 3}}, 3},
  };
  Table table({"route", "64 B", "1 KB", "4 KB", "forwards (incl. ACKs)"});
  for (const auto& topo : topologies) {
    std::uint64_t forwards = 0;
    const Nanos t64 = measure(topo, 64, nullptr);
    const Nanos t1k = measure(topo, 1024, nullptr);
    const Nanos t4k = measure(topo, 4096, &forwards);
    table.row({topo.name, Table::nanos(t64), Table::nanos(t1k),
               Table::nanos(t4k), Table::num(forwards)});
  }
  table.print();
  bench::JsonReport report("E16", "indirect communication cost");
  report.add_table("routes", table);
  report.write_if(flags);
  std::cout << "\nShape: each intermediate hop adds roughly one full wire +\n"
               "store-and-forward copy to the latency, and the ACK chain\n"
               "doubles the forwarding load on intermediates - the overhead\n"
               "the paper says to weigh before enabling the feature.\n";
  return report.compare_if(flags);
}
