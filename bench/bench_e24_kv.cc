// bench_e24_kv - Experiment E24: the zero-copy KV/RPC service tier under
// SLO-gated load.
//
// Drives the svc tier (src/svc/, DESIGN.md section 13) through the scenario
// engine's kv-server pattern with the bundled kv-server.spec: 64 client
// hosts x 16 pipelined connections = 1024 concurrent connections against 16
// governed server tenants, a 25% rendezvous mix, completion batching on both
// sides. The sweep scales connection count and adds two focused variants: a
// pure-rendezvous point that proves the zero-copy claim (every value byte
// moved by RDMA, eager_copies == 0) and an abrupt-churn point that exercises
// mid-pipeline reclamation at scale.
//
// Self-checked gates (non-zero exit so CI can rely on the exit code):
//   - the headline run sustains >= 1024 connections across >= 4 tenants
//     with zero admission sheds and a clean end-of-run invariant audit;
//   - same spec + seed, run twice: byte-identical canonical report AND
//     field-identical KvServiceStats (the svc tier's own counters and
//     latency tail are as deterministic as the frozen report surface);
//   - the pure-rendezvous variant performed zero eager copies.
// Client-visible latency (p50/p95/p99/p999, virtual ns) lands in
// BENCH_E24.json for the --compare regression gate. --smoke shrinks ops and
// the sweep but keeps the full 1024-connection headline.
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "scenario/engine.h"
#include "scenario/spec.h"
#include "util/table.h"

#ifndef SCENARIO_SPEC_DIR
#define SCENARIO_SPEC_DIR "examples/scenarios"
#endif

namespace vialock {
namespace {

struct SweepPoint {
  const char* label;
  std::uint32_t hosts;    // servers stays fixed: conns = (hosts-4) * 16
  double large_fraction;  // 1.0 = the pure-rendezvous zero-copy proof
  std::uint32_t churn;    // conn_churn_per_client
};

struct RunResult {
  scenario::ScenarioReport report;
  scenario::KvServiceStats svc;
};

scenario::ScenarioSpec base_spec() {
  scenario::ParseResult parsed = scenario::load_spec_file(
      std::string(SCENARIO_SPEC_DIR) + "/kv-server.spec");
  if (!parsed.ok()) {
    std::cerr << "spec error: " << parsed.error << "\n";
    std::abort();
  }
  return std::move(parsed.spec);
}

void apply_or_die(scenario::ScenarioSpec& spec, const std::string& key,
                  const std::string& value) {
  const std::string err = spec.apply(key, value);
  if (!err.empty()) {
    std::cerr << "override " << key << "=" << value << ": " << err << "\n";
    std::abort();
  }
}

RunResult run_or_die(scenario::ScenarioSpec spec) {
  scenario::ScenarioEngine engine(std::move(spec));
  if (!ok(engine.build()) || !ok(engine.run())) {
    std::cerr << "scenario failed to build/run\n";
    std::abort();
  }
  for (const auto& v : engine.report().violations)
    std::cerr << "violation: " << v << "\n";
  return {engine.report(), engine.kv_service_stats()};
}

/// The determinism contract for the svc tier: same spec + seed must
/// reproduce both the canonical JSON report and every KvServiceStats field
/// (counters, reclamation totals, the full latency tail). Returns the
/// verified first run.
std::pair<RunResult, bool> run_twice(const scenario::ScenarioSpec& spec) {
  scenario::ScenarioEngine first(spec);
  if (!ok(first.build()) || !ok(first.run())) std::abort();
  scenario::ScenarioEngine second(spec);
  if (!ok(second.build()) || !ok(second.run())) std::abort();
  const bool identical =
      scenario::report_json(spec, first.report()) ==
          scenario::report_json(spec, second.report()) &&
      first.kv_service_stats() == second.kv_service_stats();
  return {{first.report(), first.kv_service_stats()}, identical};
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;
  const bench::BenchFlags flags(argc, argv);

  std::cout << "E24: zero-copy KV service tier "
            << (smoke ? "(smoke: reduced ops)" : "(full scale)") << "\n"
            << "kv-server.spec: pipelined connections, governed admission,\n"
               "inline vs rendezvous split, batched completions; all times\n"
               "virtual.\n\n";

  const std::uint32_t ops = smoke ? 6 : 32;
  // hosts-4 client hosts x 16 conns each: 12 -> 128, 20 -> 256, 36 -> 512,
  // 68 -> 1024 connections.
  const std::vector<SweepPoint> sweep =
      smoke ? std::vector<SweepPoint>{{"mixed", 12, 0.25, 0},
                                      {"mixed", 20, 0.25, 0},
                                      {"zero-copy", 12, 1.0, 0},
                                      {"churn", 12, 0.25, 2}}
            : std::vector<SweepPoint>{{"mixed", 20, 0.25, 0},
                                      {"mixed", 36, 0.25, 0},
                                      {"mixed", 68, 0.25, 0},
                                      {"zero-copy", 20, 1.0, 0},
                                      {"churn", 20, 0.25, 2}};

  bool zero_copy_proven = false;
  bool churn_reclaimed = false;
  Table table({"variant", "conns", "tenants", "kv ops", "makespan", "p50",
               "p99", "p999", "inline B", "rdv B", "eager", "abandoned"});
  for (const SweepPoint& p : sweep) {
    scenario::ScenarioSpec spec = base_spec();
    apply_or_die(spec, "hosts", std::to_string(p.hosts));
    apply_or_die(spec, "ops_per_tenant", std::to_string(ops));
    apply_or_die(spec, "large_fraction", std::to_string(p.large_fraction));
    apply_or_die(spec, "conn_churn_per_client", std::to_string(p.churn));
    const std::uint32_t tenants = spec.servers * spec.tenants_per_host;
    const RunResult r = run_or_die(std::move(spec));
    if (!r.report.invariants_ok) return 1;
    if (std::string(p.label) == "zero-copy")
      zero_copy_proven = r.svc.eager_copies == 0 && r.svc.inline_bytes == 0 &&
                         r.svc.rendezvous_bytes > 0;
    if (p.churn > 0)
      churn_reclaimed = r.svc.conns_abandoned > 0 &&
                        r.svc.client_requests_lost > 0;
    table.row({p.label, Table::num(r.svc.peak_open_conns),
               Table::num(std::uint64_t{tenants}),
               Table::num(r.report.counters.kv_gets +
                          r.report.counters.kv_puts),
               Table::nanos(r.report.makespan_ns), Table::nanos(r.svc.p50_ns),
               Table::nanos(r.svc.p99_ns), Table::nanos(r.svc.p999_ns),
               Table::num(r.svc.inline_bytes),
               Table::num(r.svc.rendezvous_bytes),
               Table::num(r.svc.eager_copies),
               Table::num(r.svc.conns_abandoned)});
  }
  table.print();

  // Headline: the shipped spec (68 hosts, 1024 connections, 16 tenants),
  // twice, byte- and field-compared. Smoke keeps the full connection count
  // and only trims the per-connection op budget.
  scenario::ScenarioSpec headline = base_spec();
  if (smoke) apply_or_die(headline, "ops_per_tenant", std::to_string(ops));
  const std::uint32_t want_conns =
      (headline.hosts - headline.servers) * headline.connections_per_client;
  const std::uint32_t tenants = headline.servers * headline.tenants_per_host;
  const auto [r, identical] = run_twice(headline);
  const bool sustained = r.svc.peak_open_conns >= want_conns &&
                         want_conns >= 1024 && tenants >= 4 &&
                         r.svc.conns_shed == 0;

  std::cout << "\nheadline: " << r.svc.peak_open_conns << " concurrent conns, "
            << tenants << " tenants, "
            << (r.report.counters.kv_gets + r.report.counters.kv_puts)
            << " kv ops, makespan " << Table::nanos(r.report.makespan_ns)
            << "\nop latency: p50 " << Table::nanos(r.svc.p50_ns) << "  p95 "
            << Table::nanos(r.svc.p95_ns) << "  p99 "
            << Table::nanos(r.svc.p99_ns) << "  p999 "
            << Table::nanos(r.svc.p999_ns)
            << "\ndata path: " << r.svc.inline_bytes << " inline B, "
            << r.svc.rendezvous_bytes << " rendezvous B, "
            << r.svc.eager_copies << " eager copies\n"
            << "sustained >=1024 conns, zero shed: "
            << bench::passfail(sustained)
            << "\nzero-copy variant skipped every eager copy: "
            << bench::passfail(zero_copy_proven)
            << "\nchurn variant reclaimed abrupt disconnects: "
            << bench::passfail(churn_reclaimed)
            << "\nsame-seed identical report + svc stats: "
            << bench::passfail(identical)
            << "\ninvariants: " << bench::passfail(r.report.invariants_ok)
            << "\n";

  bench::JsonReport report("E24", "zero-copy KV service tier");
  report.param("spec", "kv-server")
      .param("smoke", smoke ? "yes" : "no")
      .param("hosts", std::uint64_t{headline.hosts})
      .param("connections", std::uint64_t{want_conns})
      .param("tenants", std::uint64_t{tenants})
      .param("ops_per_conn", std::uint64_t{headline.ops_per_tenant})
      .param("seed", headline.seed);
  report.metric("peak_open_conns", r.svc.peak_open_conns)
      .metric("conns_accepted", r.svc.conns_accepted)
      .metric("conns_shed", r.svc.conns_shed)
      .metric("conns_abandoned", r.svc.conns_abandoned)
      .metric("kv_ops", r.report.counters.kv_gets + r.report.counters.kv_puts)
      .metric("requests", r.svc.requests)
      .metric("inline_bytes", r.svc.inline_bytes)
      .metric("rendezvous_bytes", r.svc.rendezvous_bytes)
      .metric("rendezvous_ops", r.svc.rendezvous_ops)
      .metric("eager_copies", r.svc.eager_copies)
      .metric("batched_completions", r.svc.batched_completions)
      .metric("batched_replies", r.svc.batched_replies)
      .metric("doorbell_flushes", r.svc.client_doorbell_flushes)
      .metric("p50_ns", r.svc.p50_ns)
      .metric("p95_ns", r.svc.p95_ns)
      .metric("p99_ns", r.svc.p99_ns)
      .metric("p999_ns", r.svc.p999_ns)
      .metric("makespan_ns", r.report.makespan_ns)
      .metric("events_dispatched", r.report.events_dispatched)
      .metric("sustained_1024_conns", bench::passfail(sustained))
      .metric("zero_copy", bench::passfail(zero_copy_proven))
      .metric("deterministic", bench::passfail(identical))
      .metric("invariants", bench::passfail(r.report.invariants_ok));
  report.add_table("scaling", table);
  report.write_if(flags);

  if (!identical || !r.report.invariants_ok || !sustained ||
      !zero_copy_proven || !churn_reclaimed)
    return 1;
  return report.compare_if(flags);
}
