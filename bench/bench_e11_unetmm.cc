// bench_e11_unetmm - Experiment E11 (extension): VIA pinning vs. U-Net/MM
// TLB consistency.
//
// The design trade the paper's introduction states: U-Net/MM lets registered
// memory swap (NIC TLB kept consistent); VIA pins it, which "saves the
// expensive page-in operations during communication". We register a region
// both ways and alternate memory-pressure bursts with NIC DMA bursts:
// both stay CORRECT, but they pay in different currencies - pinned footprint
// (VIA) vs. data-path faults and page-ins (U-Net/MM).
#include <iostream>
#include <span>

#include "bench_util.h"
#include "experiments/pressure.h"
#include "util/table.h"
#include "via/unetmm.h"

namespace vialock {
namespace {

using simkern::kPageSize;
using simkern::Pid;
using simkern::VAddr;

struct Outcome {
  bool correct = true;
  std::uint64_t nic_faults = 0;
  std::uint64_t page_ins = 0;
  std::uint32_t pinned_frames = 0;
  Nanos dma_time = 0;
  Nanos total_time = 0;
};

constexpr std::uint32_t kPages = 64;
constexpr int kRounds = 6;
constexpr int kDmaPerRound = 32;

/// Shared workload: alternating pressure bursts and NIC DMA bursts over a
/// registered region; `dma` performs one NIC write and returns success.
template <typename DmaFn>
Outcome run_rounds(simkern::Kernel& kern, Pid pid, VAddr addr, DmaFn&& dma,
                   Clock& clock) {
  Outcome o;
  const Nanos start = clock.now();
  for (int round = 0; round < kRounds; ++round) {
    const auto pr = experiments::apply_memory_pressure(kern, 1.2);
    for (int i = 0; i < kDmaPerRound; ++i) {
      const auto page = static_cast<std::uint32_t>((i * 7 + round) % kPages);
      const std::uint64_t stamp =
          0xE1100000 + static_cast<std::uint64_t>(round) * 1000 + i;
      const VAddr at = addr + page * kPageSize;
      const Nanos t0 = clock.now();
      if (!dma(at, stamp)) {
        o.correct = false;
      }
      o.dma_time += clock.now() - t0;
      std::uint64_t seen = 0;
      if (!ok(kern.read_user(pid, at,
                             std::as_writable_bytes(std::span{&seen, 1}))) ||
          seen != stamp) {
        o.correct = false;
      }
    }
    kern.exit_task(pr.allocator_pid);
  }
  o.total_time = clock.now() - start;
  o.pinned_frames = kern.pinned_frames();
  return o;
}

Outcome run_via_pinning() {
  Clock clock;
  CostModel costs;
  via::Node node(bench::eval_node(via::PolicyKind::Kiobuf), clock, costs);
  auto& kern = node.kernel();
  const Pid pid = kern.create_task("app");
  const VAddr addr = *kern.sys_mmap_anon(
      pid, kPages * kPageSize, simkern::VmFlag::Read | simkern::VmFlag::Write);
  const auto tag = node.agent().create_ptag(pid);
  via::MemHandle mh;
  if (!ok(node.agent().register_mem(pid, addr, kPages * kPageSize, tag, mh)))
    std::abort();
  Outcome o = run_rounds(
      kern, pid, addr,
      [&](VAddr at, std::uint64_t stamp) {
        return ok(node.nic().dma_write_local(
            mh, at, std::as_bytes(std::span{&stamp, 1})));
      },
      clock);
  (void)node.agent().deregister_mem(mh);
  return o;
}

Outcome run_unetmm() {
  Clock clock;
  CostModel costs;
  via::Node node(bench::eval_node(via::PolicyKind::Kiobuf), clock, costs);
  auto& kern = node.kernel();
  via::UnetMmAgent agent(kern, node.nic());
  const Pid pid = kern.create_task("app");
  const VAddr addr = *kern.sys_mmap_anon(
      pid, kPages * kPageSize, simkern::VmFlag::Read | simkern::VmFlag::Write);
  const auto tag = agent.create_ptag(pid);
  via::MemHandle mh;
  if (!ok(agent.register_mem(pid, addr, kPages * kPageSize, tag, mh)))
    std::abort();
  Outcome o = run_rounds(
      kern, pid, addr,
      [&](VAddr at, std::uint64_t stamp) {
        return ok(agent.dma_write(mh, at, std::as_bytes(std::span{&stamp, 1})));
      },
      clock);
  o.nic_faults = agent.stats().nic_faults;
  o.page_ins = agent.stats().repair_pageins;
  (void)agent.deregister_mem(mh);
  return o;
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout << "E11 (extension): VIA pinning vs. U-Net/MM TLB consistency\n"
            << "(64-page registration; " << kRounds
            << " rounds of [pressure burst + " << kDmaPerRound
            << " NIC writes, each verified by the process])\n\n";
  const Outcome pin = run_via_pinning();
  const Outcome tlb = run_unetmm();

  Table table({"design", "correct", "NIC faults", "repair page-ins",
               "pinned frames", "DMA-path time", "workload time"});
  table.row({"VIA pinning (kiobuf)", bench::yesno(pin.correct),
             Table::num(pin.nic_faults), Table::num(pin.page_ins),
             Table::num(std::uint64_t{pin.pinned_frames}),
             Table::nanos(pin.dma_time), Table::nanos(pin.total_time)});
  table.row({"U-Net/MM TLB consistency", bench::yesno(tlb.correct),
             Table::num(tlb.nic_faults), Table::num(tlb.page_ins),
             Table::num(std::uint64_t{tlb.pinned_frames}),
             Table::nanos(tlb.dma_time), Table::nanos(tlb.total_time)});
  table.print();
  bench::JsonReport report("E11", "VIA pinning vs U-Net/MM TLB consistency");
  report.add_table("designs", table);
  report.write_if(flags);
  std::cout << "\nBoth designs are correct; the trade is pinned footprint\n"
               "(VIA: the region never swaps, holding frames even when idle)\n"
               "against data-path cost (U-Net/MM: NIC faults with page-ins\n"
               "land in the middle of communication - the cost the paper\n"
               "says VIA's mandatory locking exists to avoid).\n";
  return report.compare_if(flags);
}
