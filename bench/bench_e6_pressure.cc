// bench_e6_pressure - Experiment E6: relocation vs. memory-pressure level.
//
// How much pressure does it take before refcount-only "locking" goes stale?
// Sweep the allocator footprint from well-under-RAM to 3x RAM and report,
// per policy, how many of the 64 registered pages were relocated (the paper
// notes the failure shows "in most cases" - i.e. it needs real pressure).
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "experiments/locktest.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout
      << "E6: registered-page relocation vs. memory pressure\n"
      << "(64-page registration on a 4096-frame node; allocator footprint\n"
      << "as a multiple of RAM; cells: pages relocated of 64)\n\n";

  const std::vector<double> factors = {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0};
  Table table({"policy \\ pressure", "0.25x", "0.5x", "0.75x", "1.0x", "1.25x",
               "1.5x", "2.0x", "3.0x"});
  for (const via::PolicyKind policy : via::kAllPolicies) {
    std::vector<std::string> row{std::string(to_string(policy))};
    for (const double factor : factors) {
      Clock clock;
      CostModel costs;
      via::Node node(bench::eval_node(policy), clock, costs);
      experiments::LocktestConfig cfg;
      cfg.region_pages = 64;
      cfg.pressure_factor = factor;
      const auto r = experiments::run_locktest(node, cfg);
      row.push_back(ok(r.status) ? Table::num(std::uint64_t{r.pages_relocated})
                                 : std::string(to_string(r.status)));
    }
    table.row(std::move(row));
  }
  table.print();
  bench::JsonReport report("E6", "registered-page relocation vs pressure");
  report.param("region_pages", std::uint64_t{64})
      .add_table("relocations", table);
  report.write_if(flags);
  std::cout << "\nShape: below ~1x RAM nothing swaps and even the broken\n"
               "policy looks fine - the treachery of refcount locking is that\n"
               "it only fails once memory gets tight. At and above ~1.25x the\n"
               "refcount row saturates at 64/64 while every real locking\n"
               "mechanism stays at 0.\n";
  return report.compare_if(flags);
}
