// bench_e7_flaghazard - Experiment E7: page-flag hazards of the Giganet-style
// driver (paper section 3.1).
//
// The paper calls setting PG_locked/PG_reserved from a driver "a very risky
// and unclean solution" because (a) the driver does not check whether the
// kernel already holds the lock, and (b) deregistration resets the flag
// "regardless". We inject kernel I/O that overlaps registration windows and
// count three hazards the kernel detects:
//   io_flag_collisions - driver locked a page already under kernel I/O
//   io_lock_clobbered  - PG_locked vanished while kernel I/O was in flight
//   io_page_stolen     - the frame was reclaimed mid-I/O as a consequence
#include <iostream>

#include "bench_util.h"
#include "util/table.h"
#include "via/node.h"

namespace vialock {
namespace {

using simkern::kPageSize;

struct HazardCounts {
  std::uint64_t collisions = 0;
  std::uint64_t clobbered = 0;
  std::uint64_t stolen = 0;
  std::uint64_t reg_failures = 0;
};

HazardCounts inject(via::PolicyKind policy, int iterations) {
  Clock clock;
  CostModel costs;
  via::Node node(bench::eval_node(policy), clock, costs);
  auto& kern = node.kernel();
  auto& agent = node.agent();
  const auto pid = kern.create_task("app");
  const auto addr = *kern.sys_mmap_anon(
      pid, 4 * kPageSize, simkern::VmFlag::Read | simkern::VmFlag::Write);
  const auto tag = agent.create_ptag(pid);
  HazardCounts h;

  for (int i = 0; i < iterations; ++i) {
    // The kernel starts I/O on page 0 of the region (e.g. the application
    // also read()s from a file into that buffer).
    (void)kern.touch(pid, addr, /*write=*/true);
    const auto pfn = *kern.resolve(pid, addr);
    if (!ok(kern.start_kernel_io(pfn))) continue;

    via::MemHandle mh;
    if (!ok(agent.register_mem(pid, addr, 4 * kPageSize, tag, mh))) {
      ++h.reg_failures;  // a *correct* driver refuses / waits here
      kern.end_kernel_io(pfn);
      continue;
    }
    (void)agent.deregister_mem(mh);

    // Between deregistration and I/O completion, reclaim runs.
    auto* pte = kern.task(pid).mm.pt.walk(addr);
    if (pte && pte->present) pte->accessed = false;
    (void)kern.try_to_free_pages(1);

    kern.end_kernel_io(pfn);
  }
  h.collisions = kern.stats().io_flag_collisions;
  h.clobbered = kern.stats().io_lock_clobbered;
  h.stolen = kern.stats().io_page_stolen;
  return h;
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  constexpr int kIterations = 100;
  std::cout << "E7: PG_locked flag hazards under register/kernel-I/O overlap\n"
            << "(" << kIterations << " overlapping register+deregister cycles "
            << "while kernel I/O holds the page)\n\n";
  Table table({"locking policy", "flag collisions", "lock clobbered",
               "frame stolen mid-I/O", "verdict"});
  for (const via::PolicyKind policy : via::kAllPolicies) {
    const auto h = inject(policy, kIterations);
    const bool hazardous = h.collisions + h.clobbered + h.stolen > 0;
    table.row({std::string(to_string(policy)), Table::num(h.collisions),
               Table::num(h.clobbered), Table::num(h.stolen),
               hazardous ? "UNSAFE" : "safe"});
  }
  table.print();
  bench::JsonReport report("E7", "PG_locked flag hazards");
  report.param("iterations", std::uint64_t{kIterations})
      .add_table("hazards", table);
  report.write_if(flags);
  std::cout << "\nOnly the pageflag (Giganet-style) driver trips the\n"
               "detectors: it sets PG_locked without checking prior state and\n"
               "strips it on deregistration while the kernel's I/O is still\n"
               "in flight, after which reclaim steals the frame mid-I/O.\n";
  return report.compare_if(flags);
}
