// bench_e22_index_scaling - Experiment E22: host-side index scaling.
//
// PR 3 replaced the host's three hottest linear scans with index structures
// (DESIGN.md section 9): the RegistrationCache covering lookup, the VMA gap
// placement, and the NIC TPT free-slot allocator. This bench measures the one
// that dominates zero-copy MPI steady state - the cache's acquire hit path -
// as the number of cached registrations sweeps 16 -> 4096.
//
// Unlike E1-E21, which report deterministic virtual-clock nanoseconds, the
// quantity under test here is *host* CPU cost of the lookup itself, so the
// table shows wall-clock ns/acquire (best of three repetitions; absolute
// numbers vary by machine, the growth ratios are the result). The linear
// column replays the seed's find_covering - an id-ordered scan over every
// cached entry - over the same entry set and the same access stream.
//
// Since PR 8 the acquire path is two-tiered (DESIGN.md section 14.3): a
// 64-slot direct-mapped lookaside serves exact-repeat acquires ahead of the
// covering index, so small working sets are faster than the index alone and
// a naive 16 -> 4096 growth ratio would measure the tier boundary, not the
// index. The table reports the lookaside hit rate per row; the growth gate
// is anchored at the first sweep point the lookaside no longer dominates
// (hit rate < 30%, i.e. the working set far exceeds the 64 slots).
//
// Self-check (strict in Release/NDEBUG builds, informational in debug):
// index-tier acquire cost grows <= 2x from that anchor to 4096 cached
// registrations while the linear scan grows >= 50x from 16 to 4096.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/reg_cache.h"
#include "util/rng.h"
#include "util/table.h"
#include "via/vipl.h"

namespace vialock {
namespace {

using simkern::kPageSize;
using simkern::VAddr;

constexpr auto kRw = simkern::VmFlag::Read | simkern::VmFlag::Write;
constexpr std::uint32_t kCounts[] = {16, 64, 256, 1024, 4096};
constexpr int kIterations = 20000;  ///< measured acquires per repetition
constexpr int kReps = 5;            ///< wall-clock repetitions, best kept

/// Plenty of frames/TPT/quota so the sweep never evicts: the bench measures
/// lookup cost, not pressure behaviour.
via::NodeSpec index_node() {
  via::NodeSpec spec;
  spec.kernel.frames = 8192;  // pin budget 6144 > 4096 cached pages
  spec.kernel.reserved_low = 16;
  spec.kernel.swap_slots = 16384;
  spec.kernel.free_pages_min = 16;
  spec.kernel.swap_cluster = 32;
  spec.nic.tpt_entries = 8192;
  spec.policy = via::PolicyKind::Kiobuf;
  return spec;
}

double wall_ns_per_op(int ops, const auto& body) {
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        ops;
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

/// The seed's find_covering, verbatim in shape: id-ordered scan over every
/// cached entry, first (= smallest-id) covering entry wins.
struct LinearModel {
  struct Entry {
    VAddr vaddr;
    std::uint64_t len;
    std::uint64_t id;
  };
  std::vector<Entry> entries;  ///< kept sorted by id, as std::map iterated

  std::uint64_t find_covering(VAddr addr, std::uint64_t len) const {
    for (const Entry& e : entries) {
      if (addr >= e.vaddr && addr + len <= e.vaddr + e.len) return e.id;
    }
    return 0;
  }
};

struct SweepRow {
  std::uint32_t count = 0;
  double indexed_ns = 0;
  double linear_ns = 0;
  std::uint64_t hits = 0;
  std::uint64_t lookaside_hits = 0;  ///< timed acquires served by the lookaside
};

SweepRow run_count(std::uint32_t count) {
  Clock clock;
  CostModel costs;
  via::Node node(index_node(), clock, costs);
  auto& kern = node.kernel();
  const simkern::Pid pid = kern.create_task("app");
  via::Vipl vipl(node.agent(), pid);
  (void)vipl.open();
  core::RegistrationCache::Config cfg;
  cfg.max_idle = 8192;  // never trimmed during the sweep
  core::RegistrationCache cache(vipl, cfg);

  const VAddr base = *kern.sys_mmap_anon(
      pid, static_cast<std::uint64_t>(count) * kPageSize, kRw);

  // Populate: `count` disjoint single-page registrations, each kept *live*
  // (one outstanding handle) for the duration of the sweep, so the measured
  // acquire hits never shuffle the idle index - the timed region is the
  // covering lookup itself, the operation the seed did linearly. Mirror the
  // entries into the linear model with the real ids.
  LinearModel model;
  std::vector<via::MemHandle> held;
  held.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    via::MemHandle mh;
    if (!ok(cache.acquire(base + static_cast<std::uint64_t>(i) * kPageSize,
                          kPageSize, mh))) {
      std::cout << "  populate failed at entry " << i << "\n";
      return {};
    }
    held.push_back(mh);
    model.entries.push_back({mh.vaddr, mh.length, mh.id});
  }

  // One deterministic access stream for both sides.
  std::vector<VAddr> stream(kIterations);
  {
    Rng rng(0xE22ULL * count);
    for (auto& addr : stream)
      addr = base + rng.below(count) * kPageSize;
  }

  SweepRow row;
  row.count = count;
  const std::uint64_t hits_before = cache.stats().hits;
  const std::uint64_t lookaside_before = cache.stats().lookaside_hits;
  // A single sink handle keeps the timed loop's own footprint out of the
  // cache-vs-cache comparison (a per-iteration result array would stream a
  // megabyte of writes through L2 and charge the index for the evictions).
  via::MemHandle sink;
  row.indexed_ns = wall_ns_per_op(kIterations, [&] {
    for (int i = 0; i < kIterations; ++i)
      (void)cache.acquire(stream[i], kPageSize, sink);
  });
  // Untimed: every acquire of page p bumped its refcount, kReps repetitions
  // each. Restore refs to the single held reference via the held handles.
  {
    std::vector<std::uint32_t> per_page(count, 0);
    for (const VAddr addr : stream)
      ++per_page[static_cast<std::size_t>((addr - base) / kPageSize)];
    for (std::uint32_t p = 0; p < count; ++p)
      for (std::uint64_t k = 0; k < std::uint64_t{per_page[p]} * kReps; ++k)
        cache.release(held[p]);
  }
  row.hits = cache.stats().hits - hits_before;
  row.lookaside_hits = cache.stats().lookaside_hits - lookaside_before;

  std::uint64_t id_sum = 0;
  row.linear_ns = wall_ns_per_op(kIterations, [&] {
    for (const VAddr addr : stream)
      id_sum += model.find_covering(addr, kPageSize);
  });
  if (id_sum == 0) std::cout << "  (linear model found nothing?)\n";
  for (const via::MemHandle& mh : held) cache.release(mh);
  return row;
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  std::cout << "E22: index scaling of the host hot paths (DESIGN.md "
               "section 9)\n"
            << "RegistrationCache acquire-hit cost vs cached-registration "
               "count,\nindexed (vaddr interval index) against the seed's "
               "linear scan.\nWall-clock times; ratios are the result.\n";
  const bench::BenchFlags flags(argc, argv);
  bench::JsonReport report("E22", "host index scaling: cache covering lookup");
  report.param("iterations", std::uint64_t{kIterations})
      .param("repetitions", std::uint64_t{kReps});

  std::cout << "\n=== E22 acquire (hit) cost, " << kIterations
            << " random single-page acquires ===\n";
  Table table({"cached regs", "indexed ns/acquire", "linear ns/lookup",
               "linear/indexed", "hit rate", "lookaside"});
  // Discarded warmup sweep point: the first timed region otherwise runs on a
  // cold branch predictor and an unramped CPU clock, and since it is the
  // 16-entry *baseline* of the growth ratio, that noise would swing the
  // self-check both ways.
  (void)run_count(16);
  std::vector<SweepRow> rows;
  for (const std::uint32_t count : kCounts) {
    const SweepRow row = run_count(count);
    if (row.count == 0) return 1;
    rows.push_back(row);
    table.row({Table::num(std::uint64_t{row.count}),
               Table::fp(row.indexed_ns, 1), Table::fp(row.linear_ns, 1),
               Table::fp(row.linear_ns / row.indexed_ns, 1) + "x",
               Table::fp(100.0 * row.hits / (kIterations * kReps), 1) + "%",
               Table::fp(100.0 * row.lookaside_hits / (kIterations * kReps),
                         1) + "%"});
  }
  table.print();
  report.add_table("acquire_scaling", table);

  // Anchor the index-tier growth at the first sweep point the lookaside no
  // longer dominates; the rows before it measure the lookaside tier (whose
  // whole purpose is to beat the index on small repeat-heavy sets, so they
  // would inflate a ratio taken from the 16-entry row).
  const SweepRow* anchor = &rows.back();
  for (const SweepRow& row : rows) {
    if (row.lookaside_hits <
        static_cast<std::uint64_t>(kIterations) * kReps * 3 / 10) {
      anchor = &row;
      break;
    }
  }
  const double index_growth = rows.back().indexed_ns / anchor->indexed_ns;
  const double linear_growth = rows.back().linear_ns / rows.front().linear_ns;
  report.metric("index_anchor_regs", std::uint64_t{anchor->count})
      .metric("index_tier_growth_to_4096", index_growth)
      .metric("linear_growth_16_to_4096", linear_growth)
      .metric("lookaside_ns_16", rows.front().indexed_ns);
  std::cout << "\ngrowth to 4096 cached registrations:  index tier (from "
            << anchor->count << ") " << Table::fp(index_growth, 2)
            << "x,  linear (from 16) " << Table::fp(linear_growth, 2) << "x\n";

  // Every populate acquire registered, every measured acquire hit.
  bool correct = true;
  for (const SweepRow& row : rows) {
    if (row.hits != static_cast<std::uint64_t>(kIterations) * kReps) {
      std::cout << "FAIL: N=" << row.count << " expected all-hit stream, got "
                << row.hits << "\n";
      correct = false;
    }
  }

  const bool scaling_ok = index_growth <= 2.0 && linear_growth >= 50.0;
  std::cout << "self-check (index tier <= 2x, linear >= 50x): "
            << bench::passfail(scaling_ok) << "\n";
  report.metric("scaling_ok", bench::passfail(scaling_ok));
  report.write_if(flags);
  // Wall-clock growth ratios are noisy run-to-run; callers gating on
  // --compare should pass a loose threshold (CI uses 0.5).
  const int compare_rc = report.compare_if(flags);
#ifdef NDEBUG
  return (correct && scaling_ok && compare_rc == 0) ? 0 : 1;
#else
  // Debug builds carry assertion overhead that flattens the contrast; the
  // wall-clock self-check is informational there, correctness still gates.
  if (!scaling_ok)
    std::cout << "(non-NDEBUG build: scaling self-check not enforced)\n";
  return correct ? compare_rc : 1;
#endif
}
