// bench_e5_regcache - Experiment E5: registration caching for zero-copy.
//
// The paper's introduction: dynamic registration contradicts VIA's goal of
// keeping the OS off the data path, "but the bad effects can be remedied by
// 'caching' registered regions". Two views:
//   (a) rendezvous bandwidth vs. message size with the cache on (LRU) / off
//       (deregister immediately) against the preregistered upper bound,
//       with full buffer reuse;
//   (b) fixed 64 KB messages while sweeping the buffer-reuse ratio - the
//       cache only pays off when applications reuse communication buffers.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "msg/transport.h"
#include "util/table.h"

namespace vialock {
namespace {

using core::EvictionPolicy;
using msg::Channel;
using msg::Protocol;

struct ChannelRig {
  ChannelRig(EvictionPolicy cache, bool prereg)
      : n0(cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf))),
        n1(cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf))),
        channel(cluster, n0, n1, config(cache, prereg)) {
    if (!ok(channel.init())) std::abort();
  }

  static Channel::Config config(EvictionPolicy cache, bool prereg) {
    Channel::Config cfg;
    cfg.cache_policy = cache;
    cfg.preregister_heaps = prereg;
    cfg.user_heap_bytes = 8ULL << 20;
    return cfg;
  }

  via::Cluster cluster;
  via::NodeId n0;
  via::NodeId n1;
  Channel channel;
};

/// Mean virtual time of `rounds` transfers of `len` bytes, same buffers.
Nanos mean_transfer(Channel& channel, Clock& clock, Protocol proto,
                    std::uint32_t len, int rounds) {
  Nanos total = 0;
  for (int i = 0; i < rounds; ++i) {
    const Nanos t0 = clock.now();
    if (!ok(channel.transfer(proto, 0, 0, len))) std::abort();
    total += clock.now() - t0;
  }
  return total / static_cast<Nanos>(rounds);
}

void bandwidth_vs_size(bench::JsonReport& report) {
  std::cout << "\n--- (a) rendezvous bandwidth vs. message size, full buffer "
               "reuse (10 rounds each) ---\n";
  Table table({"message", "no cache", "LRU cache", "preregistered",
               "cache vs none", "cache vs prereg"});
  for (const std::uint32_t len :
       {16u * 1024, 64u * 1024, 256u * 1024, 1024u * 1024}) {
    ChannelRig none(EvictionPolicy::None, /*prereg=*/true);
    ChannelRig lru(EvictionPolicy::Lru, /*prereg=*/true);
    const Nanos t_none = mean_transfer(none.channel, none.cluster.clock(),
                                       Protocol::Rendezvous, len, 10);
    const Nanos t_lru = mean_transfer(lru.channel, lru.cluster.clock(),
                                      Protocol::Rendezvous, len, 10);
    const Nanos t_pre = mean_transfer(lru.channel, lru.cluster.clock(),
                                      Protocol::Preregistered, len, 10);
    table.row({Table::bytes(len), Table::rate(len, t_none),
               Table::rate(len, t_lru), Table::rate(len, t_pre),
               Table::fp(static_cast<double>(t_none) /
                             static_cast<double>(t_lru),
                         2) + "x",
               Table::fp(static_cast<double>(t_lru) /
                             static_cast<double>(t_pre),
                         2) + "x"});
    if (len == 1024u * 1024) {
      // Scalars for the --compare regression gate: the 1 MB point is where
      // registration cost dominates, so cost-model drift shows up first.
      report.metric("nocache_1m_ns", t_none)
          .metric("lru_1m_ns", t_lru)
          .metric("prereg_1m_ns", t_pre);
    }
  }
  table.print();
  report.add_table("bandwidth_vs_size", table);
}

void reuse_ratio_sweep(bench::JsonReport& report) {
  std::cout << "\n--- (b) 64 KB rendezvous, sweeping buffer-reuse ratio "
               "(50 transfers) ---\n";
  Table table({"reuse ratio", "cache hits", "cache misses", "mean time",
               "bandwidth"});
  constexpr std::uint32_t kLen = 64 * 1024;
  constexpr int kRounds = 50;
  for (const int reuse_pct : {0, 25, 50, 75, 100}) {
    ChannelRig rig(EvictionPolicy::Lru, /*prereg=*/false);
    Clock& clock = rig.cluster.clock();
    Nanos total = 0;
    std::uint64_t fresh = 0;
    for (int i = 0; i < kRounds; ++i) {
      // Deterministic interleave: (i % 4) < reuse_pct/25 -> reuse offset 0,
      // else a fresh 64 KB-aligned offset.
      const bool reuse = (i % 4) < reuse_pct / 25;
      const std::uint64_t off = reuse ? 0 : (++fresh) * kLen;
      const Nanos t0 = clock.now();
      if (!ok(rig.channel.transfer(Protocol::Rendezvous, off, off, kLen)))
        std::abort();
      total += clock.now() - t0;
    }
    const Nanos mean = total / kRounds;
    const auto& cs = rig.channel.sender_cache_stats();
    table.row({std::to_string(reuse_pct) + "%", Table::num(cs.hits),
               Table::num(cs.misses), Table::nanos(mean),
               Table::rate(kLen, mean)});
    if (reuse_pct == 0 || reuse_pct == 100) {
      report.metric("reuse" + std::to_string(reuse_pct) + "_mean_ns", mean);
    }
  }
  table.print();
  report.add_table("reuse_ratio_sweep", table);
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  std::cout << "E5: registration caching (paper section 1: \"caching "
               "registered regions, i.e. keeping them registered as long as "
               "possible\")\n";
  const vialock::bench::BenchFlags flags(argc, argv);
  vialock::bench::JsonReport report("E5", "registration caching payoff");
  vialock::bandwidth_vs_size(report);
  vialock::reuse_ratio_sweep(report);
  report.write_if(flags);

  // --metrics / --trace-export: one instrumented 50-transfer LRU run; the
  // sender node's kernel carries the channel, cache, agent and NIC metrics.
  const vialock::bench::ObsFlags obs(flags);
  if (obs.any()) {
    using namespace vialock;
    ChannelRig rig(core::EvictionPolicy::Lru, /*prereg=*/false);
    obs.arm(rig.cluster.node(rig.n0).kernel());
    for (int i = 0; i < 50; ++i) {
      if (!ok(rig.channel.transfer(msg::Protocol::Rendezvous, 0, 0, 64 * 1024)))
        std::abort();
    }
    obs.finish("E5", rig.cluster.node(rig.n0).kernel());
  }
  std::cout << "\nShape: with reuse, the LRU cache removes the registration\n"
               "syscalls from the critical path and rendezvous approaches the\n"
               "preregistered upper bound; without reuse caching cannot help.\n";
  return report.compare_if(flags);
}
