// bench_e3_regcost - Experiment E3: registration cost vs. region size.
//
// The performance face of the mechanism: what does VipRegisterMem cost, per
// policy, for cold memory (pages faulted in during registration) and warm
// memory (already resident)? The paper promises the kiobuf mechanism costs
// in the same class as the page-table-walking alternatives while being the
// only conformant one; registration is dominated by fault-in for cold
// buffers and stays linear in pages when warm.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "util/table.h"
#include "via/node.h"

namespace vialock {
namespace {

using simkern::kPageShift;
using simkern::kPageSize;

struct Cost {
  Nanos reg = 0;
  Nanos dereg = 0;
};

Cost measure(via::PolicyKind policy, std::uint64_t bytes, bool warm) {
  Clock clock;
  CostModel costs;
  via::Node node(bench::eval_node(policy), clock, costs);
  auto& kern = node.kernel();
  auto& agent = node.agent();
  const auto pid = kern.create_task("app");
  const auto addr = *kern.sys_mmap_anon(
      pid, bytes, simkern::VmFlag::Read | simkern::VmFlag::Write);
  if (warm) {
    for (std::uint64_t off = 0; off < bytes; off += kPageSize)
      (void)kern.touch(pid, addr + off, /*write=*/true);
  }
  const auto tag = agent.create_ptag(pid);
  via::MemHandle mh;
  const Nanos t0 = clock.now();
  (void)agent.register_mem(pid, addr, bytes, tag, mh);
  const Nanos t1 = clock.now();
  (void)agent.deregister_mem(mh);
  const Nanos t2 = clock.now();
  return Cost{t1 - t0, t2 - t1};
}

constexpr std::uint64_t kSizes[] = {4096,        16 * 1024,  64 * 1024,
                                    256 * 1024,  1024 * 1024, 4 * 1024 * 1024};

void print_table(bool warm, bool dereg, bench::JsonReport& report) {
  Table table({"size", "pages", "refcount", "pageflag", "mlock", "mlock+track",
               "kiobuf", "kiobuf overhead vs refcount"});
  for (const std::uint64_t size : kSizes) {
    std::vector<std::string> row{Table::bytes(size),
                                 Table::num(size >> kPageShift)};
    Nanos refcount_ns = 0;
    Nanos kiobuf_ns = 0;
    for (const via::PolicyKind policy : via::kAllPolicies) {
      const Cost c = measure(policy, size, warm);
      const Nanos ns = dereg ? c.dereg : c.reg;
      if (policy == via::PolicyKind::Refcount) refcount_ns = ns;
      if (policy == via::PolicyKind::Kiobuf) kiobuf_ns = ns;
      row.push_back(Table::nanos(ns));
    }
    row.push_back(
        refcount_ns
            ? Table::fp(static_cast<double>(kiobuf_ns) /
                            static_cast<double>(refcount_ns),
                        2) + "x"
            : "-");
    table.row(std::move(row));
  }
  table.print();
  report.add_table(warm ? "warm" : "cold", table);
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout << "E3: VipRegisterMem cost vs. region size (virtual time)\n";
  bench::JsonReport report("E3", "VipRegisterMem cost vs region size");
  std::cout << "\n--- warm buffers (pages already resident) ---\n";
  print_table(/*warm=*/true, /*dereg=*/false, report);
  std::cout << "\n--- cold buffers (registration faults pages in) ---\n";
  print_table(/*warm=*/false, /*dereg=*/false, report);
  report.write_if(flags);
  std::cout << "\nShape: linear in pages for every policy; cold registration\n"
               "dominated by demand-zero faults; the kiobuf mechanism adds\n"
               "only its per-page pin bookkeeping over the naive walker.\n";
  return report.compare_if(flags);
}
