// bench_e10_ablation_reclaim - Experiment E10 (ablation): reclaim parameters.
//
// DESIGN.md calls out two substrate knobs that shape every pressure
// experiment: the swap device latency and the reclaim batch size
// (swap_cluster). We run the standard pressure workload (dirty 1.5x RAM)
// under a sweep of both and report virtual completion time, swap traffic and
// reclaim invocations - verifying the failure experiments are not artifacts
// of one parameter choice (the locktest verdict column must not change).
#include <iostream>

#include "bench_util.h"
#include "experiments/locktest.h"
#include "experiments/pressure.h"
#include "util/table.h"

namespace vialock {
namespace {

struct Sweep {
  Nanos seek;
  std::uint32_t cluster;
};

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout << "E10 (ablation): reclaim parameters x swap-device latency\n"
            << "(allocator dirties 1.5x RAM on a 4096-frame node; locktest\n"
            << "verdicts for refcount/kiobuf re-checked per configuration)\n\n";
  Table table({"swap seek", "swap_cluster", "virtual time", "swap-outs",
               "reclaim runs", "refcount verdict", "kiobuf verdict"});
  for (const Nanos seek : {1'000'000ULL, 6'000'000ULL, 15'000'000ULL}) {
    for (const std::uint32_t cluster : {8u, 32u, 128u}) {
      // Pressure-only run for timing.
      Clock clock;
      CostModel costs;
      costs.swap_seek = seek;
      simkern::KernelConfig kcfg = bench::eval_node(via::PolicyKind::Kiobuf).kernel;
      kcfg.swap_cluster = cluster;
      simkern::Kernel kern(kcfg, clock, costs);
      const Nanos t0 = clock.now();
      const auto pr = experiments::apply_memory_pressure(kern, 1.5);
      const Nanos elapsed = clock.now() - t0;

      // Locktest verdicts under the same configuration.
      auto verdict = [&](via::PolicyKind policy) {
        Clock c2;
        via::NodeSpec spec = bench::eval_node(policy);
        spec.kernel.swap_cluster = cluster;
        via::Node node(spec, c2, costs);
        const auto r = experiments::run_locktest(node, {});
        return r.consistent() ? "CONSISTENT" : "STALE TPT";
      };

      table.row({Table::nanos(seek), Table::num(std::uint64_t{cluster}),
                 Table::nanos(elapsed), Table::num(pr.swap_outs),
                 Table::num(kern.stats().reclaim_runs),
                 verdict(via::PolicyKind::Refcount),
                 verdict(via::PolicyKind::Kiobuf)});
    }
  }
  table.print();
  bench::JsonReport report("E10", "reclaim parameter ablation");
  report.param("pressure_factor", "1.5").add_table("reclaim_sweep", table);
  report.write_if(flags);
  std::cout << "\nShape: time scales with seek latency and inversely with\n"
               "batch size (fewer, larger reclaim runs); the verdict columns\n"
               "are invariant - the E1 result is not a parameter artifact.\n";
  return report.compare_if(flags);
}
