// bench_e25_superpage - Experiment E25: variable-order superpage TPT entries.
//
// PR 8 lets one TPT entry cover a 2^k run of physically contiguous,
// identically-tagged frames (DESIGN.md section 14): the kernel agent greedily
// decomposes the pinned frame list and programs one entry per run instead of
// one per page. This bench sweeps registration size 16 -> 4096 pages on an
// order-0 node (the classic layout) against an order-9 node and reports, per
// size: TPT entries occupied, and the virtual-time register and deregister
// cost. Every scalar is an event count or a virtual-clock time - fully
// deterministic, byte-identical across runs (CI double-runs and cmp-gates
// the JSON).
//
// Self-checks (non-zero exit on failure, all build types - nothing here is
// wall-clock):
//   - order-0 occupies exactly one entry per page at every size (the classic
//     layout is reproduced bit for bit);
//   - per-page translation agrees between the two layouts at every size;
//   - at 4096 pages the superpage layout occupies >= 4x fewer entries and
//     the register ioctl is measurably faster (>= 1.2x: the per-entry PCI
//     programming no longer scales with pages);
//   - the 4096-page point replayed from scratch is identical.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "util/table.h"
#include "via/node.h"

namespace vialock {
namespace {

using simkern::kPageSize;

constexpr std::uint32_t kCounts[] = {16, 64, 256, 1024, 4096};
constexpr std::uint8_t kOrder = 9;

/// Frames and TPT sized so the 4096-page point fits at order 0: pin budget
/// 6144 of 8192 frames, 8192 TPT entries.
via::NodeSpec superpage_node(std::uint8_t max_order) {
  via::NodeSpec spec;
  spec.kernel.frames = 8192;
  spec.kernel.reserved_low = 16;
  spec.kernel.swap_slots = 16384;
  spec.kernel.free_pages_min = 16;
  spec.kernel.swap_cluster = 32;
  spec.nic.tpt_entries = 8192;
  spec.nic.max_superpage_order = max_order;
  spec.policy = via::PolicyKind::Kiobuf;
  return spec;
}

struct Point {
  std::uint32_t pages = 0;
  std::uint64_t entries = 0;
  Nanos reg_ns = 0;
  Nanos dereg_ns = 0;
  std::vector<simkern::Pfn> translated;  ///< per-page pfn through the TPT

  bool same_scalars(const Point& o) const {
    return pages == o.pages && entries == o.entries && reg_ns == o.reg_ns &&
           dereg_ns == o.dereg_ns && translated == o.translated;
  }
};

Point run_point(std::uint32_t pages, std::uint8_t max_order) {
  Clock clock;
  CostModel costs;
  via::Node node(superpage_node(max_order), clock, costs);
  auto& kern = node.kernel();
  auto& agent = node.agent();
  const simkern::Pid pid = kern.create_task("app");
  const auto addr = *kern.sys_mmap_anon(
      pid, std::uint64_t{pages} * kPageSize,
      simkern::VmFlag::Read | simkern::VmFlag::Write);
  // Warm the region first: fault-in cost is identical across orders and
  // would only dilute the register-time comparison. Sequential touch also
  // makes the buddy allocator hand out ascending contiguous frames, the
  // layout superpage decomposition exploits.
  for (std::uint32_t i = 0; i < pages; ++i)
    (void)kern.touch(pid, addr + std::uint64_t{i} * kPageSize, /*write=*/true);
  const via::ProtectionTag tag = agent.create_ptag(pid);

  Point pt;
  pt.pages = pages;
  via::MemHandle mh;
  const Nanos t0 = clock.now();
  if (!ok(agent.register_mem(pid, addr, std::uint64_t{pages} * kPageSize, tag,
                             mh))) {
    std::cout << "  register failed at " << pages << " pages\n";
    return {};
  }
  pt.reg_ns = clock.now() - t0;
  pt.entries = mh.tpt_count;

  pt.translated.reserve(pages);
  for (std::uint32_t i = 0; i < pages; ++i) {
    const auto tr = node.nic().tpt().translate(
        mh.tpt_base, mh.tpt_count, std::uint64_t{i} * kPageSize, tag, false,
        false);
    pt.translated.push_back(tr ? tr->pfn : simkern::kInvalidPfn);
  }

  const Nanos t1 = clock.now();
  if (!ok(agent.deregister_mem(mh))) {
    std::cout << "  deregister failed at " << pages << " pages\n";
    return {};
  }
  pt.dereg_ns = clock.now() - t1;
  if (!kern.self_check().empty() || kern.pinned_frames() != 0) {
    std::cout << "  post-dereg audit failed at " << pages << " pages\n";
    return {};
  }
  return pt;
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  std::cout << "E25: superpage TPT entries (DESIGN.md section 14)\n"
            << "One TPT entry per 2^k contiguous-frame run instead of one "
               "per page;\nregistration cost and table footprint, order-0 vs "
               "order-" << int{kOrder} << ".\nVirtual times - deterministic.\n";
  const bench::BenchFlags flags(argc, argv);  // --smoke accepted: the full
                                              // sweep is already seconds
  bench::JsonReport report("E25", "superpage TPT compaction");
  report.param("max_order", std::uint64_t{kOrder})
      .param("max_pages", std::uint64_t{4096});

  std::cout << "\n=== E25 registration sweep, order-0 vs order-" << int{kOrder}
            << " ===\n";
  Table table({"pages", "entries o0", "entries o" + std::to_string(kOrder),
               "reduction", "register us o0",
               "register us o" + std::to_string(kOrder), "speedup",
               "dereg us o0", "dereg us o" + std::to_string(kOrder)});

  bool correct = true;
  Point last0, last9;
  for (const std::uint32_t pages : kCounts) {
    const Point p0 = run_point(pages, 0);
    const Point p9 = run_point(pages, kOrder);
    if (p0.pages == 0 || p9.pages == 0) return 1;

    // The classic layout must be reproduced exactly at order 0...
    if (p0.entries != pages) {
      std::cout << "FAIL: order-0 " << pages << " pages occupied "
                << p0.entries << " entries (expected one per page)\n";
      correct = false;
    }
    // ...and the compressed table must translate identically page by page.
    if (p0.translated != p9.translated) {
      std::cout << "FAIL: translation diverges at " << pages << " pages\n";
      correct = false;
    }
    table.row({Table::num(std::uint64_t{pages}),
               Table::num(p0.entries), Table::num(p9.entries),
               Table::fp(static_cast<double>(p0.entries) /
                             static_cast<double>(p9.entries), 1) + "x",
               Table::fp(p0.reg_ns / 1e3, 1), Table::fp(p9.reg_ns / 1e3, 1),
               Table::fp(static_cast<double>(p0.reg_ns) /
                             static_cast<double>(p9.reg_ns), 2) + "x",
               Table::fp(p0.dereg_ns / 1e3, 1),
               Table::fp(p9.dereg_ns / 1e3, 1)});
    if (pages == 4096) {
      last0 = p0;
      last9 = p9;
    }
  }
  table.print();
  report.add_table("registration_sweep", table);

  const double reduction = static_cast<double>(last0.entries) /
                           static_cast<double>(last9.entries);
  const double reg_speedup = static_cast<double>(last0.reg_ns) /
                             static_cast<double>(last9.reg_ns);
  const double cycle_speedup =
      static_cast<double>(last0.reg_ns + last0.dereg_ns) /
      static_cast<double>(last9.reg_ns + last9.dereg_ns);
  report.metric("entries_4096_order0", last0.entries)
      .metric("entries_4096_superpage", last9.entries)
      .metric("entry_reduction_4096", reduction)
      .metric("register_ns_4096_order0", static_cast<std::uint64_t>(last0.reg_ns))
      .metric("register_ns_4096_superpage",
              static_cast<std::uint64_t>(last9.reg_ns))
      .metric("register_speedup_4096", reg_speedup)
      .metric("cycle_speedup_4096", cycle_speedup);
  std::cout << "\n4096-page registration:  " << last0.entries << " -> "
            << last9.entries << " TPT entries ("
            << Table::fp(reduction, 1) << "x),  register "
            << Table::fp(reg_speedup, 2) << "x, full cycle "
            << Table::fp(cycle_speedup, 2) << "x faster\n";

  // Same-seed replay of the headline point must be scalar-identical.
  const bool deterministic = run_point(4096, 0).same_scalars(last0) &&
                             run_point(4096, kOrder).same_scalars(last9);
  std::cout << "determinism (replayed 4096-page points identical): "
            << bench::passfail(deterministic) << "\n";

  const bool wins = reduction >= 4.0 && reg_speedup >= 1.2;
  std::cout << "self-check (>= 4x fewer entries, >= 1.2x register): "
            << bench::passfail(wins) << "\n";
  report.metric("deterministic", bench::passfail(deterministic));
  report.metric("superpage_win_ok", bench::passfail(wins));
  report.write_if(flags);
  const int compare_rc = report.compare_if(flags);
  return (correct && deterministic && wins && compare_rc == 0) ? 0 : 1;
}
