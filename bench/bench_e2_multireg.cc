// bench_e2_multireg - Experiment E2: multiple registration semantics.
//
// "The VIA specification explicitly allows a certain memory area to be
// registered several times" (section 1); "mlock calls do not nest" (section
// 3.2). For each policy we register the same range N times, deregister once,
// and test whether the remaining registrations still protect the range under
// reclaim; then the same with *overlapping* (not identical) ranges, the case
// driver-side range tracking cannot fix.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "util/table.h"
#include "via/node.h"

namespace vialock {
namespace {

using simkern::kPageSize;
using simkern::Pfn;
using simkern::VAddr;

/// Evict whatever reclaim can take, then check the range kept its frames.
bool range_survives(simkern::Kernel& kern, simkern::Pid pid, VAddr addr,
                    std::uint32_t pages, const std::vector<Pfn>& before,
                    std::uint32_t first_page = 0) {
  for (std::uint32_t p = 0; p < pages; ++p) {
    auto* pte = kern.task(pid).mm.pt.walk(addr + p * kPageSize);
    if (pte && pte->present) pte->accessed = false;
  }
  (void)kern.try_to_free_pages(pages);
  for (std::uint32_t p = 0; p < pages; ++p) {
    const auto pfn = kern.resolve(pid, addr + p * kPageSize);
    if (!pfn || *pfn != before[first_page + p]) return false;
  }
  return true;
}

struct Verdicts {
  bool exact_nesting = false;
  bool overlap_nesting = false;
};

Verdicts probe(via::PolicyKind policy) {
  Verdicts v;
  {
    // Exact range registered 3x, deregistered 1x.
    Clock clock;
    CostModel costs;
    via::Node node(bench::eval_node(policy), clock, costs);
    auto& kern = node.kernel();
    auto& agent = node.agent();
    const auto pid = kern.create_task("app");
    const auto addr = *kern.sys_mmap_anon(
        pid, 8 * kPageSize, simkern::VmFlag::Read | simkern::VmFlag::Write);
    const auto tag = agent.create_ptag(pid);
    via::MemHandle h1, h2, h3;
    (void)agent.register_mem(pid, addr, 8 * kPageSize, tag, h1);
    (void)agent.register_mem(pid, addr, 8 * kPageSize, tag, h2);
    (void)agent.register_mem(pid, addr, 8 * kPageSize, tag, h3);
    const auto before = agent.lock_handle(h2.id)->pfns;
    (void)agent.deregister_mem(h1);
    v.exact_nesting = range_survives(kern, pid, addr, 8, before);
    (void)agent.deregister_mem(h2);
    (void)agent.deregister_mem(h3);
  }
  {
    // Overlapping ranges: [0,6) and [2,8) pages; deregister the first.
    Clock clock;
    CostModel costs;
    via::Node node(bench::eval_node(policy), clock, costs);
    auto& kern = node.kernel();
    auto& agent = node.agent();
    const auto pid = kern.create_task("app");
    const auto addr = *kern.sys_mmap_anon(
        pid, 8 * kPageSize, simkern::VmFlag::Read | simkern::VmFlag::Write);
    const auto tag = agent.create_ptag(pid);
    via::MemHandle h1, h2;
    (void)agent.register_mem(pid, addr, 6 * kPageSize, tag, h1);
    (void)agent.register_mem(pid, addr + 2 * kPageSize, 6 * kPageSize, tag, h2);
    const auto before = agent.lock_handle(h2.id)->pfns;
    (void)agent.deregister_mem(h1);
    v.overlap_nesting =
        range_survives(kern, pid, addr + 2 * kPageSize, 6, before);
    (void)agent.deregister_mem(h2);
  }
  return v;
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout
      << "E2: multiple-registration semantics (paper sections 1 and 3.2)\n"
      << "Register the same 8-page range 3x, deregister once - do the other\n"
      << "two registrations still pin the range? Then overlapping ranges,\n"
      << "which per-range driver tracking cannot handle.\n\n";
  Table table({"locking policy", "3x reg / 1x dereg (exact)",
               "overlapping ranges", "paper's assessment"});
  for (const via::PolicyKind policy : via::kAllPolicies) {
    const auto v = probe(policy);
    const char* note = "";
    switch (policy) {
      case via::PolicyKind::Refcount:
        note = "refcounts nest, but nothing is locked (E1)";
        break;
      case via::PolicyKind::PageFlag:
        note = "first dereg strips PG_locked from all";
        break;
      case via::PolicyKind::Mlock:
        note = "\"a single unlock annuls multiple locks\"";
        break;
      case via::PolicyKind::MlockTracked:
        note = "driver bookkeeping: exact ranges only";
        break;
      case via::PolicyKind::Kiobuf:
        note = "one pin per map_user_kiobuf: full nesting";
        break;
    }
    table.row({std::string(to_string(policy)),
               bench::passfail(v.exact_nesting),
               bench::passfail(v.overlap_nesting), note});
  }
  table.print();
  bench::JsonReport report("E2", "multiple-registration semantics");
  report.add_table("nesting", table);
  report.write_if(flags);
  std::cout << "\nOnly the kiobuf mechanism passes both columns: each\n"
               "map_user_kiobuf() carries its own per-page pin, so exact,\n"
               "repeated and overlapping registrations all release\n"
               "independently.\n";
  return report.compare_if(flags);
}
