// bench_e23_scenario - Experiment E23: cluster-scale scenario engine.
//
// Drives the declarative scenario subsystem (src/scenario/, DESIGN.md
// section 12) at cluster scale: the bundled cluster-1m.spec - 256 simulated
// hosts, two QoS-classed tenants each, Zipf-skewed KV traffic whose 4 KB
// values travel rendezvous, plus registration-churn actors - for over one
// million registrations + transfers in one deterministic event-driven run.
//
// Reports a hosts x tenants scaling table (virtual makespan, host busy
// time, event and transfer counts) and self-checks the determinism
// contract: the headline spec runs twice and the canonical report_json
// strings must match byte-for-byte. Non-zero exit on divergence or any
// invariant violation, so CI can gate on it (--smoke runs a reduced-scale
// sweep; EXPERIMENTS.md E23 records the full-scale table).
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "scenario/engine.h"
#include "scenario/spec.h"
#include "util/table.h"

#ifndef SCENARIO_SPEC_DIR
#define SCENARIO_SPEC_DIR "examples/scenarios"
#endif

namespace vialock {
namespace {

struct SweepPoint {
  std::uint32_t hosts;
  std::uint32_t ops_per_tenant;
  std::uint32_t churn_regs;
};

scenario::ScenarioSpec base_spec() {
  scenario::ParseResult parsed = scenario::load_spec_file(
      std::string(SCENARIO_SPEC_DIR) + "/cluster-1m.spec");
  if (!parsed.ok()) {
    std::cerr << "spec error: " << parsed.error << "\n";
    std::abort();
  }
  return std::move(parsed.spec);
}

void apply_or_die(scenario::ScenarioSpec& spec, const std::string& key,
                  std::uint64_t value) {
  const std::string err = spec.apply(key, std::to_string(value));
  if (!err.empty()) {
    std::cerr << "override " << key << "=" << value << ": " << err << "\n";
    std::abort();
  }
}

scenario::ScenarioSpec sweep_spec(const SweepPoint& p) {
  scenario::ScenarioSpec spec = base_spec();
  apply_or_die(spec, "hosts", p.hosts);
  apply_or_die(spec, "servers", std::max<std::uint32_t>(2, p.hosts / 16));
  apply_or_die(spec, "ops_per_tenant", p.ops_per_tenant);
  apply_or_die(spec, "churn_regs_per_tenant", p.churn_regs);
  return spec;
}

scenario::ScenarioReport run_or_die(scenario::ScenarioSpec spec) {
  scenario::ScenarioEngine engine(std::move(spec));
  if (!ok(engine.build()) || !ok(engine.run())) {
    std::cerr << "scenario failed to build/run\n";
    std::abort();
  }
  for (const auto& v : engine.report().violations)
    std::cerr << "violation: " << v << "\n";
  return engine.report();
}

/// The determinism contract, enforced: same spec + seed, byte-identical
/// canonical JSON. Returns the (verified) report of the first run.
std::pair<scenario::ScenarioReport, bool> run_twice(
    const scenario::ScenarioSpec& spec) {
  scenario::ScenarioEngine first(spec);
  if (!ok(first.build()) || !ok(first.run())) std::abort();
  scenario::ScenarioEngine second(spec);
  if (!ok(second.build()) || !ok(second.run())) std::abort();
  const bool identical =
      scenario::report_json(spec, first.report()) ==
      scenario::report_json(spec, second.report());
  return {first.report(), identical};
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;
  const bench::BenchFlags flags(argc, argv);

  std::cout << "E23: cluster-scale scenario engine "
            << (smoke ? "(smoke: reduced scale)" : "(full scale)") << "\n"
            << "cluster-1m.spec: Zipf-skewed KV + registration churn on an\n"
               "event-driven multi-host scheduler; all times virtual.\n\n";

  const std::vector<SweepPoint> sweep =
      smoke ? std::vector<SweepPoint>{{8, 100, 25}, {16, 100, 25}, {32, 100, 25}}
            : std::vector<SweepPoint>{{32, 200, 50}, {64, 200, 50},
                                      {128, 200, 50}, {256, 200, 50}};

  Table table({"hosts", "tenants", "events", "transfers ok", "regs+transfers",
               "makespan", "host busy", "p99 op lat"});
  for (const SweepPoint& p : sweep) {
    scenario::ScenarioSpec spec = sweep_spec(p);
    const std::uint32_t tenants = p.hosts * spec.tenants_per_host;
    const scenario::ScenarioReport r = run_or_die(std::move(spec));
    if (!r.invariants_ok) return 1;
    table.row({Table::num(std::uint64_t{p.hosts}),
               Table::num(std::uint64_t{tenants}),
               Table::num(r.events_dispatched),
               Table::num(r.counters.transfers_ok),
               Table::num(r.registrations_plus_transfers()),
               Table::nanos(r.makespan_ns), Table::nanos(r.busy_ns),
               Table::nanos(r.latency_p99_ns)});
  }
  table.print();

  // Headline run: the shipped spec, twice, byte-compared.
  scenario::ScenarioSpec headline = base_spec();
  if (smoke) {
    apply_or_die(headline, "hosts", 32);
    apply_or_die(headline, "servers", 4);
    apply_or_die(headline, "ops_per_tenant", 200);
    apply_or_die(headline, "churn_regs_per_tenant", 50);
  }
  const auto [r, identical] = run_twice(headline);
  std::cout << "\nheadline (" << headline.hosts << " hosts): "
            << r.registrations_plus_transfers() << " registrations+transfers, "
            << r.events_dispatched << " events, makespan "
            << Table::nanos(r.makespan_ns) << "\n"
            << "same-seed byte-identical report: " << bench::passfail(identical)
            << "\ninvariants: " << bench::passfail(r.invariants_ok) << "\n";

  bench::JsonReport report("E23", "cluster-scale scenario engine");
  report.param("spec", "cluster-1m")
      .param("smoke", smoke ? "yes" : "no")
      .param("hosts", std::uint64_t{headline.hosts})
      .param("tenants_per_host", std::uint64_t{headline.tenants_per_host})
      .param("seed", headline.seed);
  report.metric("registrations_plus_transfers", r.registrations_plus_transfers())
      .metric("transfers_ok", r.counters.transfers_ok)
      .metric("transfers_failed", r.counters.transfers_failed)
      .metric("agent_registrations", r.agent_registrations)
      .metric("events_dispatched", r.events_dispatched)
      .metric("makespan_ns", r.makespan_ns)
      .metric("busy_ns", r.busy_ns)
      .metric("latency_p99_ns", r.latency_p99_ns)
      .metric("deterministic", bench::passfail(identical))
      .metric("invariants", bench::passfail(r.invariants_ok));
  report.add_table("scaling", table);
  report.write_if(flags);

  if (!identical || !r.invariants_ok) return 1;
  return report.compare_if(flags);
}
