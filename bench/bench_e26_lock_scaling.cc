// bench_e26_lock_scaling.cc - E26: does the threaded execution mode scale?
//
// Two wall-clock experiments (EXPERIMENTS.md E26); this is the one bench
// family where host time is the measurement, because the question is about
// real parallelism, not simulated cost:
//
//  Part 1 - lock granularity. N real threads hammer ONE shared node with
//  register/deregister cycles on disjoint ranges (one pid per thread, no
//  reclaim pressure). Variant `global` funnels every operation through a
//  single sync::Mutex - what a naive "make it thread-safe" port would do.
//  Variant `fine` relies on the node's internal sync:: facade: CNA mutexes
//  per subsystem plus the range lock that lets disjoint-range registrations
//  run in parallel (DESIGN.md section 15). Fine-grained must beat global.
//
//  Part 2 - end-to-end scaling. The 64-host skewed-kv scenario, serial
//  oracle vs ThreadedExecutor, same spec + seed. The audit surface must
//  match exactly (enforced everywhere, every build); the >= 3x speedup at 8
//  threads is enforced only where the hardware can deliver it.
//
// Hardware-conditional gates (the deterministic scalars are gated in every
// environment; wall-clock gates only where they are meaningful):
//   - fine < global        requires hardware_concurrency >= 2
//   - threaded >= 3x serial requires hardware_concurrency >= 8
// Skipped gates report PASS so a BENCH_E26.json baseline from a big CI
// runner still compares clean against a laptop run.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "scenario/engine.h"
#include "scenario/executor.h"
#include "scenario/spec.h"
#include "simkern/kernel.h"
#include "sync/sync.h"
#include "util/table.h"
#include "via/kernel_agent.h"
#include "via/node.h"

namespace {

using namespace vialock;
using simkern::kPageSize;

double wall_ms(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// --- part 1: register/deregister under global vs fine-grained locking -------

struct Lane {
  simkern::Pid pid = simkern::kInvalidPid;
  simkern::VAddr base = 0;
  via::ProtectionTag tag = via::kInvalidTag;
};

struct Part1Result {
  double ms = 0;
  std::uint64_t ops_ok = 0;
};

Part1Result run_part1(std::uint32_t threads, std::uint64_t ops_per_thread,
                      bool global_lock) {
  Clock clock;
  CostModel costs;
  via::NodeSpec spec = bench::eval_node(via::PolicyKind::Kiobuf);
  spec.sync = sync::SyncPolicy::threaded();
  via::Node node(spec, clock, costs);
  auto& kern = node.kernel();
  auto& agent = node.agent();

  constexpr std::uint64_t kPoolPages = 32;
  constexpr std::uint64_t kRegPages = 8;
  std::vector<Lane> lanes(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    lanes[t].pid = kern.create_task("w" + std::to_string(t));
    const auto addr = kern.sys_mmap_anon(
        lanes[t].pid, kPoolPages * kPageSize,
        simkern::VmFlag::Read | simkern::VmFlag::Write);
    if (!addr) {
      std::cerr << "E26: mmap failed for lane " << t << "\n";
      return {};
    }
    lanes[t].base = *addr;
    lanes[t].tag = agent.create_ptag(lanes[t].pid);
  }

  sync::Mutex global(sync::SyncPolicy::threaded());
  sync::Relaxed ops_ok = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sync::set_thread_numa(static_cast<int>(t % 2));
      const Lane& lane = lanes[t];
      for (std::uint64_t op = 0; op < ops_per_thread; ++op) {
        // Slide over 4 disjoint 8-page windows of this lane's pool: ranges
        // never collide across threads (distinct pids), so the range lock
        // admits them all in parallel; the global variant serialises them.
        const simkern::VAddr at =
            lane.base + (op % (kPoolPages / kRegPages)) * kRegPages *
                            kPageSize;
        via::MemHandle mh;
        if (global_lock) {
          sync::Guard g(global);
          if (ok(agent.register_mem(lane.pid, at, kRegPages * kPageSize,
                                    lane.tag, mh)) &&
              ok(agent.deregister_mem(mh)))
            ++ops_ok;
        } else {
          if (ok(agent.register_mem(lane.pid, at, kRegPages * kPageSize,
                                    lane.tag, mh)) &&
              ok(agent.deregister_mem(mh)))
            ++ops_ok;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();
  return {wall_ms(t0, t1), ops_ok.load()};
}

// --- part 2: scenario end-to-end, serial oracle vs threaded executor --------

struct AuditSurface {
  std::uint64_t transfers_ok = 0;
  std::uint64_t transfers_failed = 0;
  std::uint64_t kv_gets = 0;
  std::uint64_t kv_puts = 0;
  std::uint64_t agent_registrations = 0;
  std::uint64_t agent_deregistrations = 0;
  bool invariants_ok = false;
  bool operator==(const AuditSurface&) const = default;
};

struct Part2Result {
  double ms = 0;
  AuditSurface surface;
};

Part2Result run_part2(const scenario::ScenarioSpec& base,
                      std::uint32_t threads) {
  scenario::ScenarioSpec spec = base;
  spec.threads = threads;
  scenario::ScenarioEngine engine(spec);
  if (!ok(engine.build())) {
    std::cerr << "E26: scenario build failed\n";
    return {};
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (!ok(engine.run())) {
    std::cerr << "E26: scenario run failed\n";
    return {};
  }
  const auto t1 = std::chrono::steady_clock::now();
  const scenario::ScenarioReport& r = engine.report();
  return {wall_ms(t0, t1),
          {r.counters.transfers_ok.load(), r.counters.transfers_failed.load(),
           r.counters.kv_gets.load(), r.counters.kv_puts.load(),
           r.agent_registrations, r.agent_deregistrations, r.invariants_ok}};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;

  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t threads = flags.threads != 0 ? flags.threads : 8;
  const std::uint64_t part1_ops = smoke ? 200 : 2000;

  std::cout << "=== E26: lock scaling (threads=" << threads
            << ", hardware_concurrency=" << hw << (smoke ? ", smoke" : "")
            << ") ===\n";

  // Part 1: one shared node, global funnel vs fine-grained sync:: locks.
  const Part1Result global = run_part1(threads, part1_ops, true);
  const Part1Result fine = run_part1(threads, part1_ops, false);
  const std::uint64_t expect_ops =
      static_cast<std::uint64_t>(threads) * part1_ops;
  const bool part1_ops_ok =
      global.ops_ok == expect_ops && fine.ops_ok == expect_ops;
  const bool gate_fine = hw < 2 || threads < 2 || fine.ms < global.ms;

  Table part1({"variant", "threads", "reg/dereg ops", "wall ms", "ops/ms"});
  part1.row({"global mutex", Table::num(std::uint64_t{threads}),
             Table::num(global.ops_ok), Table::fp(global.ms),
             Table::fp(global.ms > 0 ? global.ops_ok / global.ms : 0)});
  part1.row({"fine-grained", Table::num(std::uint64_t{threads}),
             Table::num(fine.ops_ok), Table::fp(fine.ms),
             Table::fp(fine.ms > 0 ? fine.ops_ok / fine.ms : 0)});
  part1.print();
  std::cout << "all ops completed: " << bench::passfail(part1_ops_ok)
            << "\nfine-grained beats global: "
            << (hw < 2 || threads < 2
                    ? "SKIP (needs >= 2 hardware threads)"
                    : bench::passfail(fine.ms < global.ms))
            << "\n\n";

  // Part 2: the 64-host scenario through both executors.
  scenario::ParseResult parsed = scenario::parse_spec(
      smoke ? "name = e26\npattern = skewed-kv\nhosts = 16\nservers = 4\n"
              "tenants_per_host = 2\nops_per_tenant = 30\nskew = 1.1\n"
              "value_bytes = 1024\n"
            : "name = e26\npattern = skewed-kv\nhosts = 64\nservers = 8\n"
              "tenants_per_host = 2\nops_per_tenant = 120\nskew = 1.1\n"
              "value_bytes = 1024\n");
  if (!parsed.ok()) {
    std::cerr << "E26: spec parse failed: " << parsed.error << "\n";
    return 1;
  }
  const Part2Result serial = run_part2(parsed.spec, 1);
  const Part2Result threaded = run_part2(parsed.spec, threads);
  const bool audit_match =
      serial.surface == threaded.surface && serial.surface.invariants_ok;
  const double speedup =
      threaded.ms > 0 ? serial.ms / threaded.ms : 0.0;
  const bool gate_speedup = hw < 8 || threads < 8 || speedup >= 3.0;

  Table part2({"mode", "threads", "wall ms", "speedup", "invariants"});
  part2.row({"serial oracle", "1", Table::fp(serial.ms), "1.00",
             bench::yesno(serial.surface.invariants_ok)});
  part2.row({"threaded", Table::num(std::uint64_t{threads}),
             Table::fp(threaded.ms), Table::fp(speedup),
             bench::yesno(threaded.surface.invariants_ok)});
  part2.print();
  std::cout << "audit surface identical: " << bench::passfail(audit_match)
            << "\nthreaded >= 3x serial: "
            << (hw < 8 || threads < 8
                    ? "SKIP (needs >= 8 hardware threads)"
                    : bench::passfail(speedup >= 3.0))
            << "\n";

  bench::JsonReport report("E26", "lock scaling: threaded execution mode");
  report.param("threads", std::uint64_t{threads})
      .param("hardware_concurrency", std::uint64_t{hw})
      .param("smoke", smoke ? "yes" : "no")
      .param("part1_wall_ms_global", std::to_string(global.ms))
      .param("part1_wall_ms_fine", std::to_string(fine.ms))
      .param("part2_wall_ms_serial", std::to_string(serial.ms))
      .param("part2_wall_ms_threaded", std::to_string(threaded.ms))
      // Deterministic scalars only below: wall times stay out of the
      // metrics object so --compare never gates on machine noise.
      .metric("part1_ops_ok", fine.ops_ok)
      .metric("part2_transfers_ok", serial.surface.transfers_ok)
      .metric("part2_kv_gets", serial.surface.kv_gets)
      .metric("part2_kv_puts", serial.surface.kv_puts)
      .metric("part2_agent_registrations", serial.surface.agent_registrations)
      .metric("part1_all_ops", bench::passfail(part1_ops_ok))
      .metric("gate_fine_vs_global", bench::passfail(gate_fine))
      .metric("gate_audit_match", bench::passfail(audit_match))
      .metric("gate_speedup_3x", bench::passfail(gate_speedup));
  report.add_table("part1_lock_granularity", part1);
  report.add_table("part2_scenario_scaling", part2);
  report.write_if(flags);

  if (!part1_ops_ok || !audit_match || !gate_fine || !gate_speedup) {
    std::cerr << "E26: gate failure\n";
    return 1;
  }
  return report.compare_if(flags);
}
