// bench_e1_locktest - Experiment E1 (paper section 3.1, the locktest runs).
//
// Reproduces the paper's central experiment for every locking policy: a
// 64-page region is registered, an allocator process forces heavy swapping,
// and we check whether the NIC's registration-time physical addresses still
// match the process's pages - plus the control run without memory pressure.
//
// Paper claim: with refcount-only locking "all physical addresses had changed
// and the first page still contained its original value"; system stability is
// unaffected (stale frames are only leaked). Proper locking keeps everything
// consistent.
#include <iostream>

#include "bench_util.h"
#include "experiments/locktest.h"
#include "util/table.h"

namespace vialock {
namespace {

void run_matrix(bool pressure, bench::JsonReport& report) {
  std::cout << "\n=== E1 locktest: " << (pressure ? "under memory pressure (allocator dirties 1.5x RAM)"
                                                  : "control, no memory pressure")
            << " ===\n";
  Table table({"locking policy", "pages", "relocated", "DMA write visible",
               "NIC reads current", "data intact", "frames leaked",
               "swapped (sys)", "verdict"});
  Nanos total_ns = 0;
  for (const via::PolicyKind policy : via::kAllPolicies) {
    Clock clock;
    CostModel costs;
    via::Node node(bench::eval_node(policy), clock, costs);
    experiments::LocktestConfig cfg;
    cfg.region_pages = 64;
    cfg.pressure_factor = 1.5;
    cfg.run_pressure = pressure;
    const auto r = experiments::run_locktest(node, cfg);
    total_ns += clock.now();
    table.row({std::string(to_string(policy)), Table::num(std::uint64_t{r.pages}),
               Table::num(std::uint64_t{r.pages_relocated}),
               bench::yesno(r.dma_write_visible),
               bench::yesno(r.nic_read_current), bench::yesno(r.data_intact),
               Table::num(std::uint64_t{r.frames_detached}),
               Table::num(r.pages_swapped_out),
               r.consistent() ? "CONSISTENT" : "STALE TPT"});
  }
  table.print();
  report.add_table(pressure ? "pressure" : "control", table);
  // Scalar for the --compare regression gate: the matrix's total virtual
  // time moves whenever locking, swap, or DMA costs drift.
  report.metric(pressure ? "pressure_total_ns" : "control_total_ns", total_ns);
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  std::cout << "E1: the locktest experiment (paper section 3.1, steps 1-8)\n"
            << "Paper: refcount-only locking leaves the TPT stale under\n"
            << "pressure; PG_locked / VM_LOCKED / kiobuf locking survive.\n";
  const bench::BenchFlags flags(argc, argv);
  bench::JsonReport report("E1", "locktest: TPT consistency by policy");
  report.param("region_pages", std::uint64_t{64})
      .param("pressure_factor", "1.5");
  run_matrix(/*pressure=*/true, report);
  run_matrix(/*pressure=*/false, report);
  report.write_if(flags);

  // --metrics / --trace-export: one extra pressure run of the paper's
  // proposed policy with span recording armed; its node provides the metric
  // snapshot and chrome trace. Deterministic: same binary, same bytes.
  const bench::ObsFlags obs(flags);
  if (obs.any()) {
    Clock clock;
    CostModel costs;
    via::Node node(bench::eval_node(via::PolicyKind::Kiobuf), clock, costs);
    obs.arm(node.kernel());
    experiments::LocktestConfig cfg;
    cfg.region_pages = 64;
    cfg.pressure_factor = 1.5;
    cfg.run_pressure = true;
    (void)experiments::run_locktest(node, cfg);
    obs.finish("E1", node.kernel());
  }
  return report.compare_if(flags);
}
