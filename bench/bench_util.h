// bench_util.h - shared configuration and formatting for the experiment
// benches. Every binary prints the table(s) of one experiment from
// EXPERIMENTS.md; virtual times come from the simulation's deterministic
// clock, so outputs are exactly reproducible.
//
// With `--json` on the command line, a bench additionally writes
// BENCH_<experiment>.json - machine-readable name/params/tables - so CI can
// archive results as artifacts and diff them across commits.
//
// Two further shared flags expose the observability layer (DESIGN.md
// section 10): `--metrics` prints the node's full metric snapshot as
// /proc/metrics text after the run, and `--trace-export` writes
// TRACE_<experiment>.json, a chrome://tracing / Perfetto-loadable span
// trace of the instrumented run. Both are deterministic: same seed, same
// bytes.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "util/table.h"
#include "via/node.h"

namespace vialock::bench {

/// The standard evaluation platform: 16 MB RAM / 64 MB swap / 8k-entry TPT
/// (a 2000-era compute node in miniature; sizes scaled for simulation speed).
inline via::NodeSpec eval_node(via::PolicyKind policy) {
  via::NodeSpec spec;
  spec.kernel.frames = 4096;
  spec.kernel.reserved_low = 16;
  spec.kernel.swap_slots = 16384;
  spec.kernel.free_pages_min = 16;
  spec.kernel.swap_cluster = 32;
  spec.nic.tpt_entries = 8192;
  spec.policy = policy;
  return spec;
}

inline std::string yesno(bool b) { return b ? "yes" : "NO"; }
inline std::string passfail(bool b) { return b ? "PASS" : "FAIL"; }

/// One pass over argv for the flags every bench shares: `--json`,
/// `--metrics`, `--trace-export`, `--compare <baseline>` (or
/// `--compare=<baseline>`) and `--compare-threshold=<f>`. Benches parse
/// once up front and hand the result to JsonReport::write_if /
/// JsonReport::compare_if and ObsFlags instead of each helper re-scanning
/// the argument list.
struct BenchFlags {
  bool json = false;
  bool metrics = false;
  bool trace = false;
  std::string compare_path;
  double compare_threshold = 0.10;
  /// `--threads <n>` / `--threads=<n>`: worker threads for benches that run
  /// scenarios through an executor (0 = the bench's own default; 1 = the
  /// serial oracle). Mirrors the scenario_runner / spec `threads` knob.
  std::uint32_t threads = 0;

  BenchFlags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string a(argv[i]);
      if (a == "--json") {
        json = true;
      } else if (a == "--metrics") {
        metrics = true;
      } else if (a == "--trace-export") {
        trace = true;
      } else if (a == "--compare" && i + 1 < argc) {
        compare_path = argv[++i];
      } else if (a.rfind("--compare=", 0) == 0) {
        compare_path = a.substr(10);
      } else if (a.rfind("--compare-threshold=", 0) == 0) {
        compare_threshold = std::stod(a.substr(20));
      } else if (a == "--threads" && i + 1 < argc) {
        threads = static_cast<std::uint32_t>(std::stoul(argv[++i]));
      } else if (a.rfind("--threads=", 0) == 0) {
        threads = static_cast<std::uint32_t>(std::stoul(a.substr(10)));
      }
    }
  }

  [[nodiscard]] bool obs_any() const { return metrics || trace; }
};

/// Machine-readable experiment output. Collects the experiment's parameters,
/// scalar metrics, and printed tables, and - when the binary was invoked with
/// `--json` - writes them to BENCH_<experiment>.json in the working
/// directory. All values come from the virtual clock, so the file is
/// byte-identical across runs.
class JsonReport {
 public:
  JsonReport(std::string experiment, std::string name)
      : experiment_(std::move(experiment)), name_(std::move(name)) {}

  JsonReport& param(const std::string& key, const std::string& value) {
    params_.emplace_back(key, quote(value));
    return *this;
  }
  JsonReport& param(const std::string& key, std::uint64_t value) {
    params_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonReport& metric(const std::string& key, std::uint64_t value) {
    metrics_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonReport& metric(const std::string& key, double value) {
    std::ostringstream ss;
    ss << value;
    metrics_.emplace_back(key, ss.str());
    return *this;
  }
  JsonReport& metric(const std::string& key, const std::string& value) {
    metrics_.emplace_back(key, quote(value));
    return *this;
  }

  /// Capture a printed table (headers + string cells) under `label`.
  JsonReport& add_table(const std::string& label, const Table& table) {
    tables_.emplace_back(label, render(table));
    return *this;
  }

  /// Regression gate: with `--compare <baseline.json>` (a BENCH_*.json from
  /// an earlier run, e.g. the previous CI build's artifact) the report's
  /// scalar metrics are diffed against the baseline's. A numeric metric
  /// regresses when its relative delta |cur - base| / base exceeds the
  /// threshold (default 0.10, override with --compare-threshold=<f>); a
  /// string metric regresses when it changed at all (PASS -> FAIL). Returns
  /// the process exit code: 0 when clean, not requested, or the baseline is
  /// missing (first run); 1 on regression.
  [[nodiscard]] int compare_if(const BenchFlags& flags) const {
    return compare(flags.compare_path, flags.compare_threshold);
  }

  [[nodiscard]] int compare(const std::string& path, double threshold) const {
    if (path.empty()) return 0;
    std::ifstream in(path);
    if (!in) {
      std::cout << "\ncompare: baseline " << path
                << " not readable - skipping (first run?)\n";
      return 0;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const Fields baseline = parse_metrics_object(buf.str());
    if (baseline.empty()) {
      std::cout << "\ncompare: no scalar metrics in " << path
                << " - nothing to gate\n";
      return 0;
    }
    std::cout << "\n=== compare vs " << path << " (threshold "
              << threshold * 100 << "%) ===\n";
    int regressions = 0;
    for (const auto& [key, base] : baseline) {
      const std::string* cur = nullptr;
      for (const auto& [k, v] : metrics_)
        if (k == key) cur = &v;
      if (!cur) {
        std::cout << "  " << key << ": missing in current run (baseline "
                  << base << ")\n";
        continue;
      }
      const bool base_num = !base.empty() && base.front() != '"';
      const bool cur_num = !cur->empty() && cur->front() != '"';
      if (base_num && cur_num) {
        const double b = std::stod(base);
        const double c = std::stod(*cur);
        const double delta =
            b != 0.0 ? (c - b) / b : (c == 0.0 ? 0.0 : 1.0);
        const bool bad = delta > threshold || delta < -threshold;
        std::cout << "  " << key << ": " << base << " -> " << *cur << " ("
                  << (delta >= 0 ? "+" : "") << delta * 100 << "%)"
                  << (bad ? "  REGRESSION" : "") << "\n";
        if (bad) ++regressions;
      } else {
        const bool bad = base != *cur;
        std::cout << "  " << key << ": " << base << " -> " << *cur
                  << (bad ? "  CHANGED" : "") << "\n";
        if (bad) ++regressions;
      }
    }
    if (regressions) {
      std::cout << "compare: " << regressions
                << " metric(s) regressed beyond the threshold\n";
      return 1;
    }
    std::cout << "compare: OK\n";
    return 0;
  }

  /// Write BENCH_<experiment>.json if `--json` was requested. Returns true
  /// when the file was written.
  bool write_if(const BenchFlags& flags) const {
    if (!flags.json) return false;
    std::ofstream out("BENCH_" + experiment_ + ".json");
    out << "{\n  \"experiment\": " << quote(experiment_)
        << ",\n  \"name\": " << quote(name_) << ",\n  \"params\": "
        << object(params_) << ",\n  \"metrics\": " << object(metrics_)
        << ",\n  \"tables\": {";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      out << (i ? "," : "") << "\n    " << quote(tables_[i].first) << ": "
          << tables_[i].second;
    }
    out << (tables_.empty() ? "" : "\n  ") << "}\n}\n";
    return out.good();
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  /// Pull the `"metrics": {...}` object back out of a BENCH_*.json we wrote
  /// earlier. The format is our own (flat object, scalar values, no commas
  /// or braces inside strings), so a line scanner is all the parser needed.
  static Fields parse_metrics_object(const std::string& json) {
    Fields out;
    const auto at = json.find("\"metrics\": {");
    if (at == std::string::npos) return out;
    std::size_t i = at + 12;
    const auto end = json.find('}', i);
    if (end == std::string::npos) return out;
    while (i < end) {
      const auto kq = json.find('"', i);
      if (kq == std::string::npos || kq >= end) break;
      const auto kend = json.find('"', kq + 1);
      if (kend == std::string::npos || kend >= end) break;
      const std::string key = json.substr(kq + 1, kend - kq - 1);
      auto vstart = json.find(':', kend);
      if (vstart == std::string::npos || vstart >= end) break;
      ++vstart;
      while (vstart < end && json[vstart] == ' ') ++vstart;
      auto vend = json.find(',', vstart);
      if (vend == std::string::npos || vend > end) vend = end;
      std::string value = json.substr(vstart, vend - vstart);
      while (!value.empty() && (value.back() == ' ' || value.back() == '\n'))
        value.pop_back();
      out.emplace_back(key, value);
      i = vend + 1;
    }
    return out;
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    return out + "\"";
  }
  static std::string object(const Fields& fields) {
    std::string out = "{";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      out += (i ? ", " : "") + quote(fields[i].first) + ": " +
             fields[i].second;
    }
    return out + "}";
  }
  /// A table as {"headers": [...], "rows": [[...], ...]} of strings.
  static std::string render(const Table& table) {
    std::string out = "{\"headers\": " + cells(table.headers()) +
                      ", \"rows\": [";
    const auto& rows = table.rows();
    for (std::size_t i = 0; i < rows.size(); ++i)
      out += (i ? ", " : "") + cells(rows[i]);
    return out + "]}";
  }
  static std::string cells(const std::vector<std::string>& row) {
    std::string out = "[";
    for (std::size_t i = 0; i < row.size(); ++i)
      out += (i ? ", " : "") + quote(row[i]);
    return out + "]";
  }

  std::string experiment_;
  std::string name_;
  Fields params_;
  Fields metrics_;
  std::vector<std::pair<std::string, std::string>> tables_;
};

/// The shared `--metrics` / `--trace-export` handling: take the pre-parsed
/// flags, arm span recording on the instrumented node, render the exports.
///
///   const bench::BenchFlags flags(argc, argv);
///   const bench::ObsFlags obs(flags);
///   if (obs.any()) {
///     via::Node node(...);        // a dedicated instrumented pass
///     obs.arm(node.kernel());     // BEFORE the workload (spans off by default)
///     ... run the workload ...
///     obs.finish("E1", node.kernel());
///   }
class ObsFlags {
 public:
  explicit ObsFlags(const BenchFlags& flags)
      : metrics_(flags.metrics), trace_(flags.trace) {}

  [[nodiscard]] bool metrics() const { return metrics_; }
  [[nodiscard]] bool trace() const { return trace_; }
  [[nodiscard]] bool any() const { return metrics_ || trace_; }

  /// Enable span recording on `kern` (needed before the workload runs when
  /// --trace-export is set; spans are off by default to keep runs cheap).
  void arm(simkern::Kernel& kern) const {
    if (trace_) kern.spans().enable(true);
  }

  /// Arm every node of a cluster: the merged export then stitches the
  /// per-host recorders into one trace with cross-host flow arrows.
  void arm(via::Cluster& cluster) const {
    for (std::size_t i = 0; i < cluster.size(); ++i)
      arm(cluster.node(static_cast<via::NodeId>(i)).kernel());
  }

  /// Print the metric snapshot (--metrics) and write TRACE_<experiment>.json
  /// (--trace-export) from `kern`'s registry and span recorder.
  void finish(const std::string& experiment, simkern::Kernel& kern) const {
    if (metrics_) {
      std::cout << "\n=== /proc/metrics (" << experiment
                << " instrumented run) ===\n"
                << obs::to_proc_text(kern.metrics().snapshot());
    }
    if (trace_) {
      const std::string path = "TRACE_" + experiment + ".json";
      std::ofstream out(path);
      out << obs::chrome_trace(kern.spans());
      std::cout << "\nwrote " << path
                << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
  }

  /// Cluster-wide finish: one metric snapshot per node, and a single merged
  /// chrome trace (one pid per host) whose flow events connect the causal
  /// chains that cross the fabric (DESIGN.md section 11).
  void finish(const std::string& experiment, via::Cluster& cluster) const {
    if (metrics_) {
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        std::cout << "\n=== /proc/metrics (" << experiment << " node " << i
                  << ") ===\n"
                  << obs::to_proc_text(
                         cluster.node(static_cast<via::NodeId>(i))
                             .kernel()
                             .metrics()
                             .snapshot());
      }
    }
    if (trace_) {
      std::vector<const obs::SpanRecorder*> recorders;
      for (std::size_t i = 0; i < cluster.size(); ++i)
        recorders.push_back(
            &cluster.node(static_cast<via::NodeId>(i)).kernel().spans());
      const std::string path = "TRACE_" + experiment + ".json";
      std::ofstream out(path);
      out << obs::chrome_trace(recorders);
      std::cout << "\nwrote " << path << " (" << recorders.size()
                << " hosts merged; load in chrome://tracing or "
                   "ui.perfetto.dev)\n";
    }
  }

 private:
  bool metrics_ = false;
  bool trace_ = false;
};

}  // namespace vialock::bench
