// bench_util.h - shared configuration and formatting for the experiment
// benches. Every binary prints the table(s) of one experiment from
// EXPERIMENTS.md; virtual times come from the simulation's deterministic
// clock, so outputs are exactly reproducible.
#pragma once

#include <cstdint>
#include <string>

#include "via/node.h"

namespace vialock::bench {

/// The standard evaluation platform: 16 MB RAM / 64 MB swap / 8k-entry TPT
/// (a 2000-era compute node in miniature; sizes scaled for simulation speed).
inline via::NodeSpec eval_node(via::PolicyKind policy) {
  via::NodeSpec spec;
  spec.kernel.frames = 4096;
  spec.kernel.reserved_low = 16;
  spec.kernel.swap_slots = 16384;
  spec.kernel.free_pages_min = 16;
  spec.kernel.swap_cluster = 32;
  spec.nic.tpt_entries = 8192;
  spec.policy = policy;
  return spec;
}

inline std::string yesno(bool b) { return b ? "yes" : "NO"; }
inline std::string passfail(bool b) { return b ? "PASS" : "FAIL"; }

}  // namespace vialock::bench
