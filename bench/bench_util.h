// bench_util.h - shared configuration and formatting for the experiment
// benches. Every binary prints the table(s) of one experiment from
// EXPERIMENTS.md; virtual times come from the simulation's deterministic
// clock, so outputs are exactly reproducible.
//
// With `--json` on the command line, a bench additionally writes
// BENCH_<experiment>.json - machine-readable name/params/tables - so CI can
// archive results as artifacts and diff them across commits.
#pragma once

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/table.h"
#include "via/node.h"

namespace vialock::bench {

/// The standard evaluation platform: 16 MB RAM / 64 MB swap / 8k-entry TPT
/// (a 2000-era compute node in miniature; sizes scaled for simulation speed).
inline via::NodeSpec eval_node(via::PolicyKind policy) {
  via::NodeSpec spec;
  spec.kernel.frames = 4096;
  spec.kernel.reserved_low = 16;
  spec.kernel.swap_slots = 16384;
  spec.kernel.free_pages_min = 16;
  spec.kernel.swap_cluster = 32;
  spec.nic.tpt_entries = 8192;
  spec.policy = policy;
  return spec;
}

inline std::string yesno(bool b) { return b ? "yes" : "NO"; }
inline std::string passfail(bool b) { return b ? "PASS" : "FAIL"; }

/// Machine-readable experiment output. Collects the experiment's parameters,
/// scalar metrics, and printed tables, and - when the binary was invoked with
/// `--json` - writes them to BENCH_<experiment>.json in the working
/// directory. All values come from the virtual clock, so the file is
/// byte-identical across runs.
class JsonReport {
 public:
  JsonReport(std::string experiment, std::string name)
      : experiment_(std::move(experiment)), name_(std::move(name)) {}

  JsonReport& param(const std::string& key, const std::string& value) {
    params_.emplace_back(key, quote(value));
    return *this;
  }
  JsonReport& param(const std::string& key, std::uint64_t value) {
    params_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonReport& metric(const std::string& key, std::uint64_t value) {
    metrics_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonReport& metric(const std::string& key, double value) {
    std::ostringstream ss;
    ss << value;
    metrics_.emplace_back(key, ss.str());
    return *this;
  }
  JsonReport& metric(const std::string& key, const std::string& value) {
    metrics_.emplace_back(key, quote(value));
    return *this;
  }

  /// Capture a printed table (headers + string cells) under `label`.
  JsonReport& add_table(const std::string& label, const Table& table) {
    tables_.emplace_back(label, render(table));
    return *this;
  }

  /// Write BENCH_<experiment>.json if `--json` is among the arguments.
  /// Returns true when the file was written.
  bool write_if_requested(int argc, char** argv) const {
    bool wanted = false;
    for (int i = 1; i < argc; ++i)
      if (std::string(argv[i]) == "--json") wanted = true;
    if (!wanted) return false;
    std::ofstream out("BENCH_" + experiment_ + ".json");
    out << "{\n  \"experiment\": " << quote(experiment_)
        << ",\n  \"name\": " << quote(name_) << ",\n  \"params\": "
        << object(params_) << ",\n  \"metrics\": " << object(metrics_)
        << ",\n  \"tables\": {";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      out << (i ? "," : "") << "\n    " << quote(tables_[i].first) << ": "
          << tables_[i].second;
    }
    out << (tables_.empty() ? "" : "\n  ") << "}\n}\n";
    return out.good();
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    return out + "\"";
  }
  static std::string object(const Fields& fields) {
    std::string out = "{";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      out += (i ? ", " : "") + quote(fields[i].first) + ": " +
             fields[i].second;
    }
    return out + "}";
  }
  /// A table as {"headers": [...], "rows": [[...], ...]} of strings.
  static std::string render(const Table& table) {
    std::string out = "{\"headers\": " + cells(table.headers()) +
                      ", \"rows\": [";
    const auto& rows = table.rows();
    for (std::size_t i = 0; i < rows.size(); ++i)
      out += (i ? ", " : "") + cells(rows[i]);
    return out + "]}";
  }
  static std::string cells(const std::vector<std::string>& row) {
    std::string out = "[";
    for (std::size_t i = 0; i < row.size(); ++i)
      out += (i ? ", " : "") + quote(row[i]);
    return out + "]";
  }

  std::string experiment_;
  std::string name_;
  Fields params_;
  Fields metrics_;
  std::vector<std::pair<std::string, std::string>> tables_;
};

}  // namespace vialock::bench
