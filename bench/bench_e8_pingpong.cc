// bench_e8_pingpong - Experiment E8: end-to-end ping-pong over the VIA
// substrate (the NetPIPE-style figure of the paper family).
//
// Half-round-trip latency and bandwidth vs. message size for the three
// protocols the locking mechanism enables:
//   eager          - bounce-buffer copies, no registration on the path
//   rendezvous     - dynamic registration through the cache (warm)
//   preregistered  - persistent buffers, pure RDMA
// Shape target: eager wins for small messages, zero-copy wins past a
// crossover in the few-KB range (the paper family switches at 4 KB).
#include <iostream>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "msg/transport.h"
#include "util/table.h"

namespace vialock {
namespace {

using msg::Channel;
using msg::Protocol;

struct PingPongRig {
  PingPongRig()
      : n0(cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf))),
        n1(cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf))),
        fwd(cluster, n0, n1, config()),
        rev(cluster, n1, n0, config()) {
    if (!ok(fwd.init()) || !ok(rev.init())) std::abort();
  }

  static Channel::Config config() {
    Channel::Config cfg;
    cfg.preregister_heaps = true;
    // Two pre-registered heaps live on each node (forward sender + reverse
    // receiver); keep them small enough that the pinned pages fit in RAM.
    cfg.user_heap_bytes = 2ULL << 20;
    return cfg;
  }

  /// One ping-pong round; returns the virtual round-trip time.
  Nanos round(Protocol proto, std::uint32_t len) {
    const Nanos t0 = cluster.clock().now();
    if (!ok(fwd.transfer(proto, 0, 0, len))) std::abort();
    if (!ok(rev.transfer(proto, 0, 0, len))) std::abort();
    return cluster.clock().now() - t0;
  }

  via::Cluster cluster;
  via::NodeId n0;
  via::NodeId n1;
  Channel fwd;
  Channel rev;
};

struct Point {
  std::optional<Nanos> half_rtt;
};

Point measure(PingPongRig& rig, Protocol proto, std::uint32_t len) {
  if (proto == Protocol::Eager && len > rig.fwd.config().eager_slot_size)
    return {};
  (void)rig.round(proto, len);  // warm-up (registration, caches)
  constexpr int kRounds = 5;
  Nanos total = 0;
  for (int i = 0; i < kRounds; ++i) total += rig.round(proto, len);
  return {total / (2 * kRounds)};
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  std::cout << "E8: ping-pong half-round-trip latency and bandwidth vs size\n"
            << "(warm caches; eager limited to its 8 KB bounce slots)\n\n";

  PingPongRig rig;
  Table lat({"message", "eager", "rendezvous (warm)", "pio-rendezvous",
             "preregistered", "best"});
  Table bw({"message", "eager", "rendezvous (warm)", "pio-rendezvous",
            "preregistered"});
  std::optional<std::uint32_t> crossover;

  for (const std::uint32_t len : {64u, 256u, 1024u, 2048u, 4096u, 8192u,
                                  16u * 1024, 64u * 1024, 256u * 1024,
                                  1024u * 1024}) {
    const Point e = measure(rig, Protocol::Eager, len);
    const Point r = measure(rig, Protocol::Rendezvous, len);
    const Point pr = measure(rig, Protocol::PioRendezvous, len);
    const Point p = measure(rig, Protocol::Preregistered, len);
    const char* best = "-";
    if (e.half_rtt && *e.half_rtt <= *r.half_rtt) {
      best = "eager";
    } else {
      best = "zero-copy";
      if (!crossover) crossover = len;
    }
    auto cell = [](const Point& pt) {
      return pt.half_rtt ? Table::nanos(*pt.half_rtt) : std::string("-");
    };
    auto rate_cell = [len](const Point& pt) {
      return pt.half_rtt ? Table::rate(len, *pt.half_rtt) : std::string("-");
    };
    lat.row({Table::bytes(len), cell(e), cell(r), cell(pr), cell(p), best});
    bw.row({Table::bytes(len), rate_cell(e), rate_cell(r), rate_cell(pr),
            rate_cell(p)});
  }
  std::cout << "--- half-round-trip latency ---\n";
  lat.print();
  std::cout << "\n--- bandwidth ---\n";
  bw.print();
  const bench::BenchFlags flags(argc, argv);
  bench::JsonReport report("E8", "ping-pong latency and bandwidth");
  report.add_table("latency", lat).add_table("bandwidth", bw);
  if (crossover) report.metric("crossover_bytes", std::uint64_t{*crossover});
  report.write_if(flags);
  if (crossover) {
    std::cout << "\nEager -> zero-copy crossover at " << Table::bytes(*crossover)
              << " (paper family's MPI libraries switch protocols at 4 KB).\n";
  }

  // --metrics / --trace-export: a fresh two-node rig with BOTH hosts' span
  // recorders armed runs one ping-pong per protocol; the merged export
  // renders each round as a single causal chain - send, doorbell, gather,
  // wire on node 0, deliver and completion on node 1 - stitched across the
  // two pids by flow events sharing the round's trace id (DESIGN.md
  // section 11). Deterministic: same binary, byte-identical TRACE_E8.json.
  const bench::ObsFlags obs(flags);
  if (obs.any()) {
    PingPongRig traced;
    obs.arm(traced.cluster);
    for (const Protocol proto : {Protocol::Eager, Protocol::Rendezvous,
                                 Protocol::Preregistered}) {
      (void)traced.round(proto, 4096);
    }
    obs.finish("E8", traced.cluster);
  }
  return report.compare_if(flags);
}
