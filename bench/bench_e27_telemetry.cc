// bench_e27_telemetry - Experiment E27: continuous-telemetry overhead.
//
// The sampler's contract (DESIGN.md section 16) is that watching a run does
// not change it: ticks charge no virtual time and post no events, so the
// canonical report of cluster-1m.spec with its declared telemetry cadence
// must stay byte-identical to the untelemetered run, and the wall-clock
// cost of sampling every host registry must stay marginal (<= 5%).
//
// Two cadences are in play. The correctness checks run a *dense* 1 ms
// timeline (more ticks = more chances to diverge). The overhead pair runs
// the spec's own sample_interval (4 ms). The <= 5% gate is only *enforced*
// at full scale in Release builds: a sample tick costs roughly the same
// wall time per host either way, but the smoke cluster is event-sparse
// (~2.6x wall per virtual ms vs ~59x at full scale), so the smoke
// percentage overstates what a real run pays by an order of magnitude -
// smoke and debug runs measure and report the numbers without gating.
//
// Self-checks, non-zero exit on failure:
//   * report_json with sampling on == report_json with sampling off (bytes);
//   * TIMELINE json of two same-seed runs byte-identical;
//   * an impossible SLO rule fires, captures a flight dump *before* the
//     audit flips, and lands in the violation list;
//   * full-scale Release: wall-clock sampling overhead <= 5% (best-of-N
//     minima).
//
// Wall-clock numbers go into the JSON report's *params* (documentation);
// the compared metrics are all deterministic, so `--compare` never flakes
// on machine noise.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "obs/sampler.h"
#include "scenario/engine.h"
#include "scenario/spec.h"
#include "util/table.h"

#ifndef SCENARIO_SPEC_DIR
#define SCENARIO_SPEC_DIR "examples/scenarios"
#endif

namespace vialock {
namespace {

scenario::ScenarioSpec base_spec(bool smoke) {
  scenario::ParseResult parsed = scenario::load_spec_file(
      std::string(SCENARIO_SPEC_DIR) + "/cluster-1m.spec");
  if (!parsed.ok()) {
    std::cerr << "spec error: " << parsed.error << "\n";
    std::abort();
  }
  scenario::ScenarioSpec spec = std::move(parsed.spec);
  if (smoke) {
    for (const auto& [k, v] : {std::pair<std::string, std::string>
                                   {"hosts", "32"},
                               {"servers", "4"},
                               {"ops_per_tenant", "100"},
                               {"churn_regs_per_tenant", "25"}}) {
      const std::string err = spec.apply(k, v);
      if (!err.empty()) std::abort();
    }
  }
  return spec;
}

struct TimedRun {
  std::string report_json;
  std::string timeline_json;  ///< "" when the run sampled nothing
  std::uint64_t ticks = 0;
  std::uint64_t retained = 0;
  std::uint64_t firings = 0;
  std::uint64_t flight_dumps = 0;
  Nanos makespan = 0;
  double wall_ms = 0;
  bool invariants_ok = false;
};

/// interval_ns == 0 runs untelemetered (the spec's own sample_interval is
/// cleared); anything else overrides the sampling cadence.
TimedRun run_once(const scenario::ScenarioSpec& spec, Nanos interval_ns,
                  bool impossible_slo = false) {
  scenario::ScenarioSpec s = spec;
  s.sample_interval = interval_ns;
  if (impossible_slo) {
    // Pinned frames are required to stay at zero - violated on the first
    // tick that observes churn traffic, so the watchdog provably fires.
    scenario::SloRule rule;
    rule.metric = "simkern.mem.pinned_frames";
    rule.op = "le";
    rule.threshold = 0;
    rule.window = 8;
    s.slo_rules.push_back(rule);
  }
  scenario::ScenarioEngine engine(std::move(s));
  if (!ok(engine.build())) std::abort();
  const auto t0 = std::chrono::steady_clock::now();
  if (!ok(engine.run())) std::abort();
  const auto t1 = std::chrono::steady_clock::now();
  TimedRun r;
  r.report_json = scenario::report_json(engine.spec(), engine.report());
  if (const obs::Sampler* smp = engine.sampler()) {
    r.timeline_json = smp->timeline_json(engine.spec().name, engine.spec().seed);
    r.ticks = smp->ticks();
    r.retained = smp->samples().size();
    r.firings = smp->firings().size();
  }
  r.flight_dumps = engine.flight_dumps().size();
  r.makespan = engine.report().makespan_ns;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.invariants_ok = engine.report().invariants_ok;
  return r;
}

/// Best wall time of `reps` runs (the overhead gate compares minima, the
/// least noisy wall-clock statistic on a shared machine).
double best_wall_ms(const scenario::ScenarioSpec& spec, Nanos interval_ns,
                    int reps) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i)
    best = std::min(best, run_once(spec, interval_ns).wall_ms);
  return best;
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;
  const bench::BenchFlags flags(argc, argv);

  const scenario::ScenarioSpec spec = base_spec(smoke);

  // Dense cadence for the correctness checks; the spec's declared cadence
  // for the overhead measurement (gated at full scale, see file comment).
  const Nanos dense_ns = 1'000'000;
  const Nanos gate_ns = spec.sample_interval;
  const int gate_reps = 3;

  std::cout << "E27: continuous telemetry (virtual-clock sampling, SLO "
               "watchdogs)\n"
            << (smoke ? "(smoke: reduced scale)\n" : "(full scale)\n")
            << "cluster-1m.spec; checks at " << dense_ns / 1'000'000
            << " ms cadence, overhead gate at " << gate_ns / 1'000'000
            << " ms; sampling must not perturb the run.\n\n";

  // 1. Sampling must not change the simulation: frozen report bytes.
  const TimedRun off = run_once(spec, /*interval_ns=*/0);
  const TimedRun on = run_once(spec, dense_ns);
  const bool unperturbed = off.report_json == on.report_json;
  if (!off.timeline_json.empty() || on.timeline_json.empty()) {
    std::cerr << "sampler present/absent where it should not be\n";
    return 1;
  }

  // 2. Timeline determinism: same seed, byte-identical TIMELINE json.
  const TimedRun on2 = run_once(spec, dense_ns);
  const bool timeline_identical = on.timeline_json == on2.timeline_json;

  // 3. SLO watchdog end-to-end: the impossible rule fires, flight-dumps
  //    before the audit, and fails the run.
  const TimedRun slo = run_once(spec, dense_ns, /*impossible_slo=*/true);
  const bool slo_fired = slo.firings > 0 && slo.flight_dumps > 0 &&
                         !slo.invariants_ok;

  // 4. Wall-clock overhead (gated at full scale in Release builds; smoke
  //    and debug runs document the numbers without gating).
  const double base_ms = best_wall_ms(spec, 0, gate_reps);
  const double sampled_ms = best_wall_ms(spec, gate_ns, gate_reps);
  const double overhead_pct =
      base_ms > 0 ? (sampled_ms - base_ms) / base_ms * 100.0 : 0.0;
#ifdef NDEBUG
  const bool overhead_ok = smoke || overhead_pct <= 5.0;
#else
  const bool overhead_ok = true;
#endif

  Table t({"check", "result"});
  t.row({"report bytes unperturbed by sampling", bench::passfail(unperturbed)});
  t.row({"timeline byte-identical (same seed)",
         bench::passfail(timeline_identical)});
  t.row({"slo fires + pre-audit flight dump", bench::passfail(slo_fired)});
  t.row({"sampling overhead <= 5%", bench::passfail(overhead_ok)});
  t.print();
  std::cout << "\nticks " << on.ticks << ", retained " << on.retained
            << ", makespan " << Table::nanos(on.makespan) << "\n"
            << "wall: base " << base_ms << " ms, sampled " << sampled_ms
            << " ms (overhead " << overhead_pct << "%)\n";

  bench::JsonReport report("E27", "continuous telemetry overhead");
  report.param("spec", "cluster-1m")
      .param("smoke", smoke ? "yes" : "no")
      .param("hosts", std::uint64_t{spec.hosts})
      .param("seed", spec.seed)
      .param("interval_ns", static_cast<std::uint64_t>(dense_ns))
      .param("gate_interval_ns", static_cast<std::uint64_t>(gate_ns))
      .param("wall_base_ms", static_cast<std::uint64_t>(base_ms * 1000))
      .param("wall_sampled_ms", static_cast<std::uint64_t>(sampled_ms * 1000))
      .param("overhead_pct_x100",
             static_cast<std::uint64_t>(std::max(0.0, overhead_pct) * 100));
  report.metric("ticks", on.ticks)
      .metric("samples_retained", on.retained)
      .metric("makespan_ns", on.makespan)
      .metric("slo_firings", slo.firings)
      .metric("slo_flight_dumps", slo.flight_dumps)
      .metric("unperturbed", bench::passfail(unperturbed))
      .metric("timeline_deterministic", bench::passfail(timeline_identical))
      .metric("slo_watchdog", bench::passfail(slo_fired))
      .metric("overhead_gate", bench::passfail(overhead_ok));
  report.write_if(flags);

  if (!unperturbed || !timeline_identical || !slo_fired || !overhead_ok)
    return 1;
  return report.compare_if(flags);
}
