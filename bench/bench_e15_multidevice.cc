// bench_e15_multidevice - Experiment E15 (extension): multidevice routing.
//
// The collection's first paper ("Multiple Devices unter MPICH") builds
// exactly this: shared memory for local tasks, the high-speed network across
// nodes, one message-passing API over both, with a Connectiontable deciding
// per peer. This bench measures what that routing buys: intra-node messages
// over the shm device vs. the same messages forced through the NIC loopback
// vs. genuine cross-node traffic.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "mp/comm.h"
#include "util/table.h"

namespace vialock {
namespace {

struct Rig {
  explicit Rig(bool shm_local) {
    const auto a = cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf));
    const auto b = cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf));
    mp::Comm::Config cfg;
    cfg.shm_for_local = shm_local;
    comm = std::make_unique<mp::Comm>(
        cluster, std::vector<via::NodeId>{a, a, b}, cfg);
    if (!ok(comm->init())) std::abort();
    std::vector<std::byte> data(1 << 20, std::byte{0x44});
    if (!ok(comm->stage(0, 0, data))) std::abort();
  }

  Nanos message(mp::Rank to, std::uint32_t len) {
    static std::int32_t tag = 1000;
    ++tag;
    Clock& clock = cluster.clock();
    const auto r = comm->irecv(to, 0, tag, 0, 1 << 20);
    const Nanos t0 = clock.now();
    const auto s = comm->isend(0, to, tag, 0, len);
    if (!comm->wait(r) || !comm->wait(s)) std::abort();
    return clock.now() - t0;
  }

  Nanos median(mp::Rank to, std::uint32_t len) {
    std::vector<Nanos> t;
    for (int i = 0; i < 5; ++i) t.push_back(message(to, len));
    std::sort(t.begin(), t.end());
    return t[2];
  }

  via::Cluster cluster;
  std::unique_ptr<mp::Comm> comm;
};

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout << "E15 (extension): multidevice routing - intra-node shared\n"
            << "memory vs. NIC loopback vs. cross-node fabric (ranks 0,1 on\n"
            << "node A; rank 2 on node B; median of 5)\n\n";
  Rig with_shm(/*shm_local=*/true);
  Rig nic_only(/*shm_local=*/false);

  Table table({"message", "local via shm", "local via NIC", "cross-node",
               "shm speedup (local)"});
  for (const std::uint32_t len :
       {64u, 1024u, 4096u, 64u * 1024, 512u * 1024}) {
    const Nanos shm = with_shm.median(1, len);
    const Nanos loop = nic_only.median(1, len);
    const Nanos cross = with_shm.median(2, len);
    table.row({Table::bytes(len), Table::nanos(shm), Table::nanos(loop),
               Table::nanos(cross),
               Table::fp(static_cast<double>(loop) / static_cast<double>(shm),
                         2) + "x"});
  }
  table.print();
  bench::JsonReport report("E15", "multidevice routing");
  report.add_table("routing", table);
  report.write_if(flags);
  std::cout << "\nShape: the shm device wins intra-node at every size (no\n"
               "doorbells, no DMA, no wire); the gap is largest for small\n"
               "messages where NIC startup dominates. Cross-node traffic is\n"
               "unaffected by the routing choice.\n";
  return report.compare_if(flags);
}
