// bench_e12_collectives - Experiment E12 (extension): collective operations
// over the VIA substrate.
//
// The paper family lists collectives as the next work item ("VIA as well as
// SCI offer excellent features for the implementation of e.g. a barrier or
// a broadcast"). This bench reports virtual cost vs. rank count for
// barrier / broadcast / allreduce / alltoall, and the message counts that
// show the binomial algorithms doing their O(log N) work.
//
// Since E23 the measurement itself lives in the scenario engine: this
// driver loads examples/scenarios/e12-collectives.spec and sweeps `hosts`
// over it. The spec pins E12's historical node sizing, so the virtual
// times match the pre-scenario bench table exactly.
#include <cstdlib>
#include <iostream>

#include "bench_util.h"
#include "scenario/engine.h"
#include "scenario/spec.h"
#include "util/table.h"

#ifndef SCENARIO_SPEC_DIR
#define SCENARIO_SPEC_DIR "examples/scenarios"
#endif

namespace vialock {
namespace {

scenario::ScenarioReport measure(std::uint32_t ranks) {
  scenario::ParseResult parsed = scenario::load_spec_file(
      std::string(SCENARIO_SPEC_DIR) + "/e12-collectives.spec");
  if (!parsed.ok()) {
    std::cerr << "spec error: " << parsed.error << "\n";
    std::abort();
  }
  if (!parsed.spec.apply("hosts", std::to_string(ranks)).empty()) std::abort();
  scenario::ScenarioEngine engine(std::move(parsed.spec));
  if (!ok(engine.build()) || !ok(engine.run())) std::abort();
  if (!engine.report().invariants_ok) std::abort();
  return engine.report();
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  std::cout << "E12 (extension): collective operations vs. rank count\n"
            << "(64 KB broadcast, 2 KB allreduce vectors, 8 KB alltoall "
            << "blocks;\nsequentialised rounds - virtual times are upper "
            << "bounds)\n\n";
  const bench::BenchFlags flags(argc, argv);
  Table table({"ranks", "barrier", "broadcast 64KB", "bcast msgs",
               "allreduce 2KB", "alltoall 8KB"});
  for (const std::uint32_t ranks : {2u, 3u, 4u, 6u, 8u}) {
    const scenario::ScenarioReport r = measure(ranks);
    table.row({Table::num(std::uint64_t{ranks}), Table::nanos(r.barrier_ns),
               Table::nanos(r.broadcast_ns), Table::num(r.bcast_msgs),
               Table::nanos(r.allreduce_ns), Table::nanos(r.alltoall_ns)});
  }
  table.print();
  bench::JsonReport report("E12", "collective operations vs rank count");
  report.add_table("collectives", table);
  report.write_if(flags);
  std::cout << "\nShape: broadcast ships N-1 messages over a binomial tree\n"
               "(log-depth); alltoall grows as N(N-1) blocks; barrier as\n"
               "N*ceil(log2 N) tokens.\n";
  return report.compare_if(flags);
}
