// bench_e12_collectives - Experiment E12 (extension): collective operations
// over the VIA substrate.
//
// The paper family lists collectives as the next work item ("VIA as well as
// SCI offer excellent features for the implementation of e.g. a barrier or
// a broadcast"). This bench reports virtual cost vs. rank count for
// barrier / broadcast / allreduce / alltoall, and the message counts that
// show the binomial algorithms doing their O(log N) work.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "msg/mesh.h"
#include "util/table.h"

namespace vialock {
namespace {

struct CollectiveTimes {
  Nanos barrier = 0;
  Nanos broadcast = 0;
  Nanos allreduce = 0;
  Nanos alltoall = 0;
  std::uint64_t bcast_msgs = 0;
};

CollectiveTimes measure(std::uint32_t ranks) {
  via::Cluster cluster;
  std::vector<via::NodeId> nodes;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    via::NodeSpec spec = bench::eval_node(via::PolicyKind::Kiobuf);
    spec.kernel.frames = 2048;  // smaller nodes: many of them
    nodes.push_back(cluster.add_node(spec));
  }
  msg::Mesh::Config cfg;
  cfg.channel.user_heap_bytes = 256 * 1024;
  msg::Mesh mesh(cluster, nodes, cfg);
  if (!ok(mesh.init())) std::abort();

  constexpr std::uint32_t kPayload = 64 * 1024;
  std::vector<std::byte> data(kPayload, std::byte{0x5A});
  if (!ok(mesh.stage_rank(0, 0, data))) std::abort();

  CollectiveTimes t;
  Clock& clock = cluster.clock();

  // Warm-up (registration caches, eager credits).
  if (!ok(mesh.barrier())) std::abort();

  Nanos t0 = clock.now();
  if (!ok(mesh.barrier())) std::abort();
  t.barrier = clock.now() - t0;

  const auto msgs_before = mesh.stats().p2p_msgs;
  t0 = clock.now();
  if (!ok(mesh.broadcast(0, 0, kPayload))) std::abort();
  t.broadcast = clock.now() - t0;
  t.bcast_msgs = mesh.stats().p2p_msgs - msgs_before;

  t0 = clock.now();
  if (!ok(mesh.allreduce_sum(0, 256))) std::abort();  // 2 KB vectors
  t.allreduce = clock.now() - t0;

  t0 = clock.now();
  if (!ok(mesh.alltoall(128 * 1024, 8 * 1024))) std::abort();
  t.alltoall = clock.now() - t0;
  return t;
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  std::cout << "E12 (extension): collective operations vs. rank count\n"
            << "(64 KB broadcast, 2 KB allreduce vectors, 8 KB alltoall "
            << "blocks;\nsequentialised rounds - virtual times are upper "
            << "bounds)\n\n";
  Table table({"ranks", "barrier", "broadcast 64KB", "bcast msgs",
               "allreduce 2KB", "alltoall 8KB"});
  for (const std::uint32_t ranks : {2u, 3u, 4u, 6u, 8u}) {
    const auto t = measure(ranks);
    table.row({Table::num(std::uint64_t{ranks}), Table::nanos(t.barrier),
               Table::nanos(t.broadcast), Table::num(t.bcast_msgs),
               Table::nanos(t.allreduce), Table::nanos(t.alltoall)});
  }
  table.print();
  bench::JsonReport report("E12", "collective operations vs rank count");
  report.add_table("collectives", table);
  report.write_if_requested(argc, argv);
  std::cout << "\nShape: broadcast ships N-1 messages over a binomial tree\n"
               "(log-depth); alltoall grows as N(N-1) blocks; barrier as\n"
               "N*ceil(log2 N) tokens.\n";
  return 0;
}
