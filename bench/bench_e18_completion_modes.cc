// bench_e18_completion_modes - Experiment E18 (extension): polling vs.
// waiting completion.
//
// The family's "Comparing MPI Performance of SCI and VIA" paper explains
// MPI/Pro's 65 us VIA latency partly by its waiting-mode completions:
// "Reawakening a process is, of course, more expensive than polling on a
// local memory location"; a polling prototype "has already shown latencies
// below 20 us". This bench isolates exactly that effect on our substrate.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "util/table.h"
#include "via/node.h"
#include "via/vipl.h"

namespace vialock {
namespace {

using simkern::kPageSize;

struct Rig {
  Rig()
      : n0(cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf))),
        n1(cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf))) {
    auto& k0 = cluster.node(n0).kernel();
    auto& k1 = cluster.node(n1).kernel();
    p0 = k0.create_task("a");
    p1 = k1.create_task("b");
    v0 = std::make_unique<via::Vipl>(cluster.node(n0).agent(), p0);
    v1 = std::make_unique<via::Vipl>(cluster.node(n1).agent(), p1);
    if (!ok(v0->open()) || !ok(v1->open())) std::abort();
    b0 = *k0.sys_mmap_anon(p0, 16 * kPageSize,
                           simkern::VmFlag::Read | simkern::VmFlag::Write);
    b1 = *k1.sys_mmap_anon(p1, 16 * kPageSize,
                           simkern::VmFlag::Read | simkern::VmFlag::Write);
    if (!ok(v0->register_mem(b0, 16 * kPageSize, m0)) ||
        !ok(v1->register_mem(b1, 16 * kPageSize, m1))) {
      std::abort();
    }
    if (!ok(v0->create_vi(vi0)) || !ok(v1->create_vi(vi1))) std::abort();
    if (!ok(cluster.fabric().connect(n0, vi0, n1, vi1))) std::abort();
  }

  /// One ping-pong round; `waiting` selects the completion model.
  Nanos round(std::uint32_t len, bool waiting) {
    const Nanos t0 = cluster.clock().now();
    auto harvest_send = [&](via::Vipl& v, via::ViId vi) {
      return waiting ? v.send_wait(vi) : v.send_done(vi);
    };
    auto harvest_recv = [&](via::Vipl& v, via::ViId vi) {
      return waiting ? v.recv_wait(vi) : v.recv_done(vi);
    };
    if (!ok(v1->post_recv(vi1, m1, b1, len))) std::abort();
    if (!ok(v0->post_send(vi0, m0, b0, len))) std::abort();
    if (!harvest_send(*v0, vi0) || !harvest_recv(*v1, vi1)) std::abort();
    if (!ok(v0->post_recv(vi0, m0, b0, len))) std::abort();
    if (!ok(v1->post_send(vi1, m1, b1, len))) std::abort();
    if (!harvest_send(*v1, vi1) || !harvest_recv(*v0, vi0)) std::abort();
    return (cluster.clock().now() - t0) / 2;
  }

  via::Cluster cluster;
  via::NodeId n0, n1;
  simkern::Pid p0 = 0, p1 = 0;
  std::unique_ptr<via::Vipl> v0, v1;
  simkern::VAddr b0 = 0, b1 = 0;
  via::MemHandle m0, m1;
  via::ViId vi0 = via::kInvalidVi, vi1 = via::kInvalidVi;
};

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout << "E18 (extension): completion notification - polling vs.\n"
            << "waiting mode, half-round-trip latency (median of 5)\n\n";
  Rig rig;
  Table table({"message", "polling", "waiting (interrupt)", "penalty"});
  for (const std::uint32_t len : {64u, 256u, 1024u, 4096u}) {
    auto median = [&](bool waiting) {
      std::vector<Nanos> t;
      for (int i = 0; i < 5; ++i) t.push_back(rig.round(len, waiting));
      std::sort(t.begin(), t.end());
      return t[2];
    };
    const Nanos poll = median(false);
    const Nanos wait = median(true);
    table.row({Table::bytes(len), Table::nanos(poll), Table::nanos(wait),
               "+" + Table::nanos(wait - poll)});
  }
  table.print();
  bench::JsonReport report("E18", "polling vs waiting completion");
  report.add_table("completion_modes", table);
  report.write_if(flags);
  std::cout << "\nShape: waiting mode adds a fixed ~2x interrupt-wakeup cost\n"
               "per half-round-trip, dominating at small messages - the\n"
               "MPI/Pro-vs-polling gap the family's comparison paper reports\n"
               "(65 us waiting vs < 20 us polling on period hardware).\n";
  return report.compare_if(flags);
}
