// bench_e17_readahead - Experiment E17 (ablation): swap read-ahead.
//
// Substrate ablation: the cost a victim process pays to recover its working
// set after memory pressure, as a function of the read-ahead window
// (page_cluster). This is the flip side of E11: whenever registration does
// NOT pin (U-Net/MM, or an unregistered working set), swap-in costs dominate
// and the read-ahead window is the kernel's only lever.
#include <iostream>

#include "bench_util.h"
#include "util/table.h"
#include "via/node.h"

namespace vialock {
namespace {

using simkern::kPageSize;
using simkern::Pid;
using simkern::VAddr;

struct Recovery {
  Nanos sequential = 0;
  Nanos random = 0;
  std::uint64_t readahead_pages = 0;
  std::uint64_t wasted = 0;  ///< speculative pages evicted unused
};

Recovery measure(std::uint32_t readahead) {
  Recovery out;
  for (const bool sequential : {true, false}) {
    Clock clock;
    simkern::KernelConfig cfg = bench::eval_node(via::PolicyKind::Kiobuf).kernel;
    cfg.swap_readahead = readahead;
    simkern::Kernel kern(cfg, clock);
    const Pid pid = kern.create_task("victim");
    constexpr int kPages = 256;
    const VAddr a = *kern.sys_mmap_anon(
        pid, kPages * kPageSize, simkern::VmFlag::Read | simkern::VmFlag::Write);
    for (int p = 0; p < kPages; ++p)
      (void)kern.touch(pid, a + p * kPageSize, true);
    for (int p = 0; p < kPages; ++p)
      kern.task(pid).mm.pt.walk(a + p * kPageSize)->accessed = false;
    (void)kern.try_to_free_pages(kPages);

    const Nanos t0 = clock.now();
    if (sequential) {
      for (int p = 0; p < kPages; ++p)
        (void)kern.touch(pid, a + p * kPageSize, false);
      out.sequential = clock.now() - t0;
      out.readahead_pages = kern.stats().readahead_pages;
    } else {
      // Strided access defeats the window: every 9th page, wrapping.
      for (int i = 0; i < kPages; ++i) {
        const int p = (i * 9) % kPages;
        (void)kern.touch(pid, a + p * kPageSize, false);
      }
      out.random = clock.now() - t0;
    }
  }
  return out;
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout << "E17 (ablation): swap read-ahead window vs. working-set\n"
            << "recovery time (256 pages evicted, then touched)\n\n";
  Table table({"read-ahead", "sequential recovery", "strided recovery",
               "speculative pages"});
  for (const std::uint32_t ra : {0u, 2u, 4u, 8u, 16u}) {
    const Recovery r = measure(ra);
    table.row({Table::num(std::uint64_t{ra}), Table::nanos(r.sequential),
               Table::nanos(r.random), Table::num(r.readahead_pages)});
  }
  table.print();
  bench::JsonReport report("E17", "swap read-ahead ablation");
  report.param("evicted_pages", std::uint64_t{256})
      .add_table("readahead", table);
  report.write_if(flags);
  std::cout << "\nShape: sequential recovery improves ~linearly with the\n"
               "window (one seek amortised over 1+N pages) and saturates;\n"
               "strided access defeats read-ahead, so the window must not be\n"
               "chosen too aggressively - the classic page_cluster trade.\n";
  return report.compare_if(flags);
}
