// bench_e19_pio_vs_dma - Experiment E19 (extension): programmed I/O vs.
// descriptor DMA - the paper family's headline comparison.
//
// "For very short transmission sizes a programmed IO over global distributed
// shared memory won't be reached by far [by DMA] in terms of latency...
// This is a natural fact because we can't compare a simple memory reference
// with DMA descriptor preparation and execution" (combined VIA/SCI papers).
// Dolphin PIO: 2.3 us; VIA DMA: ~65 us on period hardware. We measure the
// crossover on our substrate, per section 4.4's "free choice" design.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "util/table.h"
#include "via/node.h"
#include "via/remote_window.h"
#include "via/vipl.h"

namespace vialock {
namespace {

using simkern::kPageSize;

struct Rig {
  Rig()
      : n0(cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf))),
        n1(cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf))) {
    auto& k0 = cluster.node(n0).kernel();
    auto& k1 = cluster.node(n1).kernel();
    p0 = k0.create_task("a");
    p1 = k1.create_task("b");
    v0 = std::make_unique<via::Vipl>(cluster.node(n0).agent(), p0);
    v1 = std::make_unique<via::Vipl>(cluster.node(n1).agent(), p1);
    if (!ok(v0->open()) || !ok(v1->open())) std::abort();
    constexpr std::uint64_t kBuf = 512 * kPageSize;  // 2 MB
    b0 = *k0.sys_mmap_anon(p0, kBuf,
                           simkern::VmFlag::Read | simkern::VmFlag::Write);
    b1 = *k1.sys_mmap_anon(p1, kBuf,
                           simkern::VmFlag::Read | simkern::VmFlag::Write);
    if (!ok(v0->register_mem(b0, kBuf, m0)) ||
        !ok(v1->register_mem(b1, kBuf, m1))) {
      std::abort();
    }
    if (!ok(v0->create_vi(vi0)) || !ok(v1->create_vi(vi1))) std::abort();
    if (!ok(cluster.fabric().connect(n0, vi0, n1, vi1))) std::abort();
    window = via::RemoteWindow::import(cluster.fabric(), n0, n1, m1);
    if (!window) std::abort();
    payload.assign(1 << 20, std::byte{0x3C});
    if (!ok(k0.write_user(p0, b0, payload))) std::abort();
  }

  Nanos pio(std::uint32_t len) {
    const Nanos t0 = cluster.clock().now();
    if (!ok(window->store(0, std::span(payload).first(len)))) std::abort();
    return cluster.clock().now() - t0;
  }

  Nanos send_recv(std::uint32_t len) {
    if (!ok(v1->post_recv(vi1, m1, b1, len))) std::abort();
    const Nanos t0 = cluster.clock().now();
    if (!ok(v0->post_send(vi0, m0, b0, len))) std::abort();
    if (!v0->send_done(vi0)->done_ok()) std::abort();
    (void)v1->recv_done(vi1);
    return cluster.clock().now() - t0;
  }

  Nanos rdma(std::uint32_t len) {
    const Nanos t0 = cluster.clock().now();
    if (!ok(v0->rdma_write(vi0, m0, b0, len, m1, b1))) std::abort();
    if (!v0->send_done(vi0)->done_ok()) std::abort();
    return cluster.clock().now() - t0;
  }

  via::Cluster cluster;
  via::NodeId n0, n1;
  simkern::Pid p0 = 0, p1 = 0;
  std::unique_ptr<via::Vipl> v0, v1;
  simkern::VAddr b0 = 0, b1 = 0;
  via::MemHandle m0, m1;
  via::ViId vi0 = via::kInvalidVi, vi1 = via::kInvalidVi;
  std::optional<via::RemoteWindow> window;
  std::vector<std::byte> payload;
};

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout
      << "E19 (extension): programmed I/O vs. descriptor DMA (one-way\n"
      << "transfer time into pre-registered remote memory; the \"free\n"
      << "choice\" of the combined VIA/SCI design, section 4.4)\n\n";
  Rig rig;
  Table table({"size", "PIO store", "VIA send/recv", "RDMA write", "winner"});
  std::optional<std::uint32_t> crossover;
  for (const std::uint32_t len : {8u, 64u, 256u, 1024u, 4096u, 16u * 1024,
                                  64u * 1024, 256u * 1024, 1024u * 1024}) {
    const Nanos p = rig.pio(len);
    const Nanos sr = rig.send_recv(len);
    const Nanos rd = rig.rdma(len);
    const bool pio_wins = p <= rd && p <= sr;
    if (!pio_wins && !crossover) crossover = len;
    table.row({Table::bytes(len), Table::nanos(p), Table::nanos(sr),
               Table::nanos(rd), pio_wins ? "PIO" : "DMA"});
  }
  table.print();
  bench::JsonReport report("E19", "programmed I/O vs descriptor DMA");
  report.add_table("pio_vs_dma", table);
  if (crossover) report.metric("crossover_bytes", std::uint64_t{*crossover});
  report.write_if(flags);
  if (crossover) {
    std::cout << "\nPIO -> DMA crossover at " << Table::bytes(*crossover)
              << ". Period reference points: Dolphin PIO latency 2.3 us;\n"
              << "DMA descriptor paths ~10-65 us; the CPU-availability\n"
              << "analysis of the bridge paper put the switch as low as\n"
              << "~128 B once CPU time is priced in.\n";
  }
  return report.compare_if(flags);
}
