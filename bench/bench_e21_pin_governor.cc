// bench_e21_pin_governor - Experiment E21: the host-wide pin governor.
//
// Three scenarios around src/pinmgr/ (DESIGN.md section on pinmgr):
//
//   1. Lazy deregistration: deregs append to a user-level queue and one
//      batched kernel entry submits them, so the fixed per-ioctl cost
//      amortises. Sweep batch depth and report virtual ns per dereg.
//   2. Multi-tenant registration under memory pressure: the ungoverned
//      baseline (every tenant statically pins its whole buffer pool, the
//      pre-governor VIA style) runs the host into its pin budget and
//      transfers fail with EAGAIN; the governed run (per-tenant quota +
//      registration cache + cooperative reclaim) completes every transfer
//      and keeps the TPT truthful.
//   3. QoS admission: without a guaranteed reserve a best-effort tenant
//      starves a guaranteed one; with the reserve - or with idle cached
//      registrations the governor can reclaim - the guaranteed tenant is
//      admitted and the best-effort one fails cleanly instead.
//
// All times are virtual-clock nanoseconds; same-seed runs are bit-identical
// (checked at the end by replaying scenario 2 and comparing /proc/pinmgr).
#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/reg_cache.h"
#include "experiments/pressure.h"
#include "pinmgr/pin_procfs.h"
#include "util/table.h"
#include "via/vipl.h"

namespace vialock {
namespace {

using simkern::kPageSize;
using simkern::Pid;
using simkern::VAddr;

constexpr auto kRw = simkern::VmFlag::Read | simkern::VmFlag::Write;

std::uint64_t stamp(Pid pid, std::uint32_t buffer) {
  return 0xE21000000000000ULL ^ (static_cast<std::uint64_t>(pid) << 32) ^
         buffer * 0x9E3779B97F4A7C15ULL;
}

// --- scenario 1: lazy-dereg amortisation -------------------------------------

void lazy_dereg_sweep(bench::JsonReport& report) {
  constexpr int kCycles = 256;
  constexpr std::uint64_t kPages = 8;
  std::cout << "\n=== E21.1 lazy deregistration: " << kCycles
            << " register/deregister cycles of " << kPages
            << "-page regions ===\n";
  Table table({"dereg mode", "deregs", "dereg syscalls", "dereg ns total",
               "ns/dereg", "vs eager"});
  double eager_ns = 0;
  for (const std::uint32_t batch : {0u, 8u, 32u, 128u}) {
    Clock clock;
    CostModel costs;
    via::Node node(bench::eval_node(via::PolicyKind::Kiobuf), clock, costs);
    auto& gov = node.enable_governor({.lazy_batch = batch});
    auto& kern = node.kernel();
    const Pid pid = kern.create_task("app");
    gov.set_tenant(pid, /*quota_pages=*/2048, pinmgr::QosTier::Guaranteed);
    const via::ProtectionTag tag = node.agent().create_ptag(pid);
    const VAddr base =
        *kern.sys_mmap_anon(pid, kCycles * kPages * kPageSize, kRw);

    Nanos dereg_ns = 0;
    std::uint64_t dereg_sys = 0;
    for (int i = 0; i < kCycles; ++i) {
      via::MemHandle mh;
      if (!ok(node.agent().register_mem(
              pid, base + static_cast<std::uint64_t>(i) * kPages * kPageSize,
              kPages * kPageSize, tag, mh))) {
        std::cout << "  register failed at cycle " << i << "\n";
        return;
      }
      const Nanos t0 = clock.now();
      const std::uint64_t s0 = kern.stats().syscalls;
      (void)node.agent().deregister_mem(mh);
      dereg_ns += clock.now() - t0;
      dereg_sys += kern.stats().syscalls - s0;
    }
    {
      // End-of-phase epoch barrier: the tail of the queue drains here and its
      // cost belongs to the dereg bill.
      const Nanos t0 = clock.now();
      const std::uint64_t s0 = kern.stats().syscalls;
      (void)gov.flush();
      dereg_ns += clock.now() - t0;
      dereg_sys += kern.stats().syscalls - s0;
    }
    const double per = static_cast<double>(dereg_ns) / kCycles;
    if (batch == 0) eager_ns = per;
    const std::string mode =
        batch == 0 ? "eager" : "lazy batch=" + std::to_string(batch);
    table.row({mode, Table::num(std::uint64_t{kCycles}),
               Table::num(dereg_sys),
               Table::num(static_cast<std::uint64_t>(dereg_ns)),
               Table::fp(per, 1),
               batch == 0 ? "1.00x" : Table::fp(eager_ns / per, 2) + "x"});
    if (batch == 128)
      report.metric("lazy128_ns_per_dereg", per)
          .metric("lazy128_speedup", eager_ns / per);
    if (batch == 0) report.metric("eager_ns_per_dereg", per);
  }
  table.print();
  report.add_table("lazy_dereg", table);
}

// --- scenario 2: multi-tenant transfers under pressure -----------------------

/// A small host: 4 MB RAM, pin budget 3/4 of it. Four tenants together want
/// twice the pin budget, so an ungoverned host cannot hold everything.
via::NodeSpec pressure_node() {
  via::NodeSpec spec;
  spec.kernel.frames = 1024;
  spec.kernel.reserved_low = 16;
  spec.kernel.swap_slots = 8192;
  spec.kernel.free_pages_min = 16;
  spec.kernel.swap_cluster = 32;
  spec.nic.tpt_entries = 8192;
  spec.policy = via::PolicyKind::Kiobuf;
  return spec;
}

constexpr int kTenants = 4;
constexpr std::uint32_t kBuffers = 48;  ///< distinct buffers per tenant
constexpr std::uint64_t kBufPages = 8;
constexpr int kRounds = 3;
constexpr std::uint32_t kQuota = 128;  ///< governed per-tenant quota (pages)

struct PressureRunResult {
  std::uint64_t transfers = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t data_ok = 0;
  std::uint32_t pinned_peak = 0;
  std::uint64_t swapped = 0;          ///< swap-outs during the allocator run
  std::uint64_t reclaim_pages = 0;    ///< pages the governor reclaimed
  std::uint64_t tpt_stale = 0;        ///< live TPT entries vs page tables
  bool clean_exit = false;            ///< nothing pinned/charged at the end
  Nanos elapsed = 0;
  std::string pinstat;                ///< governed runs: final /proc/pinmgr
};

struct Tenant {
  Pid pid = simkern::kInvalidPid;
  VAddr base = 0;
  std::unique_ptr<via::Vipl> vipl;                 // governed
  std::unique_ptr<core::RegistrationCache> cache;  // governed
  via::ProtectionTag tag = via::kInvalidTag;       // ungoverned
  std::vector<via::MemHandle> statics;             // ungoverned: pin-and-hold
};

/// Count live registrations whose TPT frames no longer match the page tables.
std::uint64_t stale_pages(via::Node& node, Pid pid, const via::MemHandle& mh) {
  const via::LockHandle* lh = node.agent().lock_handle(mh.id);
  if (lh == nullptr) return 0;
  std::uint64_t stale = 0;
  for (std::uint32_t p = 0; p < lh->pfns.size(); ++p) {
    const auto pfn = node.kernel().resolve(
        pid, mh.region_start() + static_cast<std::uint64_t>(p) * kPageSize);
    if (!pfn || *pfn != lh->pfns[p]) ++stale;
  }
  return stale;
}

PressureRunResult run_tenants(bool governed) {
  Clock clock;
  CostModel costs;
  via::Node node(pressure_node(), clock, costs);
  auto& kern = node.kernel();
  PressureRunResult r;

  pinmgr::PinGovernor* gov = nullptr;
  if (governed) {
    gov = &node.enable_governor({.lazy_batch = 16});
  }

  std::vector<Tenant> tenants(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    Tenant& ten = tenants[t];
    ten.pid = kern.create_task("tenant" + std::to_string(t));
    ten.base = *kern.sys_mmap_anon(ten.pid, kBuffers * kBufPages * kPageSize,
                                   kRw);
    for (std::uint32_t b = 0; b < kBuffers; ++b) {
      const std::uint64_t v = stamp(ten.pid, b);
      (void)kern.write_user(ten.pid, ten.base + b * kBufPages * kPageSize,
                            std::as_bytes(std::span{&v, 1}));
    }
    if (governed) {
      gov->set_tenant(ten.pid, kQuota, pinmgr::QosTier::Guaranteed);
      ten.vipl = std::make_unique<via::Vipl>(node.agent(), ten.pid);
      (void)ten.vipl->open();
      core::RegistrationCache::Config ccfg;
      ccfg.governor = gov;
      ten.cache =
          std::make_unique<core::RegistrationCache>(*ten.vipl, ccfg);
    } else {
      ten.tag = node.agent().create_ptag(ten.pid);
      ten.statics.resize(kBuffers);
    }
  }

  // One transfer: pin the buffer (cache acquire / static handle), have the
  // NIC read its stamp through the TPT, release.
  const auto transfer = [&](Tenant& ten, std::uint32_t b) {
    ++r.transfers;
    const VAddr addr = ten.base + b * kBufPages * kPageSize;
    via::MemHandle mh;
    if (governed) {
      if (!ok(ten.cache->acquire(addr, kBufPages * kPageSize, mh))) {
        ++r.failed;
        return;
      }
    } else {
      if (!ten.statics[b].valid() &&
          !ok(node.agent().register_mem(ten.pid, addr, kBufPages * kPageSize,
                                        ten.tag, ten.statics[b]))) {
        ++r.failed;
        return;
      }
      mh = ten.statics[b];
    }
    std::uint64_t seen = 0;
    const KStatus st = node.nic().dma_read_local(
        mh, addr, std::as_writable_bytes(std::span{&seen, 1}));
    if (ok(st)) {
      ++r.completed;
      if (seen == stamp(ten.pid, b)) ++r.data_ok;
    } else {
      ++r.failed;
    }
    if (governed) ten.cache->release(mh);
    if (kern.pinned_frames() > r.pinned_peak)
      r.pinned_peak = kern.pinned_frames();
  };

  for (int round = 0; round < kRounds; ++round) {
    for (std::uint32_t b = 0; b < kBuffers; ++b)
      for (auto& ten : tenants) transfer(ten, b);
    if (round == 0) {
      // The paper's allocator process dirties 1.2x RAM between rounds.
      const auto pr = experiments::apply_memory_pressure(kern, 1.2);
      r.swapped = pr.swap_outs;
      if (pr.allocator_pid != simkern::kInvalidPid)
        kern.exit_task(pr.allocator_pid);
    }
  }

  // TPT truth: every live registration must still translate to the frames
  // the page tables hold (kiobuf pinning guarantees it; count violations).
  for (auto& ten : tenants) {
    if (governed) {
      // The cache's idle entries are the live registrations.
      continue;  // checked per-transfer by data_ok; spot-check below
    }
    for (std::uint32_t b = 0; b < kBuffers; ++b)
      if (ten.statics[b].valid())
        r.tpt_stale += stale_pages(node, ten.pid, ten.statics[b]);
  }
  if (governed) {
    // Spot-check through a fresh acquire per tenant (hits the cache).
    for (auto& ten : tenants) {
      via::MemHandle mh;
      if (ok(ten.cache->acquire(ten.base, kBufPages * kPageSize, mh))) {
        r.tpt_stale += stale_pages(node, ten.pid, mh);
        ten.cache->release(mh);
      }
    }
  }

  // Tenant teardown: everything must come back.
  for (auto& ten : tenants) {
    if (governed) {
      ten.cache.reset();
      node.agent().release_tenant(ten.pid);
    } else {
      for (auto& mh : ten.statics)
        if (mh.valid()) (void)node.agent().deregister_mem(mh);
    }
  }
  if (gov != nullptr) {
    r.reclaim_pages = gov->stats().reclaim_pages;
    r.pinstat = pinmgr::pinstat(*gov);
    r.clean_exit = gov->total_charged() == 0 && kern.pinned_frames() == 0 &&
                   kern.self_check().empty();
  } else {
    r.clean_exit = kern.pinned_frames() == 0 && kern.self_check().empty();
  }
  r.elapsed = clock.now();
  return r;
}

void multi_tenant_table(bench::JsonReport& report,
                        PressureRunResult& governed_out) {
  std::cout << "\n=== E21.2 four tenants, 2x the pin budget, allocator "
               "pressure between rounds ===\n";
  Table table({"mode", "transfers", "completed", "failed", "data intact",
               "pinned peak", "swapped", "reclaimed", "TPT stale",
               "clean exit"});
  const PressureRunResult base = run_tenants(/*governed=*/false);
  const PressureRunResult gov = run_tenants(/*governed=*/true);
  governed_out = gov;
  for (const auto* r : {&base, &gov}) {
    table.row({r == &base ? "ungoverned (static pin-and-hold)"
                          : "governed (quota + cache + reclaim)",
               Table::num(r->transfers), Table::num(r->completed),
               Table::num(r->failed), Table::num(r->data_ok),
               Table::num(std::uint64_t{r->pinned_peak}),
               Table::num(r->swapped), Table::num(r->reclaim_pages),
               Table::num(r->tpt_stale), bench::yesno(r->clean_exit)});
  }
  table.print();
  report.add_table("multi_tenant", table);
  report.metric("baseline_failed_transfers", base.failed)
      .metric("governed_failed_transfers", gov.failed)
      .metric("governed_completed_transfers", gov.completed)
      .metric("governed_reclaim_pages", gov.reclaim_pages);
}

// --- scenario 3: QoS admission ----------------------------------------------

void qos_table(bench::JsonReport& report) {
  std::cout << "\n=== E21.3 QoS admission: 64-page ceiling, best-effort vs "
               "guaranteed ===\n";
  Table table({"configuration", "best-effort admitted",
               "guaranteed 24-page request", "reclaimed"});
  struct Row {
    std::string name;
    std::uint32_t reserve;
    bool idle_cache;  ///< best-effort pins sit idle in a RegistrationCache
  };
  for (const Row& row :
       {Row{"no reserve, pins held", 0, false},
        Row{"24-page guaranteed reserve", 24, false},
        Row{"no reserve, pins idle in cache", 0, true}}) {
    Clock clock;
    CostModel costs;
    via::Node node(bench::eval_node(via::PolicyKind::Kiobuf), clock, costs);
    auto& gov = node.enable_governor(
        {.host_ceiling = 64, .guaranteed_reserve = row.reserve});
    auto& kern = node.kernel();

    const Pid be = kern.create_task("best-effort");
    gov.set_tenant(be, 1024, pinmgr::QosTier::BestEffort);
    const VAddr be_base = *kern.sys_mmap_anon(be, 64 * kPageSize, kRw);
    via::Vipl be_vipl(node.agent(), be);
    (void)be_vipl.open();
    core::RegistrationCache::Config ccfg;
    ccfg.governor = &gov;
    std::optional<core::RegistrationCache> be_cache;
    if (row.idle_cache) be_cache.emplace(be_vipl, ccfg);

    // The best-effort tenant grabs 8-page chunks until admission fails.
    std::uint32_t be_admitted = 0;
    for (std::uint32_t c = 0; c < 8; ++c) {
      via::MemHandle mh;
      KStatus st;
      if (row.idle_cache) {
        st = be_cache->acquire(be_base + c * 8 * kPageSize, 8 * kPageSize, mh);
        if (ok(st)) be_cache->release(mh);  // idle but still pinned
      } else {
        st = be_vipl.register_mem(be_base + c * 8 * kPageSize, 8 * kPageSize,
                                  mh);
      }
      if (!ok(st)) break;
      be_admitted += 8;
    }

    const Pid g = kern.create_task("guaranteed");
    gov.set_tenant(g, 1024, pinmgr::QosTier::Guaranteed);
    const VAddr g_base = *kern.sys_mmap_anon(g, 24 * kPageSize, kRw);
    const via::ProtectionTag g_tag = node.agent().create_ptag(g);
    via::MemHandle g_mh;
    const KStatus g_st = node.agent().register_mem(
        g, g_base, 24 * kPageSize, g_tag, g_mh);

    table.row({row.name, Table::num(std::uint64_t{be_admitted}) + " pages",
               ok(g_st) ? "ADMITTED" : std::string(to_string(g_st)),
               Table::num(gov.stats().reclaim_pages)});
    if (ok(g_st)) (void)node.agent().deregister_mem(g_mh);
    be_cache.reset();
    node.agent().release_tenant(be);
    node.agent().release_tenant(g);
  }
  table.print();
  report.add_table("qos", table);
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  const vialock::bench::BenchFlags flags(argc, argv);
  std::cout << "E21: the pinned-memory governor (src/pinmgr/)\n"
            << "Per-tenant quotas + QoS admission + lazy deregistration +\n"
            << "cooperative reclaim, vs the ungoverned pin-and-hold baseline.\n";
  vialock::bench::JsonReport report(
      "E21", "pin governor: quotas, lazy dereg, cooperative reclaim");
  report.param("tenants", std::uint64_t{vialock::kTenants})
      .param("buffers_per_tenant", std::uint64_t{vialock::kBuffers})
      .param("buffer_pages", std::uint64_t{vialock::kBufPages})
      .param("governed_quota_pages", std::uint64_t{vialock::kQuota});

  vialock::lazy_dereg_sweep(report);
  vialock::PressureRunResult governed;
  vialock::multi_tenant_table(report, governed);
  vialock::qos_table(report);

  // Determinism: replay the governed multi-tenant run and require the virtual
  // clock and /proc/pinmgr to be bit-identical.
  const vialock::PressureRunResult replay =
      vialock::run_tenants(/*governed=*/true);
  const bool deterministic = replay.elapsed == governed.elapsed &&
                             replay.pinstat == governed.pinstat;
  std::cout << "\ndeterminism (replayed governed run): "
            << (deterministic ? "bit-identical" : "DIVERGED") << "\n";
  report.metric("deterministic", deterministic ? "yes" : "NO");
  report.write_if(flags);
  return deterministic ? report.compare_if(flags) : 1;
}
