// bench_host_microbench - google-benchmark timings of the simulator itself
// (host wall-clock, not virtual time): how fast the substrate executes fault
// handling, registration, reclaim and transfers. Useful for keeping the
// experiment binaries quick; unrelated to the paper's claims.
#include <benchmark/benchmark.h>

#include "experiments/pressure.h"
#include "msg/transport.h"
#include "via/node.h"

namespace vialock {
namespace {

using simkern::kPageShift;
using simkern::kPageSize;

simkern::KernelConfig bench_kernel() {
  simkern::KernelConfig cfg;
  cfg.frames = 2048;
  cfg.swap_slots = 8192;
  return cfg;
}

void BM_DemandZeroFault(benchmark::State& state) {
  Clock clock;
  simkern::Kernel kern(bench_kernel(), clock);
  const auto pid = kern.create_task("t");
  const auto prot = simkern::VmFlag::Read | simkern::VmFlag::Write;
  std::uint64_t i = 0;
  auto addr = kern.sys_mmap_anon(pid, 1024 * kPageSize, prot);
  for (auto _ : state) {
    if (i == 1024) {
      // Recycle the region outside the timed loop cadence.
      state.PauseTiming();
      (void)kern.sys_munmap(pid, *addr, 1024 * kPageSize);
      addr = kern.sys_mmap_anon(pid, 1024 * kPageSize, prot);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(kern.touch(pid, *addr + (i++ << kPageShift), true));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DemandZeroFault);

void BM_KiobufRegisterDeregister(benchmark::State& state) {
  const auto pages = static_cast<std::uint64_t>(state.range(0));
  Clock clock;
  CostModel costs;
  via::NodeSpec spec;
  spec.kernel = bench_kernel();
  spec.policy = via::PolicyKind::Kiobuf;
  via::Node node(spec, clock, costs);
  auto& kern = node.kernel();
  const auto pid = kern.create_task("t");
  const auto addr = *kern.sys_mmap_anon(
      pid, pages * kPageSize, simkern::VmFlag::Read | simkern::VmFlag::Write);
  for (std::uint64_t p = 0; p < pages; ++p)
    (void)kern.touch(pid, addr + (p << kPageShift), true);
  const auto tag = node.agent().create_ptag(pid);
  for (auto _ : state) {
    via::MemHandle mh;
    benchmark::DoNotOptimize(
        node.agent().register_mem(pid, addr, pages * kPageSize, tag, mh));
    benchmark::DoNotOptimize(node.agent().deregister_mem(mh));
  }
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_KiobufRegisterDeregister)->Arg(1)->Arg(16)->Arg(256);

void BM_EagerTransfer(benchmark::State& state) {
  const auto len = static_cast<std::uint32_t>(state.range(0));
  via::Cluster cluster;
  via::NodeSpec spec;
  spec.kernel = bench_kernel();
  spec.policy = via::PolicyKind::Kiobuf;
  const auto n0 = cluster.add_node(spec);
  const auto n1 = cluster.add_node(spec);
  msg::Channel::Config cfg;
  cfg.user_heap_bytes = 1ULL << 20;
  msg::Channel channel(cluster, n0, n1, cfg);
  if (!ok(channel.init())) state.SkipWithError("channel init failed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        channel.transfer(msg::Protocol::Eager, 0, 0, len));
  }
  state.SetBytesProcessed(state.iterations() * len);
}
BENCHMARK(BM_EagerTransfer)->Arg(64)->Arg(4096);

void BM_PressureCycle(benchmark::State& state) {
  for (auto _ : state) {
    Clock clock;
    simkern::Kernel kern(bench_kernel(), clock);
    const auto pr = experiments::apply_memory_pressure(kern, 1.2);
    benchmark::DoNotOptimize(pr.pages_touched);
  }
}
BENCHMARK(BM_PressureCycle)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vialock

BENCHMARK_MAIN();
