// bench_e20_reliability - Experiment E20: the price of reliable delivery
// under injected faults.
//
// Sweeps the injected wire-drop rate (with a correlated DMA bit-flip rate)
// and measures, per protocol and per delivery policy:
//   unreliable - the raw VIA service: transfers fail outright on a drop and
//                deliver corrupted payloads silently on a bit-flip
//   reliable   - sequence numbers + acks + checksums + bounded retries
//                (src/fault + the msg::Channel reliability layer)
// Shape target: reliable mode completes everything and delivers zero silent
// corruptions at any surveyed rate, paying for it in retries and virtual
// time; unreliable mode keeps its latency flat but loses or corrupts an
// increasing fraction of transfers. Same seed => byte-identical output.
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fault.h"
#include "msg/transport.h"
#include "util/table.h"

namespace vialock {
namespace {

using msg::Channel;
using msg::Protocol;

constexpr std::uint64_t kSeed = 2026;
constexpr int kTransfers = 100;

struct CellResult {
  int completed = 0;
  int silent_corruptions = 0;  ///< delivered but wrong payload
  Nanos elapsed = 0;
  std::uint64_t bytes_delivered = 0;
  msg::ChannelStats stats;
  std::string schedule;
};

fault::FaultPlan chaos_plan(double drop_rate) {
  fault::FaultPlan plan;
  plan.seed = kSeed;
  if (drop_rate > 0.0) {
    plan.add({.site = fault::FaultSite::Wire,
              .action = fault::FaultAction::Drop,
              .probability = drop_rate});
    plan.add({.site = fault::FaultSite::NicDma,
              .action = fault::FaultAction::Corrupt,
              .probability = drop_rate / 2});
  }
  return plan;
}

std::vector<std::byte> pattern(std::size_t n) {
  Rng rng(kSeed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xFF);
  return out;
}

CellResult run_cell(Protocol proto, std::uint32_t len, double drop_rate,
                    bool reliable) {
  via::Cluster cluster;
  fault::FaultEngine engine(chaos_plan(drop_rate), cluster.clock());
  const auto n0 = cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf));
  const auto n1 = cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf));

  Channel::Config cfg;
  cfg.preregister_heaps = true;
  cfg.user_heap_bytes = 2ULL << 20;
  cfg.reliability.enabled = reliable;
  Channel ch(cluster, n0, n1, cfg);
  if (!ok(ch.init())) std::abort();
  // Arm after setup so registration/connect never consume fault events and
  // every cell sees the same schedule for the same rate.
  cluster.inject_faults(&engine);

  const auto payload = pattern(len);
  if (!ok(ch.stage(0, payload))) std::abort();

  CellResult res;
  std::vector<std::byte> out(len);
  const Nanos t0 = cluster.clock().now();
  for (int i = 0; i < kTransfers; ++i) {
    if (!ok(ch.transfer(proto, 0, 0, len))) continue;
    ++res.completed;
    res.bytes_delivered += len;
    if (!ok(ch.fetch(0, out))) std::abort();
    if (out != payload) ++res.silent_corruptions;
  }
  res.elapsed = cluster.clock().now() - t0;
  res.stats = ch.stats();
  res.schedule = engine.schedule_string();
  return res;
}

std::string sweep_table(Protocol proto, std::uint32_t len,
                        bench::JsonReport& report) {
  std::ostringstream os;
  Table t({"drop rate", "mode", "done", "silent-corrupt", "goodput",
           "avg latency", "retries", "timeouts", "crc-catch", "repairs"});
  for (const double rate : {0.0, 0.01, 0.05, 0.10, 0.20}) {
    for (const bool reliable : {false, true}) {
      const CellResult r = run_cell(proto, len, rate, reliable);
      t.row({std::to_string(rate).substr(0, 4), reliable ? "reliable" : "raw",
             std::to_string(r.completed) + "/" + std::to_string(kTransfers),
             std::to_string(r.silent_corruptions),
             r.bytes_delivered ? Table::rate(r.bytes_delivered, r.elapsed)
                               : std::string("-"),
             Table::nanos(r.elapsed / kTransfers),
             std::to_string(r.stats.retries),
             std::to_string(r.stats.send_timeouts),
             std::to_string(r.stats.corruptions_detected),
             std::to_string(r.stats.conn_repairs)});
    }
  }
  os << "--- " << to_string(proto) << " (" << Table::bytes(len) << " x "
     << kTransfers << ") ---\n";
  {
    std::streambuf* old = std::cout.rdbuf(os.rdbuf());
    t.print();
    std::cout.rdbuf(old);
  }
  report.add_table(std::string(to_string(proto)), t);
  return os.str();
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout << "E20: reliable delivery vs injected faults "
            << "(seed " << kSeed << ", deterministic)\n"
            << "raw = plain VIA service, reliable = seq/ack/checksum/retry\n\n";

  bench::JsonReport report("E20", "reliable delivery vs injected faults");
  report.param("seed", std::uint64_t{kSeed});
  std::cout << sweep_table(Protocol::Eager, 2048, report) << "\n";
  std::cout << sweep_table(Protocol::Rendezvous, 32 * 1024, report) << "\n";
  std::cout << sweep_table(Protocol::Preregistered, 32 * 1024, report) << "\n";

  // Determinism spot check: the same seed must reproduce the identical
  // fault schedule and the identical outcome, byte for byte.
  const CellResult a = run_cell(Protocol::Eager, 2048, 0.10, true);
  const CellResult b = run_cell(Protocol::Eager, 2048, 0.10, true);
  const bool same = a.schedule == b.schedule && a.elapsed == b.elapsed &&
                    a.completed == b.completed &&
                    a.stats.retries == b.stats.retries;
  std::cout << "determinism check (eager, rate 0.10, reliable, two runs): "
            << (same ? "PASS" : "FAIL") << " - " << a.schedule.size()
            << "-byte schedule, " << a.stats.retries << " retries, "
            << Table::nanos(a.elapsed) << " elapsed\n";
  report.metric("determinism", same ? std::string("PASS") : std::string("FAIL"));
  report.write_if(flags);
  return same ? report.compare_if(flags) : 1;
}
