// bench_e14_mp_matching - Experiment E14 (extension): message-matching costs
// at the MPI-flavoured layer.
//
// The collection's MPI papers explain why receive timing matters: a posted
// receive lets the eager message land with one copy; an unexpected message
// buys an extra buffering copy; a rendezvous send parks only a descriptor
// until the receive appears, then pulls zero-copy. This bench measures all
// six combinations (eager/rendezvous x receiver-first/sender-first) plus the
// ANY_SOURCE wildcard penalty.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "mp/comm.h"
#include "util/table.h"

namespace vialock {
namespace {

struct Rig {
  Rig() {
    nodes.push_back(cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf)));
    nodes.push_back(cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf)));
    comm = std::make_unique<mp::Comm>(cluster, nodes);
    if (!ok(comm->init())) std::abort();
    std::vector<std::byte> data(1 << 20, std::byte{0x33});
    if (!ok(comm->stage(0, 0, data))) std::abort();
  }
  via::Cluster cluster;
  std::vector<via::NodeId> nodes;
  std::unique_ptr<mp::Comm> comm;
};

/// One message, timed; receiver posts first or last.
Nanos one_message(Rig& rig, std::uint32_t len, bool receiver_first,
                  std::int32_t recv_source) {
  static std::int32_t tag = 100;
  ++tag;
  Clock& clock = rig.cluster.clock();
  const Nanos t0 = clock.now();
  if (receiver_first) {
    const auto r = rig.comm->irecv(1, recv_source, tag, 0, 1 << 20);
    const auto s = rig.comm->isend(0, 1, tag, 0, len);
    if (!rig.comm->wait(r) || !rig.comm->wait(s)) std::abort();
  } else {
    const auto s = rig.comm->isend(0, 1, tag, 0, len);
    const auto r = rig.comm->irecv(1, recv_source, tag, 0, 1 << 20);
    if (!rig.comm->wait(r) || !rig.comm->wait(s)) std::abort();
  }
  return clock.now() - t0;
}

Nanos median_of_5(Rig& rig, std::uint32_t len, bool receiver_first,
                  std::int32_t source) {
  std::vector<Nanos> times;
  for (int i = 0; i < 5; ++i)
    times.push_back(one_message(rig, len, receiver_first, source));
  std::sort(times.begin(), times.end());
  return times[2];
}

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout << "E14 (extension): receive-timing and wildcard costs at the\n"
            << "message-matching layer (median of 5, virtual time)\n\n";
  Rig rig;
  Table table({"message", "protocol", "recv posted first", "sender first "
               "(unexpected)", "unexpected penalty"});
  for (const std::uint32_t len : {256u, 2048u, 16u * 1024, 256u * 1024}) {
    const bool eager = len <= 4096;
    const Nanos expected = median_of_5(rig, len, true, 0);
    const Nanos unexpected = median_of_5(rig, len, false, 0);
    table.row({Table::bytes(len), eager ? "eager" : "rendezvous",
               Table::nanos(expected), Table::nanos(unexpected),
               Table::fp(static_cast<double>(unexpected) /
                             static_cast<double>(expected),
                         2) + "x"});
  }
  table.print();

  std::cout << "\nANY_SOURCE wildcard (256 B eager, receiver first):\n";
  Table wc({"receive mode", "median time"});
  wc.row({"exact source", Table::nanos(median_of_5(rig, 256, true, 0))});
  wc.row({"MPI_ANY_SOURCE",
          Table::nanos(median_of_5(rig, 256, true, mp::kAnySource))});
  wc.print();

  bench::JsonReport report("E14", "receive-timing and wildcard costs");
  report.add_table("receive_timing", table).add_table("wildcard", wc);
  report.write_if(flags);

  std::cout << "\nShape: sender-first eager pays the unexpected-queue\n"
               "buffering copy; sender-first rendezvous pays almost nothing\n"
               "extra (only a descriptor parks - the payload moves zero-copy\n"
               "either way once the receive appears).\n";
  return report.compare_if(flags);
}
