// bench_e13_syscalls - Experiment E13 (extension): kernel involvement on the
// data path.
//
// The whole point of VIA: "removing operating system calls from the
// communication path" - except that zero-copy needs dynamic registration,
// "actually a contradiction to the aim of the VI Architecture... but the bad
// effects can be remedied by caching" (paper section 1). This bench counts
// the syscalls each transfer path actually makes, cold and warm.
#include <iostream>

#include "bench_util.h"
#include "msg/transport.h"
#include "util/table.h"

namespace vialock {
namespace {

using msg::Channel;
using msg::Protocol;

struct Rig {
  Rig()
      : n0(cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf))),
        n1(cluster.add_node(bench::eval_node(via::PolicyKind::Kiobuf))),
        channel(cluster, n0, n1, config()) {
    if (!ok(channel.init())) std::abort();
  }
  static Channel::Config config() {
    Channel::Config cfg;
    cfg.user_heap_bytes = 4ULL << 20;
    cfg.preregister_heaps = true;
    return cfg;
  }
  [[nodiscard]] std::uint64_t syscalls() {
    return cluster.node(n0).kernel().stats().syscalls +
           cluster.node(n1).kernel().stats().syscalls;
  }
  via::Cluster cluster;
  via::NodeId n0;
  via::NodeId n1;
  Channel channel;
};

}  // namespace
}  // namespace vialock

int main(int argc, char** argv) {
  using namespace vialock;
  const bench::BenchFlags flags(argc, argv);
  std::cout
      << "E13 (extension): syscalls on the transfer data path (64 KB "
         "messages,\nboth hosts counted; 'cold' = first use of the buffer, "
         "'warm' = steady state)\n\n";
  Table table({"path", "syscalls cold", "syscalls warm", "notes"});

  {
    Rig rig;
    const auto s0 = rig.syscalls();
    if (!ok(rig.channel.transfer(Protocol::Eager, 0, 0, 4096))) std::abort();
    const auto cold = rig.syscalls() - s0;
    const auto s1 = rig.syscalls();
    if (!ok(rig.channel.transfer(Protocol::Eager, 0, 0, 4096))) std::abort();
    table.row({"eager 4KB", Table::num(cold), Table::num(rig.syscalls() - s1),
               "bounce buffers registered at setup"});
  }
  {
    Rig rig;
    const auto s0 = rig.syscalls();
    if (!ok(rig.channel.transfer(Protocol::Rendezvous, 0, 0, 64 * 1024)))
      std::abort();
    const auto cold = rig.syscalls() - s0;
    const auto s1 = rig.syscalls();
    if (!ok(rig.channel.transfer(Protocol::Rendezvous, 0, 0, 64 * 1024)))
      std::abort();
    table.row({"rendezvous 64KB", Table::num(cold),
               Table::num(rig.syscalls() - s1),
               "cold pays 2x VipRegisterMem; cache removes them"});
  }
  {
    Rig rig;
    const auto s0 = rig.syscalls();
    if (!ok(rig.channel.transfer(Protocol::Preregistered, 0, 0, 64 * 1024)))
      std::abort();
    const auto cold = rig.syscalls() - s0;
    const auto s1 = rig.syscalls();
    if (!ok(rig.channel.transfer(Protocol::Preregistered, 0, 0, 64 * 1024)))
      std::abort();
    table.row({"preregistered 64KB", Table::num(cold),
               Table::num(rig.syscalls() - s1),
               "the VIA ideal: zero kernel involvement"});
  }
  table.print();
  bench::JsonReport report("E13", "syscalls on the transfer data path");
  report.add_table("syscalls", table);
  report.write_if(flags);
  std::cout << "\nThe registration cache restores VIA's zero-syscall data\n"
               "path for warm buffers; only cold buffers trap into the\n"
               "kernel agent - and thanks to the kiobuf mechanism, those\n"
               "traps are safe.\n";
  return report.compare_if(flags);
}
