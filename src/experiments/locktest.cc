#include "experiments/locktest.h"

#include <cstring>
#include <vector>

#include "experiments/pressure.h"

namespace vialock::experiments {

using simkern::kPageShift;
using simkern::kPageSize;
using simkern::Pfn;
using simkern::Pid;
using simkern::VAddr;

namespace {

/// Per-page stamp written in step 1 / step 4 (deterministic, distinct).
std::uint64_t stamp(std::uint32_t page, std::uint32_t round) {
  return 0xC0FFEE0000000000ULL ^ (static_cast<std::uint64_t>(round) << 32) ^
         page * 0x9E3779B97F4A7C15ULL;
}

constexpr std::uint64_t kDmaMagic = 0xD1AD1AD1AD1AD1ADULL;
constexpr std::uint64_t kDmaOffset = 16;  ///< where step 5 writes in page 0

}  // namespace

LocktestResult run_locktest(via::Node& node, const LocktestConfig& config) {
  LocktestResult r;
  r.pages = config.region_pages;
  simkern::Kernel& kern = node.kernel();
  via::KernelAgent& agent = node.agent();

  const Pid pid = kern.create_task("locktest");
  const auto prot = simkern::VmFlag::Read | simkern::VmFlag::Write;
  const std::uint64_t len =
      static_cast<std::uint64_t>(config.region_pages) << kPageShift;

  // Step 1: allocate and fill - every page gets a distinct physical frame.
  const auto addr_opt = kern.sys_mmap_anon(pid, len, prot);
  if (!addr_opt) {
    r.status = KStatus::NoMem;
    return r;
  }
  const VAddr addr = *addr_opt;
  for (std::uint32_t p = 0; p < config.region_pages; ++p) {
    const std::uint64_t v = stamp(p, 1);
    if (const KStatus st = kern.write_user(
            pid, addr + (static_cast<std::uint64_t>(p) << kPageShift),
            std::as_bytes(std::span{&v, 1}));
        !ok(st)) {
      r.status = st;
      return r;
    }
  }

  // Step 2: register; the TPT now stores the physical addresses.
  const via::ProtectionTag tag = agent.create_ptag(pid);
  via::MemHandle mh;
  if (const KStatus st = agent.register_mem(pid, addr, len, tag, mh); !ok(st)) {
    r.status = st;
    return r;
  }
  const via::LockHandle* lh = agent.lock_handle(mh.id);
  const std::vector<Pfn> original_pfns = lh->pfns;

  // Step 3: the allocator process forces swapping.
  Pid allocator = simkern::kInvalidPid;
  if (config.run_pressure) {
    const std::uint64_t before = kern.stats().pages_swapped_out;
    const PressureResult pr =
        apply_memory_pressure(kern, config.pressure_factor);
    allocator = pr.allocator_pid;
    r.allocator_pages = pr.pages_touched;
    r.pages_swapped_out = kern.stats().pages_swapped_out - before;
  }

  // Step 4: locktest writes again to each page of the memory block.
  for (std::uint32_t p = 0; p < config.region_pages; ++p) {
    const std::uint64_t v = stamp(p, 2);
    if (const KStatus st = kern.write_user(
            pid, addr + (static_cast<std::uint64_t>(p) << kPageShift) + 8,
            std::as_bytes(std::span{&v, 1}));
        !ok(st)) {
      r.status = st;
      return r;
    }
  }

  // Step 5: the NIC DMA-writes kDmaMagic into the first page through the
  // physical address it learned at registration time.
  {
    const std::uint64_t magic = kDmaMagic;
    if (const KStatus st = node.nic().dma_write_local(
            mh, addr + kDmaOffset, std::as_bytes(std::span{&magic, 1}));
        !ok(st)) {
      r.status = st;
      return r;
    }
  }
  // NIC-side read check: does a gather through the TPT see the step-4 data?
  {
    std::uint64_t seen = 0;
    if (const KStatus st = node.nic().dma_read_local(
            mh, addr + 8, std::as_writable_bytes(std::span{&seen, 1}));
        !ok(st)) {
      r.status = st;
      return r;
    }
    r.nic_read_current = seen == stamp(0, 2);
  }

  // Step 6: derive the physical addresses again and compare.
  for (std::uint32_t p = 0; p < config.region_pages; ++p) {
    const auto pfn = kern.resolve(
        pid, addr + (static_cast<std::uint64_t>(p) << kPageShift));
    if (!pfn || *pfn != original_pfns[p]) {
      ++r.pages_relocated;
      // A relocated page leaves the registration-time frame detached but
      // still referenced (leaked for the registration's lifetime).
      if (kern.phys().page(original_pfns[p]).count > 0) ++r.frames_detached;
    }
  }

  // Data-integrity side check: both stamps survived the swap round-trip.
  for (std::uint32_t p = 0; p < config.region_pages && r.data_intact; ++p) {
    std::uint64_t v1 = 0;
    std::uint64_t v2 = 0;
    const VAddr pa = addr + (static_cast<std::uint64_t>(p) << kPageShift);
    if (!ok(kern.read_user(pid, pa, std::as_writable_bytes(std::span{&v1, 1}))) ||
        !ok(kern.read_user(pid, pa + 8,
                           std::as_writable_bytes(std::span{&v2, 1})))) {
      r.data_intact = false;
      break;
    }
    if (v1 != stamp(p, 1) || v2 != stamp(p, 2)) r.data_intact = false;
  }

  // Step 8 (before step 7, so the registration still pins what it pins):
  // does the process see the NIC's write?
  {
    std::uint64_t seen = 0;
    if (const KStatus st =
            kern.read_user(pid, addr + kDmaOffset,
                           std::as_writable_bytes(std::span{&seen, 1}));
        !ok(st)) {
      r.status = st;
      return r;
    }
    r.dma_write_visible = seen == kDmaMagic;
  }

  // Step 7: deregister (returns any detached frames to the allocator).
  if (const KStatus st = agent.deregister_mem(mh); !ok(st)) r.status = st;

  if (allocator != simkern::kInvalidPid) kern.exit_task(allocator);
  kern.exit_task(pid);
  return r;
}

}  // namespace vialock::experiments
