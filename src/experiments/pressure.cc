#include "experiments/pressure.h"

#include <algorithm>

namespace vialock::experiments {

using simkern::kPageShift;
using simkern::kPageSize;
using simkern::VAddr;

PressureResult apply_memory_pressure(simkern::Kernel& kern, double factor) {
  PressureResult result;
  result.allocator_pid = kern.create_task("allocator");
  const std::uint64_t swap_outs_before = kern.stats().pages_swapped_out;

  const auto target_pages = static_cast<std::uint64_t>(
      static_cast<double>(kern.phys().num_frames()) * factor);
  const auto prot = simkern::VmFlag::Read | simkern::VmFlag::Write;

  // Map in 4 MB chunks and dirty every page (a calloc-and-touch loop).
  constexpr std::uint64_t kChunkPages = 1024;
  std::uint64_t touched = 0;
  while (touched < target_pages) {
    const std::uint64_t chunk = std::min(kChunkPages, target_pages - touched);
    const auto addr =
        kern.sys_mmap_anon(result.allocator_pid, chunk << kPageShift, prot);
    if (!addr) {
      result.status = KStatus::NoMem;
      break;
    }
    bool oom = false;
    for (std::uint64_t i = 0; i < chunk; ++i) {
      const KStatus st =
          kern.touch(result.allocator_pid, *addr + (i << kPageShift),
                     /*write=*/true);
      if (!ok(st)) {
        result.status = st;
        oom = true;
        break;
      }
      ++touched;
    }
    if (oom) break;
  }

  result.pages_touched = touched;
  result.swap_outs = kern.stats().pages_swapped_out - swap_outs_before;
  return result;
}

}  // namespace vialock::experiments
