// locktest.h - the paper's experiment, section 3.1, steps 1-8:
//
//   1. locktest allocates memory and fills it with data (each virtual page
//      maps a distinct physical page).
//   2. Registration is performed (under the node's locking policy); the
//      physical addresses are stored (in the NIC's TPT).
//   3. An allocator process dirties as much memory as possible, forcing a
//      large amount of pages to be swapped out.
//   4. locktest writes again to each page of the block.
//   5. The kernel agent writes a value to the first page using the physical
//      address obtained during registration - "simulating a DMA operation of
//      the NIC" (here: an actual DMA through the simulated NIC's TPT).
//   6. The physical addresses of all pages are derived from the page tables
//      again and compared to those acquired during registration.
//   7. The block is deregistered.
//   8. The contents of the first page is inspected: did the process see the
//      DMA write?
//
// For a correct locking mechanism nothing relocates and the DMA write is
// visible; for refcount-only locking "all physical addresses had changed and
// the first page still contained its original value".
#pragma once

#include <cstdint>

#include "util/status.h"
#include "via/node.h"

namespace vialock::experiments {

struct LocktestConfig {
  std::uint32_t region_pages = 64;  ///< size of the registered block
  double pressure_factor = 1.5;     ///< allocator dirties frames x factor
  bool run_pressure = true;         ///< step 3 can be disabled as a control
};

struct LocktestResult {
  KStatus status = KStatus::Ok;   ///< infrastructure status (not the verdict)
  std::uint32_t pages = 0;
  std::uint32_t pages_relocated = 0;   ///< step 6: physical address changed
  bool dma_write_visible = false;      ///< step 8: process saw the NIC write
  bool nic_read_current = false;       ///< NIC gather returns the step-4 data
  bool data_intact = true;             ///< swap round-trip preserved contents
  std::uint32_t frames_detached = 0;   ///< stale frames still held at step 6
  std::uint64_t pages_swapped_out = 0; ///< kernel-wide, during pressure
  std::uint64_t allocator_pages = 0;

  /// The verdict of the experiment: registration kept NIC and MMU views
  /// consistent under memory pressure.
  [[nodiscard]] bool consistent() const {
    return pages_relocated == 0 && dma_write_visible && nic_read_current;
  }
};

/// Run the locktest experiment on `node` (whose kernel agent carries the
/// locking policy under test).
[[nodiscard]] LocktestResult run_locktest(via::Node& node,
                                          const LocktestConfig& config = {});

}  // namespace vialock::experiments
