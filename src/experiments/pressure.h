// pressure.h - the "allocator process" of the paper's locktest experiment:
// "allocates as much memory as possible forcing a large amount of pages to be
// swapped out" (section 3.1, step 3). Due to demand paging it must write to
// every page to actually consume physical memory.
#pragma once

#include <cstdint>

#include "simkern/kernel.h"
#include "util/status.h"

namespace vialock::experiments {

struct PressureResult {
  simkern::Pid allocator_pid = simkern::kInvalidPid;
  std::uint64_t pages_touched = 0;
  std::uint64_t swap_outs = 0;  ///< pages the kernel pushed to swap meanwhile
  KStatus status = KStatus::Ok;
};

/// Create an allocator task and have it dirty `factor` x total-frames pages.
/// The task is left alive (its residency keeps the pressure standing); the
/// caller exits it via Kernel::exit_task when done measuring.
[[nodiscard]] PressureResult apply_memory_pressure(simkern::Kernel& kern,
                                                   double factor);

}  // namespace vialock::experiments
