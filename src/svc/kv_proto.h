// kv_proto.h - the wire protocol of the zero-copy KV service tier.
//
// One-round-trip RPC in the HERD mould: every request is a single eager
// message carrying a fixed POD header; small values ride inline behind the
// header, large values move by rendezvous - the request names the client's
// registered window ("communicated out of band", VIA style) and the server
// moves the bytes with one RDMA write (GET) or read (PUT) straight between
// the client window and its value arena, skipping the eager copy entirely.
//
// Integrity: value bytes are covered end-to-end by fault::checksum32,
// carried in the header (PUT) or the response (GET). A DMA or wire bit-flip
// anywhere on the path - including mid-rendezvous - fails the request
// cleanly (KvStatus::Corrupt) instead of silently storing or returning
// garbage; headers themselves are validated by magic + length.
#pragma once

#include <cstdint>
#include <string_view>
#include <type_traits>

#include "simkern/types.h"
#include "via/memory_handle.h"

namespace vialock::svc {

inline constexpr std::uint32_t kReqMagic = 0x4B565251u;  // "KVRQ"
inline constexpr std::uint32_t kRspMagic = 0x4B565250u;  // "KVRP"

enum class KvOp : std::uint8_t { Get, Put };

[[nodiscard]] constexpr std::string_view to_string(KvOp op) {
  switch (op) {
    case KvOp::Get: return "GET";
    case KvOp::Put: return "PUT";
  }
  return "?";
}

enum class KvStatus : std::uint8_t {
  Ok,
  NotFound,          ///< GET of an absent key
  BadRequest,        ///< malformed header (magic / length) - counted, dropped
  ValueTooLarge,     ///< value exceeds the slot (inline) or window (rendezvous)
  NoSpace,           ///< the tenant's value arena is exhausted
  RendezvousFailed,  ///< window registration rejected or RDMA leg failed
  Corrupt,           ///< value checksum mismatch: the payload was damaged
};

[[nodiscard]] constexpr std::string_view to_string(KvStatus s) {
  switch (s) {
    case KvStatus::Ok: return "OK";
    case KvStatus::NotFound: return "NOT_FOUND";
    case KvStatus::BadRequest: return "BAD_REQUEST";
    case KvStatus::ValueTooLarge: return "VALUE_TOO_LARGE";
    case KvStatus::NoSpace: return "NO_SPACE";
    case KvStatus::RendezvousFailed: return "RENDEZVOUS_FAILED";
    case KvStatus::Corrupt: return "CORRUPT";
  }
  return "?";
}

/// Request header, at the front of the request slot. `value_len` bytes of
/// value follow inline when `op == Put` and the value is small enough;
/// otherwise `window`/`window_addr` name where the value lives (PUT) or
/// belongs (GET) in the client's registered memory.
struct KvRequest {
  std::uint32_t magic = kReqMagic;
  KvOp op = KvOp::Get;
  std::uint8_t rendezvous = 0;  ///< value moves by RDMA, not inline
  std::uint8_t pad[2] = {};
  std::uint64_t req_id = 0;     ///< echoed in the response (pipelining)
  std::uint64_t key = 0;
  std::uint32_t value_len = 0;  ///< PUT: value bytes; GET: window capacity
  std::uint32_t value_crc = 0;  ///< PUT: checksum32 of the value bytes
  via::MemHandle window;        ///< client's registered value window (POD)
  simkern::VAddr window_addr = 0;
};
static_assert(std::is_trivially_copyable_v<KvRequest>);

/// Response header, at the front of the response slot. A small GET value
/// follows inline; a rendezvous GET's value has already been RDMA-written
/// into the client window by the time this header arrives (the fabric
/// preserves ordering on one VI).
struct KvResponse {
  std::uint32_t magic = kRspMagic;
  KvStatus status = KvStatus::Ok;
  std::uint8_t rendezvous = 0;
  std::uint8_t pad[2] = {};
  std::uint64_t req_id = 0;
  std::uint32_t value_len = 0;
  std::uint32_t value_crc = 0;  ///< GET: checksum32 of the value bytes
};
static_assert(std::is_trivially_copyable_v<KvResponse>);

}  // namespace vialock::svc
