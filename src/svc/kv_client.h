// kv_client.h - the pipelined KV client of the service tier.
//
// One KvClient is a client process on one node, holding any number of
// connections to KvServer tenants. Each connection carries a bounded
// in-flight window of requests: `window` request/response eager slots plus a
// per-slot registered value window for rendezvous transfers (so concurrent
// large-value operations on one connection never share RDMA target space).
//
// Requests are *staged* and leave on flush() - a burst of requests on one
// connection rings a single batched doorbell, the posting-side analogue of
// the server's harvested completions. Responses come back through one
// shared recv CQ drained in batches; harvest() correlates them to pending
// requests by req_id, verifies the value checksum end-to-end (inline bytes
// or the RDMA-written window), and returns KvResults.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "svc/kv_proto.h"
#include "via/node.h"
#include "via/vipl.h"

namespace vialock::svc {

class KvServer;

struct KvClientConfig {
  /// Request/response eager-slot bytes. Must match the server's decision
  /// boundary: keep slot_size and inline_threshold equal on both sides.
  std::uint32_t slot_size = 512;
  /// In-flight requests per connection (must be <= the server's
  /// recv_credits; connect() enforces it).
  std::uint32_t window = 4;
  /// Per-slot rendezvous window bytes (the largest value one op can move).
  std::uint32_t value_window_bytes = 16384;
  /// Values of at most this many bytes are sent/requested inline.
  std::uint32_t inline_threshold = 256;
  /// Max completions drained per CQ harvest.
  std::uint32_t completion_batch = 32;
};

/// One completed operation, as harvest() hands it back.
struct KvResult {
  std::uint64_t req_id = 0;
  std::uint64_t key = 0;
  KvOp op = KvOp::Get;
  KvStatus status = KvStatus::Ok;
  bool rendezvous = false;
  /// End-to-end checksum verdict on the value bytes (GETs; always true for
  /// PUTs - the server verified before committing).
  bool data_ok = true;
  std::uint32_t value_len = 0;
  std::uint32_t value_crc = 0;
};

struct KvClientStats {
  std::uint64_t conns_opened = 0;
  std::uint64_t conns_closed = 0;
  std::uint64_t conns_abandoned = 0;
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t responses = 0;
  std::uint64_t data_corrupt = 0;     ///< value checksum failed at the client
  std::uint64_t bad_responses = 0;    ///< unparseable / uncorrelated response
  std::uint64_t stale_completions = 0;
  std::uint64_t requests_lost = 0;    ///< pending when the conn went away
  std::uint64_t send_errors = 0;
  std::uint64_t broken_conns = 0;     ///< conns seen in a broken state
  std::uint64_t inline_bytes = 0;
  std::uint64_t rendezvous_bytes = 0;
  std::uint64_t doorbell_flushes = 0; ///< flush() calls that posted a batch
};

class KvClient {
 public:
  /// A client process named `task_name` on `node` of `cluster`.
  KvClient(via::Cluster& cluster, via::NodeId node, std::string task_name,
           KvClientConfig config);
  ~KvClient();

  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;

  /// Create the process, open the Vipl, create the shared CQs.
  [[nodiscard]] KStatus open();

  /// Open a connection to `tenant` on `server`: allocates and registers the
  /// slot rings and value windows, then asks the server to accept. Passes
  /// the server's admission verdict through (Again = shed). On success fills
  /// `conn_out`.
  [[nodiscard]] KStatus connect(KvServer& server, std::uint32_t tenant,
                                std::uint32_t& conn_out);

  /// Graceful client-side teardown: disconnect, deregister, recycle. The
  /// caller still tells the server (KvServer::close(server_conn(conn))).
  [[nodiscard]] KStatus close(std::uint32_t conn);

  /// Abrupt teardown: like close(), but drops pending requests on the floor
  /// (stats().requests_lost) and does NOT notify the server - the server
  /// finds out mid-pipeline, which is the point of the exercise.
  [[nodiscard]] KStatus abandon(std::uint32_t conn);

  [[nodiscard]] bool can_issue(std::uint32_t conn) const;
  /// Stage a PUT of `value` under `key`. Small values are written inline
  /// into the request slot; large ones go into the slot's value window for
  /// the server to RDMA-read. Busy when the window is full.
  [[nodiscard]] KStatus put(std::uint32_t conn, std::uint64_t key,
                            std::span<const std::byte> value,
                            std::uint64_t& req_id_out);
  /// Stage a GET of `key`; a large value lands in the slot's value window.
  [[nodiscard]] KStatus get(std::uint32_t conn, std::uint64_t key,
                            std::uint64_t& req_id_out);
  /// Ring the doorbell for everything staged on `conn` - one batched
  /// doorbell for a burst. Returns the number of requests posted.
  std::uint32_t flush(std::uint32_t conn);

  /// Drain both CQs once (batched), appending completed operations to
  /// `out`. Returns the number of results produced.
  std::uint32_t harvest(std::vector<KvResult>& out);

  /// Deterministic synthetic value bytes for (key, seed) - both sides of a
  /// test can regenerate and compare.
  static void fill_value(std::span<std::byte> out, std::uint64_t key,
                         std::uint64_t seed);

  [[nodiscard]] const KvClientStats& stats() const { return stats_; }
  [[nodiscard]] const KvClientConfig& config() const { return config_; }
  [[nodiscard]] simkern::Pid pid() const { return pid_; }
  [[nodiscard]] via::NodeId node_id() const { return node_id_; }
  [[nodiscard]] std::uint32_t inflight(std::uint32_t conn) const {
    return conns_.at(conn).inflight;
  }
  [[nodiscard]] bool conn_open(std::uint32_t conn) const {
    return conn < conns_.size() && conns_[conn].open;
  }
  /// The server-side connection id of `conn` (for KvServer::close/abandon).
  [[nodiscard]] std::uint32_t server_conn(std::uint32_t conn) const {
    return conns_.at(conn).server_conn;
  }
  [[nodiscard]] std::uint32_t open_conns() const { return open_conns_; }

 private:
  struct Pending {
    std::uint32_t slot = 0;
    KvOp op = KvOp::Get;
    std::uint64_t key = 0;
    bool rendezvous = false;
  };

  struct Conn {
    bool open = false;
    std::uint32_t gen = 0;
    via::ViId vi = via::kInvalidVi;
    std::uint32_t server_conn = 0;
    simkern::VAddr rings = 0;   ///< window request + window response slots
    via::MemHandle rings_mh;
    simkern::VAddr window = 0;  ///< window * value_window_bytes, RDMA-enabled
    via::MemHandle window_mh;
    std::uint32_t inflight = 0;
    std::vector<bool> slot_busy;
    std::map<std::uint64_t, Pending> pending;  ///< req_id -> request
    std::vector<via::Vipl::SendPost> staged;
  };

  [[nodiscard]] simkern::VAddr req_slot(const Conn& c, std::uint32_t i) const {
    return c.rings + static_cast<std::uint64_t>(i) * config_.slot_size;
  }
  [[nodiscard]] simkern::VAddr rsp_slot(const Conn& c, std::uint32_t i) const {
    return req_slot(c, config_.window + i);
  }
  [[nodiscard]] simkern::VAddr win_slot(const Conn& c, std::uint32_t i) const {
    return c.window +
           static_cast<std::uint64_t>(i) * config_.value_window_bytes;
  }
  [[nodiscard]] std::uint64_t ring_bytes() const {
    return 2ULL * config_.window * config_.slot_size;
  }
  [[nodiscard]] std::uint64_t window_bytes() const {
    return static_cast<std::uint64_t>(config_.window) *
           config_.value_window_bytes;
  }
  /// First free request slot, or window (none free).
  [[nodiscard]] std::uint32_t free_slot(const Conn& c) const;
  /// Stage one request: build the header, write slot contents, remember the
  /// pending op.
  [[nodiscard]] KStatus stage(std::uint32_t conn, KvRequest req,
                              std::span<const std::byte> inline_value,
                              std::uint64_t& req_id_out);
  void teardown_conn(Conn& c);
  /// Drain the send CQ (request doorbell completions; errors break conns).
  std::uint32_t harvest_sends();

  via::Cluster& cluster_;
  via::Node& node_;
  via::NodeId node_id_;
  std::string task_name_;
  KvClientConfig config_;
  KvClientStats stats_;
  simkern::Pid pid_ = simkern::kInvalidPid;
  std::unique_ptr<via::Vipl> vipl_;
  via::CqId recv_cq_ = via::kInvalidCq;
  via::CqId send_cq_ = via::kInvalidCq;
  std::vector<Conn> conns_;
  std::vector<std::uint32_t> free_conns_;
  std::map<via::ViId, std::uint32_t> vi_to_conn_;
  std::vector<via::ViId> free_vis_;
  std::vector<simkern::VAddr> free_rings_;
  std::vector<simkern::VAddr> free_windows_;
  std::uint64_t next_req_id_ = 1;
  std::uint32_t next_gen_ = 1;
  std::uint32_t open_conns_ = 0;
  std::vector<via::Nic::CqEntry> harvest_buf_;
  std::vector<std::byte> value_buf_;
};

}  // namespace vialock::svc
