#include "svc/kv_client.h"

#include <array>
#include <cassert>

#include "fault/fault.h"
#include "msg/wire.h"
#include "svc/kv_server.h"

namespace vialock::svc {

using simkern::VAddr;
using via::MemHandle;

namespace {

[[nodiscard]] constexpr std::uint64_t cookie_of(std::uint32_t gen,
                                                std::uint32_t slot) {
  return (static_cast<std::uint64_t>(gen & 0x7FFFFFFFu) << 32) | slot;
}

[[nodiscard]] constexpr bool gen_matches(std::uint64_t cookie,
                                         std::uint32_t gen) {
  return (cookie >> 32) == (gen & 0x7FFFFFFFu);
}

[[nodiscard]] constexpr std::uint64_t page_round(std::uint64_t bytes) {
  return (bytes + simkern::kPageSize - 1) & ~simkern::kPageMask;
}

}  // namespace

KvClient::KvClient(via::Cluster& cluster, via::NodeId node,
                   std::string task_name, KvClientConfig config)
    : cluster_(cluster),
      node_(cluster.node(node)),
      node_id_(node),
      task_name_(std::move(task_name)),
      config_(config) {}

KvClient::~KvClient() {
  for (Conn& c : conns_) {
    if (c.open) teardown_conn(c);
  }
  if (pid_ != simkern::kInvalidPid) node_.agent().release_tenant(pid_);
}

KStatus KvClient::open() {
  if (config_.window == 0 || config_.slot_size < sizeof(KvRequest) ||
      config_.slot_size < sizeof(KvResponse) || config_.completion_batch == 0)
    return KStatus::Inval;
  pid_ = node_.kernel().create_task(task_name_);
  vipl_ = std::make_unique<via::Vipl>(node_.agent(), pid_);
  if (const KStatus st = vipl_->open(); !ok(st)) return st;
  recv_cq_ = node_.nic().create_cq();
  send_cq_ = node_.nic().create_cq();
  return KStatus::Ok;
}

KStatus KvClient::connect(KvServer& server, std::uint32_t tenant,
                          std::uint32_t& conn_out) {
  conn_out = UINT32_MAX;
  if (!vipl_) return KStatus::Proto;
  if (config_.window > server.config().recv_credits) return KStatus::Inval;

  via::ViId vi = via::kInvalidVi;
  bool fresh_vi = false;
  if (!free_vis_.empty()) {
    vi = free_vis_.back();
    free_vis_.pop_back();
  } else {
    if (const KStatus st = vipl_->create_vi(vi); !ok(st)) return st;
    fresh_vi = true;
  }

  VAddr rings = 0;
  if (!free_rings_.empty()) {
    rings = free_rings_.back();
    free_rings_.pop_back();
  } else {
    const auto a = node_.kernel().sys_mmap_anon(
        pid_, page_round(ring_bytes()),
        simkern::VmFlag::Read | simkern::VmFlag::Write);
    if (!a) {
      free_vis_.push_back(vi);
      return KStatus::NoMem;
    }
    rings = *a;
  }
  VAddr window = 0;
  if (!free_windows_.empty()) {
    window = free_windows_.back();
    free_windows_.pop_back();
  } else {
    const auto a = node_.kernel().sys_mmap_anon(
        pid_, page_round(window_bytes()),
        simkern::VmFlag::Read | simkern::VmFlag::Write);
    if (!a) {
      free_vis_.push_back(vi);
      free_rings_.push_back(rings);
      return KStatus::NoMem;
    }
    window = *a;
  }

  const auto recycle = [&](const char*) {
    free_vis_.push_back(vi);
    free_rings_.push_back(rings);
    free_windows_.push_back(window);
  };

  MemHandle rings_mh;
  if (const KStatus st = vipl_->register_mem(
          rings, ring_bytes(), rings_mh,
          via::KernelAgent::RegisterOptions::send_recv_only());
      !ok(st)) {
    recycle("rings");
    return st;
  }
  // The value window takes inbound RDMA writes (GET) and outbound reads
  // (PUT) - fully RDMA-enabled, the "communicated out of band" region.
  MemHandle window_mh;
  if (const KStatus st = vipl_->register_mem(window, window_bytes(), window_mh);
      !ok(st)) {
    (void)vipl_->deregister_mem(rings_mh);
    recycle("window");
    return st;
  }

  if (fresh_vi) {
    if (!ok(vipl_->attach_recv_cq(vi, recv_cq_)) ||
        !ok(vipl_->attach_send_cq(vi, send_cq_))) {
      (void)vipl_->deregister_mem(rings_mh);
      (void)vipl_->deregister_mem(window_mh);
      recycle("cq");
      return KStatus::Inval;
    }
  }

  std::uint32_t id;
  if (!free_conns_.empty()) {
    id = free_conns_.back();
    free_conns_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(conns_.size());
    conns_.emplace_back();
  }
  Conn& c = conns_[id];
  c = Conn{};
  c.gen = next_gen_++;
  c.vi = vi;
  c.rings = rings;
  c.rings_mh = rings_mh;
  c.window = window;
  c.window_mh = window_mh;
  c.slot_busy.assign(config_.window, false);

  // Post the response receives before the server can reply - the whole
  // window armed with one gather-list doorbell.
  {
    std::vector<via::Vipl::RecvPost> posts;
    posts.reserve(config_.window);
    for (std::uint32_t i = 0; i < config_.window; ++i) {
      posts.push_back(
          {c.rings_mh, rsp_slot(c, i), config_.slot_size, cookie_of(c.gen, i)});
    }
    (void)vipl_->post_recv_batch(c.vi, posts);
  }

  std::uint32_t server_conn = 0;
  if (const KStatus st = server.accept(tenant, node_id_, vi, server_conn);
      !ok(st)) {
    // Shed or rejected: take the posted recvs back and recycle everything.
    node_.nic().vi(vi).recv_queue.clear();
    (void)vipl_->deregister_mem(rings_mh);
    (void)vipl_->deregister_mem(window_mh);
    recycle("accept");
    c = Conn{};
    free_conns_.push_back(id);
    return st;
  }
  c.open = true;
  c.server_conn = server_conn;
  vi_to_conn_[vi] = id;
  ++stats_.conns_opened;
  ++open_conns_;
  conn_out = id;
  return KStatus::Ok;
}

void KvClient::teardown_conn(Conn& c) {
  via::Vi& v = node_.nic().vi(c.vi);
  if (v.connected()) (void)cluster_.fabric().disconnect(node_id_, c.vi);
  v.recv_queue.clear();
  v.send_completed.clear();
  v.recv_completed.clear();
  (void)vipl_->deregister_mem(c.rings_mh);
  (void)vipl_->deregister_mem(c.window_mh);
  stats_.requests_lost += c.pending.size();
  vi_to_conn_.erase(c.vi);
  free_vis_.push_back(c.vi);
  free_rings_.push_back(c.rings);
  free_windows_.push_back(c.window);
  free_conns_.push_back(static_cast<std::uint32_t>(&c - conns_.data()));
  c.open = false;
  --open_conns_;
}

KStatus KvClient::close(std::uint32_t conn) {
  if (conn >= conns_.size() || !conns_[conn].open) return KStatus::Inval;
  teardown_conn(conns_[conn]);
  ++stats_.conns_closed;
  return KStatus::Ok;
}

KStatus KvClient::abandon(std::uint32_t conn) {
  if (conn >= conns_.size() || !conns_[conn].open) return KStatus::Inval;
  teardown_conn(conns_[conn]);
  ++stats_.conns_abandoned;
  return KStatus::Ok;
}

bool KvClient::can_issue(std::uint32_t conn) const {
  return conn < conns_.size() && conns_[conn].open &&
         conns_[conn].inflight < config_.window;
}

std::uint32_t KvClient::free_slot(const Conn& c) const {
  for (std::uint32_t i = 0; i < config_.window; ++i) {
    if (!c.slot_busy[i]) return i;
  }
  return config_.window;
}

KStatus KvClient::stage(std::uint32_t conn, KvRequest req,
                        std::span<const std::byte> inline_value,
                        std::uint64_t& req_id_out) {
  Conn& c = conns_[conn];
  const std::uint32_t slot = free_slot(c);
  if (slot == config_.window) return KStatus::Busy;

  req.req_id = next_req_id_++;
  if (req.rendezvous) {
    req.window = c.window_mh;
    req.window_addr = win_slot(c, slot);
  }

  std::array<std::byte, sizeof(KvRequest)> hdr{};
  static_cast<void>(msg::wire::store_pod(std::span<std::byte>(hdr), req));
  const VAddr addr = req_slot(c, slot);
  if (!ok(node_.kernel().write_user(pid_, addr, hdr))) return KStatus::Fault;
  if (!inline_value.empty()) {
    if (!ok(node_.kernel().write_user(pid_, addr + sizeof(KvRequest),
                                      inline_value)))
      return KStatus::Fault;
  }

  c.staged.push_back(via::Vipl::SendPost{
      c.rings_mh, addr,
      static_cast<std::uint32_t>(sizeof(KvRequest) + inline_value.size()),
      cookie_of(c.gen, slot)});
  c.slot_busy[slot] = true;
  ++c.inflight;
  c.pending[req.req_id] =
      Pending{slot, req.op, req.key, req.rendezvous != 0};
  req_id_out = req.req_id;
  return KStatus::Ok;
}

KStatus KvClient::put(std::uint32_t conn, std::uint64_t key,
                      std::span<const std::byte> value,
                      std::uint64_t& req_id_out) {
  req_id_out = 0;
  if (!can_issue(conn)) return KStatus::Busy;
  if (value.empty()) return KStatus::Inval;

  KvRequest req;
  req.op = KvOp::Put;
  req.key = key;
  req.value_len = static_cast<std::uint32_t>(value.size());
  req.value_crc = fault::checksum32(value);

  const bool inline_ok =
      value.size() <= config_.inline_threshold &&
      sizeof(KvRequest) + value.size() <= config_.slot_size;
  if (inline_ok) {
    if (const KStatus st = stage(conn, req, value, req_id_out); !ok(st))
      return st;
    stats_.inline_bytes += value.size();
  } else {
    if (value.size() > config_.value_window_bytes) return KStatus::Inval;
    req.rendezvous = 1;
    // The value goes into this slot's window for the server to RDMA-read.
    // stage() picks the slot, so write the bytes after it succeeds.
    if (const KStatus st = stage(conn, req, {}, req_id_out); !ok(st))
      return st;
    const Conn& c = conns_[conn];
    const std::uint32_t slot = c.pending.at(req_id_out).slot;
    if (!ok(node_.kernel().write_user(pid_, win_slot(c, slot), value)))
      return KStatus::Fault;
    stats_.rendezvous_bytes += value.size();
  }
  ++stats_.puts;
  return KStatus::Ok;
}

KStatus KvClient::get(std::uint32_t conn, std::uint64_t key,
                      std::uint64_t& req_id_out) {
  req_id_out = 0;
  if (!can_issue(conn)) return KStatus::Busy;
  KvRequest req;
  req.op = KvOp::Get;
  req.key = key;
  // A large value lands in the slot's window; advertise its capacity.
  req.value_len = config_.value_window_bytes;
  req.rendezvous = 1;  // window available - the server picks the path
  if (const KStatus st = stage(conn, req, {}, req_id_out); !ok(st)) return st;
  ++stats_.gets;
  return KStatus::Ok;
}

std::uint32_t KvClient::flush(std::uint32_t conn) {
  if (conn >= conns_.size() || !conns_[conn].open) return 0;
  Conn& c = conns_[conn];
  if (c.staged.empty()) return 0;
  const auto n = static_cast<std::uint32_t>(c.staged.size());
  if (n == 1) {
    const via::Vipl::SendPost& p = c.staged.front();
    (void)vipl_->post_send(c.vi, p.mh, p.addr, p.len, p.cookie);
  } else {
    (void)vipl_->post_send_batch(c.vi, c.staged);
    ++stats_.doorbell_flushes;
  }
  c.staged.clear();
  return n;
}

std::uint32_t KvClient::harvest_sends() {
  harvest_buf_.clear();
  const std::uint32_t n = node_.nic().poll_cq_batch(
      send_cq_, config_.completion_batch, harvest_buf_);
  for (const via::Nic::CqEntry& e : harvest_buf_) {
    if (e.desc.status == via::DescStatus::Done) continue;
    ++stats_.send_errors;
    const auto it = vi_to_conn_.find(e.vi);
    if (it == vi_to_conn_.end()) continue;
    Conn& c = conns_[it->second];
    if (c.open && gen_matches(e.desc.cookie, c.gen)) ++stats_.broken_conns;
  }
  return n;
}

std::uint32_t KvClient::harvest(std::vector<KvResult>& out) {
  (void)harvest_sends();
  harvest_buf_.clear();
  (void)node_.nic().poll_cq_batch(recv_cq_, config_.completion_batch,
                                  harvest_buf_);
  std::uint32_t produced = 0;
  for (const via::Nic::CqEntry& e : harvest_buf_) {
    const auto ci = vi_to_conn_.find(e.vi);
    if (ci == vi_to_conn_.end()) {
      ++stats_.stale_completions;
      continue;
    }
    Conn& c = conns_[ci->second];
    if (!c.open || !gen_matches(e.desc.cookie, c.gen) || !e.desc.done_ok()) {
      ++stats_.stale_completions;
      continue;
    }
    const auto rslot = static_cast<std::uint32_t>(e.desc.cookie & 0xFFFFFFFFu);
    const VAddr raddr = rsp_slot(c, rslot);

    KvResponse rsp;
    std::array<std::byte, sizeof(KvResponse)> hdr{};
    const bool parsed =
        e.desc.transferred >= sizeof(KvResponse) &&
        ok(node_.kernel().read_user(pid_, raddr, hdr)) &&
        msg::wire::load_pod(hdr, rsp) && rsp.magic == kRspMagic;
    // Return the response credit regardless of what was in the slot.
    (void)vipl_->post_recv(c.vi, c.rings_mh, raddr, config_.slot_size,
                           cookie_of(c.gen, rslot));
    if (!parsed) {
      ++stats_.bad_responses;
      continue;
    }
    const auto pit = c.pending.find(rsp.req_id);
    if (pit == c.pending.end()) {
      ++stats_.bad_responses;
      continue;
    }
    const Pending p = pit->second;
    c.pending.erase(pit);
    c.slot_busy[p.slot] = false;
    if (c.inflight) --c.inflight;

    KvResult r;
    r.req_id = rsp.req_id;
    r.key = p.key;
    r.op = p.op;
    r.status = rsp.status;
    r.rendezvous = rsp.rendezvous != 0;
    r.value_len = rsp.value_len;
    r.value_crc = rsp.value_crc;
    // End-to-end integrity: recompute the checksum over the bytes as they
    // arrived - inline behind the header, or RDMA-written into the window.
    if (p.op == KvOp::Get && rsp.status == KvStatus::Ok) {
      const VAddr vaddr = rsp.rendezvous ? win_slot(c, p.slot)
                                         : raddr + sizeof(KvResponse);
      value_buf_.resize(rsp.value_len);
      r.data_ok = ok(node_.kernel().read_user(pid_, vaddr, value_buf_)) &&
                  fault::checksum32(value_buf_) == rsp.value_crc;
      if (!r.data_ok) ++stats_.data_corrupt;
      if (rsp.rendezvous)
        stats_.rendezvous_bytes += rsp.value_len;
      else
        stats_.inline_bytes += rsp.value_len;
    }
    ++stats_.responses;
    out.push_back(r);
    ++produced;
  }
  return produced;
}

void KvClient::fill_value(std::span<std::byte> out, std::uint64_t key,
                          std::uint64_t seed) {
  // SplitMix64-flavoured stream: reproducible on any host, cheap to regen.
  std::uint64_t x = seed ^ (key * 0x9E3779B97F4A7C15ULL);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i % 8 == 0) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      x = z ^ (z >> 31);
    }
    out[i] = static_cast<std::byte>((x >> ((i % 8) * 8)) & 0xFF);
  }
}

}  // namespace vialock::svc
