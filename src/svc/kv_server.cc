#include "svc/kv_server.h"

#include <array>
#include <cassert>

#include "fault/fault.h"
#include "msg/wire.h"
#include "util/clock.h"

namespace vialock::svc {

using simkern::VAddr;
using via::MemHandle;

namespace {

/// Cookie layout: bit 63 marks an RDMA leg (keyed by sequence); replies and
/// posted request recvs carry (generation << 32 | slot) so a completion of a
/// dead connection's previous incarnation is recognisable on a reused VI.
inline constexpr std::uint64_t kRdmaBit = 1ULL << 63;

[[nodiscard]] constexpr std::uint64_t cookie_of(std::uint32_t gen,
                                                std::uint32_t slot) {
  return (static_cast<std::uint64_t>(gen & 0x7FFFFFFFu) << 32) | slot;
}

[[nodiscard]] constexpr bool gen_matches(std::uint64_t cookie,
                                         std::uint32_t gen) {
  return (cookie >> 32) == (gen & 0x7FFFFFFFu);
}

[[nodiscard]] constexpr std::uint64_t page_round(std::uint64_t bytes) {
  return (bytes + simkern::kPageSize - 1) & ~simkern::kPageMask;
}

}  // namespace

KvServer::KvServer(via::Cluster& cluster, via::NodeId node,
                   KvServerConfig config)
    : cluster_(cluster),
      node_(cluster.node(node)),
      node_id_(node),
      config_(config),
      op_ns_(node_.kernel().metrics().histogram("svc.kv.op_ns")) {
  node_.kernel().metrics().register_source("svc", this, [this](
                                                           obs::MetricSink& s) {
    s.counter("conns_accepted", stats_.conns_accepted);
    s.counter("conns_shed", stats_.conns_shed);
    s.counter("conns_closed", stats_.conns_closed);
    s.counter("conn_abandoned", stats_.conns_abandoned);
    s.counter("admission_rejected", stats_.admission_rejected);
    s.counter("requests", stats_.requests);
    s.counter("gets", stats_.gets);
    s.counter("puts", stats_.puts);
    s.counter("not_found", stats_.not_found);
    s.counter("bad_requests", stats_.bad_requests);
    s.counter("corrupt_payloads", stats_.corrupt_payloads);
    s.counter("arena_full", stats_.arena_full);
    s.counter("inline_bytes", stats_.inline_bytes);
    s.counter("eager_copies", stats_.eager_copies);
    s.counter("rendezvous_ops", stats_.rendezvous_ops);
    s.counter("rendezvous_bytes", stats_.rendezvous_bytes);
    s.counter("rendezvous_failed", stats_.rendezvous_failed);
    s.counter("batches", stats_.batches);
    s.counter("batched_completions", stats_.batched_completions);
    s.counter("batched_replies", stats_.batched_replies);
    s.counter("requests_dropped", stats_.requests_dropped);
    s.counter("send_errors", stats_.send_errors);
    s.gauge("open_conns", open_conns_);
    // SLO-relevant backpressure gauges: replies posted but not yet seen
    // complete (pipeline depth the watchdogs track alongside op_ns.p99),
    // and how much of the tenant value arenas is bump-allocated.
    std::uint64_t inflight = 0;
    for (const Conn& c : conns_)
      if (c.open) inflight += c.rsp_inflight;
    s.gauge("rsp_inflight", inflight);
    std::uint64_t arena_used = 0;
    for (const auto& t : tenants_) arena_used += t->arena_off;
    s.gauge("arena_used_bytes", arena_used);
  });
}

KvServer::~KvServer() {
  shutdown();
  node_.kernel().metrics().unregister_source("svc", this);
}

KStatus KvServer::init() {
  if (config_.recv_credits == 0 || config_.completion_batch == 0)
    return KStatus::Inval;
  if (config_.slot_size < sizeof(KvRequest) ||
      config_.slot_size < sizeof(KvResponse))
    return KStatus::Inval;
  if (config_.inline_threshold > inline_capacity()) return KStatus::Inval;
  recv_cq_ = node_.nic().create_cq();
  send_cq_ = node_.nic().create_cq();
  return KStatus::Ok;
}

std::uint32_t KvServer::inline_capacity() const {
  const auto hdr = static_cast<std::uint32_t>(
      std::max(sizeof(KvRequest), sizeof(KvResponse)));
  return config_.slot_size > hdr ? config_.slot_size - hdr : 0;
}

std::uint32_t KvServer::add_tenant(const TenantConfig& cfg) {
  auto t = std::make_unique<Tenant>();
  t->name = cfg.name;
  t->tier = cfg.tier;
  t->pid = node_.kernel().create_task("kv." + cfg.name);
  t->vipl = std::make_unique<via::Vipl>(node_.agent(), t->pid);
  const KStatus ost = t->vipl->open();
  assert(ok(ost));
  (void)ost;
  if (auto* gov = node_.governor())
    gov->set_tenant(t->pid, cfg.quota_pages, cfg.tier);
  const auto arena = node_.kernel().sys_mmap_anon(
      t->pid, page_round(config_.arena_bytes),
      simkern::VmFlag::Read | simkern::VmFlag::Write);
  t->arena = arena.value_or(0);
  core::RegistrationCache::Config cc;
  cc.policy = config_.cache_policy;
  cc.max_idle = config_.cache_max_idle;
  cc.governor = node_.governor();
  t->cache = std::make_unique<core::RegistrationCache>(*t->vipl, cc);
  tenants_.push_back(std::move(t));
  return static_cast<std::uint32_t>(tenants_.size() - 1);
}

KStatus KvServer::accept(std::uint32_t tenant, via::NodeId client_node,
                         via::ViId client_vi, std::uint32_t& conn_out) {
  conn_out = UINT32_MAX;
  if (shut_down_ || tenant >= tenants_.size()) return KStatus::Inval;
  Tenant& t = *tenants_[tenant];

  // Admission probe before any registration work: a BestEffort tenant whose
  // headroom cannot cover the slot rings is shed here, cheaply. Guaranteed
  // tenants proceed - the charge path drains and reclaims on their behalf.
  const auto ring_pages =
      static_cast<std::uint32_t>(page_round(ring_bytes()) / simkern::kPageSize);
  if (auto* gov = node_.governor();
      gov && t.tier == pinmgr::QosTier::BestEffort &&
      gov->admission_headroom(t.pid) < ring_pages) {
    ++stats_.conns_shed;
    return KStatus::Again;
  }

  // VI: recycle a disconnected one (the NIC never destroys VIs) or mint one.
  via::ViId vi = via::kInvalidVi;
  bool fresh_vi = false;
  if (!t.free_vis.empty()) {
    vi = t.free_vis.back();
    t.free_vis.pop_back();
  } else {
    if (const KStatus st = t.vipl->create_vi(vi); !ok(st)) return st;
    fresh_vi = true;
  }

  // Slot-ring memory: recycled across churn, mapped once per high-water conn.
  VAddr rings = 0;
  bool fresh_rings = false;
  if (!t.free_rings.empty()) {
    rings = t.free_rings.back();
    t.free_rings.pop_back();
  } else {
    const auto a = node_.kernel().sys_mmap_anon(
        t.pid, page_round(ring_bytes()),
        simkern::VmFlag::Read | simkern::VmFlag::Write);
    if (!a) {
      t.free_vis.push_back(vi);
      return KStatus::NoMem;
    }
    rings = *a;
    fresh_rings = true;
  }

  // The registration is the governed step: this is where quota/ceiling bite.
  MemHandle mh;
  if (const KStatus st =
          t.vipl->register_mem(rings, ring_bytes(), mh,
                               via::KernelAgent::RegisterOptions::send_recv_only());
      !ok(st)) {
    ++stats_.admission_rejected;
    t.free_vis.push_back(vi);
    t.free_rings.push_back(rings);
    return st;
  }
  (void)fresh_rings;

  if (fresh_vi) {
    if (!ok(t.vipl->attach_recv_cq(vi, recv_cq_)) ||
        !ok(t.vipl->attach_send_cq(vi, send_cq_))) {
      (void)t.vipl->deregister_mem(mh);
      t.free_vis.push_back(vi);
      t.free_rings.push_back(rings);
      return KStatus::Inval;
    }
  }

  if (const KStatus st =
          cluster_.fabric().connect(node_id_, vi, client_node, client_vi);
      !ok(st)) {
    (void)t.vipl->deregister_mem(mh);
    t.free_vis.push_back(vi);
    t.free_rings.push_back(rings);
    return st;
  }

  std::uint32_t id;
  if (!free_conns_.empty()) {
    id = free_conns_.back();
    free_conns_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(conns_.size());
    conns_.emplace_back();
  }
  Conn& c = conns_[id];
  c = Conn{};
  c.open = true;
  c.tenant = tenant;
  c.gen = next_gen_++;
  c.vi = vi;
  c.rings = rings;
  c.rings_mh = mh;
  vi_to_conn_[vi] = id;
  {
    // Arm the whole request ring with one gather-list doorbell.
    std::vector<via::Vipl::RecvPost> posts;
    posts.reserve(config_.recv_credits);
    for (std::uint32_t i = 0; i < config_.recv_credits; ++i) {
      posts.push_back(
          {c.rings_mh, req_slot(c, i), config_.slot_size, cookie_of(c.gen, i)});
    }
    (void)tenant_of(c).vipl->post_recv_batch(c.vi, posts);
  }

  ++stats_.conns_accepted;
  ++open_conns_;
  conn_out = id;
  return KStatus::Ok;
}

void KvServer::repost(Conn& c, std::uint32_t slot) {
  Tenant& t = tenant_of(c);
  (void)t.vipl->post_recv(c.vi, c.rings_mh, req_slot(c, slot),
                          config_.slot_size, cookie_of(c.gen, slot));
}

KStatus KvServer::close(std::uint32_t conn) {
  if (conn >= conns_.size() || !conns_[conn].open) return KStatus::Inval;
  teardown_conn(conns_[conn], /*abrupt=*/false);
  ++stats_.conns_closed;
  return KStatus::Ok;
}

void KvServer::abandon(std::uint32_t conn) {
  if (conn >= conns_.size() || !conns_[conn].open) return;
  teardown_conn(conns_[conn], /*abrupt=*/true);
  ++stats_.conns_abandoned;
}

void KvServer::teardown_conn(Conn& c, bool abrupt) {
  Tenant& t = tenant_of(c);
  via::Vi& v = node_.nic().vi(c.vi);
  if (v.connected()) (void)cluster_.fabric().disconnect(node_id_, c.vi);
  // Discard the incarnation's posted descriptors and per-VI completions: a
  // reused VI must not scatter a new peer's data into deregistered slots.
  v.recv_queue.clear();
  v.send_completed.clear();
  v.recv_completed.clear();
  // Eager-slot release. Under a lazy governor the dereg may be deferred -
  // an *abrupt* teardown flushes so the dead connection's pins and charge
  // are gone now, not at the next batch boundary.
  (void)t.vipl->deregister_mem(c.rings_mh);
  if (abrupt) {
    if (auto* gov = node_.governor()) (void)gov->flush();
  }
  vi_to_conn_.erase(c.vi);
  free_conns_.push_back(
      static_cast<std::uint32_t>(&c - conns_.data()));
  t.free_vis.push_back(c.vi);
  t.free_rings.push_back(c.rings);
  c.open = false;
  --open_conns_;
}

KvServer::Conn* KvServer::conn_for(via::ViId vi, std::uint64_t cookie) {
  const auto it = vi_to_conn_.find(vi);
  if (it == vi_to_conn_.end()) return nullptr;
  Conn& c = conns_[it->second];
  if (!c.open || !gen_matches(cookie, c.gen)) return nullptr;
  return &c;
}

std::uint32_t KvServer::service() {
  std::uint32_t harvested = 0;
  return service_once(harvested);
}

std::uint32_t KvServer::service_once(std::uint32_t& harvested) {
  harvest_buf_.clear();
  harvested = node_.nic().poll_cq_batch(recv_cq_, config_.completion_batch,
                                        harvest_buf_);
  if (harvested == 0) return 0;
  ++stats_.batches;
  stats_.batched_completions += harvested;

  std::vector<StagedReply> replies;
  replies.reserve(harvested);
  std::uint32_t executed = 0;
  for (const via::Nic::CqEntry& e : harvest_buf_) {
    Conn* c = conn_for(e.vi, e.desc.cookie);
    if (c == nullptr || !e.desc.done_ok()) {
      ++stats_.requests_dropped;
      continue;
    }
    const auto slot = static_cast<std::uint32_t>(e.desc.cookie & 0xFFFFFFFFu);
    const auto conn_id = static_cast<std::uint32_t>(c - conns_.data());
    if (execute(conn_id, slot, e.desc.transferred, replies)) ++executed;
  }
  flush_replies(replies);
  (void)harvest_sends();
  return executed;
}

void KvServer::drain() {
  for (;;) {
    std::uint32_t harvested = 0;
    (void)service_once(harvested);
    const std::uint32_t sends = harvest_sends();
    if (harvested == 0 && sends == 0) break;
  }
}

bool KvServer::execute(std::uint32_t conn_id, std::uint32_t slot,
                       std::uint32_t transferred,
                       std::vector<StagedReply>& replies) {
  Conn& c = conns_[conn_id];
  Tenant& t = tenant_of(c);
  const VirtualStopwatch sw(cluster_.clock());

  KvRequest req;
  std::array<std::byte, sizeof(KvRequest)> hdr{};
  const bool parsed =
      transferred >= sizeof(KvRequest) &&
      ok(node_.kernel().read_user(t.pid, req_slot(c, slot), hdr)) &&
      msg::wire::load_pod(hdr, req) && req.magic == kReqMagic;
  if (!parsed) {
    // Unparseable header: no trustworthy req_id to answer to. Count it,
    // return the credit, and let the client's pipeline notice the gap.
    ++stats_.bad_requests;
    repost(c, slot);
    return false;
  }

  ++stats_.requests;
  KvResponse rsp;
  rsp.req_id = req.req_id;

  // Reply slot (the send CQ recycles them; sends complete synchronously).
  if (c.rsp_inflight >= config_.recv_credits) (void)harvest_sends();
  const std::uint32_t rsp_idx = c.next_rsp;
  c.next_rsp = (c.next_rsp + 1) % config_.recv_credits;
  ++c.rsp_inflight;
  const VAddr rsp_addr = rsp_slot(c, rsp_idx);

  switch (req.op) {
    case KvOp::Get:
      ++stats_.gets;
      do_get(c, req, rsp, rsp_addr);
      break;
    case KvOp::Put:
      ++stats_.puts;
      do_put(c, req, req_slot(c, slot), rsp);
      break;
    default:
      ++stats_.bad_requests;
      rsp.status = KvStatus::BadRequest;
      break;
  }

  std::array<std::byte, sizeof(KvResponse)> out{};
  static_cast<void>(msg::wire::store_pod(std::span<std::byte>(out), rsp));
  (void)node_.kernel().write_user(t.pid, rsp_addr, out);
  const std::uint32_t inline_len =
      (!rsp.rendezvous && rsp.status == KvStatus::Ok && req.op == KvOp::Get)
          ? rsp.value_len
          : 0;
  replies.push_back(StagedReply{conn_id, c.gen, rsp_idx,
                                static_cast<std::uint32_t>(sizeof(KvResponse)) +
                                    inline_len});

  repost(c, slot);  // the request credit returns before the reply leaves
  op_ns_.add(static_cast<std::uint64_t>(sw.elapsed()));
  return true;
}

void KvServer::do_get(Conn& c, const KvRequest& req, KvResponse& rsp,
                      VAddr rsp_addr) {
  Tenant& t = tenant_of(c);
  const auto it = t.store.find(req.key);
  if (it == t.store.end()) {
    ++stats_.not_found;
    rsp.status = KvStatus::NotFound;
    return;
  }
  const Value& v = it->second;
  rsp.value_len = v.len;
  rsp.value_crc = v.crc;

  if (v.len <= config_.inline_threshold) {
    // Eager path: arena -> reply slot copy, value rides inline.
    value_buf_.resize(v.len);
    if (!ok(node_.kernel().read_user(t.pid, v.addr, value_buf_)) ||
        fault::checksum32(value_buf_) != v.crc) {
      ++stats_.corrupt_payloads;
      rsp.status = KvStatus::Corrupt;
      return;
    }
    (void)node_.kernel().write_user(t.pid, rsp_addr + sizeof(KvResponse),
                                    value_buf_);
    stats_.inline_bytes += v.len;
    ++stats_.eager_copies;
    rsp.status = KvStatus::Ok;
    return;
  }

  // Rendezvous: one RDMA write from the arena into the client's window -
  // the value bytes never touch an eager slot.
  if (!req.window.valid() || v.len > req.value_len) {
    rsp.status = KvStatus::ValueTooLarge;
    return;
  }
  rsp.rendezvous = 1;
  MemHandle mh;
  if (!ok(t.cache->acquire(v.addr, v.len, mh))) {
    ++stats_.rendezvous_failed;
    rsp.status = KvStatus::RendezvousFailed;
    return;
  }
  const via::DescStatus st = run_rdma(c, /*write=*/true, mh, v.addr, v.len,
                                      req.window, req.window_addr);
  t.cache->release(mh);
  if (st != via::DescStatus::Done) {
    ++stats_.rendezvous_failed;
    rsp.status = KvStatus::RendezvousFailed;
    return;
  }
  ++stats_.rendezvous_ops;
  stats_.rendezvous_bytes += v.len;
  rsp.status = KvStatus::Ok;
}

void KvServer::do_put(Conn& c, const KvRequest& req, VAddr slot_addr,
                      KvResponse& rsp) {
  Tenant& t = tenant_of(c);
  rsp.value_len = req.value_len;
  if (req.value_len == 0 || req.value_len > config_.arena_bytes) {
    ++stats_.bad_requests;
    rsp.status = KvStatus::BadRequest;
    return;
  }

  if (!req.rendezvous) {
    // Eager path: the value arrived inline behind the header.
    if (sizeof(KvRequest) + req.value_len > config_.slot_size) {
      ++stats_.bad_requests;
      rsp.status = KvStatus::BadRequest;
      return;
    }
    value_buf_.resize(req.value_len);
    if (!ok(node_.kernel().read_user(t.pid, slot_addr + sizeof(KvRequest),
                                     value_buf_))) {
      ++stats_.bad_requests;
      rsp.status = KvStatus::BadRequest;
      return;
    }
    if (fault::checksum32(value_buf_) != req.value_crc) {
      ++stats_.corrupt_payloads;
      rsp.status = KvStatus::Corrupt;
      return;
    }
    // Verified before commit: an in-place overwrite can reuse the old slot.
    const VAddr dst = arena_alloc(t, req.key, req.value_len,
                                  /*allow_reuse=*/true);
    if (dst == 0) {
      ++stats_.arena_full;
      rsp.status = KvStatus::NoSpace;
      return;
    }
    (void)node_.kernel().write_user(t.pid, dst, value_buf_);
    t.store[req.key] = Value{dst, req.value_len, req.value_crc};
    stats_.inline_bytes += req.value_len;
    ++stats_.eager_copies;
    rsp.status = KvStatus::Ok;
    return;
  }

  // Rendezvous: one RDMA read from the client's window into fresh arena
  // space (never in-place - a failed transfer must not damage the old
  // value), committed only after the checksum verifies.
  if (!req.window.valid()) {
    ++stats_.bad_requests;
    rsp.status = KvStatus::BadRequest;
    return;
  }
  rsp.rendezvous = 1;
  const VAddr dst = arena_alloc(t, req.key, req.value_len,
                                /*allow_reuse=*/false);
  if (dst == 0) {
    ++stats_.arena_full;
    rsp.status = KvStatus::NoSpace;
    return;
  }
  MemHandle mh;
  if (!ok(t.cache->acquire(dst, req.value_len, mh))) {
    // PinAdmission rejection mid-transfer lands here: nothing was moved,
    // nothing stays charged - the request fails cleanly.
    ++stats_.rendezvous_failed;
    rsp.status = KvStatus::RendezvousFailed;
    return;
  }
  const via::DescStatus st = run_rdma(c, /*write=*/false, mh, dst,
                                      req.value_len, req.window,
                                      req.window_addr);
  if (st != via::DescStatus::Done) {
    t.cache->release(mh);
    ++stats_.rendezvous_failed;
    rsp.status = KvStatus::RendezvousFailed;
    return;
  }
  value_buf_.resize(req.value_len);
  if (!ok(node_.kernel().read_user(t.pid, dst, value_buf_)) ||
      fault::checksum32(value_buf_) != req.value_crc) {
    // Wire/DMA damage mid-rendezvous: detected end-to-end, not committed.
    t.cache->release(mh);
    ++stats_.corrupt_payloads;
    rsp.status = KvStatus::Corrupt;
    return;
  }
  t.cache->release(mh);  // stays cached idle for the next touch of this key
  t.store[req.key] = Value{dst, req.value_len, req.value_crc};
  ++stats_.rendezvous_ops;
  stats_.rendezvous_bytes += req.value_len;
  rsp.status = KvStatus::Ok;
}

VAddr KvServer::arena_alloc(Tenant& t, std::uint64_t key, std::uint32_t len,
                            bool allow_reuse) {
  if (allow_reuse) {
    if (const auto it = t.store.find(key);
        it != t.store.end() && it->second.len >= len)
      return it->second.addr;
  }
  if (t.arena == 0) return 0;
  const std::uint64_t off = (t.arena_off + 63) & ~63ULL;  // cacheline-align
  if (off + len > config_.arena_bytes) return 0;
  t.arena_off = off + len;
  return t.arena + off;
}

via::DescStatus KvServer::run_rdma(Conn& c, bool write,
                                   const MemHandle& local_mh, VAddr local_addr,
                                   std::uint32_t len,
                                   const MemHandle& remote_mh,
                                   VAddr remote_addr) {
  Tenant& t = tenant_of(c);
  const std::uint64_t cookie = kRdmaBit | next_rdma_seq_++;
  const KStatus st =
      write ? t.vipl->rdma_write(c.vi, local_mh, local_addr, len, remote_mh,
                                 remote_addr, cookie)
            : t.vipl->rdma_read(c.vi, local_mh, local_addr, len, remote_mh,
                                remote_addr, cookie);
  if (!ok(st)) return via::DescStatus::ErrProtection;
  // The fabric transmits inline, so the leg's completion is already queued;
  // harvest until it surfaces (earlier reply completions recycle on the way).
  for (;;) {
    if (const auto it = rdma_done_.find(cookie); it != rdma_done_.end()) {
      const via::DescStatus result = it->second;
      rdma_done_.erase(it);
      return result;
    }
    if (harvest_sends() == 0) return via::DescStatus::ErrDisconnected;
  }
}

std::uint32_t KvServer::harvest_sends() {
  send_buf_.clear();
  const std::uint32_t n =
      node_.nic().poll_cq_batch(send_cq_, config_.completion_batch, send_buf_);
  if (n) stats_.batched_completions += n;
  for (const via::Nic::CqEntry& e : send_buf_) {
    if (e.desc.cookie & kRdmaBit) {
      rdma_done_[e.desc.cookie] = e.desc.status;
      if (e.desc.status != via::DescStatus::Done) ++stats_.send_errors;
      continue;
    }
    const auto it = vi_to_conn_.find(e.vi);
    if (it == vi_to_conn_.end()) continue;
    const std::uint32_t conn_id = it->second;
    Conn& c = conns_[conn_id];
    if (!c.open || !gen_matches(e.desc.cookie, c.gen)) continue;
    if (c.rsp_inflight) --c.rsp_inflight;
    if (e.desc.status == via::DescStatus::ErrDisconnected) {
      // The peer vanished mid-pipeline: reclaim everything it held, now.
      ++stats_.send_errors;
      abandon(conn_id);
    } else if (e.desc.status != via::DescStatus::Done) {
      ++stats_.send_errors;
    }
  }
  return n;
}

void KvServer::flush_replies(std::vector<StagedReply>& replies) {
  // Group per connection (ordered - deterministic doorbell order), then ring
  // one doorbell per connection: a burst of replies to one client costs one
  // MMIO write, not one per reply.
  std::map<std::uint32_t, std::vector<const StagedReply*>> by_conn;
  for (const StagedReply& r : replies) {
    Conn& c = conns_[r.conn];
    if (!c.open || c.gen != r.gen) {
      ++stats_.requests_dropped;  // connection died between execute and flush
      continue;
    }
    by_conn[r.conn].push_back(&r);
  }
  for (const auto& [conn_id, list] : by_conn) {
    Conn& c = conns_[conn_id];
    Tenant& t = tenant_of(c);
    if (list.size() == 1) {
      const StagedReply& r = *list.front();
      (void)t.vipl->post_send(c.vi, c.rings_mh, rsp_slot(c, r.slot), r.len,
                              cookie_of(c.gen, r.slot));
    } else {
      std::vector<via::Vipl::SendPost> posts;
      posts.reserve(list.size());
      for (const StagedReply* r : list)
        posts.push_back(via::Vipl::SendPost{c.rings_mh, rsp_slot(c, r->slot),
                                            r->len, cookie_of(c.gen, r->slot)});
      (void)t.vipl->post_send_batch(c.vi, posts);
      stats_.batched_replies += posts.size();
    }
  }
  replies.clear();
}

void KvServer::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  drain();
  for (std::uint32_t id = 0; id < conns_.size(); ++id) {
    if (conns_[id].open) {
      teardown_conn(conns_[id], /*abrupt=*/false);
      ++stats_.conns_closed;
    }
  }
  for (const auto& t : tenants_) t->cache->flush();
  if (auto* gov = node_.governor()) (void)gov->flush();
  for (const auto& t : tenants_) node_.agent().release_tenant(t->pid);
}

}  // namespace vialock::svc
