// kv_server.h - the zero-copy KV/RPC service tier over VIA.
//
// A KvServer is the "thousands of connections" consumer the paper's locking
// mechanism exists for: a storage daemon holding one VI per client
// connection, every connection's request/response slot rings pinned and
// registered, large values moving zero-copy between client windows and the
// per-tenant value arena. Three properties the lower layers provide come
// together here:
//
//   * governed admission - each tenant is a PinGovernor quota subject; the
//     server probes admission_headroom() before doing a new connection's
//     registration work, shedding BestEffort connections under pin pressure
//     while Guaranteed tenants keep their reserved budget (and get
//     cooperative reclaim run on their behalf by the charge path);
//   * batched completions - requests from every connection funnel into one
//     recv CQ drained with poll_cq_batch (one PCI status read per harvest,
//     not per request), and replies to the same VI leave behind a single
//     batched doorbell (post_send_batch) - E18's completion modes, extended
//     to a server that could not afford per-operation MMIO at scale;
//   * zero-copy rendezvous - small values ride inline in the eager slots,
//     large ones move with one RDMA write (GET) / read (PUT) between the
//     client's registered window and the arena, whose extents are registered
//     on the fly through a RegistrationCache ("the buffers must be
//     registered on the fly... remedied by caching registered regions").
//
// Teardown discipline (the part regression tests pin down): close() and
// abandon() release a connection's slot-ring registration eagerly and flush
// the governor's deferred deregistrations, so an abrupt mid-pipeline
// disconnect strands neither pinned frames nor governor charge; stale
// completions of a dead connection are recognised by generation and dropped.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/reg_cache.h"
#include "pinmgr/pin_governor.h"
#include "svc/kv_proto.h"
#include "via/node.h"
#include "via/vipl.h"

namespace vialock::svc {

struct KvServerConfig {
  /// Request/response eager-slot bytes (headers + inline values).
  std::uint32_t slot_size = 512;
  /// Pipeline depth per connection: posted request slots (= response slots).
  std::uint32_t recv_credits = 8;
  /// Max completions drained per CQ harvest (the batch size).
  std::uint32_t completion_batch = 32;
  /// Values of at most this many bytes ride inline; larger ones rendezvous.
  std::uint32_t inline_threshold = 256;
  /// Per-tenant value arena bytes (bump-allocated, slot-reusing overwrite).
  std::uint64_t arena_bytes = 1ULL << 20;
  /// Arena registration cache (the on-the-fly registration story).
  core::EvictionPolicy cache_policy = core::EvictionPolicy::Lru;
  std::size_t cache_max_idle = 256;
};

struct KvServerStats {
  // Connection lifecycle.
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_shed = 0;      ///< BestEffort refused at the headroom probe
  std::uint64_t conns_closed = 0;    ///< graceful close()
  std::uint64_t conns_abandoned = 0; ///< abrupt teardown, resources reclaimed
  std::uint64_t admission_rejected = 0;  ///< ring registration refused
  // Request execution.
  std::uint64_t requests = 0;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t not_found = 0;
  std::uint64_t bad_requests = 0;      ///< header failed magic/length checks
  std::uint64_t corrupt_payloads = 0;  ///< value checksum mismatch
  std::uint64_t arena_full = 0;
  // Data-path byte accounting (the zero-copy evidence).
  std::uint64_t inline_bytes = 0;      ///< value bytes through eager slots
  std::uint64_t eager_copies = 0;      ///< slot<->arena copies performed
  std::uint64_t rendezvous_ops = 0;
  std::uint64_t rendezvous_bytes = 0;  ///< value bytes moved by RDMA
  std::uint64_t rendezvous_failed = 0;
  // Batching.
  std::uint64_t batches = 0;              ///< service cycles that found work
  std::uint64_t batched_completions = 0;  ///< completions drained in batches
  std::uint64_t batched_replies = 0;      ///< replies sent via one doorbell
  // Hygiene.
  std::uint64_t requests_dropped = 0;  ///< stale completions of dead conns
  std::uint64_t send_errors = 0;       ///< reply/RDMA completed with an error
};

class KvServer {
 public:
  struct TenantConfig {
    std::string name = "tenant";
    std::uint32_t quota_pages = 1024;
    pinmgr::QosTier tier = pinmgr::QosTier::BestEffort;
  };

  /// `node` must already be part of `cluster` (its fabric carries the
  /// connections). Call init() before anything else.
  KvServer(via::Cluster& cluster, via::NodeId node, KvServerConfig config);
  ~KvServer();

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  /// Create the shared CQs and validate the configuration.
  [[nodiscard]] KStatus init();

  /// Add a tenant: its server-side process, Vipl, value arena and
  /// registration cache; registers its quota/tier with the node's governor
  /// (when one is enabled). Returns the tenant index.
  [[nodiscard]] std::uint32_t add_tenant(const TenantConfig& cfg);

  /// Accept a connection from `client_vi` on `client_node` into `tenant`.
  /// Probes the governor's admission headroom first: a BestEffort tenant
  /// without room for the slot rings is shed (Again, stats().conns_shed)
  /// before any registration work. On success fills `conn_out`.
  [[nodiscard]] KStatus accept(std::uint32_t tenant, via::NodeId client_node,
                               via::ViId client_vi, std::uint32_t& conn_out);

  /// Graceful teardown: disconnect, deregister the slot rings, recycle the
  /// VI and ring memory.
  [[nodiscard]] KStatus close(std::uint32_t conn);

  /// Abrupt teardown (peer vanished mid-pipeline): like close(), but also
  /// flushes the governor's deferred deregistrations so nothing the dead
  /// connection pinned outlives it, and discards its posted descriptors.
  /// service() invokes this automatically when a reply completes with
  /// ErrDisconnected. Safe on an already-dead connection (no-op).
  void abandon(std::uint32_t conn);

  /// One batched service cycle: harvest up to completion_batch requests from
  /// the shared recv CQ, execute them, send the replies (per-VI batched
  /// doorbells), recycle reply slots from the send CQ. Returns the number of
  /// requests executed.
  std::uint32_t service();

  /// service() until both CQs are empty (end-of-run settling).
  void drain();

  /// Close every connection, flush every tenant's cache and the governor,
  /// release every tenant pid - after this the node audits clean (zero
  /// pinned frames, zero governor charge). Idempotent; the destructor calls
  /// it.
  void shutdown();

  [[nodiscard]] const KvServerStats& stats() const { return stats_; }
  [[nodiscard]] const KvServerConfig& config() const { return config_; }
  [[nodiscard]] via::NodeId node_id() const { return node_id_; }
  [[nodiscard]] std::uint32_t open_conns() const { return open_conns_; }
  [[nodiscard]] simkern::Pid tenant_pid(std::uint32_t tenant) const {
    return tenants_.at(tenant)->pid;
  }
  [[nodiscard]] std::size_t tenant_keys(std::uint32_t tenant) const {
    return tenants_.at(tenant)->store.size();
  }
  /// Largest value the configuration can serve inline.
  [[nodiscard]] std::uint32_t inline_capacity() const;

 private:
  struct Value {
    simkern::VAddr addr = 0;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
  };

  struct Tenant {
    std::string name;
    pinmgr::QosTier tier = pinmgr::QosTier::BestEffort;
    simkern::Pid pid = simkern::kInvalidPid;
    std::unique_ptr<via::Vipl> vipl;
    std::unique_ptr<core::RegistrationCache> cache;
    simkern::VAddr arena = 0;
    std::uint64_t arena_off = 0;  ///< bump pointer
    std::map<std::uint64_t, Value> store;
    // Churn recycling: VIs are NIC-permanent and ring memory stays mapped,
    // so both are free lists rather than ever-growing allocations.
    std::vector<via::ViId> free_vis;
    std::vector<simkern::VAddr> free_rings;
  };

  struct Conn {
    bool open = false;
    std::uint32_t tenant = 0;
    std::uint32_t gen = 0;  ///< distinguishes reincarnations on a reused VI
    via::ViId vi = via::kInvalidVi;
    simkern::VAddr rings = 0;
    via::MemHandle rings_mh;
    std::uint32_t next_rsp = 0;      ///< round-robin reply slot cursor
    std::uint32_t rsp_inflight = 0;  ///< replies posted, completion not seen
  };

  /// A reply staged during a service cycle, flushed per-VI in one doorbell.
  struct StagedReply {
    std::uint32_t conn = 0;
    std::uint32_t gen = 0;  ///< stale replies of a died connection are dropped
    std::uint32_t slot = 0;
    std::uint32_t len = 0;
  };

  [[nodiscard]] Tenant& tenant_of(const Conn& c) { return *tenants_[c.tenant]; }
  [[nodiscard]] simkern::VAddr req_slot(const Conn& c, std::uint32_t i) const {
    return c.rings + static_cast<std::uint64_t>(i) * config_.slot_size;
  }
  [[nodiscard]] simkern::VAddr rsp_slot(const Conn& c, std::uint32_t i) const {
    return req_slot(c, config_.recv_credits + i);
  }
  [[nodiscard]] std::uint64_t ring_bytes() const {
    return 2ULL * config_.recv_credits * config_.slot_size;
  }

  /// Conn for a CQ entry, or nullptr (dead / reincarnated connection).
  [[nodiscard]] Conn* conn_for(via::ViId vi, std::uint64_t cookie);

  /// One service cycle; fills `harvested` with the recv completions drained
  /// (so drain() can tell "no work executed" from "queue empty").
  std::uint32_t service_once(std::uint32_t& harvested);
  /// Re-post the request slot's receive descriptor (returns the credit).
  void repost(Conn& c, std::uint32_t slot);
  /// Execute one request from `slot`; stages the reply. Returns false when
  /// the header was unparseable (no reply possible).
  bool execute(std::uint32_t conn_id, std::uint32_t slot,
               std::uint32_t transferred, std::vector<StagedReply>& replies);
  void do_get(Conn& c, const KvRequest& req, KvResponse& rsp,
              simkern::VAddr rsp_addr);
  void do_put(Conn& c, const KvRequest& req, simkern::VAddr slot_addr,
              KvResponse& rsp);
  /// Bump-allocate `len` arena bytes for `key`. `allow_reuse` lets an
  /// overwrite land in the old value's space when it fits (only safe once
  /// the new bytes are already verified). 0 on arena exhaustion.
  [[nodiscard]] simkern::VAddr arena_alloc(Tenant& t, std::uint64_t key,
                                           std::uint32_t len, bool allow_reuse);
  /// Post one RDMA leg and return its completion status (the fabric is
  /// synchronous, so it is on the send CQ by the time the post returns).
  [[nodiscard]] via::DescStatus run_rdma(Conn& c, bool write,
                                         const via::MemHandle& local_mh,
                                         simkern::VAddr local_addr,
                                         std::uint32_t len,
                                         const via::MemHandle& remote_mh,
                                         simkern::VAddr remote_addr);
  /// Drain the send CQ: recycle reply slots, record RDMA leg results,
  /// abandon connections whose replies bounced. Returns entries drained.
  std::uint32_t harvest_sends();
  void flush_replies(std::vector<StagedReply>& replies);
  /// Shared teardown of close()/abandon(). `abrupt` adds the prompt
  /// governor flush and discards posted descriptors.
  void teardown_conn(Conn& c, bool abrupt);

  via::Cluster& cluster_;
  via::Node& node_;
  via::NodeId node_id_;
  KvServerConfig config_;
  KvServerStats stats_;
  obs::Histogram& op_ns_;  ///< per-request service time (virtual)
  via::CqId recv_cq_ = via::kInvalidCq;
  via::CqId send_cq_ = via::kInvalidCq;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<Conn> conns_;
  std::vector<std::uint32_t> free_conns_;
  std::map<via::ViId, std::uint32_t> vi_to_conn_;
  /// RDMA-leg completion results keyed by cookie, filled by harvest_sends.
  std::map<std::uint64_t, via::DescStatus> rdma_done_;
  std::uint64_t next_rdma_seq_ = 0;
  std::uint32_t next_gen_ = 1;
  std::uint32_t open_conns_ = 0;
  bool shut_down_ = false;
  // Scratch buffers (hot path, avoid per-request allocation).
  std::vector<via::Nic::CqEntry> harvest_buf_;
  std::vector<via::Nic::CqEntry> send_buf_;
  std::vector<std::byte> value_buf_;
};

}  // namespace vialock::svc
