#include "simkern/buddy.h"

#include <algorithm>
#include <cassert>

namespace vialock::simkern {

BuddyAllocator::BuddyAllocator(PhysicalMemory& mem, std::uint32_t reserved_low)
    : mem_(mem), state_(mem.num_frames()) {
  for (Pfn pfn = 0; pfn < reserved_low && pfn < mem_.num_frames(); ++pfn) {
    mem_.page(pfn).flags |= PageFlag::Reserved;
    mem_.page(pfn).count = 1;  // reserved pages are permanently "in use"
  }
  // Seed free lists with maximal naturally-aligned blocks.
  Pfn pfn = reserved_low;
  while (pfn < mem_.num_frames()) {
    std::uint32_t order = kMaxOrder;
    while (order > 0 &&
           ((pfn & ((1U << order) - 1)) != 0 ||
            pfn + (1U << order) > mem_.num_frames())) {
      --order;
    }
    push_free(pfn, order);
    total_frames_ += 1U << order;
    pfn += 1U << order;
  }
  free_frames_ = total_frames_;
}

Pfn BuddyAllocator::alloc(std::uint32_t order) {
  assert(order <= kMaxOrder);
  if (faults_) {
    if (const auto d = faults_->check(fault::FaultSite::BuddyAlloc);
        d && d->action == fault::FaultAction::Fail) {
      ++injected_failures_;
      return kInvalidPfn;  // as if memory were exhausted; callers reclaim
    }
  }
  sync::Guard g(mu_);
  std::uint32_t o = order;
  while (o <= kMaxOrder && free_lists_[o].empty()) ++o;
  if (o > kMaxOrder) return kInvalidPfn;

  Pfn pfn = free_lists_[o].back();
  free_lists_[o].pop_back();
  state_[pfn].free = false;

  // Split down to the requested order, returning upper halves to free lists.
  while (o > order) {
    --o;
    const Pfn buddy = pfn + (1U << o);
    push_free(buddy, o);
  }

  const std::uint32_t n = 1U << order;
  for (Pfn f = pfn; f < pfn + n; ++f) {
    assert(mem_.page(f).count == 0);
    mem_.page(f).count = 1;
    mem_.page(f).flags &= ~(PageFlag::Dirty | PageFlag::Referenced |
                            PageFlag::SwapCache | PageFlag::Locked);
    mem_.page(f).swap_slot = kInvalidSwapSlot;
    mem_.page(f).mapped_pid = kInvalidPid;
    mem_.page(f).mapped_vaddr = 0;
    mem_.page(f).cache_file = kInvalidFile;
    mem_.page(f).cache_index = 0;
  }
  free_frames_ -= n;
  return pfn;
}

void BuddyAllocator::free(Pfn pfn, std::uint32_t order) {
  assert(order <= kMaxOrder);
  sync::Guard g(mu_);
  const std::uint32_t n = 1U << order;
  for (Pfn f = pfn; f < pfn + n; ++f) {
    assert(mem_.page(f).count == 0 && "freeing a frame still referenced");
    assert(!state_[f].free && "double free of frame");
    mem_.page(f).pin_count = 0;
  }
  free_frames_ += n;

  // Coalesce with buddies while possible.
  std::uint32_t o = order;
  Pfn head = pfn;
  while (o < kMaxOrder) {
    const Pfn buddy = head ^ (1U << o);
    if (buddy >= mem_.num_frames() || !state_[buddy].free ||
        state_[buddy].order != o) {
      break;
    }
    remove_free(buddy, o);
    head = std::min(head, buddy);
    ++o;
  }
  push_free(head, o);
}

std::uint32_t BuddyAllocator::free_blocks(std::uint32_t order) const {
  sync::Guard g(mu_);
  return static_cast<std::uint32_t>(free_lists_[order].size());
}

void BuddyAllocator::push_free(Pfn pfn, std::uint32_t order) {
  state_[pfn].free = true;
  state_[pfn].order = static_cast<std::uint8_t>(order);
  free_lists_[order].push_back(pfn);
}

void BuddyAllocator::remove_free(Pfn pfn, std::uint32_t order) {
  auto& list = free_lists_[order];
  auto it = std::find(list.begin(), list.end(), pfn);
  assert(it != list.end());
  *it = list.back();
  list.pop_back();
  state_[pfn].free = false;
}

}  // namespace vialock::simkern
