// vmscan.cc - page reclaim: do_try_to_free_pages -> shrink_mmap -> swap_out,
// following the structure the paper lays out in section 2.2.
//
// The decisive details (all from the paper's text):
//   * shrink_mmap() runs a clock algorithm over the page map but "does not
//     touch user pages of a process"; pages with PG_locked and pages with a
//     reference counter other than one are skipped. In this simulation its
//     observable effect is ageing (clearing PG_referenced).
//   * swap_out() walks tasks' VMA lists. VMAs with VM_LOCKED are skipped
//     entirely - the hook mlock-based locking relies on.
//   * try_to_swap_out(): pages with PG_locked or PG_reserved are skipped -
//     the hook the Giganet-style driver relies on. Pages with an elevated
//     reference count are NOT skipped: the PTE is rewritten to a swap entry
//     and __free_page() is called; if a driver held an extra reference the
//     frame quietly survives, detached from the virtual page - the
//     Berkeley-VIA / M-VIA failure the locktest experiment demonstrates.
//   * Pages with pin_count > 0 (kiobuf pins) are skipped - this is the
//     contract of the paper's proposed mechanism.
#include <cassert>

#include "simkern/kernel.h"

namespace vialock::simkern {

std::uint32_t Kernel::try_to_free_pages(std::uint32_t target) {
  // Single-reclaimer gate: if another worker is already reclaiming, report
  // zero and let the caller retry after a yield (get_free_page does). A
  // blocking wait here could deadlock - the reclaimer may want locks our
  // caller holds. Recursive, so reclaim-from-pressure-callback still enters.
  sync::TryGuard gate(reclaim_mu_);
  if (!gate.held()) return 0;
  ++stats_.reclaim_runs;
  const obs::ScopedSpan span(spans_, "simkern.try_to_free_pages");
  const VirtualStopwatch sw(clock_);
  // Like do_try_to_free_pages(): shrink the page cache first, escalating the
  // scan until either the target is met or the clock hand has swept the
  // whole page map twice (one ageing pass + one freeing pass). Only then
  // resort to swapping process pages.
  const std::uint32_t budget =
      std::max(1u, config_.frames / config_.reclaim_scan_divisor);
  std::uint32_t freed = 0;
  std::uint32_t scanned = 0;
  do {  // at least one ageing pass, even for a zero target (kswapd tick)
    freed += shrink_mmap(budget);
    scanned += budget;
  } while (freed < target && scanned < 2 * config_.frames);
  // Cooperative reclaim: before swapping process pages, ask the pin-side
  // handlers (the PinGovernor) to give back cold pinned memory - deferred
  // deregistrations, idle cached registrations. What they release is not
  // free yet, but it becomes visible to the swap_out pass below.
  if (freed < target && !pressure_handlers_.empty() && !in_pressure_callback_) {
    in_pressure_callback_ = true;
    ++stats_.pressure_callbacks;
    for (PressureHandler* h : pressure_handlers_) {
      stats_.pressure_pages_released += h->on_memory_pressure(target - freed);
    }
    in_pressure_callback_ = false;
  }
  while (freed < target) {
    const std::uint32_t n = swap_out(target - freed);
    if (n == 0) break;
    freed += n;
  }
  reclaim_ns_hist_->add(sw.elapsed());
  reclaim_freed_hist_->add(freed);
  return freed;
}

std::uint32_t Kernel::shrink_mmap(std::uint32_t budget) {
  // Clock scan over the page map: age pages by clearing PG_referenced and
  // discard old page-cache pages. User (process) pages are never touched
  // here - "it does not touch user pages of a process"; those are left to
  // swap_out().
  const std::uint32_t frames = phys_.num_frames();
  if (frames == 0) return 0;
  std::uint32_t freed = 0;
  for (std::uint32_t i = 0; i < budget; ++i) {
    clock_hand_ = (clock_hand_ + 1) % frames;
    clock_.advance(costs_.reclaim_scan_page);
    ++stats_.clock_scanned;
    Page& pg = phys_.page(clock_hand_);
    if (pg.free() || pg.reserved() || pg.locked()) continue;
    if (pg.count != 1) continue;  // "pages with a reference counter other
                                  //  than one are skipped"
    if (pg.pinned()) continue;
    if (has(pg.flags, PageFlag::Referenced)) {
      pg.flags &= ~PageFlag::Referenced;
      continue;
    }
    if (pg.in_page_cache()) {
      // An old, unreferenced, unlocked cache page: discard it (writing it
      // back first if dirty).
      drop_cache_page(clock_hand_);
      ++stats_.pagecache_reclaimed;
      ++freed;
    }
  }
  return freed;
}

std::uint32_t Kernel::swap_out(std::uint32_t target) {
  if (task_order_.empty()) return 0;
  const obs::ScopedSpan span(spans_, "simkern.swap_out");
  std::uint32_t freed = 0;
  // Visit each task at most once per invocation, starting at the rotor.
  for (std::size_t i = 0; i < task_order_.size() && freed < target; ++i) {
    const Pid pid = task_order_[swap_rotor_ % task_order_.size()];
    swap_rotor_ = (swap_rotor_ + 1) % task_order_.size();
    auto it = tasks_.find(pid);
    if (it == tasks_.end() || !it->second->alive) continue;
    freed += swap_out_task(*it->second, target - freed);
  }
  return freed;
}

std::uint32_t Kernel::swap_out_task(Task& t, std::uint32_t target) {
  // A task mid-syscall on another worker is skipped, not waited for: the
  // walker must never block while holding the reclaim gate (lock order).
  sync::TryGuard tg(t.mu);
  if (!tg.held()) return 0;
  std::uint32_t freed = 0;
  const auto vmas = t.mm.vmas.in_order();
  if (vmas.empty()) return 0;

  // One full pass over the address space, resuming at (and wrapping around)
  // the task's swap cursor, like task->swap_address in 2.2.
  const std::size_t nv = vmas.size();
  std::size_t start_idx = 0;
  for (std::size_t i = 0; i < nv; ++i) {
    if (vmas[i]->end > t.swap_cursor) {
      start_idx = i;
      break;
    }
  }

  for (std::size_t step = 0; step < nv && freed < target; ++step) {
    const Vma& vma = *vmas[(start_idx + step) % nv];
    if (has(vma.flags, VmFlag::Locked) || has(vma.flags, VmFlag::Io)) {
      stats_.swap_skip_vma_locked += vma.pages();
      continue;
    }
    if (has(vma.flags, VmFlag::Shared)) {
      // Shared segments are not swapped in this model (2.2's shm_swap path
      // is out of scope); their frames are multiply referenced anyway.
      continue;
    }
    VAddr v = vma.start;
    if (step == 0 && t.swap_cursor > vma.start && t.swap_cursor < vma.end) {
      v = t.swap_cursor;
    }
    for (; v < vma.end && freed < target; v += kPageSize) {
      clock_.advance(costs_.reclaim_scan_page);
      Pte* pte = t.mm.pt.walk(v);
      if (!pte || !pte->present) continue;
      Page& pg = phys_.page(pte->pfn);
      if (pg.reserved()) {
        ++stats_.swap_skip_reserved;
        continue;
      }
      if (pg.locked()) {
        ++stats_.swap_skip_page_locked;
        continue;
      }
      if (pg.pinned()) {
        ++stats_.swap_skip_pinned;  // the proposed mechanism's guarantee
        continue;
      }
      if (pte->cow) continue;  // COW-shared frames stay until broken
      if (pte->accessed) {
        pte->accessed = false;  // ageing: one round of grace for hot pages
        ++stats_.swap_skip_referenced;
        continue;
      }
      // Range-lock check (threaded mode): a registration, mlock or kiobuf
      // teardown holding this page's range exclusive makes it untouchable
      // even before/after its pin is visible. try_lock only - blocking here
      // would deadlock against holders waiting out the reclaim gate.
      auto prg = sync::RangeGuard::try_(range_lock_, t.pid, v, v + kPageSize,
                                        sync::RangeMode::Exclusive);
      if (!prg.held()) {
        ++stats_.swap_skip_range_locked;
        continue;
      }

      // try_to_swap_out(): write to swap, redirect the PTE, free the page.
      const SwapSlot slot = swap_.alloc();
      if (slot == kInvalidSwapSlot) {
        t.swap_cursor = v;
        return freed;  // swap partition full
      }
      if (!ok(swap_.write(slot, phys_.frame(pte->pfn)))) {
        // Injected swap-device write error: give the slot back and leave the
        // page resident; the scan moves on (kswapd would retry elsewhere).
        swap_.free(slot);
        t.swap_cursor = v + kPageSize;
        continue;
      }
      notify_invalidate(t.pid, v, pte->pfn);
      trace_.record(clock_.now(), TraceEvent::SwapOut, t.pid, v, pte->pfn);
      const Pfn old_pfn = pte->pfn;
      pte->present = false;
      pte->pfn = kInvalidPfn;
      pte->swap = slot;
      pte->dirty = false;
      if (pg.mapped_pid == t.pid) pg.mapped_pid = kInvalidPid;
      --t.mm.rss;
      ++stats_.pages_swapped_out;

      const bool was_last_ref = phys_.page(old_pfn).count == 1;
      put_page(old_pfn);  // __free_page(): only actually frees at count 0
      if (was_last_ref) ++freed;
      t.swap_cursor = v + kPageSize;
    }
  }
  if (freed < target) t.swap_cursor = 0;  // completed a full pass
  return freed;
}

}  // namespace vialock::simkern
