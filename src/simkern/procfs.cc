#include "simkern/procfs.h"

#include <sstream>

namespace vialock::simkern {

namespace {

void line(std::ostringstream& os, const char* key, std::uint64_t pages) {
  os << key << ": " << (pages * kPageSize) / 1024 << " kB\n";
}

}  // namespace

std::string meminfo(const Kernel& kern) {
  std::ostringstream os;
  const auto& phys = kern.phys();
  std::uint64_t cached = 0;
  std::uint64_t pinned = 0;
  std::uint64_t locked = 0;
  std::uint64_t reserved = 0;
  for (Pfn pfn = 0; pfn < phys.num_frames(); ++pfn) {
    const Page& pg = phys.page(pfn);
    if (pg.in_page_cache()) ++cached;
    if (pg.pinned()) ++pinned;
    if (pg.locked()) ++locked;
    if (pg.reserved()) ++reserved;
  }
  line(os, "MemTotal", kern.config().frames);
  line(os, "MemFree", kern.free_frames());
  line(os, "Cached", cached);
  line(os, "Pinned", pinned);
  line(os, "PinBudget", kern.pin_budget());
  line(os, "PG_locked", locked);
  line(os, "Reserved", reserved);
  line(os, "SwapTotal", kern.swap().num_slots());
  line(os, "SwapUsed", kern.swap().used_slots());
  return os.str();
}

std::string vmstat(const Kernel& kern) {
  std::ostringstream os;
  const KernelStats& s = kern.stats();
  os << "pgfault_minor " << s.minor_faults << "\n"
     << "pgfault_major " << s.major_faults << "\n"
     << "cow_breaks " << s.cow_breaks << "\n"
     << "pswpout " << s.pages_swapped_out << "\n"
     << "pswpin " << s.pages_swapped_in << "\n"
     << "readahead " << s.readahead_pages << "\n"
     << "reclaim_runs " << s.reclaim_runs << "\n"
     << "clock_scanned " << s.clock_scanned << "\n"
     << "pgcache_hit " << s.pagecache_hits << "\n"
     << "pgcache_miss " << s.pagecache_misses << "\n"
     << "pgcache_reclaimed " << s.pagecache_reclaimed << "\n"
     << "kiobuf_maps " << s.kiobuf_maps << "\n"
     << "kiobuf_pins " << s.kiobuf_pages_pinned << "\n"
     << "pressure_callbacks " << s.pressure_callbacks << "\n"
     << "pressure_pages_released " << s.pressure_pages_released << "\n"
     << "syscalls " << s.syscalls << "\n"
     << "swap_io_errors " << kern.swap().io_errors() << "\n"
     << "swap_io_delays " << kern.swap().io_delays() << "\n"
     << "swap_io_corruptions " << kern.swap().io_corruptions() << "\n"
     << "kiobuf_fault_rejections " << s.kiobuf_fault_rejections << "\n";
  // Cumulative injection counters per fault site, when chaos is armed.
  if (const fault::FaultEngine* fe = kern.fault_engine()) {
    for (std::size_t i = 0; i < fault::kNumFaultSites; ++i) {
      const auto site = static_cast<fault::FaultSite>(i);
      os << "fault_injected_" << fault::to_string(site) << " "
         << fe->stats().injected(site) << "\n";
    }
  }
  return os.str();
}

std::string task_status(const Kernel& kern, Pid pid) {
  std::ostringstream os;
  if (!kern.task_exists(pid)) {
    os << "pid " << pid << ": no such task\n";
    return os.str();
  }
  const Task& t = kern.task(pid);
  std::uint64_t vm_pages = 0;
  std::uint64_t locked_vmas = 0;
  t.mm.vmas.for_each([&](const Vma& vma) {
    vm_pages += vma.pages();
    if (has(vma.flags, VmFlag::Locked)) locked_vmas += vma.pages();
  });
  os << "Name: " << t.name << "\n"
     << "Pid: " << t.pid << "\n";
  line(os, "VmSize", vm_pages);
  line(os, "VmRSS", t.mm.rss);
  line(os, "VmLck", locked_vmas);
  os << "Vmas: " << t.mm.vmas.count() << "\n"
     << "CapIpcLock: " << (t.capable(Capability::IpcLock) ? "yes" : "no")
     << "\n";
  return os.str();
}

}  // namespace vialock::simkern
