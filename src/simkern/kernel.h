// kernel.h - facade over the simulated Linux 2.2/2.3 memory subsystem.
//
// Owns physical memory, the buddy allocator, the swap device and the task
// table, and implements the algorithms the paper's analysis rests on:
//   - demand paging / COW / swap-in fault handling        (mm.cc)
//   - page reclaim: shrink_mmap clock scan + swap_out     (vmscan.cc)
//   - mlock / munlock with capability checks              (mlock.cc)
//   - kiobuf map/unmap/lock                               (kiobuf.cc)
//   - task + mapping syscalls, kernel-I/O page locking    (kernel.cc)
//
// All entry points charge virtual time against the shared Clock and count
// events in KernelStats; none throw - fallible calls return KStatus.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/proc_registry.h"
#include "obs/span.h"
#include "simkern/buddy.h"
#include "simkern/kiobuf.h"
#include "simkern/page.h"
#include "simkern/swap.h"
#include "simkern/task.h"
#include "simkern/types.h"
#include "sync/sync.h"
#include "util/clock.h"
#include "util/cost_model.h"
#include "util/status.h"
#include "util/trace.h"

namespace vialock::simkern {

struct KernelConfig {
  std::uint32_t frames = 4096;          ///< physical frames (4096 = 16 MB)
  std::uint32_t reserved_low = 64;      ///< low frames marked PG_reserved
  std::uint32_t swap_slots = 16384;     ///< swap partition size (64 MB)
  std::uint32_t free_pages_min = 16;    ///< reclaim watermark (freepages.min)
  std::uint32_t swap_cluster = 32;      ///< reclaim target per try_to_free_pages
  std::uint32_t reclaim_scan_divisor = 4;  ///< clock scan budget = frames/div
  bool userdma_patch = false;  ///< User-DMA patch applied: sys_mlock skips the
                               ///< uid/capability check (paper section 3.2)
  /// Upper bound on frames pinned via kiobufs (0 = 3/4 of frames). Pinned
  /// memory is invisible to reclaim, so an unbounded pin budget would let
  /// one process wedge the whole machine.
  std::uint32_t max_pinned_frames = 0;
  /// Swap read-ahead (Linux page_cluster): on a major fault, up to this many
  /// *additional* adjacent swapped pages of the same VMA are read in the same
  /// disk pass (sequential, no extra seek). 0 disables read-ahead.
  std::uint32_t swap_readahead = 0;
  /// Execution mode (DESIGN.md section 15). Serial keeps every kernel lock a
  /// no-op branch; threaded arms the per-task mutexes, the registration
  /// range lock and the allocator/swap CNA mutexes.
  sync::SyncPolicy sync;
};

// Counters are sync::Relaxed (copyable relaxed-atomic u64) so threaded-mode
// event bodies can bump them from any worker; serial reads stay exact.
struct KernelStats {
  sync::Relaxed syscalls;
  sync::Relaxed minor_faults;
  sync::Relaxed major_faults;
  sync::Relaxed cow_breaks;
  sync::Relaxed segv;
  sync::Relaxed pages_swapped_out;
  sync::Relaxed pages_swapped_in;
  sync::Relaxed readahead_pages;  ///< swapped in speculatively
  sync::Relaxed reclaim_runs;
  sync::Relaxed clock_scanned;
  sync::Relaxed pressure_callbacks;       ///< cooperative-reclaim invocations
  sync::Relaxed pressure_pages_released;  ///< pages handlers made reclaimable
  sync::Relaxed swap_skip_vma_locked;
  sync::Relaxed swap_skip_page_locked;
  sync::Relaxed swap_skip_reserved;
  sync::Relaxed swap_skip_pinned;
  sync::Relaxed swap_skip_referenced;
  /// Reclaim skipped a page because a registration/mlock holds its range
  /// (threaded mode only - the window the range lock closes).
  sync::Relaxed swap_skip_range_locked;
  sync::Relaxed oom_failures;
  sync::Relaxed mlock_calls;
  sync::Relaxed munlock_calls;
  sync::Relaxed kiobuf_maps;
  sync::Relaxed kiobuf_pages_pinned;
  sync::Relaxed kiobuf_pin_rejections;    ///< maps refused at the pin budget
  sync::Relaxed kiobuf_fault_rejections;  ///< maps refused by injection
  // Page cache / file I/O (filecache.cc):
  sync::Relaxed file_reads;
  sync::Relaxed file_writes;
  sync::Relaxed pagecache_hits;
  sync::Relaxed pagecache_misses;
  sync::Relaxed pagecache_reclaimed;  ///< cache pages freed by shrink_mmap
  sync::Relaxed pagecache_writebacks;
  // Hazard counters for the page-flag (Giganet-style) approach, experiment E7:
  sync::Relaxed io_flag_collisions;  ///< driver set PG_locked over live I/O
  sync::Relaxed io_lock_clobbered;   ///< PG_locked vanished during kernel I/O
  sync::Relaxed io_page_stolen;      ///< frame freed/remapped during kernel I/O
};

/// Observer of translation invalidations, the hook a U-Net/MM-style system
/// (NIC TLB kept consistent with the page tables, paper section 1) needs.
/// Fired whenever a present translation is torn down or replaced: swap-out,
/// munmap/exit, COW break.
class MmuNotifier {
 public:
  virtual ~MmuNotifier() = default;
  virtual void on_invalidate(Pid pid, VAddr vaddr, Pfn old_pfn) = 0;
};

/// Cooperative-reclaim hook (the shrinker registration of its era). When
/// try_to_free_pages falls short of its target after the page-cache scan,
/// it asks registered handlers to release pinned memory - drain deferred
/// deregistrations, evict cold idle registration-cache entries - before the
/// kernel resorts to swapping hot process pages. Returns the number of pages
/// the handler un-pinned (now visible to swap_out), not pages freed.
class PressureHandler {
 public:
  virtual ~PressureHandler() = default;
  virtual std::uint32_t on_memory_pressure(std::uint32_t target_pages) = 0;
};

class Kernel {
 public:
  Kernel(const KernelConfig& config, Clock& clock, CostModel costs = {});

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- tasks -----------------------------------------------------------------
  [[nodiscard]] Pid create_task(std::string name,
                                Capability caps = Capability::None);
  /// fork(): clone the address space copy-on-write.
  [[nodiscard]] Pid fork_task(Pid parent);
  void exit_task(Pid pid);
  [[nodiscard]] Task& task(Pid pid);
  [[nodiscard]] const Task& task(Pid pid) const;
  [[nodiscard]] bool task_exists(Pid pid) const;

  // --- mapping syscalls --------------------------------------------------------
  /// Anonymous private mmap; returns the chosen address.
  [[nodiscard]] std::optional<VAddr> sys_mmap_anon(Pid pid, std::uint64_t len,
                                                   VmFlag prot);
  [[nodiscard]] KStatus sys_munmap(Pid pid, VAddr addr, std::uint64_t len);
  /// madvise(MADV_DONTFORK / MADV_DOFORK): exclude [addr, addr+len) from (or
  /// re-include it in) fork inheritance - how real RDMA stacks keep a child
  /// from COW-sharing pinned DMA buffers.
  [[nodiscard]] KStatus sys_madvise_dontfork(Pid pid, VAddr addr,
                                             std::uint64_t len, bool dontfork);
  /// mprotect(2): change the access protection of [addr, addr+len). Dropping
  /// write access also write-protects the PTEs so the next store faults.
  [[nodiscard]] KStatus sys_mprotect(Pid pid, VAddr addr, std::uint64_t len,
                                     VmFlag prot);
  /// Map one page of device memory (frame `dev_pfn`, which must be reserved)
  /// into `pid` as a VM_IO mapping - how NIC doorbells reach user space.
  [[nodiscard]] std::optional<VAddr> map_device_page(Pid pid, Pfn dev_pfn,
                                                     VmFlag prot);

  // --- user memory access (drives the fault path) -----------------------------
  [[nodiscard]] KStatus write_user(Pid pid, VAddr addr,
                                   std::span<const std::byte> data);
  [[nodiscard]] KStatus read_user(Pid pid, VAddr addr, std::span<std::byte> out);
  /// Touch one page (read or write access) without moving data.
  [[nodiscard]] KStatus touch(Pid pid, VAddr addr, bool write);
  /// In-process user-to-user copy (one copy cost, faults both sides in).
  [[nodiscard]] KStatus copy_user(Pid pid, VAddr dst, VAddr src,
                                  std::uint64_t len);

  // --- System-V-style shared memory ----------------------------------------------
  /// shmget(IPC_CREAT): create a shared segment of `bytes` bytes.
  [[nodiscard]] ShmId shm_create(std::uint64_t bytes);
  /// shmat(): map the whole segment into `pid`; frames are allocated lazily
  /// on first touch by any attacher and then shared by all of them.
  [[nodiscard]] std::optional<VAddr> shm_attach(Pid pid, ShmId id);
  /// shmctl(IPC_RMID) + final detach: release the segment's frames. Live
  /// attachments keep their frames (their PTE references) until unmapped.
  [[nodiscard]] KStatus shm_destroy(ShmId id);
  [[nodiscard]] std::uint64_t shm_bytes(ShmId id) const;

  // --- mlock family (mlock.cc) -------------------------------------------------
  /// sys_mlock: full syscall with CAP_IPC_LOCK + RLIMIT_MEMLOCK checks
  /// (skipped when KernelConfig::userdma_patch is set).
  [[nodiscard]] KStatus sys_mlock(Pid pid, VAddr addr, std::uint64_t len);
  [[nodiscard]] KStatus sys_munlock(Pid pid, VAddr addr, std::uint64_t len);
  /// do_mlock: the internal entry a driver may call directly (kernel export).
  [[nodiscard]] KStatus do_mlock(Pid pid, VAddr addr, std::uint64_t len,
                                 bool lock);
  void cap_raise(Pid pid, Capability cap);
  void cap_lower(Pid pid, Capability cap);

  // --- kiobufs (kiobuf.cc) -----------------------------------------------------
  [[nodiscard]] Kiobuf alloc_kiovec();
  [[nodiscard]] KStatus map_user_kiobuf(Pid pid, Kiobuf& iobuf, VAddr addr,
                                        std::uint64_t len);
  void unmap_kiobuf(Kiobuf& iobuf);
  /// Set PG_locked on all kiobuf pages (fails with Busy if any page is
  /// already locked for I/O).
  [[nodiscard]] KStatus lock_kiovec(Kiobuf& iobuf);
  void unlock_kiovec(Kiobuf& iobuf);

  // --- page-frame services (driver-visible kernel internals) -------------------
  /// get_free_page(): allocate one frame, reclaiming if below the watermark.
  [[nodiscard]] Pfn get_free_page();
  /// get_page(): elevate a frame's reference count (what Berkeley-VIA/M-VIA do).
  void get_page(Pfn pfn);
  /// __free_page(): drop a reference; frame returns to the buddy at zero.
  void put_page(Pfn pfn);
  /// Read the page tables: virtual -> physical for a present page. This is
  /// the operation mainline forbids drivers from doing (section 4.1); the
  /// refcount/pageflag policies use it deliberately to model those drivers.
  [[nodiscard]] std::optional<Pfn> resolve(Pid pid, VAddr addr) const;
  /// Fault a page in (if needed) so that resolve() succeeds; `write` selects
  /// write-access semantics (breaks COW).
  [[nodiscard]] KStatus make_present(Pid pid, VAddr addr, bool write);

  // --- reclaim (vmscan.cc) ------------------------------------------------------
  /// try_to_free_pages(): run shrink_mmap + swap_out until `target` frames
  /// were freed or the scan budget is exhausted. Returns frames freed.
  std::uint32_t try_to_free_pages(std::uint32_t target);

  // --- debugging / validation ----------------------------------------------------
  /// Whole-kernel consistency audit: page map vs. buddy accounting, RSS
  /// drift, PTE->frame sanity, swap-map reference counts, pin accounting.
  /// Returns human-readable descriptions of every violation (empty = clean).
  [[nodiscard]] std::vector<std::string> self_check() const;

  // --- MMU notifiers -------------------------------------------------------------
  void add_mmu_notifier(MmuNotifier* notifier);
  void remove_mmu_notifier(MmuNotifier* notifier);

  // --- cooperative reclaim handlers (vmscan.cc) ------------------------------------
  void add_pressure_handler(PressureHandler* handler);
  void remove_pressure_handler(PressureHandler* handler);

  // --- fault injection (src/fault) -----------------------------------------------
  /// Arm `engine` on every fallible kernel component (swap device, buddy
  /// allocator, kiobuf mapping); nullptr disarms. The engine must outlive
  /// the kernel or be disarmed first. While armed, the engine's per-site
  /// seen/injected counters export through metrics() as `fault.*`.
  void set_fault_engine(fault::FaultEngine* engine);
  [[nodiscard]] const fault::FaultEngine* fault_engine() const {
    return faults_;
  }

  // --- simulated files + page cache (filecache.cc) ------------------------------
  /// Create a zero-filled simulated file of `bytes` bytes on the disk.
  [[nodiscard]] FileId create_file(std::uint64_t bytes);
  /// read(2): file -> user buffer through the page cache.
  [[nodiscard]] KStatus file_read(Pid pid, FileId file, std::uint64_t offset,
                                  VAddr buf, std::uint64_t len);
  /// write(2): user buffer -> page cache (write-back to disk on eviction).
  [[nodiscard]] KStatus file_write(Pid pid, FileId file, std::uint64_t offset,
                                   VAddr buf, std::uint64_t len);
  /// Write all dirty cache pages of `file` back to the disk (fsync).
  void sync_file(FileId file);
  [[nodiscard]] std::uint32_t page_cache_pages() const {
    return static_cast<std::uint32_t>(page_cache_.size());
  }

  // --- kernel I/O page locking (E7 hazard substrate) ----------------------------
  /// Begin simulated kernel I/O on the frame backing (pid, addr): sets
  /// PG_locked like ll_rw_block would. Fails with Busy if already locked.
  [[nodiscard]] KStatus start_kernel_io(Pfn pfn);
  /// Complete kernel I/O: clears PG_locked, detecting clobbered state.
  void end_kernel_io(Pfn pfn);

  // --- accessors -----------------------------------------------------------------
  [[nodiscard]] PhysicalMemory& phys() { return phys_; }
  [[nodiscard]] const PhysicalMemory& phys() const { return phys_; }
  [[nodiscard]] BuddyAllocator& buddy() { return buddy_; }
  [[nodiscard]] SwapDevice& swap() { return swap_; }
  [[nodiscard]] const SwapDevice& swap() const { return swap_; }
  [[nodiscard]] Clock& clock() { return clock_; }
  [[nodiscard]] const CostModel& costs() const { return costs_; }
  [[nodiscard]] const KernelStats& stats() const { return stats_; }
  [[nodiscard]] KernelStats& mutable_stats() { return stats_; }
  /// Event trace ring (disabled by default; `trace().enable(true)`).
  [[nodiscard]] TraceRing& trace() { return trace_; }
  /// Unified metric registry (DESIGN.md section 10). The kernel registers its
  /// own stats as the `simkern.*` source; every component built on this
  /// kernel (NIC, agent, governor, caches, channels) publishes here too.
  [[nodiscard]] obs::MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricRegistry& metrics() const { return metrics_; }
  /// Sim-clock span recorder, mirrored into trace(). Disabled by default;
  /// `spans().enable(true)` to arm, obs::chrome_trace(spans()) to export.
  [[nodiscard]] obs::SpanRecorder& spans() { return spans_; }
  [[nodiscard]] const obs::SpanRecorder& spans() const { return spans_; }
  /// The /proc mount table: meminfo, vmstat, metrics, plus whatever the
  /// upper layers mount (via/agent, pinmgr, regcache/<pid>, ...).
  [[nodiscard]] obs::ProcRegistry& procfs() { return procfs_; }
  [[nodiscard]] const obs::ProcRegistry& procfs() const { return procfs_; }
  /// Crash flight recorder (DESIGN.md section 11). flight().set_sink() arms
  /// it; flight_dump() is the trigger components call on terminal faults.
  [[nodiscard]] obs::FlightRecorder& flight() { return flight_; }
  [[nodiscard]] const obs::FlightRecorder& flight() const { return flight_; }
  /// Assemble and deliver a postmortem dump (no-op when no sink is armed, so
  /// un-instrumented runs pay nothing on failure paths).
  void flight_dump(std::string_view reason) {
    if (flight_.armed()) {
      flight_.dump(reason, spans_, trace_, metrics_.snapshot());
    }
  }
  [[nodiscard]] const KernelConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t free_frames() const { return buddy_.free_frames(); }
  /// Frames currently pinned (kiobuf pin accounting, deduplicated per frame).
  [[nodiscard]] std::uint32_t pinned_frames() const {
    return static_cast<std::uint32_t>(pinned_frames_.load());
  }
  /// The registration range lock (DESIGN.md section 15): map_user_kiobuf /
  /// unmap_kiobuf / do_mlock hold their page range exclusive, the reclaim
  /// walk try-locks per page. Exposed for tests and lock-contention stats.
  [[nodiscard]] sync::RangeLock& range_lock() { return range_lock_; }
  /// Effective pin budget (config value, defaulting to 3/4 of RAM).
  [[nodiscard]] std::uint32_t pin_budget() const {
    return config_.max_pinned_frames ? config_.max_pinned_frames
                                     : config_.frames - config_.frames / 4;
  }

 private:
  // mm.cc
  enum class Access { Read, Write };
  [[nodiscard]] KStatus handle_fault(Task& t, VAddr vaddr, Access access);
  [[nodiscard]] KStatus access_range(Pid pid, VAddr addr, std::uint64_t len,
                                     Access access,
                                     std::span<const std::byte> src,
                                     std::span<std::byte> dst);
  void drop_pte(Task& t, VAddr vaddr, Pte& pte);

  // vmscan.cc
  std::uint32_t shrink_mmap(std::uint32_t budget);
  std::uint32_t swap_out(std::uint32_t target);
  std::uint32_t swap_out_task(Task& t, std::uint32_t target);

  KernelConfig config_;
  Clock& clock_;
  CostModel costs_;
  PhysicalMemory phys_;
  BuddyAllocator buddy_;
  SwapDevice swap_;
  KernelStats stats_;
  TraceRing trace_{2048};
  obs::MetricRegistry metrics_;
  obs::SpanRecorder spans_{clock_};
  obs::ProcRegistry procfs_;
  obs::FlightRecorder flight_;
  // Cached hot-path handles into metrics_ (vmscan instrumentation).
  obs::Histogram* reclaim_ns_hist_ = nullptr;
  obs::Histogram* reclaim_freed_hist_ = nullptr;
  fault::FaultEngine* faults_ = nullptr;

  std::unordered_map<Pid, std::unique_ptr<Task>> tasks_;
  std::vector<Pid> task_order_;  ///< creation order, for the swap_out rotor
  Pid next_pid_ = 1;
  std::size_t swap_rotor_ = 0;   ///< which task swap_out visits next
  std::uint32_t clock_hand_ = 0; ///< shrink_mmap clock-scan position

  std::unordered_map<Pfn, std::uint8_t> inflight_io_;  ///< kernel I/O in progress
  sync::Relaxed pinned_frames_;  ///< frames with pin_count > 0

  // Threaded-mode locks (DESIGN.md section 15); all no-op branches serially.
  // Canonical order: range lock -> task mutex -> buddy/swap leaf locks.
  // Holders of kernel locks never *block* upward (reclaim and the pressure
  // callbacks only try-lock), which is what keeps the graph acyclic.
  sync::RangeLock range_lock_;  ///< (pid, page range) registration lock
  sync::Mutex reclaim_mu_;      ///< single-reclaimer gate (try-lock only)
  sync::Mutex tasks_mu_;        ///< guards tasks_/task_order_/next_pid_/shms_
  sync::Mutex io_mu_;           ///< guards inflight_io_
  // Contention profiler blocks for the locks above, exported through the
  // "sync" metric source - attached (and the source registered) only in
  // threaded mode, so serial snapshots and /proc text are byte-unchanged.
  sync::ContentionStats reclaim_mu_stats_;
  sync::ContentionStats tasks_mu_stats_;
  sync::ContentionStats io_mu_stats_;
  sync::ContentionStats range_mu_stats_;  ///< the range lock's internal mutex
  sync::RangeContentionStats range_lock_stats_;

  // kiobuf.cc internals: frame-deduplicated pin accounting.
  void account_pin(Pfn pfn);
  void account_unpin(Pfn pfn);

  // filecache.cc internals.
  struct SimFile {
    std::vector<std::byte> bytes;
  };
  [[nodiscard]] Pfn cache_page_in(FileId file, std::uint32_t index);
  void drop_cache_page(Pfn pfn);  ///< also called from shrink_mmap
  [[nodiscard]] KStatus file_io(Pid pid, FileId file, std::uint64_t offset,
                                VAddr buf, std::uint64_t len, bool write);

  std::vector<SimFile> files_;
  std::unordered_map<std::uint64_t, Pfn> page_cache_;  ///< (file,index) -> pfn

  void notify_invalidate(Pid pid, VAddr vaddr, Pfn old_pfn);
  std::vector<MmuNotifier*> mmu_notifiers_;
  std::vector<PressureHandler*> pressure_handlers_;
  bool in_pressure_callback_ = false;  ///< reclaim-from-reclaim recursion guard

  // Shared-memory segments (kernel.cc).
  struct ShmSegment {
    std::uint64_t bytes = 0;
    std::vector<Pfn> frames;  ///< kInvalidPfn until first touch
    bool alive = false;
  };
  std::vector<ShmSegment> shms_;

  // mm.cc: fault path for VM_SHARED mappings.
  [[nodiscard]] KStatus shm_fault(Task& t, const Vma& vma, VAddr page_addr,
                                  Pte& pte, bool write);
};

}  // namespace vialock::simkern
