// kernel.cc - task management, mapping syscalls, page-frame services and the
// kernel-I/O page locking used by the E7 hazard experiment.
#include "simkern/kernel.h"

#include <cassert>
#include <thread>

#include "obs/export.h"
#include "simkern/procfs.h"

namespace vialock::simkern {

Kernel::Kernel(const KernelConfig& config, Clock& clock, CostModel costs)
    : config_(config),
      clock_(clock),
      costs_(costs),
      phys_(config.frames),
      buddy_(phys_, config.reserved_low),
      swap_(config.swap_slots, clock, costs_) {
  // Arm the execution-mode policy on every kernel lock (serial = no-ops).
  buddy_.set_policy(config_.sync);
  swap_.set_policy(config_.sync);
  range_lock_.set_policy(config_.sync);
  reclaim_mu_.set_policy(config_.sync);
  tasks_mu_.set_policy(config_.sync);
  io_mu_.set_policy(config_.sync);
  metrics_.set_policy(config_.sync);
  spans_.set_policy(config_.sync);
  trace_.set_policy(config_.sync);
  spans_.mirror_to(&trace_);
  reclaim_ns_hist_ = &metrics_.histogram("simkern.vm.reclaim_ns");
  reclaim_freed_hist_ = &metrics_.histogram("simkern.vm.reclaim_freed_pages");
  metrics_.register_source("simkern", this, [this](obs::MetricSink& s) {
    s.counter("vm.syscalls", stats_.syscalls);
    s.counter("vm.minor_faults", stats_.minor_faults);
    s.counter("vm.major_faults", stats_.major_faults);
    s.counter("vm.cow_breaks", stats_.cow_breaks);
    s.counter("vm.pages_swapped_out", stats_.pages_swapped_out);
    s.counter("vm.pages_swapped_in", stats_.pages_swapped_in);
    s.counter("vm.reclaim_runs", stats_.reclaim_runs);
    s.counter("vm.clock_scanned", stats_.clock_scanned);
    s.counter("vm.pressure_callbacks", stats_.pressure_callbacks);
    s.counter("vm.pressure_pages_released", stats_.pressure_pages_released);
    s.counter("vm.swap_skip_pinned", stats_.swap_skip_pinned);
    s.counter("vm.oom_failures", stats_.oom_failures);
    s.counter("mlock.calls", stats_.mlock_calls);
    s.counter("kiobuf.maps", stats_.kiobuf_maps);
    s.counter("kiobuf.pages_pinned", stats_.kiobuf_pages_pinned);
    s.counter("filecache.hits", stats_.pagecache_hits);
    s.counter("filecache.misses", stats_.pagecache_misses);
    s.gauge("mem.free_frames", free_frames());
    s.gauge("mem.pinned_frames", pinned_frames());
    s.gauge("mem.page_cache_pages", page_cache_pages());
  });
  metrics_.register_source("obs", this, [this](obs::MetricSink& s) {
    s.counter("spans.recorded", spans_.spans().size());
    s.gauge("spans.open", spans_.open_spans());
    s.counter("spans.dropped", spans_.dropped());
    s.counter("spans.unbalanced_closes", spans_.unbalanced_closes());
    s.counter("flight.dumps", flight_.dumps());
  });
  if (config_.sync.is_threaded()) {
    // Contention profiler: only the threaded build pays the (pointer-check)
    // cost, and only threaded snapshots grow sync.* metrics - the serial
    // export surface stays byte-identical to what the E23 gate froze.
    range_lock_.set_stats(&range_lock_stats_);
    range_lock_.internal_mutex().set_stats(&range_mu_stats_);
    reclaim_mu_.set_stats(&reclaim_mu_stats_);
    tasks_mu_.set_stats(&tasks_mu_stats_);
    io_mu_.set_stats(&io_mu_stats_);
    metrics_.register_source("sync", this, [this](obs::MetricSink& s) {
      obs::emit_contention(s, "reclaim_mu", reclaim_mu_stats_);
      obs::emit_contention(s, "tasks_mu", tasks_mu_stats_);
      obs::emit_contention(s, "io_mu", io_mu_stats_);
      obs::emit_contention(s, "range_mu", range_mu_stats_);
      obs::emit_range_lock(s, "range_lock", range_lock_, range_lock_stats_);
    });
  }
  procfs_.mount("meminfo", this, [this] { return meminfo(*this); });
  procfs_.mount("vmstat", this, [this] { return vmstat(*this); });
  procfs_.mount("metrics", this,
                [this] { return obs::to_proc_text(metrics_.snapshot()); });
}

void Kernel::set_fault_engine(fault::FaultEngine* engine) {
  if (faults_ && faults_ != engine) {
    metrics_.unregister_source("fault", faults_);
  }
  faults_ = engine;
  swap_.set_fault_engine(engine);
  buddy_.set_fault_engine(engine);
  if (engine) {
    metrics_.register_source("fault", engine, [engine](obs::MetricSink& s) {
      s.counter("injected_total", engine->stats().total_injected());
      for (std::size_t i = 0; i < fault::kNumFaultSites; ++i) {
        const auto site = static_cast<fault::FaultSite>(i);
        const std::string base(fault::to_string(site));
        s.counter(base + ".seen", engine->stats().events_seen[i]);
        s.counter(base + ".injected", engine->stats().faults_injected[i]);
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

Pid Kernel::create_task(std::string name, Capability caps) {
  sync::Guard g(tasks_mu_);
  const Pid pid = next_pid_++;
  auto t = std::make_unique<Task>();
  t->pid = pid;
  t->name = std::move(name);
  t->caps = caps;
  t->mu.set_policy(config_.sync);
  tasks_.emplace(pid, std::move(t));
  task_order_.push_back(pid);
  return pid;
}

Pid Kernel::fork_task(Pid parent) {
  Task& p = task(parent);
  sync::Guard gp(p.mu);  // task mutex before tasks_mu_ (create_task) - the
                         // one canonical order; exit_task matches it.
  const Pid pid = create_task(p.name + "-child", p.caps);
  Task& c = task(pid);
  sync::Guard gc(c.mu);  // the child is visible to reclaim's try-walk already
  c.rlimit_memlock = p.rlimit_memlock;

  p.mm.vmas.for_each([&](const Vma& vma) {
    if (has(vma.flags, VmFlag::DontFork)) return;  // MADV_DONTFORK
    const bool inserted = c.mm.vmas.insert(vma.start, vma.end, vma.flags);
    assert(inserted);
    (void)inserted;
    Vma* child_vma = c.mm.vmas.find(vma.start);  // keep shm backing intact
    child_vma->shm = vma.shm;
    child_vma->shm_pgoff = vma.shm_pgoff;
    clock_.advance(costs_.vma_op);

    const bool private_writable =
        has(vma.flags, VmFlag::Write) && !has(vma.flags, VmFlag::Shared);
    p.mm.pt.for_each_in(vma.start, vma.end, [&](VAddr v, Pte& ppte) {
      clock_.advance(costs_.pte_walk_level * 2);
      Pte& cpte = c.mm.pt.ensure(v);
      if (ppte.present) {
        if (private_writable) {
          ppte.cow = true;
          ppte.writable = false;
        }
        cpte = ppte;
        get_page(ppte.pfn);
        ++c.mm.rss;
      } else if (ppte.swap != kInvalidSwapSlot) {
        swap_.dup(ppte.swap);
        cpte = ppte;
      }
    });
  });
  return pid;
}

void Kernel::exit_task(Pid pid) {
  // Precondition (documented, not locked around): no concurrent kernel entry
  // on `pid` - every workload exits a task only after its worker quiesced.
  // The task mutex is released before the Task is destroyed.
  Task& t = task(pid);
  {
    sync::Guard g(t.mu);
    t.mm.vmas.for_each([&](const Vma& vma) {
      t.mm.pt.clear_range(vma.start, vma.end,
                          [&](VAddr v, Pte& pte) { drop_pte(t, v, pte); });
    });
    t.alive = false;
  }
  sync::Guard gt(tasks_mu_);
  tasks_.erase(pid);
  std::erase(task_order_, pid);
}

Task& Kernel::task(Pid pid) {
  auto it = tasks_.find(pid);
  assert(it != tasks_.end() && "no such task");
  return *it->second;
}

const Task& Kernel::task(Pid pid) const {
  auto it = tasks_.find(pid);
  assert(it != tasks_.end() && "no such task");
  return *it->second;
}

bool Kernel::task_exists(Pid pid) const { return tasks_.contains(pid); }

// ---------------------------------------------------------------------------
// Mapping syscalls
// ---------------------------------------------------------------------------

std::optional<VAddr> Kernel::sys_mmap_anon(Pid pid, std::uint64_t len,
                                           VmFlag prot) {
  ++stats_.syscalls;
  clock_.advance(costs_.syscall);
  if (len == 0 || !task_exists(pid)) return std::nullopt;
  Task& t = task(pid);
  sync::Guard g(t.mu);
  const std::uint64_t alen = page_align_up(len);
  const auto addr =
      t.mm.vmas.find_free_range(alen, t.mm.mmap_base, PageTable::kUserTop);
  if (!addr) return std::nullopt;
  const bool inserted = t.mm.vmas.insert(*addr, *addr + alen, prot);
  assert(inserted);
  (void)inserted;
  clock_.advance(costs_.vma_op);
  return addr;
}

KStatus Kernel::sys_munmap(Pid pid, VAddr addr, std::uint64_t len) {
  ++stats_.syscalls;
  clock_.advance(costs_.syscall);
  if (!task_exists(pid)) return KStatus::NoEnt;
  if (len == 0 || (addr & kPageMask) != 0) return KStatus::Inval;
  Task& t = task(pid);
  sync::Guard g(t.mu);
  const VAddr end = page_align_up(addr + len);
  t.mm.pt.clear_range(addr, end,
                      [&](VAddr v, Pte& pte) { drop_pte(t, v, pte); });
  const std::uint32_t ops = t.mm.vmas.remove_range(addr, end);
  clock_.advance(costs_.vma_op * ops);
  return KStatus::Ok;
}

KStatus Kernel::sys_mprotect(Pid pid, VAddr addr, std::uint64_t len,
                             VmFlag prot) {
  ++stats_.syscalls;
  clock_.advance(costs_.syscall);
  if (!task_exists(pid)) return KStatus::NoEnt;
  if (len == 0) return KStatus::Inval;
  Task& t = task(pid);
  sync::Guard g(t.mu);
  const VAddr start = page_align_down(addr);
  const VAddr end = page_align_up(addr + len);
  std::uint32_t ops = 0;
  const VmFlag rw = VmFlag::Read | VmFlag::Write;
  const bool covered =
      t.mm.vmas.set_flags_range(start, end, prot & rw, rw & ~prot, &ops);
  clock_.advance(costs_.vma_op * ops);
  if (!covered) return KStatus::NoMem;
  if (!has(prot, VmFlag::Write)) {
    // Write-protect existing PTEs so the hardware faults on the next store.
    t.mm.pt.for_each_in(start, end, [&](VAddr, Pte& pte) {
      if (pte.present) pte.writable = false;
      clock_.advance(costs_.pte_walk_level);
    });
  }
  return KStatus::Ok;
}

std::optional<VAddr> Kernel::map_device_page(Pid pid, Pfn dev_pfn,
                                             VmFlag prot) {
  ++stats_.syscalls;
  clock_.advance(costs_.syscall);
  if (!task_exists(pid) || !phys_.valid(dev_pfn)) return std::nullopt;
  if (!phys_.page(dev_pfn).reserved()) return std::nullopt;  // devices only
  Task& t = task(pid);
  sync::Guard g(t.mu);
  const auto addr =
      t.mm.vmas.find_free_range(kPageSize, t.mm.mmap_base, PageTable::kUserTop);
  if (!addr) return std::nullopt;
  const bool inserted =
      t.mm.vmas.insert(*addr, *addr + kPageSize, prot | VmFlag::Io);
  assert(inserted);
  (void)inserted;
  Pte& pte = t.mm.pt.ensure(*addr);
  pte.present = true;
  pte.pfn = dev_pfn;
  pte.writable = has(prot, VmFlag::Write);
  // Note: reserved frames carry a permanent reference; no get_page here, and
  // drop_pte's put_page is balanced by reserved pages never reaching 0...
  get_page(dev_pfn);  // ...still take one so teardown stays symmetric.
  ++t.mm.rss;
  return addr;
}

KStatus Kernel::sys_madvise_dontfork(Pid pid, VAddr addr, std::uint64_t len,
                                     bool dontfork) {
  ++stats_.syscalls;
  clock_.advance(costs_.syscall);
  if (!task_exists(pid)) return KStatus::NoEnt;
  if (len == 0) return KStatus::Inval;
  Task& t = task(pid);
  sync::Guard g(t.mu);
  const VAddr start = page_align_down(addr);
  const VAddr end = page_align_up(addr + len);
  std::uint32_t ops = 0;
  const bool covered = t.mm.vmas.set_flags_range(
      start, end, dontfork ? VmFlag::DontFork : VmFlag::None,
      dontfork ? VmFlag::None : VmFlag::DontFork, &ops);
  clock_.advance(costs_.vma_op * ops);
  return covered ? KStatus::Ok : KStatus::NoMem;
}

void Kernel::drop_pte(Task& t, VAddr vaddr, Pte& pte) {
  if (pte.present) {
    notify_invalidate(t.pid, vaddr, pte.pfn);
    Page& pg = phys_.page(pte.pfn);
    if (pg.mapped_pid == t.pid) pg.mapped_pid = kInvalidPid;
    put_page(pte.pfn);
    --t.mm.rss;
  } else if (pte.swap != kInvalidSwapSlot) {
    swap_.free(pte.swap);
  }
}

void Kernel::add_mmu_notifier(MmuNotifier* notifier) {
  mmu_notifiers_.push_back(notifier);
}

void Kernel::remove_mmu_notifier(MmuNotifier* notifier) {
  std::erase(mmu_notifiers_, notifier);
}

void Kernel::notify_invalidate(Pid pid, VAddr vaddr, Pfn old_pfn) {
  for (MmuNotifier* n : mmu_notifiers_) n->on_invalidate(pid, vaddr, old_pfn);
}

void Kernel::add_pressure_handler(PressureHandler* handler) {
  pressure_handlers_.push_back(handler);
}

void Kernel::remove_pressure_handler(PressureHandler* handler) {
  std::erase(pressure_handlers_, handler);
}

// ---------------------------------------------------------------------------
// Page-frame services
// ---------------------------------------------------------------------------

Pfn Kernel::get_free_page() {
  if (buddy_.free_frames() <= config_.free_pages_min) {
    (void)try_to_free_pages(config_.swap_cluster);
  }
  Pfn pfn = buddy_.alloc(0);
  if (pfn == kInvalidPfn) {
    (void)try_to_free_pages(config_.swap_cluster);
    pfn = buddy_.alloc(0);
  }
  if (pfn == kInvalidPfn && config_.sync.is_threaded()) {
    // Threaded only: try_to_free_pages may have returned 0 because another
    // worker holds the reclaim gate. Yield to it and retry before declaring
    // OOM. The serial path above is untouched (determinism oracle).
    for (int attempt = 0; attempt < 64 && pfn == kInvalidPfn; ++attempt) {
      std::this_thread::yield();
      (void)try_to_free_pages(config_.swap_cluster);
      pfn = buddy_.alloc(0);
    }
  }
  if (pfn == kInvalidPfn) {
    ++stats_.oom_failures;
    return kInvalidPfn;
  }
  clock_.advance(costs_.page_alloc);
  return pfn;
}

void Kernel::get_page(Pfn pfn) {
  assert(phys_.valid(pfn) && phys_.page(pfn).count > 0);
  phys_.get(pfn);
}

void Kernel::put_page(Pfn pfn) {
  Page& pg = phys_.page(pfn);
  assert(pg.count > 0 && "put_page on free frame");
  if (--pg.count == 0) {
    if (pg.swap_slot != kInvalidSwapSlot) {
      swap_.free(pg.swap_slot);
      pg.swap_slot = kInvalidSwapSlot;
      pg.flags &= ~PageFlag::SwapCache;
    }
    pg.mapped_pid = kInvalidPid;
    buddy_.free(pfn, 0);
  }
}

std::optional<Pfn> Kernel::resolve(Pid pid, VAddr addr) const {
  if (!task_exists(pid)) return std::nullopt;
  const Pte* pte = task(pid).mm.pt.walk(page_align_down(addr));
  if (!pte || !pte->present) return std::nullopt;
  return pte->pfn;
}

// ---------------------------------------------------------------------------
// System-V-style shared memory
// ---------------------------------------------------------------------------

ShmId Kernel::shm_create(std::uint64_t bytes) {
  ++stats_.syscalls;
  clock_.advance(costs_.syscall);
  if (bytes == 0) return kInvalidShm;
  sync::Guard g(tasks_mu_);
  ShmSegment seg;
  seg.bytes = page_align_up(bytes);
  seg.frames.assign(seg.bytes >> kPageShift, kInvalidPfn);
  seg.alive = true;
  shms_.push_back(std::move(seg));
  return static_cast<ShmId>(shms_.size() - 1);
}

std::optional<VAddr> Kernel::shm_attach(Pid pid, ShmId id) {
  ++stats_.syscalls;
  clock_.advance(costs_.syscall);
  if (!task_exists(pid) || id >= shms_.size() || !shms_[id].alive)
    return std::nullopt;
  Task& t = task(pid);
  sync::Guard g(t.mu);
  sync::Guard gs(tasks_mu_);  // task mutex -> tasks_mu_, same as exit_task
  const std::uint64_t bytes = shms_[id].bytes;
  const auto addr =
      t.mm.vmas.find_free_range(bytes, t.mm.mmap_base, PageTable::kUserTop);
  if (!addr) return std::nullopt;
  const bool inserted = t.mm.vmas.insert(
      *addr, *addr + bytes, VmFlag::Read | VmFlag::Write | VmFlag::Shared);
  assert(inserted);
  (void)inserted;
  t.mm.vmas.find(*addr)->shm = id;
  clock_.advance(costs_.vma_op);
  return addr;
}

KStatus Kernel::shm_destroy(ShmId id) {
  ++stats_.syscalls;
  clock_.advance(costs_.syscall);
  if (id >= shms_.size() || !shms_[id].alive) return KStatus::NoEnt;
  sync::Guard g(tasks_mu_);
  ShmSegment& seg = shms_[id];
  for (Pfn& pfn : seg.frames) {
    if (pfn != kInvalidPfn) {
      put_page(pfn);  // the segment's own reference
      pfn = kInvalidPfn;
    }
  }
  seg.alive = false;
  return KStatus::Ok;
}

std::uint64_t Kernel::shm_bytes(ShmId id) const {
  return id < shms_.size() ? shms_[id].bytes : 0;
}

// ---------------------------------------------------------------------------
// Self-check: global accounting audit
// ---------------------------------------------------------------------------

std::vector<std::string> Kernel::self_check() const {
  std::vector<std::string> issues;
  auto complain = [&](std::string msg) { issues.push_back(std::move(msg)); };

  // Page map vs. buddy: free frames agree; free frames carry no pins.
  std::uint32_t free_by_map = 0;
  std::uint32_t pinned_by_map = 0;
  for (Pfn pfn = 0; pfn < phys_.num_frames(); ++pfn) {
    const Page& pg = phys_.page(pfn);
    if (pg.free()) {
      ++free_by_map;
      if (pg.pinned())
        complain("frame " + std::to_string(pfn) + " free but pinned");
    } else if (pg.pinned()) {
      ++pinned_by_map;
    }
  }
  if (free_by_map != buddy_.free_frames()) {
    complain("free-frame mismatch: page map " + std::to_string(free_by_map) +
             " vs buddy " + std::to_string(buddy_.free_frames()));
  }
  if (pinned_by_map != pinned_frames_.load()) {
    complain("pin accounting drift: page map " + std::to_string(pinned_by_map) +
             " vs counter " + std::to_string(pinned_frames_.load()));
  }

  // Per-task: RSS, PTE sanity, swap references.
  std::unordered_map<SwapSlot, std::uint32_t> slot_refs;
  for (const Pid pid : task_order_) {
    auto it = tasks_.find(pid);
    if (it == tasks_.end()) continue;
    const Task& t = *it->second;
    std::uint64_t rss = 0;
    // for_each_in is non-const; walk via a const copy of the VMA list.
    t.mm.vmas.for_each([&](const Vma& vma) {
      for (VAddr v = vma.start; v < vma.end; v += kPageSize) {
        const Pte* pte = t.mm.pt.walk(v);
        if (!pte || pte->none()) continue;
        if (pte->present) {
          ++rss;
          if (!phys_.valid(pte->pfn) || phys_.page(pte->pfn).free()) {
            complain("pid " + std::to_string(pid) + " maps freed frame at 0x" +
                     std::to_string(v));
          }
        } else {
          ++slot_refs[pte->swap];
        }
      }
    });
    if (rss != t.mm.rss) {
      complain("pid " + std::to_string(pid) + " rss drift: counted " +
               std::to_string(rss) + " vs " + std::to_string(t.mm.rss));
    }
  }
  for (const auto& [slot, refs] : slot_refs) {
    if (swap_.refcount(slot) < refs) {
      complain("swap slot " + std::to_string(slot) + " underaccounted: " +
               std::to_string(swap_.refcount(slot)) + " < " +
               std::to_string(refs));
    }
  }
  return issues;
}

// ---------------------------------------------------------------------------
// Kernel I/O page locking (ll_rw_block-style), hazard substrate for E7
// ---------------------------------------------------------------------------

KStatus Kernel::start_kernel_io(Pfn pfn) {
  if (!phys_.valid(pfn)) return KStatus::Inval;
  sync::Guard g(io_mu_);
  Page& pg = phys_.page(pfn);
  if (pg.locked()) return KStatus::Busy;
  pg.flags |= PageFlag::Locked;
  inflight_io_[pfn] = 1;
  trace_.record(clock_.now(), TraceEvent::KernelIoStart, 0, 0, pfn);
  return KStatus::Ok;
}

void Kernel::end_kernel_io(Pfn pfn) {
  sync::Guard g(io_mu_);
  auto it = inflight_io_.find(pfn);
  if (it == inflight_io_.end()) return;
  inflight_io_.erase(it);
  Page& pg = phys_.page(pfn);
  if (!pg.locked()) {
    // Someone (a page-flag-style driver) cleared PG_locked under our I/O.
    ++stats_.io_lock_clobbered;
  } else {
    pg.flags &= ~PageFlag::Locked;
  }
  if (pg.free()) {
    // The frame was reclaimed while the I/O was (supposedly) in flight.
    ++stats_.io_page_stolen;
  }
  trace_.record(clock_.now(), TraceEvent::KernelIoEnd, 0, 0, pfn);
}

}  // namespace vialock::simkern
