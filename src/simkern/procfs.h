// procfs.h - /proc-style text reports over the simulated kernel, for
// examples, debugging sessions and bench headers.
#pragma once

#include <string>

#include "simkern/kernel.h"

namespace vialock::simkern {

/// /proc/meminfo: totals, free, pinned, page cache, swap.
[[nodiscard]] std::string meminfo(const Kernel& kern);

/// /proc/vmstat: fault/reclaim/swap event counters.
[[nodiscard]] std::string vmstat(const Kernel& kern);

/// /proc/<pid>/status: one task's memory footprint.
[[nodiscard]] std::string task_status(const Kernel& kern, Pid pid);

}  // namespace vialock::simkern
