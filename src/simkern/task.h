// task.h - task_struct: one simulated process with its address space,
// capabilities and rlimits.
//
// Capabilities matter to the paper: only tasks holding CAP_IPC_LOCK may call
// mlock(), which is why the VMA-based locking approach needs either the
// User-DMA kernel patch or the cap_raise()/cap_lower() trick (section 3.2).
#pragma once

#include <cstdint>
#include <string>

#include "simkern/pagetable.h"
#include "simkern/types.h"
#include "simkern/vma.h"
#include "sync/mutex.h"
#include "util/flags.h"

namespace vialock::simkern {

enum class Capability : std::uint8_t {
  None = 0,
  IpcLock = 1 << 0,  ///< CAP_IPC_LOCK: may pin memory via mlock
  SysAdmin = 1 << 1,
};

}  // namespace vialock::simkern

template <>
inline constexpr bool vialock::enable_flag_ops<vialock::simkern::Capability> = true;

namespace vialock::simkern {

/// mm_struct: the data half of an address space (algorithms live in Kernel).
struct AddressSpace {
  VmaSet vmas;
  PageTable pt;
  std::uint64_t rss = 0;           ///< resident pages
  std::uint64_t locked_pages = 0;  ///< pages under VM_LOCKED (rlimit accounting)
  VAddr mmap_base = 0x40000000;    ///< where anonymous mmaps start (i386 layout)
};

struct Task {
  Pid pid = kInvalidPid;
  std::string name;
  Capability caps = Capability::None;
  std::uint64_t rlimit_memlock = ~0ULL;  ///< bytes lockable via mlock
  AddressSpace mm;
  VAddr swap_cursor = 0;  ///< swap_out_process resume address (task->swap_address)
  bool alive = true;
  /// Per-task lock (the mmap_sem of this model): every kernel entry that
  /// reads or mutates this task's VMA set or page table holds it; the
  /// reclaim walk only try-locks it and skips tasks that are mid-syscall.
  /// Recursive, so map_user_kiobuf -> make_present style nesting is fine.
  sync::Mutex mu;

  [[nodiscard]] bool capable(Capability c) const { return has(caps, c); }
};

}  // namespace vialock::simkern
