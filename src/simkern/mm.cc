// mm.cc - demand paging: the page-fault path (minor / major / COW) and the
// user-memory access helpers that drive it.
//
// The major-fault branch is the second half of the paper's failure analysis:
// a swapped-out PTE is satisfied by allocating a *new* frame and reading the
// contents back from swap - "it cannot be one of the pages formerly mapped to
// the registered region since the kernel still regards them used" (section
// 3.1). After this, a NIC holding the old physical address DMAs into a frame
// the process can no longer see.
#include <algorithm>
#include <cassert>
#include <cstring>

#include "simkern/kernel.h"

namespace vialock::simkern {

namespace {

[[nodiscard]] bool needs_fault(const Pte* pte, bool write) {
  if (!pte || !pte->present) return true;
  if (write && (pte->cow || !pte->writable)) return true;
  return false;
}

}  // namespace

KStatus Kernel::handle_fault(Task& t, VAddr vaddr, Access access) {
  const VAddr page_addr = page_align_down(vaddr);
  clock_.advance(costs_.fault_entry);

  const Vma* vma = t.mm.vmas.find(page_addr);
  if (!vma) {
    ++stats_.segv;
    return KStatus::Fault;
  }
  const bool write = access == Access::Write;
  if (write && !has(vma->flags, VmFlag::Write)) {
    ++stats_.segv;
    return KStatus::Fault;
  }
  if (!write && !has(vma->flags, VmFlag::Read)) {
    ++stats_.segv;
    return KStatus::Fault;
  }

  std::uint32_t levels = 0;
  Pte& pte = t.mm.pt.ensure(page_addr, &levels);
  clock_.advance(costs_.pte_walk_level * (2 + levels));
  if (levels) clock_.advance(costs_.page_alloc);  // new second-level table

  if (pte.present) {
    if (write && pte.cow) {
      // Copy-on-write break.
      Page& old = phys_.page(pte.pfn);
      if (old.count == 1) {
        // Sole owner: just regain write access.
        pte.cow = false;
        pte.writable = true;
        pte.dirty = true;
      } else {
        const Pfn fresh = get_free_page();
        if (fresh == kInvalidPfn) return KStatus::NoMem;
        phys_.copy_frame(fresh, pte.pfn);
        clock_.advance(costs_.copy(kPageSize));
        notify_invalidate(t.pid, page_addr, pte.pfn);  // translation replaced
        put_page(pte.pfn);
        pte.pfn = fresh;
        pte.cow = false;
        pte.writable = true;
        pte.dirty = true;
        Page& np = phys_.page(fresh);
        np.mapped_pid = t.pid;
        np.mapped_vaddr = page_addr;
      }
      ++stats_.cow_breaks;
      trace_.record(clock_.now(), TraceEvent::CowBreak, t.pid, page_addr,
                    pte.pfn);
      return KStatus::Ok;
    }
    // Present but write-protected without COW: regain access per VMA.
    if (write && !pte.writable) {
      pte.writable = true;
      pte.dirty = true;
    }
    return KStatus::Ok;
  }

  if (has(vma->flags, VmFlag::Shared) && vma->shm != kInvalidShm) {
    return shm_fault(t, *vma, page_addr, pte, write);
  }

  if (pte.swap != kInvalidSwapSlot) {
    // Major fault: read the page back from swap into a freshly allocated
    // frame (never the old one - see file comment).
    const Pfn fresh = get_free_page();
    if (fresh == kInvalidPfn) return KStatus::NoMem;
    if (const KStatus st = swap_.read(pte.swap, phys_.frame(fresh));
        !ok(st)) {
      // Injected swap I/O error: the page stays on swap (slot kept, PTE
      // untouched) so a retry can succeed; the fresh frame goes back.
      put_page(fresh);
      return st;
    }
    swap_.free(pte.swap);
    pte.swap = kInvalidSwapSlot;
    pte.present = true;
    pte.pfn = fresh;
    pte.writable = write && has(vma->flags, VmFlag::Write);
    pte.cow = false;
    pte.accessed = true;
    pte.dirty = write;
    Page& np = phys_.page(fresh);
    np.mapped_pid = t.pid;
    np.mapped_vaddr = page_addr;
    ++t.mm.rss;
    ++stats_.major_faults;
    ++stats_.pages_swapped_in;
    trace_.record(clock_.now(), TraceEvent::MajorFault, t.pid, page_addr,
                  fresh);

    // Swap read-ahead (page_cluster): pull adjacent swapped pages of the
    // same VMA in while the disk head is here.
    for (std::uint32_t ahead = 1; ahead <= config_.swap_readahead; ++ahead) {
      const VAddr v = page_addr + (static_cast<VAddr>(ahead) << kPageShift);
      if (v >= vma->end) break;
      Pte* apte = t.mm.pt.walk(v);
      if (!apte || apte->present || apte->swap == kInvalidSwapSlot) break;
      const Pfn f2 = get_free_page();
      if (f2 == kInvalidPfn) break;
      if (!ok(swap_.read_sequential(apte->swap, phys_.frame(f2)))) {
        put_page(f2);  // speculative read failed: abandon the read-ahead run
        break;
      }
      swap_.free(apte->swap);
      apte->swap = kInvalidSwapSlot;
      apte->present = true;
      apte->pfn = f2;
      apte->writable = false;  // regain write access lazily
      apte->cow = false;
      apte->accessed = false;  // speculative: still first in line to evict
      apte->dirty = false;
      Page& ap = phys_.page(f2);
      ap.mapped_pid = t.pid;
      ap.mapped_vaddr = v;
      ++t.mm.rss;
      ++stats_.pages_swapped_in;
      ++stats_.readahead_pages;
    }
    return KStatus::Ok;
  }

  // Minor fault: demand-zero anonymous page.
  const Pfn fresh = get_free_page();
  if (fresh == kInvalidPfn) return KStatus::NoMem;
  phys_.zero_frame(fresh);
  clock_.advance(costs_.zero_page);
  pte.present = true;
  pte.pfn = fresh;
  pte.writable = write && has(vma->flags, VmFlag::Write);
  pte.cow = false;
  pte.accessed = true;
  pte.dirty = write;
  Page& np = phys_.page(fresh);
  np.mapped_pid = t.pid;
  np.mapped_vaddr = page_addr;
  ++t.mm.rss;
  ++stats_.minor_faults;
  trace_.record(clock_.now(), TraceEvent::MinorFault, t.pid, page_addr, fresh);
  return KStatus::Ok;
}

KStatus Kernel::shm_fault(Task& t, const Vma& vma, VAddr page_addr, Pte& pte,
                          bool /*write*/) {
  ShmSegment& seg = shms_[vma.shm];
  if (!seg.alive) {
    ++stats_.segv;
    return KStatus::Fault;
  }
  const auto idx = static_cast<std::size_t>(vma.shm_pgoff) +
                   static_cast<std::size_t>((page_addr - vma.start) >> kPageShift);
  assert(idx < seg.frames.size());
  if (seg.frames[idx] == kInvalidPfn) {
    // First toucher anywhere: allocate and zero; the segment itself holds
    // the allocation reference so the frame outlives any single attacher.
    const Pfn fresh = get_free_page();
    if (fresh == kInvalidPfn) return KStatus::NoMem;
    phys_.zero_frame(fresh);
    clock_.advance(costs_.zero_page);
    seg.frames[idx] = fresh;
  }
  const Pfn pfn = seg.frames[idx];
  get_page(pfn);  // this mapping's reference
  pte.present = true;
  pte.pfn = pfn;
  pte.writable = has(vma.flags, VmFlag::Write);
  pte.cow = false;
  pte.accessed = true;
  ++t.mm.rss;
  ++stats_.minor_faults;
  trace_.record(clock_.now(), TraceEvent::MinorFault, t.pid, page_addr, pfn);
  return KStatus::Ok;
}

KStatus Kernel::access_range(Pid pid, VAddr addr, std::uint64_t len,
                             Access access, std::span<const std::byte> src,
                             std::span<std::byte> dst) {
  if (!task_exists(pid)) return KStatus::NoEnt;
  if (len == 0) return KStatus::Ok;
  Task& t = task(pid);
  sync::Guard g(t.mu);

  std::uint64_t done = 0;
  while (done < len) {
    const VAddr at = addr + done;
    const VAddr page_addr = page_align_down(at);
    const std::uint64_t in_page =
        std::min(len - done, kPageSize - (at - page_addr));

    Pte* pte = t.mm.pt.walk(page_addr);
    if (needs_fault(pte, access == Access::Write)) {
      const KStatus st = handle_fault(t, page_addr, access);
      if (!ok(st)) return st;
      pte = t.mm.pt.walk(page_addr);
      assert(pte && pte->present);
    }
    pte->accessed = true;
    Page& pg = phys_.page(pte->pfn);
    pg.flags |= PageFlag::Referenced;
    if (access == Access::Write) {
      pte->dirty = true;
      pg.flags |= PageFlag::Dirty;
    }

    auto frame = phys_.frame(pte->pfn);
    const std::uint64_t off = at - page_addr;
    if (!src.empty()) {
      std::memcpy(frame.data() + off, src.data() + done, in_page);
      clock_.advance(costs_.copy(in_page));
    } else if (!dst.empty()) {
      std::memcpy(dst.data() + done, frame.data() + off, in_page);
      clock_.advance(costs_.copy(in_page));
    } else {
      clock_.advance(costs_.mem_touch);
    }
    done += in_page;
  }
  return KStatus::Ok;
}

KStatus Kernel::write_user(Pid pid, VAddr addr, std::span<const std::byte> data) {
  return access_range(pid, addr, data.size(), Access::Write, data, {});
}

KStatus Kernel::read_user(Pid pid, VAddr addr, std::span<std::byte> out) {
  return access_range(pid, addr, out.size(), Access::Read, {}, out);
}

KStatus Kernel::touch(Pid pid, VAddr addr, bool write) {
  return access_range(pid, addr, 1, write ? Access::Write : Access::Read, {}, {});
}

KStatus Kernel::copy_user(Pid pid, VAddr dst, VAddr src, std::uint64_t len) {
  if (!task_exists(pid)) return KStatus::NoEnt;
  Task& t = task(pid);
  sync::Guard g(t.mu);
  std::uint64_t done = 0;
  while (done < len) {
    const VAddr s = src + done;
    const VAddr d = dst + done;
    const VAddr s_page = page_align_down(s);
    const VAddr d_page = page_align_down(d);
    const std::uint64_t chunk =
        std::min({len - done, kPageSize - (s - s_page), kPageSize - (d - d_page)});

    Pte* spte = t.mm.pt.walk(s_page);
    if (needs_fault(spte, /*write=*/false)) {
      const KStatus st = handle_fault(t, s_page, Access::Read);
      if (!ok(st)) return st;
      spte = t.mm.pt.walk(s_page);
    }
    Pte* dpte = t.mm.pt.walk(d_page);
    if (needs_fault(dpte, /*write=*/true)) {
      const KStatus st = handle_fault(t, d_page, Access::Write);
      if (!ok(st)) return st;
      dpte = t.mm.pt.walk(d_page);
      spte = t.mm.pt.walk(s_page);  // COW break may have moved things
    }
    assert(spte && spte->present && dpte && dpte->present);
    spte->accessed = true;
    dpte->accessed = true;
    dpte->dirty = true;
    phys_.page(spte->pfn).flags |= PageFlag::Referenced;
    phys_.page(dpte->pfn).flags |= PageFlag::Referenced | PageFlag::Dirty;

    auto sf = phys_.frame(spte->pfn);
    auto df = phys_.frame(dpte->pfn);
    std::memmove(df.data() + (d - d_page), sf.data() + (s - s_page), chunk);
    clock_.advance(costs_.copy(chunk));
    done += chunk;
  }
  return KStatus::Ok;
}

KStatus Kernel::make_present(Pid pid, VAddr addr, bool write) {
  if (!task_exists(pid)) return KStatus::NoEnt;
  Task& t = task(pid);
  sync::Guard g(t.mu);  // recursive: map_user_kiobuf/do_mlock already hold it
  const VAddr page_addr = page_align_down(addr);
  Pte* pte = t.mm.pt.walk(page_addr);
  if (!needs_fault(pte, write)) return KStatus::Ok;
  return handle_fault(t, page_addr, write ? Access::Write : Access::Read);
}

}  // namespace vialock::simkern
