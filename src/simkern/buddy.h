// buddy.h - the buddy page-frame allocator behind get_free_pages().
//
// A faithful order-based buddy system: free frames live on per-order free
// lists; allocation splits higher orders, freeing coalesces with the buddy
// when it is also free. The allocator only tracks *which* frames are free -
// Page::count transitions (0 <-> 1) are performed here so that the page map
// and the free lists can never disagree.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "simkern/page.h"
#include "simkern/types.h"
#include "sync/mutex.h"
#include "sync/policy.h"
#include "sync/relaxed.h"

namespace vialock::simkern {

class BuddyAllocator {
 public:
  static constexpr std::uint32_t kMaxOrder = 10;  // up to 4 MB blocks

  /// Builds free lists over all frames of `mem` except the first
  /// `reserved_low` frames, which are marked PG_reserved (kernel text, BIOS
  /// holes - mirrors how mem_map treats low memory).
  BuddyAllocator(PhysicalMemory& mem, std::uint32_t reserved_low);

  BuddyAllocator(const BuddyAllocator&) = delete;
  BuddyAllocator& operator=(const BuddyAllocator&) = delete;

  /// Allocate 2^order contiguous frames; returns first pfn or kInvalidPfn.
  /// On success every frame in the block has count == 1.
  [[nodiscard]] Pfn alloc(std::uint32_t order = 0);

  /// Free a block previously returned by alloc() (count of each frame must
  /// already be 0 when called from __free_page; this sets list membership).
  void free(Pfn pfn, std::uint32_t order = 0);

  [[nodiscard]] std::uint32_t free_frames() const {
    return static_cast<std::uint32_t>(free_frames_.load());
  }
  [[nodiscard]] std::uint32_t total_frames() const { return total_frames_; }

  /// Number of blocks currently on the free list of `order`.
  [[nodiscard]] std::uint32_t free_blocks(std::uint32_t order) const;

  /// Arm fault injection (site BuddyAlloc, action Fail: the allocation is
  /// refused as if memory were exhausted); nullptr disarms.
  void set_fault_engine(fault::FaultEngine* engine) { faults_ = engine; }
  [[nodiscard]] std::uint64_t injected_failures() const {
    return injected_failures_;
  }

  /// Execution mode: threaded arms the internal CNA mutex serializing the
  /// free lists; serial keeps it a no-op branch.
  void set_policy(sync::SyncPolicy p) { mu_.set_policy(p); }

 private:
  struct FrameState {
    bool free = false;
    std::uint8_t order = 0;  ///< valid only for the head frame of a free block
  };

  void push_free(Pfn pfn, std::uint32_t order);
  void remove_free(Pfn pfn, std::uint32_t order);

  PhysicalMemory& mem_;
  std::array<std::vector<Pfn>, kMaxOrder + 1> free_lists_;
  std::vector<FrameState> state_;
  fault::FaultEngine* faults_ = nullptr;
  mutable sync::Mutex mu_;      ///< serializes free lists + frame state
  sync::Relaxed free_frames_;   ///< readable without the lock (watermarks)
  std::uint32_t total_frames_ = 0;
  sync::Relaxed injected_failures_;
};

}  // namespace vialock::simkern
