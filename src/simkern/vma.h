// vma.h - vm_area_struct and the per-address-space VMA set.
//
// Carries VM_LOCKED, the per-VMA locking hook of the paper's section 2.2:
// swap_out_vma() skips any VMA with VM_LOCKED set. do_mlock() (mlock.h) works
// by splitting VMAs at the range edges and setting the flag, exactly as
// described in the paper's section 3.2.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "simkern/types.h"
#include "util/extent_map.h"
#include "util/flags.h"

namespace vialock::simkern {

enum class VmFlag : std::uint16_t {
  None = 0,
  Read = 1 << 0,
  Write = 1 << 1,
  Locked = 1 << 2,    ///< VM_LOCKED: exempt from swapping
  Io = 1 << 3,        ///< VM_IO: device mapping (doorbells), never swapped
  Shared = 1 << 4,    ///< shared rather than private (no COW)
  DontFork = 1 << 5,  ///< VM_DONTCOPY: not inherited by fork (MADV_DONTFORK);
                      ///< the standard fix for fork vs. pinned DMA buffers
};

}  // namespace vialock::simkern

template <>
inline constexpr bool vialock::enable_flag_ops<vialock::simkern::VmFlag> = true;

namespace vialock::simkern {

/// Shared-memory segment identifier (simkern shm_* calls).
using ShmId = std::uint32_t;
inline constexpr ShmId kInvalidShm = static_cast<ShmId>(-1);

struct Vma {
  VAddr start = 0;  ///< inclusive, page aligned
  VAddr end = 0;    ///< exclusive, page aligned
  VmFlag flags = VmFlag::None;
  ShmId shm = kInvalidShm;      ///< backing segment for VM_SHARED mappings
  std::uint32_t shm_pgoff = 0;  ///< segment page index of `start` (survives
                                ///< splits, cf. vm_pgoff in Linux)

  [[nodiscard]] bool contains(VAddr a) const { return a >= start && a < end; }
  [[nodiscard]] std::uint64_t pages() const { return (end - start) >> kPageShift; }
};

/// Upper bound of the gap index universe: every VMA must end at or below
/// this. Comfortably above PageTable::kUserTop (3 GB) so device mappings and
/// tests all fit.
inline constexpr VAddr kVmaUniverse = 1ULL << 46;

/// Sorted, non-overlapping set of VMAs for one address space.
///
/// Lookup (`find`) is an upper_bound on the start-keyed map; gap placement
/// (`find_free_range`, the mmap hot path) walks a maintained free-extent
/// index of the address-space complement instead of scanning every VMA, so
/// both are O(log n). Coverage only changes in insert()/remove_range();
/// split/merge/flag changes never touch the gap index.
class VmaSet {
 public:
  /// find_vma(): the VMA covering `addr`, or nullptr.
  [[nodiscard]] const Vma* find(VAddr addr) const;
  [[nodiscard]] Vma* find(VAddr addr);

  /// Insert a new region; fails (returns false) if it overlaps an existing one.
  bool insert(VAddr start, VAddr end, VmFlag flags);

  /// Remove every VMA piece inside [start, end), splitting edges as needed.
  /// Returns the number of vm_area_struct operations performed (for costing).
  std::uint32_t remove_range(VAddr start, VAddr end);

  /// Apply `set` / clear `clear` flag bits over [start, end), splitting at the
  /// edges and merging adjacent identical neighbours afterwards - the engine
  /// behind do_mlock()/do_munlock(). Fails with false if any byte of the range
  /// is not covered by a VMA (mlock on unmapped memory => ENOMEM in Linux).
  /// `vma_ops` (optional) counts split/merge operations for cost accounting.
  bool set_flags_range(VAddr start, VAddr end, VmFlag set, VmFlag clear,
                       std::uint32_t* vma_ops = nullptr);

  /// True iff [start, end) is fully covered by VMAs.
  [[nodiscard]] bool covered(VAddr start, VAddr end) const;

  /// Lowest gap of at least `len` bytes in [lo, hi) for mmap placement.
  /// O(log n + gaps inspected) via the maintained gap index.
  [[nodiscard]] std::optional<VAddr> find_free_range(std::uint64_t len, VAddr lo,
                                                     VAddr hi) const;

  /// Number of holes in the address space (gap-index fragmentation metric).
  [[nodiscard]] std::size_t gap_count() const { return gaps_.extent_count(); }

  [[nodiscard]] std::size_t count() const { return vmas_.size(); }

  /// Snapshot in address order (swap_out_process iterates this).
  [[nodiscard]] std::vector<const Vma*> in_order() const;

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [start, vma] : vmas_) fn(vma);
  }

 private:
  /// Split the VMA containing `addr` so that a boundary falls exactly at
  /// `addr`. No-op if `addr` already is a boundary or is uncovered.
  /// Returns true if a split happened.
  bool split_at(VAddr addr);

  /// Merge `it` with its successor if contiguous with equal flags.
  /// Returns true if a merge happened (iterator `it` stays valid either way).
  bool try_merge_after(std::map<VAddr, Vma>::iterator it, std::uint32_t* vma_ops);

  std::map<VAddr, Vma> vmas_;  ///< keyed by start address
  /// Free-extent index of the complement of vmas_ over [0, kVmaUniverse):
  /// kept in lockstep by insert()/remove_range() (the only coverage changes).
  ExtentMap<VAddr, std::uint64_t> gaps_{kVmaUniverse};
};

}  // namespace vialock::simkern
