// filecache.cc - simulated files and the page cache over them.
//
// Gives shrink_mmap() its real job: "The first units to be shrunk are the
// buffer cache and the page cache" (paper section 2.2). read()/write() move
// data between user memory and cache frames; a cache frame holds one
// reference (the cache's own), is PG_locked for the duration of its disk
// I/O, and is discarded by the clock scan when old - unless PG_locked,
// pinned or extra-referenced, exactly the skip conditions the paper lists.
#include <algorithm>
#include <cassert>
#include <cstring>

#include "simkern/kernel.h"

namespace vialock::simkern {

namespace {

constexpr std::uint64_t cache_key(FileId file, std::uint32_t index) {
  return (static_cast<std::uint64_t>(file) << 32) | index;
}

}  // namespace

FileId Kernel::create_file(std::uint64_t bytes) {
  files_.push_back(SimFile{std::vector<std::byte>(bytes)});
  return static_cast<FileId>(files_.size() - 1);
}

Pfn Kernel::cache_page_in(FileId file, std::uint32_t index) {
  const auto key = cache_key(file, index);
  if (auto it = page_cache_.find(key); it != page_cache_.end()) {
    ++stats_.pagecache_hits;
    phys_.page(it->second).flags |= PageFlag::Referenced;
    return it->second;
  }
  ++stats_.pagecache_misses;
  const Pfn pfn = get_free_page();
  if (pfn == kInvalidPfn) return kInvalidPfn;
  Page& pg = phys_.page(pfn);
  // Disk read with the page locked for I/O, as ll_rw_block would do it.
  pg.flags |= PageFlag::Locked;
  const auto& file_bytes = files_[file].bytes;
  const std::uint64_t off = static_cast<std::uint64_t>(index) * kPageSize;
  const std::uint64_t n =
      off < file_bytes.size()
          ? std::min<std::uint64_t>(kPageSize, file_bytes.size() - off)
          : 0;
  phys_.zero_frame(pfn);
  if (n) std::memcpy(phys_.frame(pfn).data(), file_bytes.data() + off, n);
  clock_.advance(costs_.swap_io(kPageSize));  // same disk as the swap device
  pg.flags &= ~PageFlag::Locked;
  pg.flags |= PageFlag::Referenced;
  pg.cache_file = file;
  pg.cache_index = index;
  page_cache_.emplace(key, pfn);
  return pfn;
}

void Kernel::drop_cache_page(Pfn pfn) {
  Page& pg = phys_.page(pfn);
  assert(pg.in_page_cache());
  if (has(pg.flags, PageFlag::Dirty)) {
    // Write-back before the frame is reused.
    auto& file_bytes = files_[pg.cache_file].bytes;
    const std::uint64_t off =
        static_cast<std::uint64_t>(pg.cache_index) * kPageSize;
    const std::uint64_t n =
        off < file_bytes.size()
            ? std::min<std::uint64_t>(kPageSize, file_bytes.size() - off)
            : 0;
    if (n) std::memcpy(file_bytes.data() + off, phys_.frame(pfn).data(), n);
    clock_.advance(costs_.swap_io(kPageSize));
    ++stats_.pagecache_writebacks;
  }
  page_cache_.erase(cache_key(pg.cache_file, pg.cache_index));
  pg.cache_file = kInvalidFile;
  pg.cache_index = 0;
  pg.flags &= ~PageFlag::Dirty;
  put_page(pfn);  // drop the cache's reference
}

void Kernel::sync_file(FileId file) {
  for (const auto& [key, pfn] : page_cache_) {
    Page& pg = phys_.page(pfn);
    if (pg.cache_file != file || !has(pg.flags, PageFlag::Dirty)) continue;
    auto& file_bytes = files_[file].bytes;
    const std::uint64_t off =
        static_cast<std::uint64_t>(pg.cache_index) * kPageSize;
    const std::uint64_t n =
        off < file_bytes.size()
            ? std::min<std::uint64_t>(kPageSize, file_bytes.size() - off)
            : 0;
    if (n) std::memcpy(file_bytes.data() + off, phys_.frame(pfn).data(), n);
    clock_.advance(costs_.swap_io(kPageSize));
    pg.flags &= ~PageFlag::Dirty;
    ++stats_.pagecache_writebacks;
  }
}

KStatus Kernel::file_io(Pid pid, FileId file, std::uint64_t offset, VAddr buf,
                        std::uint64_t len, bool write) {
  if (file >= files_.size()) return KStatus::NoEnt;
  if (offset + len > files_[file].bytes.size()) return KStatus::Inval;
  if (!task_exists(pid)) return KStatus::NoEnt;
  ++stats_.syscalls;
  clock_.advance(costs_.syscall);

  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t at = offset + done;
    const auto index = static_cast<std::uint32_t>(at >> kPageShift);
    const std::uint64_t in_page =
        std::min(len - done, kPageSize - (at & kPageMask));
    const Pfn pfn = cache_page_in(file, index);
    if (pfn == kInvalidPfn) return KStatus::NoMem;
    // Hold a transient reference so a reclaim triggered by the user-side
    // fault cannot steal the cache page mid-copy.
    get_page(pfn);
    auto frame = phys_.frame(pfn);
    KStatus st;
    if (write) {
      st = read_user(pid, buf + done,
                     frame.subspan(at & kPageMask, in_page));
      if (ok(st)) phys_.page(pfn).flags |= PageFlag::Dirty;
    } else {
      st = write_user(pid, buf + done,
                      std::span<const std::byte>(
                          frame.subspan(at & kPageMask, in_page)));
    }
    put_page(pfn);
    if (!ok(st)) return st;
    done += in_page;
  }
  if (write)
    ++stats_.file_writes;
  else
    ++stats_.file_reads;
  return KStatus::Ok;
}

KStatus Kernel::file_read(Pid pid, FileId file, std::uint64_t offset, VAddr buf,
                          std::uint64_t len) {
  return file_io(pid, file, offset, buf, len, /*write=*/false);
}

KStatus Kernel::file_write(Pid pid, FileId file, std::uint64_t offset,
                           VAddr buf, std::uint64_t len) {
  return file_io(pid, file, offset, buf, len, /*write=*/true);
}

}  // namespace vialock::simkern
