// kiobuf.cc - map_user_kiobuf and friends: the paper's proposed mechanism.
//
// map_user_kiobuf() is the kernel-sanctioned way to hand a driver the
// physical pages of a user buffer: it faults the range in, elevates each
// frame's reference count, records the frames in the kiobuf, and pins them
// against reclaim (Page::pin_count, honoured by try_to_swap_out). The driver
// never reads page tables - the conformance requirement of section 4.1.
//
// Each call carries its own pin, so registrations of the same range nest;
// unmap_kiobuf() releases exactly one pin per page.
#include <cassert>

#include "simkern/kernel.h"

namespace vialock::simkern {

void Kernel::account_pin(Pfn pfn) {
  if (phys_.page(pfn).pin_count++ == 0) ++pinned_frames_;
  trace_.record(clock_.now(), TraceEvent::PagePinned, 0, 0, pfn);
}

void Kernel::account_unpin(Pfn pfn) {
  Page& pg = phys_.page(pfn);
  assert(pg.pin_count > 0 && "kiobuf pin accounting underflow");
  if (--pg.pin_count == 0) {
    assert(pinned_frames_ > 0);
    --pinned_frames_;
  }
  trace_.record(clock_.now(), TraceEvent::PageUnpinned, 0, 0, pfn);
}

Kiobuf Kernel::alloc_kiovec() {
  clock_.advance(costs_.kiobuf_setup);
  return Kiobuf{};
}

KStatus Kernel::map_user_kiobuf(Pid pid, Kiobuf& iobuf, VAddr addr,
                                std::uint64_t len) {
  assert(!iobuf.mapped && "kiobuf already mapped");
  if (!task_exists(pid)) return KStatus::NoEnt;
  if (len == 0) return KStatus::Inval;
  Task& t = task(pid);

  const VAddr start = page_align_down(addr);
  const VAddr end = page_align_up(addr + len);

  // The paper's window, closed: between make_present() and account_pin() a
  // page is resident but not yet pinned, so a concurrent reclaim walk could
  // swap it and the NIC would learn a stale translation. Holding [start,
  // end) exclusive makes the walker's per-page try_lock fail for the whole
  // registration instead. Range lock before task mutex (canonical order).
  sync::RangeGuard rg(range_lock_, pid, start, end, sync::RangeMode::Exclusive);
  sync::Guard g(t.mu);

  iobuf.pfns.clear();
  iobuf.pfns.reserve((end - start) >> kPageShift);

  auto rollback = [&] {
    for (const Pfn pfn : iobuf.pfns) {
      account_unpin(pfn);
      put_page(pfn);
    }
    iobuf.pfns.clear();
  };

  // Injected map failure (transient, like a momentary pin-budget squeeze):
  // callers treat it exactly like the budget rejection below and may retry.
  if (faults_) {
    if (const auto d = faults_->check(fault::FaultSite::KiobufMap);
        d && (d->action == fault::FaultAction::Fail ||
              d->action == fault::FaultAction::Drop)) {
      ++stats_.kiobuf_fault_rejections;
      return KStatus::Again;
    }
  }

  // Pin budget: pinned frames are invisible to reclaim, so the kernel bounds
  // them (like RLIMIT_MEMLOCK bounds mlock). Conservative pre-check against
  // the worst case of all-new frames.
  const std::uint64_t want = (end - start) >> kPageShift;
  if (pinned_frames_ + want > pin_budget()) {
    ++stats_.kiobuf_pin_rejections;
    return KStatus::Again;
  }

  for (VAddr v = start; v < end; v += kPageSize) {
    const Vma* vma = t.mm.vmas.find(v);
    if (!vma) {
      rollback();
      return KStatus::Fault;
    }
    // Fault with write access when the mapping allows it, so COW is broken
    // *before* the NIC learns the physical address.
    const bool write = has(vma->flags, VmFlag::Write);
    const KStatus st = make_present(pid, v, write);
    if (!ok(st)) {
      rollback();
      return st;
    }
    const Pte* pte = t.mm.pt.walk(v);
    assert(pte && pte->present);
    const Pfn pfn = pte->pfn;
    get_page(pfn);     // hold a reference for the kiobuf
    account_pin(pfn);  // and pin against reclaim
    iobuf.pfns.push_back(pfn);
    clock_.advance(costs_.kiobuf_per_page);
    ++stats_.kiobuf_pages_pinned;
  }

  iobuf.pid = pid;
  iobuf.addr = addr;
  iobuf.length = len;
  iobuf.offset = static_cast<std::uint32_t>(addr - start);
  iobuf.mapped = true;
  ++stats_.kiobuf_maps;
  return KStatus::Ok;
}

void Kernel::unmap_kiobuf(Kiobuf& iobuf) {
  if (!iobuf.mapped) return;
  // Unpinning is not atomic per buffer: hold the range exclusive so the
  // reclaim walk cannot swap pages whose pin just dropped while the rest of
  // the teardown is mid-flight. No task mutex needed - only frames are
  // touched. (The governor's deferred-dereg drain lands here too.)
  const VAddr start = page_align_down(iobuf.addr);
  const VAddr end = page_align_up(iobuf.addr + iobuf.length);
  sync::RangeGuard rg(range_lock_, iobuf.pid, start, end,
                      sync::RangeMode::Exclusive);
  if (iobuf.io_locked) unlock_kiovec(iobuf);
  for (const Pfn pfn : iobuf.pfns) {
    account_unpin(pfn);
    put_page(pfn);
  }
  iobuf.pfns.clear();
  iobuf.mapped = false;
  iobuf.length = 0;
}

KStatus Kernel::lock_kiovec(Kiobuf& iobuf) {
  assert(iobuf.mapped);
  if (iobuf.io_locked) return KStatus::Ok;
  // All-or-nothing: refuse if any page is already under I/O, then lock all.
  for (const Pfn pfn : iobuf.pfns) {
    if (phys_.page(pfn).locked()) return KStatus::Busy;
  }
  for (const Pfn pfn : iobuf.pfns) {
    phys_.page(pfn).flags |= PageFlag::Locked;
  }
  iobuf.io_locked = true;
  return KStatus::Ok;
}

void Kernel::unlock_kiovec(Kiobuf& iobuf) {
  if (!iobuf.io_locked) return;
  for (const Pfn pfn : iobuf.pfns) {
    phys_.page(pfn).flags &= ~PageFlag::Locked;
  }
  iobuf.io_locked = false;
}

}  // namespace vialock::simkern
