// kiobuf.h - kernel I/O buffers, the mechanism the paper builds its proposal on.
//
// Modelled on Stephen Tweedie's RAW-I/O kiobufs (section 4.2 of the paper):
// map_user_kiobuf() faults the user range in, takes a reference on every
// frame, records the frames in the kiobuf, *and pins them against reclaim*
// (Page::pin_count) - giving a driver the physical pages of a user buffer
// without ever walking page tables itself, the property that makes the
// mechanism acceptable for mainline kernels (section 4.1).
//
// Because each map_user_kiobuf() call carries its own pin, the mechanism
// nests naturally: N registrations of the same range produce N kiobufs and a
// per-page pin count of N - unlike mlock(), where a single munlock cancels
// every lock on the range (section 3.2).
#pragma once

#include <cstdint>
#include <vector>

#include "simkern/types.h"

namespace vialock::simkern {

struct Kiobuf {
  Pid pid = kInvalidPid;
  VAddr addr = 0;          ///< start of the mapped user range (unaligned ok)
  std::uint64_t length = 0;
  std::uint32_t offset = 0;  ///< offset of `addr` inside the first page
  std::vector<Pfn> pfns;   ///< the pinned frames, in range order
  bool mapped = false;
  bool io_locked = false;  ///< PG_locked held via lock_kiovec()

  [[nodiscard]] std::uint64_t num_pages() const { return pfns.size(); }
};

}  // namespace vialock::simkern
