// types.h - fundamental types of the simulated Linux 2.2/2.3 memory subsystem.
#pragma once

#include <cstdint>

namespace vialock::simkern {

/// Physical page frame number.
using Pfn = std::uint32_t;
inline constexpr Pfn kInvalidPfn = static_cast<Pfn>(-1);

/// User virtual address.
using VAddr = std::uint64_t;

/// Slot index inside the swap partition's swap map.
using SwapSlot = std::uint32_t;
inline constexpr SwapSlot kInvalidSwapSlot = static_cast<SwapSlot>(-1);

/// Task (process) identifier.
using Pid = std::uint32_t;
inline constexpr Pid kInvalidPid = static_cast<Pid>(-1);

inline constexpr std::uint64_t kPageShift = 12;
inline constexpr std::uint64_t kPageSize = 1ULL << kPageShift;  // 4 KB, i386
inline constexpr std::uint64_t kPageMask = kPageSize - 1;

[[nodiscard]] constexpr VAddr page_align_down(VAddr a) { return a & ~kPageMask; }
[[nodiscard]] constexpr VAddr page_align_up(VAddr a) {
  return (a + kPageMask) & ~kPageMask;
}
[[nodiscard]] constexpr std::uint64_t pages_spanned(VAddr addr, std::uint64_t len) {
  if (len == 0) return 0;
  return (page_align_up(addr + len) - page_align_down(addr)) >> kPageShift;
}

}  // namespace vialock::simkern
