#include "simkern/swap.h"

#include <cassert>
#include <cstring>

namespace vialock::simkern {

SwapSlot SwapDevice::alloc() {
  const auto n = static_cast<std::uint32_t>(map_.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    const SwapSlot slot = (scan_hint_ + i) % n;
    if (map_[slot] == 0) {
      map_[slot] = 1;
      ++used_;
      scan_hint_ = (slot + 1) % n;
      return slot;
    }
  }
  return kInvalidSwapSlot;
}

void SwapDevice::dup(SwapSlot slot) {
  assert(slot < map_.size() && map_[slot] > 0);
  ++map_[slot];
}

void SwapDevice::free(SwapSlot slot) {
  assert(slot < map_.size() && map_[slot] > 0);
  if (--map_[slot] == 0) --used_;
}

void SwapDevice::write(SwapSlot slot, std::span<const std::byte> page) {
  assert(slot < map_.size() && page.size() == kPageSize);
  std::memcpy(bytes_.data() + static_cast<std::size_t>(slot) * kPageSize,
              page.data(), kPageSize);
  clock_.advance(costs_.swap_io(kPageSize));
  ++writes_;
}

void SwapDevice::read(SwapSlot slot, std::span<std::byte> page) {
  assert(slot < map_.size() && page.size() == kPageSize);
  std::memcpy(page.data(),
              bytes_.data() + static_cast<std::size_t>(slot) * kPageSize,
              kPageSize);
  clock_.advance(costs_.swap_io(kPageSize));
  ++reads_;
}

void SwapDevice::read_sequential(SwapSlot slot, std::span<std::byte> page) {
  assert(slot < map_.size() && page.size() == kPageSize);
  std::memcpy(page.data(),
              bytes_.data() + static_cast<std::size_t>(slot) * kPageSize,
              kPageSize);
  clock_.advance(costs_.swap_per_byte * kPageSize);  // stream, no seek
  ++reads_;
}

}  // namespace vialock::simkern
