#include "simkern/swap.h"

#include <cassert>
#include <cstring>

namespace vialock::simkern {

SwapSlot SwapDevice::alloc() {
  sync::Guard g(mu_);
  if (free_slots_.empty()) return kInvalidSwapSlot;
  // Next-fit: the first free slot at or after the hint, wrapping to the
  // lowest free slot - the same slot the legacy linear scan would pick.
  auto it = free_slots_.lower_bound(scan_hint_);
  if (it == free_slots_.end()) it = free_slots_.begin();
  const SwapSlot slot = *it;
  free_slots_.erase(it);
  map_[slot] = 1;
  ++used_;
  scan_hint_ = (slot + 1) % static_cast<std::uint32_t>(map_.size());
  return slot;
}

void SwapDevice::dup(SwapSlot slot) {
  sync::Guard g(mu_);
  assert(slot < map_.size() && map_[slot] > 0);
  ++map_[slot];
}

void SwapDevice::free(SwapSlot slot) {
  sync::Guard g(mu_);
  assert(slot < map_.size() && map_[slot] > 0);
  if (--map_[slot] == 0) {
    --used_;
    free_slots_.insert(slot);
  }
}

KStatus SwapDevice::apply_faults(fault::FaultSite site,
                                 std::span<std::byte> data) {
  if (!faults_) return KStatus::Ok;
  const auto decision = faults_->check(site);
  if (!decision) return KStatus::Ok;
  switch (decision->action) {
    case fault::FaultAction::Fail:
    case fault::FaultAction::Drop:
      // A dropped disk transfer surfaces the same way as a failed one: the
      // request completes with an error and no data moved.
      ++io_errors_;
      return KStatus::Io;
    case fault::FaultAction::Delay:
      ++io_delays_;
      clock_.advance(decision->delay);
      return KStatus::Ok;
    case fault::FaultAction::Corrupt: {
      ++io_corruptions_;
      const std::size_t pos = decision->entropy % data.size();
      data[pos] ^= static_cast<std::byte>(decision->corrupt_mask);
      return KStatus::Ok;
    }
  }
  return KStatus::Ok;
}

KStatus SwapDevice::write(SwapSlot slot, std::span<const std::byte> page) {
  assert(slot < map_.size() && page.size() == kPageSize);
  clock_.advance(costs_.swap_io(kPageSize));
  std::byte* stored = slot_bytes(slot);
  std::memcpy(stored, page.data(), kPageSize);
  ++writes_;
  // Corruption lands in the slot's stored bytes: the damage is latent until
  // the page is swapped back in - exactly a silent media error.
  return apply_faults(fault::FaultSite::SwapWrite, {stored, kPageSize});
}

KStatus SwapDevice::read(SwapSlot slot, std::span<std::byte> page) {
  assert(slot < map_.size() && page.size() == kPageSize);
  clock_.advance(costs_.swap_io(kPageSize));
  std::memcpy(page.data(), slot_bytes(slot), kPageSize);
  ++reads_;
  // Read corruption damages only this transfer, not the stored copy; on an
  // injected error the buffer contents are undefined (caller must discard).
  return apply_faults(fault::FaultSite::SwapRead, page);
}

KStatus SwapDevice::read_sequential(SwapSlot slot, std::span<std::byte> page) {
  assert(slot < map_.size() && page.size() == kPageSize);
  clock_.advance(costs_.swap_per_byte * kPageSize);  // stream, no seek
  std::memcpy(page.data(), slot_bytes(slot), kPageSize);
  ++reads_;
  return apply_faults(fault::FaultSite::SwapRead, page);
}

}  // namespace vialock::simkern
