// swap.h - the swap partition: swap map (per-slot refcounts) plus a simulated
// disk that really stores page contents and charges virtual seek/stream time.
//
// Slot lifecycle mirrors Linux's swap_map: a slot is allocated with count 1
// when try_to_swap_out() writes a page, duplicated when a swapped PTE is
// shared by fork, and released on swap-in or PTE teardown.
//
// I/O is fallible: a FaultEngine (fault::FaultSite::SwapRead / SwapWrite)
// can fail a transfer with EIO, stretch it with an injected latency spike,
// or silently corrupt the page data - the 2000-era IDE failure modes the
// rest of the kernel has to survive.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "fault/fault.h"
#include "simkern/types.h"
#include "sync/mutex.h"
#include "sync/policy.h"
#include "sync/relaxed.h"
#include "util/clock.h"
#include "util/cost_model.h"
#include "util/status.h"

namespace vialock::simkern {

class SwapDevice {
 public:
  SwapDevice(std::uint32_t num_slots, Clock& clock, const CostModel& costs)
      : map_(num_slots, 0), slots_(num_slots), clock_(clock), costs_(costs) {
    for (SwapSlot s = 0; s < num_slots; ++s) free_slots_.insert(s);
  }

  [[nodiscard]] std::uint32_t num_slots() const {
    return static_cast<std::uint32_t>(map_.size());
  }

  /// get_swap_page(): allocate a slot with refcount 1, or kInvalidSwapSlot.
  /// Next-fit from the scan hint over an ordered free-slot set, O(log slots)
  /// per call instead of the legacy O(slots) map scan; placements identical.
  [[nodiscard]] SwapSlot alloc();

  /// swap_duplicate(): another PTE now references this slot.
  void dup(SwapSlot slot);

  /// swap_free(): drop one reference; slot becomes reusable at zero.
  void free(SwapSlot slot);

  [[nodiscard]] std::uint32_t refcount(SwapSlot slot) const { return map_[slot]; }

  /// rw_swap_page(WRITE): store a page, charging disk time. Io on injected
  /// device error (nothing stored).
  [[nodiscard]] KStatus write(SwapSlot slot, std::span<const std::byte> page);

  /// rw_swap_page(READ): load a page, charging disk time. Io on injected
  /// device error (`page` contents undefined; caller must discard).
  [[nodiscard]] KStatus read(SwapSlot slot, std::span<std::byte> page);

  /// Sequential follow-up read in the same disk pass (read-ahead): charges
  /// streaming time only, no seek.
  [[nodiscard]] KStatus read_sequential(SwapSlot slot,
                                        std::span<std::byte> page);

  /// Arm fault injection (sites SwapRead / SwapWrite); nullptr disarms.
  void set_fault_engine(fault::FaultEngine* engine) { faults_ = engine; }

  /// Execution mode: threaded arms the internal CNA mutex serializing the
  /// swap map; serial keeps it a no-op branch.
  void set_policy(sync::SyncPolicy p) { mu_.set_policy(p); }

  [[nodiscard]] std::uint32_t used_slots() const {
    return static_cast<std::uint32_t>(used_.load());
  }
  [[nodiscard]] std::uint64_t total_writes() const { return writes_; }
  [[nodiscard]] std::uint64_t total_reads() const { return reads_; }
  [[nodiscard]] std::uint64_t io_errors() const { return io_errors_; }
  [[nodiscard]] std::uint64_t io_delays() const { return io_delays_; }
  [[nodiscard]] std::uint64_t io_corruptions() const { return io_corruptions_; }

 private:
  /// Consult the fault engine before moving data; Ok means proceed (any
  /// injected delay already charged), Io means the transfer failed. Corrupt
  /// flips one deterministic byte of `data` after the caller's copy.
  [[nodiscard]] KStatus apply_faults(fault::FaultSite site,
                                     std::span<std::byte> data);

  /// A slot's stored bytes, allocated on first write - an idle swap
  /// partition costs nothing in the hosting process, which is what lets a
  /// scenario run size hundreds of per-host swap devices. A never-written
  /// slot reads as zeros (a fresh partition reads as zeros too).
  [[nodiscard]] std::byte* slot_bytes(SwapSlot slot) {
    if (!slots_[slot]) slots_[slot] = std::make_unique<std::byte[]>(kPageSize);
    return slots_[slot].get();
  }

  std::vector<std::uint16_t> map_;   ///< per-slot reference counts
  std::set<SwapSlot> free_slots_;    ///< ordered index of zero-refcount slots
  std::vector<std::unique_ptr<std::byte[]>> slots_;  ///< lazy stored pages
  Clock& clock_;
  const CostModel& costs_;
  fault::FaultEngine* faults_ = nullptr;
  sync::Mutex mu_;               ///< serializes map_/free_slots_/scan_hint_
  sync::Relaxed used_;
  std::uint32_t scan_hint_ = 0;  ///< next-fit allocation cursor (under mu_)
  sync::Relaxed writes_;
  sync::Relaxed reads_;
  sync::Relaxed io_errors_;
  sync::Relaxed io_delays_;
  sync::Relaxed io_corruptions_;
};

}  // namespace vialock::simkern
