#include "simkern/vma.h"

#include <cassert>

namespace vialock::simkern {

const Vma* VmaSet::find(VAddr addr) const {
  auto it = vmas_.upper_bound(addr);
  if (it == vmas_.begin()) return nullptr;
  --it;
  return it->second.contains(addr) ? &it->second : nullptr;
}

Vma* VmaSet::find(VAddr addr) {
  return const_cast<Vma*>(static_cast<const VmaSet*>(this)->find(addr));
}

bool VmaSet::insert(VAddr start, VAddr end, VmFlag flags) {
  assert(start < end);
  assert(end <= kVmaUniverse);
  assert((start & kPageMask) == 0 && (end & kPageMask) == 0);
  // Overlap check: the VMA at or before `start`, and any VMA starting in range.
  if (find(start) != nullptr) return false;
  auto it = vmas_.lower_bound(start);
  if (it != vmas_.end() && it->first < end) return false;
  vmas_.emplace(start, Vma{start, end, flags});
  gaps_.reserve(start, end - start);
  return true;
}

bool VmaSet::split_at(VAddr addr) {
  Vma* vma = find(addr);
  if (!vma || vma->start == addr) return false;
  Vma tail = *vma;  // inherit flags AND backing (shm) of the original
  tail.start = addr;
  tail.shm_pgoff += static_cast<std::uint32_t>((addr - vma->start) >> kPageShift);
  vma->end = addr;
  vmas_.emplace(addr, tail);
  return true;
}

std::uint32_t VmaSet::remove_range(VAddr start, VAddr end) {
  std::uint32_t ops = 0;
  if (split_at(start)) ++ops;
  if (split_at(end)) ++ops;
  auto it = vmas_.lower_bound(start);
  while (it != vmas_.end() && it->second.start < end) {
    assert(it->second.end <= end);
    gaps_.release(it->second.start, it->second.end - it->second.start);
    it = vmas_.erase(it);
    ++ops;
  }
  return ops;
}

bool VmaSet::covered(VAddr start, VAddr end) const {
  VAddr at = start;
  while (at < end) {
    const Vma* vma = find(at);
    if (!vma) return false;
    at = vma->end;
  }
  return true;
}

bool VmaSet::set_flags_range(VAddr start, VAddr end, VmFlag set, VmFlag clear,
                             std::uint32_t* vma_ops) {
  if (!covered(start, end)) return false;
  std::uint32_t ops = 0;
  if (split_at(start)) ++ops;
  if (split_at(end)) ++ops;
  auto it = vmas_.lower_bound(start);
  assert(it != vmas_.end());
  // If `start` falls mid-VMA that couldn't be split (start was a boundary) we
  // are positioned correctly: covered() + split_at guarantee exact alignment.
  while (it != vmas_.end() && it->second.start < end) {
    it->second.flags |= set;
    it->second.flags &= ~clear;
    ++ops;
    ++it;
  }
  // Merge pass over the affected neighbourhood.
  auto mit = vmas_.lower_bound(start);
  if (mit != vmas_.begin()) --mit;
  while (mit != vmas_.end() && mit->second.start <= end) {
    if (!try_merge_after(mit, &ops)) ++mit;  // only advance when nothing merged
  }
  if (vma_ops) *vma_ops += ops;
  return true;
}

bool VmaSet::try_merge_after(std::map<VAddr, Vma>::iterator it,
                             std::uint32_t* vma_ops) {
  if (it == vmas_.end()) return false;
  auto next = std::next(it);
  if (next == vmas_.end()) return false;
  // Anonymous VMAs merge freely; shm-backed ones only when the segment page
  // indexing stays contiguous across the seam (i.e. they are fragments of
  // one attachment, not two distinct attaches that happen to abut).
  const bool shm_compatible =
      it->second.shm == next->second.shm &&
      (it->second.shm == kInvalidShm ||
       next->second.shm_pgoff ==
           it->second.shm_pgoff +
               static_cast<std::uint32_t>(it->second.pages()));
  if (it->second.end == next->second.start &&
      it->second.flags == next->second.flags && shm_compatible) {
    it->second.end = next->second.end;
    vmas_.erase(next);
    if (vma_ops) ++*vma_ops;
    return true;
  }
  return false;
}

std::optional<VAddr> VmaSet::find_free_range(std::uint64_t len, VAddr lo,
                                             VAddr hi) const {
  const auto addr = gaps_.find_first_fit_from(lo, len);
#ifndef NDEBUG
  {
    // Cross-check the gap index against the legacy linear VMA walk: both must
    // name the same placement (the determinism contract of every experiment).
    VAddr candidate = lo;
    for (const auto& [start, vma] : vmas_) {
      if (vma.end <= candidate) continue;
      if (start >= candidate && start - candidate >= len) break;
      candidate = vma.end;
    }
    // !addr only for astronomic `len` that exhausts the whole gap universe -
    // the legacy candidate then fails the `hi` bound below just the same.
    assert((!addr || *addr == candidate) && "gap index diverged from VMA list");
    (void)candidate;
  }
#endif
  if (addr && *addr + len <= hi) return *addr;
  return std::nullopt;
}

std::vector<const Vma*> VmaSet::in_order() const {
  std::vector<const Vma*> out;
  out.reserve(vmas_.size());
  for (const auto& [start, vma] : vmas_) out.push_back(&vma);
  return out;
}

}  // namespace vialock::simkern
