// mlock.cc - the mlock/munlock syscall family (section 3.2 of the paper).
//
// sys_mlock() performs the privilege check that makes the VMA-based locking
// approach awkward for a VIA driver: only tasks with CAP_IPC_LOCK may pin
// memory. The paper lists two work-arounds, both modelled here:
//   * the "User-DMA patch": moves the check out of do_mlock() so a driver can
//     call do_mlock() directly (KernelConfig::userdma_patch / the exported
//     Kernel::do_mlock entry point);
//   * cap_raise()/cap_lower(): the driver temporarily grants CAP_IPC_LOCK to
//     the current task around the call.
//
// Crucially, mlock does NOT nest: do_mlock(lock=false) clears VM_LOCKED no
// matter how many times the range was locked - "a single unlock operation
// annuls multiple lock operations on the same address". Experiment E2 turns
// this into a measurable failure for multiple registration.
#include <cassert>

#include "simkern/kernel.h"

namespace vialock::simkern {

KStatus Kernel::sys_mlock(Pid pid, VAddr addr, std::uint64_t len) {
  ++stats_.syscalls;
  ++stats_.mlock_calls;
  clock_.advance(costs_.syscall);
  if (!task_exists(pid)) return KStatus::NoEnt;
  Task& t = task(pid);
  if (!config_.userdma_patch && !t.capable(Capability::IpcLock)) {
    return KStatus::Perm;
  }
  const std::uint64_t pages = pages_spanned(addr, len);
  if ((t.mm.locked_pages + pages) * kPageSize > t.rlimit_memlock) {
    return KStatus::NoMem;
  }
  return do_mlock(pid, addr, len, /*lock=*/true);
}

KStatus Kernel::sys_munlock(Pid pid, VAddr addr, std::uint64_t len) {
  ++stats_.syscalls;
  ++stats_.munlock_calls;
  clock_.advance(costs_.syscall);
  if (!task_exists(pid)) return KStatus::NoEnt;
  return do_mlock(pid, addr, len, /*lock=*/false);
}

KStatus Kernel::do_mlock(Pid pid, VAddr addr, std::uint64_t len, bool lock) {
  if (!task_exists(pid)) return KStatus::NoEnt;
  if (len == 0) return KStatus::Ok;
  Task& t = task(pid);
  const VAddr start = page_align_down(addr);
  const VAddr end = page_align_up(addr + len);
  // Range lock before task mutex (canonical order): while [start, end) is
  // held exclusive the reclaim walk's per-page try_lock fails, so pages
  // cannot be swapped between the VM_LOCKED flag flip and make_present.
  sync::RangeGuard rg(range_lock_, pid, start, end, sync::RangeMode::Exclusive);
  sync::Guard g(t.mu);

  std::uint32_t vma_ops = 0;
  const bool covered = t.mm.vmas.set_flags_range(
      start, end, lock ? VmFlag::Locked : VmFlag::None,
      lock ? VmFlag::None : VmFlag::Locked, &vma_ops);
  clock_.advance(costs_.vma_op * vma_ops);
  if (!covered) return KStatus::NoMem;  // mlock over unmapped memory => ENOMEM

  const std::uint64_t pages = (end - start) >> kPageShift;
  if (lock) {
    // make_pages_present(): fault everything in so the locked range is
    // resident, as mlock(2) guarantees.
    for (VAddr v = start; v < end; v += kPageSize) {
      const Vma* vma = t.mm.vmas.find(v);
      assert(vma);
      const KStatus st = make_present(pid, v, has(vma->flags, VmFlag::Write));
      if (!ok(st)) return st;
    }
    t.mm.locked_pages += pages;
  } else {
    t.mm.locked_pages -= std::min<std::uint64_t>(t.mm.locked_pages, pages);
  }
  return KStatus::Ok;
}

void Kernel::cap_raise(Pid pid, Capability cap) { task(pid).caps |= cap; }

void Kernel::cap_lower(Pid pid, Capability cap) { task(pid).caps &= ~cap; }

}  // namespace vialock::simkern
