#include "simkern/pagetable.h"

#include <cassert>

namespace vialock::simkern {

Pte* PageTable::walk(VAddr vaddr) {
  assert(vaddr < kUserTop);
  auto& table = pgd_[pgd_index(vaddr)];
  if (!table) return nullptr;
  return &(*table)[pte_index(vaddr)];
}

const Pte* PageTable::walk(VAddr vaddr) const {
  assert(vaddr < kUserTop);
  const auto& table = pgd_[pgd_index(vaddr)];
  if (!table) return nullptr;
  return &(*table)[pte_index(vaddr)];
}

Pte& PageTable::ensure(VAddr vaddr, std::uint32_t* levels_allocated) {
  assert(vaddr < kUserTop);
  if (levels_allocated) *levels_allocated = 0;
  auto& table = pgd_[pgd_index(vaddr)];
  if (!table) {
    table = std::make_unique<PteTable>(kPteEntries);
    if (levels_allocated) *levels_allocated = 1;
  }
  return (*table)[pte_index(vaddr)];
}

void PageTable::for_each_in(VAddr start, VAddr end,
                            const std::function<void(VAddr, Pte&)>& fn) {
  for (VAddr v = page_align_down(start); v < end; v += kPageSize) {
    Pte* pte = walk(v);
    if (pte && !pte->none()) fn(v, *pte);
  }
}

void PageTable::clear_range(VAddr start, VAddr end,
                            const std::function<void(VAddr, Pte&)>& on_drop) {
  for (VAddr v = page_align_down(start); v < end; v += kPageSize) {
    Pte* pte = walk(v);
    if (!pte || pte->none()) continue;
    on_drop(v, *pte);
    *pte = Pte{};
  }
}

std::uint32_t PageTable::second_level_tables() const {
  std::uint32_t n = 0;
  for (const auto& t : pgd_)
    if (t) ++n;
  return n;
}

}  // namespace vialock::simkern
