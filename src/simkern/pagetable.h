// pagetable.h - two-level i386-style page tables (PGD -> PTE).
//
// A PTE is either present (holds a pfn) or not; a not-present PTE may carry a
// swap slot, which is exactly the state the paper's failure analysis hinges
// on: swap_out_vma() rewrites a present PTE into a swapped PTE and calls
// __free_page() - if a driver only elevated the frame's refcount, the frame
// survives but the translation is gone, and the next touch faults the data
// into a *different* frame.
//
// Cost accounting happens at the operation level in the Kernel facade, not
// here; this class is pure mechanism.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "simkern/types.h"

namespace vialock::simkern {

struct Pte {
  bool present = false;
  bool writable = false;
  bool cow = false;       ///< copy-on-write: write-protected shared anon page
  bool accessed = false;  ///< set by the MMU on access, cleared by clock scan
  bool dirty = false;
  Pfn pfn = kInvalidPfn;
  SwapSlot swap = kInvalidSwapSlot;  ///< valid when !present and swapped out

  [[nodiscard]] bool none() const {
    return !present && swap == kInvalidSwapSlot;
  }
};

class PageTable {
 public:
  static constexpr std::uint32_t kPgdBits = 10;
  static constexpr std::uint32_t kPteBits = 10;
  static constexpr std::uint32_t kPgdEntries = 1U << kPgdBits;
  static constexpr std::uint32_t kPteEntries = 1U << kPteBits;
  /// Highest addressable user byte + 1 (3 GB user split, as on i386 Linux).
  static constexpr VAddr kUserTop = 0xC0000000ULL;

  PageTable() : pgd_(kPgdEntries) {}

  /// Lookup without allocating; nullptr when no second-level table exists.
  [[nodiscard]] Pte* walk(VAddr vaddr);
  [[nodiscard]] const Pte* walk(VAddr vaddr) const;

  /// Lookup, allocating the second-level table if needed. Returns the number
  /// of table levels that had to be materialised via `levels_allocated`.
  [[nodiscard]] Pte& ensure(VAddr vaddr, std::uint32_t* levels_allocated = nullptr);

  /// Visit every non-none PTE in [start, end); callback gets (vaddr, pte).
  /// Used by swap_out_vma and by fork's COW sweep.
  void for_each_in(VAddr start, VAddr end,
                   const std::function<void(VAddr, Pte&)>& fn);

  /// Drop all PTEs in [start, end) (munmap); callback sees each dropped PTE
  /// first so the caller can release frames / swap slots.
  void clear_range(VAddr start, VAddr end,
                   const std::function<void(VAddr, Pte&)>& on_drop);

  [[nodiscard]] std::uint32_t second_level_tables() const;

 private:
  using PteTable = std::vector<Pte>;

  static std::uint32_t pgd_index(VAddr v) {
    return static_cast<std::uint32_t>(v >> (kPageShift + kPteBits)) &
           (kPgdEntries - 1);
  }
  static std::uint32_t pte_index(VAddr v) {
    return static_cast<std::uint32_t>(v >> kPageShift) & (kPteEntries - 1);
  }

  std::vector<std::unique_ptr<PteTable>> pgd_;
};

}  // namespace vialock::simkern
