// page.h - physical frames and the page map (the kernel's mem_map_t array).
//
// Mirrors the structure the paper describes in section 2.1: one descriptor per
// physical page with a reference counter and a flag field. PG_locked marks
// pages under kernel I/O; PG_reserved marks pages withheld from the system.
// We add `pin_count`, the accounting used by the proposed kiobuf-based
// mechanism (map_user_kiobuf pins; the reclaim path honours it) - this is the
// paper's contribution expressed as page-map state.
//
// Frames carry real bytes: the simulated NIC DMA engine reads and writes frame
// contents directly by physical address, so a stale translation produces a
// visibly wrong value exactly as in the paper's locktest.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "simkern/types.h"
#include "util/flags.h"

namespace vialock::simkern {

/// Page-map flag bits (subset of Linux 2.2 PG_* relevant to the paper).
enum class PageFlag : std::uint16_t {
  None = 0,
  Locked = 1 << 0,     ///< PG_locked: page under (kernel) I/O; reclaim skips it
  Reserved = 1 << 1,   ///< PG_reserved: invisible to the memory system
  Dirty = 1 << 2,      ///< modified since last write-back
  Referenced = 1 << 3, ///< touched since last clock-scan pass
  SwapCache = 1 << 4,  ///< page also lives in the swap cache
};

}  // namespace vialock::simkern

template <>
inline constexpr bool vialock::enable_flag_ops<vialock::simkern::PageFlag> = true;

namespace vialock::simkern {

/// File identifier in the simulated file store (filecache.cc).
using FileId = std::uint32_t;
inline constexpr FileId kInvalidFile = static_cast<FileId>(-1);

/// One mem_map_t entry: metadata the kernel keeps per physical frame.
struct Page {
  std::uint32_t count = 0;     ///< reference counter; 0 == frame is free
  PageFlag flags = PageFlag::None;
  std::uint32_t pin_count = 0; ///< kiobuf pins (proposed mechanism's state)
  SwapSlot swap_slot = kInvalidSwapSlot;  ///< backing slot while in swap cache
  Pid mapped_pid = kInvalidPid;           ///< owner task (anonymous pages)
  VAddr mapped_vaddr = 0;                 ///< where the owner maps it
  FileId cache_file = kInvalidFile;       ///< page-cache membership
  std::uint32_t cache_index = 0;          ///< file page index when cached

  [[nodiscard]] bool in_page_cache() const { return cache_file != kInvalidFile; }

  [[nodiscard]] bool free() const { return count == 0; }
  [[nodiscard]] bool locked() const { return has(flags, PageFlag::Locked); }
  [[nodiscard]] bool reserved() const { return has(flags, PageFlag::Reserved); }
  [[nodiscard]] bool pinned() const { return pin_count > 0; }
};

/// Physical memory: the frame store plus the page map over it.
///
/// This is deliberately *not* an allocator; the buddy allocator (buddy.h)
/// owns free-frame bookkeeping and manipulates Page::count through here.
///
/// Frame bytes are backed lazily: a frame allocates its 4 KB only on first
/// write access, and an untouched frame reads as zeros through a shared
/// zero page - exactly the semantics a fresh anonymous frame has anyway.
/// This is what lets a 256-host scenario cluster exist in one process:
/// hosts pay for the frames they touch, not for their configured RAM size.
class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::uint32_t num_frames)
      : pages_(num_frames), frames_(num_frames) {}

  [[nodiscard]] std::uint32_t num_frames() const {
    return static_cast<std::uint32_t>(pages_.size());
  }

  [[nodiscard]] Page& page(Pfn pfn) { return pages_[pfn]; }
  [[nodiscard]] const Page& page(Pfn pfn) const { return pages_[pfn]; }

  [[nodiscard]] bool valid(Pfn pfn) const { return pfn < pages_.size(); }

  /// Raw bytes of a frame (what a DMA engine or CPU store actually hits).
  /// The mutable overload materialises backing; the const overload serves
  /// untouched frames from the shared zero page.
  [[nodiscard]] std::span<std::byte> frame(Pfn pfn) {
    return {materialize(pfn), kPageSize};
  }
  [[nodiscard]] std::span<const std::byte> frame(Pfn pfn) const {
    if (!frames_[pfn]) return {zero_page(), kPageSize};
    return {frames_[pfn].get(), kPageSize};
  }

  void zero_frame(Pfn pfn) {
    // An unmaterialised frame already reads as zeros; don't allocate one
    // just to clear it.
    if (frames_[pfn]) std::memset(frames_[pfn].get(), 0, kPageSize);
  }

  void copy_frame(Pfn dst, Pfn src) {
    if (!frames_[src]) {
      zero_frame(dst);
      return;
    }
    std::memcpy(materialize(dst), frames_[src].get(), kPageSize);
  }

  /// get_page(): take a reference on an in-use frame.
  void get(Pfn pfn) { ++pages_[pfn].count; }

  /// Count frames currently free (count == 0 and not reserved).
  [[nodiscard]] std::uint32_t count_free() const {
    std::uint32_t n = 0;
    for (const auto& p : pages_)
      if (p.free() && !has(p.flags, PageFlag::Reserved)) ++n;
    return n;
  }

  /// Frames whose 4 KB backing actually exists (host-process footprint).
  [[nodiscard]] std::uint32_t materialized_frames() const {
    std::uint32_t n = 0;
    for (const auto& f : frames_)
      if (f) ++n;
    return n;
  }

 private:
  [[nodiscard]] std::byte* materialize(Pfn pfn) {
    if (!frames_[pfn])
      frames_[pfn] = std::make_unique<std::byte[]>(kPageSize);  // zeroed
    return frames_[pfn].get();
  }

  [[nodiscard]] static const std::byte* zero_page() {
    static const std::byte kZero[kPageSize] = {};
    return kZero;
  }

  std::vector<Page> pages_;
  std::vector<std::unique_ptr<std::byte[]>> frames_;
};

}  // namespace vialock::simkern
