#include "pinmgr/pin_procfs.h"

#include <sstream>

namespace vialock::pinmgr {

std::string pinstat(const PinGovernor& gov) {
  std::ostringstream os;
  const GovernorStats& s = gov.stats();
  os << "ceiling_pages " << gov.ceiling() << "\n"
     << "charged_pages " << gov.total_charged() << "\n"
     << "guaranteed_reserve " << gov.config().guaranteed_reserve << "\n"
     << "lazy_batch " << gov.config().lazy_batch << "\n"
     << "lazy_queue_depth " << gov.lazy_queue_depth() << "\n"
     << "admitted " << s.admitted << "\n"
     << "rejected_quota " << s.rejected_quota << "\n"
     << "rejected_ceiling " << s.rejected_ceiling << "\n"
     << "rejected_injected " << s.rejected_injected << "\n"
     << "frames_charged " << s.frames_charged << "\n"
     << "dedup_hits " << s.dedup_hits << "\n"
     << "lazy_queued " << s.lazy_queued << "\n"
     << "lazy_drains " << s.lazy_drains << "\n"
     << "lazy_drained_entries " << s.lazy_drained_entries << "\n"
     << "flushes " << s.flushes << "\n"
     << "reclaim_invocations " << s.reclaim_invocations << "\n"
     << "reclaim_pages " << s.reclaim_pages << "\n"
     << "reclaim_failures " << s.reclaim_failures << "\n"
     << "tenants_removed " << s.tenants_removed << "\n"
     << "forced_tenant_removals " << s.forced_tenant_removals << "\n"
     << "forced_frames_uncharged " << s.forced_frames_uncharged << "\n";
  const auto tenants = gov.tenants();
  os << "tenants " << tenants.size() << "\n";
  for (const TenantInfo& t : tenants) {
    os << "tenant " << t.pid << " tier=" << to_string(t.tier)
       << " quota=" << t.quota << " charged=" << t.charged
       << " peak=" << t.peak << " admissions=" << t.admissions
       << " rejections=" << t.rejections << "\n";
  }
  return os.str();
}

}  // namespace vialock::pinmgr
