// pin_governor.h - the host-wide pinned-memory governor.
//
// The paper's defect analysis (section 3.2) is that Linux mlock-style locking
// has no truthful accounting of *who* pinned *what*: locked pages are counted
// per-VMA and double-counted across overlapping registrations, and privileged
// pinning is unlimited, so communication memory can starve the VM. The
// PinGovernor brokers every page-pin the VIA kernel agent performs and fixes
// exactly that:
//
//   * per-tenant (Pid) accounting with RLIMIT_MEMLOCK-style quotas plus a
//     global host ceiling, frame-deduplicated: overlapping or repeated
//     registrations of the same frame are charged once (the paper's
//     double-count bug, done right);
//   * admission control with QoS tiers: a best-effort tenant may only dip
//     into the ceiling minus a reserve kept for guaranteed tenants, so its
//     registration fails cleanly instead of starving a guaranteed one;
//   * a lazy-deregistration queue: deregisters append to a user-level ring
//     and are submitted in one batched kernel entry once `lazy_batch` deep,
//     so the fixed per-ioctl cost amortises (experiment E21); flush() is the
//     epoch barrier for correctness-critical points (tenant exit, TPT
//     shortage, benchmarks' end-of-phase);
//   * cooperative reclaim: vmscan's try_to_free_pages invokes
//     on_memory_pressure(), which drains the deferred-dereg queue and asks
//     registered ReclaimClients (RegistrationCache) to evict cold idle
//     entries before the kernel swaps hot pages.
//
// Determinism: all containers iterated here are ordered (std::map / vectors
// in insertion order); same-seed runs are bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string_view>
#include <vector>

#include "fault/fault.h"
#include "simkern/kernel.h"
#include "sync/mutex.h"
#include "sync/policy.h"
#include "util/status.h"

namespace vialock::pinmgr {

enum class QosTier : std::uint8_t {
  Guaranteed,  ///< may use the full host ceiling; reclaim runs on its behalf
  BestEffort,  ///< capped at ceiling - guaranteed_reserve; fails early
};

[[nodiscard]] constexpr std::string_view to_string(QosTier t) {
  switch (t) {
    case QosTier::Guaranteed: return "guaranteed";
    case QosTier::BestEffort: return "best-effort";
  }
  return "?";
}

struct GovernorConfig {
  /// Host-wide ceiling on governed pinned pages (0 = the kernel's pin_budget).
  std::uint32_t host_ceiling = 0;
  /// Per-tenant default quota in pages (the RLIMIT_MEMLOCK analogue), applied
  /// when a tenant first registers without an explicit set_tenant() call.
  std::uint32_t default_quota = 1024;
  QosTier default_tier = QosTier::BestEffort;
  /// Pages of the ceiling only guaranteed tenants may use.
  std::uint32_t guaranteed_reserve = 0;
  /// Deferred deregistrations per batch; 0 makes every dereg eager.
  std::uint32_t lazy_batch = 0;
};

struct GovernorStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_quota = 0;     ///< per-tenant quota exceeded (ENOMEM)
  std::uint64_t rejected_ceiling = 0;   ///< host ceiling exceeded (EAGAIN)
  std::uint64_t rejected_injected = 0;  ///< FaultSite::PinAdmission fired
  std::uint64_t frames_charged = 0;     ///< cumulative newly charged frames
  std::uint64_t dedup_hits = 0;         ///< frames already charged to the tenant
  std::uint64_t lazy_queued = 0;
  std::uint64_t lazy_drains = 0;
  std::uint64_t lazy_drained_entries = 0;
  std::uint64_t flushes = 0;            ///< explicit epoch barriers
  std::uint64_t reclaim_invocations = 0;
  std::uint64_t reclaim_pages = 0;
  std::uint64_t reclaim_failures = 0;   ///< FaultSite::PinReclaim fired
  std::uint64_t tenants_removed = 0;
  std::uint64_t forced_tenant_removals = 0;  ///< removed with live charges
  std::uint64_t forced_frames_uncharged = 0;  ///< frames rescued from the leak
};

/// Snapshot of one tenant's accounting, for procfs and tests.
struct TenantInfo {
  simkern::Pid pid = simkern::kInvalidPid;
  QosTier tier = QosTier::BestEffort;
  std::uint32_t quota = 0;
  std::uint32_t charged = 0;  ///< distinct frames currently charged
  std::uint32_t peak = 0;
  std::uint64_t admissions = 0;
  std::uint64_t rejections = 0;
};

/// A holder of evictable pinned state (the RegistrationCache): the governor
/// calls reclaim_idle under memory pressure or on a guaranteed tenant's
/// admission shortfall.
class ReclaimClient {
 public:
  virtual ~ReclaimClient() = default;
  /// Release up to `target_pages` pages of cold idle pinned state (evict
  /// least-recently-used cached registrations). Returns pages released.
  virtual std::uint32_t reclaim_idle(std::uint32_t target_pages) = 0;
};

/// One deferred deregistration. `release` performs the real work (TPT
/// release, unpin, uncharge) and returns the pages it released.
struct PendingDereg {
  simkern::Pid pid = simkern::kInvalidPid;
  std::uint64_t reg_id = 0;
  std::uint32_t pages = 0;
  std::function<std::uint32_t()> release;
};

class PinGovernor final : public simkern::PressureHandler {
 public:
  PinGovernor(simkern::Kernel& kern, GovernorConfig config);
  /// Drains the deferred-dereg queue so no pin outlives the governor.
  ~PinGovernor() override;

  PinGovernor(const PinGovernor&) = delete;
  PinGovernor& operator=(const PinGovernor&) = delete;

  // --- tenants ---------------------------------------------------------------
  /// Create or update a tenant's quota and tier (the setrlimit analogue).
  void set_tenant(simkern::Pid pid, std::uint32_t quota_pages, QosTier tier);
  /// Tenant exit. All its charges should already be released (KernelAgent::
  /// release_tenant deregisters live registrations first); drops the record.
  /// A tenant that still holds charges has them uncharged from the global
  /// accounting first (stats().forced_tenant_removals counts it) - an exit
  /// never strands frames in global_pins_ / total_charged_.
  void remove_tenant(simkern::Pid pid);
  [[nodiscard]] bool tenant_known(simkern::Pid pid) const {
    sync::Guard g(mu_);
    return tenants_.contains(pid);
  }
  [[nodiscard]] std::uint32_t tenant_charged(simkern::Pid pid) const;
  /// All tenants, ordered by pid (deterministic).
  [[nodiscard]] std::vector<TenantInfo> tenants() const;

  // --- admission + accounting -------------------------------------------------
  /// Admit and charge the frames of a registration about to be pinned.
  /// Frames already charged to the tenant cost nothing (overlap dedup). On a
  /// shortfall the governor first drains the deferred-dereg queue, then - for
  /// guaranteed tenants - runs cooperative reclaim, before rejecting:
  /// NoMem = tenant quota exceeded, Again = host ceiling / injected race.
  [[nodiscard]] KStatus charge(simkern::Pid pid,
                               std::span<const simkern::Pfn> pfns);
  /// Release one charge() worth of frames (multiplicity-aware).
  void uncharge(simkern::Pid pid, std::span<const simkern::Pfn> pfns);

  /// Admission-pressure probe: the number of fresh pages `pid` could still
  /// charge right now, the minimum of its remaining quota and its tier's
  /// remaining share of the host ceiling. Conservative (assumes no frame
  /// dedup and counts the deferred-dereg queue as still charged), free of
  /// side effects, and charges no virtual time - a service tier uses it to
  /// shed a BestEffort connection *before* doing any registration work
  /// instead of discovering the rejection halfway through a handshake.
  [[nodiscard]] std::uint32_t admission_headroom(simkern::Pid pid) const;

  // --- lazy deregistration -----------------------------------------------------
  [[nodiscard]] bool lazy_enabled() const { return config_.lazy_batch > 0; }
  /// Queue a deferred deregistration; auto-drains at lazy_batch entries.
  /// Returns false (caller must release eagerly) when laziness is off or a
  /// drain/reclaim pass is in progress.
  bool defer_dereg(PendingDereg d);
  /// Epoch barrier: complete every queued deregistration now. Returns the
  /// number of entries drained.
  std::uint32_t flush();
  [[nodiscard]] std::size_t lazy_queue_depth() const {
    sync::Guard g(mu_);
    return queue_.size();
  }

  // --- cooperative reclaim -----------------------------------------------------
  /// vmscan's pressure callback: drain the lazy queue, then evict cold idle
  /// client state until `target_pages` are released. Returns pages released.
  std::uint32_t on_memory_pressure(std::uint32_t target_pages) override;
  void add_reclaim_client(ReclaimClient* client);
  void remove_reclaim_client(ReclaimClient* client);

  void set_fault_engine(fault::FaultEngine* engine) { faults_ = engine; }

  /// Execution mode: threaded arms the governor's mutex (recursive - the
  /// drain path re-enters through uncharge, and admission rescue re-enters
  /// through client evictions); serial keeps it a no-op branch. The pressure
  /// path only ever try-locks it, so reclaim never blocks on admission.
  void set_policy(sync::SyncPolicy p) { mu_.set_policy(p); }

  // --- accessors ---------------------------------------------------------------
  [[nodiscard]] const GovernorConfig& config() const { return config_; }
  [[nodiscard]] const GovernorStats& stats() const { return stats_; }
  /// Distinct frames currently charged host-wide.
  [[nodiscard]] std::uint32_t total_charged() const {
    sync::Guard g(mu_);
    return total_charged_;
  }
  /// Effective host ceiling in pages.
  [[nodiscard]] std::uint32_t ceiling() const {
    return config_.host_ceiling ? config_.host_ceiling : kern_.pin_budget();
  }

 private:
  struct Tenant {
    QosTier tier = QosTier::BestEffort;
    std::uint32_t quota = 0;
    std::uint32_t charged = 0;  ///< distinct frames currently charged
    std::uint32_t peak = 0;
    std::uint64_t admissions = 0;
    std::uint64_t rejections = 0;
    std::map<simkern::Pfn, std::uint32_t> pins;  ///< frame -> multiplicity
  };

  [[nodiscard]] Tenant& tenant(simkern::Pid pid);  ///< get-or-create
  /// Ceiling a tenant of `tier` may charge up to.
  [[nodiscard]] std::uint32_t tier_limit(QosTier tier) const;
  /// Frames of `pfns` not yet charged to `t` / not yet charged anywhere.
  [[nodiscard]] static std::uint32_t fresh_frames(
      const std::map<simkern::Pfn, std::uint32_t>& pins,
      std::span<const simkern::Pfn> pfns);
  std::uint32_t drain();
  std::uint32_t reclaim_from_clients(std::uint32_t target_pages);

  simkern::Kernel& kern_;
  GovernorConfig config_;
  /// Serializes every public entry (stats_, tenants_, global_pins_, queue_).
  /// Recursive: drain()'s release callbacks and client evictions re-enter
  /// uncharge()/defer_dereg() on the same thread. Lock order: mu_ before any
  /// kernel lock (drain unmaps kiobufs); never the reverse - the kernel's
  /// pressure path reaches the governor only through a try-lock.
  mutable sync::Mutex mu_;
  GovernorStats stats_;
  /// Admission-path latency (owned by the kernel's metric registry).
  obs::Histogram& charge_ns_;
  std::map<simkern::Pid, Tenant> tenants_;
  std::map<simkern::Pfn, std::uint32_t> global_pins_;  ///< frame -> total pins
  std::uint32_t total_charged_ = 0;
  std::vector<PendingDereg> queue_;
  std::vector<ReclaimClient*> clients_;
  bool draining_ = false;  ///< a drain or reclaim pass is executing
  fault::FaultEngine* faults_ = nullptr;
};

}  // namespace vialock::pinmgr
