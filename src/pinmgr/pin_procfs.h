// pin_procfs.h - /proc/pinmgr: text report of the pin governor's global and
// per-tenant accounting, next to simkern's meminfo/vmstat. Examples and
// tests assert on these lines instead of poking governor internals.
#pragma once

#include <string>

#include "pinmgr/pin_governor.h"

namespace vialock::pinmgr {

/// /proc/pinmgr: global counters followed by one line per tenant (pid order).
[[nodiscard]] std::string pinstat(const PinGovernor& gov);

}  // namespace vialock::pinmgr
