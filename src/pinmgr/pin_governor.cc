#include "pinmgr/pin_governor.h"

#include <algorithm>
#include <cassert>

#include "pinmgr/pin_procfs.h"

namespace vialock::pinmgr {

PinGovernor::PinGovernor(simkern::Kernel& kern, GovernorConfig config)
    : kern_(kern),
      config_(config),
      charge_ns_(kern.metrics().histogram("pinmgr.charge_ns")) {
  kern_.metrics().register_source("pinmgr", this, [this](obs::MetricSink& s) {
    s.counter("admitted", stats_.admitted);
    s.counter("rejected_quota", stats_.rejected_quota);
    s.counter("rejected_ceiling", stats_.rejected_ceiling);
    s.counter("rejected_injected", stats_.rejected_injected);
    s.counter("frames_charged", stats_.frames_charged);
    s.counter("dedup_hits", stats_.dedup_hits);
    s.counter("lazy_queued", stats_.lazy_queued);
    s.counter("lazy_drains", stats_.lazy_drains);
    s.counter("lazy_drained_entries", stats_.lazy_drained_entries);
    s.counter("flushes", stats_.flushes);
    s.counter("reclaim_invocations", stats_.reclaim_invocations);
    s.counter("reclaim_pages", stats_.reclaim_pages);
    s.counter("reclaim_failures", stats_.reclaim_failures);
    s.counter("tenants_removed", stats_.tenants_removed);
    s.counter("forced_tenant_removals", stats_.forced_tenant_removals);
    s.counter("forced_frames_uncharged", stats_.forced_frames_uncharged);
    s.gauge("total_charged", total_charged_);
    s.gauge("tenants", tenants_.size());
    s.gauge("lazy_queue_depth", queue_.size());
    // SLO-relevant: pages left under the host ceiling before admissions
    // start bouncing - the watchdogs alarm on this approaching zero.
    const std::uint32_t cap = ceiling();
    s.gauge("ceiling_headroom", cap > total_charged_ ? cap - total_charged_ : 0);
  });
  kern_.procfs().mount("pinmgr", this, [this] { return pinstat(*this); });
}

PinGovernor::~PinGovernor() {
  {
    sync::Guard g(mu_);
    drain();
  }
  kern_.metrics().unregister_source("pinmgr", this);
  kern_.procfs().unmount("pinmgr", this);
}

void PinGovernor::set_tenant(simkern::Pid pid, std::uint32_t quota_pages,
                             QosTier tier) {
  sync::Guard g(mu_);
  Tenant& t = tenant(pid);
  t.quota = quota_pages;
  t.tier = tier;
}

void PinGovernor::remove_tenant(simkern::Pid pid) {
  sync::Guard g(mu_);
  auto it = tenants_.find(pid);
  if (it == tenants_.end()) return;
  Tenant& t = it->second;
  if (!t.pins.empty()) {
    // The caller should have deregistered everything first (KernelAgent::
    // release_tenant does), but a tenant that exits with live charges must
    // not strand its frames in the global accounting: the seed erased the
    // record and leaked every surviving pin from global_pins_ /
    // total_charged_ forever, silently shrinking the host ceiling. Uncharge
    // the survivors, multiplicity-aware, before dropping the record.
    ++stats_.forced_tenant_removals;
    for (const auto& [pfn, count] : t.pins) {
      auto git = global_pins_.find(pfn);
      if (git == global_pins_.end()) continue;
      if (git->second <= count) {
        global_pins_.erase(git);
        if (total_charged_ > 0) --total_charged_;
        ++stats_.forced_frames_uncharged;
      } else {
        git->second -= count;
      }
    }
    kern_.trace().record(kern_.clock().now(), TraceEvent::PinUncharged, pid,
                         t.pins.size(), total_charged_);
  }
  tenants_.erase(it);
  ++stats_.tenants_removed;
}

std::uint32_t PinGovernor::tenant_charged(simkern::Pid pid) const {
  sync::Guard g(mu_);
  auto it = tenants_.find(pid);
  return it == tenants_.end() ? 0 : it->second.charged;
}

std::vector<TenantInfo> PinGovernor::tenants() const {
  sync::Guard g(mu_);
  std::vector<TenantInfo> out;
  out.reserve(tenants_.size());
  for (const auto& [pid, t] : tenants_) {
    out.push_back(TenantInfo{.pid = pid,
                             .tier = t.tier,
                             .quota = t.quota,
                             .charged = t.charged,
                             .peak = t.peak,
                             .admissions = t.admissions,
                             .rejections = t.rejections});
  }
  return out;
}

PinGovernor::Tenant& PinGovernor::tenant(simkern::Pid pid) {
  auto it = tenants_.find(pid);
  if (it != tenants_.end()) return it->second;
  Tenant t;
  t.tier = config_.default_tier;
  t.quota = config_.default_quota;
  return tenants_.emplace(pid, std::move(t)).first->second;
}

std::uint32_t PinGovernor::tier_limit(QosTier tier) const {
  const std::uint32_t cap = ceiling();
  if (tier == QosTier::Guaranteed) return cap;
  return cap > config_.guaranteed_reserve ? cap - config_.guaranteed_reserve
                                          : 0;
}

std::uint32_t PinGovernor::fresh_frames(
    const std::map<simkern::Pfn, std::uint32_t>& pins,
    std::span<const simkern::Pfn> pfns) {
  std::uint32_t fresh = 0;
  for (const simkern::Pfn pfn : pfns) {
    if (!pins.contains(pfn)) ++fresh;
  }
  return fresh;
}

std::uint32_t PinGovernor::admission_headroom(simkern::Pid pid) const {
  sync::Guard g(mu_);
  QosTier tier = config_.default_tier;
  std::uint32_t quota = config_.default_quota;
  std::uint32_t charged = 0;
  if (const auto it = tenants_.find(pid); it != tenants_.end()) {
    tier = it->second.tier;
    quota = it->second.quota;
    charged = it->second.charged;
  }
  const std::uint32_t quota_room = quota > charged ? quota - charged : 0;
  const std::uint32_t cap = tier_limit(tier);
  const std::uint32_t ceiling_room =
      cap > total_charged_ ? cap - total_charged_ : 0;
  return std::min(quota_room, ceiling_room);
}

KStatus PinGovernor::charge(simkern::Pid pid,
                            std::span<const simkern::Pfn> pfns) {
  sync::Guard g(mu_);
  const VirtualStopwatch sw(kern_.clock());
  kern_.clock().advance(kern_.costs().pin_admission);
  Tenant& t = tenant(pid);

  const auto reject = [&](std::uint64_t& counter, KStatus st) {
    ++counter;
    ++t.rejections;
    kern_.trace().record(kern_.clock().now(), TraceEvent::PinRejected, pid,
                         pfns.size(), total_charged_);
    charge_ns_.add(sw.elapsed());
    return st;
  };

  // Injected quota-check race: the admission decision is made against a
  // stale view and spuriously refuses (the caller may retry).
  if (faults_) {
    if (const auto d = faults_->check(fault::FaultSite::PinAdmission);
        d && (d->action == fault::FaultAction::Fail ||
              d->action == fault::FaultAction::Drop)) {
      return reject(stats_.rejected_injected, KStatus::Again);
    }
  }

  // Admission with two rescue stages: a shortfall first drains the deferred
  // deregistrations (their charges are stale by definition); a guaranteed
  // tenant additionally gets a cooperative-reclaim pass over cold idle
  // client state. Charges are re-counted after each stage.
  bool flushed = false;
  bool reclaimed = false;
  for (;;) {
    const std::uint32_t fresh_tenant = fresh_frames(t.pins, pfns);
    const std::uint32_t fresh_global = fresh_frames(global_pins_, pfns);
    const bool quota_ok = t.charged + fresh_tenant <= t.quota;
    const bool ceiling_ok =
        total_charged_ + fresh_global <= tier_limit(t.tier);
    if (quota_ok && ceiling_ok) break;
    if (!flushed && !queue_.empty()) {
      flushed = true;
      drain();
      continue;
    }
    if (!reclaimed && !ceiling_ok && t.tier == QosTier::Guaranteed &&
        !clients_.empty()) {
      reclaimed = true;
      reclaim_from_clients(total_charged_ + fresh_global -
                           tier_limit(t.tier));
      continue;
    }
    if (!quota_ok) return reject(stats_.rejected_quota, KStatus::NoMem);
    return reject(stats_.rejected_ceiling, KStatus::Again);
  }

  for (const simkern::Pfn pfn : pfns) {
    kern_.clock().advance(kern_.costs().pin_account_frame);
    if (t.pins[pfn]++ == 0) {
      ++t.charged;
      ++stats_.frames_charged;
    } else {
      ++stats_.dedup_hits;
    }
    if (global_pins_[pfn]++ == 0) ++total_charged_;
  }
  t.peak = std::max(t.peak, t.charged);
  ++t.admissions;
  ++stats_.admitted;
  kern_.trace().record(kern_.clock().now(), TraceEvent::PinCharged, pid,
                       pfns.size(), total_charged_);
  charge_ns_.add(sw.elapsed());
  return KStatus::Ok;
}

void PinGovernor::uncharge(simkern::Pid pid,
                           std::span<const simkern::Pfn> pfns) {
  sync::Guard g(mu_);
  auto it = tenants_.find(pid);
  assert(it != tenants_.end() && "uncharge of unknown tenant");
  if (it == tenants_.end()) return;
  Tenant& t = it->second;
  for (const simkern::Pfn pfn : pfns) {
    kern_.clock().advance(kern_.costs().pin_account_frame);
    auto pit = t.pins.find(pfn);
    assert(pit != t.pins.end() && "uncharge of uncharged frame");
    if (pit == t.pins.end()) continue;
    if (--pit->second == 0) {
      t.pins.erase(pit);
      assert(t.charged > 0);
      --t.charged;
    }
    auto git = global_pins_.find(pfn);
    assert(git != global_pins_.end());
    if (git != global_pins_.end() && --git->second == 0) {
      global_pins_.erase(git);
      assert(total_charged_ > 0);
      --total_charged_;
    }
  }
  kern_.trace().record(kern_.clock().now(), TraceEvent::PinUncharged, pid,
                       pfns.size(), total_charged_);
}

bool PinGovernor::defer_dereg(PendingDereg d) {
  sync::Guard g(mu_);
  if (!lazy_enabled() || draining_) return false;
  // A user-level append to the deferred-dereg ring: no kernel entry here -
  // that is the whole point (the batch is submitted in one ioctl at drain).
  kern_.clock().advance(kern_.costs().pin_lazy_queue);
  kern_.trace().record(kern_.clock().now(), TraceEvent::LazyDeregQueued, d.pid,
                       d.reg_id, d.pages);
  queue_.push_back(std::move(d));
  ++stats_.lazy_queued;
  if (queue_.size() >= config_.lazy_batch) drain();
  return true;
}

std::uint32_t PinGovernor::flush() {
  sync::Guard g(mu_);
  ++stats_.flushes;
  return drain();
}

std::uint32_t PinGovernor::drain() {
  if (draining_ || queue_.empty()) return 0;
  draining_ = true;
  // One batched kernel entry submits the whole queue: the fixed ioctl cost
  // is paid once per drain, not once per deregistration (E21).
  kern_.clock().advance(kern_.costs().syscall);
  ++kern_.mutable_stats().syscalls;
  std::vector<PendingDereg> batch;
  batch.swap(queue_);
  std::uint32_t pages = 0;
  for (PendingDereg& d : batch) pages += d.release();
  ++stats_.lazy_drains;
  stats_.lazy_drained_entries += batch.size();
  kern_.trace().record(kern_.clock().now(), TraceEvent::LazyDeregDrained, 0,
                       batch.size(), pages);
  draining_ = false;
  return static_cast<std::uint32_t>(batch.size());
}

std::uint32_t PinGovernor::on_memory_pressure(std::uint32_t target_pages) {
  // Reclaim runs with kernel locks held (the reclaim gate, a task mutex), so
  // it must never BLOCK on the governor: an admission in progress on another
  // worker holds mu_ while unmapping kiobufs, which needs those same kernel
  // locks. Skipping the pass under contention is safe - it is best-effort.
  sync::TryGuard g(mu_);
  if (!g.held()) return 0;
  if (draining_) return 0;
  ++stats_.reclaim_invocations;
  // Injected reclaim failure: the pass runs but releases nothing (models a
  // shrinker that cannot take its locks under pressure).
  if (faults_) {
    if (const auto d = faults_->check(fault::FaultSite::PinReclaim);
        d && (d->action == fault::FaultAction::Fail ||
              d->action == fault::FaultAction::Drop)) {
      ++stats_.reclaim_failures;
      return 0;
    }
  }
  std::uint32_t released = 0;
  // Deferred deregistrations first: completing them is pure win.
  const std::uint32_t before = total_charged_;
  drain();
  released += before - total_charged_;
  stats_.reclaim_pages += released;
  // Then cold idle client state (idle cached registrations), coldest first.
  if (released < target_pages) {
    released += reclaim_from_clients(target_pages - released);
  }
  kern_.trace().record(kern_.clock().now(), TraceEvent::PinReclaimed, 0,
                       released, total_charged_);
  return released;
}

std::uint32_t PinGovernor::reclaim_from_clients(std::uint32_t target_pages) {
  // Client evictions deregister through the kernel agent; they must complete
  // eagerly, not re-enter the deferred queue.
  draining_ = true;
  std::uint32_t released = 0;
  for (ReclaimClient* c : clients_) {
    if (released >= target_pages) break;
    released += c->reclaim_idle(target_pages - released);
  }
  draining_ = false;
  // Counted here so admission-shortfall rescue (charge) shows up in the
  // stats alongside vmscan-driven passes.
  stats_.reclaim_pages += released;
  return released;
}

void PinGovernor::add_reclaim_client(ReclaimClient* client) {
  sync::Guard g(mu_);
  clients_.push_back(client);
}

void PinGovernor::remove_reclaim_client(ReclaimClient* client) {
  sync::Guard g(mu_);
  std::erase(clients_, client);
}

}  // namespace vialock::pinmgr
