#include "core/proc_export.h"

#include <sstream>

namespace vialock::core {

std::string regcache_status(const RegCacheStats& s) {
  std::ostringstream os;
  os << "hits " << s.hits << "\n"
     << "misses " << s.misses << "\n"
     << "evictions " << s.evictions << "\n"
     << "registrations " << s.registrations << "\n"
     << "deregistrations " << s.deregistrations << "\n"
     << "reclaim_evictions " << s.reclaim_evictions << "\n"
     << "bad_releases " << s.bad_releases << "\n"
     << "lookaside_hits " << s.lookaside_hits << "\n"
     << "lookaside_misses " << s.lookaside_misses << "\n"
     << "lookaside_invalidations " << s.lookaside_invalidations << "\n";
  return os.str();
}

}  // namespace vialock::core
