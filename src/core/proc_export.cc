#include "core/proc_export.h"

#include <sstream>

namespace vialock::core {

std::string agent_status(const via::AgentStats& s) {
  std::ostringstream os;
  os << "registrations " << s.registrations << "\n"
     << "deregistrations " << s.deregistrations << "\n"
     << "pages_registered " << s.pages_registered << "\n"
     << "lock_failures " << s.lock_failures << "\n"
     << "tpt_full " << s.tpt_full << "\n"
     << "admission_rejects " << s.admission_rejects << "\n"
     << "lazy_deregs " << s.lazy_deregs << "\n"
     << "refresh_failures " << s.refresh_failures << "\n";
  return os.str();
}

std::string regcache_status(const RegCacheStats& s) {
  std::ostringstream os;
  os << "hits " << s.hits << "\n"
     << "misses " << s.misses << "\n"
     << "evictions " << s.evictions << "\n"
     << "registrations " << s.registrations << "\n"
     << "deregistrations " << s.deregistrations << "\n"
     << "reclaim_evictions " << s.reclaim_evictions << "\n"
     << "bad_releases " << s.bad_releases << "\n";
  return os.str();
}

}  // namespace vialock::core
