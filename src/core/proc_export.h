// proc_export.h - /proc-style text reports over the VIA stack's own
// counters, the upper-layer companions to simkern::procfs (meminfo/vmstat).
// Each returns "key value\n" lines in a fixed order so outputs diff cleanly
// across runs and commits.
#pragma once

#include <string>

#include "core/reg_cache.h"
#include "via/kernel_agent.h"

namespace vialock::core {

/// /proc/via/agent: the kernel agent's registration counters.
[[nodiscard]] std::string agent_status(const via::AgentStats& stats);

/// /proc/via/regcache: a registration cache's hit/miss/eviction counters.
[[nodiscard]] std::string regcache_status(const RegCacheStats& stats);

}  // namespace vialock::core
