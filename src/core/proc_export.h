// proc_export.h - /proc-style text reports over the VIA stack's own
// counters, the upper-layer companions to simkern::procfs (meminfo/vmstat).
// Each returns "key value\n" lines in a fixed order so outputs diff cleanly
// across runs and commits.
//
// These renderers are now also *mounted*: every exporting component
// registers its renderer with the node kernel's obs::ProcRegistry in its
// constructor (KernelAgent -> "via/agent", RegistrationCache ->
// "regcache/p<pid>", PinGovernor -> "pinmgr", the kernel itself ->
// "meminfo"/"vmstat"/"metrics"), so `kernel.procfs().read(path)` /
// `read_all()` is the one interface that reaches every report. The free
// functions remain for callers that hold a bare stats struct.
#pragma once

#include <string>

#include "core/reg_cache.h"
#include "via/kernel_agent.h"

namespace vialock::core {

/// /proc/via/agent. Compatibility alias: the renderer moved next to the
/// stats it prints (via::agent_status) when the agent began mounting it.
[[nodiscard]] inline std::string agent_status(const via::AgentStats& stats) {
  return via::agent_status(stats);
}

/// /proc/regcache/p<pid>: a registration cache's hit/miss/eviction counters.
[[nodiscard]] std::string regcache_status(const RegCacheStats& stats);

}  // namespace vialock::core
