// registry.h - the paper's proposal packaged as a standalone library.
//
// "Although the proposed locking mechanism has been developed for a VIA
// implementation it can be utilized for any type of user level
// communication" (abstract). ReliableLocker is that packaging: a kiobuf-
// backed pinning service over the simulated kernel, independent of the VIA
// agent, handing out RAII PinnedRegion handles. Each PinnedRegion holds one
// kiobuf pin, so overlapping and repeated locks of the same range nest
// correctly and release independently - the two properties the paper shows
// the mlock- and flag-based approaches lack.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "simkern/kernel.h"
#include "util/status.h"

namespace vialock::core {

class ReliableLocker;

/// RAII handle over one pinned user range. Movable, not copyable; unpins on
/// destruction.
class PinnedRegion {
 public:
  PinnedRegion() = default;
  PinnedRegion(const PinnedRegion&) = delete;
  PinnedRegion& operator=(const PinnedRegion&) = delete;
  PinnedRegion(PinnedRegion&& other) noexcept { *this = std::move(other); }
  PinnedRegion& operator=(PinnedRegion&& other) noexcept;
  ~PinnedRegion();

  [[nodiscard]] bool valid() const { return locker_ != nullptr; }
  [[nodiscard]] simkern::VAddr addr() const { return kiobuf_.addr; }
  [[nodiscard]] std::uint64_t length() const { return kiobuf_.length; }
  [[nodiscard]] simkern::Pid pid() const { return kiobuf_.pid; }
  /// The pinned physical frames, in range order - safe to hand to a DMA
  /// engine for as long as this handle lives.
  [[nodiscard]] const std::vector<simkern::Pfn>& pfns() const {
    return kiobuf_.pfns;
  }

  /// Explicit early release.
  void reset();

 private:
  friend class ReliableLocker;
  PinnedRegion(ReliableLocker* locker, simkern::Kiobuf kiobuf)
      : locker_(locker), kiobuf_(std::move(kiobuf)) {}

  ReliableLocker* locker_ = nullptr;
  simkern::Kiobuf kiobuf_;
};

class ReliableLocker {
 public:
  explicit ReliableLocker(simkern::Kernel& kern) : kern_(kern) {}

  ReliableLocker(const ReliableLocker&) = delete;
  ReliableLocker& operator=(const ReliableLocker&) = delete;

  /// Pin [addr, addr+len) of `pid`. On success `out` owns the pin.
  [[nodiscard]] KStatus lock(simkern::Pid pid, simkern::VAddr addr,
                             std::uint64_t len, PinnedRegion& out);

  [[nodiscard]] std::uint64_t live_pins() const { return live_pins_; }
  [[nodiscard]] std::uint64_t total_locks() const { return total_locks_; }
  [[nodiscard]] simkern::Kernel& kernel() { return kern_; }

 private:
  friend class PinnedRegion;
  void unlock(simkern::Kiobuf& kiobuf);

  simkern::Kernel& kern_;
  std::uint64_t live_pins_ = 0;
  std::uint64_t total_locks_ = 0;
};

}  // namespace vialock::core
