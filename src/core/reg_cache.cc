#include "core/reg_cache.h"

#include <cassert>
#include <limits>

namespace vialock::core {

std::map<std::uint64_t, RegistrationCache::Entry>::iterator
RegistrationCache::find_covering(simkern::VAddr addr, std::uint64_t len) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    const via::MemHandle& h = it->second.handle;
    if (h.vaddr <= addr && addr + len <= h.vaddr + h.length) return it;
  }
  return entries_.end();
}

KStatus RegistrationCache::acquire(simkern::VAddr addr, std::uint64_t len,
                                   via::MemHandle& out) {
  if (len == 0) return KStatus::Inval;
  ++tick_;
  auto it = find_covering(addr, len);
  if (it != entries_.end()) {
    ++stats_.hits;
    ++it->second.refs;
    it->second.last_use = tick_;
    out = it->second.handle;
    return KStatus::Ok;
  }

  ++stats_.misses;
  // Register the exact (page-spanned) range. Retry under TPT pressure after
  // evicting idle cached registrations.
  for (;;) {
    via::MemHandle handle;
    const KStatus st = vipl_.register_mem(addr, len, handle);
    if (ok(st)) {
      ++stats_.registrations;
      Entry e;
      e.handle = handle;
      e.refs = 1;
      e.last_use = tick_;
      e.seq = ++seq_;
      entries_.emplace(handle.id, std::move(e));
      out = handle;
      return KStatus::Ok;
    }
    // NoSpc: TPT entries exhausted. Again: the kernel's pin budget (or the
    // governor's host ceiling) is hit. NoMem: the governor's per-tenant
    // quota. All are relieved by evicting idle cached registrations.
    if (st != KStatus::NoSpc && st != KStatus::Again && st != KStatus::NoMem)
      return st;
    if (evict_one() == 0) return st;
  }
}

void RegistrationCache::release(const via::MemHandle& handle) {
  auto it = entries_.find(handle.id);
  assert(it != entries_.end() && "release of unknown handle");
  assert(it->second.refs > 0);
  ++tick_;
  it->second.last_use = tick_;
  if (--it->second.refs == 0) {
    if (config_.policy == EvictionPolicy::None) {
      (void)vipl_.deregister_mem(it->second.handle);
      ++stats_.deregistrations;
      entries_.erase(it);
    } else {
      enforce_idle_cap();
    }
  }
}

std::uint32_t RegistrationCache::evict_one() {
  auto victim = entries_.end();
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.refs != 0) continue;
    const std::uint64_t key =
        config_.policy == EvictionPolicy::Fifo ? it->second.seq
                                               : it->second.last_use;
    if (key < best) {
      best = key;
      victim = it;
    }
  }
  if (victim == entries_.end()) return 0;
  const std::uint32_t pages = victim->second.handle.pages;
  (void)vipl_.deregister_mem(victim->second.handle);
  ++stats_.deregistrations;
  ++stats_.evictions;
  entries_.erase(victim);
  return pages;
}

std::uint32_t RegistrationCache::reclaim_idle(std::uint32_t target_pages) {
  std::uint32_t released = 0;
  while (released < target_pages) {
    const std::uint32_t pages = evict_one();
    if (pages == 0) break;
    ++stats_.reclaim_evictions;
    released += pages;
  }
  return released;
}

void RegistrationCache::enforce_idle_cap() {
  while (idle_cached() > config_.max_idle) {
    if (evict_one() == 0) break;
  }
}

void RegistrationCache::flush() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.refs == 0) {
      (void)vipl_.deregister_mem(it->second.handle);
      ++stats_.deregistrations;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t RegistrationCache::idle_cached() const {
  std::size_t n = 0;
  for (const auto& [id, e] : entries_)
    if (e.refs == 0) ++n;
  return n;
}

}  // namespace vialock::core
