#include "core/reg_cache.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/proc_export.h"

namespace vialock::core {

RegistrationCache::RegistrationCache(via::Vipl& vipl, Config config)
    : vipl_(vipl),
      config_(config),
      acquire_ns_(vipl.agent().kern().metrics().histogram(
          "core.regcache.acquire_ns")),
      source_name_("core.regcache.p" + std::to_string(vipl.pid())),
      proc_path_("regcache/p" + std::to_string(vipl.pid())) {
  if (config_.governor) config_.governor->add_reclaim_client(this);
  simkern::Kernel& kern = vipl_.agent().kern();
  kern.metrics().register_source(source_name_, this, [this](obs::MetricSink& s) {
    s.counter("hits", stats_.hits);
    s.counter("misses", stats_.misses);
    s.counter("evictions", stats_.evictions);
    s.counter("registrations", stats_.registrations);
    s.counter("deregistrations", stats_.deregistrations);
    s.counter("reclaim_evictions", stats_.reclaim_evictions);
    s.counter("bad_releases", stats_.bad_releases);
    s.counter("lookaside_hits", stats_.lookaside_hits);
    s.counter("lookaside_misses", stats_.lookaside_misses);
    s.counter("lookaside_invalidations", stats_.lookaside_invalidations);
    s.gauge("idle", idle_.size());
    s.gauge("live", rows_.size());
  });
  kern.procfs().mount(proc_path_, this,
                      [this] { return regcache_status(stats_); });
}

RegistrationCache::~RegistrationCache() {
  flush();
  if (config_.governor) config_.governor->remove_reclaim_client(this);
  simkern::Kernel& kern = vipl_.agent().kern();
  kern.metrics().unregister_source(source_name_, this);
  kern.procfs().unmount(proc_path_, this);
}
namespace {

/// 64 keys (512 bytes, 8 cache lines) per sampled block of the key array.
constexpr std::size_t kBlockShift = 6;
constexpr std::size_t kBlock = std::size_t{1} << kBlockShift;

/// Padding sentinel for the key and block-top arrays. Compares greater than
/// any real vaddr (the simulated address space is 2^46), so padded slots
/// never count toward an upper bound.
constexpr simkern::VAddr kPad = ~simkern::VAddr{0};

/// keys_/tops_ are padded to this length so fixed-width scans never read
/// past the fill.
constexpr std::size_t padded(std::size_t n) {
  return (n + kBlock - 1) & ~(kBlock - 1);
}

/// Number of keys in [base, base+n) that are <= addr, i.e. the upper-bound
/// index. Branch-free: the half-step is applied through a mask (neg/and/add,
/// which the compiler cannot turn back into a jump - a plain ternary here
/// compiles to a branch). On a random access stream every probe of a
/// conventional binary search is a coin-flip branch, and the mispredict
/// penalty - not the loads - is what otherwise grows with log n.
std::size_t upper_idx(const simkern::VAddr* base, std::size_t n,
                      simkern::VAddr addr) {
  const simkern::VAddr* p = base;
  while (n > 1) {
    const std::size_t half = n / 2;
    p += (std::size_t{0} - static_cast<std::size_t>(p[half - 1] <= addr)) &
         half;
    n -= half;
  }
  return static_cast<std::size_t>(p - base) +
         static_cast<std::size_t>(*p <= addr);
}

/// Upper-bound offset within one kBlock-wide (sentinel-padded) sorted block:
/// the count of keys <= addr. A counting scan, not a binary search - the 64
/// contiguous loads are independent (the hardware fetches all eight cache
/// lines in parallel) and the four accumulators let the compare-accumulate
/// pipeline, where a binary search would serialise six dependent probes.
/// The trip count is a compile-time constant: the scan always covers the
/// full padded block, so it carries no data-dependent branch at all and its
/// cost does not drift with occupancy.
std::size_t upper_idx_block(const simkern::VAddr* base, simkern::VAddr addr) {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  for (std::size_t j = 0; j < kBlock; j += 4) {
    c0 += static_cast<std::size_t>(base[j] <= addr);
    c1 += static_cast<std::size_t>(base[j + 1] <= addr);
    c2 += static_cast<std::size_t>(base[j + 2] <= addr);
    c3 += static_cast<std::size_t>(base[j + 3] <= addr);
  }
  return c0 + c1 + c2 + c3;
}

}  // namespace

RegistrationCache::Entry* RegistrationCache::find_covering(simkern::VAddr addr,
                                                           std::uint64_t len) {
  if (rows_.empty()) return nullptr;
  // No cached registration is longer than max_len_, so any covering entry
  // starts in (addr - max_len_, addr]: find the first key past addr, then
  // walk backwards through that window only. The search is two-level: the
  // block-top sample (tops_) stays cache-hot at any size and narrows the
  // probe to one 512-byte block of keys_, so the memory the lookup can miss
  // on stays O(1) as the cache grows from dozens to thousands of entries.
  // Up to kBlock^2 (4096) entries both levels are fixed-width counting
  // scans with no serial dependency and no data-dependent branching; past
  // that the top level falls back to the branch-free binary search.
  const std::size_t n = rows_.size();
  const std::size_t nblocks = (n + kBlock - 1) >> kBlockShift;
  const std::size_t b = nblocks <= kBlock
                            ? upper_idx_block(tops_.data(), addr)
                            : upper_idx(tops_.data(), nblocks, addr);
  std::size_t i;
  if (b >= nblocks) {
    i = n;  // every cached start is <= addr
  } else {
    const std::size_t lo = b << kBlockShift;
    i = lo + upper_idx_block(keys_.data() + lo, addr);
  }
  Entry* best = nullptr;
  while (i > 0) {
    Entry& r = rows_[--i];
    if (addr - r.handle.vaddr >= max_len_)
      break;  // nothing earlier can reach addr
    if (addr + len <= r.handle.vaddr + r.handle.length &&
        (best == nullptr || r.handle.id < best->handle.id)) {
      // Smallest covering id: exactly the entry the seed's id-ordered linear
      // scan returned, so hit/evict behaviour is bit-identical (the E22
      // differential test holds the cache to this).
      best = &r;
    }
  }
  return best;
}

std::size_t RegistrationCache::row_of(simkern::VAddr vaddr,
                                      std::uint64_t id) const {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), vaddr);
  for (std::size_t i = static_cast<std::size_t>(it - keys_.begin());
       i < rows_.size() && rows_[i].handle.vaddr == vaddr; ++i) {
    if (rows_[i].handle.id == id) return i;
  }
  return rows_.size();
}

void RegistrationCache::rebuild_tops() {
  // Re-pad both scan arrays: keys_ to a whole number of blocks, tops_ to at
  // least one full block, sentinel-filled past the live prefix, so the
  // fixed-width lookup scans never read uninitialised slots.
  const std::size_t n = rows_.size();
  keys_.resize(padded(n), kPad);
  const std::size_t blocks = (n + kBlock - 1) >> kBlockShift;
  tops_.assign(std::max(padded(blocks), kBlock), kPad);
  for (std::size_t b = 0; b < blocks; ++b)
    tops_[b] = keys_[std::min((b + 1) << kBlockShift, n) - 1];
}

void RegistrationCache::lookaside_fill(simkern::VAddr addr, std::uint64_t len,
                                       std::size_t row) {
  lookaside_[lookaside_slot(addr, len)] =
      LookasideSlot{addr, len, static_cast<std::uint32_t>(row), generation_};
}

void RegistrationCache::insert_entry(Entry&& e) {
  // Structural change: every row index shifts, so every lookaside entry is
  // stale. One generation bump retires them all.
  lookaside_invalidate_all();
  const auto pos =
      std::lower_bound(rows_.begin(), rows_.end(), e) - rows_.begin();
  const auto [it, inserted] = ids_.emplace(e.handle.id, e.handle.vaddr);
  assert(inserted);
  (void)it;
  (void)inserted;
  lengths_.insert(e.handle.length);
  max_len_ = *lengths_.rbegin();
  keys_.insert(keys_.begin() + pos, e.handle.vaddr);
  rows_.insert(rows_.begin() + pos, std::move(e));
  rebuild_tops();
}

void RegistrationCache::erase_entry(
    std::map<std::uint64_t, simkern::VAddr>::iterator it) {
  lookaside_invalidate_all();
  const std::size_t pos = row_of(it->second, it->first);
  assert(pos < rows_.size());
  Entry& e = rows_[pos];
  if (e.refs == 0) {
    const auto idle = idle_.find(evict_key(e));
    if (idle != idle_.end() && idle->second == e.handle.id) idle_.erase(idle);
  }
  (void)vipl_.deregister_mem(e.handle);
  ++stats_.deregistrations;
  lengths_.erase(lengths_.find(e.handle.length));
  max_len_ = lengths_.empty() ? 0 : *lengths_.rbegin();
  rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(pos));
  keys_.erase(keys_.begin() + static_cast<std::ptrdiff_t>(pos));
  rebuild_tops();
  ids_.erase(it);
}

KStatus RegistrationCache::acquire(simkern::VAddr addr, std::uint64_t len,
                                   via::MemHandle& out) {
  if (len == 0) return KStatus::Inval;
  const VirtualStopwatch sw(vipl_.agent().kern().clock());
  const auto charge = [&](KStatus st) {
    acquire_ns_.add(sw.elapsed());
    return st;
  };
  ++tick_;
  const auto serve_hit = [&](Entry& e) {
    ++stats_.hits;
    if (e.refs == 0) {
      const auto idle = idle_.find(evict_key(e));
      if (idle != idle_.end() && idle->second == e.handle.id)
        idle_.erase(idle);
    }
    ++e.refs;
    e.last_use = tick_;
    out = e.handle;
  };

  // Lookaside first: an exact (addr, len) repeat whose generation still
  // matches resolves in one slot probe - no key scan at all. The stored row
  // index is trustworthy because any insert/erase since the fill would have
  // bumped generation_; with the entry set unchanged, find_covering would
  // return this very row (asserted in debug builds).
  const LookasideSlot& slot = lookaside_[lookaside_slot(addr, len)];
  if (slot.gen == generation_ && slot.addr == addr && slot.len == len) {
    assert(slot.row < rows_.size());
    Entry& e = rows_[slot.row];
    assert(find_covering(addr, len) == &e &&
           "lookaside diverged from the authoritative index");
    ++stats_.lookaside_hits;
    serve_hit(e);
    return charge(KStatus::Ok);
  }
  ++stats_.lookaside_misses;

  if (Entry* e = find_covering(addr, len)) {
    lookaside_fill(addr, len, static_cast<std::size_t>(e - rows_.data()));
    serve_hit(*e);
    return charge(KStatus::Ok);
  }

  ++stats_.misses;
  // Register the exact (page-spanned) range. Retry under TPT pressure after
  // evicting idle cached registrations.
  for (;;) {
    via::MemHandle handle;
    const KStatus st = vipl_.register_mem(addr, len, handle);
    if (ok(st)) {
      ++stats_.registrations;
      Entry e;
      e.handle = handle;
      e.refs = 1;
      e.last_use = tick_;
      e.seq = ++seq_;
      insert_entry(std::move(e));
      // Fill after the insert: the bump it performed retired every older
      // slot, and the fresh row index is valid under the new generation.
      lookaside_fill(addr, len, row_of(handle.vaddr, handle.id));
      out = handle;
      return charge(KStatus::Ok);
    }
    // NoSpc: TPT entries exhausted. Again: the kernel's pin budget (or the
    // governor's host ceiling) is hit. NoMem: the governor's per-tenant
    // quota. All are relieved by evicting idle cached registrations.
    if (st != KStatus::NoSpc && st != KStatus::Again && st != KStatus::NoMem)
      return charge(st);
    if (evict_one() == 0) return charge(st);
  }
}

void RegistrationCache::release(const via::MemHandle& handle) {
  auto it = ids_.find(handle.id);
  const std::size_t pos =
      it == ids_.end() ? rows_.size() : row_of(it->second, it->first);
  if (pos >= rows_.size() || rows_[pos].refs == 0) {
    // Unknown handle, or an entry already idle (double release). The seed
    // guarded these with assert only: an NDEBUG build dereferenced end() /
    // underflowed the refcount and corrupted the cache. Count and refuse.
    ++stats_.bad_releases;
    return;
  }
  ++tick_;
  Entry& e = rows_[pos];
  e.last_use = tick_;
  if (--e.refs == 0) {
    if (config_.policy == EvictionPolicy::None) {
      erase_entry(it);
    } else {
      idle_.emplace(evict_key(e), e.handle.id);
      enforce_idle_cap();
    }
  }
}

std::uint32_t RegistrationCache::evict_one() {
  // The idle index is keyed by the eviction policy's key, so the victim -
  // the least-recently-used (LRU) or oldest (FIFO) idle entry - is simply
  // the first element, not a scan over every cached registration.
  if (idle_.empty()) return 0;
  const auto it = ids_.find(idle_.begin()->second);
  assert(it != ids_.end());
  const std::size_t pos = row_of(it->second, it->first);
  assert(pos < rows_.size() && rows_[pos].refs == 0);
  const std::uint32_t pages = rows_[pos].handle.pages;
  ++stats_.evictions;
  erase_entry(it);
  return pages;
}

std::uint32_t RegistrationCache::reclaim_idle(std::uint32_t target_pages) {
  std::uint32_t released = 0;
  while (released < target_pages) {
    const std::uint32_t pages = evict_one();
    if (pages == 0) break;
    ++stats_.reclaim_evictions;
    released += pages;
  }
  return released;
}

void RegistrationCache::enforce_idle_cap() {
  while (idle_cached() > config_.max_idle) {
    if (evict_one() == 0) break;
  }
}

void RegistrationCache::flush() {
  // Id order, as the seed iterated its id-keyed map: dereg order (and with
  // it the TPT free-extent pattern and trace stream) stays bit-identical.
  for (auto it = ids_.begin(); it != ids_.end();) {
    auto next = std::next(it);
    const std::size_t pos = row_of(it->second, it->first);
    assert(pos < rows_.size());
    if (rows_[pos].refs == 0) erase_entry(it);
    it = next;
  }
}

}  // namespace vialock::core
